#ifndef WATTDB_COMMON_RNG_H_
#define WATTDB_COMMON_RNG_H_

#include <cstdint>

namespace wattdb {

/// Deterministic, seedable PRNG (xoshiro256**). Every simulation component
/// owns its own instance so that experiments are reproducible regardless of
/// execution interleavings.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed);

  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive bounds, TPC-C convention).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Exponentially distributed value with the given mean.
  double Exponential(double mean);

  /// TPC-C NURand(A, x, y): non-uniform random integer in [x, y] skewed by
  /// the constant-load parameter A (see TPC-C spec clause 2.1.6).
  int64_t NURand(int64_t a, int64_t x, int64_t y);

  /// Zipfian value in [0, n) with skew theta (Gray et al. generator).
  uint64_t Zipf(uint64_t n, double theta);

 private:
  uint64_t state_[4];
  uint64_t c_255_ = 0;   ///< NURand C constant for A=255.
  uint64_t c_1023_ = 0;  ///< NURand C constant for A=1023.
  uint64_t c_8191_ = 0;  ///< NURand C constant for A=8191.
};

}  // namespace wattdb

#endif  // WATTDB_COMMON_RNG_H_
