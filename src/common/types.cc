#include "common/types.h"

#include <sstream>

namespace wattdb {

std::string KeyRange::ToString() const {
  std::ostringstream os;
  os << "[" << lo << ", ";
  if (hi == kMaxKey) {
    os << "max";
  } else {
    os << hi;
  }
  os << ")";
  return os.str();
}

}  // namespace wattdb
