#ifndef WATTDB_COMMON_TYPES_H_
#define WATTDB_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace wattdb {

/// Strongly-typed integral identifier. `Tag` disambiguates id spaces so that
/// e.g. a NodeId cannot be passed where a SegmentId is expected.
template <typename Tag, typename Rep = uint32_t>
class Id {
 public:
  using rep_type = Rep;

  constexpr Id() : value_(kInvalidValue) {}
  constexpr explicit Id(Rep value) : value_(value) {}

  constexpr Rep value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalidValue; }

  static constexpr Id Invalid() { return Id(); }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }
  friend constexpr bool operator>(Id a, Id b) { return a.value_ > b.value_; }
  friend constexpr bool operator<=(Id a, Id b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>=(Id a, Id b) { return a.value_ >= b.value_; }

 private:
  static constexpr Rep kInvalidValue = std::numeric_limits<Rep>::max();
  Rep value_;
};

struct NodeTag {};
struct DiskTag {};
struct TableTag {};
struct PartitionTag {};
struct SegmentTag {};
struct PageTag {};
struct TxnTag {};

/// Cluster node (0 is always the master node).
using NodeId = Id<NodeTag, uint32_t>;
/// Storage device, unique cluster-wide.
using DiskId = Id<DiskTag, uint32_t>;
using TableId = Id<TableTag, uint32_t>;
/// Horizontal partition of a table; owned by exactly one node.
using PartitionId = Id<PartitionTag, uint32_t>;
/// 32 MB unit of physical storage and of migration.
using SegmentId = Id<SegmentTag, uint32_t>;
/// Page number within a segment (0..4095).
using PageId = Id<PageTag, uint32_t>;
/// Transaction identifier; also used as MVCC begin/commit timestamp domain.
using TxnId = Id<TxnTag, uint64_t>;

/// Primary keys are modeled as 64-bit integers. Composite TPC-C keys are
/// packed into 64 bits by the workload layer.
using Key = uint64_t;

constexpr Key kMinKey = 0;
constexpr Key kMaxKey = std::numeric_limits<Key>::max();

/// Half-open key interval [lo, hi).
struct KeyRange {
  Key lo = kMinKey;
  Key hi = kMaxKey;

  bool Contains(Key k) const { return k >= lo && k < hi; }
  bool Overlaps(const KeyRange& o) const { return lo < o.hi && o.lo < hi; }
  bool Empty() const { return lo >= hi; }

  friend bool operator==(const KeyRange& a, const KeyRange& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }

  std::string ToString() const;
};

/// Simulated time in microseconds since simulation start.
using SimTime = int64_t;

constexpr SimTime kUsPerMs = 1000;
constexpr SimTime kUsPerSec = 1000 * 1000;

inline double ToSeconds(SimTime t) { return static_cast<double>(t) / kUsPerSec; }
inline SimTime FromSeconds(double s) {
  return static_cast<SimTime>(s * kUsPerSec);
}
inline SimTime FromMillis(double ms) {
  return static_cast<SimTime>(ms * kUsPerMs);
}

}  // namespace wattdb

namespace std {
template <typename Tag, typename Rep>
struct hash<wattdb::Id<Tag, Rep>> {
  size_t operator()(wattdb::Id<Tag, Rep> id) const {
    return std::hash<Rep>()(id.value());
  }
};
}  // namespace std

#endif  // WATTDB_COMMON_TYPES_H_
