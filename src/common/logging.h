#ifndef WATTDB_COMMON_LOGGING_H_
#define WATTDB_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace wattdb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped. Defaults to
/// kWarn so tests and benches stay quiet unless they opt in.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);
}  // namespace internal

}  // namespace wattdb

#define WATTDB_LOG(level, msg_expr)                                       \
  do {                                                                    \
    if (static_cast<int>(level) >=                                        \
        static_cast<int>(::wattdb::GetLogLevel())) {                      \
      std::ostringstream _os;                                             \
      _os << msg_expr;                                                    \
      ::wattdb::internal::LogMessage(level, __FILE__, __LINE__, _os.str()); \
    }                                                                     \
  } while (0)

#define WATTDB_DEBUG(msg) WATTDB_LOG(::wattdb::LogLevel::kDebug, msg)
#define WATTDB_INFO(msg) WATTDB_LOG(::wattdb::LogLevel::kInfo, msg)
#define WATTDB_WARN(msg) WATTDB_LOG(::wattdb::LogLevel::kWarn, msg)
#define WATTDB_ERROR(msg) WATTDB_LOG(::wattdb::LogLevel::kError, msg)

/// Invariant check that stays on in release builds. The simulation is fully
/// deterministic, so a tripped check is always reproducible.
#define WATTDB_CHECK(cond)                                                 \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,        \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define WATTDB_CHECK_MSG(cond, msg)                                        \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream _os;                                              \
      _os << msg;                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,   \
                   __LINE__, #cond, _os.str().c_str());                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#endif  // WATTDB_COMMON_LOGGING_H_
