#include "common/stats.h"

#include <cmath>
#include <sstream>

namespace wattdb {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  sum_sq_ += x * x;
}

void RunningStat::Reset() { *this = RunningStat(); }

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  const double m = mean();
  return std::max(0.0, sum_sq_ / count_ - m * m);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

std::vector<double> Histogram::MakeBounds() {
  std::vector<double> bounds(kNumBuckets);
  // Geometric progression from 1 us to 1e8 us (100 s).
  const double lo = 1.0, hi = 1e8;
  const double ratio = std::pow(hi / lo, 1.0 / (kNumBuckets - 1));
  double b = lo;
  for (int i = 0; i < kNumBuckets; ++i) {
    bounds[i] = b;
    b *= ratio;
  }
  return bounds;
}

namespace {
const std::vector<double>& GlobalBounds() {
  static const auto& bounds = *new std::vector<double>(Histogram::MakeBounds());
  return bounds;
}
}  // namespace

Histogram::Histogram() : bounds_(GlobalBounds()), buckets_(kNumBuckets, 0) {}

void Histogram::Add(double value_us) {
  if (count_ == 0) {
    min_ = max_ = value_us;
  } else {
    min_ = std::min(min_, value_us);
    max_ = std::max(max_, value_us);
  }
  ++count_;
  sum_ += value_us;
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value_us);
  size_t idx = static_cast<size_t>(it - bounds_.begin());
  if (idx >= buckets_.size()) idx = buckets_.size() - 1;
  ++buckets_[idx];
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0.0;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double target = p / 100.0 * count_;
  int64_t acc = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    acc += buckets_[i];
    if (acc >= target) {
      const double upper = bounds_[i];
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const int64_t in_bucket = buckets_[i];
      if (in_bucket == 0) return upper;
      const double frac =
          (target - (acc - in_bucket)) / static_cast<double>(in_bucket);
      double v = lower + frac * (upper - lower);
      return std::clamp(v, min_, max_);
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << mean() << "us p50=" << Percentile(50)
     << "us p95=" << Percentile(95) << "us p99=" << Percentile(99)
     << "us max=" << max_ << "us";
  return os.str();
}

}  // namespace wattdb
