#ifndef WATTDB_COMMON_STATUS_H_
#define WATTDB_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace wattdb {

/// Error categories used across the engine. Modeled after the RocksDB
/// `Status` idiom: cheap to construct/copy for OK, carries a message for
/// error paths. No exceptions are thrown on hot paths.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kOutOfRange,
  kAborted,         ///< Transaction aborted (conflict, deadlock victim, ...)
  kBusy,            ///< Resource locked; retry later.
  kTimedOut,        ///< Lock wait timeout exceeded.
  kCorruption,      ///< On-"disk" structure violated an invariant.
  kNotSupported,
  kResourceExhausted,
  kInternal,
  kUnavailable,         ///< Node offline or partition mid-migration.
  kFailedPrecondition,  ///< Handle in the wrong state (moved-from, closed).
};

/// Result of a fallible operation. `Status::OK()` is the success value;
/// error statuses carry a `StatusCode` and a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg = "") {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(StatusCode::kBusy, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  StatusCode code_;
  std::string msg_;
};

/// Value-or-error wrapper (the facade API's return type). Access `value()`
/// only after checking `ok()`.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: `return 42;` in a `StatusOr<int>` function.
  StatusOr(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Constructing from an OK status is a bug and
  /// is converted into an internal error.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : var_(std::move(status)) {
    if (std::get<Status>(var_).ok()) {
      var_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(var_); }
  bool has_value() const { return ok(); }

  const T& value() const& { return std::get<T>(var_); }
  T& value() & { return std::get<T>(var_); }
  T&& value() && { return std::get<T>(std::move(var_)); }

  /// The held value, or `fallback` when holding an error.
  template <typename U>
  T value_or(U&& fallback) const& {
    return ok() ? value() : static_cast<T>(std::forward<U>(fallback));
  }

  /// OK() when holding a value, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(var_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> var_;
};

/// Historical name for StatusOr, kept for the storage/migration internals.
template <typename T>
using Result = StatusOr<T>;

const char* StatusCodeName(StatusCode code);

}  // namespace wattdb

/// Propagate a non-OK Status out of the current function.
#define WATTDB_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::wattdb::Status _s = (expr);             \
    if (!_s.ok()) return _s;                  \
  } while (0)

/// Assign a Result's value or propagate its error.
#define WATTDB_ASSIGN_OR_RETURN(lhs, expr)    \
  auto WATTDB_CONCAT_(_res_, __LINE__) = (expr);            \
  if (!WATTDB_CONCAT_(_res_, __LINE__).ok())                \
    return WATTDB_CONCAT_(_res_, __LINE__).status();        \
  lhs = std::move(WATTDB_CONCAT_(_res_, __LINE__)).value()

#define WATTDB_CONCAT_(a, b) WATTDB_CONCAT_IMPL_(a, b)
#define WATTDB_CONCAT_IMPL_(a, b) a##b

#endif  // WATTDB_COMMON_STATUS_H_
