#ifndef WATTDB_COMMON_CONSTANTS_H_
#define WATTDB_COMMON_CONSTANTS_H_

#include <cstddef>
#include <cstdint>

namespace wattdb {

/// Storage geometry from the paper (§4, Fig. 4): a segment is 32 MB and
/// consists of 4096 consecutively stored pages, i.e. pages are 8 KB. The
/// page is the unit of buffering and inter-node transfer; the segment is the
/// unit of distribution/migration in the storage subsystem.
constexpr size_t kPageSize = 8 * 1024;
constexpr size_t kPagesPerSegment = 4096;
constexpr size_t kSegmentSize = kPageSize * kPagesPerSegment;  // 32 MB

/// Usable payload bytes in a slotted page after the header.
constexpr size_t kPageHeaderSize = 32;
constexpr size_t kSlotSize = 8;

/// CPU-load upper bound that triggers offloading / repartitioning (§3.4).
constexpr double kCpuUpperThreshold = 0.80;
/// Lower bound under which the scale-in protocol may fire (§3.4).
constexpr double kCpuLowerThreshold = 0.30;

/// Default cluster size in the paper's testbed.
constexpr int kPaperClusterNodes = 10;

}  // namespace wattdb

#endif  // WATTDB_COMMON_CONSTANTS_H_
