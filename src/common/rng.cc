#include "common/rng.h"

#include <cmath>

namespace wattdb {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // Derive stable per-run NURand C constants, as TPC-C requires.
  c_255_ = Next() % 256;
  c_1023_ = Next() % 1024;
  c_8191_ = Next() % 8192;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (hi <= lo) return lo;
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Next() % span);
}

double Rng::UniformDouble() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Exponential(double mean) {
  double u = UniformDouble();
  if (u >= 1.0) u = 0.9999999999;
  return -mean * std::log(1.0 - u);
}

int64_t Rng::NURand(int64_t a, int64_t x, int64_t y) {
  uint64_t c = 0;
  switch (a) {
    case 255:
      c = c_255_;
      break;
    case 1023:
      c = c_1023_;
      break;
    case 8191:
      c = c_8191_;
      break;
    default:
      c = 0;
      break;
  }
  const int64_t r1 = UniformInt(0, a);
  const int64_t r2 = UniformInt(x, y);
  return ((((r1 | r2) + static_cast<int64_t>(c)) % (y - x + 1)) + x);
}

uint64_t Rng::Zipf(uint64_t n, double theta) {
  // Gray et al., "Quickly generating billion-record synthetic databases".
  // O(1) after an O(n)-free closed-form setup using the two-point method.
  if (n == 0) return 0;
  if (theta <= 0.0) return Next() % n;
  const double zetan = (std::pow(static_cast<double>(n), 1.0 - theta) - 1.0) /
                           (1.0 - theta) +
                       0.5;  // Approximation of the harmonic sum.
  const double alpha = 1.0 / (1.0 - theta);
  const double eta =
      (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
      (1.0 - 1.0 / zetan);
  const double u = UniformDouble();
  const double uz = u * zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  const uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n) * std::pow(eta * u - eta + 1.0, alpha));
  return v >= n ? n - 1 : v;
}

}  // namespace wattdb
