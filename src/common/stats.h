#ifndef WATTDB_COMMON_STATS_H_
#define WATTDB_COMMON_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace wattdb {

/// Streaming mean/min/max/stddev accumulator.
class RunningStat {
 public:
  void Add(double x);
  void Reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }
  double variance() const;
  double stddev() const;

 private:
  int64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-boundary latency histogram with percentile queries. Buckets grow
/// geometrically from 1 us to ~100 s, which covers every latency the
/// simulation produces.
class Histogram {
 public:
  Histogram();

  void Add(double value_us);
  void Reset();
  /// Merge another histogram's counts into this one.
  void Merge(const Histogram& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  /// p in [0, 100]; linear interpolation within the winning bucket.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  std::string ToString() const;

  /// Bucket boundaries shared by all histograms (geometric, 1 us .. 100 s).
  static std::vector<double> MakeBounds();

 private:
  static constexpr int kNumBuckets = 64;

  const std::vector<double>& bounds_;
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace wattdb

#endif  // WATTDB_COMMON_STATS_H_
