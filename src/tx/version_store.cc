#include "tx/version_store.h"

#include <algorithm>

#include "common/logging.h"

namespace wattdb::tx {

Status VersionStore::Write(TableId table, Key key, const Txn& txn,
                           std::optional<std::vector<uint8_t>> prior_in_page,
                           std::optional<std::vector<uint8_t>> new_payload,
                           bool deleted) {
  const ChainKey ck{table, key};
  auto it = chains_.find(ck);
  if (it == chains_.end()) {
    Chain chain;
    if (prior_in_page.has_value()) {
      // Materialize the implicit bulk-loaded version so old readers keep a
      // copy; it has been visible since timestamp 0.
      Version pre;
      pre.begin_ts = 0;
      pre.end_ts = kInfinityTs;  // Sealed below.
      pre.committed = true;
      pre.payload = std::move(*prior_in_page);
      overhead_bytes_ += VersionBytes(pre);
      chain.push_back(std::move(pre));
    }
    it = chains_.emplace(ck, std::move(chain)).first;
  }
  Chain& chain = it->second;
  if (!chain.empty()) {
    Version& newest = chain.back();
    if (!newest.committed && newest.writer != txn.id) {
      return Status::Busy("write-write conflict");
    }
    if (!newest.committed && newest.writer == txn.id) {
      // Same transaction overwrites its own provisional version in place.
      overhead_bytes_ -= VersionBytes(newest);
      newest.deleted = deleted;
      newest.payload = new_payload.value_or(std::vector<uint8_t>{});
      overhead_bytes_ += VersionBytes(newest);
      return Status::OK();
    }
  }
  Version v;
  v.begin_ts = 0;  // Stamped at commit.
  v.committed = false;
  v.writer = txn.id;
  v.deleted = deleted;
  if (new_payload.has_value()) v.payload = std::move(*new_payload);
  overhead_bytes_ += VersionBytes(v);
  chain.push_back(std::move(v));
  write_sets_[txn.id].push_back(ck);
  return Status::OK();
}

void VersionStore::Commit(const Txn& txn) {
  WATTDB_CHECK(txn.commit_ts != 0);
  auto ws = write_sets_.find(txn.id);
  if (ws == write_sets_.end()) return;
  for (const ChainKey& ck : ws->second) {
    auto it = chains_.find(ck);
    if (it == chains_.end() || it->second.empty()) continue;
    Chain& chain = it->second;
    Version& newest = chain.back();
    if (!newest.committed && newest.writer == txn.id) {
      newest.committed = true;
      newest.begin_ts = txn.commit_ts;
      if (chain.size() >= 2) {
        chain[chain.size() - 2].end_ts = txn.commit_ts;
      }
    }
  }
  write_sets_.erase(ws);
}

std::vector<VersionStore::UndoEntry> VersionStore::Abort(const Txn& txn) {
  std::vector<UndoEntry> undo;
  auto ws = write_sets_.find(txn.id);
  if (ws == write_sets_.end()) return undo;
  for (const ChainKey& ck : ws->second) {
    auto it = chains_.find(ck);
    if (it == chains_.end() || it->second.empty()) continue;
    Chain& chain = it->second;
    if (!chain.back().committed && chain.back().writer == txn.id) {
      overhead_bytes_ -= VersionBytes(chain.back());
      chain.pop_back();
      UndoEntry e;
      e.table = ck.table;
      e.key = ck.key;
      if (!chain.empty() && !chain.back().deleted) {
        e.pre_image = chain.back().payload;
        chain.back().end_ts = kInfinityTs;
      }
      undo.push_back(std::move(e));
      if (chain.empty()) chains_.erase(it);
    }
  }
  write_sets_.erase(ws);
  return undo;
}

VersionStore::ReadView VersionStore::Resolve(const Chain& chain,
                                             Timestamp snapshot,
                                             TxnId self) const {
  ReadView view;
  // Walk newest -> oldest for the first visible version.
  for (auto v = chain.rbegin(); v != chain.rend(); ++v) {
    const bool own = !v->committed && v->writer == self;
    const bool committed_visible = v->committed && v->begin_ts <= snapshot;
    if (!own && !committed_visible) continue;
    if (v->deleted) {
      view.source = ReadView::Source::kDeleted;
      return view;
    }
    // The newest version is what the data page materializes; any older one
    // must be served from the chain.
    const bool is_newest = (v == chain.rbegin());
    if (is_newest) {
      view.source = ReadView::Source::kPage;
    } else {
      view.source = ReadView::Source::kChain;
      view.payload = &v->payload;
    }
    return view;
  }
  view.source = ReadView::Source::kInvisible;
  return view;
}

VersionStore::ReadView VersionStore::Read(TableId table, Key key,
                                          Timestamp snapshot,
                                          TxnId self) const {
  auto it = chains_.find(ChainKey{table, key});
  if (it == chains_.end()) {
    return ReadView{};  // kPage: bulk-loaded or never written.
  }
  return Resolve(it->second, snapshot, self);
}

void VersionStore::ForEachResolvedInRange(
    TableId table, Key lo, Key hi, Timestamp snapshot, TxnId self,
    const std::function<void(Key, const ReadView&)>& fn) const {
  auto it = chains_.lower_bound(ChainKey{table, lo});
  for (; it != chains_.end(); ++it) {
    if (it->first.table != table || it->first.key >= hi) break;
    fn(it->first.key, Resolve(it->second, snapshot, self));
  }
}

bool VersionStore::HasConflictingWriter(TableId table, Key key,
                                        TxnId self) const {
  auto it = chains_.find(ChainKey{table, key});
  if (it == chains_.end() || it->second.empty()) return false;
  const Version& newest = it->second.back();
  return !newest.committed && newest.writer != self;
}

void VersionStore::Gc(Timestamp min_active) {
  for (auto it = chains_.begin(); it != chains_.end();) {
    Chain& chain = it->second;
    // Drop superseded versions no active snapshot can reach.
    while (chain.size() > 1 && chain.front().committed &&
           chain.front().end_ts != kInfinityTs &&
           chain.front().end_ts <= min_active) {
      overhead_bytes_ -= VersionBytes(chain.front());
      chain.erase(chain.begin());
    }
    // A single committed live version older than every snapshot is fully
    // mirrored by the data page; the chain itself can go.
    if (chain.size() == 1 && chain.front().committed &&
        !chain.front().deleted && chain.front().end_ts == kInfinityTs &&
        chain.front().begin_ts < min_active) {
      overhead_bytes_ -= VersionBytes(chain.front());
      it = chains_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t VersionStore::VersionCount() const {
  size_t n = 0;
  for (const auto& [ck, chain] : chains_) n += chain.size();
  return n;
}

}  // namespace wattdb::tx
