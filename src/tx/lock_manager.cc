#include "tx/lock_manager.h"

#include <algorithm>

namespace wattdb::tx {

bool LockCompatible(LockMode held, LockMode requested) {
  // Standard MGL compatibility matrix (rows: held, cols: requested).
  static constexpr bool kCompat[4][4] = {
      //            IS     IX     S      X
      /* IS */ {true, true, true, false},
      /* IX */ {true, true, false, false},
      /* S  */ {true, false, true, false},
      /* X  */ {false, false, false, false},
  };
  return kCompat[static_cast<int>(held)][static_cast<int>(requested)];
}

const char* LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kIS:
      return "IS";
    case LockMode::kIX:
      return "IX";
    case LockMode::kS:
      return "S";
    case LockMode::kX:
      return "X";
  }
  return "?";
}

namespace {
/// Lock-strength order for in-place upgrades: X > S/IX > IS.
int Strength(LockMode m) {
  switch (m) {
    case LockMode::kIS:
      return 0;
    case LockMode::kIX:
    case LockMode::kS:
      return 1;
    case LockMode::kX:
      return 2;
  }
  return 0;
}
}  // namespace

SimTime LockManager::EarliestGrant(const LockResource& res, LockMode mode,
                                   TxnId txn, SimTime now) const {
  auto it = table_.find(res);
  if (it == table_.end()) return now;
  SimTime t = now;
  for (const Grant& g : it->second) {
    if (g.txn == txn) continue;           // Own grants never conflict.
    if (g.until <= t) continue;           // Already released by then.
    if (!LockCompatible(g.mode, mode)) {
      t = std::max(t, g.until);
    }
  }
  return t;
}

LockGrant LockManager::Acquire(const LockResource& res, LockMode mode,
                               TxnId txn, SimTime now, SimTime release_at) {
  auto& grants = table_[res];
  // In-place upgrade if this transaction already holds the resource.
  for (Grant& g : grants) {
    if (g.txn == txn) {
      if (Strength(mode) > Strength(g.mode)) {
        // Upgrades must additionally wait for conflicting peers.
        const SimTime t = EarliestGrant(res, mode, txn, now);
        g.mode = mode;
        g.until = std::max(g.until, release_at);
        return LockGrant{t, t - now};
      }
      g.until = std::max(g.until, release_at);
      return LockGrant{now, 0};
    }
  }
  const SimTime t = EarliestGrant(res, mode, txn, now);
  grants.push_back(Grant{txn, mode, t, std::max(release_at, t)});
  by_txn_[txn].push_back(res);
  return LockGrant{t, t - now};
}

void LockManager::ExtendHold(TxnId txn, SimTime release_at) {
  auto it = by_txn_.find(txn);
  if (it == by_txn_.end()) return;
  for (const LockResource& res : it->second) {
    auto tit = table_.find(res);
    if (tit == table_.end()) continue;
    for (Grant& g : tit->second) {
      if (g.txn == txn && g.until < release_at) g.until = release_at;
    }
  }
}

void LockManager::SettleAll(TxnId txn, SimTime at) {
  auto it = by_txn_.find(txn);
  if (it == by_txn_.end()) return;
  for (const LockResource& res : it->second) {
    auto tit = table_.find(res);
    if (tit == table_.end()) continue;
    for (Grant& g : tit->second) {
      if (g.txn == txn) g.until = std::max(g.from, at);
    }
  }
  by_txn_.erase(it);
}

void LockManager::ReleaseAll(TxnId txn) {
  auto it = by_txn_.find(txn);
  if (it == by_txn_.end()) return;
  for (const LockResource& res : it->second) {
    auto tit = table_.find(res);
    if (tit == table_.end()) continue;
    auto& grants = tit->second;
    grants.erase(std::remove_if(grants.begin(), grants.end(),
                                [&](const Grant& g) { return g.txn == txn; }),
                 grants.end());
    if (grants.empty()) table_.erase(tit);
  }
  by_txn_.erase(it);
}

size_t LockManager::GrantCount() const {
  size_t n = 0;
  for (const auto& [res, grants] : table_) n += grants.size();
  return n;
}

void LockManager::Prune(SimTime before) {
  for (auto it = table_.begin(); it != table_.end();) {
    auto& grants = it->second;
    grants.erase(std::remove_if(grants.begin(), grants.end(),
                                [&](const Grant& g) { return g.until <= before; }),
                 grants.end());
    if (grants.empty()) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
  // by_txn_ entries are cleaned in ReleaseAll; stale references to pruned
  // resources are tolerated (lookups simply miss).
}

}  // namespace wattdb::tx
