#include "tx/log_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace wattdb::tx {

LogManager::LogManager(NodeId node, hw::Disk* log_disk, hw::Network* network)
    : node_(node), log_disk_(log_disk), network_(network) {
  WATTDB_CHECK(log_disk_ != nullptr);
}

SimTime LogManager::Append(SimTime now, LogRecord record) {
  record.lsn = next_lsn_++;
  const size_t bytes = record.Bytes();
  bytes_written_ += static_cast<int64_t>(bytes);
  records_.push_back(std::move(record));

  if (helper_node_.valid()) {
    // Log shipping: the record travels to the helper and is persisted on
    // the helper's disk; the local log disk stays idle (Fig. 8 setup).
    const SimTime arrived = network_->Transfer(now, node_, helper_node_, bytes);
    if (helper_disk_ != nullptr) {
      return helper_disk_->AccessAppend(arrived, bytes);
    }
    return arrived;
  }
  return log_disk_->AccessAppend(now, bytes);
}

SimTime LogManager::Flush(SimTime now) { return now; }

SimTime LogManager::ChargeBytes(SimTime now, size_t bytes) {
  bytes_written_ += static_cast<int64_t>(bytes);
  if (helper_node_.valid()) {
    const SimTime arrived =
        network_->Transfer(now, node_, helper_node_, bytes);
    if (helper_disk_ != nullptr) {
      return helper_disk_->AccessAppend(arrived, bytes);
    }
    return arrived;
  }
  return log_disk_->AccessAppend(now, bytes);
}

void LogManager::AttachHelper(NodeId helper, hw::Disk* helper_disk) {
  helper_node_ = helper;
  helper_disk_ = helper_disk;
}

void LogManager::DetachHelper() {
  helper_node_ = NodeId::Invalid();
  helper_disk_ = nullptr;
}

std::vector<LogRecord> LogManager::Tail(uint64_t from_lsn) const {
  std::vector<LogRecord> out;
  for (const LogRecord& r : records_) {
    if (r.lsn > from_lsn) out.push_back(r);
  }
  return out;
}

uint64_t LogManager::LastCheckpointLsn(PartitionId partition) const {
  uint64_t lsn = 0;
  for (const LogRecord& r : records_) {
    if (r.type == LogRecordType::kCheckpoint && r.partition == partition) {
      lsn = r.lsn;
    }
  }
  return lsn;
}

std::vector<LogRecord> LogManager::TailAfter(PartitionId partition) const {
  const uint64_t from_lsn = LastCheckpointLsn(partition);
  std::vector<LogRecord> out;
  for (const LogRecord& r : records_) {
    if (r.lsn > from_lsn && r.partition == partition) out.push_back(r);
  }
  return out;
}

SimTime LogManager::ChargeReplayRead(SimTime now, size_t bytes) {
  if (bytes == 0) return now;
  if (helper_node_.valid() && helper_disk_ != nullptr) {
    // The log lives at the helper: read it there and ship it back.
    const SimTime read_done = helper_disk_->AccessSequential(now, bytes);
    return network_->Transfer(read_done, helper_node_, node_, bytes);
  }
  return log_disk_->AccessSequential(now, bytes);
}

void LogManager::TruncateUpTo(uint64_t lsn) {
  records_.erase(std::remove_if(records_.begin(), records_.end(),
                                [&](const LogRecord& r) { return r.lsn <= lsn; }),
                 records_.end());
}

}  // namespace wattdb::tx
