#include "tx/log_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace wattdb::tx {

LogManager::LogManager(NodeId node, hw::Disk* log_disk, hw::Network* network)
    : node_(node), log_disk_(log_disk), network_(network) {
  WATTDB_CHECK(log_disk_ != nullptr);
}

SimTime LogManager::Append(SimTime now, LogRecord record) {
  record.lsn = next_lsn_++;
  const size_t bytes = record.Bytes();
  bytes_written_ += static_cast<int64_t>(bytes);
  records_.push_back(std::move(record));

  if (helper_node_.valid()) {
    // Log shipping: the record travels to the helper and is persisted on
    // the helper's disk; the local log disk stays idle (Fig. 8 setup).
    helper_held_bytes_ += static_cast<int64_t>(bytes);
    const SimTime arrived = network_->Transfer(now, node_, helper_node_, bytes);
    if (helper_disk_ != nullptr) {
      return helper_disk_->AccessAppend(arrived, bytes);
    }
    return arrived;
  }
  return log_disk_->AccessAppend(now, bytes);
}

SimTime LogManager::Flush(SimTime now) { return now; }

SimTime LogManager::ChargeBytes(SimTime now, size_t bytes) {
  bytes_written_ += static_cast<int64_t>(bytes);
  if (helper_node_.valid()) {
    helper_held_bytes_ += static_cast<int64_t>(bytes);
    const SimTime arrived =
        network_->Transfer(now, node_, helper_node_, bytes);
    if (helper_disk_ != nullptr) {
      return helper_disk_->AccessAppend(arrived, bytes);
    }
    return arrived;
  }
  return log_disk_->AccessAppend(now, bytes);
}

void LogManager::AttachHelper(NodeId helper, hw::Disk* helper_disk) {
  helper_node_ = helper;
  helper_disk_ = helper_disk;
  helper_held_bytes_ = 0;
}

SimTime LogManager::DetachHelper(SimTime now) {
  const int64_t held = helper_held_bytes_;
  hw::Disk* held_on = helper_disk_;
  const NodeId held_at = helper_node_;
  helper_node_ = NodeId::Invalid();
  helper_disk_ = nullptr;
  helper_held_bytes_ = 0;
  if (held <= 0 || held_on == nullptr) return now;
  // Everything shipped since attach is durable only at the helper; before
  // the helper is released (typically to be powered off), that tail must
  // come home: sequential read there, network hop back, local append.
  const size_t bytes = static_cast<size_t>(held);
  const SimTime read_done = held_on->AccessSequential(now, bytes);
  const SimTime arrived = network_->Transfer(read_done, held_at, node_, bytes);
  return log_disk_->AccessAppend(arrived, bytes);
}

SimTime LogManager::DetachHelperLost(SimTime now) {
  const int64_t held = helper_held_bytes_;
  helper_node_ = NodeId::Invalid();
  helper_disk_ = nullptr;
  helper_held_bytes_ = 0;
  if (held <= 0) return now;
  // The helper's disk is gone and with it the shipped tail's only durable
  // copy. The records still sit in this node's in-memory log buffer
  // (records_), and their commits were acknowledged — re-force them to the
  // local log disk immediately to restore durability.
  return log_disk_->AccessAppend(now, static_cast<size_t>(held));
}

std::vector<LogRecord> LogManager::Tail(uint64_t from_lsn) const {
  std::vector<LogRecord> out;
  for (const LogRecord& r : records_) {
    if (r.lsn > from_lsn) out.push_back(r);
  }
  return out;
}

uint64_t LogManager::LastCheckpointLsn(PartitionId partition) const {
  uint64_t lsn = 0;
  for (const LogRecord& r : records_) {
    if (r.type == LogRecordType::kCheckpoint && r.partition == partition) {
      lsn = r.lsn;
    }
  }
  return lsn;
}

std::vector<LogRecord> LogManager::TailAfter(PartitionId partition) const {
  const uint64_t from_lsn = LastCheckpointLsn(partition);
  std::vector<LogRecord> out;
  for (const LogRecord& r : records_) {
    if (r.lsn > from_lsn && r.partition == partition) out.push_back(r);
  }
  return out;
}

SimTime LogManager::ChargeReplayRead(SimTime now, size_t bytes) {
  if (bytes == 0) return now;
  if (helper_node_.valid() && helper_disk_ != nullptr) {
    // The log lives at the helper: read it there and ship it back.
    const SimTime read_done = helper_disk_->AccessSequential(now, bytes);
    return network_->Transfer(read_done, helper_node_, node_, bytes);
  }
  return log_disk_->AccessSequential(now, bytes);
}

void LogManager::TruncateUpTo(uint64_t lsn) {
  records_.erase(
      std::remove_if(records_.begin(), records_.end(),
                     [&](const LogRecord& r) { return r.lsn <= lsn; }),
      records_.end());
}

}  // namespace wattdb::tx
