#ifndef WATTDB_TX_LOG_MANAGER_H_
#define WATTDB_TX_LOG_MANAGER_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/types.h"
#include "hw/disk.h"
#include "hw/network.h"
#include "tx/transaction.h"

namespace wattdb::tx {

enum class LogRecordType : uint8_t {
  kBegin,
  kInsert,
  kUpdate,
  kDelete,
  kCommit,
  kAbort,
  kCheckpoint,  ///< Written when a partition move completes (§4.3 Logging).
};

/// A write-ahead log record. After-images are retained so node-local redo
/// recovery can reconstruct partitions (§4.3: "the log file is needed to
/// reconstruct partitions and to perform appropriate UNDO and REDO").
struct LogRecord {
  uint64_t lsn = 0;
  LogRecordType type = LogRecordType::kBegin;
  TxnId txn;
  TableId table;
  PartitionId partition;
  Key key = 0;
  std::vector<uint8_t> after_image;
  /// Approximate serialized size for I/O costing.
  size_t Bytes() const { return 48 + after_image.size(); }
};

/// Per-node write-ahead log (§4.3 Logging). Appends normally pay a
/// sequential write on the node's log disk; when a helper node is attached
/// (Fig. 8's improved rebalancing), appends are shipped over the network to
/// the helper instead, relieving the local storage subsystem.
class LogManager {
 public:
  LogManager(NodeId node, hw::Disk* log_disk, hw::Network* network);

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Append a record at simulated time `now`; returns the time the record
  /// is durable (on disk or at the helper).
  SimTime Append(SimTime now, LogRecord record);

  /// Force-write (group commit): returns durability time for everything
  /// appended so far. With per-append durability this is a no-op that
  /// returns `now`.
  SimTime Flush(SimTime now);

  /// Charge log-volume I/O without materializing records (used by the
  /// migration cost scale-up: each materialized record stands for many
  /// paper-scale records whose log volume must still hit the disk/helper).
  SimTime ChargeBytes(SimTime now, size_t bytes);

  /// Redirect appends to `helper` (log shipping via the network).
  void AttachHelper(NodeId helper, hw::Disk* helper_disk);

  /// Graceful detach (helper is alive, e.g. DetachHelpers powering it
  /// down): the log tail shipped since attach lives only on the helper's
  /// disk, so it is read back there, shipped over the network, and
  /// appended to the local log disk before the redirect is dropped.
  /// Returns the time local durability is restored (`now` when nothing
  /// was shipped). Detaching mid-append is safe: every record appended so
  /// far is counted in the held tail, whether or not its own durability
  /// time has passed yet.
  SimTime DetachHelper(SimTime now);

  /// Detach after the helper *crashed*: its disk (and the shipped tail's
  /// only durable copy) is gone. The tail is re-forced from the in-memory
  /// log buffer to the local disk — commits were acknowledged at ship
  /// time, so the force must happen now, not lazily. Returns the time the
  /// local re-force completes.
  SimTime DetachHelperLost(SimTime now);

  bool HasHelper() const { return helper_node_.valid(); }

  /// Log bytes whose only durable copy currently sits on the helper's
  /// disk (shipped since attach, not yet re-localized).
  int64_t helper_held_bytes() const { return helper_held_bytes_; }

  /// Records with lsn > `from_lsn`, for recovery and tests.
  std::vector<LogRecord> Tail(uint64_t from_lsn) const;

  /// The redo tail of one partition: its records with lsn greater than its
  /// last `kCheckpoint` record (a completed partition move acts as a
  /// checkpoint, §4.3 — everything before it is already durable in the
  /// moved segments). The whole log when no checkpoint names the partition;
  /// empty when nothing was logged after the checkpoint.
  std::vector<LogRecord> TailAfter(PartitionId partition) const;

  /// LSN of the last `kCheckpoint` record naming `partition` (0 if none) —
  /// the redo lower bound used by TailAfter.
  uint64_t LastCheckpointLsn(PartitionId partition) const;

  /// Charge a sequential read of `bytes` from wherever the log lives (the
  /// local log disk, or the helper's disk while shipping): the I/O cost of
  /// scanning the tail during crash recovery.
  SimTime ChargeReplayRead(SimTime now, size_t bytes);

  const std::vector<LogRecord>& records() const { return records_; }

  /// Truncate everything up to `lsn` (checkpointing after a partition move
  /// makes the old log obsolete, §4.3).
  void TruncateUpTo(uint64_t lsn);

  uint64_t next_lsn() const { return next_lsn_; }
  int64_t bytes_written() const { return bytes_written_; }

 private:
  NodeId node_;
  hw::Disk* log_disk_;
  hw::Network* network_;
  NodeId helper_node_;
  hw::Disk* helper_disk_ = nullptr;
  /// Bytes shipped to the current helper since AttachHelper.
  int64_t helper_held_bytes_ = 0;

  uint64_t next_lsn_ = 1;
  int64_t bytes_written_ = 0;
  std::vector<LogRecord> records_;
};

}  // namespace wattdb::tx

#endif  // WATTDB_TX_LOG_MANAGER_H_
