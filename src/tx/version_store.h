#ifndef WATTDB_TX_VERSION_STORE_H_
#define WATTDB_TX_VERSION_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "tx/transaction.h"

namespace wattdb::tx {

/// One version of a record. `end_ts` is the begin timestamp of the
/// superseding version (kInfinityTs while current). A provisional version
/// (uncommitted writer) carries `committed == false` and is visible only to
/// its own transaction until Commit() stamps it.
struct Version {
  Timestamp begin_ts = 0;
  Timestamp end_ts = kInfinityTs;
  bool deleted = false;
  bool committed = true;
  TxnId writer;
  std::vector<uint8_t> payload;
};

/// Multiversion store backing MVCC (§3.5). Bulk-loaded records have no
/// chain: they are implicitly one committed version with begin_ts 0 whose
/// payload lives in the data page. Any transactional write creates chain
/// entries here, so old snapshots can keep reading while newer versions (or
/// in-flight writers) exist — the property the paper exploits to keep
/// readers running while records move between partitions.
class VersionStore {
 public:
  /// What a snapshot read resolved to.
  struct ReadView {
    enum class Source {
      kPage,     ///< No chain (or chain agrees): read the data page.
      kChain,    ///< Old version served from the chain; payload set.
      kDeleted,  ///< Visible version is a delete: record does not exist.
      kInvisible ///< Record created after the snapshot: does not exist.
    } source = Source::kPage;
    const std::vector<uint8_t>* payload = nullptr;  ///< For kChain.
  };

  /// Install a provisional version (insert/update/delete) for `txn`.
  /// `prior_in_page` must be the pre-image currently materialized in the
  /// data page when this is the first chain entry for the key (so old
  /// readers can still see it); pass std::nullopt if the key has no visible
  /// pre-image (fresh insert).
  Status Write(TableId table, Key key, const Txn& txn,
               std::optional<std::vector<uint8_t>> prior_in_page,
               std::optional<std::vector<uint8_t>> new_payload, bool deleted);

  /// Stamp all provisional versions of `txn` with its commit timestamp.
  void Commit(const Txn& txn);

  /// Discard provisional versions of `txn`. Returns the pre-images that must
  /// be restored into data pages: (table, key, payload-or-nullopt-if-the-
  /// record-did-not-exist).
  struct UndoEntry {
    TableId table;
    Key key;
    std::optional<std::vector<uint8_t>> pre_image;
  };
  std::vector<UndoEntry> Abort(const Txn& txn);

  /// Resolve `key` under `snapshot` (reader's begin_ts). `self` lets a
  /// transaction see its own provisional writes.
  ReadView Read(TableId table, Key key, Timestamp snapshot, TxnId self) const;

  /// True if the newest version is a provisional write by another active
  /// transaction (write-write conflict under first-updater-wins).
  bool HasConflictingWriter(TableId table, Key key, TxnId self) const;

  /// Visit every version chain with a key in [lo, hi) of `table`, in key
  /// order, resolved under `snapshot`/`self`. Lets scans overlay chain
  /// results on page contents — in particular, records that were deleted
  /// from the pages but are still visible to old snapshots.
  void ForEachResolvedInRange(
      TableId table, Key lo, Key hi, Timestamp snapshot, TxnId self,
      const std::function<void(Key, const ReadView&)>& fn) const;

  /// Drop versions no snapshot older than `min_active` can need. Chains
  /// reduced to one committed, non-deleted entry older than `min_active`
  /// are removed entirely (the page copy suffices).
  void Gc(Timestamp min_active);

  /// Bytes held in version chains — the MVCC storage overhead of Fig. 3.
  size_t OverheadBytes() const { return overhead_bytes_; }
  size_t ChainCount() const { return chains_.size(); }
  size_t VersionCount() const;

 private:
  struct ChainKey {
    TableId table;
    Key key;
    friend bool operator==(const ChainKey& a, const ChainKey& b) {
      return a.table == b.table && a.key == b.key;
    }
    friend bool operator<(const ChainKey& a, const ChainKey& b) {
      if (a.table != b.table) return a.table < b.table;
      return a.key < b.key;
    }
  };
  /// Oldest-first version list.
  using Chain = std::vector<Version>;

  static size_t VersionBytes(const Version& v) {
    return sizeof(Version) + v.payload.size();
  }

  /// Resolve one chain under a snapshot (shared by Read and range visits).
  ReadView Resolve(const Chain& chain, Timestamp snapshot, TxnId self) const;

  /// Ordered so range scans can merge chain state with page state. GC keeps
  /// this map small (only recently-written keys have chains).
  std::map<ChainKey, Chain> chains_;
  /// Keys provisionally written per active transaction, so Commit/Abort
  /// touch only the write set instead of scanning every chain.
  std::unordered_map<TxnId, std::vector<ChainKey>> write_sets_;
  size_t overhead_bytes_ = 0;
};

}  // namespace wattdb::tx

#endif  // WATTDB_TX_VERSION_STORE_H_
