#include "tx/transaction_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace wattdb::tx {

TransactionManager::TransactionManager() = default;

Txn* TransactionManager::Begin(SimTime now, bool read_only, bool system) {
  auto txn = std::make_unique<Txn>();
  txn->id = TxnId(next_ts_++);
  txn->begin_ts = txn->id.value();
  txn->read_only = read_only;
  txn->system = system;
  txn->start_time = now;
  txn->now = now;
  Txn* raw = txn.get();
  active_.emplace(raw->id, std::move(txn));
  return raw;
}

Timestamp TransactionManager::Commit(Txn* txn) {
  WATTDB_CHECK(txn->state == TxnState::kActive);
  txn->commit_ts = next_ts_++;
  txn->state = TxnState::kCommitted;
  versions_.Commit(*txn);
  locks_.SettleAll(txn->id, txn->now);
  ++committed_;
  return txn->commit_ts;
}

std::vector<VersionStore::UndoEntry> TransactionManager::Abort(Txn* txn) {
  WATTDB_CHECK(txn->state == TxnState::kActive);
  txn->state = TxnState::kAborted;
  auto undo = versions_.Abort(*txn);
  locks_.SettleAll(txn->id, txn->now);
  ++aborted_;
  return undo;
}

void TransactionManager::Release(TxnId id) { active_.erase(id); }

Txn* TransactionManager::Get(TxnId id) {
  auto it = active_.find(id);
  return it == active_.end() ? nullptr : it->second.get();
}

Timestamp TransactionManager::MinActiveTs() const {
  Timestamp min_ts = next_ts_;
  for (const auto& [id, txn] : active_) {
    if (txn->state != TxnState::kActive) continue;  // Finished, unreleased.
    min_ts = std::min(min_ts, txn->begin_ts);
  }
  return min_ts;
}

void TransactionManager::Vacuum() { versions_.Gc(MinActiveTs()); }

}  // namespace wattdb::tx
