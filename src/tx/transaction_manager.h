#ifndef WATTDB_TX_TRANSACTION_MANAGER_H_
#define WATTDB_TX_TRANSACTION_MANAGER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/status.h"
#include "common/types.h"
#include "tx/lock_manager.h"
#include "tx/transaction.h"
#include "tx/version_store.h"

namespace wattdb::tx {

/// Cluster-wide transaction authority. WattDB coordinates transactions from
/// the master node (§3.2), so a single timestamp domain is appropriate:
/// TxnIds double as begin timestamps and commit timestamps come from the
/// same monotone counter, giving snapshot-consistent MVCC across nodes.
class TransactionManager {
 public:
  TransactionManager();

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// Start a transaction at simulated time `now`.
  Txn* Begin(SimTime now, bool read_only = false, bool system = false);

  /// Commit: stamps versions; locks are settled to expire at the
  /// transaction's simulated completion time (txn->now), so transactions
  /// that logically overlap still observe the blocking. The Txn object
  /// stays alive until Release().
  Timestamp Commit(Txn* txn);

  /// Abort: discards provisional versions; the caller applies the returned
  /// undo entries to the data pages. Txn stays alive until Release().
  std::vector<VersionStore::UndoEntry> Abort(Txn* txn);

  /// Free a finished transaction after its metrics have been collected.
  void Release(TxnId id);

  Txn* Get(TxnId id);

  /// Oldest begin timestamp among active transactions (GC horizon).
  Timestamp MinActiveTs() const;

  /// Run version GC up to the current horizon.
  void Vacuum();

  VersionStore& versions() { return versions_; }
  LockManager& locks() { return locks_; }

  int64_t committed() const { return committed_; }
  int64_t aborted() const { return aborted_; }
  size_t active_count() const { return active_.size(); }

 private:
  uint64_t next_ts_ = 1;
  std::unordered_map<TxnId, std::unique_ptr<Txn>> active_;
  VersionStore versions_;
  LockManager locks_;
  int64_t committed_ = 0;
  int64_t aborted_ = 0;
};

}  // namespace wattdb::tx

#endif  // WATTDB_TX_TRANSACTION_MANAGER_H_
