#ifndef WATTDB_TX_LOCK_MANAGER_H_
#define WATTDB_TX_LOCK_MANAGER_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "tx/transaction.h"

namespace wattdb::tx {

/// Multi-granularity lock modes (MGL-RX, §3.5): intention locks on coarse
/// granules, S/X on the accessed granule.
enum class LockMode : uint8_t { kIS, kIX, kS, kX };

bool LockCompatible(LockMode held, LockMode requested);
const char* LockModeName(LockMode mode);

/// A lockable resource in the granule hierarchy table -> partition ->
/// record. Segments are latched, not locked (physical moves need only
/// lightweight synchronization, §4.1).
struct LockResource {
  enum class Kind : uint8_t { kTable, kPartition, kRecord } kind;
  uint64_t a = 0;  ///< table/partition id value.
  uint64_t b = 0;  ///< record key for kRecord.

  static LockResource Table(TableId t) {
    return {Kind::kTable, t.value(), 0};
  }
  static LockResource Partition(PartitionId p) {
    return {Kind::kPartition, p.value(), 0};
  }
  static LockResource Record(PartitionId p, Key k) {
    return {Kind::kRecord, p.value(), k};
  }

  friend bool operator==(const LockResource& x, const LockResource& y) {
    return x.kind == y.kind && x.a == y.a && x.b == y.b;
  }
};

struct LockResourceHash {
  size_t operator()(const LockResource& r) const {
    size_t h = static_cast<size_t>(r.kind);
    h = h * 1000003 + std::hash<uint64_t>()(r.a);
    h = h * 1000003 + std::hash<uint64_t>()(r.b);
    return h;
  }
};

/// Result of a lock request under the timeline model.
struct LockGrant {
  SimTime granted_at = 0;  ///< When the lock becomes held (>= request time).
  SimTime waited_us = 0;   ///< granted_at - request time.
};

/// Deterministic lock table over simulated time. Because transactions are
/// evaluated as timelines (each carries its own clock), a grant is an
/// interval [granted_at, release_at): a conflicting request arriving at time
/// t is granted at the latest incompatible holder's release time. This
/// reproduces blocking delays and drain semantics (e.g. the migration read
/// lock of §4.3) exactly and deterministically, without thread scheduling.
class LockManager {
 public:
  /// Request `mode` on `res` at time `now`, intending to hold it until
  /// `release_at` (the requester's projected completion; it may be extended
  /// later via ExtendHold). Same-transaction re-requests upgrade in place.
  LockGrant Acquire(const LockResource& res, LockMode mode, TxnId txn,
                    SimTime now, SimTime release_at);

  /// Earliest time `mode` could be granted, without taking the lock.
  SimTime EarliestGrant(const LockResource& res, LockMode mode, TxnId txn,
                        SimTime now) const;

  /// Push a transaction's release horizon on every lock it holds (called
  /// when a transaction's completion estimate grows).
  void ExtendHold(TxnId txn, SimTime release_at);

  /// Truncate every grant of `txn` to release exactly at `at` (its actual
  /// commit/abort time). The grants stay in the table and expire by time:
  /// later-arriving transactions still observe the wait they would have
  /// experienced. Use this — not ReleaseAll — at commit.
  void SettleAll(TxnId txn, SimTime at);

  /// Physically drop all grants of `txn` (tests and teardown only).
  void ReleaseAll(TxnId txn);

  /// Number of live grant entries (expired grants are pruned lazily).
  size_t GrantCount() const;

  /// Drop grants whose release time is before `before`.
  void Prune(SimTime before);

 private:
  struct Grant {
    TxnId txn;
    LockMode mode;
    SimTime from;
    SimTime until;
  };

  std::unordered_map<LockResource, std::vector<Grant>, LockResourceHash> table_;
  std::unordered_map<TxnId, std::vector<LockResource>> by_txn_;
};

}  // namespace wattdb::tx

#endif  // WATTDB_TX_LOCK_MANAGER_H_
