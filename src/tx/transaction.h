#ifndef WATTDB_TX_TRANSACTION_H_
#define WATTDB_TX_TRANSACTION_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace wattdb::tx {

/// MVCC timestamps are drawn from the same monotone counter as TxnIds.
using Timestamp = uint64_t;
constexpr Timestamp kInfinityTs = UINT64_MAX;

enum class TxnState { kActive, kCommitted, kAborted };

/// Which concurrency-control protocol a transaction runs under. The paper
/// compares classical multi-granularity locking with RX modes (MGL-RX)
/// against multiversion concurrency control (Fig. 3) and selects MVCC.
enum class CcScheme { kMvcc, kMglRx };

/// Descriptor of one (possibly system) transaction. Owned by the
/// TransactionManager; operators and the migration machinery reference it
/// while threading simulated time through kernel calls.
struct Txn {
  TxnId id;
  Timestamp begin_ts = 0;
  Timestamp commit_ts = 0;
  TxnState state = TxnState::kActive;
  bool read_only = false;
  /// System transactions guarantee serializability of record movement
  /// (§3.5); they are invisible to user-level monitoring.
  bool system = false;
  /// Admission-control priority class: batch-priority transactions (bulk
  /// loads, analytics) are shed before latency-sensitive ones when a
  /// node's admission queue fills up. Scans are always treated as batch
  /// traffic regardless of this flag.
  bool batch_priority = false;
  /// Simulated start time and running completion estimate.
  SimTime start_time = 0;
  SimTime now = 0;

  /// Reads served by a bounded-staleness warm replica instead of the
  /// authoritative owner (maintained by the routing layer). History
  /// recording reads it per op to tag observations that are only held to
  /// the relaxed staleness window, not strict linearizability.
  uint64_t replica_reads = 0;

  // Component-time accounting for the Fig. 7 breakdown (microseconds).
  SimTime cpu_us = 0;
  SimTime disk_us = 0;
  SimTime net_us = 0;
  SimTime lock_wait_us = 0;
  SimTime latch_us = 0;
  SimTime log_us = 0;

  /// Advance the transaction's private clock to `t` (monotone).
  void AdvanceTo(SimTime t) {
    if (t > now) now = t;
  }

  SimTime Elapsed() const { return now - start_time; }
  SimTime OtherUs() const {
    const SimTime accounted =
        cpu_us + disk_us + net_us + lock_wait_us + latch_us + log_us;
    const SimTime total = Elapsed();
    return total > accounted ? total - accounted : 0;
  }
};

}  // namespace wattdb::tx

#endif  // WATTDB_TX_TRANSACTION_H_
