#include "admission/admission.h"

#include <algorithm>
#include <string>

namespace wattdb::admission {

void AdmissionController::Prune(NodeQueue* q, SimTime now) {
  while (!q->completions.empty() && q->completions.top().first <= now) {
    q->outstanding -= q->completions.top().second;
    q->completions.pop();
  }
}

Status AdmissionController::Admit(NodeId node, OpClass cls, SimTime now,
                                  int ops) {
  NodeQueue& q = queues_[node];
  Prune(&q, now);
  if (policy_.enabled) {
    // The batch class only sees a slice of the queue: once depth crosses
    // batch_share * cap the remaining headroom is reserved for
    // latency-sensitive ops, so shedding hits the cheap class first.
    const int64_t full_cap = std::max(1, policy_.max_queue_ops);
    const int64_t cap =
        cls == OpClass::kBatch
            ? std::max<int64_t>(
                  1, static_cast<int64_t>(policy_.batch_share *
                                          static_cast<double>(full_cap)))
            : full_cap;
    if (q.outstanding + ops > cap) {
      shed_[static_cast<int>(cls)] += 1;
      return Status::ResourceExhausted(
          "node " + std::to_string(node.value()) + " admission queue full (" +
          std::to_string(q.outstanding) + " outstanding + " +
          std::to_string(ops) + " > cap " + std::to_string(cap) + " for " +
          ToString(cls) + " class)");
    }
  }
  admitted_[static_cast<int>(cls)] += 1;
  return Status::OK();
}

void AdmissionController::Complete(NodeId node, SimTime completion, int ops) {
  NodeQueue& q = queues_[node];
  q.completions.push({completion, ops});
  q.outstanding += ops;
}

int64_t AdmissionController::QueueDepth(NodeId node, SimTime now) const {
  auto it = queues_.find(node);
  if (it == queues_.end()) return 0;
  Prune(&it->second, now);
  return it->second.outstanding;
}

}  // namespace wattdb::admission
