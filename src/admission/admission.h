#ifndef WATTDB_ADMISSION_ADMISSION_H_
#define WATTDB_ADMISSION_ADMISSION_H_

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace wattdb::admission {

/// Priority class of one routed operation. When a node's admission queue
/// fills up, the cheap class is refused first: batch/scan traffic can be
/// retried at leisure, while a shed point lookup is a user-visible error.
enum class OpClass {
  kLatencySensitive = 0,  ///< Point ops of interactive transactions.
  kBatch = 1,             ///< Batch-priority transactions and all scans.
};

inline const char* ToString(OpClass cls) {
  return cls == OpClass::kBatch ? "batch" : "latency-sensitive";
}

/// Per-node admission queue caps and the overload signal they feed the
/// master. Shedding refuses work with ResourceExhausted at the routing
/// layer — before any hop is charged or any node op runs — instead of
/// letting an open-loop arrival process grow a node's queue without bound.
/// Validated at Db::Open even when disabled, like BalancePolicy and
/// ReplicaPolicy: a typo'd knob must fail the first time the options are
/// used, not when shedding is eventually switched on.
struct AdmissionPolicy {
  /// Refuse work once a node's outstanding-op queue is full. Off by
  /// default: queue depths are still *tracked* (the Monitor's gauges and
  /// the bench snapshots work either way), nothing is refused.
  bool enabled = false;
  /// Per-node cap on outstanding admitted ops (queued + executing). The
  /// latency-sensitive class is admitted up to this depth.
  int max_queue_ops = 256;
  /// Fraction of max_queue_ops available to the batch class: batch ops are
  /// refused once depth reaches batch_share * max_queue_ops, so under
  /// pressure the remaining headroom is reserved for latency-sensitive
  /// traffic (shedding hits the cheap class first).
  double batch_share = 0.5;
  /// A node whose depth reaches overload_ratio * max_queue_ops counts as
  /// overloaded in the master's control tick.
  double overload_ratio = 0.75;
  /// Consecutive overloaded control ticks before the master emits the
  /// overload event and treats it as scale-out/balance pressure.
  int overload_trigger_after = 2;
};

/// Tracks every node's outstanding admitted operations and enforces the
/// policy's depth caps. One instance lives on the Cluster; the routing
/// layer (cluster/routed_ops) calls Admit before running an op (or an
/// owner-group of a batch) on a node and Complete once the op's simulated
/// completion time is known.
///
/// Time discipline: Admit/QueueDepth take the *global* event-loop time
/// (monotone), while Complete records the op's txn-private completion time
/// (always >= the global clock). Entries whose completion has passed the
/// global clock are pruned lazily, so depth is exact as of the current
/// event — a transaction's private clock running ahead never un-counts
/// work another arrival would still queue behind.
class AdmissionController {
 public:
  void set_policy(const AdmissionPolicy& policy) { policy_ = policy; }
  const AdmissionPolicy& policy() const { return policy_; }

  /// Admit `ops` operations of `cls` onto `node` as of global time `now`.
  /// ResourceExhausted (naming the node, depth, and cap) when the class's
  /// cap would be exceeded; always OK while the policy is disabled (the
  /// ops are still tracked so depth gauges stay live).
  Status Admit(NodeId node, OpClass cls, SimTime now, int ops = 1);

  /// Record that previously admitted ops leave `node`'s queue at
  /// `completion` (the issuing transaction's private clock after the op).
  void Complete(NodeId node, SimTime completion, int ops = 1);

  /// Outstanding admitted ops on `node` (queued + executing) as of global
  /// time `now`. The Monitor's per-node gauge.
  int64_t QueueDepth(NodeId node, SimTime now) const;

  // --- Counters (since construction) --------------------------------------
  // One Admit call = one decision: an owner-group of a batch counts once,
  // however many ops it carries.
  int64_t admitted(OpClass cls) const {
    return admitted_[static_cast<int>(cls)];
  }
  int64_t shed(OpClass cls) const { return shed_[static_cast<int>(cls)]; }
  int64_t shed_total() const {
    return shed_[0] + shed_[1];
  }

 private:
  /// Min-heap of (completion time, op count) per node; `outstanding` is the
  /// sum of counts still in the heap.
  struct NodeQueue {
    std::priority_queue<std::pair<SimTime, int64_t>,
                        std::vector<std::pair<SimTime, int64_t>>,
                        std::greater<std::pair<SimTime, int64_t>>>
        completions;
    int64_t outstanding = 0;
  };

  /// Drop entries whose completion time is <= `now`. `now` is the global
  /// event-loop clock, which is monotone — so pruning is destructive-safe.
  static void Prune(NodeQueue* q, SimTime now);

  AdmissionPolicy policy_;
  /// Mutable: QueueDepth is logically const but prunes lazily.
  mutable std::unordered_map<NodeId, NodeQueue> queues_;
  int64_t admitted_[2] = {0, 0};
  int64_t shed_[2] = {0, 0};
};

}  // namespace wattdb::admission

#endif  // WATTDB_ADMISSION_ADMISSION_H_
