#ifndef WATTDB_INDEX_BTREE_H_
#define WATTDB_INDEX_BTREE_H_

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace wattdb::index {

/// In-memory B+-tree keyed by `Key` (uint64). Used both as the segment-local
/// primary-key index (physiological partitioning, §4.3) and as a
/// partition-wide index where needed. Values live only in leaves; leaves are
/// chained for range scans. Fanout is configurable to let the ablation
/// benches vary index height.
///
/// Not thread-safe: the simulation kernel is single-threaded and concurrency
/// is modeled at the lock-manager level, so internal latching is accounted
/// for (by callers) rather than implemented with OS primitives.
template <typename V, size_t kFanout = 64>
class BTree {
  static_assert(kFanout >= 4, "fanout too small");

 public:
  BTree() : root_(NewLeaf()) {}

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;
  BTree(BTree&&) = default;
  BTree& operator=(BTree&&) = default;

  /// Insert or overwrite. Returns true if the key was newly inserted and
  /// false if an existing value was replaced.
  bool Insert(Key key, const V& value) {
    InsertResult r = InsertRec(root_.get(), key, value);
    if (r.split_sibling) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      new_root->keys.push_back(r.split_key);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(r.split_sibling));
      root_ = std::move(new_root);
      ++height_;
    }
    if (r.inserted) ++size_;
    return r.inserted;
  }

  /// Remove a key. Returns true if it was present. Deletion is lazy: nodes
  /// are never merged or freed (the common choice in practice — cf. Graefe,
  /// "Modern B-tree Techniques" — since B-trees rarely shrink and scans skip
  /// empty leaves transparently).
  bool Erase(Key key) {
    if (!EraseRec(root_.get(), key)) return false;
    --size_;
    return true;
  }

  /// Point lookup; returns nullptr if absent.
  const V* Find(Key key) const {
    const Node* n = root_.get();
    while (!n->leaf) {
      n = n->children[ChildIndex(n, key)].get();
    }
    auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
    if (it == n->keys.end() || *it != key) return nullptr;
    return &n->values[it - n->keys.begin()];
  }

  V* Find(Key key) {
    return const_cast<V*>(static_cast<const BTree*>(this)->Find(key));
  }

  bool Contains(Key key) const { return Find(key) != nullptr; }

  /// Visit all (key, value) pairs with key in [lo, hi), in key order. The
  /// callback returns false to stop early. Returns the number visited.
  size_t Scan(Key lo, Key hi,
              const std::function<bool(Key, const V&)>& fn) const {
    size_t visited = 0;
    const Node* n = root_.get();
    while (!n->leaf) n = n->children[ChildIndex(n, lo)].get();
    while (n != nullptr) {
      auto it = std::lower_bound(n->keys.begin(), n->keys.end(), lo);
      for (size_t i = it - n->keys.begin(); i < n->keys.size(); ++i) {
        if (n->keys[i] >= hi) return visited;
        ++visited;
        if (!fn(n->keys[i], n->values[i])) return visited;
      }
      n = n->next;
    }
    return visited;
  }

  /// Smallest key >= lo, if any.
  bool LowerBound(Key lo, Key* out_key, V* out_value = nullptr) const {
    bool found = false;
    Scan(lo, kMaxKey, [&](Key k, const V& v) {
      *out_key = k;
      if (out_value) *out_value = v;
      found = true;
      return false;
    });
    return found;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const { return height_; }

  void Clear() {
    root_ = NewLeaf();
    size_ = 0;
    height_ = 1;
  }

  /// Structural invariant check for tests: key ordering within and across
  /// nodes, child counts, and leaf chain consistency.
  bool CheckInvariants() const {
    Key min_seen = kMinKey;
    bool first = true;
    size_t leaf_count = 0;
    if (!CheckRec(root_.get(), kMinKey, kMaxKey, &min_seen, &first,
                  &leaf_count)) {
      return false;
    }
    return leaf_count == size_;
  }

  /// Approximate heap footprint in bytes (for storage accounting).
  size_t MemoryBytes() const { return CountBytes(root_.get()); }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    std::vector<Key> keys;
    // Internal: children.size() == keys.size() + 1; child[i] covers keys
    // < keys[i], child[last] covers the rest.
    std::vector<std::unique_ptr<Node>> children;
    // Leaf payload, parallel to keys.
    std::vector<V> values;
    Node* next = nullptr;  // Leaf chain.
  };

  struct InsertResult {
    bool inserted = false;
    Key split_key = 0;
    std::unique_ptr<Node> split_sibling;
  };

  static std::unique_ptr<Node> NewLeaf() {
    return std::make_unique<Node>(/*leaf=*/true);
  }

  static size_t ChildIndex(const Node* n, Key key) {
    // First key strictly greater than `key` determines the child slot:
    // child[i] holds keys in [keys[i-1], keys[i]).
    auto it = std::upper_bound(n->keys.begin(), n->keys.end(), key);
    return static_cast<size_t>(it - n->keys.begin());
  }

  InsertResult InsertRec(Node* n, Key key, const V& value) {
    InsertResult result;
    if (n->leaf) {
      auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
      const size_t pos = static_cast<size_t>(it - n->keys.begin());
      if (it != n->keys.end() && *it == key) {
        n->values[pos] = value;
        return result;  // Overwrite, no growth.
      }
      n->keys.insert(it, key);
      n->values.insert(n->values.begin() + pos, value);
      result.inserted = true;
      if (n->keys.size() > kFanout) SplitLeaf(n, &result);
      return result;
    }
    const size_t ci = ChildIndex(n, key);
    InsertResult child_result = InsertRec(n->children[ci].get(), key, value);
    result.inserted = child_result.inserted;
    if (child_result.split_sibling) {
      n->keys.insert(n->keys.begin() + ci, child_result.split_key);
      n->children.insert(n->children.begin() + ci + 1,
                         std::move(child_result.split_sibling));
      if (n->keys.size() > kFanout) SplitInternal(n, &result);
    }
    return result;
  }

  static void SplitLeaf(Node* n, InsertResult* result) {
    auto sibling = NewLeaf();
    const size_t mid = n->keys.size() / 2;
    sibling->keys.assign(n->keys.begin() + mid, n->keys.end());
    sibling->values.assign(std::make_move_iterator(n->values.begin() + mid),
                           std::make_move_iterator(n->values.end()));
    n->keys.resize(mid);
    n->values.resize(mid);
    sibling->next = n->next;
    n->next = sibling.get();
    result->split_key = sibling->keys.front();
    result->split_sibling = std::move(sibling);
  }

  static void SplitInternal(Node* n, InsertResult* result) {
    auto sibling = std::make_unique<Node>(/*leaf=*/false);
    const size_t mid = n->keys.size() / 2;
    result->split_key = n->keys[mid];
    sibling->keys.assign(n->keys.begin() + mid + 1, n->keys.end());
    sibling->children.assign(
        std::make_move_iterator(n->children.begin() + mid + 1),
        std::make_move_iterator(n->children.end()));
    n->keys.resize(mid);
    n->children.resize(mid + 1);
    result->split_sibling = std::move(sibling);
  }

  bool EraseRec(Node* n, Key key) {
    if (n->leaf) {
      auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
      if (it == n->keys.end() || *it != key) return false;
      const size_t pos = static_cast<size_t>(it - n->keys.begin());
      n->keys.erase(it);
      n->values.erase(n->values.begin() + pos);
      return true;
    }
    const size_t ci = ChildIndex(n, key);
    return EraseRec(n->children[ci].get(), key);
  }

  bool CheckRec(const Node* n, Key lo, Key hi, Key* min_seen, bool* first,
                size_t* leaf_count) const {
    if (!std::is_sorted(n->keys.begin(), n->keys.end())) return false;
    for (Key k : n->keys) {
      if (k < lo || k >= hi) return false;
    }
    if (n->leaf) {
      if (n->keys.size() != n->values.size()) return false;
      *leaf_count += n->keys.size();
      for (Key k : n->keys) {
        if (!*first && k <= *min_seen) return false;
        *min_seen = k;
        *first = false;
      }
      return true;
    }
    if (n->children.size() != n->keys.size() + 1) return false;
    for (size_t i = 0; i < n->children.size(); ++i) {
      const Key child_lo = i == 0 ? lo : n->keys[i - 1];
      const Key child_hi = i == n->keys.size() ? hi : n->keys[i];
      if (!CheckRec(n->children[i].get(), child_lo, child_hi, min_seen, first,
                    leaf_count)) {
        return false;
      }
    }
    return true;
  }

  size_t CountBytes(const Node* n) const {
    size_t bytes = sizeof(Node) + n->keys.capacity() * sizeof(Key) +
                   n->values.capacity() * sizeof(V) +
                   n->children.capacity() * sizeof(std::unique_ptr<Node>);
    for (const auto& c : n->children) bytes += CountBytes(c.get());
    return bytes;
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  int height_ = 1;
};

}  // namespace wattdb::index

#endif  // WATTDB_INDEX_BTREE_H_
