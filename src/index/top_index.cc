#include "index/top_index.h"

#include <sstream>

namespace wattdb::index {

Status TopIndex::Attach(const KeyRange& range, SegmentId segment) {
  if (range.Empty()) return Status::InvalidArgument("empty key range");
  if (!segment.valid()) return Status::InvalidArgument("invalid segment id");
  // The entry at or after range.lo must start at/after range.hi; the entry
  // before range.lo must end at/before range.lo.
  auto next = by_lo_.lower_bound(range.lo);
  if (next != by_lo_.end() && next->second.range.lo < range.hi) {
    return Status::AlreadyExists("key range overlaps existing entry");
  }
  if (next != by_lo_.begin()) {
    auto prev = std::prev(next);
    if (prev->second.range.hi > range.lo) {
      return Status::AlreadyExists("key range overlaps existing entry");
    }
  }
  by_lo_.emplace(range.lo, Entry{range, segment});
  return Status::OK();
}

Status TopIndex::Detach(SegmentId segment) {
  for (auto it = by_lo_.begin(); it != by_lo_.end(); ++it) {
    if (it->second.segment == segment) {
      by_lo_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("segment not attached");
}

SegmentId TopIndex::Lookup(Key key) const {
  auto it = by_lo_.upper_bound(key);
  if (it == by_lo_.begin()) return SegmentId::Invalid();
  --it;
  if (it->second.range.Contains(key)) return it->second.segment;
  return SegmentId::Invalid();
}

KeyRange TopIndex::RangeOf(SegmentId segment) const {
  for (const auto& [lo, e] : by_lo_) {
    if (e.segment == segment) return e.range;
  }
  return KeyRange{0, 0};
}

std::vector<TopIndex::Entry> TopIndex::Intersecting(const KeyRange& range) const {
  std::vector<Entry> out;
  if (range.Empty()) return out;
  auto it = by_lo_.upper_bound(range.lo);
  if (it != by_lo_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.range.hi > range.lo) out.push_back(prev->second);
  }
  for (; it != by_lo_.end() && it->second.range.lo < range.hi; ++it) {
    out.push_back(it->second);
  }
  return out;
}

std::vector<TopIndex::Entry> TopIndex::All() const {
  std::vector<Entry> out;
  out.reserve(by_lo_.size());
  for (const auto& [lo, e] : by_lo_) out.push_back(e);
  return out;
}

KeyRange TopIndex::Hull() const {
  if (by_lo_.empty()) return KeyRange{0, 0};
  KeyRange hull{by_lo_.begin()->second.range.lo, 0};
  for (const auto& [lo, e] : by_lo_) {
    hull.hi = std::max(hull.hi, e.range.hi);
  }
  return hull;
}

bool TopIndex::CheckInvariants() const {
  Key prev_hi = kMinKey;
  bool first = true;
  for (const auto& [lo, e] : by_lo_) {
    if (e.range.Empty() || !e.segment.valid()) return false;
    if (lo != e.range.lo) return false;
    if (!first && e.range.lo < prev_hi) return false;
    prev_hi = e.range.hi;
    first = false;
  }
  return true;
}

}  // namespace wattdb::index
