#ifndef WATTDB_INDEX_TOP_INDEX_H_
#define WATTDB_INDEX_TOP_INDEX_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace wattdb::index {

/// The partition "top index" of physiological partitioning (§4.3): a small
/// ordered structure mapping disjoint primary-key ranges to the segments
/// (mini-partitions) that hold them. Moving a segment between partitions
/// only requires detaching here and attaching to the destination's top
/// index — the segment-local record index stays valid.
class TopIndex {
 public:
  struct Entry {
    KeyRange range;
    SegmentId segment;
  };

  /// Attach a segment covering `range`. Fails if `range` overlaps an
  /// existing entry or is empty.
  Status Attach(const KeyRange& range, SegmentId segment);

  /// Detach the entry for `segment`. Fails if the segment is not attached.
  Status Detach(SegmentId segment);

  /// Segment whose range contains `key`, or invalid id if none.
  SegmentId Lookup(Key key) const;

  /// The range registered for `segment`; empty range if not attached.
  KeyRange RangeOf(SegmentId segment) const;

  /// All segments whose ranges intersect [range.lo, range.hi), in key order.
  std::vector<Entry> Intersecting(const KeyRange& range) const;

  /// All entries in key order.
  std::vector<Entry> All() const;

  /// Overall covered hull [min lo, max hi); empty if no entries.
  KeyRange Hull() const;

  size_t size() const { return by_lo_.size(); }
  bool empty() const { return by_lo_.empty(); }

  /// True iff ranges are pairwise disjoint and each maps a valid segment.
  bool CheckInvariants() const;

 private:
  std::map<Key, Entry> by_lo_;
};

}  // namespace wattdb::index

#endif  // WATTDB_INDEX_TOP_INDEX_H_
