#ifndef WATTDB_INDEX_RECORD_INDEX_H_
#define WATTDB_INDEX_RECORD_INDEX_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "index/btree.h"
#include "storage/record.h"

namespace wattdb::index {

/// Which structure backs a segment's primary-key index. KVell's
/// `in-memory-index-generic.h` makes exactly this pluggable — every worker
/// owns its slice's index behind one interface, and the concrete structure
/// is an ablation knob, not an architecture decision.
enum class IndexKind {
  kBTree,  ///< Ordered B+-tree (the historical default; cheap range scans).
  kHash,   ///< Hash map (cheaper point probes; scans collect + sort).
};

inline std::string ToString(IndexKind kind) {
  switch (kind) {
    case IndexKind::kBTree:
      return "btree";
    case IndexKind::kHash:
      return "hash";
  }
  return "unknown";
}

/// Segment-local primary-key index behind one interface (the KVell
/// `in-memory-index-generic.h` shape): Key -> RecordPos, with ordered
/// iteration required even from unordered implementations so ScanRange
/// semantics do not depend on the chosen structure.
///
/// Not thread-safe, like everything under the single-threaded sim kernel;
/// the cost difference between implementations is surfaced to the CPU
/// model through `probe_cost_factor()` rather than wall-clock.
class RecordIndex {
 public:
  virtual ~RecordIndex() = default;

  /// Insert or overwrite. Returns true if the key was newly inserted.
  virtual bool Insert(Key key, const storage::RecordPos& pos) = 0;
  /// Remove a key. Returns true if it was present.
  virtual bool Erase(Key key) = 0;
  /// Position of `key`, or nullptr. The pointer is invalidated by mutation.
  virtual const storage::RecordPos* Find(Key key) const = 0;
  bool Contains(Key key) const { return Find(key) != nullptr; }

  /// Visit entries with keys in [lo, hi) in ASCENDING KEY ORDER; `fn`
  /// returns false to stop early. Returns the number visited.
  virtual size_t Scan(
      Key lo, Key hi,
      const std::function<bool(Key, const storage::RecordPos&)>& fn) const = 0;
  /// Smallest key >= lo, if any.
  virtual bool LowerBound(Key lo, Key* out_key,
                          storage::RecordPos* out_pos = nullptr) const = 0;

  virtual size_t size() const = 0;
  bool empty() const { return size() == 0; }
  /// Approximate heap footprint (storage-overhead metric).
  virtual size_t MemoryBytes() const = 0;
  virtual bool CheckInvariants() const = 0;

  virtual IndexKind kind() const = 0;
  /// Simulated cost of one point probe relative to the B+-tree baseline.
  /// The hash index resolves a probe in O(1) instead of a root-to-leaf
  /// walk, which the CPU model reflects by scaling cpu_index_probe_us.
  virtual double probe_cost_factor() const = 0;
};

/// The historical default: wraps the segment-local B+-tree.
class BTreeRecordIndex final : public RecordIndex {
 public:
  bool Insert(Key key, const storage::RecordPos& pos) override {
    return tree_.Insert(key, pos);
  }
  bool Erase(Key key) override { return tree_.Erase(key); }
  const storage::RecordPos* Find(Key key) const override {
    return tree_.Find(key);
  }
  size_t Scan(Key lo, Key hi,
              const std::function<bool(Key, const storage::RecordPos&)>& fn)
      const override {
    return tree_.Scan(lo, hi, fn);
  }
  bool LowerBound(Key lo, Key* out_key,
                  storage::RecordPos* out_pos) const override {
    return tree_.LowerBound(lo, out_key, out_pos);
  }
  size_t size() const override { return tree_.size(); }
  size_t MemoryBytes() const override { return tree_.MemoryBytes(); }
  bool CheckInvariants() const override { return tree_.CheckInvariants(); }
  IndexKind kind() const override { return IndexKind::kBTree; }
  double probe_cost_factor() const override { return 1.0; }

 private:
  BTree<storage::RecordPos> tree_;
};

/// Hash-map option (KVell ships the same pair: a tree and a faster
/// unordered structure behind one generic interface). Point probes are
/// cheaper — no root-to-leaf walk — but ordered scans must collect and
/// sort the qualifying keys, so scan-heavy workloads prefer the B+-tree.
class HashRecordIndex final : public RecordIndex {
 public:
  bool Insert(Key key, const storage::RecordPos& pos) override {
    auto [it, inserted] = map_.insert_or_assign(key, pos);
    (void)it;
    return inserted;
  }
  bool Erase(Key key) override { return map_.erase(key) > 0; }
  const storage::RecordPos* Find(Key key) const override {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }
  size_t Scan(Key lo, Key hi,
              const std::function<bool(Key, const storage::RecordPos&)>& fn)
      const override {
    std::vector<Key> keys;
    for (const auto& [k, pos] : map_) {
      if (k >= lo && k < hi) keys.push_back(k);
    }
    std::sort(keys.begin(), keys.end());
    size_t visited = 0;
    for (Key k : keys) {
      ++visited;
      if (!fn(k, map_.at(k))) break;
    }
    return visited;
  }
  bool LowerBound(Key lo, Key* out_key,
                  storage::RecordPos* out_pos) const override {
    bool found = false;
    Key best = 0;
    for (const auto& [k, pos] : map_) {
      if (k < lo) continue;
      if (!found || k < best) {
        best = k;
        found = true;
      }
    }
    if (!found) return false;
    if (out_key != nullptr) *out_key = best;
    if (out_pos != nullptr) *out_pos = map_.at(best);
    return true;
  }
  size_t size() const override { return map_.size(); }
  size_t MemoryBytes() const override {
    // Node-based buckets: entry + two pointers per element, one bucket
    // pointer per slot.
    return map_.size() *
               (sizeof(Key) + sizeof(storage::RecordPos) + 2 * sizeof(void*)) +
           map_.bucket_count() * sizeof(void*);
  }
  bool CheckInvariants() const override { return true; }
  IndexKind kind() const override { return IndexKind::kHash; }
  double probe_cost_factor() const override { return 0.5; }

 private:
  std::unordered_map<Key, storage::RecordPos> map_;
};

inline std::unique_ptr<RecordIndex> MakeRecordIndex(IndexKind kind) {
  switch (kind) {
    case IndexKind::kBTree:
      return std::make_unique<BTreeRecordIndex>();
    case IndexKind::kHash:
      return std::make_unique<HashRecordIndex>();
  }
  return nullptr;
}

}  // namespace wattdb::index

#endif  // WATTDB_INDEX_RECORD_INDEX_H_
