#ifndef WATTDB_METRICS_BREAKDOWN_H_
#define WATTDB_METRICS_BREAKDOWN_H_

#include <cstdint>
#include <string>

#include "common/types.h"
#include "tx/transaction.h"

namespace wattdb::metrics {

/// Per-component query-time accounting for the Fig. 7 breakdown: average
/// milliseconds a query spends in logging, latching, locking, network I/O,
/// disk I/O, and everything else.
class TimeBreakdown {
 public:
  void AddTxn(const tx::Txn& txn);
  void Add(const TimeBreakdown& other);
  void Reset();

  int64_t queries() const { return queries_; }

  // Average per-query milliseconds per component.
  double LoggingMs() const { return AvgMs(log_us_); }
  double LatchingMs() const { return AvgMs(latch_us_); }
  double LockingMs() const { return AvgMs(lock_us_); }
  double NetworkMs() const { return AvgMs(net_us_); }
  double DiskMs() const { return AvgMs(disk_us_); }
  double OtherMs() const { return AvgMs(cpu_us_ + other_us_); }
  double TotalMs() const {
    return LoggingMs() + LatchingMs() + LockingMs() + NetworkMs() + DiskMs() +
           OtherMs();
  }

  /// One formatted row: component columns in the Fig. 7 order.
  std::string ToRow(const std::string& label) const;
  static std::string Header();

 private:
  double AvgMs(SimTime total_us) const {
    return queries_ == 0
               ? 0.0
               : static_cast<double>(total_us) / queries_ / kUsPerMs;
  }

  int64_t queries_ = 0;
  SimTime log_us_ = 0;
  SimTime latch_us_ = 0;
  SimTime lock_us_ = 0;
  SimTime net_us_ = 0;
  SimTime disk_us_ = 0;
  SimTime cpu_us_ = 0;
  SimTime other_us_ = 0;
};

}  // namespace wattdb::metrics

#endif  // WATTDB_METRICS_BREAKDOWN_H_
