#ifndef WATTDB_METRICS_TIME_SERIES_H_
#define WATTDB_METRICS_TIME_SERIES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace wattdb::metrics {

/// One sampling bucket of the Fig. 6 / Fig. 8 series.
struct SeriesBucket {
  int64_t completed = 0;      ///< Queries finished in this bucket.
  double sum_latency_us = 0;  ///< Sum of their response times.
  double watts = 0;           ///< Average cluster power draw.
  double joules = 0;          ///< Energy consumed in this bucket.

  double Qps(double bucket_seconds) const {
    return completed / bucket_seconds;
  }
  double AvgLatencyMs() const {
    return completed == 0 ? 0.0 : sum_latency_us / completed / kUsPerMs;
  }
  double JoulesPerQuery() const {
    return completed == 0 ? 0.0 : joules / completed;
  }
};

/// Time-bucketed recorder for throughput / response time / power / energy
/// series. Buckets are indexed relative to a configurable origin so series
/// can use the paper's -180 s .. +570 s axis (t = 0 is "rebalance
/// initiated").
class TimeSeries {
 public:
  explicit TimeSeries(SimTime bucket_width = 10 * kUsPerSec)
      : bucket_width_(bucket_width) {}

  /// Set the absolute simulated time that maps to axis time 0.
  void SetOrigin(SimTime origin) { origin_ = origin; }
  SimTime origin() const { return origin_; }

  /// Record a query completion at absolute time `at`.
  void RecordCompletion(SimTime at, SimTime latency_us);

  /// Record power for the window [from, to) at `watts`.
  void RecordPower(SimTime from, SimTime to, double watts);

  /// Axis seconds (relative to origin) of the first/last bucket.
  std::vector<double> AxisSeconds() const;
  const std::map<int64_t, SeriesBucket>& buckets() const { return buckets_; }
  double BucketSeconds() const { return ToSeconds(bucket_width_); }

  /// Pretty-print: time, qps, avg-ms, watts, joules/query columns.
  std::string ToTable(const std::string& label) const;

  /// CSV with header "t_sec,qps,avg_ms,watts,j_per_query".
  std::string ToCsv() const;

 private:
  int64_t BucketOf(SimTime at) const;

  SimTime bucket_width_;
  SimTime origin_ = 0;
  std::map<int64_t, SeriesBucket> buckets_;
};

/// Merge several labeled series into one side-by-side table (one row per
/// bucket, one column group per series) — the layout of Fig. 6.
std::string SideBySide(const std::vector<std::string>& labels,
                       const std::vector<const TimeSeries*>& series,
                       const std::string& value,  // qps|ms|watt|jpq
                       double bucket_seconds);

}  // namespace wattdb::metrics

#endif  // WATTDB_METRICS_TIME_SERIES_H_
