#include "metrics/time_series.h"

#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

namespace wattdb::metrics {

int64_t TimeSeries::BucketOf(SimTime at) const {
  const SimTime rel = at - origin_;
  // Floor division so negative axis times land in negative buckets.
  int64_t b = rel / bucket_width_;
  if (rel < 0 && rel % bucket_width_ != 0) --b;
  return b;
}

void TimeSeries::RecordCompletion(SimTime at, SimTime latency_us) {
  SeriesBucket& b = buckets_[BucketOf(at)];
  b.completed += 1;
  b.sum_latency_us += static_cast<double>(latency_us);
}

void TimeSeries::RecordPower(SimTime from, SimTime to, double watts) {
  // Attribute energy to each overlapped bucket.
  SimTime t = from;
  while (t < to) {
    const int64_t bucket = BucketOf(t);
    const SimTime bucket_end = origin_ + (bucket + 1) * bucket_width_;
    const SimTime chunk_end = std::min(bucket_end, to);
    SeriesBucket& b = buckets_[bucket];
    const double secs = ToSeconds(chunk_end - t);
    b.joules += watts * secs;
    // Average power: accumulate time-weighted; normalize by bucket width.
    b.watts += watts * secs / ToSeconds(bucket_width_);
    t = chunk_end;
  }
}

std::vector<double> TimeSeries::AxisSeconds() const {
  std::vector<double> out;
  for (const auto& [b, bucket] : buckets_) {
    out.push_back(static_cast<double>(b) * ToSeconds(bucket_width_));
  }
  return out;
}

std::string TimeSeries::ToTable(const std::string& label) const {
  std::ostringstream os;
  os << "# " << label << "\n";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%8s %10s %10s %10s %12s", "t_sec", "qps",
                "avg_ms", "watts", "J/query");
  os << buf << "\n";
  const double bs = BucketSeconds();
  for (const auto& [b, bucket] : buckets_) {
    std::snprintf(buf, sizeof(buf), "%8.0f %10.1f %10.2f %10.1f %12.3f",
                  b * bs, bucket.Qps(bs), bucket.AvgLatencyMs(), bucket.watts,
                  bucket.JoulesPerQuery());
    os << buf << "\n";
  }
  return os.str();
}

std::string TimeSeries::ToCsv() const {
  std::ostringstream os;
  os << "t_sec,qps,avg_ms,watts,j_per_query\n";
  const double bs = BucketSeconds();
  for (const auto& [b, bucket] : buckets_) {
    os << b * bs << "," << bucket.Qps(bs) << "," << bucket.AvgLatencyMs()
       << "," << bucket.watts << "," << bucket.JoulesPerQuery() << "\n";
  }
  return os.str();
}

std::string SideBySide(const std::vector<std::string>& labels,
                       const std::vector<const TimeSeries*>& series,
                       const std::string& value, double bucket_seconds) {
  std::ostringstream os;
  char buf[64];
  os << "#    t_sec";
  for (const auto& l : labels) {
    std::snprintf(buf, sizeof(buf), " %14s", l.c_str());
    os << buf;
  }
  os << "\n";
  std::set<int64_t> bucket_ids;
  for (const TimeSeries* s : series) {
    for (const auto& [b, bucket] : s->buckets()) bucket_ids.insert(b);
  }
  for (int64_t b : bucket_ids) {
    std::snprintf(buf, sizeof(buf), "%10.0f", b * bucket_seconds);
    os << buf;
    for (const TimeSeries* s : series) {
      auto it = s->buckets().find(b);
      double v = 0.0;
      if (it != s->buckets().end()) {
        if (value == "qps") {
          v = it->second.Qps(bucket_seconds);
        } else if (value == "ms") {
          v = it->second.AvgLatencyMs();
        } else if (value == "watt") {
          v = it->second.watts;
        } else {
          v = it->second.JoulesPerQuery();
        }
      }
      std::snprintf(buf, sizeof(buf), " %14.2f", v);
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace wattdb::metrics
