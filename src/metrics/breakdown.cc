#include "metrics/breakdown.h"

#include <cstdio>

namespace wattdb::metrics {

void TimeBreakdown::AddTxn(const tx::Txn& txn) {
  ++queries_;
  log_us_ += txn.log_us;
  latch_us_ += txn.latch_us;
  lock_us_ += txn.lock_wait_us;
  net_us_ += txn.net_us;
  disk_us_ += txn.disk_us;
  cpu_us_ += txn.cpu_us;
  other_us_ += txn.OtherUs();
}

void TimeBreakdown::Add(const TimeBreakdown& other) {
  queries_ += other.queries_;
  log_us_ += other.log_us_;
  latch_us_ += other.latch_us_;
  lock_us_ += other.lock_us_;
  net_us_ += other.net_us_;
  disk_us_ += other.disk_us_;
  cpu_us_ += other.cpu_us_;
  other_us_ += other.other_us_;
}

void TimeBreakdown::Reset() { *this = TimeBreakdown(); }

std::string TimeBreakdown::Header() {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-24s %9s %9s %9s %9s %9s %9s %9s",
                "configuration", "logging", "latching", "locking", "net_io",
                "disk_io", "other", "total_ms");
  return buf;
}

std::string TimeBreakdown::ToRow(const std::string& label) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-24s %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f",
                label.c_str(), LoggingMs(), LatchingMs(), LockingMs(),
                NetworkMs(), DiskMs(), OtherMs(), TotalMs());
  return buf;
}

}  // namespace wattdb::metrics
