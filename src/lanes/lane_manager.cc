#include "lanes/lane_manager.h"

#include <string>

#include "common/logging.h"

namespace wattdb::lanes {

LaneManager::LaneManager(const LanePolicy& policy, int num_nodes)
    : policy_(policy) {
  if (!policy_.enabled) return;
  lanes_.resize(num_nodes);
  next_lane_.assign(num_nodes, 0);
  for (int n = 0; n < num_nodes; ++n) {
    lanes_[n].reserve(policy_.lanes_per_node);
    for (int l = 0; l < policy_.lanes_per_node; ++l) {
      lanes_[n].emplace_back("node" + std::to_string(n) + "/lane" +
                             std::to_string(l));
    }
  }
}

int LaneManager::LaneOf(storage::Segment* seg) {
  WATTDB_CHECK_MSG(policy_.enabled, "LaneOf with lanes disabled");
  const int lane = seg->lane();
  if (lane >= 0 && lane < policy_.lanes_per_node) return lane;
  const uint32_t node = seg->storage_node().value();
  WATTDB_CHECK_MSG(node < lanes_.size(),
                   "segment on unknown node " << node);
  const int assigned = next_lane_[node];
  next_lane_[node] = (next_lane_[node] + 1) % policy_.lanes_per_node;
  seg->set_lane(assigned);
  return assigned;
}

void LaneManager::Relane(storage::Segment* seg, int lane) {
  WATTDB_CHECK_MSG(policy_.enabled, "Relane with lanes disabled");
  WATTDB_CHECK_MSG(lane >= 0 && lane < policy_.lanes_per_node,
                   "lane " << lane << " out of range");
  if (seg->lane() == lane) return;
  seg->set_lane(lane);
  ++relanes_;
}

sim::Resource* LaneManager::lane(NodeId node, int lane) {
  WATTDB_CHECK_MSG(node.value() < lanes_.size(),
                   "no lanes for node " << node.value());
  WATTDB_CHECK_MSG(lane >= 0 && lane < policy_.lanes_per_node,
                   "lane " << lane << " out of range");
  return &lanes_[node.value()][lane];
}

const sim::Resource* LaneManager::lane(NodeId node, int lane) const {
  return const_cast<LaneManager*>(this)->lane(node, lane);
}

SimTime LaneManager::Backlog(NodeId node, int lane, SimTime now) const {
  return this->lane(node, lane)->Backlog(now);
}

void LaneManager::Prune(SimTime before) {
  for (auto& node_lanes : lanes_) {
    for (auto& l : node_lanes) l.Prune(before);
  }
}

}  // namespace wattdb::lanes
