#ifndef WATTDB_LANES_LANE_MANAGER_H_
#define WATTDB_LANES_LANE_MANAGER_H_

#include <vector>

#include "common/types.h"
#include "lanes/lane_policy.h"
#include "sim/resource.h"
#include "storage/segment.h"

namespace wattdb::lanes {

/// Per-node shared-nothing worker lanes (KVell's slab workers, modeled).
/// Each node owns `lanes_per_node` independent `sim::Resource` execution
/// timelines — deliberately NOT a `sim::ResourcePool`: a pool routes work
/// to the least-loaded member (work stealing), while a lane owns its
/// segments exclusively, so a hot lane stays hot until the balancer
/// re-lanes a segment. That ownership is the whole point — single-lane
/// ops need no cross-worker locks, and skew is visible as lane imbalance
/// the master can fix locally.
///
/// The lane map itself lives on the segments (`Segment::lane()`), so it
/// survives exactly as long as the segment object: a crash/redo cycle
/// keeps assignments, while a cross-node move resets the lane and the
/// destination node assigns a fresh one here on first access.
class LaneManager {
 public:
  LaneManager(const LanePolicy& policy, int num_nodes);
  LaneManager(const LaneManager&) = delete;
  LaneManager& operator=(const LaneManager&) = delete;

  bool enabled() const { return policy_.enabled; }
  int lanes_per_node() const { return policy_.lanes_per_node; }
  const LanePolicy& policy() const { return policy_; }

  /// Lane owning `seg` on its storage node. Unassigned (or out-of-range,
  /// e.g. after a config change) segments get a lane round-robin per node,
  /// spreading fresh segments evenly before any heat is known.
  int LaneOf(storage::Segment* seg);

  /// Move `seg` to `lane` on its current storage node. Intra-node and
  /// in-memory: no pages move, no network — the cheap balancing tier.
  void Relane(storage::Segment* seg, int lane);

  /// Execution timeline of (node, lane).
  sim::Resource* lane(NodeId node, int lane);
  const sim::Resource* lane(NodeId node, int lane) const;

  /// Outstanding scheduled work beyond `now` on (node, lane).
  SimTime Backlog(NodeId node, int lane, SimTime now) const;

  /// Drop interval bookkeeping older than `before` on every lane.
  void Prune(SimTime before);

  /// Lifetime count of Relane() calls (observability).
  int64_t relanes() const { return relanes_; }

 private:
  LanePolicy policy_;
  /// [node][lane] execution timelines; empty when disabled.
  std::vector<std::vector<sim::Resource>> lanes_;
  /// Per-node round-robin cursor for lazy assignment.
  std::vector<int> next_lane_;
  int64_t relanes_ = 0;
};

}  // namespace wattdb::lanes

#endif  // WATTDB_LANES_LANE_MANAGER_H_
