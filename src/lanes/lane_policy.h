#ifndef WATTDB_LANES_LANE_POLICY_H_
#define WATTDB_LANES_LANE_POLICY_H_

#include "common/types.h"

namespace wattdb::lanes {

/// Intra-node parallel data plane (KVell-style): each node hosts
/// `lanes_per_node` shared-nothing worker lanes, each an independent
/// `sim::Resource` execution timeline owning a shard of the node's
/// segments. A single-segment op runs entirely on its owning lane —
/// lock-free by construction, no cross-lane coordination — and cross-lane
/// batches group per lane and run the groups in parallel, exactly how
/// `RoutedMulti*` groups per owner node one level up.
///
/// Default-off: with `enabled == false` every node keeps charging its CPU
/// core pool and nothing else in the system changes. Validated at
/// Db::Open even when disabled (the repo-wide policy convention).
struct LanePolicy {
  bool enabled = false;

  /// Worker lanes per node. 1 is a legal (serial) configuration and the
  /// natural sweep baseline.
  int lanes_per_node = 4;

  /// Intra-node lane balancing: when the master's heat tier fires on a
  /// node, re-lane hot segments between that node's lanes (cheap, no
  /// network) before considering a cross-node move.
  bool balance_lanes = true;
  /// Hottest lane vs mean lane heat before re-laning is worthwhile.
  double lane_trigger_ratio = 1.5;
  /// Re-lane at most this many segments per balancing round.
  int max_relanes_per_round = 4;
  /// Per-segment cooldown between re-lanes, against lane ping-pong.
  SimTime relane_cooldown = 10 * kUsPerSec;
};

}  // namespace wattdb::lanes

#endif  // WATTDB_LANES_LANE_POLICY_H_
