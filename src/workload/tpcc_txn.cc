#include "workload/tpcc_txn.h"

#include <algorithm>

#include "cluster/routed_ops.h"
#include "common/logging.h"

namespace wattdb::workload {

const char* TpccTxnName(TpccTxnType t) {
  switch (t) {
    case TpccTxnType::kNewOrder:
      return "NewOrder";
    case TpccTxnType::kPayment:
      return "Payment";
    case TpccTxnType::kOrderStatus:
      return "OrderStatus";
    case TpccTxnType::kDelivery:
      return "Delivery";
    case TpccTxnType::kStockLevel:
      return "StockLevel";
  }
  return "?";
}

TpccTxnType TpccMix::Pick(Rng* rng) const {
  const double u = rng->UniformDouble();
  double acc = new_order;
  if (u < acc) return TpccTxnType::kNewOrder;
  acc += payment;
  if (u < acc) return TpccTxnType::kPayment;
  acc += order_status;
  if (u < acc) return TpccTxnType::kOrderStatus;
  acc += delivery;
  if (u < acc) return TpccTxnType::kDelivery;
  return TpccTxnType::kStockLevel;
}

Status TpccRunner::DoRead(tx::Txn* txn, TpccTable table, Key key,
                          storage::Record* out) {
  return cluster::RoutedRead(db_->cluster(), txn, db_->table(table), key, out);
}

Status TpccRunner::DoUpdate(tx::Txn* txn, TpccTable table, Key key,
                            const std::vector<uint8_t>& payload) {
  return cluster::RoutedUpdate(db_->cluster(), txn, db_->table(table), key,
                               payload);
}

Status TpccRunner::DoInsert(tx::Txn* txn, TpccTable table, Key key,
                            const std::vector<uint8_t>& payload) {
  return cluster::RoutedInsert(db_->cluster(), txn, db_->table(table), key,
                               payload);
}

Status TpccRunner::DoDelete(tx::Txn* txn, TpccTable table, Key key) {
  return cluster::RoutedDelete(db_->cluster(), txn, db_->table(table), key);
}

Status TpccRunner::DoScan(tx::Txn* txn, TpccTable table, const KeyRange& range,
                          const std::function<bool(const storage::Record&)>& fn) {
  return cluster::RoutedScan(db_->cluster(), txn, db_->table(table), range, fn);
}

TpccTxnResult TpccRunner::Run(TpccTxnType type, Rng* rng) {
  cluster::Cluster* c = db_->cluster();
  tx::Txn* txn = c->BeginTxn(type == TpccTxnType::kOrderStatus ||
                             type == TpccTxnType::kStockLevel);
  Status s;
  switch (type) {
    case TpccTxnType::kNewOrder:
      s = NewOrder(txn, rng);
      break;
    case TpccTxnType::kPayment:
      s = Payment(txn, rng);
      break;
    case TpccTxnType::kOrderStatus:
      s = OrderStatus(txn, rng);
      break;
    case TpccTxnType::kDelivery:
      s = Delivery(txn, rng);
      break;
    case TpccTxnType::kStockLevel:
      s = StockLevel(txn, rng);
      break;
  }
  TpccTxnResult result;
  result.type = type;
  result.status = s;
  if (s.ok()) {
    c->CommitTxn(c->master(), txn);
    result.committed = true;
  } else {
    ++aborts_;
    c->AbortTxn(txn);
    result.committed = false;
  }
  result.latency_us = txn->Elapsed();
  result.completed_at = txn->now;
  result.profile = *txn;
  c->tm().Release(txn->id);
  return result;
}

Status TpccRunner::NewOrder(tx::Txn* txn, Rng* rng) {
  const int64_t w = rng->UniformInt(1, db_->warehouses());
  const int64_t d = rng->UniformInt(1, kDistrictsPerWarehouse);
  const int64_t c_id = rng->NURand(1023, 1, db_->customers_per_district());

  storage::Record wrec, drec, crec;
  WATTDB_RETURN_IF_ERROR(
      DoRead(txn, TpccTable::kWarehouse, TpccKeys::Warehouse(w), &wrec));
  WATTDB_RETURN_IF_ERROR(
      DoRead(txn, TpccTable::kDistrict, TpccKeys::District(w, d), &drec));
  WATTDB_RETURN_IF_ERROR(
      DoRead(txn, TpccTable::kCustomer, TpccKeys::Customer(w, d, c_id), &crec));

  // Allocate the order id. The d_next_o_id update is deferred to the end
  // of the transaction so the X lock on the hot DISTRICT row is held as
  // briefly as possible (order ids are handed out by the owning node).
  const int64_t o_id = db_->NextOid(w, d);

  const int64_t ol_cnt = rng->UniformInt(5, 15);
  auto order_payload = db_->MakePayload(TpccTable::kOrders, rng);
  PutI64(&order_payload, OrderFields::kOlCount, ol_cnt);
  PutI64(&order_payload, OrderFields::kCustomer, c_id);
  PutI64(&order_payload, OrderFields::kCarrierId, 0);
  WATTDB_RETURN_IF_ERROR(DoInsert(txn, TpccTable::kOrders,
                                  TpccKeys::Order(w, d, o_id), order_payload));
  WATTDB_RETURN_IF_ERROR(
      DoInsert(txn, TpccTable::kNewOrder, TpccKeys::NewOrder(w, d, o_id),
               db_->MakePayload(TpccTable::kNewOrder, rng)));

  for (int64_t ol = 1; ol <= ol_cnt; ++ol) {
    // Clause 2.4.1.5: 1% of NewOrders reference an unused item id and must
    // roll back.
    const bool bad_item = rng->UniformInt(1, 100) == 1 && ol == ol_cnt;
    const int64_t i_id =
        bad_item ? kItems + 7 : rng->NURand(8191, 1, kItems);
    // 1% of order lines reference a remote warehouse (clause 2.4.1.5).
    int64_t supply_w = w;
    if (db_->warehouses() > 1 && rng->UniformInt(1, 100) == 1) {
      do {
        supply_w = rng->UniformInt(1, db_->warehouses());
      } while (supply_w == w);
    }
    storage::Record item, stock;
    const Status item_status =
        DoRead(txn, TpccTable::kItem, TpccKeys::Item(i_id), &item);
    if (!item_status.ok()) {
      // Unused item id: TPC-C specifies a 1% intentional abort; emulate by
      // aborting when the item lookup fails.
      return Status::Aborted("invalid item");
    }
    // Fold the item id into the materialized stock range (fill < 1) without
    // collapsing the tail onto one hot record.
    const int64_t s_i = (i_id - 1) % db_->stock_per_warehouse() + 1;
    WATTDB_RETURN_IF_ERROR(
        DoRead(txn, TpccTable::kStock, TpccKeys::Stock(supply_w, s_i), &stock));
    int64_t qty = GetI64(stock.payload, StockFields::kQuantity);
    qty = qty > 10 ? qty - 5 : qty + 91;
    PutI64(&stock.payload, StockFields::kQuantity, qty);
    PutI64(&stock.payload, StockFields::kYtd,
           GetI64(stock.payload, StockFields::kYtd) + 5);
    WATTDB_RETURN_IF_ERROR(DoUpdate(txn, TpccTable::kStock,
                                    TpccKeys::Stock(supply_w, s_i),
                                    stock.payload));
    auto ol_payload = db_->MakePayload(TpccTable::kOrderLine, rng);
    PutI64(&ol_payload, OrderLineFields::kItem, i_id);
    WATTDB_RETURN_IF_ERROR(DoInsert(txn, TpccTable::kOrderLine,
                                    TpccKeys::OrderLine(w, d, o_id, ol),
                                    ol_payload));
  }
  // Hot-row update last (see above).
  PutI64(&drec.payload, DistrictFields::kNextOid, o_id + 1);
  WATTDB_RETURN_IF_ERROR(DoUpdate(txn, TpccTable::kDistrict,
                                  TpccKeys::District(w, d), drec.payload));
  return Status::OK();
}

Status TpccRunner::Payment(tx::Txn* txn, Rng* rng) {
  const int64_t w = rng->UniformInt(1, db_->warehouses());
  const int64_t d = rng->UniformInt(1, kDistrictsPerWarehouse);
  // 15% of payments are for a customer of a remote warehouse.
  int64_t c_w = w, c_d = d;
  if (db_->warehouses() > 1 && rng->UniformInt(1, 100) <= 15) {
    do {
      c_w = rng->UniformInt(1, db_->warehouses());
    } while (c_w == w);
    c_d = rng->UniformInt(1, kDistrictsPerWarehouse);
  }
  const int64_t c_id = rng->NURand(1023, 1, db_->customers_per_district());
  const double amount = rng->UniformInt(100, 500000) / 100.0;

  // Reads first, hot-row updates last: WAREHOUSE is the classic TPC-C
  // contention point, so its X lock is taken as late as possible.
  storage::Record wrec, drec, crec;
  WATTDB_RETURN_IF_ERROR(
      DoRead(txn, TpccTable::kWarehouse, TpccKeys::Warehouse(w), &wrec));
  WATTDB_RETURN_IF_ERROR(
      DoRead(txn, TpccTable::kDistrict, TpccKeys::District(w, d), &drec));
  WATTDB_RETURN_IF_ERROR(DoRead(txn, TpccTable::kCustomer,
                                TpccKeys::Customer(c_w, c_d, c_id), &crec));

  PutF64(&crec.payload, CustomerFields::kBalance,
         GetF64(crec.payload, CustomerFields::kBalance) - amount);
  PutF64(&crec.payload, CustomerFields::kYtdPayment,
         GetF64(crec.payload, CustomerFields::kYtdPayment) + amount);
  PutI64(&crec.payload, CustomerFields::kPaymentCount,
         GetI64(crec.payload, CustomerFields::kPaymentCount) + 1);
  WATTDB_RETURN_IF_ERROR(DoUpdate(txn, TpccTable::kCustomer,
                                  TpccKeys::Customer(c_w, c_d, c_id),
                                  crec.payload));

  auto h = db_->MakePayload(TpccTable::kHistory, rng);
  PutF64(&h, 0, amount);
  WATTDB_RETURN_IF_ERROR(
      DoInsert(txn, TpccTable::kHistory,
               TpccKeys::History(w, d, db_->NextHistorySeq(w, d)), h));

  PutF64(&drec.payload, DistrictFields::kYtd,
         GetF64(drec.payload, DistrictFields::kYtd) + amount);
  WATTDB_RETURN_IF_ERROR(DoUpdate(txn, TpccTable::kDistrict,
                                  TpccKeys::District(w, d), drec.payload));

  PutF64(&wrec.payload, WarehouseFields::kYtd,
         GetF64(wrec.payload, WarehouseFields::kYtd) + amount);
  return DoUpdate(txn, TpccTable::kWarehouse, TpccKeys::Warehouse(w),
                  wrec.payload);
}

Status TpccRunner::OrderStatus(tx::Txn* txn, Rng* rng) {
  const int64_t w = rng->UniformInt(1, db_->warehouses());
  const int64_t d = rng->UniformInt(1, kDistrictsPerWarehouse);
  const int64_t c_id = rng->NURand(1023, 1, db_->customers_per_district());

  storage::Record crec;
  WATTDB_RETURN_IF_ERROR(DoRead(txn, TpccTable::kCustomer,
                                TpccKeys::Customer(w, d, c_id), &crec));
  // Most recent order of the district (the paper's single-run adaptation:
  // scan the tail of the order range).
  const int64_t newest = db_->PeekNextOid(w, d) - 1;
  const int64_t from = std::max<int64_t>(1, newest - 5);
  int64_t found_oid = -1;
  WATTDB_RETURN_IF_ERROR(DoScan(
      txn, TpccTable::kOrders,
      KeyRange{TpccKeys::Order(w, d, from), TpccKeys::Order(w, d, newest + 1)},
      [&](const storage::Record& r) {
        found_oid = static_cast<int64_t>(r.key & ((1 << 24) - 1));
        return true;
      }));
  if (found_oid < 0) return Status::OK();  // District drained; still valid.
  // Read its order lines.
  return DoScan(txn, TpccTable::kOrderLine,
                KeyRange{TpccKeys::OrderLine(w, d, found_oid, 0),
                         TpccKeys::OrderLine(w, d, found_oid + 1, 0)},
                [](const storage::Record&) { return true; });
}

Status TpccRunner::Delivery(tx::Txn* txn, Rng* rng) {
  const int64_t w = rng->UniformInt(1, db_->warehouses());
  const int64_t carrier = rng->UniformInt(1, 10);
  // The paper's single-run form: deliver the oldest new-order of each
  // district of the warehouse.
  for (int64_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
    int64_t& cursor = db_->OldestNewOrder(w, d);
    const int64_t newest = db_->PeekNextOid(w, d) - 1;
    if (cursor > newest) continue;
    // Find the oldest undelivered order at/after the cursor.
    int64_t o_id = -1;
    WATTDB_RETURN_IF_ERROR(
        DoScan(txn, TpccTable::kNewOrder,
               KeyRange{TpccKeys::NewOrder(w, d, cursor),
                        TpccKeys::NewOrder(w, d, newest + 1)},
               [&](const storage::Record& r) {
                 o_id = static_cast<int64_t>(r.key & ((1 << 24) - 1));
                 return false;  // Oldest only.
               }));
    if (o_id < 0) continue;
    cursor = o_id + 1;
    WATTDB_RETURN_IF_ERROR(
        DoDelete(txn, TpccTable::kNewOrder, TpccKeys::NewOrder(w, d, o_id)));
    storage::Record order;
    WATTDB_RETURN_IF_ERROR(
        DoRead(txn, TpccTable::kOrders, TpccKeys::Order(w, d, o_id), &order));
    PutI64(&order.payload, OrderFields::kCarrierId, carrier);
    WATTDB_RETURN_IF_ERROR(DoUpdate(txn, TpccTable::kOrders,
                                    TpccKeys::Order(w, d, o_id),
                                    order.payload));
    const int64_t c_id = GetI64(order.payload, OrderFields::kCustomer);
    // Sum the order lines' amounts and stamp delivery dates.
    double total = 0.0;
    std::vector<storage::Record> lines;
    WATTDB_RETURN_IF_ERROR(
        DoScan(txn, TpccTable::kOrderLine,
               KeyRange{TpccKeys::OrderLine(w, d, o_id, 0),
                        TpccKeys::OrderLine(w, d, o_id + 1, 0)},
               [&](const storage::Record& r) {
                 lines.push_back(r);
                 return true;
               }));
    for (auto& line : lines) {
      total += GetF64(line.payload, OrderLineFields::kAmount);
      PutI64(&line.payload, OrderLineFields::kDeliveryD, 1);
      WATTDB_RETURN_IF_ERROR(
          DoUpdate(txn, TpccTable::kOrderLine, line.key, line.payload));
    }
    storage::Record crec;
    const int64_t cc =
        std::min<int64_t>(std::max<int64_t>(1, c_id),
                          db_->customers_per_district());
    WATTDB_RETURN_IF_ERROR(DoRead(txn, TpccTable::kCustomer,
                                  TpccKeys::Customer(w, d, cc), &crec));
    PutF64(&crec.payload, CustomerFields::kBalance,
           GetF64(crec.payload, CustomerFields::kBalance) + total);
    PutI64(&crec.payload, CustomerFields::kDeliveryCount,
           GetI64(crec.payload, CustomerFields::kDeliveryCount) + 1);
    WATTDB_RETURN_IF_ERROR(DoUpdate(txn, TpccTable::kCustomer,
                                    TpccKeys::Customer(w, d, cc),
                                    crec.payload));
  }
  return Status::OK();
}

Status TpccRunner::StockLevel(tx::Txn* txn, Rng* rng) {
  const int64_t w = rng->UniformInt(1, db_->warehouses());
  const int64_t d = rng->UniformInt(1, kDistrictsPerWarehouse);
  const int64_t threshold = rng->UniformInt(10, 20);
  const int64_t newest = db_->PeekNextOid(w, d) - 1;
  const int64_t from = std::max<int64_t>(1, newest - 19);

  // Items of the last 20 orders' lines.
  std::vector<int64_t> items;
  WATTDB_RETURN_IF_ERROR(
      DoScan(txn, TpccTable::kOrderLine,
             KeyRange{TpccKeys::OrderLine(w, d, from, 0),
                      TpccKeys::OrderLine(w, d, newest + 1, 0)},
             [&](const storage::Record& r) {
               items.push_back(GetI64(r.payload, OrderLineFields::kItem));
               return true;
             }));
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  // Cap the stock probes: the paper runs a reduced single-run variant.
  if (items.size() > 64) items.resize(64);
  int64_t low = 0;
  for (int64_t i : items) {
    storage::Record stock;
    const int64_t s_i = (i - 1) % db_->stock_per_warehouse() + 1;
    const Status s =
        DoRead(txn, TpccTable::kStock, TpccKeys::Stock(w, s_i), &stock);
    if (!s.ok()) continue;
    if (GetI64(stock.payload, StockFields::kQuantity) < threshold) ++low;
  }
  (void)low;
  return Status::OK();
}

}  // namespace wattdb::workload
