#ifndef WATTDB_WORKLOAD_MICRO_H_
#define WATTDB_WORKLOAD_MICRO_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "workload/driver.h"
#include "workload/tpcc_loader.h"

namespace wattdb::workload {

/// Micro-benchmark driver for the Fig. 3 experiment (§3.5): a pool of
/// clients issuing short transactions against the CUSTOMER table, each
/// either read-only (point reads) or write-intensive (point updates),
/// with a configurable update-transaction percentage — while a partition
/// is concurrently being moved.
struct MicroConfig {
  int num_clients = 20;
  SimTime think_time = 20 * kUsPerMs;
  /// Fraction of transactions that are updaters (the Fig. 3 x-axis).
  double update_ratio = 0.5;
  int ops_per_txn = 4;
  uint64_t seed = 99;
};

class MicroWorkload : public WorkloadDriver {
 public:
  MicroWorkload(TpccDatabase* db, MicroConfig config);

  std::string name() const override { return "micro"; }

  void Start() override;
  void Stop() override { running_ = false; }

  int64_t committed() const override { return committed_; }
  int64_t aborted() const override { return aborted_; }
  const Histogram& latencies() const override { return latencies_; }
  void ResetStats() override {
    committed_ = 0;
    aborted_ = 0;
    latencies_.Reset();
  }

 private:
  void ClientLoop(int idx);
  Key RandomCustomerKey(Rng* rng) const;

  TpccDatabase* db_;
  MicroConfig config_;
  std::vector<std::unique_ptr<Rng>> rngs_;
  bool running_ = false;
  int64_t committed_ = 0;
  int64_t aborted_ = 0;
  Histogram latencies_;
};

}  // namespace wattdb::workload

#endif  // WATTDB_WORKLOAD_MICRO_H_
