#include "workload/micro.h"

#include "cluster/routed_ops.h"
#include "common/logging.h"
#include "workload/tpcc_schema.h"

namespace wattdb::workload {

MicroWorkload::MicroWorkload(TpccDatabase* db, MicroConfig config)
    : db_(db), config_(config) {
  for (int i = 0; i < config_.num_clients; ++i) {
    rngs_.push_back(std::make_unique<Rng>(config_.seed * 31337 + i));
  }
}

void MicroWorkload::Start() {
  if (running_) return;
  running_ = true;
  auto& events = db_->cluster()->events();
  for (int i = 0; i < config_.num_clients; ++i) {
    const SimTime offset = static_cast<SimTime>(
        rngs_[i]->UniformDouble() * static_cast<double>(config_.think_time));
    events.ScheduleAfter(offset, [this, i]() { ClientLoop(i); });
  }
}

Key MicroWorkload::RandomCustomerKey(Rng* rng) const {
  const int64_t w = rng->UniformInt(1, db_->warehouses());
  const int64_t d = rng->UniformInt(1, kDistrictsPerWarehouse);
  const int64_t c = rng->UniformInt(1, db_->customers_per_district());
  return TpccKeys::Customer(w, d, c);
}

void MicroWorkload::ClientLoop(int idx) {
  if (!running_) return;
  Rng* rng = rngs_[idx].get();
  cluster::Cluster* c = db_->cluster();
  const bool updater = rng->UniformDouble() < config_.update_ratio;
  tx::Txn* txn = c->BeginTxn(!updater);
  const TableId customer = db_->table(TpccTable::kCustomer);

  Status status;
  for (int op = 0; op < config_.ops_per_txn && status.ok(); ++op) {
    const Key key = RandomCustomerKey(rng);
    storage::Record rec;
    // Routed ops charge one client hop per read AND per update (the
    // historical hand-rolled loop let updates ride the read's hop), so
    // update-heavy mixes pay more simulated network time than older
    // Fig. 3 outputs.
    status = cluster::RoutedRead(c, txn, customer, key, &rec);
    if (status.ok() && updater) {
      PutF64(&rec.payload, CustomerFields::kBalance,
             GetF64(rec.payload, CustomerFields::kBalance) + 1.0);
      status = cluster::RoutedUpdate(c, txn, customer, key, rec.payload);
    }
  }

  SimTime completed_at;
  if (status.ok()) {
    c->CommitTxn(c->master(), txn);
    ++committed_;
    latencies_.Add(static_cast<double>(txn->Elapsed()));
  } else {
    c->AbortTxn(txn);
    ++aborted_;
  }
  completed_at = txn->now;
  c->tm().Release(txn->id);

  const SimTime think = static_cast<SimTime>(
      rng->Exponential(static_cast<double>(config_.think_time)));
  c->events().ScheduleAt(completed_at + think,
                         [this, idx]() { ClientLoop(idx); });
}

}  // namespace wattdb::workload
