#ifndef WATTDB_WORKLOAD_DRIVER_H_
#define WATTDB_WORKLOAD_DRIVER_H_

#include <string>

#include "common/stats.h"

namespace wattdb::chaos {
class HistoryRecorder;
}  // namespace wattdb::chaos

namespace wattdb::workload {

/// Common face of every closed-loop workload generator (TPC-C client pool,
/// Fig. 3 micro read/update mix, YCSB-style KV, ...). Drivers schedule
/// their client loops on the cluster's simulated event queue; Start() arms
/// them, Stop() lets in-flight loops drain. `Db::AttachWorkload` owns
/// drivers through this interface, so benches and scenario scripts can mix
/// workloads without knowing their concrete types.
class WorkloadDriver {
 public:
  virtual ~WorkloadDriver() = default;

  /// Short stable identifier ("tpcc", "micro", "kv", ...).
  virtual std::string name() const = 0;

  /// Begin issuing queries now; clients run until Stop(). Idempotent.
  virtual void Start() = 0;
  virtual void Stop() = 0;

  /// Attach a chaos-harness history recorder. Drivers that support
  /// per-operation history recording (see chaos/history.h) log every
  /// invocation/response through it; the default is a no-op so workloads
  /// without op-level observability stay untouched.
  virtual void set_history(chaos::HistoryRecorder*) {}

  /// Committed transactions since the last ResetStats().
  virtual int64_t committed() const = 0;
  virtual int64_t aborted() const = 0;
  virtual const Histogram& latencies() const = 0;
  virtual void ResetStats() = 0;
};

}  // namespace wattdb::workload

#endif  // WATTDB_WORKLOAD_DRIVER_H_
