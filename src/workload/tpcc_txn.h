#ifndef WATTDB_WORKLOAD_TPCC_TXN_H_
#define WATTDB_WORKLOAD_TPCC_TXN_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "workload/tpcc_loader.h"

namespace wattdb::workload {

/// The five TPC-C transaction types. As in the paper (§5.1), the queries
/// are adapted to run "in a single run" — no user interaction mid-
/// transaction, no response-time constraints — because the goal is to
/// stress the partitioning schemes, not to report official tpmC.
enum class TpccTxnType {
  kNewOrder = 0,
  kPayment,
  kOrderStatus,
  kDelivery,
  kStockLevel,
};

const char* TpccTxnName(TpccTxnType t);

/// Outcome of one executed transaction.
struct TpccTxnResult {
  TpccTxnType type = TpccTxnType::kNewOrder;
  bool committed = false;
  /// Why an uncommitted transaction aborted (OK when committed) — lets the
  /// pool tell shed work (ResourceExhausted) from real aborts.
  Status status;
  SimTime latency_us = 0;
  SimTime completed_at = 0;
  /// Component times, copied from the Txn before release (Fig. 7).
  tx::Txn profile;
};

/// The standard transaction mix (TPC-C clause 5.2.3 minimums, which the
/// paper's "workload mix" approximates).
struct TpccMix {
  double new_order = 0.45;
  double payment = 0.43;
  double order_status = 0.04;
  double delivery = 0.04;
  double stock_level = 0.04;

  TpccTxnType Pick(Rng* rng) const;
};

/// Executes TPC-C transactions against the cluster through the master's
/// routing layer (the client endpoint, §3.2). Stateless apart from the
/// database handle; safe to share across simulated clients.
class TpccRunner {
 public:
  explicit TpccRunner(TpccDatabase* db) : db_(db) {}

  /// Run one transaction of `type` on a NURand-chosen warehouse/district.
  /// The returned result carries the simulated latency; the Txn has been
  /// committed/aborted and released.
  TpccTxnResult Run(TpccTxnType type, Rng* rng);

  /// Run one transaction drawn from `mix`.
  TpccTxnResult RunMixed(const TpccMix& mix, Rng* rng) {
    return Run(mix.Pick(rng), rng);
  }

  int64_t aborts() const { return aborts_; }

 private:
  Status NewOrder(tx::Txn* txn, Rng* rng);
  Status Payment(tx::Txn* txn, Rng* rng);
  Status OrderStatus(tx::Txn* txn, Rng* rng);
  Status Delivery(tx::Txn* txn, Rng* rng);
  Status StockLevel(tx::Txn* txn, Rng* rng);

  /// Route to the owning partition and run a point read/update/insert on
  /// the owner node, charging the master<->owner hop.
  Status DoRead(tx::Txn* txn, TpccTable table, Key key, storage::Record* out);
  Status DoUpdate(tx::Txn* txn, TpccTable table, Key key,
                  const std::vector<uint8_t>& payload);
  Status DoInsert(tx::Txn* txn, TpccTable table, Key key,
                  const std::vector<uint8_t>& payload);
  Status DoDelete(tx::Txn* txn, TpccTable table, Key key);
  Status DoScan(tx::Txn* txn, TpccTable table, const KeyRange& range,
                const std::function<bool(const storage::Record&)>& fn);

  TpccDatabase* db_;
  int64_t aborts_ = 0;
};

}  // namespace wattdb::workload

#endif  // WATTDB_WORKLOAD_TPCC_TXN_H_
