#ifndef WATTDB_WORKLOAD_CLIENT_H_
#define WATTDB_WORKLOAD_CLIENT_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "metrics/breakdown.h"
#include "metrics/time_series.h"
#include "workload/driver.h"
#include "workload/tpcc_txn.h"

namespace wattdb::workload {

/// Closed-loop OLTP client pool (§5.1 "Workload mix"): each client submits
/// one query, waits for the answer, then thinks for an exponentially
/// distributed interval before the next query. Throughput is therefore
/// limited at the client side — the experiments measure the DBMS's fitness
/// to keep latency acceptable at a *given* load, not peak tpmC.
struct ClientPoolConfig {
  int num_clients = 50;
  /// Mean think time between a completion and the next submission.
  SimTime think_time = 100 * kUsPerMs;
  TpccMix mix;
  /// Times a transaction shed by admission control (ResourceExhausted) is
  /// retried — same type, jittered exponential backoff — before the client
  /// gives up and moves on. 0 = shed work counts as an abort outright.
  int shed_retries = 0;
  /// Base backoff before the first retry; doubles per attempt with a
  /// uniform 0.5-1.5x jitter.
  SimTime retry_backoff = 50 * kUsPerMs;
  uint64_t seed = 1234;
};

class ClientPool : public WorkloadDriver {
 public:
  ClientPool(TpccDatabase* db, ClientPoolConfig config);

  std::string name() const override { return "tpcc"; }

  /// Begin issuing queries now; clients run until Stop().
  void Start() override;
  void Stop() override { running_ = false; }

  /// Attach sinks: completions are recorded into `series` (may be null) and
  /// component times into `breakdown` (may be null; switched atomically so
  /// benches can segment phases).
  void set_series(metrics::TimeSeries* series) { series_ = series; }
  void set_breakdown(metrics::TimeBreakdown* bd) { breakdown_ = bd; }

  /// TPC-C transactions are not register ops, so the pool records whole-
  /// transaction OpKind::kTxn markers only: the linearizability checker
  /// skips them, but they situate a violation's surroundings in dumps of
  /// mixed-workload histories.
  void set_history(chaos::HistoryRecorder* history) override {
    history_ = history;
  }

  int64_t completed() const { return completed_; }
  int64_t committed() const override { return completed_; }
  int64_t aborted() const override { return aborted_; }
  const Histogram& latencies() const override { return latencies_; }
  void ResetStats() override {
    completed_ = 0;
    aborted_ = 0;
    shed_ = 0;
    retried_ = 0;
    dropped_ = 0;
    latencies_.Reset();
  }

  /// Attempts refused by admission control (each shed retry counts again).
  int64_t shed() const { return shed_; }
  /// Backoff retries taken after a shed attempt (<= shed()).
  int64_t retried() const { return retried_; }
  /// Transactions counted aborted because a shed attempt had no retries
  /// left.
  int64_t dropped() const { return dropped_; }

 private:
  /// One attempt of one client's current transaction: attempt 0 picks the
  /// type from the mix, retries keep it (the user re-submits the same
  /// request, not a fresh roll of the dice).
  void RunClient(int client_idx, TpccTxnType type, int attempt);
  void ClientLoop(int client_idx);

  TpccDatabase* db_;
  ClientPoolConfig config_;
  TpccRunner runner_;
  std::vector<std::unique_ptr<Rng>> rngs_;
  bool running_ = false;

  metrics::TimeSeries* series_ = nullptr;
  metrics::TimeBreakdown* breakdown_ = nullptr;
  chaos::HistoryRecorder* history_ = nullptr;
  int64_t completed_ = 0;
  int64_t aborted_ = 0;
  int64_t shed_ = 0;
  int64_t retried_ = 0;
  int64_t dropped_ = 0;
  Histogram latencies_;
};

}  // namespace wattdb::workload

#endif  // WATTDB_WORKLOAD_CLIENT_H_
