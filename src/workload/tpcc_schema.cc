#include "workload/tpcc_schema.h"

#include <cstring>

#include "common/logging.h"

namespace wattdb::workload {

KeyRange TpccKeys::WarehouseRange(TpccTable table, int64_t w_lo,
                                  int64_t w_hi) {
  switch (table) {
    case TpccTable::kWarehouse:
      return {Warehouse(w_lo), Warehouse(w_hi)};
    case TpccTable::kDistrict:
      return {District(w_lo, 0), District(w_hi, 0)};
    case TpccTable::kCustomer:
      return {Customer(w_lo, 0, 0), Customer(w_hi, 0, 0)};
    case TpccTable::kHistory:
      return {History(w_lo, 0, 0), History(w_hi, 0, 0)};
    case TpccTable::kNewOrder:
    case TpccTable::kOrders:
      return {Order(w_lo, 0, 0), Order(w_hi, 0, 0)};
    case TpccTable::kOrderLine:
      return {OrderLine(w_lo, 0, 0, 0), OrderLine(w_hi, 0, 0, 0)};
    case TpccTable::kItem:
      // ITEM is warehouse-independent; map "warehouse ranges" onto item id
      // ranges so the table still partitions across nodes.
      return {Item(0), Item(kItems + 1)};
    case TpccTable::kStock:
      return {Stock(w_lo, 0), Stock(w_hi, 0)};
  }
  return {0, 0};
}

int64_t GetI64(const std::vector<uint8_t>& payload, size_t offset) {
  WATTDB_CHECK(offset + 8 <= payload.size());
  int64_t v;
  std::memcpy(&v, payload.data() + offset, 8);
  return v;
}

void PutI64(std::vector<uint8_t>* payload, size_t offset, int64_t value) {
  WATTDB_CHECK(offset + 8 <= payload->size());
  std::memcpy(payload->data() + offset, &value, 8);
}

double GetF64(const std::vector<uint8_t>& payload, size_t offset) {
  WATTDB_CHECK(offset + 8 <= payload.size());
  double v;
  std::memcpy(&v, payload.data() + offset, 8);
  return v;
}

void PutF64(std::vector<uint8_t>* payload, size_t offset, double value) {
  WATTDB_CHECK(offset + 8 <= payload->size());
  std::memcpy(payload->data() + offset, &value, 8);
}

size_t TpccRecordBytes(TpccTable table) {
  switch (table) {
    case TpccTable::kWarehouse:
      return kWarehouseBytes;
    case TpccTable::kDistrict:
      return kDistrictBytes;
    case TpccTable::kCustomer:
      return kCustomerBytes;
    case TpccTable::kHistory:
      return kHistoryBytes;
    case TpccTable::kNewOrder:
      return kNewOrderBytes;
    case TpccTable::kOrders:
      return kOrdersBytes;
    case TpccTable::kOrderLine:
      return kOrderLineBytes;
    case TpccTable::kItem:
      return kItemBytes;
    case TpccTable::kStock:
      return kStockBytes;
  }
  return 0;
}

namespace {
catalog::TableSchema MakeSchema(const char* name, size_t payload_bytes,
                                std::vector<catalog::Column> lead_columns) {
  catalog::TableSchema s;
  s.name = name;
  size_t used = 0;
  for (auto& c : lead_columns) used += c.width;
  s.columns = std::move(lead_columns);
  WATTDB_CHECK(used <= payload_bytes);
  if (used < payload_bytes) {
    s.columns.push_back({"filler", catalog::ColumnType::kString,
                         static_cast<uint32_t>(payload_bytes - used)});
  }
  return s;
}
}  // namespace

std::vector<TableId> RegisterTpccSchema(catalog::GlobalPartitionTable* cat) {
  using CT = catalog::ColumnType;
  std::vector<TableId> ids(kNumTpccTables);
  ids[static_cast<int>(TpccTable::kWarehouse)] = cat->CreateTable(MakeSchema(
      "warehouse", kWarehouseBytes,
      {{"w_tax", CT::kDouble, 8}, {"w_ytd", CT::kDouble, 8}}));
  ids[static_cast<int>(TpccTable::kDistrict)] = cat->CreateTable(MakeSchema(
      "district", kDistrictBytes,
      {{"d_tax", CT::kDouble, 8},
       {"d_ytd", CT::kDouble, 8},
       {"d_next_o_id", CT::kInt64, 8}}));
  ids[static_cast<int>(TpccTable::kCustomer)] = cat->CreateTable(MakeSchema(
      "customer", kCustomerBytes,
      {{"c_balance", CT::kDouble, 8},
       {"c_ytd_payment", CT::kDouble, 8},
       {"c_payment_cnt", CT::kInt64, 8},
       {"c_delivery_cnt", CT::kInt64, 8}}));
  ids[static_cast<int>(TpccTable::kHistory)] = cat->CreateTable(
      MakeSchema("history", kHistoryBytes, {{"h_amount", CT::kDouble, 8}}));
  ids[static_cast<int>(TpccTable::kNewOrder)] = cat->CreateTable(
      MakeSchema("new_order", kNewOrderBytes, {{"no_flag", CT::kInt64, 8}}));
  ids[static_cast<int>(TpccTable::kOrders)] = cat->CreateTable(MakeSchema(
      "orders", kOrdersBytes,
      {{"o_carrier_id", CT::kInt64, 8},
       {"o_ol_cnt", CT::kInt64, 8},
       {"o_c_id", CT::kInt64, 8}}));
  ids[static_cast<int>(TpccTable::kOrderLine)] = cat->CreateTable(MakeSchema(
      "order_line", kOrderLineBytes,
      {{"ol_i_id", CT::kInt64, 8},
       {"ol_quantity", CT::kInt64, 8},
       {"ol_amount", CT::kDouble, 8},
       {"ol_delivery_d", CT::kInt64, 8}}));
  ids[static_cast<int>(TpccTable::kItem)] = cat->CreateTable(
      MakeSchema("item", kItemBytes, {{"i_price", CT::kDouble, 8}}));
  ids[static_cast<int>(TpccTable::kStock)] = cat->CreateTable(MakeSchema(
      "stock", kStockBytes,
      {{"s_quantity", CT::kInt64, 8},
       {"s_ytd", CT::kInt64, 8},
       {"s_order_cnt", CT::kInt64, 8},
       {"s_remote_cnt", CT::kInt64, 8}}));
  return ids;
}

}  // namespace wattdb::workload
