#include "workload/client.h"

#include <algorithm>

#include "chaos/history.h"
#include "common/logging.h"

namespace wattdb::workload {

ClientPool::ClientPool(TpccDatabase* db, ClientPoolConfig config)
    : db_(db), config_(config), runner_(db) {
  for (int i = 0; i < config_.num_clients; ++i) {
    rngs_.push_back(std::make_unique<Rng>(config_.seed * 7919 + i));
  }
}

void ClientPool::Start() {
  if (running_) return;
  running_ = true;
  auto& events = db_->cluster()->events();
  for (int i = 0; i < config_.num_clients; ++i) {
    // Stagger initial arrivals across one think interval so the pool does
    // not thunder in lock-step.
    const SimTime offset = static_cast<SimTime>(
        rngs_[i]->UniformDouble() * static_cast<double>(config_.think_time));
    events.ScheduleAfter(offset, [this, i]() { ClientLoop(i); });
  }
}

void ClientPool::ClientLoop(int client_idx) {
  if (!running_) return;
  RunClient(client_idx, config_.mix.Pick(rngs_[client_idx].get()), 0);
}

void ClientPool::RunClient(int client_idx, TpccTxnType type, int attempt) {
  if (!running_) return;
  Rng* rng = rngs_[client_idx].get();
  const TpccTxnResult result = runner_.Run(type, rng);
  const bool shed = result.status.IsResourceExhausted();
  if (shed) ++shed_;
  if (history_ != nullptr) {
    chaos::HistoryOp op;
    op.client = client_idx;
    op.kind = chaos::OpKind::kTxn;
    op.outcome = result.committed ? chaos::OpOutcome::kOk
                                  : chaos::OpOutcome::kFailed;
    op.invoked_at = result.completed_at - result.latency_us;
    op.responded_at = result.completed_at;
    history_->Record(op);
  }
  if (result.committed) {
    ++completed_;
    latencies_.Add(static_cast<double>(result.latency_us));
    if (series_ != nullptr) {
      series_->RecordCompletion(result.completed_at, result.latency_us);
    }
    if (breakdown_ != nullptr) {
      breakdown_->AddTxn(result.profile);
    }
  } else if (shed && attempt < config_.shed_retries) {
    // Shed by admission control with retries left: re-submit the *same*
    // transaction type after a jittered exponential backoff instead of
    // booking an abort — from the user's side the request is still pending.
    ++retried_;
    const double base =
        static_cast<double>(config_.retry_backoff) *
        static_cast<double>(int64_t{1} << std::min(attempt, 16));
    const SimTime backoff = std::max<SimTime>(
        1, static_cast<SimTime>(base * (0.5 + rng->UniformDouble())));
    db_->cluster()->events().ScheduleAt(
        result.completed_at + backoff, [this, client_idx, type, attempt]() {
          RunClient(client_idx, type, attempt + 1);
        });
    return;
  } else {
    ++aborted_;
    if (shed) ++dropped_;
  }
  // Closed loop: next submission after the answer plus think time.
  const SimTime think = static_cast<SimTime>(
      rng->Exponential(static_cast<double>(config_.think_time)));
  const SimTime next_at = result.completed_at + think;
  db_->cluster()->events().ScheduleAt(next_at,
                                      [this, client_idx]() {
                                        ClientLoop(client_idx);
                                      });
}

}  // namespace wattdb::workload
