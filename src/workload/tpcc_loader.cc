#include "workload/tpcc_loader.h"

#include <algorithm>

#include "common/logging.h"

namespace wattdb::workload {

TpccDatabase::TpccDatabase(cluster::Cluster* cluster,
                           const TpccLoadConfig& config)
    : cluster_(cluster), config_(config), rng_(config.seed) {
  WATTDB_CHECK(config_.warehouses >= 1);
  WATTDB_CHECK(!config_.home_nodes.empty());
  const size_t districts =
      static_cast<size_t>(config_.warehouses) * kDistrictsPerWarehouse;
  const int64_t orders = std::max<int64_t>(
      1, static_cast<int64_t>(kInitialOrdersPerDistrict * config_.fill));
  const int64_t new_orders = std::max<int64_t>(
      1, static_cast<int64_t>(kInitialNewOrdersPerDistrict * config_.fill));
  next_oid_.assign(districts, orders + 1);
  oldest_new_order_.assign(districts, std::max<int64_t>(1, orders - new_orders + 1));
  next_history_.assign(districts, 1);
}

std::vector<uint8_t> TpccDatabase::MakePayload(TpccTable t, Rng* rng) const {
  std::vector<uint8_t> p(TpccRecordBytes(t));
  for (auto& b : p) b = static_cast<uint8_t>(rng->Next() & 0xFF);
  switch (t) {
    case TpccTable::kWarehouse:
      PutF64(&p, WarehouseFields::kTax, rng->UniformInt(0, 2000) / 10000.0);
      PutF64(&p, WarehouseFields::kYtd, 300000.0);
      break;
    case TpccTable::kDistrict:
      PutF64(&p, DistrictFields::kTax, rng->UniformInt(0, 2000) / 10000.0);
      PutF64(&p, DistrictFields::kYtd, 30000.0);
      PutI64(&p, DistrictFields::kNextOid, kInitialOrdersPerDistrict + 1);
      break;
    case TpccTable::kCustomer:
      PutF64(&p, CustomerFields::kBalance, -10.0);
      PutF64(&p, CustomerFields::kYtdPayment, 10.0);
      PutI64(&p, CustomerFields::kPaymentCount, 1);
      PutI64(&p, CustomerFields::kDeliveryCount, 0);
      break;
    case TpccTable::kHistory:
      PutF64(&p, 0, 10.0);
      break;
    case TpccTable::kNewOrder:
      PutI64(&p, 0, 1);
      break;
    case TpccTable::kOrders:
      PutI64(&p, OrderFields::kCarrierId, 0);
      PutI64(&p, OrderFields::kOlCount, 10);
      PutI64(&p, OrderFields::kCustomer, rng->UniformInt(1, kCustomersPerDistrict));
      break;
    case TpccTable::kOrderLine:
      PutI64(&p, OrderLineFields::kItem, rng->UniformInt(1, kItems));
      PutI64(&p, OrderLineFields::kQuantity, 5);
      PutF64(&p, OrderLineFields::kAmount, rng->UniformInt(1, 999999) / 100.0);
      PutI64(&p, OrderLineFields::kDeliveryD, 0);
      break;
    case TpccTable::kItem:
      PutF64(&p, ItemFields::kPrice, rng->UniformInt(100, 10000) / 100.0);
      break;
    case TpccTable::kStock:
      PutI64(&p, StockFields::kQuantity, rng->UniformInt(10, 100));
      PutI64(&p, StockFields::kYtd, 0);
      PutI64(&p, StockFields::kOrderCount, 0);
      PutI64(&p, StockFields::kRemoteCount, 0);
      break;
  }
  return p;
}

Status TpccDatabase::Load() {
  auto& cat = cluster_->catalog();
  tables_ = RegisterTpccSchema(&cat);

  // Contiguous warehouse ranges per home node.
  const int homes = static_cast<int>(config_.home_nodes.size());
  const int w_total = config_.warehouses;
  std::vector<std::pair<int64_t, int64_t>> node_ranges;  // [w_lo, w_hi)
  int64_t w_cursor = 1;
  for (int i = 0; i < homes; ++i) {
    const int64_t count = w_total / homes + (i < w_total % homes ? 1 : 0);
    node_ranges.push_back({w_cursor, w_cursor + count});
    w_cursor += count;
  }

  for (int i = 0; i < homes; ++i) {
    const NodeId home = config_.home_nodes[i];
    cluster::Node* node = cluster_->node(home);
    if (node == nullptr || !node->IsActive()) {
      return Status::Unavailable("home node not active");
    }
    const auto [w_lo, w_hi] = node_ranges[i];
    if (w_lo >= w_hi) continue;

    // ITEM has no warehouse dimension: one partition + segment per node,
    // splitting the item-id space evenly.
    {
      catalog::Partition* ipart =
          cat.CreatePartition(table(TpccTable::kItem), home);
      const int64_t per = (kItems + homes) / homes;
      const KeyRange range{
          TpccKeys::Item(1 + i * per),
          TpccKeys::Item(std::min<int64_t>(kItems + 1, 1 + (i + 1) * per))};
      WATTDB_RETURN_IF_ERROR(
          cat.AssignRange(table(TpccTable::kItem), range, ipart->id()));
      auto seg = node->AllocateSegment(cluster_->Now(), ipart, range);
      if (!seg.ok()) return seg.status();
      for (Key k = range.lo; k < range.hi && k <= kItems; ++k) {
        if (k == 0) continue;
        auto pos =
            seg.value()->Insert(k, MakePayload(TpccTable::kItem, &rng_));
        WATTDB_RETURN_IF_ERROR(pos.status());
        ++rows_loaded_;
      }
    }

    // Warehouse-aligned tables: one partition AND one initial segment per
    // (table, warehouse). Warehouse-grained partitions give the migration
    // read lock (§4.3) TPC-C's natural granularity: moving one warehouse's
    // segment only drains that warehouse's writers.
    for (int64_t w = w_lo; w < w_hi; ++w) {
      WATTDB_RETURN_IF_ERROR(LoadWarehouse(w, home));
    }
  }
  WATTDB_INFO("TPC-C loaded: " << rows_loaded_ << " rows, "
                               << cluster_->segments().size() << " segments");
  return Status::OK();
}

Status TpccDatabase::LoadWarehouse(int64_t w, NodeId home) {
  auto& cat = cluster_->catalog();
  cluster::Node* node = cluster_->node(home);
  const SimTime now = cluster_->Now();

  // One partition + one initial segment per (table, warehouse): the
  // partition is the locking/ownership granule, the segment the
  // mini-partition of physiological partitioning. Inserts go through
  // SegmentForInsert, which tail-splits within the warehouse range if a
  // table outgrows 32 MB (STOCK does at full fill).
  catalog::Partition* parts[kNumTpccTables] = {nullptr};
  for (TpccTable t :
       {TpccTable::kWarehouse, TpccTable::kDistrict, TpccTable::kCustomer,
        TpccTable::kHistory, TpccTable::kNewOrder, TpccTable::kOrders,
        TpccTable::kOrderLine, TpccTable::kStock}) {
    catalog::Partition* part = cat.CreatePartition(table(t), home);
    parts[static_cast<int>(t)] = part;
    const KeyRange range = TpccKeys::WarehouseRange(t, w, w + 1);
    WATTDB_RETURN_IF_ERROR(cat.AssignRange(table(t), range, part->id()));
    auto seg = node->AllocateSegment(now, part, range);
    if (!seg.ok()) return seg.status();
  }

  auto insert = [&](TpccTable t, Key key) -> Status {
    catalog::Partition* part = parts[static_cast<int>(t)];
    auto seg = node->SegmentForInsert(now, /*txn=*/nullptr, part, key,
                                      TpccRecordBytes(t));
    if (!seg.ok()) return seg.status();
    auto pos = seg.value()->Insert(key, MakePayload(t, &rng_));
    if (!pos.ok()) return pos.status();
    ++rows_loaded_;
    return Status::OK();
  };

  const int64_t customers = std::max<int64_t>(
      1, static_cast<int64_t>(kCustomersPerDistrict * config_.fill));
  const int64_t orders = std::max<int64_t>(
      1, static_cast<int64_t>(kInitialOrdersPerDistrict * config_.fill));
  const int64_t new_orders = std::max<int64_t>(
      1, static_cast<int64_t>(kInitialNewOrdersPerDistrict * config_.fill));
  const int64_t stocks = std::max<int64_t>(
      1, static_cast<int64_t>(kStockPerWarehouse * config_.fill));

  WATTDB_RETURN_IF_ERROR(
      insert(TpccTable::kWarehouse, TpccKeys::Warehouse(w)));
  for (int64_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
    WATTDB_RETURN_IF_ERROR(
        insert(TpccTable::kDistrict, TpccKeys::District(w, d)));
    for (int64_t c = 1; c <= customers; ++c) {
      WATTDB_RETURN_IF_ERROR(
          insert(TpccTable::kCustomer, TpccKeys::Customer(w, d, c)));
    }
  }
  for (int64_t i = 1; i <= stocks; ++i) {
    WATTDB_RETURN_IF_ERROR(insert(TpccTable::kStock, TpccKeys::Stock(w, i)));
  }
  for (int64_t d = 1; d <= kDistrictsPerWarehouse; ++d) {
    for (int64_t o = 1; o <= orders; ++o) {
      WATTDB_RETURN_IF_ERROR(
          insert(TpccTable::kOrders, TpccKeys::Order(w, d, o)));
      const int64_t lines = rng_.UniformInt(5, 15);
      for (int64_t ol = 1; ol <= lines; ++ol) {
        WATTDB_RETURN_IF_ERROR(
            insert(TpccTable::kOrderLine, TpccKeys::OrderLine(w, d, o, ol)));
      }
      if (o > orders - new_orders) {
        WATTDB_RETURN_IF_ERROR(
            insert(TpccTable::kNewOrder, TpccKeys::NewOrder(w, d, o)));
      }
    }
    WATTDB_RETURN_IF_ERROR(
        insert(TpccTable::kHistory, TpccKeys::History(w, d, 0)));
  }
  return Status::OK();
}

}  // namespace wattdb::workload
