#ifndef WATTDB_WORKLOAD_TPCC_SCHEMA_H_
#define WATTDB_WORKLOAD_TPCC_SCHEMA_H_

#include <cstdint>
#include <vector>

#include "catalog/global_partition_table.h"
#include "common/types.h"

namespace wattdb::workload {

/// The nine TPC-C tables.
enum class TpccTable : int {
  kWarehouse = 0,
  kDistrict,
  kCustomer,
  kHistory,
  kNewOrder,
  kOrders,
  kOrderLine,
  kItem,
  kStock,
};
constexpr int kNumTpccTables = 9;

/// Per-warehouse cardinalities (TPC-C clause 1.2; scale factor = number of
/// warehouses).
constexpr int kDistrictsPerWarehouse = 10;
constexpr int kCustomersPerDistrict = 3000;
constexpr int kItems = 100000;
constexpr int kStockPerWarehouse = 100000;
constexpr int kInitialOrdersPerDistrict = 3000;
constexpr int kInitialNewOrdersPerDistrict = 900;

/// On-page payload widths (bytes), close to the spec's row sizes.
constexpr size_t kWarehouseBytes = 96;
constexpr size_t kDistrictBytes = 104;
constexpr size_t kCustomerBytes = 656;
constexpr size_t kHistoryBytes = 48;
constexpr size_t kNewOrderBytes = 8;
constexpr size_t kOrdersBytes = 32;
constexpr size_t kOrderLineBytes = 56;
constexpr size_t kItemBytes = 88;
constexpr size_t kStockBytes = 312;

/// 64-bit key packing, warehouse-major so that key ranges align with
/// warehouses and physiological mini-partitions fall out naturally:
///   warehouse:  w
///   district:   w<<4  | d                    (d in 1..10)
///   customer:   (w<<4 | d)<<12 | c           (c in 1..3000)
///   orders:     (w<<4 | d)<<24 | o
///   new_order:  same packing as orders
///   order_line: ((w<<4|d)<<24 | o)<<4 | ol   (ol in 1..15)
///   history:    (w<<4 | d)<<28 | seq
///   item:       i
///   stock:      w<<17 | i                    (i in 1..100000)
struct TpccKeys {
  static Key Warehouse(int64_t w) { return static_cast<Key>(w); }
  static Key District(int64_t w, int64_t d) {
    return (static_cast<Key>(w) << 4) | static_cast<Key>(d);
  }
  static Key Customer(int64_t w, int64_t d, int64_t c) {
    return (District(w, d) << 12) | static_cast<Key>(c);
  }
  static Key Order(int64_t w, int64_t d, int64_t o) {
    return (District(w, d) << 24) | static_cast<Key>(o);
  }
  static Key NewOrder(int64_t w, int64_t d, int64_t o) {
    return Order(w, d, o);
  }
  static Key OrderLine(int64_t w, int64_t d, int64_t o, int64_t ol) {
    return (Order(w, d, o) << 4) | static_cast<Key>(ol);
  }
  static Key History(int64_t w, int64_t d, int64_t seq) {
    return (District(w, d) << 28) | static_cast<Key>(seq);
  }
  static Key Item(int64_t i) { return static_cast<Key>(i); }
  static Key Stock(int64_t w, int64_t i) {
    return (static_cast<Key>(w) << 17) | static_cast<Key>(i);
  }

  /// Key range covering warehouses [w_lo, w_hi) for `table`. All packings
  /// are monotone in w, so warehouse intervals map to key intervals.
  static KeyRange WarehouseRange(TpccTable table, int64_t w_lo, int64_t w_hi);
};

/// Field codecs: the transaction logic reads/writes a few numeric fields at
/// fixed offsets inside the otherwise opaque payload bytes.
int64_t GetI64(const std::vector<uint8_t>& payload, size_t offset);
void PutI64(std::vector<uint8_t>* payload, size_t offset, int64_t value);
double GetF64(const std::vector<uint8_t>& payload, size_t offset);
void PutF64(std::vector<uint8_t>* payload, size_t offset, double value);

/// Field offsets used by the transaction profiles.
struct WarehouseFields {
  static constexpr size_t kTax = 0;   // f64
  static constexpr size_t kYtd = 8;   // f64
};
struct DistrictFields {
  static constexpr size_t kTax = 0;       // f64
  static constexpr size_t kYtd = 8;       // f64
  static constexpr size_t kNextOid = 16;  // i64
};
struct CustomerFields {
  static constexpr size_t kBalance = 0;       // f64
  static constexpr size_t kYtdPayment = 8;    // f64
  static constexpr size_t kPaymentCount = 16; // i64
  static constexpr size_t kDeliveryCount = 24; // i64
};
struct OrderFields {
  static constexpr size_t kCarrierId = 0;  // i64
  static constexpr size_t kOlCount = 8;    // i64
  static constexpr size_t kCustomer = 16;  // i64
};
struct OrderLineFields {
  static constexpr size_t kItem = 0;      // i64
  static constexpr size_t kQuantity = 8;  // i64
  static constexpr size_t kAmount = 16;   // f64
  static constexpr size_t kDeliveryD = 24; // i64
};
struct StockFields {
  static constexpr size_t kQuantity = 0;  // i64
  static constexpr size_t kYtd = 8;       // i64
  static constexpr size_t kOrderCount = 16; // i64
  static constexpr size_t kRemoteCount = 24; // i64
};
struct ItemFields {
  static constexpr size_t kPrice = 0;  // f64
};

/// Register the nine table schemas; returns the TableIds indexed by
/// TpccTable.
std::vector<TableId> RegisterTpccSchema(catalog::GlobalPartitionTable* cat);

/// Payload width of `table`.
size_t TpccRecordBytes(TpccTable table);

}  // namespace wattdb::workload

#endif  // WATTDB_WORKLOAD_TPCC_SCHEMA_H_
