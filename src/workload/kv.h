#ifndef WATTDB_WORKLOAD_KV_H_
#define WATTDB_WORKLOAD_KV_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/session.h"
#include "common/rng.h"
#include "common/stats.h"
#include "sim/event_queue.h"
#include "workload/driver.h"

namespace wattdb::workload {

/// YCSB-style key/value workload: closed-loop clients reading and upserting
/// uniform or Zipf-distributed keys of one generic table — the first
/// scenario that runs purely on the facade's Session API with no TPC-C
/// schema knowledge. Each client submits `batch_size` keys per transaction,
/// either as one owner-grouped MultiGet/MultiPut (one master<->owner round
/// trip per owner node per batch) or, with `batched = false`, as the
/// equivalent per-key Get/Put loop — the baseline the batch pipeline is
/// benchmarked against.
struct KvConfig {
  int num_clients = 16;
  /// Mean think time between a completion and the next submission.
  SimTime think_time = 5 * kUsPerMs;
  /// Fraction of transactions that are read batches (YCSB-B ~ 0.95).
  double read_ratio = 0.95;
  /// Keys per transaction.
  int batch_size = 8;
  /// false: issue the batch as per-key Get/Put ops (the pre-batching data
  /// plane); true: one MultiGet/MultiPut per transaction.
  bool batched = true;
  /// Key space [0, num_keys), fully loaded before the clients start.
  int64_t num_keys = 4096;
  size_t value_bytes = 100;
  /// 0 = uniform key choice; otherwise Zipf skew over the key space. Rank r
  /// maps to key r, so the hot head is a *contiguous* range (the worst case
  /// for range partitioning — one node soaks up nearly all traffic). Works
  /// in both closed- and open-loop mode.
  double zipf_theta = 0.0;
  /// Scatter the Zipf ranks through a seeded permutation of the key space:
  /// hot keys then land all over the ranges (hash-distributed hotspots)
  /// instead of clustering at the low end.
  bool zipf_scramble = false;
  /// Rotate the rank -> key mapping by this many keys (mod num_keys): the
  /// contiguous Zipf head then starts at this key instead of key 0, which
  /// lets a scenario park the hotspot on a chosen owner (e.g. not the
  /// master's partition). Ignored under zipf_scramble.
  int64_t zipf_offset = 0;
  /// Pre-split each node's partition into this many segments at table
  /// creation (Db::AddKvWorkload passes it to CreateKvTable); 0 = lazy
  /// single segment. Skewed runs use it so per-segment heat is graded and
  /// the balancer has units it can actually move.
  int segments_per_partition = 0;
  /// > 0: open-loop mode — transactions arrive as a Poisson process at this
  /// rate regardless of completions (fixed *offered* load; the crash benches
  /// use it to measure the committed-throughput dip during an outage).
  /// 0 = closed loop: `num_clients` clients separated by `think_time`.
  double arrival_qps = 0.0;
  /// Book committed/aborted/latency stats at the transaction's simulated
  /// *completion* time instead of at submission. Under saturation the two
  /// differ wildly: arrivals keep their offered rate while completions are
  /// capped by the bottleneck node — which is exactly what a throughput
  /// bench must see. Off by default (the historical accounting).
  bool count_at_completion = false;
  /// Run every transaction batch-priority: under an enabled admission
  /// policy its ops are shed before latency-sensitive traffic.
  bool batch_priority = false;
  /// Times a transaction shed by admission control (ResourceExhausted) is
  /// retried with jittered exponential backoff before counting as aborted.
  /// 0 = shed work is dropped outright.
  int shed_retries = 0;
  /// Base backoff before the first retry; doubles per attempt, with a
  /// uniform 0.5-1.5x jitter so retries do not thunder back in lock-step.
  SimTime retry_backoff = 20 * kUsPerMs;
  /// > 0: also count commits whose latency is within this bound (slo_met()
  /// — the numerator of SLO-goodput). 0 = goodput accounting off.
  SimTime slo_us = 0;
  /// Write self-describing values — 8-byte LE key then an 8-byte LE
  /// sequence number from a driver-wide monotone counter — instead of
  /// random bytes, so a later reader can tell *which* write it observed.
  /// Required when the driver feeds a chaos HistoryRecorder (set_history):
  /// the linearizability checker matches read observations to writes by
  /// that sequence number.
  bool history_payloads = false;
  uint64_t seed = 2024;
};

class KvWorkload : public WorkloadDriver {
 public:
  /// `events` must be the event queue of the cluster behind `session`.
  /// Call Load() once before Start() to materialize the key space.
  KvWorkload(Session session, TableId table, KvConfig config,
             sim::EventQueue* events);

  /// Upsert all `num_keys` keys in large MultiPut batches (client-side, no
  /// simulated time passes on the global clock).
  Status Load();

  std::string name() const override { return "kv"; }

  /// Attach the chaos history recorder; requires history_payloads (the
  /// checker cannot match observations without self-describing values).
  /// Seeds the recorder with the initial per-key sequence numbers written
  /// by Load(), which already ran by the time Db::AddKvWorkload returns.
  void set_history(chaos::HistoryRecorder* history) override;

  void Start() override;
  void Stop() override { running_ = false; }

  int64_t committed() const override { return committed_; }
  int64_t aborted() const override { return aborted_; }
  const Histogram& latencies() const override { return latencies_; }
  void ResetStats() override {
    committed_ = 0;
    aborted_ = 0;
    issued_ = 0;
    key_ops_ = 0;
    owner_round_trips_ = 0;
    straggler_retries_ = 0;
    shed_ = 0;
    retried_ = 0;
    dropped_ = 0;
    slo_met_ = 0;
    retry_abandoned_ = 0;
    latencies_.Reset();
  }

  /// Per-key operations inside committed transactions (committed() counts
  /// transactions; a batch of 8 keys counts 8 key ops).
  int64_t key_ops() const { return key_ops_; }
  /// Transactions issued since the last ResetStats() — in open-loop mode
  /// the offered load, vs. committed()+aborted() actually finished.
  int64_t issued() const { return issued_; }
  /// Master<->owner round trips charged by batched ops so far.
  int64_t owner_round_trips() const { return owner_round_trips_; }
  /// §4.3 second-location retries batches had to take mid-move.
  int64_t straggler_retries() const { return straggler_retries_; }
  /// Attempts refused by admission control (each retry that sheds again
  /// counts again). Disjoint from committed/aborted only per attempt:
  /// a shed-then-retried-then-committed transaction counts in both.
  int64_t shed() const { return shed_; }
  /// Backoff retries taken after a shed attempt (<= shed()).
  int64_t retried() const { return retried_; }
  /// Transactions finally dropped because a shed attempt had no retries
  /// left — the subset of aborted() caused by admission control.
  int64_t dropped() const { return dropped_; }
  /// Commits within KvConfig.slo_us (0 while the SLO knob is off).
  int64_t slo_met() const { return slo_met_; }
  /// Scheduled retries abandoned because the driver stopped first; closes
  /// the books: issued == committed + aborted + retry_abandoned once the
  /// event queue drains.
  int64_t retry_abandoned() const { return retry_abandoned_; }
  TableId table() const { return table_; }
  const KvConfig& config() const { return config_; }

 private:
  /// What one attempt did: when `retry` is set the transaction shed and a
  /// backoff retry is owed (nothing was booked as aborted yet).
  struct RunResult {
    SimTime completed_at = 0;
    bool retry = false;
  };

  void ClientLoop(int idx, int attempt);
  void ArrivalLoop();
  /// Open-loop attempt runner: books the attempt and schedules the backoff
  /// retry chain (closed loop chains inside ClientLoop instead).
  void Dispatch(int attempt);
  /// One transaction (read or update batch per `config_`). `attempt` > 0
  /// marks a shed retry: it is not a new issued transaction. `client`
  /// labels recorded history ops (the rng's owner index).
  RunResult RunOnce(Rng* rng, int client, int attempt);
  SimTime Backoff(Rng* rng, int attempt) const;
  Key NextKey(Rng* rng) const;
  std::vector<uint8_t> MakeValue(Rng* rng) const;

  Session session_;
  TableId table_;
  KvConfig config_;
  sim::EventQueue* events_;
  std::vector<std::unique_ptr<Rng>> rngs_;
  /// Seeded rank -> key permutation (zipf_scramble); empty otherwise.
  std::vector<Key> scramble_;
  bool running_ = false;
  bool loaded_ = false;

  /// Chaos history recording (null = off). `next_seq_` tags every written
  /// value; `initial_seqs_` remembers what Load() wrote so set_history can
  /// seed the recorder after the fact.
  chaos::HistoryRecorder* history_ = nullptr;
  uint64_t next_seq_ = 0;
  std::map<Key, uint64_t> initial_seqs_;

  int64_t committed_ = 0;
  int64_t aborted_ = 0;
  int64_t issued_ = 0;
  int64_t key_ops_ = 0;
  int64_t owner_round_trips_ = 0;
  int64_t straggler_retries_ = 0;
  int64_t shed_ = 0;
  int64_t retried_ = 0;
  int64_t dropped_ = 0;
  int64_t slo_met_ = 0;
  int64_t retry_abandoned_ = 0;
  Histogram latencies_;
};

}  // namespace wattdb::workload

#endif  // WATTDB_WORKLOAD_KV_H_
