#ifndef WATTDB_WORKLOAD_TPCC_LOADER_H_
#define WATTDB_WORKLOAD_TPCC_LOADER_H_

#include <algorithm>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "common/status.h"
#include "workload/tpcc_schema.h"

namespace wattdb::workload {

/// Loader options. The paper loads TPC-C at scale factor 1000 (~100 GB raw,
/// ~200 GB with indexes and overhead); the reproduction materializes a
/// smaller scale factor and lets the migration cost_scale knob stand in for
/// the data-volume difference (see DESIGN.md).
struct TpccLoadConfig {
  int warehouses = 4;
  /// Nodes that initially own data, as contiguous warehouse ranges. Node 0
  /// (master) participates unless listed otherwise.
  std::vector<NodeId> home_nodes = {NodeId(0)};
  /// Fraction of initial order/customer rows actually materialized (1.0 =
  /// full TPC-C cardinalities). Lower values speed up unit tests.
  double fill = 1.0;
  uint64_t seed = 7;
};

/// Handle to the loaded database: table ids and generation state the
/// transaction profiles need (next order ids, history sequence...).
class TpccDatabase {
 public:
  TpccDatabase(cluster::Cluster* cluster, const TpccLoadConfig& config);

  /// Generate and bulk-load all nine tables. Bulk loading bypasses the WAL
  /// and transactions (rows are visible "since timestamp 0"); it creates
  /// one partition per (table, home node) and one segment per (table,
  /// warehouse) — the mini-partitions of §4.3.
  Status Load();

  TableId table(TpccTable t) const {
    return tables_[static_cast<int>(t)];
  }
  int warehouses() const { return config_.warehouses; }
  const TpccLoadConfig& config() const { return config_; }
  cluster::Cluster* cluster() { return cluster_; }

  /// Next order id per district, maintained by the NewOrder profile.
  int64_t NextOid(int64_t w, int64_t d) {
    return next_oid_[(w - 1) * kDistrictsPerWarehouse + (d - 1)]++;
  }
  int64_t PeekNextOid(int64_t w, int64_t d) const {
    return next_oid_[(w - 1) * kDistrictsPerWarehouse + (d - 1)];
  }
  /// Oldest undelivered order per district (Delivery profile cursor).
  int64_t& OldestNewOrder(int64_t w, int64_t d) {
    return oldest_new_order_[(w - 1) * kDistrictsPerWarehouse + (d - 1)];
  }
  int64_t NextHistorySeq(int64_t w, int64_t d) {
    return next_history_[(w - 1) * kDistrictsPerWarehouse + (d - 1)]++;
  }

  /// Total rows materialized by Load().
  int64_t rows_loaded() const { return rows_loaded_; }

  /// Materialized cardinalities (scaled by config.fill).
  int64_t customers_per_district() const {
    return std::max<int64_t>(
        1, static_cast<int64_t>(kCustomersPerDistrict * config_.fill));
  }
  int64_t stock_per_warehouse() const {
    return std::max<int64_t>(
        1, static_cast<int64_t>(kStockPerWarehouse * config_.fill));
  }

  /// Random payload of the right width for `t` with structured fields
  /// initialized.
  std::vector<uint8_t> MakePayload(TpccTable t, Rng* rng) const;

 private:
  Status LoadWarehouse(int64_t w, NodeId home);

  cluster::Cluster* cluster_;
  TpccLoadConfig config_;
  Rng rng_;
  std::vector<TableId> tables_;
  std::vector<int64_t> next_oid_;
  std::vector<int64_t> oldest_new_order_;
  std::vector<int64_t> next_history_;
  int64_t rows_loaded_ = 0;
};

}  // namespace wattdb::workload

#endif  // WATTDB_WORKLOAD_TPCC_LOADER_H_
