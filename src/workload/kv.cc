#include "workload/kv.h"

#include <algorithm>
#include <utility>

#include "chaos/chaos.h"
#include "chaos/history.h"
#include "common/logging.h"

namespace wattdb::workload {

KvWorkload::KvWorkload(Session session, TableId table, KvConfig config,
                       sim::EventQueue* events)
    : session_(std::move(session)),
      table_(table),
      config_(config),
      events_(events) {
  for (int i = 0; i < config_.num_clients; ++i) {
    rngs_.push_back(std::make_unique<Rng>(config_.seed * 6271 + i));
  }
  if (config_.zipf_theta > 0.0 && config_.zipf_scramble) {
    // Fisher–Yates with a private rng: a bijection, so every key stays
    // reachable and the rank distribution is preserved exactly.
    scramble_.resize(static_cast<size_t>(config_.num_keys));
    for (size_t i = 0; i < scramble_.size(); ++i) {
      scramble_[i] = static_cast<Key>(i);
    }
    Rng shuffle(config_.seed * 7919 + 13);
    for (size_t i = scramble_.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(
          shuffle.UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(scramble_[i - 1], scramble_[j]);
    }
  }
}

Key KvWorkload::NextKey(Rng* rng) const {
  if (config_.zipf_theta > 0.0) {
    const uint64_t rank =
        rng->Zipf(static_cast<uint64_t>(config_.num_keys), config_.zipf_theta);
    if (!scramble_.empty()) return scramble_[rank];
    // A rotation is a bijection, so the rank distribution is untouched;
    // only where in the key space the contiguous hot head sits changes.
    const uint64_t offset = static_cast<uint64_t>(config_.zipf_offset);
    return static_cast<Key>((rank + offset) %
                            static_cast<uint64_t>(config_.num_keys));
  }
  return static_cast<Key>(rng->UniformInt(0, config_.num_keys - 1));
}

std::vector<uint8_t> KvWorkload::MakeValue(Rng* rng) const {
  std::vector<uint8_t> value(config_.value_bytes);
  // One random word is enough entropy for a synthetic value; full-width
  // random fill would dominate the wall-clock cost of large loads.
  if (!value.empty()) value[0] = static_cast<uint8_t>(rng->Next());
  return value;
}

void KvWorkload::set_history(chaos::HistoryRecorder* history) {
  WATTDB_CHECK_MSG(config_.history_payloads,
                   "set_history needs KvConfig.history_payloads: the checker "
                   "matches observations to writes by the encoded seq");
  WATTDB_CHECK_MSG(!config_.batched,
                   "history recording covers the per-key op path only");
  history_ = history;
  if (history_ == nullptr) return;
  // Load() already ran (Db::AddKvWorkload loads before returning the
  // driver); hand its per-key initial seqs to the recorder now.
  for (const auto& [key, seq] : initial_seqs_) {
    history_->RecordInitial(key, seq);
  }
}

Status KvWorkload::Load() {
  if (loaded_) return Status::OK();
  Rng* rng = rngs_.empty() ? nullptr : rngs_[0].get();
  Rng fallback(config_.seed);
  if (rng == nullptr) rng = &fallback;
  constexpr int64_t kLoadBatch = 256;
  for (int64_t lo = 0; lo < config_.num_keys; lo += kLoadBatch) {
    const int64_t hi = std::min(config_.num_keys, lo + kLoadBatch);
    std::vector<KeyValue> kvs;
    kvs.reserve(static_cast<size_t>(hi - lo));
    for (int64_t k = lo; k < hi; ++k) {
      if (config_.history_payloads) {
        const uint64_t seq = ++next_seq_;
        initial_seqs_[static_cast<Key>(k)] = seq;
        kvs.push_back(KeyValue{static_cast<Key>(k),
                               chaos::EncodePayload(static_cast<Key>(k), seq)});
      } else {
        kvs.push_back(KeyValue{static_cast<Key>(k), MakeValue(rng)});
      }
    }
    // System transaction: bulk loading must not be refused (or even
    // counted) by admission control, like the TPC-C loader.
    TxnHandle txn = session_.Begin();
    txn.txn()->system = true;
    StatusOr<MultiPutResult> r = txn.MultiPut(table_, kvs);
    WATTDB_RETURN_IF_ERROR(r.status());
    for (const Status& s : r->statuses) WATTDB_RETURN_IF_ERROR(s);
    WATTDB_RETURN_IF_ERROR(txn.Commit());
  }
  loaded_ = true;
  return Status::OK();
}

void KvWorkload::Start() {
  if (running_) return;
  WATTDB_CHECK_MSG(loaded_, "KvWorkload::Start() before Load()");
  running_ = true;
  if (config_.arrival_qps > 0.0) {
    // Open loop: one Poisson arrival process, paced by the qps knob alone.
    ArrivalLoop();
    return;
  }
  for (int i = 0; i < config_.num_clients; ++i) {
    // Stagger initial arrivals across one think interval so the pool does
    // not thunder in lock-step.
    const SimTime offset = static_cast<SimTime>(
        rngs_[i]->UniformDouble() * static_cast<double>(config_.think_time));
    events_->ScheduleAfter(offset, [this, i]() { ClientLoop(i, 0); });
  }
}

SimTime KvWorkload::Backoff(Rng* rng, int attempt) const {
  // Exponential in the attempt number, jittered uniformly over 0.5-1.5x so
  // a wave of sheds does not retry in lock-step and shed again together.
  const double base = static_cast<double>(config_.retry_backoff) *
                      static_cast<double>(int64_t{1} << std::min(attempt, 16));
  return std::max<SimTime>(
      1, static_cast<SimTime>(base * (0.5 + rng->UniformDouble())));
}

KvWorkload::RunResult KvWorkload::RunOnce(Rng* rng, int client, int attempt) {
  const bool updater = rng->UniformDouble() >= config_.read_ratio;

  std::vector<Key> keys(static_cast<size_t>(config_.batch_size));
  for (Key& k : keys) k = NextKey(rng);

  // A retry re-runs an already-issued transaction; only fresh arrivals
  // count toward the offered load.
  if (attempt == 0) ++issued_;
  TxnHandle txn =
      session_.Begin(/*read_only=*/!updater, config_.batch_priority);
  // Commit()/Abort() close the handle and release the engine transaction;
  // capture the invocation time now, while txn() is still live.
  const SimTime invoked_at = txn.txn() != nullptr ? txn.txn()->start_time : 0;
  Status status;
  int64_t ops = 0;
  // Per-op bookkeeping for the history recorder: writes this attempt put
  // (applied = the Put itself was accepted) and reads with the seq each
  // observed (0 = absent) plus whether a warm replica served it.
  struct PendingWrite {
    Key key;
    uint64_t seq;
    bool applied;
  };
  struct PendingRead {
    Key key;
    uint64_t seq;
    bool from_replica;
  };
  std::vector<PendingWrite> pending_writes;
  std::vector<PendingRead> pending_reads;
  if (updater) {
    std::vector<KeyValue> kvs;
    std::vector<uint64_t> seqs;
    kvs.reserve(keys.size());
    for (Key k : keys) {
      if (config_.history_payloads) {
        seqs.push_back(++next_seq_);
        kvs.push_back(KeyValue{k, chaos::EncodePayload(k, seqs.back())});
      } else {
        kvs.push_back(KeyValue{k, MakeValue(rng)});
      }
    }
    if (config_.batched) {
      StatusOr<MultiPutResult> r = txn.MultiPut(table_, kvs);
      status = r.status();
      if (r.ok()) {
        ops = r->oks();
        owner_round_trips_ += r->stats.owner_round_trips;
        straggler_retries_ += r->stats.straggler_retries;
        // An owner down mid-batch fails its keys with Unavailable; treat
        // the transaction as aborted so the dip shows in committed().
        for (const Status& s : r->statuses) {
          if (!s.ok() && !s.IsNotFound()) {
            status = s;
            break;
          }
        }
      }
    } else {
      for (size_t i = 0; i < kvs.size(); ++i) {
        status = txn.Put(table_, kvs[i].key, kvs[i].payload);
        if (history_ != nullptr) {
          pending_writes.push_back(
              PendingWrite{kvs[i].key, seqs[i], status.ok()});
        }
        if (!status.ok()) break;
        ++ops;
      }
    }
  } else {
    if (config_.batched) {
      StatusOr<MultiGetResult> r = txn.MultiGet(table_, keys);
      status = r.status();
      if (r.ok()) {
        ops = r->hits();
        owner_round_trips_ += r->stats.owner_round_trips;
        straggler_retries_ += r->stats.straggler_retries;
        for (const auto& rec : r->records) {
          if (!rec.ok() && !rec.status().IsNotFound()) {
            status = rec.status();
            break;
          }
        }
      }
    } else {
      for (Key k : keys) {
        const uint64_t replica_before =
            history_ != nullptr ? txn.txn()->replica_reads : 0;
        StatusOr<storage::Record> r = txn.Get(table_, k);
        // A fully-loaded key space only misses for records in flight
        // mid-migration; the per-op loop keeps going like the batch does.
        if (history_ != nullptr && (r.ok() || r.status().IsNotFound())) {
          uint64_t seq = 0;
          Key decoded_key = 0;
          if (r.ok() &&
              !chaos::DecodePayload(r->payload, &decoded_key, &seq)) {
            seq = 0;
          }
          pending_reads.push_back(PendingRead{
              k, seq, txn.txn()->replica_reads > replica_before});
        }
        if (!r.ok() && !r.status().IsNotFound()) {
          status = r.status();
          break;
        }
        if (r.ok()) ++ops;
      }
    }
  }

  const bool ops_ok = status.ok();
  if (status.ok()) status = txn.Commit();
  if (!status.ok()) txn.Abort();
  const bool committed = status.ok();
  const bool shed = status.IsResourceExhausted();
  if (history_ != nullptr) {
    // All ops of the transaction share its [begin, completed] window —
    // wider than each op's true extent, which only *adds* linearization
    // freedom, so it can never produce a false violation.
    const SimTime inv = invoked_at;
    const SimTime resp = txn.completed_at();
    for (const PendingWrite& w : pending_writes) {
      chaos::HistoryOp op;
      op.client = client;
      op.kind = chaos::OpKind::kWrite;
      op.key = w.key;
      op.seq = w.seq;
      op.invoked_at = inv;
      op.responded_at = resp;
      if (committed) {
        op.outcome = chaos::OpOutcome::kOk;
      } else if (!w.applied) {
        // The Put itself was refused (shed, unavailable route). The engine
        // does not assert refused ops never surface — mirror that and
        // treat the write as indeterminate rather than definitely absent.
        op.outcome = chaos::OpOutcome::kIndeterminate;
      } else if (ops_ok) {
        // Applied, then Commit() failed: the fault may have landed after
        // the commit point — genuinely indeterminate.
        op.outcome = chaos::OpOutcome::kIndeterminate;
      } else {
        // Applied, then deliberately rolled back by Abort() before any
        // commit attempt: a definite no.
        op.outcome = chaos::OpOutcome::kFailed;
      }
      history_->Record(op);
    }
    if (committed) {
      // Observations from uncommitted transactions are dropped: a shed or
      // aborted read never promised its snapshot was committed state.
      for (const PendingRead& r : pending_reads) {
        chaos::HistoryOp op;
        op.client = client;
        op.kind = chaos::OpKind::kRead;
        op.key = r.key;
        op.seq = r.seq;
        op.outcome = chaos::OpOutcome::kOk;
        op.invoked_at = inv;
        op.responded_at = resp;
        op.from_replica = r.from_replica;
        history_->Record(op);
      }
    }
  }
  const bool will_retry = shed && attempt < config_.shed_retries;
  const double latency = static_cast<double>(txn.latency_us());
  auto book = [this, committed, shed, will_retry, ops, latency]() {
    if (shed) ++shed_;
    if (committed) {
      ++committed_;
      key_ops_ += ops;
      latencies_.Add(latency);
      if (config_.slo_us > 0 &&
          latency <= static_cast<double>(config_.slo_us)) {
        ++slo_met_;
      }
    } else if (!will_retry) {
      // A shed attempt with retries left is neither committed nor aborted
      // yet — its retry (or retry_abandoned_) closes the books.
      ++aborted_;
      if (shed) ++dropped_;
    }
  };
  if (config_.count_at_completion) {
    // Booked when the transaction is actually done in simulated time — a
    // backlogged node then shows up as committed throughput capped at its
    // service rate, not at the offered rate.
    events_->ScheduleAt(txn.completed_at(), std::move(book));
  } else {
    book();
  }
  return RunResult{txn.completed_at(), will_retry};
}

void KvWorkload::ClientLoop(int idx, int attempt) {
  if (!running_) {
    // The stop raced a scheduled backoff retry: its transaction was issued
    // but never resolved — account for it so issued == committed + aborted
    // + retry_abandoned holds after the queue drains.
    if (attempt > 0) ++retry_abandoned_;
    return;
  }
  Rng* rng = rngs_[idx].get();
  const RunResult r = RunOnce(rng, idx, attempt);
  if (r.retry) {
    // The client sits out the backoff instead of thinking — a shed
    // transaction is unfinished business, not a completed one.
    ++retried_;
    events_->ScheduleAt(
        r.completed_at + Backoff(rng, attempt),
        [this, idx, attempt]() { ClientLoop(idx, attempt + 1); });
    return;
  }
  const SimTime think = static_cast<SimTime>(
      rng->Exponential(static_cast<double>(config_.think_time)));
  events_->ScheduleAt(r.completed_at + think,
                      [this, idx]() { ClientLoop(idx, 0); });
}

void KvWorkload::Dispatch(int attempt) {
  if (!running_) {
    if (attempt > 0) ++retry_abandoned_;
    return;
  }
  Rng* rng = rngs_[0].get();
  const RunResult r = RunOnce(rng, 0, attempt);
  if (r.retry) {
    ++retried_;
    events_->ScheduleAt(r.completed_at + Backoff(rng, attempt),
                        [this, attempt]() { Dispatch(attempt + 1); });
  }
}

void KvWorkload::ArrivalLoop() {
  if (!running_) return;
  Rng* rng = rngs_[0].get();
  // Schedule the next arrival *before* running this one: the offered rate
  // must not depend on how long the transaction takes.
  const SimTime gap = std::max<SimTime>(
      1, static_cast<SimTime>(
             rng->Exponential(static_cast<double>(kUsPerSec) /
                              config_.arrival_qps)));
  events_->ScheduleAfter(gap, [this]() { ArrivalLoop(); });
  Dispatch(0);
}

}  // namespace wattdb::workload
