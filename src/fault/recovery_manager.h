#ifndef WATTDB_FAULT_RECOVERY_MANAGER_H_
#define WATTDB_FAULT_RECOVERY_MANAGER_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/master.h"
#include "common/status.h"
#include "common/types.h"

namespace wattdb::fault {

/// What one node restart recovered; surfaced through Db::RestartNode and
/// collected by bench_crash_recovery (recovery time vs. log-tail length).
struct RecoveryReport {
  NodeId node;
  /// Partitions owned by the node that went through redo.
  int partitions_recovered = 0;
  /// Log records scanned from the per-partition redo tails (everything
  /// after the last kCheckpoint of each partition, §4.3).
  int64_t tail_records = 0;
  /// Bytes of those tails, sequentially read off the log disk.
  size_t tail_bytes = 0;
  /// Insert/update/delete records actually re-applied by Node::RedoInto.
  int64_t records_replayed = 0;
  /// Committed-but-unflushed inserts the crash wiped and redo rebuilt.
  int64_t records_lost_at_crash = 0;
  /// Top-index ranges whose routing entry had to be re-registered with the
  /// master's global partition table.
  int64_t routes_restored = 0;
  /// Ranges whose reclaim was fenced off by a newer ownership epoch — a
  /// warm replica was promoted while this node was down. The local copy is
  /// stale and its segment is dropped instead of resurrected.
  int64_t routes_superseded = 0;
  SimTime crashed_at = 0;    ///< When Crash() hit (0 if never crashed).
  SimTime restarted_at = 0;  ///< When the node finished booting.
  SimTime recovered_at = 0;  ///< When redo finished; node fully serving.
  SimTime redo_us = 0;       ///< recovered_at - restarted_at.
  SimTime outage_us = 0;     ///< recovered_at - crashed_at.
};

/// Node-local crash and ARIES-style redo recovery, driven through the
/// wattdb::Db facade (§4.3: "the log file is needed to reconstruct
/// partitions and to perform appropriate UNDO and REDO").
///
/// Crash(n) is abrupt: unlike Cluster::PowerOff it never refuses a node
/// that still holds data. The node's volatile state dies with it — buffered
/// pages are dropped, and committed inserts newer than the partition's last
/// checkpoint are wiped from its segments (their pages are treated as
/// never having been flushed; the WAL, which was forced at commit, is the
/// only survivor). The active repartitioning scheme is notified so queued
/// moves touching the node are abandoned and in-flight copies abort.
///
/// Restart(n) boots the node, then replays each owned partition's log tail
/// after its last kCheckpoint via LogManager::TailAfter + Node::RedoInto,
/// charging the sequential log read and per-record CPU. Partitions stuck in
/// a move state are re-opened, and any top-index range the routing tree no
/// longer covers is re-registered with the GlobalPartitionTable.
class RecoveryManager {
 public:
  /// `scheme` may be null (no migration machinery to notify).
  RecoveryManager(cluster::Cluster* cluster, cluster::Repartitioner* scheme);

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  /// Abrupt failure of `node`. InvalidArgument for the master (it holds the
  /// catalog and the txn domain), FailedPrecondition if already down.
  Status Crash(NodeId node);

  /// Boot `node` back up and run redo once active. `on_recovered` fires on
  /// the event loop at the simulated time recovery completes. Fails with
  /// FailedPrecondition when the node is already active.
  Status Restart(NodeId node,
                 std::function<void(const RecoveryReport&)> on_recovered =
                     nullptr);

  /// True between Crash(node) and the completion of its recovery.
  bool IsDown(NodeId node) const;

  int crashes() const { return crashes_; }
  /// Crashes of one node so far (the bench/test-side flaky counter; the
  /// master keeps its own count from detections).
  int crash_count(NodeId node) const {
    auto it = crashes_by_node_.find(node);
    return it == crashes_by_node_.end() ? 0 : it->second;
  }
  int recoveries() const { return static_cast<int>(reports_.size()); }
  /// Completed recoveries, in completion order.
  const std::vector<RecoveryReport>& reports() const { return reports_; }

 private:
  /// Runs at boot-completion time; returns the filled report with
  /// recovered_at set to the simulated redo completion time.
  RecoveryReport Redo(NodeId node);

  cluster::Cluster* cluster_;
  cluster::Repartitioner* scheme_;
  std::unordered_map<NodeId, SimTime> crashed_at_;
  std::unordered_map<NodeId, int> crashes_by_node_;
  /// Unflushed inserts wiped by the crash, per node (for the report).
  std::unordered_map<NodeId, int64_t> wiped_at_crash_;
  std::vector<RecoveryReport> reports_;
  int crashes_ = 0;
};

}  // namespace wattdb::fault

#endif  // WATTDB_FAULT_RECOVERY_MANAGER_H_
