#include "fault/fault_injector.h"

#include "common/logging.h"
#include "replica/replica_manager.h"

namespace wattdb::fault {

namespace {
/// How often a migration-progress trigger samples RebalanceStats. Fine
/// enough to land within one move task of the requested fraction, coarse
/// enough to stay invisible next to segment copy times.
constexpr SimTime kProgressPollUs = 20 * kUsPerMs;
}  // namespace

FaultInjector::FaultInjector(cluster::Cluster* cluster,
                             RecoveryManager* recovery,
                             cluster::Repartitioner* scheme)
    : cluster_(cluster), recovery_(recovery), scheme_(scheme) {
  WATTDB_CHECK(cluster_ != nullptr);
  WATTDB_CHECK(recovery_ != nullptr);
}

void FaultInjector::Arm(const FaultPlan& plan) {
  for (const FaultPlan::Crash& spec : plan.crashes) Schedule(spec);
  for (const FaultPlan::NetSplit& spec : plan.splits) Schedule(spec);
}

void FaultInjector::Schedule(const FaultPlan::NetSplit& spec) {
  const uint64_t gen = generation_;
  cluster_->events().ScheduleAt(spec.at, [this, spec, gen]() {
    if (gen != generation_) return;
    const Status cut = cluster_->PartitionNode(spec.node);
    if (!cut.ok()) {
      // Down, already partitioned, or otherwise uncuttable right now —
      // dropped like a skipped crash injection.
      WATTDB_INFO("fault: injected partition of node "
                  << spec.node.value() << " skipped: " << cut.ToString());
      return;
    }
    ++partitions_injected_;
    if (spec.heal_after > 0) {
      // Heals survive Disarm, like auto-restarts: a churn plan must not
      // leave a node permanently unreachable from the master.
      cluster_->events().ScheduleAfter(spec.heal_after, [this, spec]() {
        (void)cluster_->HealPartition(spec.node);
      });
    }
  });
}

void FaultInjector::Schedule(const FaultPlan::Crash& spec) {
  const uint64_t gen = generation_;
  if (spec.at_migration_progress >= 0.0 || spec.at_replica_progress >= 0.0) {
    cluster_->events().ScheduleAfter(
        kProgressPollUs, [this, spec, gen]() { PollProgress(spec, gen); });
    return;
  }
  cluster_->events().ScheduleAt(spec.at,
                                [this, spec, gen]() { Fire(spec, gen); });
}

void FaultInjector::PollProgress(FaultPlan::Crash spec, uint64_t generation) {
  if (generation != generation_) return;
  // A started rebalance is enough — a fast one may reach the fraction and
  // finish inside one poll interval, and the trigger must still fire
  // (tasks_planned > 0 survives completion; it only resets on the next
  // StartRebalance).
  if (spec.at_migration_progress >= 0.0 && scheme_ != nullptr &&
      scheme_->stats().tasks_planned > 0 &&
      scheme_->stats().progress() >= spec.at_migration_progress) {
    WATTDB_INFO("fault: migration progress "
                << scheme_->stats().progress() << " >= "
                << spec.at_migration_progress << ", crashing node "
                << spec.node.value());
    Fire(spec, generation);
    return;
  }
  // Replica-progress trigger: arms only once replicas exist (progress() is
  // 0.0 on an empty replica set, so a plan built before the first standby
  // is created still waits for it).
  if (spec.at_replica_progress >= 0.0 && replicas_ != nullptr &&
      !replicas_->replicas().empty() &&
      replicas_->progress() >= spec.at_replica_progress) {
    WATTDB_INFO("fault: replica progress "
                << replicas_->progress() << " >= " << spec.at_replica_progress
                << ", crashing node " << spec.node.value());
    Fire(spec, generation);
    return;
  }
  cluster_->events().ScheduleAfter(
      kProgressPollUs,
      [this, spec, generation]() { PollProgress(spec, generation); });
}

void FaultInjector::Fire(FaultPlan::Crash spec, uint64_t generation) {
  if (generation != generation_) return;
  const Status crashed = recovery_->Crash(spec.node);
  if (crashed.ok()) {
    ++crashes_injected_;
  } else {
    // Already down, booting, or otherwise uncrashable right now — the
    // injection is dropped, not retried (a periodic spec tries again next
    // period).
    WATTDB_INFO("fault: injected crash of node " << spec.node.value()
                                                 << " skipped: "
                                                 << crashed.ToString());
  }
  if (crashed.ok() && spec.restart_after > 0) {
    cluster_->events().ScheduleAfter(spec.restart_after, [this, spec]() {
      // Auto-restarts survive Disarm so churn plans cannot leave a node
      // permanently dark.
      const Status restarted = recovery_->Restart(
          spec.node, [this](const RecoveryReport& report) {
            if (on_recovered_) on_recovered_(report);
          });
      if (restarted.ok()) ++restarts_injected_;
    });
  }
  if (spec.period > 0) {
    cluster_->events().ScheduleAfter(spec.period, [this, spec, generation]() {
      Fire(spec, generation);
    });
  }
}

}  // namespace wattdb::fault
