#include "fault/recovery_manager.h"

#include <utility>

#include "cluster/node.h"
#include "common/logging.h"
#include "storage/segment.h"
#include "storage/segment_manager.h"

namespace wattdb::fault {

RecoveryManager::RecoveryManager(cluster::Cluster* cluster,
                                 cluster::Repartitioner* scheme)
    : cluster_(cluster), scheme_(scheme) {
  WATTDB_CHECK(cluster_ != nullptr);
}

Status RecoveryManager::Crash(NodeId node) {
  cluster::Node* n = cluster_->node(node);
  if (n == nullptr) {
    return Status::NotFound("no such node " + std::to_string(node.value()));
  }
  if (n->IsMaster()) {
    return Status::InvalidArgument(
        "the master cannot crash: it holds the catalog and the transaction "
        "domain (single-master design, §3.2)");
  }
  if (n->hardware().power_state() == hw::PowerState::kBooting) {
    return Status::Busy("node " + std::to_string(node.value()) +
                        " is booting; crash it once active");
  }
  if (!n->IsActive()) {
    return Status::FailedPrecondition(
        "node " + std::to_string(node.value()) + " is already down");
  }

  const SimTime now = cluster_->Now();
  int64_t wiped = 0;
  // Volatile-state loss: pages carrying inserts newer than the partition's
  // last checkpoint are treated as never flushed — the records vanish from
  // the segments and only the WAL (forced at commit) remembers them. Redo
  // rebuilds them at restart. Updates and deletes were applied in place to
  // pages that already existed at the checkpoint and survive; replaying
  // their after-images at restart is idempotent.
  for (catalog::Partition* p : cluster_->catalog().PartitionsOwnedBy(node)) {
    for (const tx::LogRecord& rec : n->log().TailAfter(p->id())) {
      if (rec.type != tx::LogRecordType::kInsert) continue;
      const SegmentId sid = p->SegmentFor(rec.key);
      if (!sid.valid()) continue;
      storage::Segment* seg = cluster_->segments().Get(sid);
      if (seg != nullptr && seg->Contains(rec.key)) {
        // The wipe models page loss, not workload: undo its bump of the
        // access counters so the heat monitor never sees the crash itself
        // as activity on the dead node.
        const int64_t reads_before = seg->reads();
        const int64_t writes_before = seg->writes();
        WATTDB_CHECK(seg->Delete(rec.key).ok());
        seg->SetStats(reads_before, writes_before);
        ++wiped;
      }
    }
  }
  // The buffer pool dies with the node.
  for (storage::Segment* seg : cluster_->segments().SegmentsOn(node)) {
    n->buffer().InvalidateSegment(seg->id());
  }
  n->hardware().set_power_state(hw::PowerState::kStandby);
  if (scheme_ != nullptr) scheme_->OnNodeFailure(node);

  crashed_at_[node] = now;
  ++crashes_;
  ++crashes_by_node_[node];
  WATTDB_INFO("fault: node " << node.value() << " crashed at t="
                             << ToSeconds(now) << "s (" << wiped
                             << " unflushed insert(s) lost)");
  // Remember the loss for the eventual recovery report.
  wiped_at_crash_[node] = wiped;
  return Status::OK();
}

Status RecoveryManager::Restart(
    NodeId node, std::function<void(const RecoveryReport&)> on_recovered) {
  cluster::Node* n = cluster_->node(node);
  if (n == nullptr) {
    return Status::NotFound("no such node " + std::to_string(node.value()));
  }
  if (n->IsActive()) {
    return Status::FailedPrecondition(
        "node " + std::to_string(node.value()) + " is already active");
  }
  if (n->hardware().power_state() == hw::PowerState::kBooting) {
    return Status::Busy("node already booting");
  }
  return cluster_->PowerOn(
      node, [this, node, cb = std::move(on_recovered)]() {
        // Redo mutates state now (boot completion) but its simulated cost
        // runs until report.recovered_at — the node counts as down, and the
        // report as pending, until then.
        const RecoveryReport report = Redo(node);
        cluster_->events().ScheduleAt(
            report.recovered_at, [this, node, report, cb]() {
              // A re-crash inside the redo window wins: stay down, drop the
              // recovery (its redone state was wiped again by the crash).
              if (!cluster_->node(node)->IsActive()) return;
              crashed_at_.erase(node);
              wiped_at_crash_.erase(node);
              reports_.push_back(report);
              WATTDB_INFO("fault: node " << node.value() << " recovered: "
                                         << report.records_replayed
                                         << " record(s) replayed from "
                                         << report.tail_bytes
                                         << " log bytes in "
                                         << report.redo_us / 1000.0 << " ms");
              if (cb) cb(report);
            });
      });
}

bool RecoveryManager::IsDown(NodeId node) const {
  return crashed_at_.count(node) > 0;
}

RecoveryReport RecoveryManager::Redo(NodeId node) {
  cluster::Node* n = cluster_->node(node);
  WATTDB_CHECK(n != nullptr && n->IsActive());
  const SimTime now = cluster_->Now();

  RecoveryReport report;
  report.node = node;
  report.restarted_at = now;
  auto crashed_it = crashed_at_.find(node);
  report.crashed_at = crashed_it != crashed_at_.end() ? crashed_it->second : 0;
  auto wiped_it = wiped_at_crash_.find(node);
  report.records_lost_at_crash =
      wiped_it != wiped_at_crash_.end() ? wiped_it->second : 0;

  // Redo replay is administrative I/O, not workload: snapshot the node's
  // segment access counters and restore them afterwards, so the master's
  // heat monitor never mistakes a recovering node for a hot one.
  std::unordered_map<uint32_t, std::pair<int64_t, int64_t>> counter_snapshot;
  for (storage::Segment* s : cluster_->segments().SegmentsOn(node)) {
    counter_snapshot[s->id().value()] = {s->reads(), s->writes()};
  }

  SimTime t = now;
  auto& catalog = cluster_->catalog();
  for (catalog::Partition* p : catalog.PartitionsOwnedBy(node)) {
    // Warm-standby partitions are not redone: their content was applied
    // from the *source's* log, nothing of theirs is in this node's WAL.
    // The ReplicaManager drops them when it learns the host died.
    if (p->is_replica()) continue;
    // A partition caught mid-move by the crash reopens as a normal one: the
    // scheme already rolled the move off the master's books.
    if (p->state() != catalog::PartitionState::kNormal) {
      p->set_state(catalog::PartitionState::kNormal);
      p->set_forward_to(PartitionId::Invalid());
    }

    const std::vector<tx::LogRecord> tail = n->log().TailAfter(p->id());
    size_t tail_bytes = 0;
    int64_t applied = 0;
    for (const tx::LogRecord& rec : tail) {
      tail_bytes += rec.Bytes();
      switch (rec.type) {
        case tx::LogRecordType::kInsert:
        case tx::LogRecordType::kUpdate:
        case tx::LogRecordType::kDelete:
          ++applied;
          break;
        default:
          break;
      }
    }
    // Scan the tail off the log disk, then re-apply it (per-record CPU).
    t = n->log().ChargeReplayRead(t, tail_bytes);
    const Status redone = n->RedoInto(p, tail);
    WATTDB_CHECK_MSG(redone.ok(), "redo of partition "
                                      << p->id().value()
                                      << " failed: " << redone.ToString());
    if (applied > 0) {
      t = n->hardware().cpu().Acquire(
          t, static_cast<SimTime>(applied) * n->costs().cpu_record_write_us);
    }

    // Re-register with the master: every key range this partition holds
    // must be reachable again. Ranges the routing tree still points at
    // (as primary, or as the secondary of an interrupted move) are left
    // alone; orphaned ranges are reclaimed — under the ownership epoch the
    // partition last held them at, so a promotion that happened while the
    // node was down fences the deposed owner off instead of letting it
    // steal the route back and serve stale data.
    // One claim token for the whole walk: reclaiming one range restamps
    // the partition's epoch, and judging the next range under the inflated
    // token would let it steal back a route that was promoted away.
    const uint64_t claim_token = p->route_epoch();
    for (const auto& entry : p->top_index().All()) {
      const auto route = catalog.Route(p->table(), entry.range.lo);
      if (route.has_value() &&
          (route->primary == p->id() || route->secondary == p->id())) {
        // Still routed here — but a fence stamped past the token with the
        // route still naming this partition means a promotion sealed the
        // range and never flipped (the standby died first). The full WAL
        // was just replayed, so this copy is authoritative: reclaim to
        // restamp, or the orphaned fence refuses the range forever.
        // Per covering sub-entry: a split range may be part-promoted (the
        // reclaim would refuse the whole), while the sub-entries still
        // naming this partition heal unconditionally.
        for (const auto& sub : catalog.RoutesInRange(p->table(), entry.range)) {
          if (sub.primary != p->id() || sub.epoch <= claim_token) continue;
          const Status heal = catalog.ReclaimRange(p->table(), sub.range,
                                                   p->id(), claim_token);
          WATTDB_CHECK_MSG(heal.ok(),
                           "orphaned-fence heal failed: " << heal.ToString());
          ++report.routes_restored;
        }
        continue;
      }
      const Status claim = catalog.ReclaimRange(p->table(), entry.range,
                                                p->id(), claim_token);
      if (claim.IsFailedPrecondition()) {
        // Superseded: a warm replica of this range was promoted during the
        // outage. The local copy is stale — drop it rather than carry two
        // divergent versions of the range.
        (void)p->DetachSegment(entry.segment);
        n->buffer().InvalidateSegment(entry.segment);
        (void)cluster_->segments().Drop(entry.segment);
        ++report.routes_superseded;
        WATTDB_INFO("recovery: node "
                    << node.value() << " range [" << entry.range.lo << ","
                    << entry.range.hi << ") superseded while down: "
                    << claim.ToString());
        continue;
      }
      WATTDB_CHECK_MSG(claim.ok(), "route reclaim failed: "
                                       << claim.ToString());
      ++report.routes_restored;
    }

    report.tail_records += static_cast<int64_t>(tail.size());
    report.tail_bytes += tail_bytes;
    report.records_replayed += applied;
    ++report.partitions_recovered;
  }

  for (storage::Segment* s : cluster_->segments().SegmentsOn(node)) {
    auto it = counter_snapshot.find(s->id().value());
    if (it == counter_snapshot.end()) {
      s->ResetStats();  // Materialized by the redo itself.
    } else {
      s->SetStats(it->second.first, it->second.second);
    }
  }

  report.recovered_at = t;
  report.redo_us = t - now;
  report.outage_us =
      report.crashed_at > 0 ? t - report.crashed_at : report.redo_us;
  return report;
}

}  // namespace wattdb::fault
