#ifndef WATTDB_FAULT_FAULT_INJECTOR_H_
#define WATTDB_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/master.h"
#include "common/status.h"
#include "common/types.h"
#include "fault/recovery_manager.h"

namespace wattdb::replica {
class ReplicaManager;
}  // namespace wattdb::replica

namespace wattdb::fault {

/// A declarative crash schedule, built fluently and handed to
/// DbOptions::WithFaultPlan (or armed directly on the injector):
///
///   fault::FaultPlan()
///       .CrashAt(NodeId(1), 20 * kUsPerSec, /*restart_after=*/5 * kUsPerSec)
///       .CrashEvery(NodeId(2), 60 * kUsPerSec, 5 * kUsPerSec)
///       .CrashAtMigrationProgress(NodeId(3), 0.5, 10 * kUsPerSec);
struct FaultPlan {
  struct Crash {
    NodeId node;
    /// Absolute simulated crash time (the first one when periodic).
    SimTime at = 0;
    /// > 0: re-crash every `period` after the first crash.
    SimTime period = 0;
    /// In [0, 1]: ignore `at` and crash when the active rebalance's task
    /// progress first reaches this fraction ("crash node X at migration
    /// progress p%"); < 0 disables the trigger.
    double at_migration_progress = -1.0;
    /// In [0, 1]: ignore `at` and crash when ReplicaManager::progress()
    /// first reaches this fraction ("crash the owner at replica catch-up
    /// p%"); < 0 disables the trigger. Requires a replica manager to be
    /// wired (set_replica_manager) — otherwise the trigger never fires.
    double at_replica_progress = -1.0;
    /// > 0: automatically restart (and redo-recover) this long after each
    /// crash; 0 leaves the node down until Db::RestartNode.
    SimTime restart_after = 0;
  };

  /// A master<->node control-link cut: heartbeats from `node` stop at
  /// `at`, the data path keeps serving, and the link heals `heal_after`
  /// later (0 = stays cut until Db::HealPartition).
  struct NetSplit {
    NodeId node;
    SimTime at = 0;
    SimTime heal_after = 0;
  };

  std::vector<Crash> crashes;
  std::vector<NetSplit> splits;

  FaultPlan& CrashAt(NodeId node, SimTime at, SimTime restart_after = 0) {
    Crash c;
    c.node = node;
    c.at = at;
    c.restart_after = restart_after;
    crashes.push_back(c);
    return *this;
  }
  FaultPlan& CrashEvery(NodeId node, SimTime period, SimTime restart_after) {
    Crash c;
    c.node = node;
    c.at = period;
    c.period = period;
    c.restart_after = restart_after;
    crashes.push_back(c);
    return *this;
  }
  FaultPlan& CrashAtMigrationProgress(NodeId node, double fraction,
                                      SimTime restart_after = 0) {
    Crash c;
    c.node = node;
    c.at_migration_progress = fraction;
    c.restart_after = restart_after;
    crashes.push_back(c);
    return *this;
  }
  /// Crash `node` the moment the replica subsystem's aggregate lifecycle
  /// progress reaches `fraction` — e.g. 0.5 lands mid-catch-up, after the
  /// bootstrap stream but before the standby is caught up. Used to prove
  /// exactly-once apply across an owner crash during replica catch-up.
  FaultPlan& CrashAtReplicaProgress(NodeId node, double fraction,
                                    SimTime restart_after = 0) {
    Crash c;
    c.node = node;
    c.at_replica_progress = fraction;
    c.restart_after = restart_after;
    crashes.push_back(c);
    return *this;
  }

  /// Partition `node` from the master at `at`; heal `heal_after` later
  /// (0 = never, until an explicit Db::HealPartition).
  FaultPlan& PartitionAt(NodeId node, SimTime at, SimTime heal_after = 0) {
    NetSplit s;
    s.node = node;
    s.at = at;
    s.heal_after = heal_after;
    splits.push_back(s);
    return *this;
  }

  bool empty() const { return crashes.empty() && splits.empty(); }
};

/// Schedules node failures on the simulated event loop and hands them to
/// the RecoveryManager: one-shot crashes, periodic crash/restart churn, and
/// migration-progress triggers that poll the active scheme's RebalanceStats
/// and fire the moment task progress crosses the requested fraction.
class FaultInjector {
 public:
  /// `scheme` may be null; progress triggers then never fire.
  FaultInjector(cluster::Cluster* cluster, RecoveryManager* recovery,
                cluster::Repartitioner* scheme);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule every crash of `plan`. Validate with FaultPlan checks in
  /// Db::Open first — Arm trusts its input.
  void Arm(const FaultPlan& plan);

  /// Schedule one crash spec.
  void Schedule(const FaultPlan::Crash& spec);

  /// Schedule one network-split spec.
  void Schedule(const FaultPlan::NetSplit& spec);

  /// Cancel all pending injections (already-crashed nodes stay down; their
  /// pending auto-restarts still run so the cluster is not left wedged).
  void Disarm() { ++generation_; }

  /// Wire the replica subsystem so CrashAtReplicaProgress triggers can poll
  /// its progress. May be null (those triggers then never fire).
  void set_replica_manager(replica::ReplicaManager* rm) { replicas_ = rm; }

  /// Callback invoked after every injected restart finishes recovery.
  void set_on_recovered(std::function<void(const RecoveryReport&)> cb) {
    on_recovered_ = std::move(cb);
  }

  int crashes_injected() const { return crashes_injected_; }
  int restarts_injected() const { return restarts_injected_; }
  int partitions_injected() const { return partitions_injected_; }

 private:
  void Fire(FaultPlan::Crash spec, uint64_t generation);
  void PollProgress(FaultPlan::Crash spec, uint64_t generation);

  cluster::Cluster* cluster_;
  RecoveryManager* recovery_;
  cluster::Repartitioner* scheme_;
  replica::ReplicaManager* replicas_ = nullptr;
  std::function<void(const RecoveryReport&)> on_recovered_;
  /// Bumped by Disarm(); events from older generations become no-ops.
  uint64_t generation_ = 0;
  int crashes_injected_ = 0;
  int restarts_injected_ = 0;
  int partitions_injected_ = 0;
};

}  // namespace wattdb::fault

#endif  // WATTDB_FAULT_FAULT_INJECTOR_H_
