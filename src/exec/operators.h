#ifndef WATTDB_EXEC_OPERATORS_H_
#define WATTDB_EXEC_OPERATORS_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/partition.h"
#include "exec/operator.h"

namespace wattdb::exec {

/// Leaf: scans a partition's records in key order on the partition's owner
/// node (data access operators cannot be placed remotely, §3.3). Emits
/// `vector_size` records per next() call — 1 reproduces classic
/// record-at-a-time volcano.
class TableScanOp : public Operator {
 public:
  TableScanOp(catalog::Partition* partition, KeyRange range,
              size_t vector_size, OperatorCosts costs = OperatorCosts());

  void Open(ExecContext* ctx) override;
  bool Next(ExecContext* ctx, Batch* out) override;
  void Close(ExecContext* ctx) override;
  NodeId node() const override { return node_; }
  const char* name() const override { return "TBSCAN"; }

 private:
  catalog::Partition* partition_;
  KeyRange range_;
  size_t vector_size_;
  OperatorCosts costs_;
  NodeId node_;
  // Materialized cursor state (record positions gathered at Open; I/O and
  // CPU are charged per batch as the cursor advances).
  std::vector<std::pair<Key, storage::Rid>> rows_;
  size_t cursor_ = 0;
  SegmentId last_page_seg_;
  uint16_t last_page_ = UINT16_MAX;
};

/// Pipelining projection (§3.3): per-record CPU on its node, no blocking.
class ProjectOp : public Operator {
 public:
  ProjectOp(std::unique_ptr<Operator> child, NodeId node,
            OperatorCosts costs = OperatorCosts());

  void Open(ExecContext* ctx) override;
  bool Next(ExecContext* ctx, Batch* out) override;
  void Close(ExecContext* ctx) override;
  NodeId node() const override { return node_; }
  const char* name() const override { return "PROJECT"; }

 private:
  std::unique_ptr<Operator> child_;
  NodeId node_;
  OperatorCosts costs_;
};

/// Blocking sort (§3.3): drains its child completely, charges n·log n
/// compares on its node, then emits sorted batches. Blocking operators are
/// the profitable offloading candidates.
class SortOp : public Operator {
 public:
  SortOp(std::unique_ptr<Operator> child, NodeId node, size_t vector_size,
         OperatorCosts costs = OperatorCosts());

  void Open(ExecContext* ctx) override;
  bool Next(ExecContext* ctx, Batch* out) override;
  void Close(ExecContext* ctx) override;
  NodeId node() const override { return node_; }
  const char* name() const override { return "SORT"; }

 private:
  std::unique_ptr<Operator> child_;
  NodeId node_;
  size_t vector_size_;
  OperatorCosts costs_;
  Batch materialized_;
  size_t cursor_ = 0;
  bool sorted_ = false;
};

/// Blocking hash aggregation: count/sum grouped by a key-derived group id.
class GroupAggregateOp : public Operator {
 public:
  GroupAggregateOp(std::unique_ptr<Operator> child, NodeId node,
                   std::function<uint64_t(const storage::Record&)> group_of,
                   OperatorCosts costs = OperatorCosts());

  void Open(ExecContext* ctx) override;
  bool Next(ExecContext* ctx, Batch* out) override;
  void Close(ExecContext* ctx) override;
  NodeId node() const override { return node_; }
  const char* name() const override { return "GROUP"; }

 private:
  std::unique_ptr<Operator> child_;
  NodeId node_;
  std::function<uint64_t(const storage::Record&)> group_of_;
  OperatorCosts costs_;
  Batch groups_;
  size_t cursor_ = 0;
  bool done_ = false;
};

/// Ships batches from its child's node to `consumer_node`. Every next()
/// call is a synchronous request/response round trip — with vector size 1
/// this reproduces the "less than 1,000 records per second" collapse of
/// Fig. 1; with larger vectors the round trips amortize.
class ExchangeOp : public Operator {
 public:
  ExchangeOp(std::unique_ptr<Operator> child, NodeId consumer_node,
             OperatorCosts costs = OperatorCosts());

  void Open(ExecContext* ctx) override;
  bool Next(ExecContext* ctx, Batch* out) override;
  void Close(ExecContext* ctx) override;
  NodeId node() const override { return consumer_node_; }
  const char* name() const override { return "EXCHANGE"; }

 private:
  std::unique_ptr<Operator> child_;
  NodeId consumer_node_;
  OperatorCosts costs_;
};

/// Prefetching proxy (§3.3 "buffering operators"): runs on the producer
/// side and asynchronously prefetches the child's next batch while the
/// consumer still processes the previous one, hiding the fetch delay. The
/// consumer waits only for max(0, producer_ready - now).
class BufferOp : public Operator {
 public:
  BufferOp(std::unique_ptr<Operator> child, NodeId consumer_node,
           size_t prefetch_depth = 2, OperatorCosts costs = OperatorCosts());

  void Open(ExecContext* ctx) override;
  bool Next(ExecContext* ctx, Batch* out) override;
  void Close(ExecContext* ctx) override;
  NodeId node() const override { return consumer_node_; }
  const char* name() const override { return "BUFFER"; }

 private:
  /// Start prefetching the next batch on the producer timeline.
  void IssuePrefetch(ExecContext* ctx);

  std::unique_ptr<Operator> child_;
  NodeId consumer_node_;
  size_t prefetch_depth_;
  OperatorCosts costs_;
  /// (batch, time at which it is fully delivered to the consumer node).
  std::deque<std::pair<Batch, SimTime>> inflight_;
  SimTime producer_time_ = 0;
  bool exhausted_ = false;
};

/// Drain a plan to completion, returning the number of records delivered to
/// the root's consumer. Advances the transaction's clock through every
/// operator.
size_t DrainPlan(ExecContext* ctx, Operator* root);

}  // namespace wattdb::exec

#endif  // WATTDB_EXEC_OPERATORS_H_
