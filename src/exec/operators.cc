#include "exec/operators.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "common/logging.h"

namespace wattdb::exec {

namespace {
/// OS-timeslice granularity for CPU accounting: long computations (sorts)
/// are charged in slices so concurrent queries share cores fairly instead
/// of requiring one contiguous reservation.
constexpr SimTime kCpuSliceUs = 4000;

/// Charge CPU on `node`'s core pool along the txn timeline.
void ChargeCpu(ExecContext* ctx, NodeId node, SimTime service) {
  if (service <= 0) return;
  auto& cpu = ctx->cluster->node(node)->hardware().cpu();
  while (service > 0) {
    const SimTime slice = std::min(service, kCpuSliceUs);
    const SimTime done = cpu.Acquire(ctx->txn->now, slice);
    ctx->txn->cpu_us += done - ctx->txn->now;
    ctx->txn->AdvanceTo(done);
    service -= slice;
  }
}

size_t BatchBytes(const Batch& b) {
  size_t n = 0;
  for (const auto& r : b) n += r.StoredSize();
  return n;
}
}  // namespace

// ---------------------------------------------------------------- TableScan

TableScanOp::TableScanOp(catalog::Partition* partition, KeyRange range,
                         size_t vector_size, OperatorCosts costs)
    : partition_(partition),
      range_(range),
      vector_size_(std::max<size_t>(1, vector_size)),
      costs_(costs),
      node_(partition->owner()) {}

void TableScanOp::Open(ExecContext* ctx) {
  rows_.clear();
  cursor_ = 0;
  last_page_ = UINT16_MAX;
  last_page_seg_ = SegmentId::Invalid();
  // Gather the cursor's row list from the indexes (charged as one probe).
  ChargeCpu(ctx, node_, costs_.next_call_overhead_us);
  for (const auto& entry : partition_->SegmentsInRange(range_)) {
    storage::Segment* seg = ctx->cluster->segments().Get(entry.segment);
    WATTDB_CHECK(seg != nullptr);
    const Key lo = std::max(range_.lo, entry.range.lo);
    const Key hi = std::min(range_.hi, entry.range.hi);
    seg->ScanRange(lo, hi, [&](const storage::Record& rec) {
      auto pos = seg->Locate(rec.key);
      rows_.push_back({rec.key, storage::Rid{entry.segment, pos.value()}});
      return true;
    });
  }
}

bool TableScanOp::Next(ExecContext* ctx, Batch* out) {
  out->clear();
  if (cursor_ >= rows_.size()) return false;
  ChargeCpu(ctx, node_, costs_.next_call_overhead_us);
  cluster::Node* node = ctx->cluster->node(node_);
  while (cursor_ < rows_.size() && out->size() < vector_size_) {
    const auto& [key, rid] = rows_[cursor_++];
    storage::Segment* seg = ctx->cluster->segments().Get(rid.segment);
    if (seg == nullptr) continue;
    // One buffer access per distinct page touched.
    if (rid.segment != last_page_seg_ || rid.pos.page != last_page_) {
      last_page_seg_ = rid.segment;
      last_page_ = rid.pos.page;
      const storage::PageAccess acc =
          node->buffer().FetchPage(ctx->txn->now, rid.segment, rid.pos.page,
                                   /*for_write=*/false);
      ctx->txn->disk_us += acc.disk_us;
      ctx->txn->net_us += acc.net_us;
      ctx->txn->latch_us += acc.latch_us;
      ctx->txn->AdvanceTo(acc.done);
    }
    auto rec = seg->ReadAt(rid.pos);
    if (!rec.ok()) continue;  // Deleted since Open; skip.
    ChargeCpu(ctx, node_, costs_.scan_us_per_record);
    out->push_back(std::move(rec).value());
  }
  return !out->empty() || cursor_ < rows_.size();
}

void TableScanOp::Close(ExecContext* ctx) {
  (void)ctx;
  rows_.clear();
}

// ------------------------------------------------------------------ Project

ProjectOp::ProjectOp(std::unique_ptr<Operator> child, NodeId node,
                     OperatorCosts costs)
    : child_(std::move(child)), node_(node), costs_(costs) {}

void ProjectOp::Open(ExecContext* ctx) { child_->Open(ctx); }

bool ProjectOp::Next(ExecContext* ctx, Batch* out) {
  ChargeCpu(ctx, node_, costs_.next_call_overhead_us);
  if (!child_->Next(ctx, out)) return false;
  ChargeCpu(ctx, node_,
            static_cast<SimTime>(out->size()) * costs_.project_us_per_record);
  return true;
}

void ProjectOp::Close(ExecContext* ctx) { child_->Close(ctx); }

// --------------------------------------------------------------------- Sort

SortOp::SortOp(std::unique_ptr<Operator> child, NodeId node,
               size_t vector_size, OperatorCosts costs)
    : child_(std::move(child)),
      node_(node),
      vector_size_(std::max<size_t>(1, vector_size)),
      costs_(costs) {}

void SortOp::Open(ExecContext* ctx) {
  child_->Open(ctx);
  materialized_.clear();
  cursor_ = 0;
  sorted_ = false;
}

bool SortOp::Next(ExecContext* ctx, Batch* out) {
  if (!sorted_) {
    Batch b;
    while (child_->Next(ctx, &b)) {
      materialized_.insert(materialized_.end(),
                           std::make_move_iterator(b.begin()),
                           std::make_move_iterator(b.end()));
    }
    const double n = static_cast<double>(std::max<size_t>(2, materialized_.size()));
    ChargeCpu(ctx, node_,
              static_cast<SimTime>(n * std::log2(n)) *
                  costs_.sort_us_per_compare);
    std::sort(materialized_.begin(), materialized_.end(),
              [](const storage::Record& a, const storage::Record& b) {
                return a.key < b.key;
              });
    sorted_ = true;
  }
  out->clear();
  ChargeCpu(ctx, node_, costs_.next_call_overhead_us);
  while (cursor_ < materialized_.size() && out->size() < vector_size_) {
    out->push_back(materialized_[cursor_++]);
  }
  return !out->empty();
}

void SortOp::Close(ExecContext* ctx) {
  child_->Close(ctx);
  materialized_.clear();
}

// ---------------------------------------------------------- GroupAggregate

GroupAggregateOp::GroupAggregateOp(
    std::unique_ptr<Operator> child, NodeId node,
    std::function<uint64_t(const storage::Record&)> group_of,
    OperatorCosts costs)
    : child_(std::move(child)),
      node_(node),
      group_of_(std::move(group_of)),
      costs_(costs) {}

void GroupAggregateOp::Open(ExecContext* ctx) {
  child_->Open(ctx);
  groups_.clear();
  cursor_ = 0;
  done_ = false;
}

bool GroupAggregateOp::Next(ExecContext* ctx, Batch* out) {
  if (!done_) {
    std::unordered_map<uint64_t, int64_t> counts;
    Batch b;
    while (child_->Next(ctx, &b)) {
      ChargeCpu(ctx, node_,
                static_cast<SimTime>(b.size()) * costs_.aggregate_us_per_record);
      for (const auto& r : b) counts[group_of_(r)]++;
    }
    for (const auto& [group, count] : counts) {
      storage::Record r;
      r.key = group;
      r.payload.resize(8);
      std::memcpy(r.payload.data(), &count, 8);
      groups_.push_back(std::move(r));
    }
    std::sort(groups_.begin(), groups_.end(),
              [](const storage::Record& a, const storage::Record& b) {
                return a.key < b.key;
              });
    done_ = true;
  }
  out->clear();
  ChargeCpu(ctx, node_, costs_.next_call_overhead_us);
  while (cursor_ < groups_.size() && out->size() < 1024) {
    out->push_back(groups_[cursor_++]);
  }
  return !out->empty();
}

void GroupAggregateOp::Close(ExecContext* ctx) {
  child_->Close(ctx);
  groups_.clear();
}

// ----------------------------------------------------------------- Exchange

ExchangeOp::ExchangeOp(std::unique_ptr<Operator> child, NodeId consumer_node,
                       OperatorCosts costs)
    : child_(std::move(child)), consumer_node_(consumer_node), costs_(costs) {}

void ExchangeOp::Open(ExecContext* ctx) { child_->Open(ctx); }

bool ExchangeOp::Next(ExecContext* ctx, Batch* out) {
  const NodeId producer = child_->node();
  if (producer == consumer_node_) {
    return child_->Next(ctx, out);
  }
  // Synchronous request: consumer -> producer.
  const SimTime t0 = ctx->txn->now;
  const SimTime req_arrived =
      ctx->cluster->network().Transfer(t0, consumer_node_, producer, 64);
  ctx->txn->AdvanceTo(req_arrived);
  if (!child_->Next(ctx, out)) {
    ctx->txn->net_us += req_arrived - t0;
    return false;
  }
  // Producer marshals the batch before it ships.
  ChargeCpu(ctx, producer,
            static_cast<SimTime>(out->size()) * costs_.ship_us_per_record);
  // Response: the batch ships back.
  const SimTime t1 = ctx->txn->now;
  const SimTime delivered = ctx->cluster->network().Transfer(
      t1, producer, consumer_node_, 64 + BatchBytes(*out));
  ctx->txn->net_us += (req_arrived - t0) + (delivered - t1);
  ctx->txn->AdvanceTo(delivered);
  return true;
}

void ExchangeOp::Close(ExecContext* ctx) { child_->Close(ctx); }

// ------------------------------------------------------------------- Buffer

BufferOp::BufferOp(std::unique_ptr<Operator> child, NodeId consumer_node,
                   size_t prefetch_depth, OperatorCosts costs)
    : child_(std::move(child)),
      consumer_node_(consumer_node),
      prefetch_depth_(std::max<size_t>(1, prefetch_depth)),
      costs_(costs) {}

void BufferOp::Open(ExecContext* ctx) {
  child_->Open(ctx);
  inflight_.clear();
  exhausted_ = false;
  producer_time_ = ctx->txn->now;
  for (size_t i = 0; i < prefetch_depth_ && !exhausted_; ++i) {
    IssuePrefetch(ctx);
  }
}

void BufferOp::IssuePrefetch(ExecContext* ctx) {
  // The producer side runs ahead on its own timeline: fetch the child's
  // next batch starting at producer_time_, then ship it asynchronously.
  tx::Txn probe = *ctx->txn;  // Clone the accounting context.
  probe.now = std::max(producer_time_, ctx->txn->now);
  ExecContext producer_ctx{ctx->cluster, &probe};
  Batch b;
  if (!child_->Next(&producer_ctx, &b)) {
    exhausted_ = true;
    producer_time_ = probe.now;
    return;
  }
  const NodeId producer = child_->node();
  SimTime delivered = probe.now;
  if (producer != consumer_node_) {
    // Producer marshals the batch on its own timeline before shipping.
    auto& cpu = ctx->cluster->node(producer)->hardware().cpu();
    probe.now = cpu.Acquire(
        probe.now, static_cast<SimTime>(b.size()) * costs_.ship_us_per_record);
    delivered = ctx->cluster->network().Transfer(probe.now, producer,
                                                 consumer_node_,
                                                 64 + BatchBytes(b));
  }
  producer_time_ = probe.now;
  inflight_.push_back({std::move(b), delivered});
}

bool BufferOp::Next(ExecContext* ctx, Batch* out) {
  out->clear();
  if (inflight_.empty()) return false;
  auto [batch, ready_at] = std::move(inflight_.front());
  inflight_.pop_front();
  // The consumer waits only if the prefetch has not landed yet.
  if (ready_at > ctx->txn->now) {
    ctx->txn->net_us += ready_at - ctx->txn->now;
    ctx->txn->AdvanceTo(ready_at);
  }
  *out = std::move(batch);
  if (!exhausted_) IssuePrefetch(ctx);
  return true;
}

void BufferOp::Close(ExecContext* ctx) { child_->Close(ctx); }

// -------------------------------------------------------------------- Drain

size_t DrainPlan(ExecContext* ctx, Operator* root) {
  root->Open(ctx);
  size_t n = 0;
  Batch b;
  while (root->Next(ctx, &b)) {
    n += b.size();
  }
  root->Close(ctx);
  return n;
}

}  // namespace wattdb::exec
