#ifndef WATTDB_EXEC_OPERATOR_H_
#define WATTDB_EXEC_OPERATOR_H_

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "common/types.h"
#include "storage/record.h"
#include "tx/transaction.h"

namespace wattdb::exec {

/// A set of records flowing between operators. Vectorized volcano-style
/// execution (§3.3): "operators ship a set of records on each call",
/// reducing the number of next() calls and, for remote operators, the
/// number of network round trips.
using Batch = std::vector<storage::Record>;

struct ExecContext {
  cluster::Cluster* cluster = nullptr;
  tx::Txn* txn = nullptr;
};

/// Volcano iterator interface. Every operator is placed on a node and
/// charges that node's CPU; crossing nodes requires an ExchangeOp (or its
/// prefetching variant, BufferOp).
class Operator {
 public:
  virtual ~Operator() = default;

  virtual void Open(ExecContext* ctx) = 0;
  /// Fill `out` with the next batch. Returns false when exhausted.
  virtual bool Next(ExecContext* ctx, Batch* out) = 0;
  virtual void Close(ExecContext* ctx) = 0;

  /// Node this operator executes on.
  virtual NodeId node() const = 0;
  virtual const char* name() const = 0;
};

/// Per-record CPU costs of the relational operators, calibrated against the
/// paper's Fig. 1 micro-benchmark (a local table scan sustains ~40k
/// records/s on an Atom-class core).
struct OperatorCosts {
  SimTime scan_us_per_record = 20;
  SimTime project_us_per_record = 3;
  SimTime sort_us_per_compare = 1;
  SimTime aggregate_us_per_record = 3;
  SimTime filter_us_per_record = 2;
  SimTime next_call_overhead_us = 2;
  /// Producer-side marshalling cost per record shipped across nodes. This
  /// is why the paper's buffered remote plan (~30k rec/s) stays below the
  /// plain local scan (~40k): the producer spends CPU serializing batches.
  SimTime ship_us_per_record = 8;
};

}  // namespace wattdb::exec

#endif  // WATTDB_EXEC_OPERATOR_H_
