#ifndef WATTDB_CHAOS_CHAOS_H_
#define WATTDB_CHAOS_CHAOS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "chaos/history.h"
#include "common/types.h"

namespace wattdb {
class Db;
}  // namespace wattdb

namespace wattdb::chaos {

/// One randomized crash/partition scenario, fully determined by `seed`:
/// topology, master policy knobs, the fault schedule, and every workload
/// decision are drawn from one Rng(seed), and the engine underneath runs on
/// a deterministic event loop — so RunScenario(cfg) is a pure function of
/// cfg and a failing seed replays bit-identically with --seed=X.
struct ChaosConfig {
  uint64_t seed = 1;

  /// Topology bounds the seed picks within (num_nodes includes the master).
  int min_nodes = 4;
  int max_nodes = 6;

  /// Simulated time the randomized workload + fault schedule runs for.
  SimTime workload_duration = 20 * kUsPerSec;
  /// After Disarm + heal, how long the scenario waits for the cluster to
  /// re-converge (all ranges owned by live nodes, no in-flight moves or
  /// fences, overload cleared) before declaring it stuck.
  SimTime settle_timeout = 90 * kUsPerSec;

  /// Key space of the scenario's KV table.
  Key max_key = 2048;

  /// Catalog epoch fencing on the route serve path. Turning it off is the
  /// deliberately injected bug of the acceptance test: a partitioned owner
  /// keeps serving routes a promotion sealed, and the invariant checker
  /// catches the lost writes.
  bool epoch_fencing = true;

  /// Elasticity arm: provision spare standby nodes and race seeded
  /// scale-out, drain-and-exclude, and scale-in decisions against the
  /// fault schedule — including a drain victim crashing mid-drain, a drain
  /// *destination* crashing mid-move, and a recruited standby crashing
  /// during bootstrap. All elasticity decisions come from a rng *forked*
  /// off the seed, so turning this on leaves the base scenario every
  /// existing seed draws bit-identical.
  bool elasticity = false;

  /// Record a per-operation concurrent history through a dedicated
  /// single-op KV workload riding alongside the chaos mix, then run the
  /// per-key linearizability checker after the settle phase. Off by
  /// default: recording and checking cost time the plain soak does not pay.
  bool record_history = false;
  /// Key space of the history workload — deliberately small so keys see
  /// enough concurrent ops for the checker to have real interleavings.
  int64_t history_keys = 64;
  /// Closed-loop single-op clients of the history workload.
  int history_clients = 8;
};

/// What the committed history *should* look like, maintained by the
/// scenario's workload loop: `committed` maps each live key to the seq of
/// its latest committed write (payloads encode (key, seq), so the final
/// scan can verify values, not just presence). `aborted` holds (key, seq)
/// pairs that definitely rolled back and must never surface. `fuzzy` holds
/// keys whose last Commit() returned an error — the outcome is genuinely
/// indeterminate (the fault may have hit after the commit point), so those
/// keys are exempt from presence/value checks but still covered by the
/// exactly-once and no-resurrection checks.
struct GroundTruth {
  std::map<Key, uint64_t> committed;
  std::set<std::pair<Key, uint64_t>> aborted;
  std::set<Key> fuzzy;

  uint64_t committed_txns = 0;
  uint64_t aborted_txns = 0;
  uint64_t indeterminate_txns = 0;
  /// Operations the data path refused mid-scenario (Unavailable routes
  /// during failover windows, admission sheds) — expected under chaos.
  uint64_t refused_ops = 0;
};

/// Outcome of one scenario: pass/fail, the invariant violations, and the
/// merged event timeline (planned faults + the master's control events) a
/// failing seed is debugged from.
struct ScenarioResult {
  uint64_t seed = 0;
  bool passed = false;
  std::vector<std::string> violations;
  std::vector<std::string> timeline;

  /// The fully drawn fault schedule and elasticity plan, verbatim — the
  /// subset of `timeline` a replay must reproduce bit-identically. Kept
  /// separate so `chaos_soak --seed` can print what was *armed* up front
  /// instead of leaving the reader to fish plan lines out of the merged
  /// event log.
  std::vector<std::string> fault_schedule;

  int nodes = 0;
  /// Spare standby nodes provisioned by the elasticity arm (0 = arm off).
  int spare_nodes = 0;
  /// Scenario-driven elasticity actions scheduled (scale-outs + drains).
  int elastic_actions = 0;
  int crashes_injected = 0;
  int partitions_injected = 0;
  int restarts_injected = 0;
  int nodes_declared_dead = 0;
  int replicas_promoted = 0;
  uint64_t stale_route_refusals = 0;
  uint64_t committed_txns = 0;
  uint64_t aborted_txns = 0;
  uint64_t indeterminate_txns = 0;
  SimTime sim_end = 0;

  // History mode (ChaosConfig::record_history). History violations also
  // land in `violations` (prefixed "history: ") so they fail the scenario;
  // the structured copies here carry the minimal failing sub-histories.
  int64_t history_ops = 0;
  int history_keys_checked = 0;
  int history_keys_over_budget = 0;
  std::vector<HistoryViolation> history_violations;
};

/// Build a cluster, arm a seeded fault schedule (simultaneous crashes,
/// crash loops, crash-at-migration/replica-progress, master<->node
/// partitions), run a seeded KV workload against it while tracking ground
/// truth, then disarm, heal, wait for re-convergence, and run every
/// invariant check. Deterministic in `config`.
ScenarioResult RunScenario(const ChaosConfig& config);

/// The post-scenario invariant audit, also usable against any quiesced Db:
/// catalog route audit (disjoint, covering, live owners, no stuck moves or
/// orphaned fences), replica audit (no stuck standbys), overload cleared,
/// and the ground-truth data audit (every committed write survives and is
/// read exactly once, no aborted write resurrects). Returns human-readable
/// violations; empty means the scenario holds.
std::vector<std::string> CheckInvariants(Db& db, TableId table, Key max_key,
                                         const GroundTruth& truth);

/// Workload payload wire format: 8-byte LE key + 8-byte LE seq, so the
/// final audit can verify a record's *value*, not just its presence.
std::vector<uint8_t> EncodePayload(Key key, uint64_t seq);
bool DecodePayload(const std::vector<uint8_t>& payload, Key* key,
                   uint64_t* seq);

/// `result` as a single JSON object (one line), for the soak report.
std::string ToJson(const ScenarioResult& result);

/// Minimal JSON string escaping for the report writers.
std::string JsonEscape(const std::string& s);

/// "12.345s" — sim-time formatting used by timeline entries.
std::string FormatSimTime(SimTime t);

}  // namespace wattdb::chaos

#endif  // WATTDB_CHAOS_CHAOS_H_
