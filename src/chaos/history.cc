// History recorder plumbing and JSON shapes. The checker itself lives in
// linearize.cc; this file is the part workload drivers link against.

#include "chaos/history.h"

#include <string>

#include "chaos/chaos.h"

namespace wattdb::chaos {

uint64_t HistoryRecorder::Record(HistoryOp op) {
  op.id = next_id_++;
  ops_.push_back(op);
  return op.id;
}

namespace {

const char* KindName(OpKind k) {
  switch (k) {
    case OpKind::kRead:
      return "read";
    case OpKind::kWrite:
      return "write";
    case OpKind::kDelete:
      return "delete";
    case OpKind::kTxn:
      return "txn";
  }
  return "?";
}

const char* OutcomeName(OpOutcome o) {
  switch (o) {
    case OpOutcome::kOk:
      return "ok";
    case OpOutcome::kFailed:
      return "failed";
    case OpOutcome::kIndeterminate:
      return "indeterminate";
  }
  return "?";
}

}  // namespace

std::string ToJson(const HistoryOp& op) {
  std::string out = "{";
  out += "\"id\":" + std::to_string(op.id);
  out += ",\"client\":" + std::to_string(op.client);
  out += ",\"kind\":\"" + std::string(KindName(op.kind)) + "\"";
  out += ",\"key\":" + std::to_string(op.key);
  out += ",\"seq\":" + std::to_string(op.seq);
  out += ",\"outcome\":\"" + std::string(OutcomeName(op.outcome)) + "\"";
  out += ",\"invoked_at\":" + std::to_string(op.invoked_at);
  out += ",\"responded_at\":" + std::to_string(op.responded_at);
  out += ",\"from_replica\":" + std::string(op.from_replica ? "true" : "false");
  out += "}";
  return out;
}

std::string ToJson(const HistoryViolation& v) {
  std::string out = "{";
  out += "\"anomaly\":\"" + JsonEscape(v.anomaly) + "\"";
  out += ",\"key\":" + std::to_string(v.key);
  out += ",\"sub_history\":[";
  for (size_t i = 0; i < v.sub_history.size(); ++i) {
    if (i > 0) out += ",";
    out += ToJson(v.sub_history[i]);
  }
  out += "]}";
  return out;
}

}  // namespace wattdb::chaos
