// The chaos scenario runner: one seed -> one randomized topology, master
// policy, fault schedule, and KV workload, all drawn from a single Rng so
// the whole scenario replays deterministically. The shapes it throws at
// the cluster are the ones the self-healing stack claims to survive:
// simultaneous crashes, crash loops bouncing against exclude_after_crashes,
// crashes at migration/replica-catch-up progress (a survivor dying
// mid-drain while a heat move is in flight falls out of the combinations),
// and master<->node partitions where the deposed owner keeps committing
// until epoch fencing cuts it off.

#include <algorithm>
#include <string>
#include <vector>

#include "api/db.h"
#include "chaos/chaos.h"
#include "chaos/history.h"
#include "common/logging.h"
#include "common/rng.h"
#include "workload/kv.h"

namespace wattdb::chaos {

std::vector<uint8_t> EncodePayload(Key key, uint64_t seq) {
  std::vector<uint8_t> p(16);
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>((key >> (8 * i)) & 0xff);
    p[8 + i] = static_cast<uint8_t>((seq >> (8 * i)) & 0xff);
  }
  return p;
}

bool DecodePayload(const std::vector<uint8_t>& payload, Key* key,
                   uint64_t* seq) {
  if (payload.size() != 16) return false;
  *key = 0;
  *seq = 0;
  for (int i = 0; i < 8; ++i) {
    *key |= static_cast<Key>(payload[i]) << (8 * i);
    *seq |= static_cast<uint64_t>(payload[8 + i]) << (8 * i);
  }
  return true;
}

namespace {

/// One workload transaction: 1-4 randomized ops (Zipf-skewed keys so some
/// segments run hot enough to earn replicas and heat moves), then commit,
/// deliberate abort, or — when the data path refused an op mid-txn — a
/// forced abort. Ground truth is updated only from *definite* outcomes; a
/// failed Commit() leaves its keys fuzzy (the fault may have landed after
/// the commit point, so asserting either outcome would be wrong).
void RunOneTxn(Session* session, TableId table, const ChaosConfig& config,
               Rng* rng, uint64_t* next_seq, GroundTruth* truth) {
  struct StagedOp {
    bool is_delete;
    Key key;
    uint64_t seq;  // 0 for deletes
  };
  TxnHandle txn = session->Begin();
  std::vector<StagedOp> staged;
  bool doomed = false;
  const int ops = static_cast<int>(rng->UniformInt(1, 4));
  for (int i = 0; i < ops && !doomed; ++i) {
    const Key key =
        rng->UniformDouble() < 0.5
            ? static_cast<Key>(rng->Zipf(config.max_key, 0.8))
            : static_cast<Key>(
                  rng->UniformInt(0, static_cast<int64_t>(config.max_key) - 1));
    const double roll = rng->UniformDouble();
    if (roll < 0.55) {
      const uint64_t seq = (*next_seq)++;
      const Status put = txn.Put(table, key, EncodePayload(key, seq));
      if (put.ok()) {
        staged.push_back({false, key, seq});
      } else {
        ++truth->refused_ops;
        doomed = true;
      }
    } else if (roll < 0.65) {
      const Status del = txn.Delete(table, key);
      if (del.ok()) {
        staged.push_back({true, key, 0});
      } else if (!del.IsNotFound()) {
        ++truth->refused_ops;
        doomed = true;
      }
    } else if (roll < 0.90) {
      (void)txn.Get(table, key);
    } else {
      const KeyRange r{key, std::min<Key>(key + 64, config.max_key)};
      (void)txn.Scan(table, r, [](const storage::Record&) { return true; });
    }
  }
  if (doomed || rng->UniformDouble() < 0.08) {
    txn.Abort();
    for (const StagedOp& op : staged) {
      if (!op.is_delete) truth->aborted.insert({op.key, op.seq});
    }
    ++truth->aborted_txns;
    return;
  }
  const Status committed = txn.Commit();
  if (committed.ok()) {
    for (const StagedOp& op : staged) {
      if (op.is_delete) {
        truth->committed.erase(op.key);
      } else {
        truth->committed[op.key] = op.seq;
      }
      // A definite outcome supersedes any earlier indeterminate one.
      truth->fuzzy.erase(op.key);
    }
    ++truth->committed_txns;
  } else {
    for (const StagedOp& op : staged) truth->fuzzy.insert(op.key);
    ++truth->indeterminate_txns;
  }
}

/// Occasional batched upsert exercising the owner-grouped MultiPut path. A
/// committed batch applies exactly the per-key OK statuses; a refused key
/// inside a committed batch definitely did not apply, so its seq joins the
/// aborted set (it must never surface).
void RunMultiPut(Session* session, TableId table, const ChaosConfig& config,
                 Rng* rng, uint64_t* next_seq, GroundTruth* truth) {
  const int n = static_cast<int>(rng->UniformInt(2, 8));
  std::vector<cluster::KeyValue> kvs;
  std::vector<uint64_t> seqs;
  kvs.reserve(n);
  for (int i = 0; i < n; ++i) {
    const Key key = static_cast<Key>(
        rng->UniformInt(0, static_cast<int64_t>(config.max_key) - 1));
    const uint64_t seq = (*next_seq)++;
    kvs.push_back({key, EncodePayload(key, seq)});
    seqs.push_back(seq);
  }
  auto batch = session->MultiPut(table, kvs);
  if (!batch.ok()) {
    for (const auto& kv : kvs) truth->fuzzy.insert(kv.key);
    ++truth->indeterminate_txns;
    return;
  }
  for (int i = 0; i < n; ++i) {
    if (batch.value().statuses[i].ok()) {
      truth->committed[kvs[i].key] = seqs[i];
      truth->fuzzy.erase(kvs[i].key);
    } else {
      truth->aborted.insert({kvs[i].key, seqs[i]});
      ++truth->refused_ops;
    }
  }
  ++truth->committed_txns;
}

/// Empty string when the cluster has re-converged; otherwise the first
/// condition still violated (reported when the settle timeout expires).
std::string ConvergenceBlocker(Db& db, TableId table) {
  const int n = db.cluster().num_nodes();
  for (int i = 1; i < n; ++i) {
    const NodeId id(static_cast<uint32_t>(i));
    if (db.master().IsExcluded(id)) continue;
    if (db.recovery().IsDown(id)) {
      return "node " + std::to_string(i) + " still down";
    }
    if (db.cluster().IsPartitioned(id)) {
      return "node " + std::to_string(i) + " still partitioned";
    }
  }
  if (db.scheme().InProgress()) return "rebalance still in progress";
  for (const auto& entry : db.cluster().catalog().AllRoutes(table)) {
    if (entry.secondary.valid()) {
      return "move still in flight over [" + std::to_string(entry.range.lo) +
             ", " + std::to_string(entry.range.hi) + ")";
    }
    const catalog::Partition* p =
        db.cluster().catalog().GetPartition(entry.primary);
    if (p == nullptr) return "route names a dropped partition";
    if (p->route_epoch() < entry.epoch) {
      return "orphaned fence over [" + std::to_string(entry.range.lo) + ", " +
             std::to_string(entry.range.hi) + ")";
    }
    if (p->state() != catalog::PartitionState::kNormal) {
      // kForwarding is a legitimate post-move grace window; wait it out.
      return "partition " + std::to_string(p->id().value()) +
             " still in a move state";
    }
    cluster::Node* owner = db.cluster().node(p->owner());
    if (owner == nullptr || !owner->IsActive()) {
      return "range owned by inactive node " +
             std::to_string(p->owner().value());
    }
  }
  for (const auto& rep : db.replicas().replicas()) {
    cluster::Node* host = db.cluster().node(rep->host);
    if (host == nullptr || !host->IsActive()) {
      return "replica hosted on inactive node " +
             std::to_string(rep->host.value());
    }
    // Replica maintenance keeps running during settle and may start a
    // bootstrap right before a convergence check; give it sim time to
    // finish instead of letting the audit flag a healthy stream as stuck.
    if (rep->state == replica::ReplicaState::kBootstrapping) {
      return "replica of [" + std::to_string(rep->range.lo) + ", " +
             std::to_string(rep->range.hi) + ") still bootstrapping";
    }
  }
  if (db.master().OverloadPressure()) return "overload pressure not cleared";
  return "";
}

/// One scenario-scheduled elasticity action, drawn up front from the
/// forked elasticity rng so the whole plan prints before the run starts.
struct ElasticAction {
  SimTime at = 0;
  bool scale_out = false;  // else: drain the target's data to survivors
  NodeId target = NodeId::Invalid();
  /// 0 = none; 1 = crash the action's own target mid-action (recruited
  /// standby dies during bootstrap / drain victim dies mid-drain); 2 =
  /// crash a *survivor* mid-action (a drain destination or move peer dies
  /// while tasks are in flight); 3 = partition the target mid-action and
  /// heal shortly after, racing the heal against any promotion flip the
  /// partition provoked.
  int rider = 0;
  SimTime rider_delay = 0;
  NodeId rider_node = NodeId::Invalid();
};

/// Scenario-driven scale-out: boot `target` and pull a fair share of data
/// onto it, retrying while the single-flight repartitioner runs another
/// plan.
void ElasticScaleOut(Db* db, NodeId target, int retries,
                     ScenarioResult* result) {
  const int actives = db->cluster().ActiveNodeCount();
  const Status s = db->TriggerRebalance({target}, 1.0 / (actives + 1));
  if (s.IsBusy() && retries > 0) {
    db->events().ScheduleAfter(
        500 * kUsPerMs, [db, target, retries, result]() {
          ElasticScaleOut(db, target, retries - 1, result);
        });
    return;
  }
  result->timeline.push_back("t=" + FormatSimTime(db->Now()) +
                             " elastic scale-out onto node " +
                             std::to_string(target.value()) + ": " +
                             s.ToString());
}

/// Scenario-driven drain: move the victim's data to survivors but leave
/// the node online (the master's scale-in path owns power-off, because
/// only it can unwatch the node without tripping a false failure alarm).
/// Standby replicas on the victim are disposable and dropped, not moved.
void ElasticDrain(Db* db, NodeId victim, int retries, ScenarioResult* result) {
  cluster::Node* n = db->cluster().node(victim);
  if (n == nullptr || !n->IsActive()) {
    result->timeline.push_back("t=" + FormatSimTime(db->Now()) +
                               " elastic drain of node " +
                               std::to_string(victim.value()) +
                               " skipped: victim not active");
    return;
  }
  db->replicas().DropReplicasOn(victim);
  const Status s = db->scheme().Drain(victim, [db, victim, result]() {
    result->timeline.push_back("t=" + FormatSimTime(db->Now()) +
                               " elastic drain of node " +
                               std::to_string(victim.value()) + " completed");
  });
  if (s.IsBusy() && retries > 0) {
    db->events().ScheduleAfter(
        500 * kUsPerMs, [db, victim, retries, result]() {
          ElasticDrain(db, victim, retries - 1, result);
        });
    return;
  }
  result->timeline.push_back("t=" + FormatSimTime(db->Now()) +
                             " elastic drain of node " +
                             std::to_string(victim.value()) + ": " +
                             s.ToString());
}

}  // namespace

ScenarioResult RunScenario(const ChaosConfig& config) {
  ScenarioResult result;
  result.seed = config.seed;
  Rng rng(config.seed);
  // Every drawn plan line lands both in the merged timeline and in the
  // standalone fault_schedule — the part of the draw `chaos_soak --seed`
  // must print up front for a replay to be diagnosable.
  auto note_plan = [&result](const std::string& line) {
    result.timeline.push_back("plan: " + line);
    result.fault_schedule.push_back(line);
  };

  // --- Topology + policy, drawn from the seed ----------------------------
  const int num_nodes =
      static_cast<int>(rng.UniformInt(config.min_nodes, config.max_nodes));
  result.nodes = num_nodes;

  cluster::MasterPolicy policy;
  policy.check_period = 500 * kUsPerMs;
  policy.stats_window = 2 * kUsPerSec;
  policy.trigger_after = 1;
  policy.enable_scale_out = false;
  policy.enable_scale_in = false;
  policy.recovery.auto_heal = true;
  policy.recovery.declare_dead_after = 2;
  policy.recovery.restart_backoff =
      rng.UniformDouble() < 0.5 ? 0 : 500 * kUsPerMs;
  policy.recovery.exclude_after_crashes =
      rng.UniformDouble() < 0.35 ? static_cast<int>(rng.UniformInt(2, 3)) : 0;
  if (rng.UniformDouble() < 0.8) {
    policy.replica.enabled = true;
    policy.replica.replicas_per_segment = 1;
    policy.replica.heat_threshold = 1.0;
    policy.replica.max_replicated_segments = 4;
    policy.replica.max_lag_records = 64;
    policy.replica.promote_on_failure = true;
    policy.replica.drop_cold_after = 60 * kUsPerSec;
  }
  if (rng.UniformDouble() < 0.5) {
    policy.balance.enabled = true;
    policy.balance.trigger_ratio = 1.2;
    policy.balance.trigger_after = 1;
    policy.balance.min_total_heat = 1.0;
    policy.balance.cooldown = 5 * kUsPerSec;
    policy.balance.max_moves_per_round = 2;
  }
  note_plan("nodes=" + std::to_string(num_nodes) +
            " replicas=" + std::string(policy.replica.enabled ? "on" : "off") +
            " balance=" + std::string(policy.balance.enabled ? "on" : "off") +
            " exclude_after=" +
            std::to_string(policy.recovery.exclude_after_crashes) +
            " fencing=" + std::string(config.epoch_fencing ? "on" : "off"));

  // --- Fault schedule ----------------------------------------------------
  const SimTime fault_lo = 2 * kUsPerSec;
  const SimTime fault_hi = config.workload_duration > 4 * kUsPerSec
                               ? config.workload_duration - 2 * kUsPerSec
                               : config.workload_duration;
  auto pick_node = [&]() {
    return NodeId(static_cast<uint32_t>(rng.UniformInt(1, num_nodes - 1)));
  };
  auto pick_at = [&]() {
    return static_cast<SimTime>(rng.UniformInt(fault_lo, fault_hi));
  };
  fault::FaultPlan plan;

  // Every scenario carries at least one partition — the tentpole path
  // (heartbeats lost, data path alive, fencing on the eventual handoff).
  {
    const NodeId node = pick_node();
    const SimTime at = pick_at();
    const SimTime heal =
        rng.UniformDouble() < 0.5
            ? static_cast<SimTime>(rng.UniformInt(4, 8)) * kUsPerSec
            : 0;
    plan.PartitionAt(node, at, heal);
    note_plan(
        "partition node " + std::to_string(node.value()) + " at " +
        FormatSimTime(at) +
        (heal > 0 ? " heal_after " + FormatSimTime(heal) : " (no auto-heal)"));
  }
  const int extra_faults = static_cast<int>(rng.UniformInt(1, 4));
  for (int i = 0; i < extra_faults; ++i) {
    const NodeId node = pick_node();
    switch (rng.UniformInt(0, 6)) {
      case 0: {  // Crash with auto-restart.
        const SimTime at = pick_at();
        const SimTime restart =
            static_cast<SimTime>(rng.UniformInt(2, 6)) * kUsPerSec;
        plan.CrashAt(node, at, restart);
        note_plan("crash node " + std::to_string(node.value()) + " at " +
                  FormatSimTime(at) + " restart_after " +
                  FormatSimTime(restart));
        break;
      }
      case 1: {  // Crash that stays down until the heal phase.
        const SimTime at = pick_at();
        plan.CrashAt(node, at, 0);
        note_plan("crash node " + std::to_string(node.value()) + " at " +
                  FormatSimTime(at) + " (stays down)");
        break;
      }
      case 2: {  // Two nodes at the same instant.
        NodeId other = pick_node();
        if (other == node) {
          other = NodeId(static_cast<uint32_t>(node.value() % (num_nodes - 1) +
                                               1));
        }
        const SimTime at = pick_at();
        const SimTime restart =
            static_cast<SimTime>(rng.UniformInt(3, 5)) * kUsPerSec;
        plan.CrashAt(node, at, restart).CrashAt(other, at, restart);
        note_plan("simultaneous crash of nodes " +
                  std::to_string(node.value()) + " and " +
                  std::to_string(other.value()) + " at " + FormatSimTime(at));
        break;
      }
      case 3: {  // Crash loop (bounces against exclude_after_crashes).
        const SimTime period =
            static_cast<SimTime>(rng.UniformInt(4, 8)) * kUsPerSec;
        const SimTime restart =
            static_cast<SimTime>(rng.UniformInt(1, 2)) * kUsPerSec;
        plan.CrashEvery(node, period, restart);
        note_plan("crash loop on node " + std::to_string(node.value()) +
                  " every " + FormatSimTime(period));
        break;
      }
      case 4: {  // Survivor dies while a heat move is in flight.
        const double frac = 0.2 + 0.6 * rng.UniformDouble();
        plan.CrashAtMigrationProgress(node, frac, 3 * kUsPerSec);
        note_plan("crash node " + std::to_string(node.value()) +
                  " at migration progress " + std::to_string(frac));
        break;
      }
      case 5: {  // Owner dies during replica catch-up.
        const double frac = 0.3 + 0.6 * rng.UniformDouble();
        plan.CrashAtReplicaProgress(node, frac, 3 * kUsPerSec);
        note_plan("crash node " + std::to_string(node.value()) +
                  " at replica progress " + std::to_string(frac));
        break;
      }
      default: {  // A second partition.
        const SimTime at = pick_at();
        const SimTime heal =
            static_cast<SimTime>(rng.UniformInt(3, 7)) * kUsPerSec;
        plan.PartitionAt(node, at, heal);
        note_plan("partition node " + std::to_string(node.value()) + " at " +
                  FormatSimTime(at) + " heal_after " + FormatSimTime(heal));
        break;
      }
    }
  }

  // --- Elasticity plan ---------------------------------------------------
  // Drawn from a rng *forked* off the seed (not the main rng): enabling
  // the arm must leave every existing seed's topology, policy, fault
  // schedule, and workload draws bit-identical.
  Rng erng(config.seed * 0x9E3779B97F4A7C15ULL + 0xE1A5);
  int spare_nodes = 0;
  std::vector<ElasticAction> elastic;
  if (config.elasticity) {
    spare_nodes = static_cast<int>(erng.UniformInt(1, 2));
    // Sometimes let the *master's* elasticity policies race the scripted
    // actions too: scale-out recruits the same spares on overload, and
    // scale-in drains whatever ends up least loaded.
    policy.enable_scale_out = erng.UniformDouble() < 0.35;
    policy.enable_scale_in = erng.UniformDouble() < 0.35;
    note_plan("elastic: spares=" + std::to_string(spare_nodes) +
              " master_scale_out=" +
              std::string(policy.enable_scale_out ? "on" : "off") +
              " master_scale_in=" +
              std::string(policy.enable_scale_in ? "on" : "off"));
    const int n_actions = static_cast<int>(erng.UniformInt(1, 3));
    for (int i = 0; i < n_actions; ++i) {
      ElasticAction a;
      a.at = static_cast<SimTime>(erng.UniformInt(fault_lo, fault_hi));
      a.scale_out = erng.UniformDouble() < 0.5;
      a.target =
          a.scale_out
              ? NodeId(static_cast<uint32_t>(num_nodes + i % spare_nodes))
              : NodeId(static_cast<uint32_t>(erng.UniformInt(1, num_nodes - 1)));
      const double roll = erng.UniformDouble();
      if (roll < 0.30) {
        a.rider = 1;  // Target dies mid-bootstrap / mid-drain.
      } else if (roll < 0.50) {
        a.rider = 2;  // A drain destination / move peer dies mid-move.
      } else if (roll < 0.65) {
        a.rider = 3;  // Partition target, heal racing the promotion flip.
      }
      a.rider_delay =
          static_cast<SimTime>(erng.UniformInt(200, 1500)) * kUsPerMs;
      a.rider_node = a.target;
      if (a.rider == 2) {
        NodeId survivor(
            static_cast<uint32_t>(erng.UniformInt(1, num_nodes - 1)));
        if (survivor == a.target) {
          survivor = NodeId(
              static_cast<uint32_t>(survivor.value() % (num_nodes - 1) + 1));
        }
        a.rider_node = survivor;
      }
      elastic.push_back(a);
      std::string line =
          std::string("elastic: ") +
          (a.scale_out ? "scale-out onto node " : "drain node ") +
          std::to_string(a.target.value()) + " at " + FormatSimTime(a.at);
      switch (a.rider) {
        case 1:
          line += " rider: crash target after " + FormatSimTime(a.rider_delay);
          break;
        case 2:
          line += " rider: crash survivor " +
                  std::to_string(a.rider_node.value()) + " after " +
                  FormatSimTime(a.rider_delay);
          break;
        case 3:
          line += " rider: partition target after " +
                  FormatSimTime(a.rider_delay) + ", heal 1s later";
          break;
        default:
          break;
      }
      note_plan(line);
    }
  }
  result.spare_nodes = spare_nodes;
  result.elastic_actions = static_cast<int>(elastic.size());
  const int total_nodes = num_nodes + spare_nodes;

  // --- Open --------------------------------------------------------------
  auto opened = Db::Open(DbOptions()
                             .WithNodes(total_nodes)
                             .WithActiveNodes(num_nodes)
                             .WithSeed(config.seed)
                             .WithoutTpccLoad()
                             .WithMasterLoop(policy)
                             .WithFaultPlan(plan)
                             .WithSampling(false));
  if (!opened.ok()) {
    result.violations.push_back("Db::Open failed: " +
                                opened.status().ToString());
    return result;
  }
  Db& db = *opened.value();
  db.cluster().set_epoch_fencing(config.epoch_fencing);
  auto created = db.CreateKvTable("chaos", 16, config.max_key,
                                  /*segments_per_partition=*/2);
  if (!created.ok()) {
    result.violations.push_back("CreateKvTable failed: " +
                                created.status().ToString());
    return result;
  }
  const TableId table = created.value();

  // --- Arm the elasticity actions ----------------------------------------
  for (const ElasticAction& a : elastic) {
    Db* dbp = &db;
    ScenarioResult* res = &result;
    const SimTime at = std::max(a.at, db.Now() + 1);
    db.events().ScheduleAt(at, [dbp, res, a]() {
      if (a.scale_out) {
        ElasticScaleOut(dbp, a.target, /*retries=*/6, res);
      } else {
        ElasticDrain(dbp, a.target, /*retries=*/6, res);
      }
    });
    if (a.rider == 1 || a.rider == 2) {
      db.events().ScheduleAt(at + a.rider_delay, [dbp, res, a]() {
        const Status s = dbp->CrashNode(a.rider_node);
        res->timeline.push_back("t=" + FormatSimTime(dbp->Now()) +
                                " elastic rider: crash node " +
                                std::to_string(a.rider_node.value()) + ": " +
                                s.ToString());
      });
    } else if (a.rider == 3) {
      db.events().ScheduleAt(at + a.rider_delay, [dbp, res, a]() {
        const Status s = dbp->PartitionNode(a.rider_node);
        res->timeline.push_back("t=" + FormatSimTime(dbp->Now()) +
                                " elastic rider: partition node " +
                                std::to_string(a.rider_node.value()) + ": " +
                                s.ToString());
        dbp->events().ScheduleAfter(kUsPerSec, [dbp, res, a]() {
          const Status h = dbp->HealPartition(a.rider_node);
          res->timeline.push_back("t=" + FormatSimTime(dbp->Now()) +
                                  " elastic rider: heal node " +
                                  std::to_string(a.rider_node.value()) + ": " +
                                  h.ToString());
        });
      });
    }
  }

  // --- History workload (record_history) ---------------------------------
  // A dedicated single-op KV table rides alongside the chaos mix; every
  // Get/Put lands in the recorder as one history op, and the checker runs
  // over the result after the settle phase.
  HistoryRecorder recorder;
  workload::KvWorkload* history_kv = nullptr;
  if (config.record_history) {
    workload::KvConfig kcfg;
    kcfg.num_clients = config.history_clients;
    kcfg.think_time = 10 * kUsPerMs;
    kcfg.read_ratio = 0.6;
    kcfg.batch_size = 1;
    kcfg.batched = false;
    kcfg.num_keys = config.history_keys;
    kcfg.value_bytes = 16;  // EncodePayload width.
    kcfg.history_payloads = true;
    kcfg.seed = config.seed * 31 + 7;
    auto added = db.AddKvWorkload(kcfg);
    if (!added.ok()) {
      result.violations.push_back("history workload failed to attach: " +
                                  added.status().ToString());
      return result;
    }
    history_kv = added.value();
    history_kv->set_history(&recorder);
    history_kv->Start();
  }

  // --- Workload against the armed fault schedule -------------------------
  Session session = db.OpenSession();
  GroundTruth truth;
  uint64_t next_seq = 1;
  const SimTime t_end = db.Now() + config.workload_duration;
  while (db.Now() < t_end) {
    const int txns = static_cast<int>(rng.UniformInt(2, 5));
    for (int i = 0; i < txns; ++i) {
      RunOneTxn(&session, table, config, &rng, &next_seq, &truth);
    }
    if (rng.UniformDouble() < 0.2) {
      RunMultiPut(&session, table, config, &rng, &next_seq, &truth);
    }
    db.RunFor(250 * kUsPerMs);
  }

  // --- Heal: disarm, reconnect, restart, wait for re-convergence ---------
  if (history_kv != nullptr) history_kv->Stop();
  db.fault().Disarm();
  result.timeline.push_back("t=" + FormatSimTime(db.Now()) +
                            " heal phase begins");
  // Heal loops cover the spares too: a recruited standby that a rider
  // crashed must be restarted like any other casualty.
  for (int i = 1; i < total_nodes; ++i) {
    const NodeId id(static_cast<uint32_t>(i));
    if (db.cluster().IsPartitioned(id)) (void)db.HealPartition(id);
  }
  const SimTime settle_deadline = db.Now() + config.settle_timeout;
  std::string blocker = ConvergenceBlocker(db, table);
  while (!blocker.empty() && db.Now() < settle_deadline) {
    for (int i = 1; i < total_nodes; ++i) {
      const NodeId id(static_cast<uint32_t>(i));
      if (db.recovery().IsDown(id) && !db.master().IsExcluded(id)) {
        (void)db.RestartNode(id);
      }
      if (db.cluster().IsPartitioned(id)) (void)db.HealPartition(id);
    }
    db.RunFor(kUsPerSec);
    blocker = ConvergenceBlocker(db, table);
  }
  if (!blocker.empty()) {
    result.violations.push_back(
        "cluster failed to re-converge within settle timeout: " + blocker);
  }

  // --- Invariant audit ---------------------------------------------------
  for (std::string& v : CheckInvariants(db, table, config.max_key, truth)) {
    result.violations.push_back(std::move(v));
  }

  // --- History check -----------------------------------------------------
  if (config.record_history) {
    HistoryCheckResult hc = CheckHistory(recorder);
    result.history_ops = static_cast<int64_t>(recorder.size());
    result.history_keys_checked = hc.keys_checked;
    result.history_keys_over_budget = hc.keys_over_budget;
    for (HistoryViolation& v : hc.violations) {
      result.violations.push_back("history: " + v.anomaly);
      result.history_violations.push_back(std::move(v));
    }
  }

  // --- Report ------------------------------------------------------------
  for (const auto& e : db.control_events()) {
    result.timeline.push_back("t=" + FormatSimTime(e.at) + " " +
                              cluster::ToString(e.type) + " node=" +
                              std::to_string(e.node.value()) +
                              (e.detail.empty() ? "" : " " + e.detail));
  }
  result.crashes_injected = db.fault().crashes_injected();
  result.partitions_injected = db.fault().partitions_injected();
  result.restarts_injected = db.fault().restarts_injected();
  result.nodes_declared_dead = db.master().nodes_declared_dead();
  result.replicas_promoted = db.replicas().replicas_promoted();
  result.stale_route_refusals = db.cluster().stale_route_refusals();
  result.committed_txns = truth.committed_txns;
  result.aborted_txns = truth.aborted_txns;
  result.indeterminate_txns = truth.indeterminate_txns;
  result.sim_end = db.Now();
  result.passed = result.violations.empty();
  return result;
}

}  // namespace wattdb::chaos
