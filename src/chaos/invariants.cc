// The post-scenario invariant audit. Runs against a quiesced cluster
// (after the heal phase) and answers, with human-readable violations:
// did every committed write survive and get read exactly once, did any
// aborted write resurrect, is no range double-owned or orphaned, and did
// the cluster actually re-converge (live owners, no stuck moves, fences,
// standbys, or overload)?

#include <map>
#include <string>
#include <vector>

#include "api/db.h"
#include "chaos/chaos.h"

namespace wattdb::chaos {

namespace {

std::string RangeStr(const KeyRange& r) {
  return "[" + std::to_string(r.lo) + ", " + std::to_string(r.hi) + ")";
}

}  // namespace

std::vector<std::string> CheckInvariants(Db& db, TableId table, Key max_key,
                                         const GroundTruth& truth) {
  std::vector<std::string> violations;
  catalog::GlobalPartitionTable& cat = db.cluster().catalog();

  // --- Catalog route audit ----------------------------------------------
  // Disjointness (no segment double-owned) and live-partition references
  // are the catalog's own invariant; on top of it the routes must cover
  // the whole key space, name active owners, and carry no leftover moves
  // or fences.
  if (!cat.CheckInvariants()) {
    violations.push_back(
        "catalog invariants violated (overlapping routes or dangling "
        "partition references)");
  }
  Key covered_to = 0;
  for (const auto& entry : cat.AllRoutes(table)) {
    if (entry.range.lo > covered_to) {
      violations.push_back("routing hole: keys [" +
                           std::to_string(covered_to) + ", " +
                           std::to_string(entry.range.lo) +
                           ") are owned by nobody");
    }
    if (entry.range.hi > covered_to) covered_to = entry.range.hi;
    if (entry.secondary.valid()) {
      violations.push_back("stuck move: route " + RangeStr(entry.range) +
                           " still carries a secondary pointer");
    }
    const catalog::Partition* p = cat.GetPartition(entry.primary);
    if (p == nullptr) {
      violations.push_back("route " + RangeStr(entry.range) +
                           " names a dropped partition");
      continue;
    }
    if (p->route_epoch() < entry.epoch) {
      violations.push_back("orphaned fence: route " + RangeStr(entry.range) +
                           " epoch " + std::to_string(entry.epoch) +
                           " > owner claim token " +
                           std::to_string(p->route_epoch()));
    }
    if (p->state() != catalog::PartitionState::kNormal) {
      violations.push_back("partition " + std::to_string(p->id().value()) +
                           " stuck in a non-normal state");
    }
    const NodeId owner = p->owner();
    cluster::Node* node = db.cluster().node(owner);
    if (node == nullptr || !node->IsActive() || db.recovery().IsDown(owner)) {
      violations.push_back("route " + RangeStr(entry.range) +
                           " owned by inactive node " +
                           std::to_string(owner.value()));
    } else if (db.cluster().IsPartitioned(owner)) {
      violations.push_back("route " + RangeStr(entry.range) +
                           " owned by a node still partitioned from the "
                           "master");
    } else if (db.master().IsExcluded(owner)) {
      violations.push_back("route " + RangeStr(entry.range) +
                           " owned by excluded node " +
                           std::to_string(owner.value()));
    }
  }
  if (covered_to < max_key) {
    violations.push_back("routing hole: keys [" + std::to_string(covered_to) +
                         ", " + std::to_string(max_key) +
                         ") are owned by nobody");
  }

  // --- Control-plane quiescence -----------------------------------------
  if (db.scheme().InProgress()) {
    violations.push_back("rebalance still in progress after settle");
  }
  for (const auto& rep : db.replicas().replicas()) {
    cluster::Node* host = db.cluster().node(rep->host);
    if (host == nullptr || !host->IsActive()) {
      violations.push_back("stuck replica of " + RangeStr(rep->range) +
                           " hosted on inactive node " +
                           std::to_string(rep->host.value()));
    } else if (rep->state == replica::ReplicaState::kBootstrapping &&
               db.Now() > rep->created_at + 2 * kUsPerSec) {
      // Grace window: replica maintenance runs during settle, so a stream
      // started in the instants before the audit is healthy, not stuck —
      // a real wedge has been bootstrapping for many seconds.
      violations.push_back("stuck replica of " + RangeStr(rep->range) +
                           " still bootstrapping after settle");
    }
  }
  if (db.master().OverloadPressure()) {
    violations.push_back("overload pressure not cleared after settle");
  }

  // --- Data audit: one full scan vs the ground truth ---------------------
  // Exactly-once: a key may appear at most once. Every committed write
  // survives: each non-fuzzy committed key must be present with the exact
  // (key, seq) payload of its last committed write. Nothing resurrects:
  // no record may carry an explicitly-aborted (key, seq), and no
  // non-fuzzy key outside the committed map may exist at all.
  Session session = db.OpenSession();
  TxnHandle txn = session.Begin(/*read_only=*/true);
  std::map<Key, std::vector<uint8_t>> seen;
  int duplicates = 0;
  auto scanned =
      txn.Scan(table, {0, max_key}, [&](const storage::Record& rec) {
        if (!seen.emplace(rec.key, rec.payload).second) ++duplicates;
        return true;
      });
  (void)txn.Commit();
  if (!scanned.ok()) {
    violations.push_back("final audit scan failed: " +
                         scanned.status().ToString());
    return violations;
  }
  if (duplicates > 0) {
    violations.push_back("exactly-once violated: " +
                         std::to_string(duplicates) +
                         " keys returned more than once by one scan");
  }
  for (const auto& [key, seq] : truth.committed) {
    if (truth.fuzzy.count(key) > 0) continue;
    auto it = seen.find(key);
    if (it == seen.end()) {
      violations.push_back("lost write: committed key " + std::to_string(key) +
                           " (seq " + std::to_string(seq) +
                           ") missing from the final scan");
      continue;
    }
    Key pk = 0;
    uint64_t pseq = 0;
    if (!DecodePayload(it->second, &pk, &pseq)) {
      violations.push_back("corrupt payload on key " + std::to_string(key));
    } else if (pk != key || pseq != seq) {
      violations.push_back("wrong value: key " + std::to_string(key) +
                           " expected seq " + std::to_string(seq) +
                           " but holds (key=" + std::to_string(pk) +
                           ", seq=" + std::to_string(pseq) + ")");
    }
  }
  for (const auto& [key, payload] : seen) {
    Key pk = 0;
    uint64_t pseq = 0;
    if (DecodePayload(payload, &pk, &pseq) &&
        truth.aborted.count({key, pseq}) > 0) {
      violations.push_back("aborted write resurrected: key " +
                           std::to_string(key) + " holds rolled-back seq " +
                           std::to_string(pseq));
    }
    if (truth.committed.count(key) == 0 && truth.fuzzy.count(key) == 0) {
      violations.push_back("phantom record: key " + std::to_string(key) +
                           " (seq " + std::to_string(pseq) +
                           ") exists but was never committed (or was "
                           "deleted)");
    }
  }
  return violations;
}

}  // namespace wattdb::chaos
