#ifndef WATTDB_CHAOS_HISTORY_H_
#define WATTDB_CHAOS_HISTORY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace wattdb::chaos {

/// What one recorded client operation did. kTxn entries are whole-
/// transaction markers from workloads whose transactions are not register
/// ops (TPC-C); the linearizability checker skips them, but they land in
/// history dumps so a violation's surroundings are visible.
enum class OpKind { kRead, kWrite, kDelete, kTxn };

/// How the operation ended, from the *client's* point of view — the only
/// view a history checker may trust.
enum class OpOutcome {
  /// The client got a definite success: a committed write took effect
  /// exactly once, a committed read's observation is authoritative.
  kOk,
  /// Definitely no effect: the op (or its transaction) was refused before
  /// reaching any record — admission shed, unavailable route — or was
  /// deliberately rolled back. Its value must never be observed.
  kFailed,
  /// The commit's fate is unknown (the fault may have landed after the
  /// commit point). The op may or may not have taken effect, and no
  /// response-time ordering can be asserted for it.
  kIndeterminate,
};

/// One operation of a concurrent history: invocation/response in simulated
/// time, the register op it performed, and its outcome. Payloads of the
/// history workload encode (key, seq), so `seq` identifies the value: for
/// writes the value written, for reads the value observed (0 = absent).
struct HistoryOp {
  uint64_t id = 0;
  int client = 0;
  OpKind kind = OpKind::kRead;
  Key key = 0;
  uint64_t seq = 0;
  OpOutcome outcome = OpOutcome::kOk;
  SimTime invoked_at = 0;
  /// For kIndeterminate ops this is when the client gave up, not when the
  /// effect (if any) landed — the checker treats their response as infinite.
  SimTime responded_at = 0;
  /// The read was served by a bounded-staleness warm replica, not the
  /// authoritative owner: it gets the relaxed visibility check instead of
  /// the strict register check.
  bool from_replica = false;
};

/// Collects the per-operation history of one scenario. Plain append-only
/// storage; ids are assigned in record order, which on the deterministic
/// event loop makes the whole history replayable bit-identically.
class HistoryRecorder {
 public:
  /// Append `op` (its id is assigned here) and return the id.
  uint64_t Record(HistoryOp op);

  /// Declare that `key` held the value `seq` before the recorded window
  /// opened (the workload's bulk load). Checked histories start from this
  /// state instead of from an empty register.
  void RecordInitial(Key key, uint64_t seq) { initial_[key] = seq; }

  const std::vector<HistoryOp>& ops() const { return ops_; }
  const std::map<Key, uint64_t>& initial() const { return initial_; }
  size_t size() const { return ops_.size(); }

 private:
  uint64_t next_id_ = 1;
  std::vector<HistoryOp> ops_;
  std::map<Key, uint64_t> initial_;
};

/// One linearizability (or replica-visibility) violation: the named
/// anomaly and the minimal failing sub-history that exhibits it — the
/// offending key's ops truncated at the earliest cut time where the search
/// already fails, so a report is diagnosable without replaying the seed.
struct HistoryViolation {
  std::string anomaly;
  Key key = 0;
  std::vector<HistoryOp> sub_history;
};

/// Outcome of checking one recorded history.
struct HistoryCheckResult {
  std::vector<HistoryViolation> violations;
  int keys_checked = 0;
  /// Keys whose Wing–Gong search exhausted its state budget; reported, not
  /// failed — a budget miss is a cost problem, never evidence of a bug.
  int keys_over_budget = 0;
  int64_t ops_checked = 0;
};

/// Check `recorder`'s history for per-key register linearizability
/// (Wing–Gong style search; per-key independence keeps the cost
/// tractable). Ops with OpOutcome::kFailed must never be observed; ops
/// with kIndeterminate may take effect or not; reads served by warm
/// replicas are held to the relaxed bounded-staleness visibility rules
/// (definite anomalies only) instead of the strict register semantics.
HistoryCheckResult CheckHistory(const HistoryRecorder& recorder);

/// One history op as a JSON object (for violation reports).
std::string ToJson(const HistoryOp& op);

/// A violation with its minimal failing sub-history as one JSON object.
std::string ToJson(const HistoryViolation& v);

}  // namespace wattdb::chaos

#endif  // WATTDB_CHAOS_HISTORY_H_
