// JSON rendering of scenario results for the chaos_soak report: no
// external JSON dependency, just enough escaping for the strings the
// harness itself produces.

#include <iomanip>
#include <sstream>

#include "chaos/chaos.h"

namespace wattdb::chaos {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream esc;
          esc << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c);
          out += esc.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatSimTime(SimTime t) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3)
     << static_cast<double>(t) / static_cast<double>(kUsPerSec) << "s";
  return os.str();
}

namespace {

std::string JsonStringArray(const std::vector<std::string>& items) {
  std::string out = "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(items[i]) + "\"";
  }
  return out + "]";
}

}  // namespace

std::string ToJson(const ScenarioResult& r) {
  std::ostringstream os;
  os << "{\"seed\":" << r.seed
     << ",\"passed\":" << (r.passed ? "true" : "false")
     << ",\"nodes\":" << r.nodes
     << ",\"spare_nodes\":" << r.spare_nodes
     << ",\"elastic_actions\":" << r.elastic_actions
     << ",\"violations\":" << JsonStringArray(r.violations)
     << ",\"counters\":{"
     << "\"crashes_injected\":" << r.crashes_injected
     << ",\"partitions_injected\":" << r.partitions_injected
     << ",\"restarts_injected\":" << r.restarts_injected
     << ",\"nodes_declared_dead\":" << r.nodes_declared_dead
     << ",\"replicas_promoted\":" << r.replicas_promoted
     << ",\"stale_route_refusals\":" << r.stale_route_refusals
     << ",\"committed_txns\":" << r.committed_txns
     << ",\"aborted_txns\":" << r.aborted_txns
     << ",\"indeterminate_txns\":" << r.indeterminate_txns
     << ",\"history_ops\":" << r.history_ops
     << ",\"history_keys_checked\":" << r.history_keys_checked
     << ",\"history_keys_over_budget\":" << r.history_keys_over_budget
     << ",\"sim_end_us\":" << r.sim_end << "}"
     << ",\"fault_schedule\":" << JsonStringArray(r.fault_schedule);
  os << ",\"history_violations\":[";
  for (size_t i = 0; i < r.history_violations.size(); ++i) {
    if (i > 0) os << ",";
    os << ToJson(r.history_violations[i]);
  }
  os << "]";
  os << ",\"timeline\":" << JsonStringArray(r.timeline) << "}";
  return os.str();
}

}  // namespace wattdb::chaos
