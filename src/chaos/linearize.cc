// Per-key register linearizability checking of recorded histories
// (Wing & Gong 1993 style state-space search, with the memoization of
// Lowe 2017). The register semantics: a committed write sets the value, a
// committed delete clears it, a committed read must observe the current
// value at some instant within its [invocation, response] window.
//
// Per-key independence decomposition keeps the search tractable: register
// ops on different keys commute, so a history is linearizable iff each
// key's sub-history is — and each sub-history is small even when the full
// history has tens of thousands of ops.
//
// Outcome handling follows the client's knowledge: kFailed ops definitely
// had no effect (observing their value is a violation on its own),
// kIndeterminate ops may or may not have taken effect (infinite response
// time, and the search may omit them entirely), and reads served by
// bounded-staleness warm replicas are exempt from the strict register
// check — they get the relaxed visibility rules in CheckReplicaRead,
// which flags only *definite* anomalies so a legitimately stale (but
// bounded) replica read never fails the scenario.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "chaos/history.h"

namespace wattdb::chaos {

namespace {

constexpr SimTime kInfTime = std::numeric_limits<SimTime>::max();

/// One op prepared for the search: response lifted to infinity for
/// indeterminate outcomes, plus whether the search may omit it.
struct SearchOp {
  const HistoryOp* op = nullptr;
  SimTime inv = 0;
  SimTime resp = kInfTime;
  bool optional = false;  ///< kIndeterminate: may never have taken effect.
};

/// Search state: which ops are settled (linearized or omitted) and the
/// register value they produced. Two interleavings reaching the same
/// (settled-set, value) pair are equivalent for everything that follows,
/// so the pair is the memo key.
struct SearchState {
  std::vector<uint64_t> mask;
  uint64_t value = 0;

  friend bool operator==(const SearchState& a, const SearchState& b) {
    return a.value == b.value && a.mask == b.mask;
  }
};

struct SearchStateHash {
  size_t operator()(const SearchState& s) const {
    uint64_t h = s.value * 0x9e3779b97f4a7c15ull;
    for (uint64_t w : s.mask) {
      h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return static_cast<size_t>(h);
  }
};

bool MaskGet(const std::vector<uint64_t>& m, size_t i) {
  return (m[i / 64] >> (i % 64)) & 1;
}

void MaskSet(std::vector<uint64_t>* m, size_t i) {
  (*m)[i / 64] |= uint64_t{1} << (i % 64);
}

/// Effect of settling `op` on the register (writes install their seq,
/// deletes clear, reads leave it).
uint64_t Apply(const SearchOp& s, uint64_t value) {
  switch (s.op->kind) {
    case OpKind::kWrite:
      return s.op->seq;
    case OpKind::kDelete:
      return 0;
    default:
      return value;
  }
}

/// Iterative-deepening-free DFS over linearization orders with state
/// memoization. Returns true when a valid linearization exists; sets
/// `over_budget` (and returns true, i.e. no violation claimed) when the
/// state budget is exhausted first.
bool Linearizable(const std::vector<SearchOp>& ops, uint64_t initial,
                  int64_t* budget, bool* over_budget) {
  const size_t n = ops.size();
  if (n == 0) return true;
  const size_t words = (n + 63) / 64;

  std::unordered_set<SearchState, SearchStateHash> seen;
  struct Frame {
    SearchState state;
    size_t settled = 0;
  };
  std::vector<Frame> stack;
  stack.push_back({SearchState{std::vector<uint64_t>(words, 0), initial}, 0});

  while (!stack.empty()) {
    if (--(*budget) <= 0) {
      *over_budget = true;
      return true;
    }
    Frame f = std::move(stack.back());
    stack.pop_back();
    if (f.settled == n) return true;
    if (!seen.insert(f.state).second) continue;

    // Earliest response among unsettled ops: any op invoked after it
    // strictly follows an unsettled op in real time and cannot go next.
    SimTime frontier = kInfTime;
    for (size_t i = 0; i < n; ++i) {
      if (!MaskGet(f.state.mask, i)) frontier = std::min(frontier, ops[i].resp);
    }
    for (size_t i = 0; i < n; ++i) {
      if (MaskGet(f.state.mask, i)) continue;
      if (ops[i].inv > frontier) continue;  // Some unsettled op precedes it.
      const SearchOp& s = ops[i];
      if (s.op->kind == OpKind::kRead) {
        if (s.op->seq == f.state.value) {
          Frame next = f;
          MaskSet(&next.state.mask, i);
          next.settled = f.settled + 1;
          stack.push_back(std::move(next));
        }
      } else {
        Frame next = f;
        MaskSet(&next.state.mask, i);
        next.state.value = Apply(s, f.state.value);
        next.settled = f.settled + 1;
        stack.push_back(std::move(next));
      }
      if (s.optional) {
        // The indeterminate op never took effect: settle it with no change.
        Frame skip = f;
        MaskSet(&skip.state.mask, i);
        skip.settled = f.settled + 1;
        stack.push_back(std::move(skip));
      }
    }
  }
  return false;
}

/// The op completing at cut time `t` — the op a minimal failing truncation
/// newly exposed (every earlier cut passed).
const HistoryOp* OpRespondingAt(const std::vector<SearchOp>& ops, SimTime t) {
  for (const SearchOp& s : ops) {
    if (s.resp == t) return s.op;
  }
  return nullptr;
}

/// Human name for the anomaly the failing (sub-)history exhibits, keyed on
/// the offending op. Falls back to the generic statement when the shape is
/// not one of the recognizable read anomalies.
std::string NameAnomaly(const std::vector<SearchOp>& ops,
                        const HistoryOp* offender, Key key) {
  const std::string where = "key " + std::to_string(key);
  if (offender == nullptr || offender->kind != OpKind::kRead) {
    return "non-linearizable history on " + where +
           " (no valid linearization of its committed ops exists)";
  }
  // Writes that *definitely* preceded the offending read (responded before
  // it was invoked) — what the read was at minimum required to reflect.
  const SearchOp* latest_prior_write = nullptr;
  for (const SearchOp& s : ops) {
    if (s.op->kind != OpKind::kWrite && s.op->kind != OpKind::kDelete) {
      continue;
    }
    if (s.optional || s.resp >= offender->invoked_at) continue;
    if (latest_prior_write == nullptr || s.resp > latest_prior_write->resp) {
      latest_prior_write = &s;
    }
  }
  const std::string read_desc =
      "read (op " + std::to_string(offender->id) + ", t=[" +
      std::to_string(offender->invoked_at) + "," +
      std::to_string(offender->responded_at) + "]us)";
  if (latest_prior_write != nullptr &&
      latest_prior_write->op->kind == OpKind::kWrite &&
      latest_prior_write->op->seq != offender->seq) {
    if (offender->seq == 0) {
      return "lost read on " + where + ": " + read_desc +
             " observed the key absent although seq " +
             std::to_string(latest_prior_write->op->seq) +
             " had committed before the read began";
    }
    return "stale read on " + where + ": " + read_desc + " observed seq " +
           std::to_string(offender->seq) + " although seq " +
           std::to_string(latest_prior_write->op->seq) +
           " had committed before the read began";
  }
  return "non-linearizable read on " + where + ": " + read_desc +
         " observed seq " + std::to_string(offender->seq) +
         ", which no linearization of the concurrent writes can produce";
}

/// Everything the checker knows about one key.
struct KeySlice {
  std::vector<SearchOp> strict;          ///< Owner reads + effectful writes.
  std::vector<const HistoryOp*> replica_reads;
  std::set<uint64_t> failed_seqs;        ///< Values that must never surface.
  std::set<uint64_t> written_seqs;       ///< ok/indeterminate write values.
  std::map<uint64_t, SimTime> write_invoked;  ///< seq -> invocation time.
  SimTime first_delete_inv = kInfTime;
  bool has_initial = false;
  uint64_t initial = 0;
};

/// Definite-anomaly screen applied to *every* committed read (owner and
/// replica): values that never existed or were definitely rolled back, and
/// values from the future, are violations no staleness bound can excuse.
std::string CheckObservedValue(const KeySlice& ks, const HistoryOp& read) {
  if (read.seq == 0) return "";
  if (ks.has_initial && read.seq == ks.initial) return "";
  if (ks.failed_seqs.count(read.seq) > 0) {
    return "read observed seq " + std::to_string(read.seq) +
           " of a refused/rolled-back write on key " +
           std::to_string(read.key) + " (definitely never committed)";
  }
  auto it = ks.write_invoked.find(read.seq);
  if (it == ks.write_invoked.end()) {
    return "read observed seq " + std::to_string(read.seq) + " on key " +
           std::to_string(read.key) + " that no recorded write ever wrote";
  }
  if (it->second > read.responded_at) {
    return "read on key " + std::to_string(read.key) + " observed seq " +
           std::to_string(read.seq) +
           " before the write of that value was even invoked";
  }
  return "";
}

/// Relaxed visibility for bounded-staleness replica reads: only definite
/// anomalies fail. A replica serves a copy taken no earlier than the
/// recorded window's start, so a key present in the initial load (and
/// never deleted) can never legitimately read as absent — but observing
/// any *older committed* value is within the staleness bound's license.
std::string CheckReplicaRead(const KeySlice& ks, const HistoryOp& read) {
  const std::string bad = CheckObservedValue(ks, read);
  if (!bad.empty()) return "replica " + bad;
  if (read.seq == 0 && ks.has_initial &&
      ks.first_delete_inv > read.responded_at) {
    return "replica read on key " + std::to_string(read.key) +
           " observed the key absent although it was loaded before the "
           "window and never deleted";
  }
  return "";
}

/// Minimal failing sub-history: truncate the key's ops at successive
/// response times (ops invoked after the cut drop out; ops still pending
/// at the cut become optional, as an unfinished op may never take effect)
/// and keep the earliest cut that already fails. Sound because truncating
/// a linearizable history this way leaves it linearizable — so the first
/// failing cut pins the op that breaks it.
struct Truncation {
  std::vector<SearchOp> ops;
  SimTime cut = kInfTime;
  const HistoryOp* offender = nullptr;
};

Truncation MinimalFailingTruncation(const std::vector<SearchOp>& full,
                                    uint64_t initial, int64_t* budget,
                                    bool* over_budget) {
  std::vector<SimTime> cuts;
  for (const SearchOp& s : full) {
    if (s.resp != kInfTime) cuts.push_back(s.resp);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  for (SimTime cut : cuts) {
    std::vector<SearchOp> sub;
    for (const SearchOp& s : full) {
      if (s.inv > cut) continue;
      SearchOp t = s;
      if (s.resp > cut) {
        if (s.op->kind == OpKind::kRead) continue;  // Hadn't observed yet.
        t.resp = kInfTime;
        t.optional = true;  // Still pending at the cut: effect uncertain.
      }
      sub.push_back(t);
    }
    if (!Linearizable(sub, initial, budget, over_budget)) {
      return Truncation{std::move(sub), cut, OpRespondingAt(full, cut)};
    }
    if (*over_budget) break;
  }
  // Budget ran dry (or numeric edge): fall back to the whole key history.
  return Truncation{full, kInfTime, nullptr};
}

}  // namespace

HistoryCheckResult CheckHistory(const HistoryRecorder& recorder) {
  HistoryCheckResult result;

  // --- Per-key independence decomposition --------------------------------
  std::map<Key, KeySlice> keys;
  for (const auto& [key, seq] : recorder.initial()) {
    KeySlice& ks = keys[key];
    ks.has_initial = true;
    ks.initial = seq;
  }
  for (const HistoryOp& op : recorder.ops()) {
    if (op.kind == OpKind::kTxn) continue;  // Whole-txn markers: no register.
    KeySlice& ks = keys[op.key];
    ++result.ops_checked;
    switch (op.kind) {
      case OpKind::kWrite:
      case OpKind::kDelete: {
        if (op.outcome == OpOutcome::kFailed) {
          ks.failed_seqs.insert(op.seq);
          break;
        }
        if (op.kind == OpKind::kWrite) {
          ks.written_seqs.insert(op.seq);
          ks.write_invoked[op.seq] = op.invoked_at;
        } else {
          ks.first_delete_inv = std::min(ks.first_delete_inv, op.invoked_at);
        }
        SearchOp s;
        s.op = &op;
        s.inv = op.invoked_at;
        s.resp = op.outcome == OpOutcome::kIndeterminate ? kInfTime
                                                         : op.responded_at;
        s.optional = op.outcome == OpOutcome::kIndeterminate;
        ks.strict.push_back(s);
        break;
      }
      case OpKind::kRead: {
        if (op.outcome != OpOutcome::kOk) break;  // Observed nothing usable.
        if (op.from_replica) {
          ks.replica_reads.push_back(&op);
          break;
        }
        SearchOp s;
        s.op = &op;
        s.inv = op.invoked_at;
        s.resp = op.responded_at;
        ks.strict.push_back(s);
        break;
      }
      case OpKind::kTxn:
        break;
    }
  }

  // --- Check every key ---------------------------------------------------
  constexpr int64_t kBudgetPerKey = 400000;
  for (auto& [key, ks] : keys) {
    ++result.keys_checked;

    // Definite-anomaly screens first: they are cheap, they cover replica
    // reads the strict search never sees, and they produce the sharpest
    // anomaly names.
    bool screened = false;
    for (const SearchOp& s : ks.strict) {
      if (s.op->kind != OpKind::kRead) continue;
      const std::string bad = CheckObservedValue(ks, *s.op);
      if (!bad.empty()) {
        HistoryViolation v;
        v.anomaly = bad;
        v.key = key;
        for (const SearchOp& o : ks.strict) v.sub_history.push_back(*o.op);
        result.violations.push_back(std::move(v));
        screened = true;
        break;
      }
    }
    for (const HistoryOp* r : ks.replica_reads) {
      const std::string bad = CheckReplicaRead(ks, *r);
      if (!bad.empty()) {
        HistoryViolation v;
        v.anomaly = bad;
        v.key = key;
        v.sub_history.push_back(*r);
        for (const SearchOp& o : ks.strict) v.sub_history.push_back(*o.op);
        result.violations.push_back(std::move(v));
        break;
      }
    }
    if (screened) continue;

    // Strict Wing–Gong search over the owner-served committed ops.
    int64_t budget = kBudgetPerKey;
    bool over_budget = false;
    const uint64_t initial = ks.has_initial ? ks.initial : 0;
    if (Linearizable(ks.strict, initial, &budget, &over_budget)) {
      if (over_budget) ++result.keys_over_budget;
      continue;
    }
    Truncation min_fail =
        MinimalFailingTruncation(ks.strict, initial, &budget, &over_budget);
    HistoryViolation v;
    v.anomaly = NameAnomaly(min_fail.ops, min_fail.offender, key);
    v.key = key;
    std::vector<const HistoryOp*> subset;
    for (const SearchOp& s : min_fail.ops) subset.push_back(s.op);
    std::sort(subset.begin(), subset.end(),
              [](const HistoryOp* a, const HistoryOp* b) {
                return a->id < b->id;
              });
    for (const HistoryOp* o : subset) v.sub_history.push_back(*o);
    result.violations.push_back(std::move(v));
  }
  return result;
}

}  // namespace wattdb::chaos
