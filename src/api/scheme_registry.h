#ifndef WATTDB_API_SCHEME_REGISTRY_H_
#define WATTDB_API_SCHEME_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/master.h"
#include "common/status.h"
#include "partition/migration.h"

namespace wattdb {

/// Builds a repartitioning scheme bound to `cluster` with `config`.
using SchemeFactory =
    std::function<std::unique_ptr<cluster::Repartitioner>(
        cluster::Cluster* cluster, const partition::MigrationConfig& config)>;

/// Name -> factory registry behind DbOptions::scheme. The three paper
/// schemes ("physical", "logical", "physiological") are pre-registered;
/// downstream code adds its own with Register() — no edit to src/api needed:
///
///   SchemeRegistry::Global().Register("mine", [](auto* c, const auto& mc) {
///     return std::make_unique<MyScheme>(c, mc);
///   });
///   auto db = Db::Open(DbOptions().WithScheme("mine"));
class SchemeRegistry {
 public:
  /// The process-wide registry used by Db::Open.
  static SchemeRegistry& Global();

  /// Registers `factory` under `name`. AlreadyExists when taken.
  Status Register(const std::string& name, SchemeFactory factory);

  /// OK when `name` is registered; NotFound listing the registered names
  /// otherwise (the error Create would return, without instantiating).
  Status Validate(const std::string& name) const;

  /// Instantiates the scheme registered under `name`. NotFound (listing the
  /// registered names) when unknown.
  StatusOr<std::unique_ptr<cluster::Repartitioner>> Create(
      const std::string& name, cluster::Cluster* cluster,
      const partition::MigrationConfig& config) const;

  bool Contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  SchemeRegistry();

  std::map<std::string, SchemeFactory> factories_;
};

}  // namespace wattdb

#endif  // WATTDB_API_SCHEME_REGISTRY_H_
