#ifndef WATTDB_API_DB_H_
#define WATTDB_API_DB_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/options.h"
#include "api/session.h"
#include "cluster/cluster.h"
#include "cluster/master.h"
#include "common/logging.h"
#include "common/status.h"
#include "fault/fault_injector.h"
#include "fault/recovery_manager.h"
#include "replica/replica_manager.h"
#include "workload/client.h"
#include "workload/driver.h"
#include "workload/kv.h"
#include "workload/micro.h"
#include "workload/tpcc_loader.h"

namespace wattdb {

/// One routing-table row as seen through the facade (who serves which key
/// range) — introspection without handing out catalog::Partition pointers.
struct TableRoute {
  KeyRange range;
  PartitionId partition;
  NodeId owner;
  size_t segments = 0;
};

/// The front door of the engine: owns the simulated cluster, the loaded
/// TPC-C database, the repartitioning scheme selected by name from the
/// SchemeRegistry, and the master's elasticity controller — everything the
/// benches and examples previously wired together by hand (§3-§4 of the
/// paper as one handle).
///
///   auto db = Db::Open(DbOptions().WithNodes(4).WithActiveNodes(2));
///   Session s = (*db)->OpenSession();
///   auto rec = s.Get(table, key);
///
/// Data access goes through OpenSession(); elasticity through
/// TriggerRebalance()/AttachHelpers(); simulated time through RunFor().
class Db {
 public:
  /// Builds and wires the whole system. Fails (without side effects) when
  /// the scheme name is unregistered or the initial load fails.
  static StatusOr<std::unique_ptr<Db>> Open(DbOptions options);

  ~Db();
  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  // --- Data access --------------------------------------------------------
  /// A client connection; cheap, create one per simulated client.
  Session OpenSession() { return Session(cluster_.get()); }

  /// Table id of a TPC-C table (requires the TPC-C load).
  TableId table(workload::TpccTable t) const {
    WATTDB_CHECK_MSG(tpcc_ != nullptr, "table() requires the TPC-C load");
    return tpcc_->table(t);
  }

  /// The routing table of `table`: key range -> partition -> owner node.
  std::vector<TableRoute> Routes(TableId table) const;

  /// Create a generic single-column KV table whose key space [0, max_key)
  /// is range-partitioned evenly across the currently active nodes. The
  /// entry point for non-TPC-C scenarios driven through Session.
  /// `segments_per_partition` > 0 pre-splits each partition's range into
  /// that many segments up front — the granularity at which the heat
  /// balancer can later move key ranges between nodes; 0 keeps the default
  /// lazy materialization (one segment grown on first insert).
  StatusOr<TableId> CreateKvTable(const std::string& name, size_t value_bytes,
                                  Key max_key,
                                  int segments_per_partition = 0);

  // --- Workload drivers ---------------------------------------------------
  /// Take ownership of any workload generator implementing WorkloadDriver
  /// (stopped on Db destruction). Call Start() on the returned driver to
  /// begin issuing queries.
  workload::WorkloadDriver& AttachWorkload(
      std::unique_ptr<workload::WorkloadDriver> driver);

  /// Attached drivers, in attach order.
  const std::vector<std::unique_ptr<workload::WorkloadDriver>>& workloads()
      const {
    return drivers_;
  }

  /// Attach a closed-loop TPC-C client pool; owned by the Db. Call Start()
  /// on the returned pool to begin issuing queries.
  workload::ClientPool& AddClientPool(const workload::ClientPoolConfig& cfg);

  /// Attach a Fig. 3-style read/update micro-workload; owned by the Db.
  workload::MicroWorkload& AddMicroWorkload(const workload::MicroConfig& cfg);

  /// Create the driver's KV table (named `<name>-<n>` per attach), load its
  /// key space, and attach a YCSB-style driver running on the batched
  /// Session API. Works with or without the TPC-C load.
  StatusOr<workload::KvWorkload*> AddKvWorkload(const workload::KvConfig& cfg);

  // --- Elasticity ---------------------------------------------------------
  /// Move `fraction` of the data onto `targets` (booting them first if
  /// needed); `done` fires when every move completed. Runs online.
  Status TriggerRebalance(const std::vector<NodeId>& targets, double fraction,
                          std::function<void()> done = nullptr);

  /// TriggerRebalance, then drive the simulation until the move completes.
  /// Returns the simulated duration of the move; TimedOut when it is still
  /// running after `max_wait`.
  StatusOr<SimTime> RebalanceAndWait(const std::vector<NodeId>& targets,
                                     double fraction,
                                     SimTime max_wait = 900 * kUsPerSec);

  /// Fig. 8: power up helper nodes for log shipping and remote buffers.
  Status AttachHelpers(const std::vector<NodeId>& helpers,
                       const std::vector<NodeId>& assisted,
                       size_t remote_buffer_pages);
  Status DetachHelpers();

  // --- Faults & recovery --------------------------------------------------
  /// Abrupt failure of `node`: its volatile state is lost (buffered pages
  /// and unflushed post-checkpoint inserts), routed operations on its data
  /// return Unavailable, queued migration tasks touching it are abandoned,
  /// and in-flight copies abort. Never the master (InvalidArgument).
  Status CrashNode(NodeId node);

  /// Boot a crashed (or powered-off) node and redo-replay its log tails
  /// (LogManager::TailAfter + Node::RedoInto, honoring kCheckpoint
  /// records). `on_recovered` fires on the event loop at the simulated
  /// time recovery completes.
  Status RestartNode(NodeId node,
                     std::function<void(const fault::RecoveryReport&)>
                         on_recovered = nullptr);

  /// RestartNode, then drive the simulation until recovery completes.
  /// Returns the recovery report; TimedOut if still recovering after
  /// `max_wait`.
  StatusOr<fault::RecoveryReport> RestartNodeAndWait(
      NodeId node, SimTime max_wait = 60 * kUsPerSec);

  /// Cut the master<->node control link: the failure detector stops seeing
  /// `node`'s heartbeats while its data path keeps serving — the master
  /// will declare it dead and fail its replicated ranges over, and epoch
  /// fencing keeps the still-alive owner from serving a moved route.
  /// Never the master (InvalidArgument).
  Status PartitionNode(NodeId node);

  /// Restore the control link and reconcile the node's stale copies (see
  /// cluster::Cluster::HealPartition).
  Status HealPartition(NodeId node);

  /// The crash scheduler (armed from DbOptions::WithFaultPlan; scenarios
  /// can Schedule more, e.g. "crash the target at 50% progress").
  fault::FaultInjector& fault() { return *fault_; }
  /// Crash/redo bookkeeping: per-node down state and recovery reports.
  fault::RecoveryManager& recovery() { return *recovery_; }

  // --- Warm replicas -------------------------------------------------------
  /// The warm-standby subsystem (always constructed; idle unless
  /// WithReplicaPolicy enabled it). Observers for replica state, counters,
  /// and the replication network tax.
  replica::ReplicaManager& replicas() { return *replicas_; }

  // --- Self-healing observers ---------------------------------------------
  /// Timeline of the master control loop's decisions (scale events, failure
  /// detections, auto-restarts, drains, helper failovers) in simulated-time
  /// order. Populated only while the control loop runs (WithMasterLoop).
  const std::vector<cluster::ControlEvent>& control_events() const {
    return master_->control_events();
  }
  /// Subscribe to control events as they are emitted (benches use this to
  /// annotate throughput timelines with detection/recovery marks).
  void SetControlEventListener(
      std::function<void(const cluster::ControlEvent&)> listener) {
    master_->set_control_event_listener(std::move(listener));
  }

  // --- Simulated time -----------------------------------------------------
  SimTime Now() const { return cluster_->Now(); }
  void RunUntil(SimTime until) { cluster_->RunUntil(until); }
  void RunFor(SimTime duration) { cluster_->RunUntil(Now() + duration); }
  /// Schedule work on the simulation's event loop (phase changes, surges).
  sim::EventQueue& events() { return cluster_->events(); }

  // --- Power / energy (§3.1) ----------------------------------------------
  int ActiveNodeCount() const { return cluster_->ActiveNodeCount(); }
  double WattsIn(SimTime from, SimTime to) const {
    return cluster_->WattsIn(from, to);
  }
  hw::EnergyMeter& energy() { return cluster_->energy(); }

  // --- Components (read-mostly escape hatches) ----------------------------
  cluster::Cluster& cluster() { return *cluster_; }
  const cluster::Cluster& cluster() const { return *cluster_; }
  /// Per-node admission queues (src/admission): depth gauges and per-class
  /// admitted/shed counters. Tracking is always on; shedding only under an
  /// enabled WithAdmissionPolicy.
  admission::AdmissionController& admission() {
    return cluster_->admission();
  }
  cluster::Master& master() { return *master_; }
  cluster::Monitor& monitor() { return master_->monitor(); }
  cluster::LoadForecaster& forecaster() { return master_->forecaster(); }
  cluster::Repartitioner& scheme() { return *scheme_; }
  /// Loaded TPC-C database handle (null without the TPC-C load).
  workload::TpccDatabase* tpcc() { return tpcc_.get(); }
  const DbOptions& options() const { return options_; }

 private:
  explicit Db(DbOptions options);

  DbOptions options_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<workload::TpccDatabase> tpcc_;
  std::unique_ptr<cluster::Repartitioner> scheme_;
  std::unique_ptr<cluster::Master> master_;
  std::unique_ptr<fault::RecoveryManager> recovery_;
  std::unique_ptr<fault::FaultInjector> fault_;
  std::unique_ptr<replica::ReplicaManager> replicas_;
  /// All attached workload generators, owned through the common interface.
  std::vector<std::unique_ptr<workload::WorkloadDriver>> drivers_;
};

}  // namespace wattdb

#endif  // WATTDB_API_DB_H_
