#ifndef WATTDB_API_OPTIONS_H_
#define WATTDB_API_OPTIONS_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/master.h"
#include "fault/fault_injector.h"
#include "partition/migration.h"
#include "workload/tpcc_loader.h"

namespace wattdb {

/// Everything needed to open a wattdb::Db, with builder-style setters so a
/// scenario reads as one chained expression:
///
///   auto db = Db::Open(DbOptions()
///                          .WithNodes(10).WithActiveNodes(2)
///                          .WithWarehouses(8).WithFill(0.5)
///                          .WithHomeNodes({NodeId(0), NodeId(1)})
///                          .WithScheme("physiological"));
///
/// The sub-configs stay public: anything without a dedicated setter is
/// reachable as e.g. `options.master.cpu_upper = 0.1`.
struct DbOptions {
  /// Hardware/topology of the simulated cluster (§3.1-§3.2).
  cluster::ClusterConfig cluster;
  /// TPC-C data initially loaded (set `load_tpcc = false` for an empty db).
  workload::TpccLoadConfig load;
  /// Knobs of the repartitioning scheme selected by `scheme`.
  partition::MigrationConfig migration;
  /// Thresholds of the master's elasticity control loop (§3.4).
  cluster::MasterPolicy master;

  /// Repartitioning scheme, resolved through SchemeRegistry::Global().
  std::string scheme = "physiological";

  /// Load the TPC-C database during Open().
  bool load_tpcc = true;
  /// Start the master's periodic scale-out/in control loop (§3.4).
  bool start_master = false;
  /// Start periodic power/metric sampling (energy metering needs this).
  bool start_sampling = true;
  /// Periodic version-store GC (Fig. 3 MVCC runs turn it off).
  bool auto_vacuum = true;
  /// Restrict rebalancing to one TPC-C table; resolved into
  /// `migration.only_table` once table ids exist after loading.
  std::optional<workload::TpccTable> migrate_only;
  /// Crash schedule armed on the fault injector at Open (validated there:
  /// nodes must exist, never the master, progress fractions in [0, 1]).
  fault::FaultPlan fault_plan;

  // --- Cluster ------------------------------------------------------------
  DbOptions& WithNodes(int n) {
    cluster.num_nodes = n;
    return *this;
  }
  DbOptions& WithActiveNodes(int n) {
    cluster.initially_active = n;
    return *this;
  }
  DbOptions& WithBufferPages(size_t pages) {
    cluster.buffer.capacity_pages = pages;
    return *this;
  }
  DbOptions& WithCc(tx::CcScheme cc) {
    cluster.cc = cc;
    return *this;
  }
  DbOptions& WithSeed(uint64_t seed) {
    cluster.seed = seed;
    load.seed = seed;
    return *this;
  }

  // --- Workload -----------------------------------------------------------
  DbOptions& WithWarehouses(int warehouses) {
    load.warehouses = warehouses;
    return *this;
  }
  DbOptions& WithFill(double fill) {
    load.fill = fill;
    return *this;
  }
  DbOptions& WithHomeNodes(std::vector<NodeId> nodes) {
    load.home_nodes = std::move(nodes);
    return *this;
  }
  DbOptions& WithoutTpccLoad() {
    load_tpcc = false;
    return *this;
  }

  // --- Partitioning / elasticity ------------------------------------------
  DbOptions& WithScheme(std::string name) {
    scheme = std::move(name);
    return *this;
  }
  DbOptions& WithCostScale(double scale) {
    migration.cost_scale = scale;
    return *this;
  }
  DbOptions& WithCopyChunkBytes(size_t bytes) {
    migration.copy_chunk_bytes = bytes;
    return *this;
  }
  DbOptions& WithLogicalBatchRecords(size_t records) {
    migration.logical_batch_records = records;
    return *this;
  }
  DbOptions& WithMigrateOnly(workload::TpccTable table) {
    migrate_only = table;
    return *this;
  }
  DbOptions& WithMasterLoop(cluster::MasterPolicy policy) {
    master = policy;
    start_master = true;
    return *this;
  }
  /// Failure detection and self-healing knobs of the control loop; implies
  /// starting the master loop (detection happens in its ticks).
  DbOptions& WithRecoveryPolicy(cluster::RecoveryPolicy policy) {
    master.recovery = policy;
    start_master = true;
    return *this;
  }
  /// Warm standbys of hot segments (read scale-out + catch-up-and-flip
  /// failover); implies starting the master loop (the ReplicaManager runs
  /// from its control ticks).
  DbOptions& WithReplicaPolicy(cluster::ReplicaPolicy policy) {
    master.replica = policy;
    start_master = true;
    return *this;
  }

  /// Intra-node parallel data plane: per-core shared-nothing worker lanes
  /// (src/lanes). Routing charges segment work to the owning lane; with
  /// `balance_lanes` the master's heat tier re-lanes hot segments within a
  /// node before considering a cross-node move. Enforcement lives in the
  /// node/routing layers, so this does not imply starting the master loop —
  /// only the balancing tier needs it.
  DbOptions& WithLanePolicy(lanes::LanePolicy policy) {
    cluster.lanes = policy;
    return *this;
  }

  /// Structure backing every segment-local primary-key index (B+-tree by
  /// default; hash trades ordered scans' speed for cheaper point probes).
  DbOptions& WithIndexKind(index::IndexKind kind) {
    cluster.index_kind = kind;
    return *this;
  }

  /// Per-node admission queue caps with priority-class shedding
  /// (src/admission). Enforcement lives in the routing layer, so this does
  /// NOT imply starting the master loop — only overload *detection* (the
  /// kOverloadDetected events and scale-out pressure) needs the loop.
  DbOptions& WithAdmissionPolicy(admission::AdmissionPolicy policy) {
    master.admission = policy;
    return *this;
  }

  // --- Faults -------------------------------------------------------------
  DbOptions& WithFaultPlan(fault::FaultPlan plan) {
    fault_plan = std::move(plan);
    return *this;
  }

  // --- Bookkeeping --------------------------------------------------------
  DbOptions& WithSampling(bool on) {
    start_sampling = on;
    return *this;
  }
  DbOptions& WithAutoVacuum(bool on) {
    auto_vacuum = on;
    return *this;
  }
};

}  // namespace wattdb

#endif  // WATTDB_API_OPTIONS_H_
