#include "api/scheme_registry.h"

#include "partition/logical.h"
#include "partition/physical.h"
#include "partition/physiological.h"

namespace wattdb {

SchemeRegistry::SchemeRegistry() {
  // The three schemes of §4 ship pre-registered; anything else arrives via
  // Register() from outside this layer.
  factories_["physical"] = [](cluster::Cluster* c,
                              const partition::MigrationConfig& mc)
      -> std::unique_ptr<cluster::Repartitioner> {
    return std::make_unique<partition::PhysicalPartitioning>(c, mc);
  };
  factories_["logical"] = [](cluster::Cluster* c,
                             const partition::MigrationConfig& mc)
      -> std::unique_ptr<cluster::Repartitioner> {
    return std::make_unique<partition::LogicalPartitioning>(c, mc);
  };
  factories_["physiological"] = [](cluster::Cluster* c,
                                   const partition::MigrationConfig& mc)
      -> std::unique_ptr<cluster::Repartitioner> {
    return std::make_unique<partition::PhysiologicalPartitioning>(c, mc);
  };
}

SchemeRegistry& SchemeRegistry::Global() {
  static SchemeRegistry* registry = new SchemeRegistry();
  return *registry;
}

Status SchemeRegistry::Register(const std::string& name,
                                SchemeFactory factory) {
  if (name.empty()) return Status::InvalidArgument("scheme name is empty");
  if (factory == nullptr) {
    return Status::InvalidArgument("scheme factory is null");
  }
  const auto [it, inserted] = factories_.emplace(name, std::move(factory));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("scheme '" + name + "' already registered");
  }
  return Status::OK();
}

Status SchemeRegistry::Validate(const std::string& name) const {
  if (factories_.count(name) != 0) return Status::OK();
  std::string known;
  for (const auto& [n, f] : factories_) {
    (void)f;
    if (!known.empty()) known += ", ";
    known += n;
  }
  return Status::NotFound("unknown partitioning scheme '" + name +
                          "' (registered: " + known + ")");
}

StatusOr<std::unique_ptr<cluster::Repartitioner>> SchemeRegistry::Create(
    const std::string& name, cluster::Cluster* cluster,
    const partition::MigrationConfig& config) const {
  WATTDB_RETURN_IF_ERROR(Validate(name));
  std::unique_ptr<cluster::Repartitioner> scheme =
      factories_.at(name)(cluster, config);
  if (scheme == nullptr) {
    return Status::Internal("factory for scheme '" + name +
                            "' returned null");
  }
  return scheme;
}

bool SchemeRegistry::Contains(const std::string& name) const {
  return factories_.count(name) != 0;
}

std::vector<std::string> SchemeRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    (void)factory;
    out.push_back(name);
  }
  return out;
}

}  // namespace wattdb
