#include "api/db.h"

#include <utility>

#include "api/scheme_registry.h"
#include "common/logging.h"

namespace wattdb {

Db::Db(DbOptions options) : options_(std::move(options)) {}

StatusOr<std::unique_ptr<Db>> Db::Open(DbOptions options) {
  // Validate the scheme name before standing anything up.
  WATTDB_RETURN_IF_ERROR(SchemeRegistry::Global().Validate(options.scheme));
  if (options.load_tpcc && options.load.home_nodes.empty()) {
    return Status::InvalidArgument("TPC-C load needs at least one home node");
  }

  std::unique_ptr<Db> db(new Db(std::move(options)));
  const DbOptions& opts = db->options_;

  db->cluster_ = std::make_unique<cluster::Cluster>(opts.cluster);
  db->cluster_->set_auto_vacuum(opts.auto_vacuum);

  if (opts.load_tpcc) {
    db->tpcc_ =
        std::make_unique<workload::TpccDatabase>(db->cluster_.get(), opts.load);
    WATTDB_RETURN_IF_ERROR(db->tpcc_->Load());
  }

  // Table ids exist only after the load, so the migration restriction is
  // resolved here rather than in DbOptions.
  partition::MigrationConfig migration = opts.migration;
  if (opts.migrate_only.has_value()) {
    if (db->tpcc_ == nullptr) {
      return Status::InvalidArgument(
          "WithMigrateOnly requires the TPC-C load");
    }
    migration.only_table = db->tpcc_->table(*opts.migrate_only);
  }

  WATTDB_ASSIGN_OR_RETURN(
      db->scheme_, SchemeRegistry::Global().Create(
                       opts.scheme, db->cluster_.get(), migration));

  db->master_ = std::make_unique<cluster::Master>(
      db->cluster_.get(), db->scheme_.get(), opts.master);

  if (opts.start_sampling) db->cluster_->StartSampling(nullptr);
  if (opts.start_master) db->master_->Start();

  return db;
}

Db::~Db() {
  for (auto& pool : pools_) pool->Stop();
  for (auto& micro : micro_workloads_) micro->Stop();
  if (master_ != nullptr) master_->Stop();
  if (cluster_ != nullptr) cluster_->StopSampling();
}

std::vector<TableRoute> Db::Routes(TableId table) const {
  std::vector<TableRoute> out;
  for (const auto& route : cluster_->catalog().AllRoutes(table)) {
    const catalog::Partition* p = cluster_->catalog().GetPartition(route.primary);
    if (p == nullptr) continue;
    out.push_back(TableRoute{route.range, route.primary, p->owner(),
                             p->segment_count()});
  }
  return out;
}

workload::ClientPool& Db::AddClientPool(
    const workload::ClientPoolConfig& cfg) {
  WATTDB_CHECK_MSG(tpcc_ != nullptr,
                   "AddClientPool requires the TPC-C load (WithoutTpccLoad "
                   "databases drive Sessions directly)");
  pools_.push_back(std::make_unique<workload::ClientPool>(tpcc_.get(), cfg));
  return *pools_.back();
}

workload::MicroWorkload& Db::AddMicroWorkload(
    const workload::MicroConfig& cfg) {
  WATTDB_CHECK_MSG(tpcc_ != nullptr,
                   "AddMicroWorkload requires the TPC-C load");
  micro_workloads_.push_back(
      std::make_unique<workload::MicroWorkload>(tpcc_.get(), cfg));
  return *micro_workloads_.back();
}

Status Db::TriggerRebalance(const std::vector<NodeId>& targets,
                            double fraction, std::function<void()> done) {
  return master_->TriggerRebalance(targets, fraction, std::move(done));
}

StatusOr<SimTime> Db::RebalanceAndWait(const std::vector<NodeId>& targets,
                                       double fraction, SimTime max_wait) {
  // Shared, not stack-captured: on timeout the scheme still holds the done
  // callback and fires it whenever the move eventually completes.
  auto done = std::make_shared<bool>(false);
  WATTDB_RETURN_IF_ERROR(
      master_->TriggerRebalance(targets, fraction, [done]() { *done = true; }));
  const SimTime t0 = cluster_->Now();
  while (!*done && cluster_->Now() < t0 + max_wait) {
    cluster_->RunUntil(cluster_->Now() + kUsPerSec);
  }
  if (!*done) {
    return Status::TimedOut("rebalance still running after " +
                            std::to_string(ToSeconds(max_wait)) + " s");
  }
  return cluster_->Now() - t0;
}

Status Db::AttachHelpers(const std::vector<NodeId>& helpers,
                         const std::vector<NodeId>& assisted,
                         size_t remote_buffer_pages) {
  return master_->AttachHelpers(helpers, assisted, remote_buffer_pages);
}

Status Db::DetachHelpers() { return master_->DetachHelpers(); }

}  // namespace wattdb
