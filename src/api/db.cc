#include "api/db.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "api/scheme_registry.h"
#include "common/logging.h"

namespace wattdb {

Db::Db(DbOptions options) : options_(std::move(options)) {}

StatusOr<std::unique_ptr<Db>> Db::Open(DbOptions options) {
  // Validate topology and scheme before standing anything up — a bad option
  // must fail here with a message naming it, not deep in cluster wiring.
  if (options.scheme.empty()) {
    return Status::InvalidArgument(
        "scheme name is empty; pick one of SchemeRegistry::Global().Names()");
  }
  if (options.cluster.num_nodes <= 0) {
    return Status::InvalidArgument(
        "cluster needs at least one node, got WithNodes(" +
        std::to_string(options.cluster.num_nodes) + ")");
  }
  if (options.cluster.initially_active <= 0) {
    return Status::InvalidArgument(
        "at least the master must start active, got WithActiveNodes(" +
        std::to_string(options.cluster.initially_active) + ")");
  }
  if (options.cluster.initially_active > options.cluster.num_nodes) {
    return Status::InvalidArgument(
        "WithActiveNodes(" + std::to_string(options.cluster.initially_active) +
        ") exceeds WithNodes(" + std::to_string(options.cluster.num_nodes) +
        ")");
  }
  WATTDB_RETURN_IF_ERROR(SchemeRegistry::Global().Validate(options.scheme));
  // MasterPolicy misconfiguration must fail loudly here, not silently
  // disable the control loop (a check_period of 0 would spin the event
  // queue; inverted CPU bounds would flap scale decisions forever).
  const cluster::MasterPolicy& mp = options.master;
  if (mp.check_period <= 0) {
    return Status::InvalidArgument(
        "MasterPolicy.check_period must be > 0, got " +
        std::to_string(mp.check_period));
  }
  if (mp.stats_window <= 0) {
    return Status::InvalidArgument(
        "MasterPolicy.stats_window must be > 0, got " +
        std::to_string(mp.stats_window));
  }
  if (!(mp.cpu_lower < mp.cpu_upper)) {
    return Status::InvalidArgument(
        "MasterPolicy needs cpu_lower < cpu_upper, got " +
        std::to_string(mp.cpu_lower) + " vs " + std::to_string(mp.cpu_upper));
  }
  if (mp.cpu_lower < 0.0 || mp.cpu_upper > 1.0) {
    return Status::InvalidArgument(
        "MasterPolicy CPU thresholds must lie in [0, 1], got [" +
        std::to_string(mp.cpu_lower) + ", " + std::to_string(mp.cpu_upper) +
        "]");
  }
  if (mp.trigger_after < 1) {
    return Status::InvalidArgument(
        "MasterPolicy.trigger_after must be >= 1, got " +
        std::to_string(mp.trigger_after));
  }
  if (mp.use_forecast && mp.forecast_horizon <= 0) {
    return Status::InvalidArgument(
        "MasterPolicy.forecast_horizon must be > 0 when use_forecast is on");
  }
  if (mp.recovery.declare_dead_after < 1) {
    return Status::InvalidArgument(
        "RecoveryPolicy.declare_dead_after must be >= 1, got " +
        std::to_string(mp.recovery.declare_dead_after));
  }
  if (mp.recovery.restart_backoff < 0) {
    return Status::InvalidArgument(
        "RecoveryPolicy.restart_backoff must be >= 0, got " +
        std::to_string(mp.recovery.restart_backoff));
  }
  if (mp.recovery.exclude_after_crashes < 0) {
    return Status::InvalidArgument(
        "RecoveryPolicy.exclude_after_crashes must be >= 0 (0 disables), "
        "got " +
        std::to_string(mp.recovery.exclude_after_crashes));
  }
  // BalancePolicy misconfiguration is rejected even when disabled — a typo
  // must surface the first time the options are used, not when the knob is
  // eventually switched on.
  const cluster::BalancePolicy& bp = mp.balance;
  if (bp.trigger_ratio <= 1.0) {
    return Status::InvalidArgument(
        "BalancePolicy.trigger_ratio must be > 1 (hottest vs mean), got " +
        std::to_string(bp.trigger_ratio));
  }
  if (bp.ewma_alpha <= 0.0 || bp.ewma_alpha > 1.0) {
    return Status::InvalidArgument(
        "BalancePolicy.ewma_alpha must lie in (0, 1], got " +
        std::to_string(bp.ewma_alpha));
  }
  if (bp.trigger_after < 1) {
    return Status::InvalidArgument(
        "BalancePolicy.trigger_after must be >= 1, got " +
        std::to_string(bp.trigger_after));
  }
  if (bp.cooldown < 0) {
    return Status::InvalidArgument(
        "BalancePolicy.cooldown must be >= 0, got " +
        std::to_string(bp.cooldown));
  }
  if (bp.max_moves_per_round < 1) {
    return Status::InvalidArgument(
        "BalancePolicy.max_moves_per_round must be >= 1, got " +
        std::to_string(bp.max_moves_per_round));
  }
  if (bp.min_total_heat < 0.0) {
    return Status::InvalidArgument(
        "BalancePolicy.min_total_heat must be >= 0, got " +
        std::to_string(bp.min_total_heat));
  }
  // ReplicaPolicy is validated even when disabled, for the same reason as
  // BalancePolicy above.
  const cluster::ReplicaPolicy& rp = mp.replica;
  if (rp.replicas_per_segment < 1) {
    return Status::InvalidArgument(
        "ReplicaPolicy.replicas_per_segment must be >= 1, got " +
        std::to_string(rp.replicas_per_segment));
  }
  if (rp.heat_threshold < 0.0) {
    return Status::InvalidArgument(
        "ReplicaPolicy.heat_threshold must be >= 0, got " +
        std::to_string(rp.heat_threshold));
  }
  if (rp.max_replicated_segments < 1) {
    return Status::InvalidArgument(
        "ReplicaPolicy.max_replicated_segments must be >= 1, got " +
        std::to_string(rp.max_replicated_segments));
  }
  if (rp.max_lag_records < 0) {
    return Status::InvalidArgument(
        "ReplicaPolicy.max_lag_records must be >= 0, got " +
        std::to_string(rp.max_lag_records));
  }
  if (rp.drop_cold_after < 0) {
    return Status::InvalidArgument(
        "ReplicaPolicy.drop_cold_after must be >= 0, got " +
        std::to_string(rp.drop_cold_after));
  }
  // AdmissionPolicy is validated even when disabled, for the same reason as
  // BalancePolicy above.
  const admission::AdmissionPolicy& ap = mp.admission;
  if (ap.max_queue_ops < 1) {
    return Status::InvalidArgument(
        "AdmissionPolicy.max_queue_ops must be >= 1, got " +
        std::to_string(ap.max_queue_ops));
  }
  if (ap.batch_share <= 0.0 || ap.batch_share > 1.0) {
    return Status::InvalidArgument(
        "AdmissionPolicy.batch_share must lie in (0, 1], got " +
        std::to_string(ap.batch_share));
  }
  if (ap.overload_ratio <= 0.0 || ap.overload_ratio > 1.0) {
    return Status::InvalidArgument(
        "AdmissionPolicy.overload_ratio must lie in (0, 1], got " +
        std::to_string(ap.overload_ratio));
  }
  if (ap.overload_trigger_after < 1) {
    return Status::InvalidArgument(
        "AdmissionPolicy.overload_trigger_after must be >= 1, got " +
        std::to_string(ap.overload_trigger_after));
  }
  // LanePolicy is validated even when disabled, for the same reason as
  // BalancePolicy above.
  const lanes::LanePolicy& lp = options.cluster.lanes;
  if (lp.lanes_per_node < 1) {
    return Status::InvalidArgument(
        "LanePolicy.lanes_per_node must be >= 1, got " +
        std::to_string(lp.lanes_per_node));
  }
  if (lp.lane_trigger_ratio <= 1.0) {
    return Status::InvalidArgument(
        "LanePolicy.lane_trigger_ratio must be > 1, got " +
        std::to_string(lp.lane_trigger_ratio));
  }
  if (lp.max_relanes_per_round < 1) {
    return Status::InvalidArgument(
        "LanePolicy.max_relanes_per_round must be >= 1, got " +
        std::to_string(lp.max_relanes_per_round));
  }
  if (lp.relane_cooldown < 0) {
    return Status::InvalidArgument(
        "LanePolicy.relane_cooldown must be >= 0, got " +
        std::to_string(lp.relane_cooldown));
  }
  // Catch casts of arbitrary integers before the first segment is built
  // with an index it cannot construct.
  if (index::MakeRecordIndex(options.cluster.index_kind) == nullptr) {
    return Status::InvalidArgument(
        "DbOptions.cluster.index_kind is not a known IndexKind, got " +
        std::to_string(static_cast<int>(options.cluster.index_kind)));
  }
  for (const fault::FaultPlan::Crash& crash : options.fault_plan.crashes) {
    if (!crash.node.valid() ||
        crash.node.value() >= static_cast<uint32_t>(options.cluster.num_nodes)) {
      return Status::InvalidArgument(
          "fault plan crashes node " + std::to_string(crash.node.value()) +
          " outside the cluster of " +
          std::to_string(options.cluster.num_nodes) + " nodes");
    }
    if (crash.node.value() == 0) {
      return Status::InvalidArgument(
          "fault plan cannot crash the master (node 0)");
    }
    // -1 is the "not a progress trigger" sentinel; anything else must be a
    // real fraction, or a typo'd trigger would degrade to a crash at t=0.
    if (crash.at_migration_progress != -1.0 &&
        (crash.at_migration_progress < 0.0 ||
         crash.at_migration_progress > 1.0)) {
      return Status::InvalidArgument(
          "fault plan migration-progress trigger must be in [0, 1], got " +
          std::to_string(crash.at_migration_progress));
    }
    if (crash.at_replica_progress != -1.0 &&
        (crash.at_replica_progress < 0.0 ||
         crash.at_replica_progress > 1.0)) {
      return Status::InvalidArgument(
          "fault plan replica-progress trigger must be in [0, 1], got " +
          std::to_string(crash.at_replica_progress));
    }
  }
  for (const fault::FaultPlan::NetSplit& split : options.fault_plan.splits) {
    if (!split.node.valid() ||
        split.node.value() >= static_cast<uint32_t>(options.cluster.num_nodes)) {
      return Status::InvalidArgument(
          "fault plan partitions node " + std::to_string(split.node.value()) +
          " outside the cluster of " +
          std::to_string(options.cluster.num_nodes) + " nodes");
    }
    if (split.node.value() == 0) {
      return Status::InvalidArgument(
          "fault plan cannot partition the master (node 0) from itself");
    }
  }
  if (options.load_tpcc && options.load.home_nodes.empty()) {
    return Status::InvalidArgument("TPC-C load needs at least one home node");
  }
  for (const NodeId home : options.load.home_nodes) {
    if (options.load_tpcc &&
        (!home.valid() ||
         home.value() >= static_cast<uint32_t>(options.cluster.num_nodes))) {
      return Status::InvalidArgument(
          "TPC-C home node " + std::to_string(home.value()) +
          " is outside the cluster of " +
          std::to_string(options.cluster.num_nodes) + " nodes");
    }
  }

  std::unique_ptr<Db> db(new Db(std::move(options)));
  const DbOptions& opts = db->options_;

  db->cluster_ = std::make_unique<cluster::Cluster>(opts.cluster);
  db->cluster_->set_auto_vacuum(opts.auto_vacuum);
  // The routing layer enforces the queue caps; the master only watches the
  // resulting depths for sustained overload. Installed before any load so
  // even the TPC-C loader's ops are tracked (as system txns they are never
  // refused).
  db->cluster_->admission().set_policy(opts.master.admission);

  if (opts.load_tpcc) {
    db->tpcc_ =
        std::make_unique<workload::TpccDatabase>(db->cluster_.get(), opts.load);
    WATTDB_RETURN_IF_ERROR(db->tpcc_->Load());
  }

  // Table ids exist only after the load, so the migration restriction is
  // resolved here rather than in DbOptions.
  partition::MigrationConfig migration = opts.migration;
  if (opts.migrate_only.has_value()) {
    if (db->tpcc_ == nullptr) {
      return Status::InvalidArgument(
          "WithMigrateOnly requires the TPC-C load");
    }
    migration.only_table = db->tpcc_->table(*opts.migrate_only);
  }

  WATTDB_ASSIGN_OR_RETURN(
      db->scheme_, SchemeRegistry::Global().Create(
                       opts.scheme, db->cluster_.get(), migration));

  db->master_ = std::make_unique<cluster::Master>(
      db->cluster_.get(), db->scheme_.get(), opts.master);

  db->recovery_ = std::make_unique<fault::RecoveryManager>(db->cluster_.get(),
                                                           db->scheme_.get());
  db->fault_ = std::make_unique<fault::FaultInjector>(
      db->cluster_.get(), db->recovery_.get(), db->scheme_.get());
  if (!opts.fault_plan.empty()) db->fault_->Arm(opts.fault_plan);

  // Close the self-healing loop: the master's heartbeat detector issues
  // restarts through the recovery manager (boot + redo) without learning
  // the fault subsystem's types.
  db->master_->SetRecoveryHooks(
      [rm = db->recovery_.get()](
          NodeId node, std::function<void(const std::string&)> on_recovered) {
        return rm->Restart(
            node, [cb = std::move(on_recovered)](
                      const fault::RecoveryReport& report) {
              if (!cb) return;
              cb("redo " + std::to_string(report.redo_us / 1000.0) + " ms, " +
                 std::to_string(report.records_replayed) +
                 " record(s) replayed, " +
                 std::to_string(report.routes_restored) +
                 " route(s) restored");
            });
      },
      [rm = db->recovery_.get()](NodeId node) { return rm->IsDown(node); });

  // Warm-standby subsystem: built unconditionally (its observers are part
  // of the facade), driven from the master's control ticks only when the
  // policy enables it. The hooks keep the master ignorant of replica types,
  // mirroring the recovery wiring above.
  db->replicas_ = std::make_unique<replica::ReplicaManager>(
      db->cluster_.get(), &db->master_->monitor(), opts.master.replica);
  db->replicas_->SetEventSink(
      [m = db->master_.get()](cluster::ControlEventType type, NodeId node,
                              std::string detail) {
        m->EmitEvent(type, node, std::move(detail));
      });
  db->replicas_->SetHostFilter(
      [db_raw = db.get()](NodeId node) {
        cluster::Node* n = db_raw->cluster_->node(node);
        return n != nullptr && n->IsActive() && !n->IsMaster() &&
               !db_raw->master_->IsExcluded(node) &&
               !db_raw->master_->IsHelper(node) &&
               !db_raw->recovery_->IsDown(node);
      });
  db->master_->SetReplicaHooks(cluster::Master::ReplicaHooks{
      [rm = db->replicas_.get()]() { rm->Tick(); },
      [rm = db->replicas_.get()](NodeId dead) {
        return rm->PromoteReplicasOf(dead);
      },
      [rm = db->replicas_.get()](NodeId node) {
        return rm->DropReplicasOn(node);
      }});
  db->fault_->set_replica_manager(db->replicas_.get());

  if (opts.start_sampling) db->cluster_->StartSampling(nullptr);
  if (opts.start_master) db->master_->Start();

  return db;
}

Db::~Db() {
  for (auto& driver : drivers_) driver->Stop();
  if (master_ != nullptr) master_->Stop();
  if (cluster_ != nullptr) cluster_->StopSampling();
}

std::vector<TableRoute> Db::Routes(TableId table) const {
  std::vector<TableRoute> out;
  for (const auto& route : cluster_->catalog().AllRoutes(table)) {
    const catalog::Partition* p = cluster_->catalog().GetPartition(route.primary);
    if (p == nullptr) continue;
    out.push_back(TableRoute{route.range, route.primary, p->owner(),
                             p->segment_count()});
  }
  return out;
}

StatusOr<TableId> Db::CreateKvTable(const std::string& name, size_t value_bytes,
                                    Key max_key,
                                    int segments_per_partition) {
  if (name.empty()) {
    return Status::InvalidArgument("KV table needs a non-empty name");
  }
  if (value_bytes == 0 || max_key == 0) {
    return Status::InvalidArgument(
        "KV table needs value_bytes > 0 and a non-empty key space");
  }
  if (segments_per_partition < 0) {
    return Status::InvalidArgument(
        "segments_per_partition must be >= 0 (0 = lazy), got " +
        std::to_string(segments_per_partition));
  }
  if (cluster_->catalog().GetSchemaByName(name) != nullptr) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  catalog::TableSchema schema;
  schema.name = name;
  schema.columns = {
      {"value", catalog::ColumnType::kString,
       static_cast<uint32_t>(value_bytes)}};
  const TableId table = cluster_->catalog().CreateTable(std::move(schema));

  // Range-partition [0, max_key) evenly across the active nodes, one
  // partition per node; segments materialize lazily on first insert.
  const std::vector<cluster::Node*> actives = cluster_->ActiveNodes();
  const Key span = std::max<Key>(1, max_key / actives.size());
  for (size_t i = 0; i < actives.size(); ++i) {
    const Key lo = static_cast<Key>(i) * span;
    if (lo >= max_key) break;
    const Key hi = (i + 1 == actives.size()) ? max_key : std::min(max_key, lo + span);
    catalog::Partition* part =
        cluster_->catalog().CreatePartition(table, actives[i]->id());
    WATTDB_RETURN_IF_ERROR(
        cluster_->catalog().AssignRange(table, KeyRange{lo, hi}, part->id()));
    if (segments_per_partition > 0) {
      // Pre-split so the partition's range is covered by several segments;
      // a skewed workload then heats them unevenly and the balancer can
      // peel the hottest ones off onto colder nodes.
      const Key sub = std::max<Key>(
          1, (hi - lo) / static_cast<Key>(segments_per_partition));
      for (int j = 0; j < segments_per_partition; ++j) {
        const Key slo = lo + static_cast<Key>(j) * sub;
        if (slo >= hi) break;
        const Key shi = (j + 1 == segments_per_partition)
                            ? hi
                            : std::min(hi, slo + sub);
        auto seg = actives[i]->AllocateSegment(cluster_->Now(), part,
                                               KeyRange{slo, shi});
        WATTDB_RETURN_IF_ERROR(seg.status());
      }
    }
  }
  return table;
}

workload::WorkloadDriver& Db::AttachWorkload(
    std::unique_ptr<workload::WorkloadDriver> driver) {
  WATTDB_CHECK_MSG(driver != nullptr, "AttachWorkload needs a driver");
  drivers_.push_back(std::move(driver));
  return *drivers_.back();
}

workload::ClientPool& Db::AddClientPool(
    const workload::ClientPoolConfig& cfg) {
  WATTDB_CHECK_MSG(tpcc_ != nullptr,
                   "AddClientPool requires the TPC-C load (WithoutTpccLoad "
                   "databases drive Sessions directly)");
  auto pool = std::make_unique<workload::ClientPool>(tpcc_.get(), cfg);
  workload::ClientPool* raw = pool.get();
  AttachWorkload(std::move(pool));
  return *raw;
}

workload::MicroWorkload& Db::AddMicroWorkload(
    const workload::MicroConfig& cfg) {
  WATTDB_CHECK_MSG(tpcc_ != nullptr,
                   "AddMicroWorkload requires the TPC-C load");
  auto micro = std::make_unique<workload::MicroWorkload>(tpcc_.get(), cfg);
  workload::MicroWorkload* raw = micro.get();
  AttachWorkload(std::move(micro));
  return *raw;
}

StatusOr<workload::KvWorkload*> Db::AddKvWorkload(
    const workload::KvConfig& cfg) {
  if (cfg.num_clients <= 0 || cfg.batch_size <= 0 || cfg.num_keys <= 0) {
    return Status::InvalidArgument(
        "KvConfig needs positive num_clients, batch_size, and num_keys");
  }
  if (cfg.zipf_theta < 0.0 || cfg.zipf_theta >= 1.0) {
    return Status::InvalidArgument(
        "KvConfig.zipf_theta must lie in [0, 1) (Gray et al. generator), "
        "got " +
        std::to_string(cfg.zipf_theta));
  }
  if (cfg.zipf_offset < 0 || cfg.zipf_offset >= cfg.num_keys) {
    return Status::InvalidArgument(
        "KvConfig.zipf_offset must lie in [0, num_keys), got " +
        std::to_string(cfg.zipf_offset));
  }
  if (cfg.shed_retries < 0) {
    return Status::InvalidArgument(
        "KvConfig.shed_retries must be >= 0, got " +
        std::to_string(cfg.shed_retries));
  }
  if (cfg.shed_retries > 0 && cfg.retry_backoff <= 0) {
    return Status::InvalidArgument(
        "KvConfig.retry_backoff must be > 0 when shed_retries is set, got " +
        std::to_string(cfg.retry_backoff));
  }
  if (cfg.slo_us < 0) {
    return Status::InvalidArgument("KvConfig.slo_us must be >= 0, got " +
                                   std::to_string(cfg.slo_us));
  }
  // One table per attached driver so several KV workloads can coexist.
  const std::string table_name = "kv-" + std::to_string(drivers_.size());
  WATTDB_ASSIGN_OR_RETURN(
      const TableId table,
      CreateKvTable(table_name, cfg.value_bytes,
                    static_cast<Key>(cfg.num_keys),
                    cfg.segments_per_partition));
  auto kv = std::make_unique<workload::KvWorkload>(OpenSession(), table, cfg,
                                                   &cluster_->events());
  WATTDB_RETURN_IF_ERROR(kv->Load());
  workload::KvWorkload* raw = kv.get();
  AttachWorkload(std::move(kv));
  return raw;
}

Status Db::TriggerRebalance(const std::vector<NodeId>& targets,
                            double fraction, std::function<void()> done) {
  return master_->TriggerRebalance(targets, fraction, std::move(done));
}

StatusOr<SimTime> Db::RebalanceAndWait(const std::vector<NodeId>& targets,
                                       double fraction, SimTime max_wait) {
  // Shared, not stack-captured: on timeout the scheme still holds the done
  // callback and fires it whenever the move eventually completes.
  auto done = std::make_shared<bool>(false);
  WATTDB_RETURN_IF_ERROR(
      master_->TriggerRebalance(targets, fraction, [done]() { *done = true; }));
  const SimTime t0 = cluster_->Now();
  while (!*done && cluster_->Now() < t0 + max_wait) {
    cluster_->RunUntil(cluster_->Now() + kUsPerSec);
  }
  if (!*done) {
    return Status::TimedOut("rebalance still running after " +
                            std::to_string(ToSeconds(max_wait)) + " s");
  }
  return cluster_->Now() - t0;
}

Status Db::AttachHelpers(const std::vector<NodeId>& helpers,
                         const std::vector<NodeId>& assisted,
                         size_t remote_buffer_pages) {
  return master_->AttachHelpers(helpers, assisted, remote_buffer_pages);
}

Status Db::DetachHelpers() { return master_->DetachHelpers(); }

Status Db::CrashNode(NodeId node) { return recovery_->Crash(node); }

Status Db::RestartNode(
    NodeId node,
    std::function<void(const fault::RecoveryReport&)> on_recovered) {
  return recovery_->Restart(node, std::move(on_recovered));
}

StatusOr<fault::RecoveryReport> Db::RestartNodeAndWait(NodeId node,
                                                       SimTime max_wait) {
  // Shared, not stack-captured: on timeout the recovery callback is still
  // pending on the event loop and fires whenever recovery completes.
  auto report = std::make_shared<std::optional<fault::RecoveryReport>>();
  WATTDB_RETURN_IF_ERROR(recovery_->Restart(
      node, [report](const fault::RecoveryReport& r) { *report = r; }));
  const SimTime t0 = cluster_->Now();
  while (!report->has_value() && cluster_->Now() < t0 + max_wait) {
    cluster_->RunUntil(cluster_->Now() + kUsPerSec / 10);
  }
  if (!report->has_value()) {
    return Status::TimedOut("node " + std::to_string(node.value()) +
                            " still recovering after " +
                            std::to_string(ToSeconds(max_wait)) + " s");
  }
  return **report;
}

Status Db::PartitionNode(NodeId node) {
  return cluster_->PartitionNode(node);
}

Status Db::HealPartition(NodeId node) { return cluster_->HealPartition(node); }

}  // namespace wattdb
