#ifndef WATTDB_API_SESSION_H_
#define WATTDB_API_SESSION_H_

#include <functional>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/routed_ops.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/future.h"
#include "storage/record.h"

namespace wattdb {

class Db;
class Session;

/// Futures of the data plane resolve on the cluster's simulated event loop:
/// the value is computed eagerly, continuations fire in sim-time order when
/// the simulation reaches the operation's completion time.
template <typename T>
using Future = sim::Future<T>;

/// One key->payload pair of a batched write (re-exported from the routing
/// layer so callers need only the api headers).
using KeyValue = cluster::KeyValue;

/// Result of a batched read: per-key records parallel to the key list, the
/// batch's hop accounting, and the txn-private sim time it finished at.
struct MultiGetResult {
  std::vector<StatusOr<storage::Record>> records;
  cluster::BatchStats stats;
  SimTime completed_at = 0;
  /// Elapsed sim time of the autocommit wrapper (0 for in-txn batches).
  SimTime latency_us = 0;

  /// Count of keys that resolved to a record.
  int64_t hits() const {
    int64_t n = 0;
    for (const auto& r : records) n += r.ok() ? 1 : 0;
    return n;
  }
};

/// Result of a batched upsert, parallel to the kv list.
struct MultiPutResult {
  std::vector<Status> statuses;
  cluster::BatchStats stats;
  SimTime completed_at = 0;
  SimTime latency_us = 0;

  /// Count of keys whose upsert succeeded.
  int64_t oks() const {
    int64_t n = 0;
    for (const auto& s : statuses) n += s.ok() ? 1 : 0;
    return n;
  }
};

/// RAII handle on one open transaction. Obtained from Session::Begin();
/// destroying an uncommitted handle aborts the transaction, so no code path
/// can leak a txn slot. All record operations run through the master's
/// routing layer with the §4.3 two-pointer retry and client-hop charging —
/// callers never see catalog::Partition. Moved-from handles stay safe to
/// call: every operation returns FailedPrecondition instead of touching the
/// stolen state.
class TxnHandle {
 public:
  TxnHandle(const TxnHandle&) = delete;
  TxnHandle& operator=(const TxnHandle&) = delete;
  TxnHandle(TxnHandle&& other) noexcept;
  TxnHandle& operator=(TxnHandle&& other) noexcept;
  ~TxnHandle();

  /// False once the transaction committed or aborted (or the handle was
  /// moved from).
  bool active() const { return txn_ != nullptr; }

  /// Point read of (table, key) under this transaction's snapshot/locks.
  StatusOr<storage::Record> Get(TableId table, Key key);

  /// Upsert: update (table, key), inserting when the key does not exist.
  Status Put(TableId table, Key key, const std::vector<uint8_t>& payload);

  /// Insert; AlreadyExists when the key is present.
  Status Insert(TableId table, Key key, const std::vector<uint8_t>& payload);

  /// Update; NotFound when the key is absent.
  Status Update(TableId table, Key key, const std::vector<uint8_t>& payload);

  /// Delete; NotFound when the key is absent.
  Status Delete(TableId table, Key key);

  /// Visit visible records with keys in `range` (may span partitions
  /// mid-migration). Returning false from `fn` stops early. Returns the
  /// number of records visited.
  StatusOr<int64_t> Scan(TableId table, const KeyRange& range,
                         const std::function<bool(const storage::Record&)>& fn);

  // --- Batched tier -------------------------------------------------------
  /// Batched point reads: keys grouped by owner node, one master<->owner
  /// round trip per owner per batch (stragglers mid-move retried per key,
  /// §4.3). `records` is parallel to `keys`.
  StatusOr<MultiGetResult> MultiGet(TableId table,
                                    const std::vector<Key>& keys);

  /// Batched upserts with the same owner-grouped hop charging.
  StatusOr<MultiPutResult> MultiPut(TableId table,
                                    const std::vector<KeyValue>& kvs);

  // --- Async tier ---------------------------------------------------------
  /// Get whose future resolves on the event loop at the operation's
  /// simulated completion time. The operation still runs under this
  /// transaction (in issue order on its private clock).
  Future<StatusOr<storage::Record>> GetAsync(TableId table, Key key);

  /// Async upsert under this transaction.
  Future<Status> PutAsync(TableId table, Key key,
                          const std::vector<uint8_t>& payload);

  /// Durably commit (commit record on the master, locks settled) and close.
  Status Commit();

  /// Roll back and close. Safe on an already-closed handle.
  void Abort();

  /// Sim time the transaction finished (valid after Commit/Abort).
  SimTime completed_at() const { return completed_at_; }
  /// Total latency of the transaction (valid after Commit/Abort).
  SimTime latency_us() const { return latency_us_; }

  /// The underlying engine transaction — escape hatch for the volcano
  /// operator plans (exec::ExecContext) that thread it through directly.
  tx::Txn* txn() { return txn_; }

 private:
  friend class Session;
  TxnHandle(cluster::Cluster* cluster, tx::Txn* txn)
      : cluster_(cluster), txn_(txn) {}

  /// Non-OK when the handle cannot run operations: FailedPrecondition for a
  /// moved-from handle, InvalidArgument for a committed/aborted one.
  Status CheckUsable() const;

  cluster::Cluster* cluster_ = nullptr;
  tx::Txn* txn_ = nullptr;
  SimTime completed_at_ = 0;
  SimTime latency_us_ = 0;
};

/// A client connection to the database. Cheap to create; hand one to each
/// simulated client. Transactions begin at the cluster's current simulated
/// time. The one-shot Get/Put/Scan/MultiGet/MultiPut helpers run an
/// autocommit transaction; the *Async helpers run one autocommit
/// transaction per operation, so independent futures resolve in sim-time
/// order, not issue order. Moved-from sessions return FailedPrecondition.
class Session {
 public:
  Session(Session&& other) noexcept : cluster_(other.cluster_) {
    other.cluster_ = nullptr;
  }
  Session& operator=(Session&& other) noexcept {
    if (this != &other) {
      cluster_ = other.cluster_;
      other.cluster_ = nullptr;
    }
    return *this;
  }

  /// Start a transaction (read_only transactions skip write locks and can
  /// read old snapshots under MVCC). `batch_priority` marks the transaction
  /// as batch-class for admission control: under overload its ops are shed
  /// (ResourceExhausted) before latency-sensitive traffic. On a moved-from
  /// session the returned handle is inert: every operation fails with
  /// FailedPrecondition.
  TxnHandle Begin(bool read_only = false, bool batch_priority = false);

  /// Autocommit point read.
  StatusOr<storage::Record> Get(TableId table, Key key);

  /// Autocommit upsert.
  Status Put(TableId table, Key key, const std::vector<uint8_t>& payload);

  /// Autocommit range scan; returns the number of records visited.
  StatusOr<int64_t> Scan(TableId table, const KeyRange& range,
                         const std::function<bool(const storage::Record&)>& fn);

  /// Autocommit batched read (read-only transaction around the batch).
  StatusOr<MultiGetResult> MultiGet(TableId table,
                                    const std::vector<Key>& keys);

  /// Autocommit batched upsert.
  StatusOr<MultiPutResult> MultiPut(TableId table,
                                    const std::vector<KeyValue>& kvs);

  /// Autocommit async read in its own transaction; the future resolves at
  /// the read's simulated completion time.
  Future<StatusOr<storage::Record>> GetAsync(TableId table, Key key);

  /// Autocommit async upsert in its own transaction.
  Future<Status> PutAsync(TableId table, Key key,
                          const std::vector<uint8_t>& payload);

 private:
  friend class Db;
  explicit Session(cluster::Cluster* cluster) : cluster_(cluster) {}

  cluster::Cluster* cluster_;
};

}  // namespace wattdb

#endif  // WATTDB_API_SESSION_H_
