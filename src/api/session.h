#ifndef WATTDB_API_SESSION_H_
#define WATTDB_API_SESSION_H_

#include <functional>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/record.h"

namespace wattdb {

class Db;
class Session;

/// RAII handle on one open transaction. Obtained from Session::Begin();
/// destroying an uncommitted handle aborts the transaction, so no code path
/// can leak a txn slot. All record operations run through the master's
/// routing layer with the §4.3 two-pointer retry and client-hop charging —
/// callers never see catalog::Partition.
class TxnHandle {
 public:
  TxnHandle(const TxnHandle&) = delete;
  TxnHandle& operator=(const TxnHandle&) = delete;
  TxnHandle(TxnHandle&& other) noexcept;
  TxnHandle& operator=(TxnHandle&& other) noexcept;
  ~TxnHandle();

  /// False once the transaction committed or aborted.
  bool active() const { return txn_ != nullptr; }

  /// Point read of (table, key) under this transaction's snapshot/locks.
  StatusOr<storage::Record> Get(TableId table, Key key);

  /// Upsert: update (table, key), inserting when the key does not exist.
  Status Put(TableId table, Key key, const std::vector<uint8_t>& payload);

  /// Insert; AlreadyExists when the key is present.
  Status Insert(TableId table, Key key, const std::vector<uint8_t>& payload);

  /// Update; NotFound when the key is absent.
  Status Update(TableId table, Key key, const std::vector<uint8_t>& payload);

  /// Delete; NotFound when the key is absent.
  Status Delete(TableId table, Key key);

  /// Visit visible records with keys in `range` (may span partitions
  /// mid-migration). Returning false from `fn` stops early. Returns the
  /// number of records visited.
  StatusOr<int64_t> Scan(TableId table, const KeyRange& range,
                         const std::function<bool(const storage::Record&)>& fn);

  /// Durably commit (commit record on the master, locks settled) and close.
  Status Commit();

  /// Roll back and close. Safe on an already-closed handle.
  void Abort();

  /// The underlying engine transaction — escape hatch for the volcano
  /// operator plans (exec::ExecContext) that thread it through directly.
  tx::Txn* txn() { return txn_; }

 private:
  friend class Session;
  TxnHandle(cluster::Cluster* cluster, tx::Txn* txn)
      : cluster_(cluster), txn_(txn) {}

  cluster::Cluster* cluster_ = nullptr;
  tx::Txn* txn_ = nullptr;
};

/// A client connection to the database. Cheap to create; hand one to each
/// simulated client. Transactions begin at the cluster's current simulated
/// time. The one-shot Get/Put/Scan helpers run an autocommit transaction.
class Session {
 public:
  Session(Session&&) noexcept = default;
  Session& operator=(Session&&) noexcept = default;

  /// Start a transaction (read_only transactions skip write locks and can
  /// read old snapshots under MVCC).
  TxnHandle Begin(bool read_only = false);

  /// Autocommit point read.
  StatusOr<storage::Record> Get(TableId table, Key key);

  /// Autocommit upsert.
  Status Put(TableId table, Key key, const std::vector<uint8_t>& payload);

  /// Autocommit range scan; returns the number of records visited.
  StatusOr<int64_t> Scan(TableId table, const KeyRange& range,
                         const std::function<bool(const storage::Record&)>& fn);

 private:
  friend class Db;
  explicit Session(cluster::Cluster* cluster) : cluster_(cluster) {}

  cluster::Cluster* cluster_;
};

}  // namespace wattdb

#endif  // WATTDB_API_SESSION_H_
