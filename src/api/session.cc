#include "api/session.h"

#include <utility>

#include "cluster/node.h"
#include "cluster/routed_ops.h"

namespace wattdb {

TxnHandle::TxnHandle(TxnHandle&& other) noexcept
    : cluster_(other.cluster_),
      txn_(other.txn_),
      completed_at_(other.completed_at_),
      latency_us_(other.latency_us_) {
  other.cluster_ = nullptr;
  other.txn_ = nullptr;
}

TxnHandle& TxnHandle::operator=(TxnHandle&& other) noexcept {
  if (this != &other) {
    Abort();
    cluster_ = other.cluster_;
    txn_ = other.txn_;
    completed_at_ = other.completed_at_;
    latency_us_ = other.latency_us_;
    other.cluster_ = nullptr;
    other.txn_ = nullptr;
  }
  return *this;
}

TxnHandle::~TxnHandle() { Abort(); }

Status TxnHandle::CheckUsable() const {
  if (cluster_ == nullptr) {
    return Status::FailedPrecondition("handle was moved from");
  }
  if (txn_ == nullptr) {
    return Status::InvalidArgument("transaction not active");
  }
  return Status::OK();
}

StatusOr<storage::Record> TxnHandle::Get(TableId table, Key key) {
  WATTDB_RETURN_IF_ERROR(CheckUsable());
  storage::Record rec;
  WATTDB_RETURN_IF_ERROR(cluster::RoutedRead(cluster_, txn_, table, key, &rec));
  return rec;
}

Status TxnHandle::Put(TableId table, Key key,
                      const std::vector<uint8_t>& payload) {
  WATTDB_RETURN_IF_ERROR(CheckUsable());
  // Single admission unit: RoutedUpsert folds the update probe and the
  // fresh-key insert into one queued op (the old Update-then-Insert pair
  // took two admission decisions for one logical Put).
  return cluster::RoutedUpsert(cluster_, txn_, table, key, payload);
}

Status TxnHandle::Insert(TableId table, Key key,
                         const std::vector<uint8_t>& payload) {
  WATTDB_RETURN_IF_ERROR(CheckUsable());
  return cluster::RoutedInsert(cluster_, txn_, table, key, payload);
}

Status TxnHandle::Update(TableId table, Key key,
                         const std::vector<uint8_t>& payload) {
  WATTDB_RETURN_IF_ERROR(CheckUsable());
  return cluster::RoutedUpdate(cluster_, txn_, table, key, payload);
}

Status TxnHandle::Delete(TableId table, Key key) {
  WATTDB_RETURN_IF_ERROR(CheckUsable());
  return cluster::RoutedDelete(cluster_, txn_, table, key);
}

StatusOr<int64_t> TxnHandle::Scan(
    TableId table, const KeyRange& range,
    const std::function<bool(const storage::Record&)>& fn) {
  WATTDB_RETURN_IF_ERROR(CheckUsable());
  int64_t visited = 0;
  WATTDB_RETURN_IF_ERROR(cluster::RoutedScan(
      cluster_, txn_, table, range, [&](const storage::Record& r) {
        ++visited;
        return fn(r);
      }));
  return visited;
}

StatusOr<MultiGetResult> TxnHandle::MultiGet(TableId table,
                                             const std::vector<Key>& keys) {
  WATTDB_RETURN_IF_ERROR(CheckUsable());
  MultiGetResult result;
  WATTDB_RETURN_IF_ERROR(cluster::RoutedMultiRead(
      cluster_, txn_, table, keys, &result.records, &result.stats));
  result.completed_at = txn_->now;
  return result;
}

StatusOr<MultiPutResult> TxnHandle::MultiPut(TableId table,
                                             const std::vector<KeyValue>& kvs) {
  WATTDB_RETURN_IF_ERROR(CheckUsable());
  MultiPutResult result;
  WATTDB_RETURN_IF_ERROR(cluster::RoutedMultiWrite(
      cluster_, txn_, table, kvs, &result.statuses, &result.stats));
  result.completed_at = txn_->now;
  return result;
}

Future<StatusOr<storage::Record>> TxnHandle::GetAsync(TableId table, Key key) {
  const Status usable = CheckUsable();
  if (!usable.ok()) {
    return Future<StatusOr<storage::Record>>::MakeReady(usable);
  }
  StatusOr<storage::Record> result = Get(table, key);
  sim::Promise<StatusOr<storage::Record>> promise(&cluster_->events());
  promise.ResolveAt(txn_->now, std::move(result));
  return promise.future();
}

Future<Status> TxnHandle::PutAsync(TableId table, Key key,
                                   const std::vector<uint8_t>& payload) {
  const Status usable = CheckUsable();
  if (!usable.ok()) return Future<Status>::MakeReady(usable);
  Status result = Put(table, key, payload);
  sim::Promise<Status> promise(&cluster_->events());
  promise.ResolveAt(txn_->now, std::move(result));
  return promise.future();
}

Status TxnHandle::Commit() {
  WATTDB_RETURN_IF_ERROR(CheckUsable());
  if (txn_->read_only) {
    // Nothing to make durable: no WAL commit record for pure readers.
    cluster_->tm().Commit(txn_);
  } else {
    cluster_->CommitTxn(cluster_->master(), txn_);
  }
  completed_at_ = txn_->now;
  latency_us_ = txn_->Elapsed();
  cluster_->tm().Release(txn_->id);
  txn_ = nullptr;
  return Status::OK();
}

void TxnHandle::Abort() {
  if (cluster_ == nullptr || txn_ == nullptr) return;
  cluster_->AbortTxn(txn_);
  completed_at_ = txn_->now;
  latency_us_ = txn_->Elapsed();
  cluster_->tm().Release(txn_->id);
  txn_ = nullptr;
}

TxnHandle Session::Begin(bool read_only, bool batch_priority) {
  if (cluster_ == nullptr) return TxnHandle(nullptr, nullptr);
  tx::Txn* txn = cluster_->BeginTxn(read_only);
  txn->batch_priority = batch_priority;
  return TxnHandle(cluster_, txn);
}

StatusOr<storage::Record> Session::Get(TableId table, Key key) {
  TxnHandle txn = Begin(/*read_only=*/true);
  StatusOr<storage::Record> rec = txn.Get(table, key);
  if (!rec.ok()) return rec;  // ~TxnHandle aborts.
  WATTDB_RETURN_IF_ERROR(txn.Commit());
  return rec;
}

Status Session::Put(TableId table, Key key,
                    const std::vector<uint8_t>& payload) {
  TxnHandle txn = Begin();
  WATTDB_RETURN_IF_ERROR(txn.Put(table, key, payload));
  return txn.Commit();
}

StatusOr<int64_t> Session::Scan(
    TableId table, const KeyRange& range,
    const std::function<bool(const storage::Record&)>& fn) {
  TxnHandle txn = Begin(/*read_only=*/true);
  StatusOr<int64_t> n = txn.Scan(table, range, fn);
  if (!n.ok()) return n;
  WATTDB_RETURN_IF_ERROR(txn.Commit());
  return n;
}

StatusOr<MultiGetResult> Session::MultiGet(TableId table,
                                           const std::vector<Key>& keys) {
  TxnHandle txn = Begin(/*read_only=*/true);
  StatusOr<MultiGetResult> result = txn.MultiGet(table, keys);
  if (!result.ok()) return result;
  WATTDB_RETURN_IF_ERROR(txn.Commit());
  result->completed_at = txn.completed_at();
  result->latency_us = txn.latency_us();
  return result;
}

StatusOr<MultiPutResult> Session::MultiPut(TableId table,
                                           const std::vector<KeyValue>& kvs) {
  TxnHandle txn = Begin();
  StatusOr<MultiPutResult> result = txn.MultiPut(table, kvs);
  if (!result.ok()) return result;
  WATTDB_RETURN_IF_ERROR(txn.Commit());
  result->completed_at = txn.completed_at();
  result->latency_us = txn.latency_us();
  return result;
}

Future<StatusOr<storage::Record>> Session::GetAsync(TableId table, Key key) {
  if (cluster_ == nullptr) {
    return Future<StatusOr<storage::Record>>::MakeReady(
        Status::FailedPrecondition("session was moved from"));
  }
  TxnHandle txn = Begin(/*read_only=*/true);
  StatusOr<storage::Record> rec = txn.Get(table, key);
  if (rec.ok()) {
    (void)txn.Commit();
  } else {
    txn.Abort();
  }
  sim::Promise<StatusOr<storage::Record>> promise(&cluster_->events());
  promise.ResolveAt(txn.completed_at(), std::move(rec));
  return promise.future();
}

Future<Status> Session::PutAsync(TableId table, Key key,
                                 const std::vector<uint8_t>& payload) {
  if (cluster_ == nullptr) {
    return Future<Status>::MakeReady(
        Status::FailedPrecondition("session was moved from"));
  }
  TxnHandle txn = Begin();
  Status s = txn.Put(table, key, payload);
  if (s.ok()) {
    s = txn.Commit();
  } else {
    txn.Abort();
  }
  sim::Promise<Status> promise(&cluster_->events());
  promise.ResolveAt(txn.completed_at(), std::move(s));
  return promise.future();
}

}  // namespace wattdb
