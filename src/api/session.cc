#include "api/session.h"

#include <utility>

#include "cluster/node.h"
#include "cluster/routed_ops.h"

namespace wattdb {

TxnHandle::TxnHandle(TxnHandle&& other) noexcept
    : cluster_(other.cluster_), txn_(other.txn_) {
  other.txn_ = nullptr;
}

TxnHandle& TxnHandle::operator=(TxnHandle&& other) noexcept {
  if (this != &other) {
    Abort();
    cluster_ = other.cluster_;
    txn_ = other.txn_;
    other.txn_ = nullptr;
  }
  return *this;
}

TxnHandle::~TxnHandle() { Abort(); }

StatusOr<storage::Record> TxnHandle::Get(TableId table, Key key) {
  if (!active()) return Status::InvalidArgument("transaction not active");
  storage::Record rec;
  WATTDB_RETURN_IF_ERROR(cluster::RoutedRead(cluster_, txn_, table, key, &rec));
  return rec;
}

Status TxnHandle::Put(TableId table, Key key,
                      const std::vector<uint8_t>& payload) {
  if (!active()) return Status::InvalidArgument("transaction not active");
  Status s = cluster::RoutedUpdate(cluster_, txn_, table, key, payload);
  if (s.IsNotFound()) {
    s = cluster::RoutedInsert(cluster_, txn_, table, key, payload);
  }
  return s;
}

Status TxnHandle::Insert(TableId table, Key key,
                         const std::vector<uint8_t>& payload) {
  if (!active()) return Status::InvalidArgument("transaction not active");
  return cluster::RoutedInsert(cluster_, txn_, table, key, payload);
}

Status TxnHandle::Update(TableId table, Key key,
                         const std::vector<uint8_t>& payload) {
  if (!active()) return Status::InvalidArgument("transaction not active");
  return cluster::RoutedUpdate(cluster_, txn_, table, key, payload);
}

Status TxnHandle::Delete(TableId table, Key key) {
  if (!active()) return Status::InvalidArgument("transaction not active");
  return cluster::RoutedDelete(cluster_, txn_, table, key);
}

StatusOr<int64_t> TxnHandle::Scan(
    TableId table, const KeyRange& range,
    const std::function<bool(const storage::Record&)>& fn) {
  if (!active()) return Status::InvalidArgument("transaction not active");
  int64_t visited = 0;
  WATTDB_RETURN_IF_ERROR(cluster::RoutedScan(
      cluster_, txn_, table, range, [&](const storage::Record& r) {
        ++visited;
        return fn(r);
      }));
  return visited;
}

Status TxnHandle::Commit() {
  if (!active()) return Status::InvalidArgument("transaction not active");
  if (txn_->read_only) {
    // Nothing to make durable: no WAL commit record for pure readers.
    cluster_->tm().Commit(txn_);
  } else {
    cluster_->CommitTxn(cluster_->master(), txn_);
  }
  cluster_->tm().Release(txn_->id);
  txn_ = nullptr;
  return Status::OK();
}

void TxnHandle::Abort() {
  if (!active()) return;
  cluster_->AbortTxn(txn_);
  cluster_->tm().Release(txn_->id);
  txn_ = nullptr;
}

TxnHandle Session::Begin(bool read_only) {
  return TxnHandle(cluster_, cluster_->BeginTxn(read_only));
}

StatusOr<storage::Record> Session::Get(TableId table, Key key) {
  TxnHandle txn = Begin(/*read_only=*/true);
  StatusOr<storage::Record> rec = txn.Get(table, key);
  if (!rec.ok()) return rec;  // ~TxnHandle aborts.
  WATTDB_RETURN_IF_ERROR(txn.Commit());
  return rec;
}

Status Session::Put(TableId table, Key key,
                    const std::vector<uint8_t>& payload) {
  TxnHandle txn = Begin();
  WATTDB_RETURN_IF_ERROR(txn.Put(table, key, payload));
  return txn.Commit();
}

StatusOr<int64_t> Session::Scan(
    TableId table, const KeyRange& range,
    const std::function<bool(const storage::Record&)>& fn) {
  TxnHandle txn = Begin(/*read_only=*/true);
  StatusOr<int64_t> n = txn.Scan(table, range, fn);
  if (!n.ok()) return n;
  WATTDB_RETURN_IF_ERROR(txn.Commit());
  return n;
}

}  // namespace wattdb
