#ifndef WATTDB_HW_POWER_H_
#define WATTDB_HW_POWER_H_

#include "common/types.h"

namespace wattdb::hw {

/// Power state of a cluster node.
enum class PowerState {
  kStandby,   ///< Suspended-to-RAM; ~2.5 W (§3.1).
  kActive,    ///< Powered and participating in the cluster.
  kBooting,   ///< Transitioning standby -> active; draws active-idle power.
};

/// The paper's measured power envelope (§3.1):
///  - each wimpy node draws ~22 W idle-active to ~26 W fully utilized,
///  - ~2.5 W in standby,
///  - the interconnect switch draws a constant 20 W,
///  - minimal config (1 node + switch + 9 standby) ~65 W,
///  - all 10 nodes at full load: ~260-280 W.
struct PowerModelSpec {
  double node_active_idle_watts = 22.0;
  double node_active_full_watts = 26.0;
  double node_standby_watts = 2.5;
  double switch_watts = 20.0;
};

/// Maps node power state + CPU utilization to watts per §3.1. Disk power is
/// included in the node envelope (the paper quotes node totals); the Disk
/// class still exposes its own PowerIn() for component-level breakdowns.
class PowerModel {
 public:
  explicit PowerModel(PowerModelSpec spec = PowerModelSpec()) : spec_(spec) {}

  /// Instantaneous node draw for the given state and utilization in [0, 1].
  double NodeWatts(PowerState state, double utilization) const;

  double SwitchWatts() const { return spec_.switch_watts; }

  const PowerModelSpec& spec() const { return spec_; }

 private:
  PowerModelSpec spec_;
};

/// Integrates watts over simulated time to produce joules.
class EnergyMeter {
 public:
  /// Add `watts` drawn over the window [from, to).
  void Accumulate(double watts, SimTime from, SimTime to);

  double joules() const { return joules_; }
  void Reset() { joules_ = 0.0; }

 private:
  double joules_ = 0.0;
};

}  // namespace wattdb::hw

#endif  // WATTDB_HW_POWER_H_
