#ifndef WATTDB_HW_NETWORK_H_
#define WATTDB_HW_NETWORK_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sim/resource.h"

namespace wattdb::hw {

/// Parameters of the interconnect. Defaults model the paper's Gigabit
/// Ethernet star topology through one store-and-forward switch.
struct NetworkSpec {
  /// Link bandwidth per direction, bytes/second (1 Gbit/s ~ 125 MB/s).
  double link_bandwidth_bps = 125e6;
  /// One-way per-message latency (propagation + switch + software stack).
  /// Calibrated so that a synchronous record-at-a-time next() round trip
  /// costs ~1 ms, matching the <1000 records/s observed in Fig. 1.
  SimTime message_latency_us = 450;
  /// Power draw of the switch in watts (always on, §3.1).
  double switch_watts = 20.0;
};

/// Simulated cluster interconnect: per-node full-duplex NIC queues joined by
/// a switch. A transfer occupies the sender's egress link and the receiver's
/// ingress link; messages additionally pay a fixed per-message latency.
class Network {
 public:
  explicit Network(NetworkSpec spec = NetworkSpec()) : spec_(spec) {}

  /// Register a node's NIC. Must be called once per node before use.
  void AddNode(NodeId node);

  /// Ship `bytes` from `src` to `dst` starting at `arrival`. Returns the
  /// delivery completion time. Local "transfers" (src == dst) are free.
  SimTime Transfer(SimTime arrival, NodeId src, NodeId dst, size_t bytes);

  /// A synchronous request/response pair: request message of `req_bytes`
  /// from src to dst, then a response of `resp_bytes` back. Returns the time
  /// the response fully arrives. Models volcano-style remote next() calls.
  SimTime RoundTrip(SimTime arrival, NodeId src, NodeId dst, size_t req_bytes,
                    size_t resp_bytes);

  /// Pure service time for `bytes` on one link, without queueing or latency.
  SimTime TransmitTime(size_t bytes) const;

  /// Utilization of a node's egress link in [from, to).
  double EgressUtilization(NodeId node, SimTime from, SimTime to) const;
  double IngressUtilization(NodeId node, SimTime from, SimTime to) const;
  void Prune(SimTime before);

  int64_t messages_sent() const { return messages_sent_; }
  int64_t bytes_sent() const { return bytes_sent_; }

  const NetworkSpec& spec() const { return spec_; }

 private:
  struct Nic {
    sim::Resource egress{"egress"};
    sim::Resource ingress{"ingress"};
  };

  NetworkSpec spec_;
  std::unordered_map<NodeId, Nic> nics_;
  int64_t messages_sent_ = 0;
  int64_t bytes_sent_ = 0;
};

}  // namespace wattdb::hw

#endif  // WATTDB_HW_NETWORK_H_
