#include "hw/network.h"

#include "common/logging.h"

namespace wattdb::hw {

void Network::AddNode(NodeId node) {
  nics_.try_emplace(node);
}

SimTime Network::TransmitTime(size_t bytes) const {
  return static_cast<SimTime>(static_cast<double>(bytes) /
                              spec_.link_bandwidth_bps * kUsPerSec);
}

SimTime Network::Transfer(SimTime arrival, NodeId src, NodeId dst,
                          size_t bytes) {
  if (src == dst) return arrival;
  auto src_it = nics_.find(src);
  auto dst_it = nics_.find(dst);
  WATTDB_CHECK_MSG(src_it != nics_.end() && dst_it != nics_.end(),
                   "transfer between unregistered nodes");
  ++messages_sent_;
  bytes_sent_ += static_cast<int64_t>(bytes);
  const SimTime svc = TransmitTime(bytes);
  // Store-and-forward through the switch: serialize on the sender's egress,
  // then (after the one-way latency) on the receiver's ingress.
  const SimTime sent = src_it->second.egress.Acquire(arrival, svc);
  const SimTime at_receiver = sent + spec_.message_latency_us;
  return dst_it->second.ingress.Acquire(at_receiver, svc);
}

SimTime Network::RoundTrip(SimTime arrival, NodeId src, NodeId dst,
                           size_t req_bytes, size_t resp_bytes) {
  if (src == dst) return arrival;
  const SimTime request_done = Transfer(arrival, src, dst, req_bytes);
  return Transfer(request_done, dst, src, resp_bytes);
}

double Network::EgressUtilization(NodeId node, SimTime from, SimTime to) const {
  auto it = nics_.find(node);
  if (it == nics_.end()) return 0.0;
  return it->second.egress.UtilizationIn(from, to);
}

double Network::IngressUtilization(NodeId node, SimTime from, SimTime to) const {
  auto it = nics_.find(node);
  if (it == nics_.end()) return 0.0;
  return it->second.ingress.UtilizationIn(from, to);
}

void Network::Prune(SimTime before) {
  for (auto& [id, nic] : nics_) {
    nic.egress.Prune(before);
    nic.ingress.Prune(before);
  }
}

}  // namespace wattdb::hw
