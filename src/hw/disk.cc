#include "hw/disk.h"

#include <algorithm>

namespace wattdb::hw {

DiskSpec DiskSpec::Hdd() {
  DiskSpec s;
  s.kind = DiskKind::kHdd;
  s.random_access_us = 8000;      // ~8 ms seek + rotation, 7200 rpm class.
  s.seq_bandwidth_bps = 100e6;    // 100 MB/s.
  s.active_watts = 6.0;
  s.idle_watts = 4.0;
  return s;
}

DiskSpec DiskSpec::Ssd() {
  DiskSpec s;
  s.kind = DiskKind::kSsd;
  s.random_access_us = 120;       // ~120 us random read, SATA-era SSD.
  s.seq_bandwidth_bps = 250e6;    // 250 MB/s.
  s.active_watts = 2.0;
  s.idle_watts = 0.8;
  return s;
}

Disk::Disk(DiskId id, NodeId node, DiskSpec spec, std::string name)
    : id_(id), node_(node), spec_(spec), resource_(std::move(name)) {}

SimTime Disk::RandomServiceTime(size_t bytes) const {
  const SimTime transfer = static_cast<SimTime>(
      static_cast<double>(bytes) / spec_.seq_bandwidth_bps * kUsPerSec);
  return spec_.random_access_us + transfer;
}

SimTime Disk::SequentialServiceTime(size_t bytes) const {
  return static_cast<SimTime>(static_cast<double>(bytes) /
                              spec_.seq_bandwidth_bps * kUsPerSec);
}

SimTime Disk::AccessRandom(SimTime arrival, size_t bytes) {
  ++random_ops_;
  bytes_transferred_ += static_cast<int64_t>(bytes);
  return resource_.Acquire(arrival, RandomServiceTime(bytes));
}

SimTime Disk::AccessSequential(SimTime arrival, size_t bytes) {
  bytes_transferred_ += static_cast<int64_t>(bytes);
  // One positioning charge per sequential burst.
  return resource_.Acquire(arrival,
                           spec_.random_access_us + SequentialServiceTime(bytes));
}

SimTime Disk::AccessAppend(SimTime arrival, size_t bytes) {
  bytes_transferred_ += static_cast<int64_t>(bytes);
  constexpr SimTime kAppendOverheadUs = 60;
  return resource_.Acquire(arrival,
                           kAppendOverheadUs + SequentialServiceTime(bytes));
}

double Disk::PowerIn(SimTime from, SimTime to) const {
  const double util = resource_.UtilizationIn(from, to);
  return spec_.idle_watts + util * (spec_.active_watts - spec_.idle_watts);
}

}  // namespace wattdb::hw
