#ifndef WATTDB_HW_NODE_HARDWARE_H_
#define WATTDB_HW_NODE_HARDWARE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "hw/disk.h"
#include "hw/power.h"
#include "sim/resource.h"

namespace wattdb::hw {

/// Hardware configuration of one wimpy node. Defaults match the paper's
/// testbed (§3.1): Intel Atom D510 (2 cores), 2 GB DRAM, 1 HDD + 2 SSDs.
struct NodeHardwareSpec {
  int cpu_cores = 2;
  size_t dram_bytes = 2ULL * 1024 * 1024 * 1024;
  int num_hdd = 1;
  int num_ssd = 2;
  /// Time for a standby node to boot and rejoin the cluster. The paper
  /// reports processing nodes can attach "in the range of a few seconds".
  SimTime boot_time_us = 5 * kUsPerSec;
};

/// The simulated hardware of a single node: CPU core pool plus its locally
/// attached disks. Power state transitions (standby <-> active) gate whether
/// the node may do any work.
class NodeHardware {
 public:
  NodeHardware(NodeId id, const NodeHardwareSpec& spec, DiskId first_disk_id);

  NodeHardware(const NodeHardware&) = delete;
  NodeHardware& operator=(const NodeHardware&) = delete;

  NodeId id() const { return id_; }
  const NodeHardwareSpec& spec() const { return spec_; }

  sim::ResourcePool& cpu() { return cpu_; }
  const sim::ResourcePool& cpu() const { return cpu_; }

  std::vector<std::unique_ptr<Disk>>& disks() { return disks_; }
  const std::vector<std::unique_ptr<Disk>>& disks() const { return disks_; }

  Disk* disk(size_t i) { return disks_[i].get(); }
  size_t num_disks() const { return disks_.size(); }

  /// Round-robin pick of the least-backlogged disk for new allocations.
  Disk* LeastLoadedDisk(SimTime now);

  PowerState power_state() const { return power_state_; }
  void set_power_state(PowerState s) { power_state_ = s; }

  /// CPU utilization over a window, used for threshold checks and power.
  double CpuUtilizationIn(SimTime from, SimTime to) const {
    return cpu_.UtilizationIn(from, to);
  }

  /// Node draw over a window per the power model.
  double PowerIn(const PowerModel& model, SimTime from, SimTime to) const;

  void Prune(SimTime before);

 private:
  NodeId id_;
  NodeHardwareSpec spec_;
  sim::ResourcePool cpu_;
  std::vector<std::unique_ptr<Disk>> disks_;
  PowerState power_state_ = PowerState::kActive;
};

}  // namespace wattdb::hw

#endif  // WATTDB_HW_NODE_HARDWARE_H_
