#ifndef WATTDB_HW_DISK_H_
#define WATTDB_HW_DISK_H_

#include <cstdint>
#include <string>

#include "common/constants.h"
#include "common/types.h"
#include "sim/resource.h"

namespace wattdb::hw {

enum class DiskKind { kHdd, kSsd };

/// Physical characteristics of one storage device. Defaults approximate the
/// paper's commodity hardware: one 7200 rpm HDD plus two SATA SSDs per node.
struct DiskSpec {
  DiskKind kind = DiskKind::kHdd;
  /// Average positioning time for a random access (seek + rotational delay).
  SimTime random_access_us = 8000;   // HDD default.
  /// Sustained sequential bandwidth in bytes/second.
  double seq_bandwidth_bps = 100e6;  // 100 MB/s HDD default.
  /// Active power draw in watts while servicing requests.
  double active_watts = 6.0;
  /// Idle power draw in watts while spun up.
  double idle_watts = 4.0;

  static DiskSpec Hdd();
  static DiskSpec Ssd();
};

/// A single simulated storage device: an FCFS service timeline plus counters.
/// Random page accesses pay the positioning cost; sequential accesses (the
/// caller asserts sequentiality, e.g. segment-granular migration I/O) pay
/// only transfer time.
class Disk {
 public:
  Disk(DiskId id, NodeId node, DiskSpec spec, std::string name);

  /// Schedule a random page read/write of `bytes`. Returns completion time.
  SimTime AccessRandom(SimTime arrival, size_t bytes);

  /// Schedule a sequential transfer of `bytes` (no positioning cost beyond
  /// one initial seek charged per call).
  SimTime AccessSequential(SimTime arrival, size_t bytes);

  /// Schedule an append at the current head position (WAL writes): pure
  /// transfer plus a small controller overhead, no seek. Models a
  /// write-cached log device.
  SimTime AccessAppend(SimTime arrival, size_t bytes);

  /// Service time of a random access without queueing.
  SimTime RandomServiceTime(size_t bytes) const;
  SimTime SequentialServiceTime(size_t bytes) const;

  DiskId id() const { return id_; }
  NodeId node() const { return node_; }
  const DiskSpec& spec() const { return spec_; }
  sim::Resource& resource() { return resource_; }
  const sim::Resource& resource() const { return resource_; }

  int64_t random_ops() const { return random_ops_; }
  int64_t bytes_transferred() const { return bytes_transferred_; }

  /// Power draw in [from, to) interpolated between idle and active by
  /// utilization.
  double PowerIn(SimTime from, SimTime to) const;

 private:
  DiskId id_;
  NodeId node_;
  DiskSpec spec_;
  sim::Resource resource_;
  int64_t random_ops_ = 0;
  int64_t bytes_transferred_ = 0;
};

}  // namespace wattdb::hw

#endif  // WATTDB_HW_DISK_H_
