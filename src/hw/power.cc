#include "hw/power.h"

#include <algorithm>

namespace wattdb::hw {

double PowerModel::NodeWatts(PowerState state, double utilization) const {
  switch (state) {
    case PowerState::kStandby:
      return spec_.node_standby_watts;
    case PowerState::kBooting:
      return spec_.node_active_idle_watts;
    case PowerState::kActive: {
      const double u = std::clamp(utilization, 0.0, 1.0);
      return spec_.node_active_idle_watts +
             u * (spec_.node_active_full_watts - spec_.node_active_idle_watts);
    }
  }
  return 0.0;
}

void EnergyMeter::Accumulate(double watts, SimTime from, SimTime to) {
  if (to <= from) return;
  joules_ += watts * ToSeconds(to - from);
}

}  // namespace wattdb::hw
