#include "hw/node_hardware.h"

namespace wattdb::hw {

NodeHardware::NodeHardware(NodeId id, const NodeHardwareSpec& spec,
                           DiskId first_disk_id)
    : id_(id),
      spec_(spec),
      cpu_("node" + std::to_string(id.value()) + ".cpu", spec.cpu_cores) {
  uint32_t next = first_disk_id.value();
  for (int i = 0; i < spec.num_hdd; ++i) {
    disks_.push_back(std::make_unique<Disk>(
        DiskId(next), id, DiskSpec::Hdd(),
        "node" + std::to_string(id.value()) + ".hdd" + std::to_string(i)));
    ++next;
  }
  for (int i = 0; i < spec.num_ssd; ++i) {
    disks_.push_back(std::make_unique<Disk>(
        DiskId(next), id, DiskSpec::Ssd(),
        "node" + std::to_string(id.value()) + ".ssd" + std::to_string(i)));
    ++next;
  }
}

Disk* NodeHardware::LeastLoadedDisk(SimTime now) {
  Disk* best = disks_[0].get();
  for (auto& d : disks_) {
    if (d->resource().Backlog(now) < best->resource().Backlog(now)) {
      best = d.get();
    }
  }
  return best;
}

double NodeHardware::PowerIn(const PowerModel& model, SimTime from,
                             SimTime to) const {
  return model.NodeWatts(power_state_, CpuUtilizationIn(from, to));
}

void NodeHardware::Prune(SimTime before) {
  cpu_.Prune(before);
  for (auto& d : disks_) d->resource().Prune(before);
}

}  // namespace wattdb::hw
