#ifndef WATTDB_REPLICA_REPLICA_MANAGER_H_
#define WATTDB_REPLICA_REPLICA_MANAGER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/master.h"
#include "cluster/monitor.h"
#include "common/status.h"
#include "common/types.h"

namespace wattdb::replica {

/// Lifecycle of one warm standby.
enum class ReplicaState {
  kBootstrapping,  ///< Base copy streaming from the owner's disk.
  kCatchingUp,     ///< Base installed; applying the owner's log tail.
  kCaughtUp,       ///< Lag under the policy bound; serving fanned-out reads.
};

const char* ToString(ReplicaState state);

/// One warm standby of one hot segment: where it came from, where the
/// copy lives, and how far behind the owner's log it is.
struct ReplicaInfo {
  TableId table;
  SegmentId src_segment;
  KeyRange range;
  PartitionId src_partition;
  NodeId src_node;
  PartitionId replica_partition;
  SegmentId replica_segment;  ///< Invalid until bootstrap installs.
  NodeId host;
  ReplicaState state = ReplicaState::kBootstrapping;
  /// Last source-log LSN applied to the copy.
  uint64_t applied_lsn = 0;
  /// Unapplied source-log records at the start of the last catch-up round
  /// (the replication lag the staleness bound is checked against).
  int64_t lag_records = 0;
  int64_t records_applied = 0;
  /// Bootstrap + log-shipping bytes this replica has moved (network tax).
  int64_t bytes_shipped = 0;
  /// Bootstrap stream accounting (for progress()).
  size_t bootstrap_total_bytes = 0;
  size_t bootstrap_streamed_bytes = 0;
  SimTime created_at = 0;
  SimTime caught_up_at = 0;
  /// When the source segment's heat first dipped under the policy
  /// threshold (0 while hot) — the drop-hysteresis clock.
  SimTime cold_since = 0;
};

/// Maintains warm standbys of the hottest segments on other nodes: picks
/// them off the Monitor's per-segment heat EWMA, bootstraps a base copy by
/// byte-streaming the owner's segment (the migration path's cost model),
/// then keeps the copy fresh by applying the owner's log tail through the
/// same idempotent redo the crash path uses. Driven from the master's
/// control tick via Master::ReplicaHooks; failover promotes the freshest
/// standby of a dead owner (catch-up-and-flip) instead of waiting out the
/// owner's full WAL redo.
class ReplicaManager {
 public:
  using EventSink =
      std::function<void(cluster::ControlEventType, NodeId, std::string)>;
  /// true = node may host replicas (Db wires: active, not excluded, not a
  /// helper, not crashed-per-ground-truth).
  using HostFilter = std::function<bool(NodeId)>;

  ReplicaManager(cluster::Cluster* cluster, cluster::Monitor* monitor,
                 cluster::ReplicaPolicy policy);

  ReplicaManager(const ReplicaManager&) = delete;
  ReplicaManager& operator=(const ReplicaManager&) = delete;

  void SetEventSink(EventSink sink) { event_sink_ = std::move(sink); }
  void SetHostFilter(HostFilter filter) { host_filter_ = std::move(filter); }

  /// One maintenance round, called from the master's control tick:
  /// drop invalidated replicas, apply the owners' log tails (advancing
  /// lag / serving state), then start bootstraps for under-replicated hot
  /// segments within the policy budget.
  void Tick();

  /// Owner `dead` was declared dead: for every segment it owned that has a
  /// bootstrapped standby, apply the final tail from the dead node's
  /// surviving WAL and flip the route to the freshest standby. Returns the
  /// number of promotions.
  int PromoteReplicasOf(NodeId dead);

  /// Drop every replica hosted on `node` (it died, or is being drained or
  /// excluded — replica state is unlogged and either gone or about to be).
  /// Also aborts bootstraps streaming *from* or *to* the node. Returns the
  /// number of replicas dropped.
  int DropReplicasOn(NodeId node);

  // --- Observers ----------------------------------------------------------
  const std::vector<std::shared_ptr<ReplicaInfo>>& replicas() const {
    return replicas_;
  }
  const cluster::ReplicaPolicy& policy() const { return policy_; }
  int replicas_created() const { return replicas_created_; }
  int replicas_caught_up() const { return replicas_caught_up_; }
  int replicas_promoted() const { return replicas_promoted_; }
  int replicas_dropped() const { return replicas_dropped_; }
  /// Bootstrap + log-shipping bytes across all replicas ever (the
  /// replication network tax reported by bench_warm_replicas).
  int64_t replication_bytes() const { return replication_bytes_; }
  int64_t log_records_shipped() const { return log_records_shipped_; }

  /// Lifecycle progress of the current replica set, for fault triggers
  /// ("crash the owner at 50% of replica catch-up"): each replica
  /// contributes 0..0.5 while its base copy streams, 0.75 while applying
  /// the log tail, 1.0 once caught up; 0.0 with no replicas yet.
  double progress() const;

 private:
  void ApplyLogTails(SimTime now);
  void ValidateReplicas(SimTime now);
  void MaybeCreateReplicas(SimTime now);
  void StartBootstrap(const std::shared_ptr<ReplicaInfo>& rep);
  void StreamChunk(const std::weak_ptr<ReplicaInfo>& weak, SimTime at);
  void FinishBootstrap(const std::shared_ptr<ReplicaInfo>& rep, SimTime now);
  /// Apply the source-log records for `rep`'s range beyond applied_lsn to
  /// the replica partition, charging network + host CPU. Returns how many
  /// records were pending before the apply (the lag).
  int64_t CatchUp(const std::shared_ptr<ReplicaInfo>& rep, SimTime now);
  void DropReplica(const std::shared_ptr<ReplicaInfo>& rep,
                   const std::string& reason);
  NodeId PickHost(const std::shared_ptr<ReplicaInfo>& rep) const;
  bool HostEligible(NodeId node) const;
  void Emit(cluster::ControlEventType type, NodeId node, std::string detail);
  std::string Describe(const ReplicaInfo& rep) const;

  cluster::Cluster* cluster_;
  cluster::Monitor* monitor_;
  cluster::ReplicaPolicy policy_;
  EventSink event_sink_;
  HostFilter host_filter_;

  /// shared_ptr so in-flight bootstrap events can hold weak references
  /// that expire when a replica is dropped mid-stream.
  std::vector<std::shared_ptr<ReplicaInfo>> replicas_;

  int replicas_created_ = 0;
  int replicas_caught_up_ = 0;
  int replicas_promoted_ = 0;
  int replicas_dropped_ = 0;
  int64_t replication_bytes_ = 0;
  int64_t log_records_shipped_ = 0;
};

}  // namespace wattdb::replica

#endif  // WATTDB_REPLICA_REPLICA_MANAGER_H_
