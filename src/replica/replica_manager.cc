#include "replica/replica_manager.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "cluster/node.h"
#include "common/logging.h"
#include "storage/segment.h"
#include "tx/log_manager.h"

namespace wattdb::replica {

namespace {
/// One bootstrap stream chunk: sequential read at the owner, network hop,
/// sequential write at the host — same pipeline as a migration copy.
constexpr size_t kBootstrapChunkBytes = 1 << 20;
}  // namespace

const char* ToString(ReplicaState state) {
  switch (state) {
    case ReplicaState::kBootstrapping: return "bootstrapping";
    case ReplicaState::kCatchingUp: return "catching-up";
    case ReplicaState::kCaughtUp: return "caught-up";
  }
  return "unknown";
}

ReplicaManager::ReplicaManager(cluster::Cluster* cluster,
                               cluster::Monitor* monitor,
                               cluster::ReplicaPolicy policy)
    : cluster_(cluster), monitor_(monitor), policy_(policy) {
  WATTDB_CHECK(cluster_ != nullptr);
  WATTDB_CHECK(monitor_ != nullptr);
}

void ReplicaManager::Emit(cluster::ControlEventType type, NodeId node,
                          std::string detail) {
  if (event_sink_) event_sink_(type, node, std::move(detail));
}

std::string ReplicaManager::Describe(const ReplicaInfo& rep) const {
  return "segment " + std::to_string(rep.src_segment.value()) + " [" +
         std::to_string(rep.range.lo) + "," + std::to_string(rep.range.hi) +
         ") of node " + std::to_string(rep.src_node.value()) + " on node " +
         std::to_string(rep.host.value());
}

double ReplicaManager::progress() const {
  if (replicas_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& rep : replicas_) {
    switch (rep->state) {
      case ReplicaState::kBootstrapping:
        sum += rep->bootstrap_total_bytes == 0
                   ? 0.0
                   : 0.5 * static_cast<double>(rep->bootstrap_streamed_bytes) /
                         static_cast<double>(rep->bootstrap_total_bytes);
        break;
      case ReplicaState::kCatchingUp:
        sum += 0.75;
        break;
      case ReplicaState::kCaughtUp:
        sum += 1.0;
        break;
    }
  }
  return sum / static_cast<double>(replicas_.size());
}

bool ReplicaManager::HostEligible(NodeId node) const {
  cluster::Node* n = cluster_->node(node);
  if (n == nullptr || !n->IsActive()) return false;
  if (host_filter_ && !host_filter_(node)) return false;
  return true;
}

void ReplicaManager::Tick() {
  if (!policy_.enabled) return;
  const SimTime now = cluster_->Now();
  ValidateReplicas(now);
  ApplyLogTails(now);
  MaybeCreateReplicas(now);
}

// --------------------------------------------------------------- validation

void ReplicaManager::ValidateReplicas(SimTime now) {
  // Iterate a snapshot: DropReplica mutates replicas_.
  const std::vector<std::shared_ptr<ReplicaInfo>> snapshot = replicas_;
  for (const auto& rep : snapshot) {
    cluster::Node* host = cluster_->node(rep->host);
    if (host == nullptr || !host->IsActive()) {
      // Replica state is never logged on the host: a crash wiped it (in
      // spirit — the simulated pages survive, but we must not trust them).
      DropReplica(rep, "host down");
      continue;
    }
    const auto route = cluster_->catalog().Route(rep->table, rep->range.lo);
    if (!route.has_value() || route->primary != rep->src_partition) {
      // The source moved (heat move, drain, promotion of a sibling): the
      // log stream this copy was following has ended. Cheaper to rebuild
      // from the new owner than to chase it.
      DropReplica(rep, "source partition no longer owns range");
      continue;
    }
    // Heat hysteresis: a segment that cooled below the threshold and
    // stayed cold keeps its replica only drop_cold_after long.
    const double heat = monitor_->HeatOf(rep->src_segment);
    if (heat >= policy_.heat_threshold) {
      rep->cold_since = 0;
    } else if (rep->cold_since == 0) {
      rep->cold_since = now;
    } else if (now - rep->cold_since >= policy_.drop_cold_after) {
      DropReplica(rep, "segment cooled below heat threshold");
      continue;
    }
  }
}

// ----------------------------------------------------------------- catch-up

int64_t ReplicaManager::CatchUp(const std::shared_ptr<ReplicaInfo>& rep,
                                SimTime now) {
  cluster::Node* src = cluster_->node(rep->src_node);
  cluster::Node* host = cluster_->node(rep->host);
  if (src == nullptr || host == nullptr || !src->IsActive() ||
      !host->IsActive()) {
    return rep->lag_records;  // Stalled; promotion or validation decides.
  }
  // The owner's shipped tail: only this partition's data records within
  // the replicated range matter.
  std::vector<tx::LogRecord> tail;
  size_t bytes = 0;
  for (tx::LogRecord& rec : src->log().Tail(rep->applied_lsn)) {
    if (rec.partition != rep->src_partition) continue;
    if (rec.type != tx::LogRecordType::kInsert &&
        rec.type != tx::LogRecordType::kUpdate &&
        rec.type != tx::LogRecordType::kDelete) {
      continue;
    }
    if (!rep->range.Contains(rec.key)) continue;
    bytes += rec.Bytes();
    // RedoInto applies only records naming the partition it fills —
    // retarget the copy at the replica partition.
    rec.partition = rep->replica_partition;
    tail.push_back(std::move(rec));
  }
  const int64_t lag = static_cast<int64_t>(tail.size());
  // Everything up to the owner's current tip has now been scanned;
  // records of other partitions need not be re-filtered next round.
  rep->applied_lsn = src->log().next_lsn() - 1;
  if (tail.empty()) return 0;

  // Ship the tail and apply it: network hop, then per-record CPU on the
  // host. RedoInto is idempotent, so a tick that partially overlaps a
  // previous one (promotion's final pass) cannot double-apply.
  catalog::Partition* part =
      cluster_->catalog().GetPartition(rep->replica_partition);
  if (part == nullptr) return lag;
  const SimTime arrived =
      cluster_->network().Transfer(now, rep->src_node, rep->host, bytes);
  host->hardware().cpu().Acquire(
      arrived, static_cast<SimTime>(tail.size()) *
                   host->costs().cpu_record_write_us);
  const Status applied = host->RedoInto(part, tail);
  if (!applied.ok()) {
    WATTDB_WARN("replica: apply failed for " << Describe(*rep) << ": "
                                             << applied.ToString());
    return lag;
  }
  rep->records_applied += static_cast<int64_t>(tail.size());
  rep->bytes_shipped += static_cast<int64_t>(bytes);
  replication_bytes_ += static_cast<int64_t>(bytes);
  log_records_shipped_ += static_cast<int64_t>(tail.size());
  return lag;
}

void ReplicaManager::ApplyLogTails(SimTime now) {
  for (const auto& rep : replicas_) {
    if (rep->state == ReplicaState::kBootstrapping) continue;
    rep->lag_records = CatchUp(rep, now);
    const bool fresh = rep->lag_records <= policy_.max_lag_records;
    if (fresh && rep->state == ReplicaState::kCatchingUp) {
      rep->state = ReplicaState::kCaughtUp;
      rep->caught_up_at = now;
      ++replicas_caught_up_;
      if (policy_.read_fanout) {
        (void)cluster_->catalog().SetReplicaServing(
            rep->table, rep->replica_partition, true);
      }
      Emit(cluster::ControlEventType::kReplicaCaughtUp, rep->host,
           Describe(*rep) + " within staleness bound (lag " +
               std::to_string(rep->lag_records) + " records)");
    } else if (!fresh && rep->state == ReplicaState::kCaughtUp) {
      // Fell behind the staleness bound: out of read fan-out until the
      // lag shrinks again.
      rep->state = ReplicaState::kCatchingUp;
      (void)cluster_->catalog().SetReplicaServing(
          rep->table, rep->replica_partition, false);
    }
  }
}

// ---------------------------------------------------------------- placement

NodeId ReplicaManager::PickHost(const std::shared_ptr<ReplicaInfo>& rep) const {
  const auto node_heat = monitor_->NodeHeats();
  NodeId best = NodeId::Invalid();
  double best_heat = 0.0;
  for (cluster::Node* n : cluster_->ActiveNodes()) {
    if (n->id() == rep->src_node) continue;
    if (!HostEligible(n->id())) continue;
    bool hosts_sibling = false;
    for (const auto& other : replicas_) {
      if (other->src_segment == rep->src_segment && other->host == n->id()) {
        hosts_sibling = true;
        break;
      }
    }
    if (hosts_sibling) continue;
    auto it = node_heat.find(n->id());
    const double h = it == node_heat.end() ? 0.0 : it->second;
    if (!best.valid() || h < best_heat) {
      best = n->id();
      best_heat = h;
    }
  }
  return best;
}

void ReplicaManager::MaybeCreateReplicas(SimTime now) {
  // Budget: distinct source segments currently replicated.
  std::unordered_set<SegmentId> replicated;
  std::unordered_map<SegmentId, int> copies;
  for (const auto& rep : replicas_) {
    replicated.insert(rep->src_segment);
    ++copies[rep->src_segment];
  }

  auto heats = monitor_->SegmentHeats();
  std::sort(heats.begin(), heats.end(),
            [](const cluster::HeatEntry& a, const cluster::HeatEntry& b) {
              return a.heat > b.heat;
            });
  for (const auto& entry : heats) {
    if (entry.heat < policy_.heat_threshold) break;  // Sorted: rest colder.
    if (copies[entry.segment] >= policy_.replicas_per_segment) continue;
    if (replicated.count(entry.segment) == 0 &&
        static_cast<int>(replicated.size()) >=
            policy_.max_replicated_segments) {
      continue;
    }
    // Reverse-lookup the owning partition and routed range of the segment.
    catalog::Partition* owner_part = nullptr;
    KeyRange range;
    for (TableId table : cluster_->catalog().Tables()) {
      for (catalog::Partition* part : cluster_->catalog().PartitionsOf(table)) {
        for (const auto& e : part->top_index().All()) {
          if (e.segment == entry.segment) {
            owner_part = part;
            range = e.range;
            break;
          }
        }
        if (owner_part != nullptr) break;
      }
      if (owner_part != nullptr) break;
    }
    if (owner_part == nullptr) continue;
    // Never replicate a replica — fan-out reads make standby segments hot
    // too, but their owner partition is not a routed primary.
    if (owner_part->is_replica()) continue;
    if (owner_part->state() != catalog::PartitionState::kNormal) continue;
    const auto route = cluster_->catalog().Route(owner_part->table(), range.lo);
    if (!route.has_value() || route->primary != owner_part->id() ||
        route->secondary.valid()) {
      continue;  // Unrouted, or a move is in flight over the range.
    }
    cluster::Node* src = cluster_->node(owner_part->owner());
    if (src == nullptr || !src->IsActive()) continue;
    storage::Segment* seg = cluster_->segments().Get(entry.segment);
    if (seg == nullptr) continue;

    auto rep = std::make_shared<ReplicaInfo>();
    rep->table = owner_part->table();
    rep->src_segment = entry.segment;
    rep->range = range;
    rep->src_partition = owner_part->id();
    rep->src_node = owner_part->owner();
    rep->host = PickHost(rep);
    if (!rep->host.valid()) continue;  // No eligible host right now.
    rep->created_at = now;
    rep->bootstrap_total_bytes = seg->DiskBytes();

    catalog::Partition* replica_part =
        cluster_->catalog().CreatePartition(rep->table, rep->host);
    replica_part->set_is_replica(true);
    rep->replica_partition = replica_part->id();

    replicas_.push_back(rep);
    replicated.insert(rep->src_segment);
    ++copies[rep->src_segment];
    WATTDB_INFO("replica: bootstrapping " << Describe(*rep) << " ("
                                          << rep->bootstrap_total_bytes
                                          << " bytes, heat "
                                          << static_cast<int64_t>(entry.heat)
                                          << " ops/s)");
    StartBootstrap(rep);
  }
}

// ---------------------------------------------------------------- bootstrap

void ReplicaManager::StartBootstrap(const std::shared_ptr<ReplicaInfo>& rep) {
  // Chunked byte stream along the migration pipeline: owner disk
  // sequential read -> network -> host disk sequential write. The event
  // chain holds only a weak reference so a dropped replica's stream
  // simply expires.
  StreamChunk(rep, cluster_->Now());
}

void ReplicaManager::StreamChunk(const std::weak_ptr<ReplicaInfo>& weak,
                                 SimTime at) {
  auto rep = weak.lock();
  if (rep == nullptr) return;  // Dropped mid-stream.
  cluster::Node* src = cluster_->node(rep->src_node);
  cluster::Node* host = cluster_->node(rep->host);
  if (src == nullptr || host == nullptr || !src->IsActive() ||
      !host->IsActive()) {
    DropReplica(rep, "bootstrap endpoint crashed");
    return;
  }
  if (rep->bootstrap_streamed_bytes >= rep->bootstrap_total_bytes) {
    FinishBootstrap(rep, cluster_->Now());
    return;
  }
  const size_t chunk =
      std::min(kBootstrapChunkBytes,
               rep->bootstrap_total_bytes - rep->bootstrap_streamed_bytes);
  storage::Segment* seg = cluster_->segments().Get(rep->src_segment);
  hw::Disk* src_disk =
      seg != nullptr ? cluster_->FindDisk(seg->disk()) : nullptr;
  if (src_disk == nullptr) {
    DropReplica(rep, "source segment vanished mid-bootstrap");
    return;
  }
  const SimTime read_done = src_disk->AccessSequential(at, chunk);
  const SimTime shipped =
      cluster_->network().Transfer(read_done, rep->src_node, rep->host, chunk);
  hw::Disk* dst_disk = host->DataDisk(shipped);
  const SimTime written = dst_disk != nullptr
                              ? dst_disk->AccessSequential(shipped, chunk)
                              : shipped;
  rep->bootstrap_streamed_bytes += chunk;
  rep->bytes_shipped += static_cast<int64_t>(chunk);
  replication_bytes_ += static_cast<int64_t>(chunk);
  cluster_->events().ScheduleAt(
      written, [this, weak]() { StreamChunk(weak, cluster_->Now()); });
}

void ReplicaManager::FinishBootstrap(const std::shared_ptr<ReplicaInfo>& rep,
                                     SimTime now) {
  // The copy is only valid if the source still owns the range the stream
  // started from (no move or promotion slipped in underneath).
  const auto route = cluster_->catalog().Route(rep->table, rep->range.lo);
  if (!route.has_value() || route->primary != rep->src_partition ||
      route->secondary.valid()) {
    DropReplica(rep, "source moved during bootstrap");
    return;
  }
  cluster::Node* src = cluster_->node(rep->src_node);
  cluster::Node* host = cluster_->node(rep->host);
  if (src == nullptr || host == nullptr || !src->IsActive() ||
      !host->IsActive()) {
    DropReplica(rep, "bootstrap endpoint crashed");
    return;
  }
  catalog::Partition* part =
      cluster_->catalog().GetPartition(rep->replica_partition);
  storage::Segment* src_seg = cluster_->segments().Get(rep->src_segment);
  if (part == nullptr || src_seg == nullptr) {
    DropReplica(rep, "source segment vanished mid-bootstrap");
    return;
  }
  auto allocated = host->AllocateSegment(now, part, rep->range);
  if (!allocated.ok()) {
    DropReplica(rep, "host out of segment capacity");
    return;
  }
  storage::Segment* copy = allocated.value();
  rep->replica_segment = copy->id();
  // Materialize the records as of *now* — the byte stream above modeled
  // the I/O; the state cut is install-time, so the log position to resume
  // from is simply the owner's current tip.
  src_seg->ScanAll([&](const storage::Record& r) {
    if (rep->range.Contains(r.key)) (void)copy->Insert(r.key, r.payload);
    return true;
  });
  rep->applied_lsn = src->log().next_lsn() - 1;
  rep->state = ReplicaState::kCatchingUp;
  ++replicas_created_;
  const Status routed = cluster_->catalog().AddReplicaRoute(
      rep->table, rep->range, rep->replica_partition, rep->src_partition);
  if (!routed.ok()) {
    DropReplica(rep, "replica route rejected: " + routed.ToString());
    return;
  }
  Emit(cluster::ControlEventType::kReplicaCreated, rep->host,
       Describe(*rep) + " bootstrapped (" +
           std::to_string(copy->record_count()) + " records, " +
           std::to_string(rep->bootstrap_total_bytes) + " bytes)");
}

// ----------------------------------------------------------------- failover

int ReplicaManager::PromoteReplicasOf(NodeId dead) {
  if (!policy_.enabled) return 0;
  const SimTime now = cluster_->Now();
  // Freshest bootstrapped standby per segment of the dead owner. Equally
  // fresh candidates (same applied LSN — common right after a catch-up
  // tick) break the tie toward the *coldest* host: the promoted node
  // inherits the dead owner's traffic on top of its own, so of two
  // identical copies the one on the least-loaded node wins.
  std::unordered_map<NodeId, double> node_heat;
  if (monitor_ != nullptr) node_heat = monitor_->NodeHeats();
  const auto heat_of = [&node_heat](NodeId node) {
    auto it = node_heat.find(node);
    return it == node_heat.end() ? 0.0 : it->second;
  };
  std::unordered_map<SegmentId, std::shared_ptr<ReplicaInfo>> chosen;
  for (const auto& rep : replicas_) {
    if (rep->src_node != dead) continue;
    if (rep->state == ReplicaState::kBootstrapping) continue;
    cluster::Node* host = cluster_->node(rep->host);
    if (host == nullptr || !host->IsActive()) continue;
    auto& slot = chosen[rep->src_segment];
    if (slot == nullptr || rep->applied_lsn > slot->applied_lsn ||
        (rep->applied_lsn == slot->applied_lsn &&
         heat_of(rep->host) < heat_of(slot->host))) {
      slot = rep;
    }
  }
  int promoted = 0;
  for (auto& [segment, rep] : chosen) {
    // Final catch-up from the dead owner's *surviving* WAL (the log disk
    // outlives the crash — that is the whole point of write-ahead
    // logging): replay-read there, ship, apply. Much less data than the
    // full redo a restart would pay — only this range's tail since the
    // replica's last tick.
    cluster::Node* src = cluster_->node(dead);
    cluster::Node* host = cluster_->node(rep->host);
    catalog::Partition* part =
        cluster_->catalog().GetPartition(rep->replica_partition);
    if (src == nullptr || host == nullptr || part == nullptr) continue;
    // Seal the range BEFORE the final tail is cut: from this instant the
    // routing layer refuses the deposed owner, so no write can land there
    // and miss the flip — the hole that loses data when the "dead" owner
    // is actually alive behind a network partition, or restarts and
    // finishes redo before the flip fires.
    const uint64_t fence = cluster_->catalog().FenceRange(
        rep->table, rep->range, rep->src_partition);
    std::vector<tx::LogRecord> tail;
    size_t bytes = 0;
    for (tx::LogRecord& rec : src->log().Tail(rep->applied_lsn)) {
      if (rec.partition != rep->src_partition) continue;
      if (rec.type != tx::LogRecordType::kInsert &&
          rec.type != tx::LogRecordType::kUpdate &&
          rec.type != tx::LogRecordType::kDelete) {
        continue;
      }
      if (!rep->range.Contains(rec.key)) continue;
      bytes += rec.Bytes();
      rec.partition = rep->replica_partition;
      tail.push_back(std::move(rec));
    }
    SimTime done = now;
    if (!tail.empty()) {
      const SimTime read_done = src->log().ChargeReplayRead(now, bytes);
      const SimTime arrived =
          cluster_->network().Transfer(read_done, dead, rep->host, bytes);
      done = host->hardware().cpu().Acquire(
          arrived, static_cast<SimTime>(tail.size()) *
                       host->costs().cpu_record_write_us);
      const Status applied = host->RedoInto(part, tail);
      if (!applied.ok()) {
        WATTDB_WARN("replica: final catch-up failed for "
                    << Describe(*rep) << ": " << applied.ToString());
        continue;
      }
      rep->records_applied += static_cast<int64_t>(tail.size());
      rep->bytes_shipped += static_cast<int64_t>(bytes);
      replication_bytes_ += static_cast<int64_t>(bytes);
      log_records_shipped_ += static_cast<int64_t>(tail.size());
    }
    rep->applied_lsn = src->log().next_lsn() - 1;

    // State is current as of `done`; the route flips then — between the
    // crash and the flip, serving replicas keep absorbing reads while
    // writes to the range stay unavailable (the honest failover gap).
    const int64_t final_records = static_cast<int64_t>(tail.size());
    std::weak_ptr<ReplicaInfo> weak = rep;
    cluster_->events().ScheduleAt(done, [this, weak, final_records, fence]() {
      auto r = weak.lock();
      if (r == nullptr) return;  // Dropped before the flip (host died too).
      // Conditional on the fence still standing: if the owner reclaimed
      // the range in the meantime (restart + full redo won the race), the
      // flip must not install the standby's older snapshot over it.
      const Status flip = cluster_->catalog().PromoteReplica(
          r->table, r->range, r->replica_partition, fence, r->src_partition);
      if (!flip.ok()) {
        WATTDB_WARN("replica: promotion of " << Describe(*r)
                                             << " refused: "
                                             << flip.ToString());
        return;
      }
      ++replicas_promoted_;
      Emit(cluster::ControlEventType::kReplicaPromoted, r->host,
           Describe(*r) + " is the new owner (final catch-up " +
               std::to_string(final_records) + " records)");
      replicas_.erase(std::remove(replicas_.begin(), replicas_.end(), r),
                      replicas_.end());
    });
    ++promoted;
  }
  return promoted;
}

int ReplicaManager::DropReplicasOn(NodeId node) {
  int dropped = 0;
  const std::vector<std::shared_ptr<ReplicaInfo>> snapshot = replicas_;
  for (const auto& rep : snapshot) {
    if (rep->host == node) {
      DropReplica(rep, "host leaving service");
      ++dropped;
    } else if (rep->src_node == node &&
               rep->state == ReplicaState::kBootstrapping) {
      // The base copy can never finish; there is nothing to promote.
      DropReplica(rep, "source died mid-bootstrap");
    }
  }
  return dropped;
}

void ReplicaManager::DropReplica(const std::shared_ptr<ReplicaInfo>& rep,
                                 const std::string& reason) {
  (void)cluster_->catalog().RemoveReplicaRoute(rep->table,
                                               rep->replica_partition);
  catalog::Partition* part =
      cluster_->catalog().GetPartition(rep->replica_partition);
  if (part != nullptr && rep->replica_segment.valid()) {
    (void)part->DetachSegment(rep->replica_segment);
    cluster::Node* host = cluster_->node(rep->host);
    if (host != nullptr) host->buffer().InvalidateSegment(rep->replica_segment);
    (void)cluster_->segments().Drop(rep->replica_segment);
  }
  const Status drop = cluster_->catalog().DropPartition(rep->replica_partition);
  if (!drop.ok()) {
    WATTDB_WARN("replica: partition " << rep->replica_partition.value()
                                      << " not dropped: " << drop.ToString());
  }
  ++replicas_dropped_;
  Emit(cluster::ControlEventType::kReplicaDropped, rep->host,
       Describe(*rep) + " dropped: " + reason);
  replicas_.erase(std::remove(replicas_.begin(), replicas_.end(), rep),
                  replicas_.end());
}

}  // namespace wattdb::replica
