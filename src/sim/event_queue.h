#ifndef WATTDB_SIM_EVENT_QUEUE_H_
#define WATTDB_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"
#include "sim/clock.h"

namespace wattdb::sim {

/// Discrete-event scheduler driving the cluster simulation. Events are
/// callbacks ordered by (time, insertion sequence); ties are broken by
/// insertion order so that runs are fully deterministic.
class EventQueue {
 public:
  explicit EventQueue(Clock* clock) : clock_(clock) {}

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  using Callback = std::function<void()>;

  /// Schedule `cb` to run at absolute simulated time `when`. Events in the
  /// past are clamped to "now".
  void ScheduleAt(SimTime when, Callback cb);

  /// Schedule `cb` to run `delay` microseconds from now.
  void ScheduleAfter(SimTime delay, Callback cb) {
    ScheduleAt(clock_->Now() + delay, std::move(cb));
  }

  /// Run events until the queue is empty or the next event is after `until`.
  /// The clock is left at `until` (or at the last event time if the queue
  /// drains first and `advance_to_until` is true).
  void RunUntil(SimTime until, bool advance_to_until = true);

  /// Run a single event if one exists; returns false when empty.
  bool RunOne();

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  SimTime NextEventTime() const;

  Clock* clock() { return clock_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Clock* clock_;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace wattdb::sim

#endif  // WATTDB_SIM_EVENT_QUEUE_H_
