#include "sim/resource.h"

#include <algorithm>

#include "common/logging.h"

namespace wattdb::sim {

SimTime Resource::FindSlot(SimTime arrival, SimTime service) const {
  if (service <= 0) return arrival;
  SimTime candidate = arrival;
  // Start from the interval preceding `arrival` (it may cover it).
  auto it = intervals_.upper_bound(arrival);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > candidate) candidate = prev->second;
  }
  for (; it != intervals_.end(); ++it) {
    if (it->first >= candidate + service) break;  // Gap fits.
    if (it->second > candidate) candidate = it->second;
  }
  return candidate;
}

SimTime Resource::Acquire(SimTime arrival, SimTime service) {
  WATTDB_CHECK(service >= 0);
  if (service == 0) return arrival;
  const SimTime start = FindSlot(arrival, service);
  const SimTime end = start + service;
  total_busy_ += service;
  // Insert [start, end), coalescing with neighbors that touch it.
  SimTime lo = start, hi = end;
  auto it = intervals_.upper_bound(start);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second == start) {
      lo = prev->first;
      intervals_.erase(prev);
    }
  }
  it = intervals_.find(end);
  if (it != intervals_.end() && it->first == end) {
    hi = it->second;
    intervals_.erase(it);
  }
  intervals_[lo] = hi;
  return end;
}

SimTime Resource::Peek(SimTime arrival, SimTime service) const {
  return FindSlot(arrival, service) + service;
}

SimTime Resource::Backlog(SimTime now) const {
  // Scheduled busy time after `now`.
  SimTime busy = 0;
  auto it = intervals_.upper_bound(now);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > now) busy += prev->second - now;
  }
  for (; it != intervals_.end(); ++it) busy += it->second - it->first;
  return busy;
}

SimTime Resource::BusyIn(SimTime from, SimTime to) const {
  SimTime busy = 0;
  auto it = intervals_.upper_bound(from);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > from) {
      busy += std::min(prev->second, to) - from;
    }
  }
  for (; it != intervals_.end() && it->first < to; ++it) {
    busy += std::min(it->second, to) - it->first;
  }
  return busy;
}

double Resource::UtilizationIn(SimTime from, SimTime to) const {
  if (to <= from) return 0.0;
  return static_cast<double>(BusyIn(from, to)) / static_cast<double>(to - from);
}

void Resource::Prune(SimTime before) {
  auto it = intervals_.begin();
  while (it != intervals_.end() && it->second <= before) {
    it = intervals_.erase(it);
  }
}

ResourcePool::ResourcePool(std::string name, int count) : name_(std::move(name)) {
  WATTDB_CHECK(count > 0);
  members_.reserve(count);
  for (int i = 0; i < count; ++i) {
    members_.emplace_back(name_ + "#" + std::to_string(i));
  }
}

SimTime ResourcePool::Acquire(SimTime arrival, SimTime service) {
  size_t best = 0;
  SimTime best_done = members_[0].Peek(arrival, service);
  for (size_t i = 1; i < members_.size(); ++i) {
    const SimTime done = members_[i].Peek(arrival, service);
    if (done < best_done) {
      best = i;
      best_done = done;
    }
  }
  return members_[best].Acquire(arrival, service);
}

SimTime ResourcePool::Peek(SimTime arrival, SimTime service) const {
  SimTime best = members_[0].Peek(arrival, service);
  for (size_t i = 1; i < members_.size(); ++i) {
    best = std::min(best, members_[i].Peek(arrival, service));
  }
  return best;
}

SimTime ResourcePool::BusyIn(SimTime from, SimTime to) const {
  SimTime busy = 0;
  for (const auto& m : members_) busy += m.BusyIn(from, to);
  return busy;
}

double ResourcePool::UtilizationIn(SimTime from, SimTime to) const {
  if (to <= from || members_.empty()) return 0.0;
  return static_cast<double>(BusyIn(from, to)) /
         (static_cast<double>(to - from) * members_.size());
}

void ResourcePool::Prune(SimTime before) {
  for (auto& m : members_) m.Prune(before);
}

SimTime ResourcePool::Backlog(SimTime now) const {
  SimTime best = members_[0].Backlog(now);
  for (size_t i = 1; i < members_.size(); ++i) {
    best = std::min(best, members_[i].Backlog(now));
  }
  return best;
}

}  // namespace wattdb::sim
