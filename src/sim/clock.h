#ifndef WATTDB_SIM_CLOCK_H_
#define WATTDB_SIM_CLOCK_H_

#include "common/logging.h"
#include "common/types.h"

namespace wattdb::sim {

/// Virtual simulation clock. Time is in microseconds and only moves forward.
/// All latency, throughput, power, and energy figures in the reproduction
/// are derived from this clock, never from wall time, so every experiment is
/// deterministic and seed-reproducible.
class Clock {
 public:
  SimTime Now() const { return now_; }

  void AdvanceTo(SimTime t) {
    WATTDB_CHECK_MSG(t >= now_, "clock moved backwards: " << t << " < " << now_);
    now_ = t;
  }

  void Reset(SimTime t = 0) { now_ = t; }

 private:
  SimTime now_ = 0;
};

}  // namespace wattdb::sim

#endif  // WATTDB_SIM_CLOCK_H_
