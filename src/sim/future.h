#ifndef WATTDB_SIM_FUTURE_H_
#define WATTDB_SIM_FUTURE_H_

#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace wattdb::sim {

/// Future/Promise pair resolved on the simulation's event loop.
///
/// The simulator executes operations eagerly in wall-clock time while
/// charging their cost to a transaction's private clock, so a "pending"
/// asynchronous operation already knows its value — what the future models
/// is *when in simulated time* that value becomes available. Resolving a
/// promise records the value together with its completion time `ready_at`;
/// continuations attached with Then() are delivered through the EventQueue
/// at that time, which means callbacks across independent futures fire in
/// sim-time order (ties broken by scheduling order), not in issue order.
///
///   Promise<int> p(&events);
///   Future<int> f = p.future();
///   f.Then([](const int& v) { ... });   // runs when the loop reaches t
///   p.ResolveAt(t, 42);
///   events.RunUntil(horizon);
///
/// Futures are cheap shared handles; copying one shares the same state.
template <typename T>
class Future;

namespace detail {

template <typename T>
struct FutureState {
  EventQueue* events = nullptr;  ///< Null only for MakeReady futures.
  bool resolved = false;
  SimTime ready_at = 0;
  std::optional<T> value;
  std::vector<std::function<void(const T&)>> pending;
};

/// Hand `cb` the resolved value through the event loop (inline when the
/// state has no loop — the MakeReady error path).
template <typename T>
void Deliver(const std::shared_ptr<FutureState<T>>& state,
             std::function<void(const T&)> cb) {
  if (state->events == nullptr) {
    cb(*state->value);
    return;
  }
  // ScheduleAt clamps past times to "now", so late subscribers still get
  // called — just at the current simulated time instead of ready_at.
  state->events->ScheduleAt(state->ready_at,
                            [state, cb = std::move(cb)]() { cb(*state->value); });
}

}  // namespace detail

template <typename T>
class Promise {
 public:
  /// A promise resolving on `events`; pass null only via Future::MakeReady.
  explicit Promise(EventQueue* events)
      : state_(std::make_shared<detail::FutureState<T>>()) {
    state_->events = events;
  }

  Future<T> future() const { return Future<T>(state_); }

  /// Record the value and its simulated completion time; schedules every
  /// continuation attached so far. A promise resolves exactly once.
  void ResolveAt(SimTime when, T value) {
    WATTDB_CHECK_MSG(!state_->resolved, "promise resolved twice");
    state_->resolved = true;
    state_->ready_at = when;
    state_->value.emplace(std::move(value));
    std::vector<std::function<void(const T&)>> pending;
    pending.swap(state_->pending);
    for (auto& cb : pending) detail::Deliver(state_, std::move(cb));
  }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

template <typename T>
class Future {
 public:
  /// An already-resolved future with no event loop: its continuations run
  /// inline. Used for error results of async calls on dead handles.
  static Future<T> MakeReady(T value, SimTime at = 0) {
    Promise<T> p(nullptr);
    p.ResolveAt(at, std::move(value));
    return p.future();
  }

  /// The producer has resolved the future (the value exists; continuations
  /// may still be in flight on the event loop until `ready_at`).
  bool resolved() const { return state_->resolved; }

  /// Simulated time the value became available. Valid once resolved().
  SimTime ready_at() const {
    WATTDB_CHECK_MSG(state_->resolved, "ready_at() on unresolved future");
    return state_->ready_at;
  }

  const T& value() const {
    WATTDB_CHECK_MSG(state_->resolved, "value() on unresolved future");
    return *state_->value;
  }

  /// Attach a continuation delivered through the event loop at ready_at
  /// (or at the current simulated time when attached after the fact).
  void Then(std::function<void(const T&)> cb) {
    if (state_->resolved) {
      detail::Deliver(state_, std::move(cb));
    } else {
      state_->pending.push_back(std::move(cb));
    }
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<detail::FutureState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::FutureState<T>> state_;
};

}  // namespace wattdb::sim

#endif  // WATTDB_SIM_FUTURE_H_
