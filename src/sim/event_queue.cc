#include "sim/event_queue.h"

#include <limits>

namespace wattdb::sim {

void EventQueue::ScheduleAt(SimTime when, Callback cb) {
  if (when < clock_->Now()) when = clock_->Now();
  heap_.push(Event{when, next_seq_++, std::move(cb)});
}

bool EventQueue::RunOne() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because we pop immediately after.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  clock_->AdvanceTo(ev.when);
  ev.cb();
  return true;
}

void EventQueue::RunUntil(SimTime until, bool advance_to_until) {
  while (!heap_.empty() && heap_.top().when <= until) {
    RunOne();
  }
  if (advance_to_until && clock_->Now() < until) {
    clock_->AdvanceTo(until);
  }
}

SimTime EventQueue::NextEventTime() const {
  if (heap_.empty()) return std::numeric_limits<SimTime>::max();
  return heap_.top().when;
}

}  // namespace wattdb::sim
