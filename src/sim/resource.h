#ifndef WATTDB_SIM_RESOURCE_H_
#define WATTDB_SIM_RESOURCE_H_

#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace wattdb::sim {

/// A serially-used hardware resource (disk arm, NIC link, CPU core) modeled
/// as a timeline of busy intervals. A request arriving at `arrival` with
/// service time `service` is placed into the earliest gap of length
/// `service` that starts at or after `arrival`.
///
/// Gap-filling matters because requests do NOT arrive in chronological
/// order: each simulated transaction carries its own clock and may reserve
/// resource time "in the future", while a transaction whose event fires
/// later may need the resource at an earlier instant. First-fit gap
/// allocation keeps the model deterministic and close to FCFS without the
/// false serialization a single `free_at` cursor would impose.
///
/// Busy intervals are retained (and pruned on demand) so callers can sample
/// windowed utilization, which feeds the power model.
class Resource {
 public:
  explicit Resource(std::string name = "") : name_(std::move(name)) {}

  /// Reserve `service` us starting no earlier than `arrival`. Returns the
  /// completion time.
  SimTime Acquire(SimTime arrival, SimTime service);

  /// Completion time a request would see, without reserving.
  SimTime Peek(SimTime arrival, SimTime service) const;

  /// End of the last scheduled interval (0 when idle).
  SimTime LastBusyEnd() const {
    return intervals_.empty() ? 0 : intervals_.rbegin()->second;
  }

  /// Outstanding scheduled work beyond `now` (load heuristic).
  SimTime Backlog(SimTime now) const;

  /// Busy microseconds inside the window [from, to).
  SimTime BusyIn(SimTime from, SimTime to) const;

  /// Fraction of [from, to) the resource was busy.
  double UtilizationIn(SimTime from, SimTime to) const;

  /// Drop interval bookkeeping that ends at or before `before`.
  void Prune(SimTime before);

  /// Total busy time ever scheduled.
  SimTime TotalBusy() const { return total_busy_; }

  const std::string& name() const { return name_; }

 private:
  /// Find the first gap of >= `service` at/after `arrival`; returns start.
  SimTime FindSlot(SimTime arrival, SimTime service) const;

  std::string name_;
  SimTime total_busy_ = 0;
  /// start -> end, non-overlapping, coalesced where adjacent.
  std::map<SimTime, SimTime> intervals_;
};

/// A pool of `k` identical resources (e.g. CPU cores). Requests are routed
/// to the member that can complete them first.
class ResourcePool {
 public:
  ResourcePool(std::string name, int count);

  SimTime Acquire(SimTime arrival, SimTime service);
  SimTime Peek(SimTime arrival, SimTime service) const;

  SimTime BusyIn(SimTime from, SimTime to) const;
  double UtilizationIn(SimTime from, SimTime to) const;
  void Prune(SimTime before);

  /// Outstanding work beyond `now` on the least-loaded member.
  SimTime Backlog(SimTime now) const;

  int size() const { return static_cast<int>(members_.size()); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::vector<Resource> members_;
};

}  // namespace wattdb::sim

#endif  // WATTDB_SIM_RESOURCE_H_
