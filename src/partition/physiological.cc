#include "partition/physiological.h"

#include <algorithm>

#include "common/logging.h"

namespace wattdb::partition {

SimTime PhysiologicalPartitioning::EstimateCopyUs(size_t bytes) const {
  // Pipeline estimate: each chunk pays read + ship + write sequentially.
  const double disk_bw = 100e6;  // Conservative HDD-class floor.
  const double net_bw = cluster_->network().spec().link_bandwidth_bps;
  const double secs = static_cast<double>(bytes) *
                      (1.0 / disk_bw + 1.0 / net_bw + 1.0 / disk_bw);
  const size_t chunks = bytes / config_.copy_chunk_bytes + 1;
  return FromSeconds(secs) +
         static_cast<SimTime>(chunks) *
             cluster_->network().spec().message_latency_us;
}

void PhysiologicalPartitioning::ExecuteTask(const MoveTask& task,
                                            std::function<void()> next) {
  auto& cat = cluster_->catalog();
  catalog::Partition* src = cat.GetPartition(task.src_partition);
  storage::Segment* seg = cluster_->segments().Get(task.segment);
  if (src == nullptr || seg == nullptr ||
      src->top_index().RangeOf(task.segment).Empty()) {
    // Segment already moved or dropped; skip.
    next();
    return;
  }
  if (!cluster_->node(task.src_node)->IsActive() ||
      !cluster_->node(task.dst_node)->IsActive()) {
    // An endpoint died between planning and execution: abandon before
    // registering anything with the master.
    ++stats_.tasks_failed;
    next();
    return;
  }
  if (!SourceOwnsRoute(task)) {
    // The route moved on since planning (a standby was promoted over the
    // source): installing this copy would resurrect pre-promotion state.
    ++stats_.tasks_failed;
    WATTDB_INFO("migration: move of segment "
                << task.segment.value()
                << " abandoned (source no longer owns the route)");
    next();
    return;
  }
  const PartitionId dst_id = DstPartitionFor(task.table, task.dst_node, task.range.lo);
  catalog::Partition* dst = cat.GetPartition(dst_id);
  WATTDB_CHECK(dst != nullptr);
  if (!EvictStaleDstCopies(dst, task)) {
    // The reused destination still serves part of the colliding range:
    // nothing here can be dropped safely, so the move is abandoned.
    ++stats_.tasks_failed;
    WATTDB_INFO("migration: move of segment "
                << task.segment.value()
                << " abandoned (destination holds live colliding segments)");
    next();
    return;
  }

  // (1) Master: two-pointer routing entry; source forwards stragglers.
  WATTDB_CHECK(cat.BeginMove(task.table, task.range, dst_id).ok());
  src->set_forward_to(dst_id);

  // (2) Read lock on the source partition: waits for in-flight writers to
  // commit ("updating transactions need to commit before the lock is
  // granted", §4.3); MVCC readers are unaffected.
  tx::Txn* sys = cluster_->tm().Begin(cluster_->Now(), /*read_only=*/false,
                                      /*system=*/true);
  // Lock-hold fidelity: the cost stream below may represent cost_scale
  // paper-scale segments, but the paper locks one 32 MB segment's partition
  // at a time — so this partition's writers are drained for one *real*
  // segment copy, while the scaled stream keeps the hardware busy for the
  // full data volume.
  const SimTime lock_window = EstimateCopyUs(seg->DiskBytes());
  const tx::LockGrant grant = cluster_->tm().locks().Acquire(
      tx::LockResource::Partition(task.src_partition), tx::LockMode::kS,
      sys->id, sys->now, sys->now + lock_window);
  sys->lock_wait_us += grant.waited_us;
  sys->AdvanceTo(grant.granted_at);
  // Release (settle) the partition read lock after the real copy window.
  const TxnId sys_id = sys->id;
  cluster_->events().ScheduleAt(
      grant.granted_at + lock_window, [this, sys_id]() {
        tx::Txn* sys = cluster_->tm().Get(sys_id);
        if (sys == nullptr) return;
        sys->AdvanceTo(cluster_->Now());
        cluster_->tm().Commit(sys);
        cluster_->tm().Release(sys_id);
      });
  cluster_->events().ScheduleAt(grant.granted_at, [this, task, dst_id, sys_id,
                                                   next = std::move(next)]() {
    storage::Segment* seg = cluster_->segments().Get(task.segment);
    WATTDB_CHECK(seg != nullptr);
    // (3) Stream the segment (pages + its local PK index go verbatim).
    StreamBytes(task.segment, task.src_node, task.dst_node, seg->DiskBytes(),
                [this, task, dst_id, sys_id,
                 next = std::move(next)](hw::Disk* dst_disk) {
                  auto& cat = cluster_->catalog();
                  catalog::Partition* src = cat.GetPartition(task.src_partition);
                  catalog::Partition* dst = cat.GetPartition(dst_id);
                  storage::Segment* seg = cluster_->segments().Get(task.segment);
                  const SimTime now = cluster_->Now();

                  if (dst_disk == nullptr) {
                    // Source or target crashed mid-copy. Nothing installed:
                    // the segment (and every committed record in it) is
                    // still wholly at the source, so the move is simply
                    // rolled off the master's books (§4.3 two-pointer entry
                    // removed) and the source partition reopens to writers.
                    WATTDB_CHECK(
                        cat.AbortMove(task.table, task.range, dst_id).ok());
                    if (src != nullptr) {
                      src->set_forward_to(PartitionId::Invalid());
                      src->set_state(catalog::PartitionState::kNormal);
                    }
                    ++stats_.tasks_failed;
                    WATTDB_INFO("migration: move of segment "
                                << task.segment.value()
                                << " aborted (endpoint crashed)");
                    next();
                    return;
                  }

                  // (4) Install: only the two top indexes change (§4.3 —
                  // "moving a segment ... does not invalidate the
                  // primary-key index of the segment").
                  WATTDB_CHECK(src->DetachSegment(task.segment).ok());
                  WATTDB_CHECK(dst->AttachSegment(task.range, task.segment).ok());
                  WATTDB_CHECK(cluster_->segments()
                                   .Relocate(task.segment, task.dst_node,
                                             dst_disk->id())
                                   .ok());
                  cluster_->node(task.src_node)
                      ->buffer()
                      .InvalidateSegment(task.segment);

                  // Checkpoint records on both logs: the move acts as a
                  // checkpoint, the old log becomes obsolete for this data.
                  tx::LogRecord ckpt;
                  ckpt.type = tx::LogRecordType::kCheckpoint;
                  ckpt.partition = task.src_partition;
                  cluster_->node(task.src_node)->log().Append(now, ckpt);
                  ckpt.partition = dst_id;
                  cluster_->node(task.dst_node)->log().Append(now, ckpt);

                  // (5) Master flips routing (the partition read lock was
                  // settled at the end of its per-segment window).
                  WATTDB_CHECK(
                      cat.CompleteMove(task.table, task.range, dst_id).ok());

                  // Forwarding grace window for old readers (§4.3).
                  src->set_state(catalog::PartitionState::kForwarding);
                  const PartitionId src_id = task.src_partition;
                  cluster_->events().ScheduleAfter(
                      config_.forward_window, [this, src_id]() {
                        catalog::Partition* p =
                            cluster_->catalog().GetPartition(src_id);
                        if (p != nullptr &&
                            p->state() == catalog::PartitionState::kForwarding) {
                          p->set_state(catalog::PartitionState::kNormal);
                          p->set_forward_to(PartitionId::Invalid());
                        }
                      });

                  ++stats_.segments_moved;
                  stats_.records_moved +=
                      static_cast<int64_t>(seg->record_count());
                  next();
                });
  });
}

}  // namespace wattdb::partition
