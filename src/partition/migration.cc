#include "partition/migration.h"

#include <algorithm>

#include "common/logging.h"

namespace wattdb::partition {

MigrationManagerBase::MigrationManagerBase(cluster::Cluster* cluster,
                                           MigrationConfig config)
    : cluster_(cluster), config_(config) {}

namespace {

/// True when `node` hosts a warm replica overlapping `range` of `table`.
/// Landing the authoritative copy next to its own standby silently halves
/// the replica's fan-out benefit until the ReplicaManager re-places it, so
/// rebalance planning treats such nodes as ineligible destinations.
bool HostsReplicaOf(cluster::Cluster* cluster, TableId table,
                    const KeyRange& range, NodeId node) {
  for (const auto& rr : cluster->catalog().ReplicaRoutes(table)) {
    if (!rr.range.Overlaps(range)) continue;
    const catalog::Partition* p = cluster->catalog().GetPartition(rr.partition);
    if (p != nullptr && p->owner() == node) return true;
  }
  return false;
}

}  // namespace

std::vector<MigrationManagerBase::MoveTask>
MigrationManagerBase::PlanRebalance(const std::vector<NodeId>& targets,
                                    double fraction) {
  std::vector<MoveTask> tasks;
  size_t rr = 0;  // Round-robin cursor over targets.
  for (TableId table : cluster_->catalog().Tables()) {
    if (config_.only_table.valid() && table != config_.only_table) continue;
    // Pool every candidate segment of the table across all source
    // partitions, so the fraction applies table-wide even when individual
    // partitions hold very few segments.
    struct Candidate {
      catalog::Partition* part;
      index::TopIndex::Entry entry;
    };
    std::vector<Candidate> pool;
    for (catalog::Partition* part : cluster_->catalog().PartitionsOf(table)) {
      // Warm standbys are not migration sources: their data is a bounded-
      // stale copy the ReplicaManager re-places itself.
      if (part->is_replica()) continue;
      // Never pull data off the targets themselves.
      if (std::find(targets.begin(), targets.end(), part->owner()) !=
          targets.end()) {
        continue;
      }
      for (const auto& e : part->top_index().All()) {
        pool.push_back({part, e});
      }
    }
    if (pool.empty()) continue;
    const size_t to_move = std::max<size_t>(
        pool.size() >= 2 ? 1 : 0,
        static_cast<size_t>(static_cast<double>(pool.size()) * fraction +
                            0.5));
    if (to_move == 0) continue;
    // Interleave: move every (n/to_move)-th segment so retained and moved
    // key ranges alternate across the key space.
    const double stride =
        static_cast<double>(pool.size()) / static_cast<double>(to_move);
    double cursor = stride - 1.0;
    for (size_t k = 0; k < to_move; ++k) {
      const size_t idx =
          std::min(pool.size() - 1, static_cast<size_t>(cursor + 0.5));
      cursor += stride;
      const Candidate& c = pool[idx];
      // Replica anti-affinity: starting at the round-robin cursor, take the
      // first target NOT already hosting a replica of this segment's range.
      // If every target hosts one, the segment stays put this round rather
      // than degrade a standby to a same-node copy.
      NodeId dst = NodeId::Invalid();
      for (size_t probe = 0; probe < targets.size(); ++probe) {
        const NodeId cand = targets[(rr + probe) % targets.size()];
        if (HostsReplicaOf(cluster_, table, c.entry.range, cand)) continue;
        dst = cand;
        rr = (rr + probe + 1) % targets.size();
        break;
      }
      if (!dst.valid()) continue;
      MoveTask t;
      t.table = table;
      t.segment = c.entry.segment;
      t.range = c.entry.range;
      t.src_partition = c.part->id();
      t.src_node = c.part->owner();
      t.dst_node = dst;
      t.dst_partition = PartitionId::Invalid();  // Resolved at execution.
      tasks.push_back(t);
    }
  }
  return tasks;
}

std::vector<NodeId> MigrationManagerBase::DrainSurvivors(NodeId victim) const {
  std::vector<NodeId> survivors;
  for (cluster::Node* n : cluster_->ActiveNodes()) {
    if (n->id() == victim) continue;
    if (cluster_->IsPartitioned(n->id())) continue;
    survivors.push_back(n->id());
  }
  return survivors;
}

std::vector<MigrationManagerBase::MoveTask> MigrationManagerBase::PlanDrain(
    NodeId victim) {
  std::vector<MoveTask> tasks;
  const std::vector<NodeId> survivors = DrainSurvivors(victim);
  if (survivors.empty()) return tasks;
  size_t rr = 0;
  for (catalog::Partition* part :
       cluster_->catalog().PartitionsOwnedBy(victim)) {
    // Replica partitions are never drained: the master drops them outright
    // (DropReplicasOn) before the drain starts — copying a stale standby to
    // a survivor would be wasted bytes.
    if (part->is_replica()) continue;
    for (const auto& e : part->top_index().All()) {
      MoveTask t;
      t.table = part->table();
      t.segment = e.segment;
      t.range = e.range;
      t.src_partition = part->id();
      t.src_node = victim;
      t.dst_node = survivors[rr++ % survivors.size()];
      t.dst_partition = PartitionId::Invalid();
      tasks.push_back(t);
    }
  }
  return tasks;
}

PartitionId MigrationManagerBase::DstPartitionFor(TableId table, NodeId node,
                                                  Key range_lo) {
  const DstKey key{(static_cast<uint64_t>(table.value()) << 32) | node.value(),
                   range_lo};
  auto it = dst_partitions_.find(key);
  if (it != dst_partitions_.end()) {
    // Reuse only if the partition still exists and is owned by `node`.
    catalog::Partition* p = cluster_->catalog().GetPartition(it->second);
    if (p != nullptr && p->owner() == node) return it->second;
  }
  catalog::Partition* fresh = cluster_->catalog().CreatePartition(table, node);
  dst_partitions_[key] = fresh->id();
  return fresh->id();
}

Status MigrationManagerBase::StartRebalance(const std::vector<NodeId>& targets,
                                            double fraction,
                                            std::function<void()> done) {
  if (stats_.running) return Status::Busy("migration already running");
  if (targets.empty() || fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("bad rebalance parameters");
  }
  for (NodeId t : targets) {
    cluster::Node* n = cluster_->node(t);
    if (n == nullptr) {
      return Status::NotFound("no such target node " +
                              std::to_string(t.value()));
    }
    if (!n->IsActive()) {
      return Status::Unavailable("target node not active");
    }
  }
  StartTasks(PlanRebalance(targets, fraction), std::move(done));
  return Status::OK();
}

Status MigrationManagerBase::StartMoves(
    const std::vector<cluster::SegmentMove>& moves,
    std::function<void()> done) {
  if (stats_.running) return Status::Busy("migration already running");
  if (!TransfersOwnership()) {
    return Status::NotSupported(
        name() + " cannot transfer ownership; targeted moves impossible");
  }
  if (moves.empty()) {
    return Status::InvalidArgument("no moves to execute");
  }
  std::vector<MoveTask> tasks;
  tasks.reserve(moves.size());
  for (const cluster::SegmentMove& m : moves) {
    catalog::Partition* src = cluster_->catalog().GetPartition(m.src_partition);
    if (src == nullptr || src->owner() != m.src_node) {
      return Status::InvalidArgument(
          "move source partition " + std::to_string(m.src_partition.value()) +
          " is not owned by node " + std::to_string(m.src_node.value()));
    }
    cluster::Node* dst = cluster_->node(m.dst_node);
    if (dst == nullptr || !dst->IsActive()) {
      return Status::Unavailable("move target node " +
                                 std::to_string(m.dst_node.value()) +
                                 " is not active");
    }
    MoveTask t;
    t.table = m.table;
    t.segment = m.segment;
    t.range = m.range;
    t.src_partition = m.src_partition;
    t.src_node = m.src_node;
    t.dst_node = m.dst_node;
    t.dst_partition = PartitionId::Invalid();  // Resolved at execution.
    tasks.push_back(t);
  }
  StartTasks(std::move(tasks), std::move(done));
  return Status::OK();
}

Status MigrationManagerBase::Drain(NodeId victim, std::function<void()> done) {
  if (stats_.running) return Status::Busy("migration already running");
  if (!TransfersOwnership()) {
    return Status::NotSupported(
        "physical partitioning cannot transfer ownership; scale-in "
        "impossible (paper §5.2)");
  }
  StartDrainAttempt(victim, 0, std::move(done));
  return Status::OK();
}

void MigrationManagerBase::StartDrainAttempt(NodeId victim, int attempt,
                                             std::function<void()> done) {
  constexpr int kMaxDrainAttempts = 3;
  drain_victim_ = victim;
  std::vector<MoveTask> plan = PlanDrain(victim);
  // Retry only when this round had work to do: an empty plan with data
  // left behind means no survivors exist, and another round cannot help.
  const bool planned_any = !plan.empty();
  auto cleanup = [this, victim, attempt, planned_any,
                  done = std::move(done)]() mutable {
    cluster::Node* v = cluster_->node(victim);
    const bool remains = !cluster_->segments().SegmentsOn(victim).empty();
    if (remains && planned_any && v != nullptr && v->IsActive() &&
        attempt + 1 < kMaxDrainAttempts) {
      WATTDB_INFO("drain: node " << victim.value()
                                 << " still holds segments, re-planning "
                                 << "(attempt " << attempt + 2 << ")");
      StartDrainAttempt(victim, attempt + 1, std::move(done));
      return;
    }
    drain_victim_ = NodeId::Invalid();
    // The victim is empty (or unsalvageable): drop its now segment-less
    // partitions so the node can power off (§3.4 scale-in protocol).
    for (catalog::Partition* p :
         cluster_->catalog().PartitionsOwnedBy(victim)) {
      if (p->segment_count() == 0) {
        (void)cluster_->catalog().DropPartition(p->id());
      }
    }
    if (done) done();
  };
  StartTasks(std::move(plan), std::move(cleanup));
}

void MigrationManagerBase::StartTasks(std::vector<MoveTask> tasks,
                                      std::function<void()> done) {
  stats_ = MigrationStats{};
  stats_.running = true;
  stats_.started_at = cluster_->Now();
  stats_.tasks_planned = static_cast<int64_t>(tasks.size());
  done_ = std::move(done);
  queue_.assign(tasks.begin(), tasks.end());
  WATTDB_INFO("migration: " << queue_.size() << " move tasks planned");
  RunNextTask();
}

bool MigrationManagerBase::SourceOwnsRoute(const MoveTask& task) const {
  const auto covering =
      cluster_->catalog().RoutesInRange(task.table, task.range);
  if (covering.empty()) return false;
  for (const auto& entry : covering) {
    if (entry.primary != task.src_partition) return false;
  }
  return true;
}

bool MigrationManagerBase::EvictStaleDstCopies(catalog::Partition* dst,
                                               const MoveTask& task) {
  // Precondition: SourceOwnsRoute(task) held — the catalog routes every
  // entry of task.range to the source, so a segment of dst intersecting
  // that range is a leftover copy: dst owned the range once (e.g. before a
  // promotion deposed it while partitioned) and was never reconciled.
  // Drop such copies so the incoming segment can attach. A leftover that
  // also backs a range dst still legitimately serves cannot be dropped —
  // refuse the install instead.
  const auto stale = dst->SegmentsInRange(task.range);
  for (const auto& entry : stale) {
    for (const auto& route :
         cluster_->catalog().RoutesInRange(task.table, entry.range)) {
      if (route.primary == dst->id() || route.secondary == dst->id()) {
        return false;
      }
    }
  }
  for (const auto& entry : stale) {
    WATTDB_CHECK(dst->DetachSegment(entry.segment).ok());
    cluster_->node(task.dst_node)->buffer().InvalidateSegment(entry.segment);
    WATTDB_CHECK(cluster_->segments().Drop(entry.segment).ok());
    WATTDB_INFO("migration: dropped stale segment "
                << entry.segment.value() << " from deposed partition "
                << dst->id().value() << " before reuse");
  }
  return true;
}

void MigrationManagerBase::OnNodeFailure(NodeId down) {
  if (!stats_.running) return;
  // Mid-drain, a task whose *destination* died still has a live source
  // (the drain victim): abandoning it would strand that data on the victim
  // until the end-of-drain re-plan or the master's next control tick.
  // Re-target such tasks onto the survivors still standing instead.
  std::vector<NodeId> survivors;
  if (drain_victim_.valid() && drain_victim_ != down) {
    survivors = DrainSurvivors(drain_victim_);
    survivors.erase(std::remove(survivors.begin(), survivors.end(), down),
                    survivors.end());
  }
  size_t dropped = 0;
  size_t replanned = 0;
  size_t rr = 0;
  std::deque<MoveTask> kept;
  for (MoveTask& t : queue_) {
    if (t.src_node != down && t.dst_node != down) {
      kept.push_back(t);
      continue;
    }
    if (t.src_node == drain_victim_ && t.dst_node == down &&
        !survivors.empty()) {
      t.dst_node = survivors[rr++ % survivors.size()];
      t.dst_partition = PartitionId::Invalid();  // Resolved at execution.
      ++replanned;
      kept.push_back(t);
      continue;
    }
    ++dropped;
  }
  queue_.swap(kept);
  stats_.tasks_failed += static_cast<int64_t>(dropped);
  stats_.tasks_replanned += static_cast<int64_t>(replanned);
  if (dropped > 0 || replanned > 0) {
    WATTDB_INFO("migration: node " << down.value() << " failed, abandoning "
                                   << dropped << " and re-targeting "
                                   << replanned << " queued task(s)");
  }
  // The in-flight task (if any) aborts itself at the next chunk boundary
  // and pulls the next task, which keeps the queue draining to FinishAll.
}

void MigrationManagerBase::RunNextTask() {
  if (queue_.empty()) {
    FinishAll();
    return;
  }
  const MoveTask task = queue_.front();
  queue_.pop_front();
  ExecuteTask(task, [this]() { RunNextTask(); });
}

void MigrationManagerBase::FinishAll() {
  stats_.running = false;
  stats_.finished_at = cluster_->Now();
  WATTDB_INFO("migration finished at t=" << ToSeconds(stats_.finished_at)
                                         << "s, segments="
                                         << stats_.segments_moved);
  if (done_) {
    auto cb = std::move(done_);
    done_ = nullptr;
    cb();
  }
}

void MigrationManagerBase::StreamBytes(
    SegmentId seg, NodeId src, NodeId dst, size_t bytes,
    std::function<void(hw::Disk* dst_disk)> done) {
  const size_t scaled =
      static_cast<size_t>(static_cast<double>(bytes) * config_.cost_scale);
  cluster::Node* src_node = cluster_->node(src);
  cluster::Node* dst_node = cluster_->node(dst);
  hw::Disk* dst_disk = dst_node->DataDisk(cluster_->Now());
  storage::Segment* segment = cluster_->segments().Get(seg);
  hw::Disk* src_disk =
      segment != nullptr ? cluster_->FindDisk(segment->disk()) : nullptr;
  WATTDB_CHECK(src_disk != nullptr);

  src_node->buffer().AddMaintenancePins(config_.pin_pages_per_stream);
  dst_node->buffer().AddMaintenancePins(config_.pin_pages_per_stream);
  stats_.bytes_shipped += static_cast<int64_t>(scaled);

  auto remaining = std::make_shared<size_t>(scaled);
  auto step = std::make_shared<std::function<void()>>();
  // The closure captures itself only weakly; the strong reference lives in
  // the scheduled event. Otherwise step -> closure -> step never frees and
  // every stream leaks its captures (ASan).
  std::weak_ptr<std::function<void()>> weak_step = step;
  *step = [this, remaining, weak_step, src, dst, src_disk, dst_disk, src_node,
           dst_node, done = std::move(done)]() {
    if (!src_node->IsActive() || !dst_node->IsActive()) {
      // An endpoint crashed mid-copy: abandon the stream. The chunks
      // already shipped are wasted work (they stay in bytes_shipped); the
      // caller sees nullptr and must leave the segment at the source.
      src_node->buffer().ReleaseMaintenancePins(config_.pin_pages_per_stream);
      dst_node->buffer().ReleaseMaintenancePins(config_.pin_pages_per_stream);
      done(nullptr);
      return;
    }
    if (*remaining == 0) {
      src_node->buffer().ReleaseMaintenancePins(config_.pin_pages_per_stream);
      dst_node->buffer().ReleaseMaintenancePins(config_.pin_pages_per_stream);
      done(dst_disk);
      return;
    }
    const size_t chunk = std::min(*remaining, config_.copy_chunk_bytes);
    *remaining -= chunk;
    const SimTime now = cluster_->Now();
    // Pipeline one chunk: sequential read, ship, sequential write.
    const SimTime read_done = src_disk->AccessSequential(now, chunk);
    const SimTime shipped =
        cluster_->network().Transfer(read_done, src, dst, chunk);
    const SimTime written = dst_disk->AccessSequential(shipped, chunk);
    cluster_->events().ScheduleAt(written, [step = weak_step.lock()]() {
      if (step != nullptr) (*step)();
    });
  };
  (*step)();
}

}  // namespace wattdb::partition
