#ifndef WATTDB_PARTITION_MIGRATION_H_
#define WATTDB_PARTITION_MIGRATION_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/master.h"
#include "common/status.h"
#include "common/types.h"

namespace wattdb::partition {

/// Tuning knobs common to all repartitioning schemes.
struct MigrationConfig {
  /// Copy streaming granularity: one event-loop step ships this many bytes
  /// (disk read -> network -> disk write), so queries interleave with the
  /// copy instead of stalling behind one giant transfer.
  size_t copy_chunk_bytes = 4 * 1024 * 1024;

  /// Records moved per logical-migration batch (one system transaction).
  size_t logical_batch_records = 256;

  /// Cost scale-up: every materialized byte/record stands for `cost_scale`
  /// paper-scale bytes/records. The benches use this to reproduce the
  /// paper's SF-1000 (~200 GB) migration durations with a smaller
  /// materialized database; hardware resources are kept busy accordingly.
  double cost_scale = 1.0;

  /// How long the source keeps forwarding after a move (old readers drain).
  SimTime forward_window = 5 * kUsPerSec;

  /// Pages pinned per in-flight copy stream (drives buffer-latch contention
  /// while rebalancing, Fig. 7).
  int64_t pin_pages_per_stream = 512;

  /// Restrict rebalancing to one table (invalid = all tables). The Fig. 3
  /// micro-benchmark moves only the table its workload hammers.
  TableId only_table;
};

/// Progress counters exposed to benches and tests. The struct itself lives
/// on the Repartitioner interface (cluster::RebalanceStats) so that callers
/// holding only the abstract scheme can still read progress.
using MigrationStats = cluster::RebalanceStats;

/// Base class of the three schemes: owns the task queue, the chunked copy
/// machinery, and the plan that selects which segments/ranges leave which
/// source partitions. Subclasses decide what a "move" means.
class MigrationManagerBase : public cluster::Repartitioner {
 public:
  MigrationManagerBase(cluster::Cluster* cluster, MigrationConfig config);

  Status StartRebalance(const std::vector<NodeId>& targets, double fraction,
                        std::function<void()> done) override;
  Status Drain(NodeId victim, std::function<void()> done) override;
  /// Targeted moves (the master's heat balancer): each entry becomes one
  /// MoveTask on the shared queue, so §4.3 two-pointer safety, chunked
  /// streaming, and crash abandonment apply unchanged.
  Status StartMoves(const std::vector<cluster::SegmentMove>& moves,
                    std::function<void()> done) override;
  bool SupportsDrain() const override { return TransfersOwnership(); }
  bool InProgress() const override { return stats_.running; }

  /// Crash notification: queued tasks whose source or target is `down` are
  /// abandoned (counted in stats().tasks_failed); the in-flight copy, if
  /// any, aborts at its next chunk boundary via the liveness check in
  /// StreamBytes. The rebalance still completes (and fires `done`) with
  /// whatever tasks survived.
  void OnNodeFailure(NodeId down) override;

  const MigrationStats& stats() const override { return stats_; }
  const MigrationConfig& config() const { return config_; }

 protected:
  /// One planned unit of movement: a segment (and its key range) leaving a
  /// source partition for a target node/partition.
  struct MoveTask {
    TableId table;
    SegmentId segment;
    KeyRange range;
    PartitionId src_partition;
    NodeId src_node;
    PartitionId dst_partition;  ///< Invalid for physical moves.
    NodeId dst_node;
  };

  /// Subclass hook: execute one task, then call `next()` (possibly from a
  /// deferred event) to pull the next task.
  virtual void ExecuteTask(const MoveTask& task, std::function<void()> next) = 0;

  /// Whether this scheme transfers ownership (false only for physical).
  virtual bool TransfersOwnership() const = 0;

  /// Build the task list for moving `fraction` of each table away from its
  /// current owners onto `targets`. Picks segments round-robin across the
  /// key order so moved ranges interleave with retained ones.
  std::vector<MoveTask> PlanRebalance(const std::vector<NodeId>& targets,
                                      double fraction);
  /// Task list that empties `victim`.
  std::vector<MoveTask> PlanDrain(NodeId victim);
  /// Nodes a drain of `victim` may ship data to: active, not the victim,
  /// and not partitioned from the master. A partitioned node's data path
  /// is alive (it is still "active"), but the master has declared it dead
  /// and a promotion may depose it at any moment — shipping drain data
  /// there wedges the drain until the next control tick re-plans it.
  std::vector<NodeId> DrainSurvivors(NodeId victim) const;

  /// Whether `task`'s source partition is still the routed primary of every
  /// entry covering its range. A plan goes stale between planning and
  /// execution: a promotion can depose the source (owner partitioned from
  /// the master or crashed) and re-point the route at a standby — completing
  /// such a move would install the deposed owner's stale segment copy over
  /// the promoted one, silently dropping every write the new owner has
  /// committed since. Ownership-transferring schemes must check this before
  /// BeginMove and abandon the task when it fails.
  bool SourceOwnsRoute(const MoveTask& task) const;

  /// Drop any segments of `dst` that intersect `task.range` but are no
  /// longer routed to it. Valid only after SourceOwnsRoute(task) held: the
  /// route names the source, so such segments are stale copies left behind
  /// when `dst` was deposed (promotion while its node was partitioned) and
  /// never reconciled. Returns false — install must be abandoned — when a
  /// stale segment also backs a range `dst` still legitimately serves.
  bool EvictStaleDstCopies(catalog::Partition* dst, const MoveTask& task);

  /// Destination partition for moving `range` of `table` onto `node`,
  /// created on first use. Keyed by the range start so that warehouse-
  /// grained source partitions map to equally fine target partitions
  /// (preserving the §4.3 lock granularity after the move).
  PartitionId DstPartitionFor(TableId table, NodeId node, Key range_lo);

  /// Chunked byte shipping: schedules events that stream
  /// `bytes * cost_scale` from src disk through the network to a dst disk,
  /// then invokes `done` at the completion time. Maintenance pins are held
  /// on both buffer managers while streaming. If either endpoint crashes
  /// mid-stream, the copy aborts at the next chunk boundary and `done`
  /// receives nullptr — the caller must not install the move.
  void StreamBytes(SegmentId seg, NodeId src, NodeId dst, size_t bytes,
                   std::function<void(hw::Disk* dst_disk)> done);

  void StartTasks(std::vector<MoveTask> tasks, std::function<void()> done);
  void RunNextTask();
  void FinishAll();

  /// One round of PlanDrain + StartTasks. If the victim still holds
  /// segments afterwards (a survivor died mid-drain and its tasks were
  /// abandoned, or writes landed behind the planner), the remainder is
  /// re-planned onto the nodes still standing — bounded by `attempt` so a
  /// victim that died mid-drain cannot loop forever.
  void StartDrainAttempt(NodeId victim, int attempt,
                         std::function<void()> done);

  cluster::Cluster* cluster_;
  MigrationConfig config_;
  MigrationStats stats_;
  std::deque<MoveTask> queue_;
  std::function<void()> done_;
  /// Victim of the drain currently running (invalid outside a drain).
  /// OnNodeFailure uses it to tell a drain task orphaned by its
  /// *destination* dying — re-targetable onto another survivor — from an
  /// ordinary rebalance task, which is simply abandoned.
  NodeId drain_victim_ = NodeId::Invalid();
  struct DstKey {
    uint64_t table_node;
    Key range_lo;
    friend bool operator==(const DstKey& a, const DstKey& b) {
      return a.table_node == b.table_node && a.range_lo == b.range_lo;
    }
  };
  struct DstKeyHash {
    size_t operator()(const DstKey& k) const {
      return std::hash<uint64_t>()(k.table_node) * 1000003 +
             std::hash<Key>()(k.range_lo);
    }
  };
  std::unordered_map<DstKey, PartitionId, DstKeyHash> dst_partitions_;
};

}  // namespace wattdb::partition

#endif  // WATTDB_PARTITION_MIGRATION_H_
