#include "partition/logical.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace wattdb::partition {

void LogicalPartitioning::ExecuteTask(const MoveTask& task,
                                      std::function<void()> next) {
  auto& cat = cluster_->catalog();
  catalog::Partition* src = cat.GetPartition(task.src_partition);
  if (src == nullptr || src->top_index().RangeOf(task.segment).Empty()) {
    next();
    return;
  }
  if (!SourceOwnsRoute(task)) {
    // A promotion deposed the source while the plan sat in the queue;
    // draining its stale records over the new owner would undo the writes
    // committed since the flip.
    ++stats_.tasks_failed;
    WATTDB_INFO("migration: logical move of range ["
                << task.range.lo << ", " << task.range.hi
                << ") abandoned (source no longer owns the route)");
    next();
    return;
  }
  const PartitionId dst_id = DstPartitionFor(task.table, task.dst_node, task.range.lo);
  catalog::Partition* dst_check = cat.GetPartition(dst_id);
  WATTDB_CHECK(dst_check != nullptr);
  if (!EvictStaleDstCopies(dst_check, task)) {
    // Inserting the drained records into a partition that still holds live
    // colliding segments would interleave two generations of the range.
    ++stats_.tasks_failed;
    WATTDB_INFO("migration: logical move of range ["
                << task.range.lo << ", " << task.range.hi
                << ") abandoned (destination holds live colliding segments)");
    next();
    return;
  }
  // Master learns of the move; both locations are visited while in flight.
  WATTDB_CHECK(cat.BeginMove(task.table, task.range, dst_id).ok());
  src->set_forward_to(dst_id);
  MoveBatch(task, dst_id, task.range.lo, std::move(next));
}

void LogicalPartitioning::MoveBatch(const MoveTask& task, PartitionId dst_id,
                                    Key cursor, std::function<void()> next) {
  auto& cat = cluster_->catalog();
  catalog::Partition* src = cat.GetPartition(task.src_partition);
  catalog::Partition* dst = cat.GetPartition(dst_id);
  cluster::Node* src_node = cluster_->node(task.src_node);
  cluster::Node* dst_node = cluster_->node(task.dst_node);
  WATTDB_CHECK(src != nullptr && dst != nullptr);

  // A batch runs to completion inside one event, so a crash can only land
  // between batches: check endpoint liveness here and abandon the task if
  // either node died. The records moved by earlier batches stay reachable
  // through the BeginMove two-pointer entry, which is deliberately kept —
  // after the dead node restarts, reads resolve at the secondary again.
  if (!src_node->IsActive() || !dst_node->IsActive()) {
    ++stats_.tasks_failed;
    WATTDB_INFO("migration: logical move of range [" << task.range.lo << ", "
                                                     << task.range.hi
                                                     << ") abandoned "
                                                        "(endpoint crashed)");
    next();
    return;
  }

  // One system transaction per batch: scan, delete at source, re-insert at
  // target. Records are locked X while moving — MVCC readers keep reading
  // old versions, MGL-RX readers block (the Fig. 3 contrast).
  tx::Txn* sys = cluster_->tm().Begin(cluster_->Now(), /*read_only=*/false,
                                      /*system=*/true);
  std::vector<storage::Record> batch;
  batch.reserve(config_.logical_batch_records);
  const Status scanned =
      src_node->ScanRange(sys, src, KeyRange{cursor, task.range.hi},
                          [&](const storage::Record& rec) {
                            batch.push_back(rec);
                            return batch.size() <
                                   config_.logical_batch_records;
                          });
  if (!scanned.ok()) {
    // Defensive: an unreadable source must abandon the task, never
    // finalize it (finalizing would flip routing away from unmoved data).
    cluster_->AbortTxn(sys);
    cluster_->tm().Release(sys->id);
    ++stats_.tasks_failed;
    next();
    return;
  }
  if (batch.empty()) {
    cluster_->tm().Commit(sys);
    cluster_->tm().Release(sys->id);
    if (cursor > task.range.lo) {
      // Sweep once more from the start: user transactions may have inserted
      // behind the cursor while the range was moving.
      MoveBatch(task, dst_id, task.range.lo, std::move(next));
      return;
    }
    FinalizeRange(task, dst_id);
    next();
    return;
  }

  size_t batch_bytes = 0;
  for (const auto& rec : batch) {
    const Status del = src_node->Delete(sys, src, rec.key);
    if (!del.ok()) continue;  // Deleted by a racing user txn; skip.
    batch_bytes += rec.StoredSize();
    // Ship the record to the target node.
    const SimTime shipped = cluster_->network().Transfer(
        sys->now, task.src_node, task.dst_node, rec.StoredSize());
    sys->net_us += shipped - sys->now;
    sys->AdvanceTo(shipped);
    const Status ins = dst_node->Insert(sys, dst, rec.key, rec.payload);
    if (!ins.ok()) {
      // Target unreachable (or refused) mid-batch: roll the whole batch
      // back — the deletes at the source and the inserts already applied at
      // the target are undone — and abandon the task.
      cluster_->AbortTxn(sys);
      cluster_->tm().Release(sys->id);
      ++stats_.tasks_failed;
      WATTDB_INFO("migration: logical batch rolled back: " << ins.ToString());
      next();
      return;
    }
    ++stats_.records_moved;
  }
  stats_.bytes_shipped += static_cast<int64_t>(batch_bytes);

  // Cost scale-up: each materialized record stands for `cost_scale`
  // paper-scale records; keep the hardware (disks, network, CPUs, WAL)
  // busy for the difference and pace the migration accordingly.
  if (config_.cost_scale > 1.0) {
    const double extra = config_.cost_scale - 1.0;
    const size_t extra_bytes =
        static_cast<size_t>(static_cast<double>(batch_bytes) * extra);
    storage::Segment* seg = cluster_->segments().Get(task.segment);
    if (seg != nullptr && extra_bytes > 0) {
      hw::Disk* src_disk = cluster_->FindDisk(seg->disk());
      if (src_disk != nullptr) {
        sys->AdvanceTo(src_disk->AccessSequential(sys->now, extra_bytes));
      }
      sys->AdvanceTo(cluster_->network().Transfer(sys->now, task.src_node,
                                                  task.dst_node, extra_bytes));
      hw::Disk* dst_disk = dst_node->DataDisk(sys->now);
      sys->AdvanceTo(dst_disk->AccessSequential(sys->now, extra_bytes));
      // Per-record CPU (scan + delete + insert + index maintenance) and WAL
      // volume scale likewise; the slower of the two nodes paces the batch.
      const SimTime cpu_extra = static_cast<SimTime>(
          static_cast<double>(batch.size()) * extra *
          (src_node->costs().cpu_record_write_us * 2));
      const SimTime src_done =
          src_node->hardware().cpu().Acquire(sys->now, cpu_extra / 2);
      const SimTime dst_done =
          dst_node->hardware().cpu().Acquire(sys->now, cpu_extra / 2);
      sys->AdvanceTo(std::max(src_done, dst_done));
      sys->AdvanceTo(src_node->log().ChargeBytes(sys->now, extra_bytes));
    }
  }

  src_node->LogCommit(sys);
  cluster_->tm().Commit(sys);
  const Key next_cursor = batch.back().key + 1;
  const SimTime resume_at = sys->now;
  cluster_->tm().Release(sys->id);
  cluster_->events().ScheduleAt(
      resume_at, [this, task, dst_id, next_cursor, next = std::move(next)]() {
        MoveBatch(task, dst_id, next_cursor, next);
      });
}

void LogicalPartitioning::FinalizeRange(const MoveTask& task,
                                        PartitionId dst_id) {
  auto& cat = cluster_->catalog();
  catalog::Partition* src = cat.GetPartition(task.src_partition);
  WATTDB_CHECK(cat.CompleteMove(task.table, task.range, dst_id).ok());
  // The drained segment is empty: detach and drop it.
  storage::Segment* seg = cluster_->segments().Get(task.segment);
  if (seg != nullptr && src != nullptr &&
      !src->top_index().RangeOf(task.segment).Empty()) {
    if (seg->record_count() == 0) {
      WATTDB_CHECK(src->DetachSegment(task.segment).ok());
      cluster_->node(task.src_node)->buffer().InvalidateSegment(task.segment);
      WATTDB_CHECK(cluster_->segments().Drop(task.segment).ok());
    }
  }
  if (src != nullptr) {
    src->set_forward_to(PartitionId::Invalid());
    src->set_state(catalog::PartitionState::kNormal);
  }
  ++stats_.segments_moved;
}

}  // namespace wattdb::partition
