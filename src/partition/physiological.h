#ifndef WATTDB_PARTITION_PHYSIOLOGICAL_H_
#define WATTDB_PARTITION_PHYSIOLOGICAL_H_

#include "partition/migration.h"

namespace wattdb::partition {

/// The paper's contribution (§4.3): segments move at raw-copy speed *and*
/// ownership transfers. Protocol per segment:
///   1. master registers the move (two-pointer routing entry);
///   2. a system transaction takes a read (S) lock on the source partition,
///      draining in-flight writers and blocking new ones (readers continue
///      on old versions via MVCC);
///   3. the segment's bytes stream to the target node; the segment-local
///      primary-key index travels with them and stays valid;
///   4. the segment is detached from the source top index, attached to the
///      target partition's top index, and the master flips routing;
///   5. the lock settles, checkpoint records are logged on both nodes, and
///      the source forwards stragglers for a grace window.
class PhysiologicalPartitioning : public MigrationManagerBase {
 public:
  PhysiologicalPartitioning(cluster::Cluster* cluster,
                            MigrationConfig config = MigrationConfig())
      : MigrationManagerBase(cluster, config) {}

  std::string name() const override { return "physiological"; }

 protected:
  void ExecuteTask(const MoveTask& task, std::function<void()> next) override;
  bool TransfersOwnership() const override { return true; }

 private:
  /// Idle-resource estimate of how long copying `bytes` (unscaled) takes;
  /// used as the per-segment lock-hold window.
  SimTime EstimateCopyUs(size_t bytes) const;
};

}  // namespace wattdb::partition

#endif  // WATTDB_PARTITION_PHYSIOLOGICAL_H_
