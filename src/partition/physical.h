#ifndef WATTDB_PARTITION_PHYSICAL_H_
#define WATTDB_PARTITION_PHYSICAL_H_

#include "partition/migration.h"

namespace wattdb::partition {

/// Physical partitioning (§4.1): whole segments move between disks/nodes at
/// raw copy speed, but logical ownership stays with the original node. No
/// transactions are needed — a lightweight latch suffices while a segment
/// is in flight. The price: after the move, every page access by the owner
/// pays a network round trip to the node now holding the bytes, and the
/// query layer gains no processing power ("the logical control of the data
/// is stuck at the original node", §5.2).
class PhysicalPartitioning : public MigrationManagerBase {
 public:
  PhysicalPartitioning(cluster::Cluster* cluster,
                       MigrationConfig config = MigrationConfig())
      : MigrationManagerBase(cluster, config) {}

  std::string name() const override { return "physical"; }

 protected:
  void ExecuteTask(const MoveTask& task, std::function<void()> next) override;
  bool TransfersOwnership() const override { return false; }
};

}  // namespace wattdb::partition

#endif  // WATTDB_PARTITION_PHYSICAL_H_
