#include "partition/physical.h"

#include "common/logging.h"

namespace wattdb::partition {

void PhysicalPartitioning::ExecuteTask(const MoveTask& task,
                                       std::function<void()> next) {
  storage::Segment* seg = cluster_->segments().Get(task.segment);
  if (seg == nullptr || seg->storage_node() == task.dst_node) {
    next();
    return;
  }
  // No transactions, no catalog changes: "a lightweight latching mechanism,
  // locking segments on the move for a short time, is sufficient" (§4.1).
  // The maintenance pins inside StreamBytes model that latch pressure.
  StreamBytes(task.segment, task.src_node, task.dst_node, seg->DiskBytes(),
              [this, task, next = std::move(next)](hw::Disk* dst_disk) {
                if (dst_disk == nullptr) {
                  // An endpoint crashed mid-copy; the bytes stay where they
                  // were and the task is abandoned.
                  ++stats_.tasks_failed;
                  next();
                  return;
                }
                storage::Segment* seg = cluster_->segments().Get(task.segment);
                WATTDB_CHECK(seg != nullptr);
                // Bytes now live on the target node; the owner is unchanged
                // and will fetch pages remotely from here on.
                WATTDB_CHECK(cluster_->segments()
                                 .Relocate(task.segment, task.dst_node,
                                           dst_disk->id())
                                 .ok());
                cluster_->node(task.src_node)
                    ->buffer()
                    .InvalidateSegment(task.segment);
                ++stats_.segments_moved;
                stats_.records_moved +=
                    static_cast<int64_t>(seg->record_count());
                next();
              });
}

}  // namespace wattdb::partition
