#ifndef WATTDB_PARTITION_LOGICAL_H_
#define WATTDB_PARTITION_LOGICAL_H_

#include "partition/migration.h"

namespace wattdb::partition {

/// Logical partitioning (§4.2): records in a key range are *transactionally*
/// deleted from the source partition and re-inserted into a partition on
/// the target node, batch by batch under system transactions. Ownership
/// moves with the records and the optimizer learns the new ranges, but the
/// move is far more expensive than segment shipping: every record pays page
/// reads, page writes, index maintenance, WAL appends, and record locks —
/// and under MGL-RX concurrent readers of moving records block.
class LogicalPartitioning : public MigrationManagerBase {
 public:
  LogicalPartitioning(cluster::Cluster* cluster,
                      MigrationConfig config = MigrationConfig())
      : MigrationManagerBase(cluster, config) {}

  std::string name() const override { return "logical"; }

  /// Bytes of blocked-writer "pending change lists" accumulated while
  /// records were locked mid-move (the locking-scheme storage overhead the
  /// paper contrasts with MVCC version storage in Fig. 3).
  int64_t pending_change_bytes() const { return pending_change_bytes_; }

 protected:
  void ExecuteTask(const MoveTask& task, std::function<void()> next) override;
  bool TransfersOwnership() const override { return true; }

 private:
  void MoveBatch(const MoveTask& task, PartitionId dst_id, Key cursor,
                 std::function<void()> next);
  void FinalizeRange(const MoveTask& task, PartitionId dst_id);

  int64_t pending_change_bytes_ = 0;
};

}  // namespace wattdb::partition

#endif  // WATTDB_PARTITION_LOGICAL_H_
