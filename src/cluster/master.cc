#include "cluster/master.h"

#include <algorithm>

#include "common/logging.h"

namespace wattdb::cluster {

Master::Master(Cluster* cluster, Repartitioner* repartitioner,
               MasterPolicy policy)
    : cluster_(cluster),
      repartitioner_(repartitioner),
      policy_(policy),
      monitor_(cluster) {}

void Master::Start() {
  if (running_) return;
  running_ = true;
  cluster_->events().ScheduleAfter(policy_.check_period,
                                   [this]() { ControlTick(); });
}

void Master::ControlTick() {
  if (!running_) return;
  const auto stats = monitor_.Sample(policy_.stats_window);
  // Feed the forecaster with the busiest active node's CPU (the component
  // whose overload triggers repartitioning, §3.4).
  double max_cpu = 0.0;
  for (const auto& s : stats) {
    if (s.active) max_cpu = std::max(max_cpu, s.cpu);
  }
  forecaster_.Observe(cluster_->Now(), max_cpu);
  if (repartitioner_ == nullptr || !repartitioner_->InProgress()) {
    MaybeScaleOut(stats);
    MaybeScaleIn(stats);
  }
  cluster_->events().ScheduleAfter(policy_.check_period,
                                   [this]() { ControlTick(); });
}

void Master::MaybeScaleOut(const std::vector<NodeStats>& stats) {
  if (!policy_.enable_scale_out || repartitioner_ == nullptr) return;
  bool overloaded = false;
  for (const auto& s : stats) {
    if (s.active && s.cpu > policy_.cpu_upper) overloaded = true;
  }
  if (policy_.use_forecast &&
      forecaster_.Forecast(policy_.forecast_horizon) > policy_.cpu_upper) {
    overloaded = true;  // Proactive: the trend will cross the bound.
  }
  if (!overloaded) {
    over_count_ = 0;
    return;
  }
  if (++over_count_ < policy_.trigger_after) return;
  over_count_ = 0;
  // Find a standby node to enlist.
  for (const auto& s : stats) {
    Node* n = cluster_->node(s.node);
    if (n->hardware().power_state() == hw::PowerState::kStandby) {
      ++scale_out_events_;
      const int actives = cluster_->ActiveNodeCount();
      const double fraction = 1.0 / (actives + 1);
      WATTDB_INFO("scale-out: booting node " << s.node.value()
                                             << ", migrating fraction "
                                             << fraction);
      TriggerRebalance({s.node}, fraction, nullptr);
      return;
    }
  }
}

void Master::MaybeScaleIn(const std::vector<NodeStats>& stats) {
  if (!policy_.enable_scale_in || repartitioner_ == nullptr) return;
  int active = 0;
  bool all_under = true;
  for (const auto& s : stats) {
    if (!s.active) continue;
    ++active;
    if (s.cpu > policy_.cpu_lower) all_under = false;
  }
  if (active <= 1 || !all_under) {
    under_count_ = 0;
    return;
  }
  if (++under_count_ < policy_.trigger_after) return;
  under_count_ = 0;
  // Drain the non-master active node with the least data.
  NodeId victim = NodeId::Invalid();
  size_t least_bytes = SIZE_MAX;
  for (const auto& s : stats) {
    if (!s.active || s.node.value() == 0) continue;
    size_t bytes = 0;
    for (auto* seg : cluster_->segments().SegmentsOn(s.node)) {
      bytes += seg->DiskBytes();
    }
    if (bytes < least_bytes) {
      least_bytes = bytes;
      victim = s.node;
    }
  }
  if (!victim.valid()) return;
  ++scale_in_events_;
  WATTDB_INFO("scale-in: draining node " << victim.value());
  repartitioner_->Drain(victim, [this, victim]() {
    const Status s = cluster_->PowerOff(victim);
    WATTDB_INFO("scale-in: node " << victim.value() << " off: "
                                  << s.ToString());
  });
}

Status Master::TriggerRebalance(const std::vector<NodeId>& targets,
                                double fraction,
                                std::function<void()> done) {
  if (repartitioner_ == nullptr) {
    return Status::InvalidArgument("no repartitioner configured");
  }
  if (repartitioner_->InProgress()) {
    return Status::Busy("rebalance already running");
  }
  // Validate what can be validated before booting anything: once targets
  // are booting, a late StartRebalance failure can only be logged.
  if (targets.empty() || fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("bad rebalance parameters");
  }
  // Boot any standby targets first; start when all are active.
  auto pending = std::make_shared<int>(0);
  auto start = [this, targets, fraction, done]() -> Status {
    return repartitioner_->StartRebalance(targets, fraction, done);
  };
  std::vector<NodeId> to_boot;
  for (NodeId t : targets) {
    Node* n = cluster_->node(t);
    if (n == nullptr) {
      return Status::NotFound("no such target node " +
                              std::to_string(t.value()));
    }
    if (!n->IsActive()) to_boot.push_back(t);
  }
  if (to_boot.empty()) return start();
  *pending = static_cast<int>(to_boot.size());
  for (NodeId t : to_boot) {
    WATTDB_RETURN_IF_ERROR(cluster_->PowerOn(t, [pending, start]() {
      if (--*pending > 0) return;
      // Deferred start after boot: failures can only be logged here.
      if (const Status s = start(); !s.ok()) {
        WATTDB_WARN("rebalance failed to start: " << s.ToString());
      }
    }));
  }
  return Status::OK();
}

Status Master::AttachHelpers(const std::vector<NodeId>& helpers,
                             const std::vector<NodeId>& assisted,
                             size_t remote_buffer_pages) {
  if (!active_helpers_.empty()) return Status::Busy("helpers already attached");
  if (helpers.empty() || assisted.empty()) {
    return Status::InvalidArgument("need helpers and assisted nodes");
  }
  for (NodeId id : helpers) {
    if (cluster_->node(id) == nullptr) {
      return Status::NotFound("no such helper node " +
                              std::to_string(id.value()));
    }
  }
  for (NodeId id : assisted) {
    if (cluster_->node(id) == nullptr) {
      return Status::NotFound("no such assisted node " +
                              std::to_string(id.value()));
    }
  }
  active_helpers_ = helpers;
  assisted_nodes_ = assisted;
  auto pending = std::make_shared<int>(static_cast<int>(helpers.size()));
  auto wire = [this, remote_buffer_pages]() {
    // Round-robin helpers across assisted nodes: each assisted node ships
    // its log to one helper and uses its memory as an rDMA buffer tier.
    for (size_t i = 0; i < assisted_nodes_.size(); ++i) {
      Node* a = cluster_->node(assisted_nodes_[i]);
      Node* h = cluster_->node(active_helpers_[i % active_helpers_.size()]);
      a->log().AttachHelper(h->id(), h->hardware().disk(0));
      a->buffer().AttachRemoteTier(h->id(), remote_buffer_pages);
    }
    WATTDB_INFO("helpers wired for log shipping + remote buffering");
  };
  for (NodeId h : helpers) {
    WATTDB_RETURN_IF_ERROR(cluster_->PowerOn(h, [pending, wire]() {
      if (--*pending == 0) wire();
    }));
  }
  return Status::OK();
}

Status Master::DetachHelpers() {
  if (active_helpers_.empty()) return Status::OK();
  for (NodeId a : assisted_nodes_) {
    cluster_->node(a)->log().DetachHelper();
    cluster_->node(a)->buffer().DetachRemoteTier();
  }
  for (NodeId h : active_helpers_) {
    (void)cluster_->PowerOff(h);
  }
  active_helpers_.clear();
  assisted_nodes_.clear();
  return Status::OK();
}

}  // namespace wattdb::cluster
