#include "cluster/master.h"

#include <algorithm>

#include "common/logging.h"

namespace wattdb::cluster {

namespace {
/// Give up re-issuing a restart / re-planning a drain after this many
/// attempts — a node that cannot come back (or empty) by then is left to
/// the operator instead of looping forever.
constexpr int kMaxHealAttempts = 10;
constexpr int kMaxDrainAttempts = 5;
}  // namespace

const char* ToString(ControlEventType type) {
  switch (type) {
    case ControlEventType::kScaleOut: return "scale-out";
    case ControlEventType::kScaleIn: return "scale-in";
    case ControlEventType::kNodeSuspected: return "node-suspected";
    case ControlEventType::kNodeDeclaredDead: return "node-declared-dead";
    case ControlEventType::kRestartIssued: return "restart-issued";
    case ControlEventType::kNodeRecovered: return "node-recovered";
    case ControlEventType::kDrainStarted: return "drain-started";
    case ControlEventType::kNodeExcluded: return "node-excluded";
    case ControlEventType::kHelperLost: return "helper-lost";
    case ControlEventType::kHelperFallback: return "helper-fallback";
    case ControlEventType::kHelperRecruited: return "helper-recruited";
    case ControlEventType::kHeatImbalance: return "heat-imbalance";
    case ControlEventType::kHeatMovePlanned: return "heat-move-planned";
    case ControlEventType::kHeatMoveAbandoned: return "heat-move-abandoned";
    case ControlEventType::kHeatRebalanced: return "heat-rebalanced";
    case ControlEventType::kReplicaCreated: return "replica-created";
    case ControlEventType::kReplicaCaughtUp: return "replica-caught-up";
    case ControlEventType::kReplicaPromoted: return "replica-promoted";
    case ControlEventType::kReplicaDropped: return "replica-dropped";
    case ControlEventType::kOverloadDetected: return "overload-detected";
    case ControlEventType::kOverloadCleared: return "overload-cleared";
    case ControlEventType::kLaneImbalance: return "lane-imbalance";
    case ControlEventType::kSegmentRelaned: return "segment-relaned";
    case ControlEventType::kLaneRebalanced: return "lane-rebalanced";
  }
  return "unknown";
}

Master::Master(Cluster* cluster, Repartitioner* repartitioner,
               MasterPolicy policy)
    : cluster_(cluster),
      repartitioner_(repartitioner),
      policy_(policy),
      monitor_(cluster) {}

void Master::Start() {
  if (running_) return;
  running_ = true;
  cluster_->events().ScheduleAfter(policy_.check_period,
                                   [this]() { ControlTick(); });
}

void Master::Emit(ControlEventType type, NodeId node, std::string detail) {
  ControlEvent event;
  event.at = cluster_->Now();
  event.type = type;
  event.node = node;
  event.detail = std::move(detail);
  WATTDB_INFO("master: " << ToString(type) << " node " << node.value()
                         << " at t=" << ToSeconds(event.at) << "s — "
                         << event.detail);
  control_events_.push_back(event);
  if (event_listener_) event_listener_(control_events_.back());
}

void Master::ControlTick() {
  if (!running_) return;
  const auto stats = monitor_.Sample(policy_.stats_window);
  // Feed the forecaster with the busiest active node's CPU (the component
  // whose overload triggers repartitioning, §3.4).
  double max_cpu = 0.0;
  for (const auto& s : stats) {
    if (s.active) max_cpu = std::max(max_cpu, s.cpu);
  }
  forecaster_.Observe(cluster_->Now(), max_cpu);
  CheckHeartbeats(stats);
  CheckOverload();
  MaybeBalanceHeat();
  if (policy_.replica.enabled && replica_hooks_.tick) {
    // The replica selector consumes the same per-segment heat EWMA the
    // balancer maintains; keep it advancing when the balancer is off.
    if (!policy_.balance.enabled) {
      monitor_.UpdateHeat(policy_.check_period, policy_.balance.ewma_alpha);
    }
    replica_hooks_.tick();
  }
  if (repartitioner_ == nullptr || !repartitioner_->InProgress()) {
    MaybeScaleOut(stats);
    MaybeScaleIn(stats);
  }
  cluster_->events().ScheduleAfter(policy_.check_period,
                                   [this]() { ControlTick(); });
}

void Master::CheckHeartbeats(const std::vector<NodeStats>& stats) {
  for (const auto& s : stats) {
    if (s.active) {
      // A reporting node is (back) under watch; a heal in flight is over
      // the moment the node shows up again.
      if (!excluded_.count(s.node)) watched_.insert(s.node);
      missed_.erase(s.node);
      healing_.erase(s.node);
      continue;
    }
    if (!watched_.count(s.node)) continue;   // Never active, or taken down
                                             // by the master itself.
    if (healing_.count(s.node)) continue;    // Restart in flight: booting
                                             // and redo take a while.
    const int misses = ++missed_[s.node];
    if (misses == 1 && policy_.recovery.declare_dead_after > 1) {
      Emit(ControlEventType::kNodeSuspected, s.node,
           "missed 1 of " +
               std::to_string(policy_.recovery.declare_dead_after) +
               " heartbeat windows");
    }
    if (misses >= policy_.recovery.declare_dead_after) DeclareDead(s.node);
  }
}

void Master::DeclareDead(NodeId node) {
  ++nodes_declared_dead_;
  const int crashes = ++crash_counts_[node];
  watched_.erase(node);
  missed_.erase(node);
  Emit(ControlEventType::kNodeDeclaredDead, node,
       "missed " + std::to_string(policy_.recovery.declare_dead_after) +
           " consecutive windows; crash #" + std::to_string(crashes));
  // The scheme abandons queued moves touching the node; idempotent when the
  // recovery manager already notified it at crash time.
  if (repartitioner_ != nullptr) repartitioner_->OnNodeFailure(node);

  if (helper_assignments_.count(node) > 0) {
    // Helpers hold no partitions — replace instead of restarting.
    HandleHelperFailure(node);
    return;
  }
  // Standbys hosted *on* the dead node lost their (unlogged) state and are
  // discarded; standbys *of* the dead node's ranges are the fast failover
  // path — catch up from its surviving WAL and flip ownership, instead of
  // waiting out the full redo of a restart.
  if (replica_hooks_.drop_hosted_on) replica_hooks_.drop_hosted_on(node);
  if (policy_.replica.promote_on_failure && replica_hooks_.promote_for) {
    replica_hooks_.promote_for(node);
  }
  if (!policy_.recovery.auto_heal) return;

  // Flaky after m detections: restart once more for data access, then
  // drain onto survivors and retire the node. Needs a scheme that can move
  // ownership; under physical partitioning restart-in-place is all we have.
  const bool flaky = policy_.recovery.exclude_after_crashes > 0 &&
                     crashes >= policy_.recovery.exclude_after_crashes &&
                     repartitioner_ != nullptr &&
                     repartitioner_->SupportsDrain();
  healing_.insert(node);
  if (policy_.recovery.restart_backoff > 0) {
    cluster_->events().ScheduleAfter(
        policy_.recovery.restart_backoff,
        [this, node, flaky]() { IssueRestart(node, flaky, 0); });
  } else {
    IssueRestart(node, flaky, 0);
  }
}

void Master::IssueRestart(NodeId node, bool drain_after, int attempt) {
  if (!running_) return;
  if (!healing_.count(node)) return;  // Came back on its own (e.g. a fault
                                      // plan's auto-restart beat us to it).
  Status issued = Status::FailedPrecondition("no restart hook wired");
  if (restart_fn_) {
    issued = restart_fn_(node, [this, node,
                                drain_after](const std::string& detail) {
      Emit(ControlEventType::kNodeRecovered, node, detail);
      missed_.erase(node);
      healing_.erase(node);
      if (drain_after) StartDrainAndExclude(node, 0);
    });
  }
  if (issued.ok()) {
    ++auto_restarts_;
    Emit(ControlEventType::kRestartIssued, node,
         drain_after ? "flaky node: restarting for drain-and-exclude"
                     : "restarting in place");
    return;
  }
  // Busy (already booting) resolves itself — the heartbeat pass clears the
  // healing flag once the node reports. Anything else is retried a bounded
  // number of times, then handed back to the operator.
  if (attempt + 1 >= kMaxHealAttempts) {
    WATTDB_WARN("master: giving up restarting node "
                << node.value() << " after " << kMaxHealAttempts
                << " attempts: " << issued.ToString());
    healing_.erase(node);
    return;
  }
  cluster_->events().ScheduleAfter(
      policy_.check_period, [this, node, drain_after, attempt]() {
        IssueRestart(node, drain_after, attempt + 1);
      });
}

void Master::StartDrainAndExclude(NodeId node, int attempt) {
  if (!running_) return;
  if (repartitioner_ == nullptr || !repartitioner_->SupportsDrain()) return;
  if (attempt >= kMaxDrainAttempts) {
    WATTDB_WARN("master: drain-and-exclude of node "
                << node.value() << " gave up after " << attempt
                << " attempts; leaving it to the operator");
    return;
  }
  // A re-crash between recovery and here (or mid-drain) makes draining
  // impossible — the heartbeat detector owns the node again.
  Node* n = cluster_->node(node);
  if (n == nullptr || !n->IsActive()) return;
  // Standby copies hosted on the victim are disposable — drop them rather
  // than have the drain move them (and again in the completion callback,
  // in case a replica landed here mid-drain).
  if (replica_hooks_.drop_hosted_on) replica_hooks_.drop_hosted_on(node);
  const Status started = repartitioner_->Drain(node, [this, node, attempt]() {
    if (replica_hooks_.drop_hosted_on) replica_hooks_.drop_hosted_on(node);
    const Status off = cluster_->PowerOff(node);
    if (off.ok()) {
      excluded_.insert(node);
      Unwatch(node);
      Emit(ControlEventType::kNodeExcluded, node,
           "drained and powered off after " +
               std::to_string(crash_count(node)) + " crashes");
      return;
    }
    // Segments survived the drain (a survivor died mid-move, or writes
    // landed behind the planner); plan the remainder again — on the same
    // bounded attempt budget as the Busy path.
    WATTDB_WARN("master: node " << node.value()
                                << " not empty after drain: "
                                << off.ToString());
    StartDrainAndExclude(node, attempt + 1);
  });
  if (started.ok()) {
    Emit(ControlEventType::kDrainStarted, node,
         "flaky node (crash #" + std::to_string(crash_count(node)) +
             "): moving its data to survivors");
    return;
  }
  if (started.IsBusy() && attempt + 1 < kMaxDrainAttempts) {
    // A rebalance is running; try again next control period.
    cluster_->events().ScheduleAfter(
        policy_.check_period,
        [this, node, attempt]() { StartDrainAndExclude(node, attempt + 1); });
    return;
  }
  WATTDB_WARN("master: drain-and-exclude of node "
              << node.value() << " abandoned: " << started.ToString());
}

void Master::HandleHelperFailure(NodeId helper) {
  ++helper_failovers_;
  auto it = helper_assignments_.find(helper);
  const std::vector<NodeId> orphaned =
      it != helper_assignments_.end() ? it->second : std::vector<NodeId>{};
  Emit(ControlEventType::kHelperLost, helper,
       "helper died mid-log-shipping; " + std::to_string(orphaned.size()) +
           " assisted node(s) orphaned");
  for (NodeId a : orphaned) {
    Node* an = cluster_->node(a);
    if (an == nullptr) continue;
    // The helper's disk died with the shipped tail's only durable copy;
    // DetachHelperLost re-forces it from the assisted node's log buffer.
    an->log().DetachHelperLost(cluster_->Now());
    an->buffer().DetachRemoteTier();
    Emit(ControlEventType::kHelperFallback, a,
         "fell back to local logging (shipped tail re-forced locally; "
         "nothing committed is lost)");
  }
  helper_assignments_.erase(helper);
  active_helpers_.erase(
      std::remove(active_helpers_.begin(), active_helpers_.end(), helper),
      active_helpers_.end());
  assisted_nodes_.clear();
  for (const auto& [h, assisted] : helper_assignments_) {
    assisted_nodes_.insert(assisted_nodes_.end(), assisted.begin(),
                           assisted.end());
  }

  if (!policy_.recovery.auto_heal || !policy_.recovery.replace_failed_helpers ||
      orphaned.empty()) {
    return;
  }
  // Recruit a standby replacement and wire it exactly as AttachHelpers
  // would have.
  NodeId replacement = NodeId::Invalid();
  for (int i = 1; i < cluster_->num_nodes(); ++i) {
    const NodeId candidate(i);
    if (!EligibleRecruit(candidate)) continue;
    if (helper_assignments_.count(candidate) > 0) continue;
    if (std::find(assisted_nodes_.begin(), assisted_nodes_.end(), candidate) !=
        assisted_nodes_.end()) {
      continue;
    }
    replacement = candidate;
    break;
  }
  if (!replacement.valid()) {
    WATTDB_WARN("master: no standby available to replace helper "
                << helper.value() << "; assisted nodes stay on local logging");
    return;
  }
  active_helpers_.push_back(replacement);
  helper_assignments_[replacement] = orphaned;
  assisted_nodes_.insert(assisted_nodes_.end(), orphaned.begin(),
                         orphaned.end());
  Emit(ControlEventType::kHelperRecruited, replacement,
       "standby booting as replacement helper for " +
           std::to_string(orphaned.size()) + " node(s)");
  const size_t pages = remote_buffer_pages_;
  (void)cluster_->PowerOn(replacement, [this, replacement, orphaned, pages]() {
    Node* h = cluster_->node(replacement);
    for (NodeId a : orphaned) {
      Node* an = cluster_->node(a);
      if (an == nullptr) continue;
      an->log().AttachHelper(h->id(), h->hardware().disk(0));
      an->buffer().AttachRemoteTier(h->id(), pages);
    }
    WATTDB_INFO("master: replacement helper " << replacement.value()
                                              << " wired");
  });
}

bool Master::EligibleRecruit(NodeId node) const {
  Node* n = cluster_->node(node);
  if (n == nullptr) return false;
  if (n->hardware().power_state() != hw::PowerState::kStandby) return false;
  if (excluded_.count(node) > 0) return false;
  // A standby that is really an undetected (or not-yet-healed) crash must
  // not be booted without redo.
  if (healing_.count(node) > 0 || missed_.count(node) > 0) return false;
  if (is_down_fn_ && is_down_fn_(node)) return false;
  return true;
}

void Master::MaybeScaleOut(const std::vector<NodeStats>& stats) {
  if (!policy_.enable_scale_out || repartitioner_ == nullptr) return;
  bool overloaded = false;
  for (const auto& s : stats) {
    if (s.active && s.cpu > policy_.cpu_upper) overloaded = true;
  }
  if (policy_.use_forecast &&
      forecaster_.Forecast(policy_.forecast_horizon) > policy_.cpu_upper) {
    overloaded = true;  // Proactive: the trend will cross the bound.
  }
  if (OverloadPressure()) {
    // Sustained admission-queue overload is demand the CPU gauge may not
    // show (shed work never runs): more capacity is the durable fix, the
    // shedding only keeps admitted latency bounded meanwhile.
    overloaded = true;
  }
  if (!overloaded) {
    over_count_ = 0;
    return;
  }
  if (++over_count_ < policy_.trigger_after) return;
  over_count_ = 0;
  // Find a standby node to enlist — never a crashed or retired one.
  for (const auto& s : stats) {
    if (!EligibleRecruit(s.node)) continue;
    ++scale_out_events_;
    const int actives = cluster_->ActiveNodeCount();
    const double fraction = 1.0 / (actives + 1);
    Emit(ControlEventType::kScaleOut, s.node,
         "booting standby, migrating fraction " + std::to_string(fraction));
    TriggerRebalance({s.node}, fraction, nullptr);
    return;
  }
}

void Master::MaybeScaleIn(const std::vector<NodeStats>& stats) {
  if (!policy_.enable_scale_in || repartitioner_ == nullptr) return;
  int active = 0;
  bool all_under = true;
  for (const auto& s : stats) {
    if (!s.active) continue;
    ++active;
    if (s.cpu > policy_.cpu_lower) all_under = false;
  }
  if (active <= 1 || !all_under) {
    under_count_ = 0;
    return;
  }
  if (++under_count_ < policy_.trigger_after) return;
  under_count_ = 0;
  // Drain the non-master active node with the least data. Helpers are not
  // candidates: they look empty (no segments) but carry the assisted
  // nodes' log stream and remote buffer tier.
  NodeId victim = NodeId::Invalid();
  size_t least_bytes = SIZE_MAX;
  for (const auto& s : stats) {
    if (!s.active || s.node.value() == 0) continue;
    if (helper_assignments_.count(s.node) > 0) continue;
    // A node that just finished booting after a crash looks like the
    // perfect victim — zero load, zero bytes — but its redo has not run
    // yet: powering it off mid-recovery strands the unredone WAL tail and
    // leaves the recovery manager considering it down forever (each later
    // restart gets re-drained at the same instant, wedging the node).
    if (is_down_fn_ && is_down_fn_(s.node)) continue;
    size_t bytes = 0;
    for (auto* seg : cluster_->segments().SegmentsOn(s.node)) {
      bytes += seg->DiskBytes();
    }
    if (bytes < least_bytes) {
      least_bytes = bytes;
      victim = s.node;
    }
  }
  if (!victim.valid()) return;
  ++scale_in_events_;
  Emit(ControlEventType::kScaleIn, victim, "draining least-loaded node");
  if (replica_hooks_.drop_hosted_on) replica_hooks_.drop_hosted_on(victim);
  repartitioner_->Drain(victim, [this, victim]() {
    if (replica_hooks_.drop_hosted_on) replica_hooks_.drop_hosted_on(victim);
    const Status s = cluster_->PowerOff(victim);
    if (s.ok()) Unwatch(victim);  // Taken down deliberately: no heartbeats
                                  // expected, no false failure alarm.
    WATTDB_INFO("scale-in: node " << victim.value() << " off: "
                                  << s.ToString());
  });
}

void Master::CheckOverload() {
  const admission::AdmissionPolicy& ap = policy_.admission;
  if (!ap.enabled) return;
  const int64_t line = std::max<int64_t>(
      1, static_cast<int64_t>(ap.overload_ratio * ap.max_queue_ops));
  int over_nodes = 0;
  int64_t deepest = 0;
  NodeId deepest_node = NodeId::Invalid();
  for (const auto& g : monitor_.QueueDepths()) {
    if (g.queued_ops < line) continue;
    ++over_nodes;
    if (g.queued_ops > deepest) {
      deepest = g.queued_ops;
      deepest_node = g.node;
    }
  }
  if (over_nodes == 0) {
    if (overload_announced_) {
      Emit(ControlEventType::kOverloadCleared, last_overload_node_,
           "queue depths back under " + std::to_string(line) + " ops");
    }
    overload_streak_ = 0;
    overload_announced_ = false;
    return;
  }
  last_overload_node_ = deepest_node;
  ++overload_streak_;
  if (overload_streak_ >= ap.overload_trigger_after && !overload_announced_) {
    overload_announced_ = true;
    ++overload_events_;
    Emit(ControlEventType::kOverloadDetected, deepest_node,
         std::to_string(over_nodes) + " node(s) past " + std::to_string(line) +
             " queued ops for " + std::to_string(overload_streak_) +
             " ticks (deepest " + std::to_string(deepest) + " ops); shed " +
             std::to_string(cluster_->admission().shed_total()) +
             " so far — treating as scale-out/balance pressure");
  }
}

void Master::MaybeBalanceHeat() {
  const BalancePolicy& bp = policy_.balance;
  if (!bp.enabled || repartitioner_ == nullptr) return;
  // Advance the EWMA every tick — idle windows must cool segments down.
  monitor_.UpdateHeat(policy_.check_period, bp.ewma_alpha);
  if (!repartitioner_->SupportsDrain()) return;  // Needs ownership transfer.

  const auto node_heat = monitor_.NodeHeats();
  // Mean over serving nodes: a cold node with zero heat pulls the mean
  // down — that is the point, it has spare capacity. Helpers are neither
  // counted nor targeted; they hold no partitions.
  double total = 0.0;
  int serving = 0;
  NodeId hot = NodeId::Invalid();
  double hot_heat = 0.0;
  for (Node* n : cluster_->ActiveNodes()) {
    if (helper_assignments_.count(n->id()) > 0) continue;
    ++serving;
    auto it = node_heat.find(n->id());
    const double h = it == node_heat.end() ? 0.0 : it->second;
    total += h;
    if (h > hot_heat) {
      hot_heat = h;
      hot = n->id();
    }
  }
  if (serving < 2 || total < bp.min_total_heat || !hot.valid()) {
    heat_over_count_ = 0;
    return;
  }
  const double mean = total / serving;
  // Under sustained admission-queue overload the trigger relaxes: even a
  // mild skew (hottest node a hair over the mean) is worth spreading when
  // work is being refused somewhere. Without pressure the normal ratio
  // applies so noise does not shuffle segments.
  const bool pressured = OverloadPressure();
  if (hot_heat <= bp.trigger_ratio * mean &&
      !(pressured && hot_heat > 1.05 * mean)) {
    heat_over_count_ = 0;
    return;
  }
  // The violation streak is evaluated on EVERY tick — including ticks where
  // a migration is in flight or the cooldown gate is closed — so that
  // "trigger_after consecutive imbalanced ticks" really means consecutive:
  // one balanced tick anywhere resets the streak.
  ++heat_over_count_;
  if (heat_over_count_ < bp.trigger_after) return;
  if (heat_round_in_flight_ || repartitioner_->InProgress()) return;
  if (cluster_->Now() < next_balance_at_) return;
  heat_over_count_ = 0;

  // Tier 1 — intra-node: if the hot node's own lanes are skewed, remap hot
  // segments between its lanes (in-memory, no pages or network move) and
  // skip the cross-node tier this round. Only when the lanes are already
  // even is the imbalance genuine node-level pressure worth a migration.
  if (MaybeRelaneHot(hot)) return;

  std::vector<SegmentMove> plan = PlanHeatMoves(hot, mean, node_heat);
  if (plan.empty()) return;  // Imbalanced but nothing movable right now
                             // (cooldowns, or no move narrows the gap).
  heat_round_in_flight_ = true;
  const Status started =
      repartitioner_->StartMoves(plan, [this, plan]() {
        FinishHeatRound(plan);
      });
  if (!started.ok()) {
    // A scheme that cannot (or will not) execute the plan must not be
    // re-asked every trigger_after ticks — back off one full cooldown so
    // neither the event log nor the counters tell a story of rounds that
    // never ran.
    heat_round_in_flight_ = false;
    next_balance_at_ = cluster_->Now() + bp.cooldown;
    WATTDB_WARN("master: heat rebalance failed to start: "
                << started.ToString());
    return;
  }
  ++heat_rebalances_;
  heat_moves_planned_ += static_cast<int>(plan.size());
  Emit(ControlEventType::kHeatImbalance, hot,
       "node heat " + std::to_string(static_cast<int64_t>(hot_heat)) +
           " ops/s vs mean " + std::to_string(static_cast<int64_t>(mean)) +
           " over " + std::to_string(serving) + " nodes (trigger ratio " +
           std::to_string(bp.trigger_ratio) + "); moving " +
           std::to_string(plan.size()) + " segment(s)");
  for (const auto& m : plan) {
    Emit(ControlEventType::kHeatMovePlanned, m.dst_node,
         "segment " + std::to_string(m.segment.value()) + " (heat " +
             std::to_string(
                 static_cast<int64_t>(monitor_.HeatOf(m.segment))) +
             " ops/s) node " + std::to_string(m.src_node.value()) + " -> " +
             std::to_string(m.dst_node.value()));
  }
}

bool Master::MaybeRelaneHot(NodeId hot) {
  lanes::LaneManager& lanes = cluster_->lanes();
  if (!lanes.enabled() || !lanes.policy().balance_lanes) return false;
  if (lanes.lanes_per_node() < 2) return false;
  const lanes::LanePolicy& lp = lanes.policy();

  const auto lane_stats = monitor_.LaneStatsFor(hot);
  double total = 0.0;
  size_t hot_lane = 0;
  size_t cold_lane = 0;
  for (size_t l = 0; l < lane_stats.size(); ++l) {
    total += lane_stats[l].heat;
    if (lane_stats[l].heat > lane_stats[hot_lane].heat) hot_lane = l;
    if (lane_stats[l].heat < lane_stats[cold_lane].heat) cold_lane = l;
  }
  const double mean = total / static_cast<double>(lane_stats.size());
  if (mean <= 0.0 ||
      lane_stats[hot_lane].heat <= lp.lane_trigger_ratio * mean) {
    return false;
  }

  // Hot lane's segments, hottest first, skipping recent re-lanes.
  struct Candidate {
    storage::Segment* seg;
    double heat;
  };
  const SimTime now = cluster_->Now();
  std::vector<Candidate> candidates;
  for (const auto& entry : monitor_.SegmentHeats()) {
    if (entry.node != hot || entry.heat <= 0.0) continue;
    storage::Segment* seg = cluster_->segments().Get(entry.segment);
    if (seg == nullptr || seg->lane() != static_cast<int>(hot_lane)) continue;
    auto cd = relane_cooldown_until_.find(entry.segment);
    if (cd != relane_cooldown_until_.end() && now < cd->second) continue;
    candidates.push_back({seg, entry.heat});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.heat > b.heat;
            });

  // Greedy, as in PlanHeatMoves one tier up: shed heat from the hot lane
  // onto the coldest lane until it reaches the mean or the budget runs
  // out, never creating a worse imbalance than the one being fixed.
  double hot_left = lane_stats[hot_lane].heat;
  double cold_now = lane_stats[cold_lane].heat;
  std::vector<Candidate> moves;
  for (const auto& c : candidates) {
    if (static_cast<int>(moves.size()) >= lp.max_relanes_per_round) break;
    if (hot_left <= mean) break;
    const double hot_after = hot_left - c.heat;
    const double cold_after = cold_now + c.heat;
    // A segment so hot it would just swap the imbalance stays put — only a
    // cross-node move (or a split) can help it.
    if (cold_after > hot_after && cold_after > lp.lane_trigger_ratio * mean) {
      continue;
    }
    moves.push_back(c);
    hot_left = hot_after;
    cold_now = cold_after;
  }
  if (moves.empty()) return false;

  Emit(ControlEventType::kLaneImbalance, hot,
       "lane " + std::to_string(hot_lane) + " heat " +
           std::to_string(static_cast<int64_t>(lane_stats[hot_lane].heat)) +
           " ops/s vs lane mean " +
           std::to_string(static_cast<int64_t>(mean)) + " (trigger ratio " +
           std::to_string(lp.lane_trigger_ratio) + "); re-laning " +
           std::to_string(moves.size()) + " segment(s) to lane " +
           std::to_string(cold_lane));
  for (const auto& m : moves) {
    lanes.Relane(m.seg, static_cast<int>(cold_lane));
    relane_cooldown_until_[m.seg->id()] = now + lp.relane_cooldown;
    ++segments_relaned_;
    Emit(ControlEventType::kSegmentRelaned, hot,
         "segment " + std::to_string(m.seg->id().value()) + " (heat " +
             std::to_string(static_cast<int64_t>(m.heat)) + " ops/s) lane " +
             std::to_string(hot_lane) + " -> " + std::to_string(cold_lane));
  }
  ++lane_rebalances_;
  Emit(ControlEventType::kLaneRebalanced, hot,
       std::to_string(moves.size()) + " segment(s) re-laned; hot lane heat " +
           std::to_string(static_cast<int64_t>(lane_stats[hot_lane].heat)) +
           " -> " + std::to_string(static_cast<int64_t>(hot_left)) +
           " ops/s projected, no data moved");
  return true;
}

std::vector<SegmentMove> Master::PlanHeatMoves(
    NodeId hot, double mean,
    const std::unordered_map<NodeId, double>& node_heat) {
  const BalancePolicy& bp = policy_.balance;
  const SimTime now = cluster_->Now();

  // Candidates: every segment of every partition the hot node owns that is
  // warm and not cooling down from a recent move, hottest first.
  struct Candidate {
    SegmentMove move;
    double heat;
  };
  std::vector<Candidate> candidates;
  for (catalog::Partition* part :
       cluster_->catalog().PartitionsOwnedBy(hot)) {
    // Standby copies are not routed primaries: moving one would hand
    // CompleteMove a range the replica never owned. They are dropped or
    // promoted, never migrated.
    if (part->is_replica()) continue;
    for (const auto& e : part->top_index().All()) {
      const double h = monitor_.HeatOf(e.segment);
      if (h <= 0.0) continue;
      auto cd = segment_cooldown_until_.find(e.segment);
      if (cd != segment_cooldown_until_.end() && now < cd->second) continue;
      candidates.push_back(
          {SegmentMove{part->table(), e.segment, e.range, part->id(), hot,
                       NodeId::Invalid()},
           h});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.heat > b.heat;
            });

  // Eligible targets: active serving nodes that are not suspected, healing,
  // or (per ground truth) down. A node must also still be under watch — a
  // declared-dead node leaves `watched_` (and, once its restart attempts
  // are exhausted, `healing_`) without ever becoming ground-truth down when
  // the cause is a network partition, and data must not be moved onto a
  // node the master cannot reach.
  std::vector<std::pair<NodeId, double>> targets;
  for (Node* n : cluster_->ActiveNodes()) {
    if (n->id() == hot) continue;
    if (helper_assignments_.count(n->id()) > 0) continue;
    if (watched_.count(n->id()) == 0) continue;
    if (healing_.count(n->id()) > 0 || missed_.count(n->id()) > 0) continue;
    if (is_down_fn_ && is_down_fn_(n->id())) continue;
    auto it = node_heat.find(n->id());
    targets.push_back(
        {n->id(), it == node_heat.end() ? 0.0 : it->second});
  }
  if (targets.empty()) return {};

  auto hh = node_heat.find(hot);
  double hot_heat = hh == node_heat.end() ? 0.0 : hh->second;
  std::vector<SegmentMove> plan;
  for (auto& c : candidates) {
    if (static_cast<int>(plan.size()) >= bp.max_moves_per_round) break;
    if (hot_heat <= mean) break;  // Projected back at the mean: done.
    auto cold = std::min_element(
        targets.begin(), targets.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    // Only move when it strictly narrows the gap — a segment so hot that
    // the receiver would end up hotter than the donor merely relocates the
    // hotspot (and would ping-pong right back).
    if (cold->second + c.heat >= hot_heat) continue;
    c.move.dst_node = cold->first;
    plan.push_back(c.move);
    hot_heat -= c.heat;
    cold->second += c.heat;
  }
  return plan;
}

void Master::FinishHeatRound(const std::vector<SegmentMove>& plan) {
  heat_round_in_flight_ = false;
  const SimTime now = cluster_->Now();
  next_balance_at_ = now + policy_.balance.cooldown;
  int moved = 0;
  int abandoned = 0;
  for (const auto& m : plan) {
    // Installed iff the range now routes to a partition owned by the
    // target (CompleteMove flipped the primary). A crash mid-move leaves
    // ownership at the source — those segments re-enter planning once the
    // trigger next fires, with no cooldown stamp.
    const auto entry = cluster_->catalog().Route(m.table, m.range.lo);
    const catalog::Partition* owner_part =
        entry.has_value() ? cluster_->catalog().GetPartition(entry->primary)
                          : nullptr;
    const bool installed =
        owner_part != nullptr && owner_part->owner() == m.dst_node;
    if (installed) {
      ++moved;
      ++heat_moves_completed_;
      // Twice the round cooldown: strictly outlives the next_balance_at_
      // gate stamped above, so the next round can never bounce this
      // segment straight back.
      segment_cooldown_until_[m.segment] =
          now + 2 * policy_.balance.cooldown;
    } else {
      ++abandoned;
      ++heat_moves_abandoned_;
      Emit(ControlEventType::kHeatMoveAbandoned, m.src_node,
           "segment " + std::to_string(m.segment.value()) +
               " never installed on node " +
               std::to_string(m.dst_node.value()) +
               " (endpoint crashed mid-move); will re-plan");
    }
  }
  Emit(ControlEventType::kHeatRebalanced,
       plan.empty() ? NodeId::Invalid() : plan.front().src_node,
       std::to_string(moved) + " segment(s) moved, " +
           std::to_string(abandoned) + " abandoned; next round no earlier "
           "than t=" +
           std::to_string(ToSeconds(next_balance_at_)) + "s");
}

Status Master::TriggerRebalance(const std::vector<NodeId>& targets,
                                double fraction,
                                std::function<void()> done) {
  if (repartitioner_ == nullptr) {
    return Status::InvalidArgument("no repartitioner configured");
  }
  if (repartitioner_->InProgress()) {
    return Status::Busy("rebalance already running");
  }
  // Validate what can be validated before booting anything: once targets
  // are booting, a late StartRebalance failure can only be logged.
  if (targets.empty() || fraction <= 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("bad rebalance parameters");
  }
  // Boot any standby targets first; start when all are active.
  auto pending = std::make_shared<int>(0);
  auto start = [this, targets, fraction, done]() -> Status {
    return repartitioner_->StartRebalance(targets, fraction, done);
  };
  std::vector<NodeId> to_boot;
  for (NodeId t : targets) {
    Node* n = cluster_->node(t);
    if (n == nullptr) {
      return Status::NotFound("no such target node " +
                              std::to_string(t.value()));
    }
    if (!n->IsActive()) to_boot.push_back(t);
  }
  if (to_boot.empty()) return start();
  *pending = static_cast<int>(to_boot.size());
  auto on_up = [pending, start]() {
    if (--*pending > 0) return;
    // Deferred start after boot: failures can only be logged here.
    if (const Status s = start(); !s.ok()) {
      WATTDB_WARN("rebalance failed to start: " << s.ToString());
    }
  };
  for (NodeId t : to_boot) {
    // A target that is down because it CRASHED (vs a cold standby) must
    // come back through recovery — bare PowerOn would skip the redo, leave
    // the recovery manager considering the node down forever, and pull
    // fresh data onto a disk whose WAL tail was never replayed.
    if (is_down_fn_ && is_down_fn_(t)) {
      if (!restart_fn_) {
        return Status::FailedPrecondition(
            "target node " + std::to_string(t.value()) +
            " crashed and no restart hook is wired");
      }
      WATTDB_RETURN_IF_ERROR(
          restart_fn_(t, [on_up](const std::string&) { on_up(); }));
      continue;
    }
    WATTDB_RETURN_IF_ERROR(cluster_->PowerOn(t, on_up));
  }
  return Status::OK();
}

Status Master::AttachHelpers(const std::vector<NodeId>& helpers,
                             const std::vector<NodeId>& assisted,
                             size_t remote_buffer_pages) {
  if (!active_helpers_.empty()) {
    // Silently rewiring would strand the first helper set's shipped log
    // tail; the caller must DetachHelpers (which re-localizes it) first.
    return Status::FailedPrecondition(
        "helpers already attached; call DetachHelpers first");
  }
  if (helpers.empty() || assisted.empty()) {
    return Status::InvalidArgument("need helpers and assisted nodes");
  }
  for (NodeId id : helpers) {
    if (cluster_->node(id) == nullptr) {
      return Status::NotFound("no such helper node " +
                              std::to_string(id.value()));
    }
    if (std::find(assisted.begin(), assisted.end(), id) != assisted.end()) {
      return Status::InvalidArgument(
          "node " + std::to_string(id.value()) +
          " cannot ship its own log to itself (helper and assisted)");
    }
    // A crashed-or-excluded standby would take the assisted nodes' WAL
    // stream to a disk that needs redo itself (or is about to power off
    // for good) — refuse instead of silently wiring a doomed helper.
    if (excluded_.count(id) > 0) {
      return Status::FailedPrecondition(
          "helper node " + std::to_string(id.value()) +
          " is excluded from duty");
    }
    if ((is_down_fn_ && is_down_fn_(id)) || healing_.count(id) > 0 ||
        missed_.count(id) > 0) {
      return Status::FailedPrecondition(
          "helper node " + std::to_string(id.value()) +
          " crashed and has not recovered");
    }
  }
  for (NodeId id : assisted) {
    if (cluster_->node(id) == nullptr) {
      return Status::NotFound("no such assisted node " +
                              std::to_string(id.value()));
    }
  }
  active_helpers_ = helpers;
  assisted_nodes_ = assisted;
  remote_buffer_pages_ = remote_buffer_pages;
  helper_assignments_.clear();
  auto pending = std::make_shared<int>(static_cast<int>(helpers.size()));
  auto wire = [this, remote_buffer_pages]() {
    // Round-robin helpers across assisted nodes: each assisted node ships
    // its log to one helper and uses its memory as an rDMA buffer tier.
    // The assignment is remembered so a helper failure knows exactly which
    // nodes to fall back and re-wire.
    for (size_t i = 0; i < assisted_nodes_.size(); ++i) {
      Node* a = cluster_->node(assisted_nodes_[i]);
      Node* h = cluster_->node(active_helpers_[i % active_helpers_.size()]);
      a->log().AttachHelper(h->id(), h->hardware().disk(0));
      a->buffer().AttachRemoteTier(h->id(), remote_buffer_pages);
      helper_assignments_[h->id()].push_back(a->id());
    }
    WATTDB_INFO("helpers wired for log shipping + remote buffering");
  };
  for (NodeId h : helpers) {
    WATTDB_RETURN_IF_ERROR(cluster_->PowerOn(h, [pending, wire]() {
      if (--*pending == 0) wire();
    }));
  }
  return Status::OK();
}

Status Master::DetachHelpers() {
  if (active_helpers_.empty()) return Status::OK();
  for (NodeId a : assisted_nodes_) {
    // Graceful detach: the shipped tail is read back from the (still
    // alive) helper and re-localized before the helper powers off.
    cluster_->node(a)->log().DetachHelper(cluster_->Now());
    cluster_->node(a)->buffer().DetachRemoteTier();
  }
  for (NodeId h : active_helpers_) {
    if (cluster_->PowerOff(h).ok()) Unwatch(h);
  }
  active_helpers_.clear();
  assisted_nodes_.clear();
  helper_assignments_.clear();
  return Status::OK();
}

}  // namespace wattdb::cluster
