#include "cluster/forecast.h"

#include <algorithm>

namespace wattdb::cluster {

void LoadForecaster::Observe(SimTime at, double utilization) {
  if (samples_ == 0) {
    level_ = utilization;
    trend_ = 0.0;
  } else {
    const double dt_sec = std::max(1e-6, ToSeconds(at - last_at_));
    // Holt's linear method with irregular sampling: scale the trend by the
    // elapsed interval.
    const double prev_level = level_;
    const double predicted = level_ + trend_ * dt_sec;
    level_ = options_.level_alpha * utilization +
             (1.0 - options_.level_alpha) * predicted;
    const double observed_trend = (level_ - prev_level) / dt_sec;
    trend_ = options_.trend_beta * observed_trend +
             (1.0 - options_.trend_beta) * trend_;
  }
  last_at_ = at;
  ++samples_;
  // Consume shifts that are now in the past: they are reflected in samples.
  while (!shifts_.empty() && shifts_.front().at <= at) {
    shifts_.pop_front();
  }
}

double LoadForecaster::Forecast(SimTime horizon) const {
  double value = level_;
  if (samples_ >= 2) {
    value += trend_ * ToSeconds(horizon);
  }
  const SimTime target = last_at_ + horizon;
  for (const Shift& s : shifts_) {
    if (s.at <= target) value += s.delta;
  }
  if (options_.clamp) value = std::clamp(value, 0.0, 1.0);
  return value;
}

void LoadForecaster::DeclareShift(SimTime at, double delta) {
  // Keep shifts ordered by time.
  auto it = shifts_.begin();
  while (it != shifts_.end() && it->at <= at) ++it;
  shifts_.insert(it, Shift{at, delta});
}

}  // namespace wattdb::cluster
