#ifndef WATTDB_CLUSTER_NODE_H_
#define WATTDB_CLUSTER_NODE_H_

#include <functional>
#include <memory>
#include <vector>

#include "catalog/global_partition_table.h"
#include "common/status.h"
#include "common/types.h"
#include "hw/network.h"
#include "hw/node_hardware.h"
#include "lanes/lane_manager.h"
#include "storage/buffer_manager.h"
#include "storage/record.h"
#include "storage/segment_manager.h"
#include "tx/log_manager.h"
#include "tx/transaction_manager.h"

namespace wattdb::cluster {

/// CPU service-time constants for kernel operations. These are the
/// calibration points of the simulation; defaults approximate an Atom-class
/// core (the paper's local table scan sustains ~40k records/s, §3.3 Fig. 1).
struct NodeCostConfig {
  SimTime cpu_index_probe_us = 4;   ///< Top-index + B+-tree descent.
  SimTime cpu_record_read_us = 5;   ///< Slot read + tuple materialization.
  SimTime cpu_record_write_us = 10; ///< Page write + version bookkeeping.
  SimTime cpu_scan_record_us = 20;  ///< Per-record scan cost (~50k rec/s/core).
  /// Generous initial lock-hold estimate; settled to the actual commit time.
  SimTime lock_hold_estimate_us = 1 * kUsPerSec;
};

/// One WattDB cluster node: Atom-class hardware plus the node-local DBMS
/// services — buffer pool, WAL, and the transactional record operations it
/// performs as the owner of its partitions. All operations thread simulated
/// time through the Txn's private clock and tally the component times that
/// feed the Fig. 7 breakdown.
class Node {
 public:
  Node(NodeId id, const hw::NodeHardwareSpec& hw_spec,
       const storage::BufferSpec& buffer_spec, const NodeCostConfig& costs,
       tx::CcScheme cc, DiskId first_disk_id,
       storage::SegmentManager* segments, tx::TransactionManager* tm,
       hw::Network* network, storage::BufferManager::DiskResolver resolver);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  bool IsMaster() const { return id_.value() == 0; }

  hw::NodeHardware& hardware() { return hw_; }
  const hw::NodeHardware& hardware() const { return hw_; }
  /// Cluster-owned worker lanes; when the lane policy is enabled, CPU work
  /// on a known segment is charged to the segment's lane instead of the
  /// shared core pool (shared-nothing intra-node parallelism).
  void set_lane_manager(lanes::LaneManager* lanes) { lanes_ = lanes; }
  /// Routed range covering (table, key), injected by the cluster. Bounds
  /// the key range a lazily materialized segment claims in the top index:
  /// without it the first insert claims [kMinKey, kMaxKey), and a segment
  /// claiming keys its partition never owned poisons every consumer that
  /// treats segment ranges as ownership (replica routes, partition-heal
  /// reconciliation, promotion fencing).
  void set_route_bound_fn(std::function<KeyRange(TableId, Key)> fn) {
    route_bound_ = std::move(fn);
  }
  storage::BufferManager& buffer() { return buffer_; }
  tx::LogManager& log() { return *log_; }
  tx::CcScheme cc_scheme() const { return cc_; }
  void set_cc_scheme(tx::CcScheme cc) { cc_ = cc; }
  const NodeCostConfig& costs() const { return costs_; }

  bool IsActive() const {
    return hw_.power_state() == hw::PowerState::kActive;
  }

  // --- Transactional record operations (this node must own `part`) -------

  /// Point read under the transaction's snapshot (MVCC) or S lock (MGL-RX).
  Status Read(tx::Txn* txn, catalog::Partition* part, Key key,
              storage::Record* out);

  /// Insert a new record; allocates/splits segments as needed.
  Status Insert(tx::Txn* txn, catalog::Partition* part, Key key,
                const std::vector<uint8_t>& payload);

  /// Update the record's payload.
  Status Update(tx::Txn* txn, catalog::Partition* part, Key key,
                const std::vector<uint8_t>& payload);

  /// Delete the record (old snapshots keep seeing it via the chain).
  Status Delete(tx::Txn* txn, catalog::Partition* part, Key key);

  /// Visit visible records with keys in [range.lo, range.hi). Records
  /// deleted from pages but visible to this snapshot are merged in from the
  /// version chains (order is per-segment).
  Status ScanRange(tx::Txn* txn, catalog::Partition* part,
                   const KeyRange& range,
                   const std::function<bool(const storage::Record&)>& fn);

  /// Write the commit record to the WAL and advance the txn to durability.
  Status LogCommit(tx::Txn* txn);

  /// Apply MVCC undo entries to pages after an abort. `resolve` maps
  /// (table, key) to the partition currently holding the key.
  void ApplyUndo(
      const std::vector<tx::VersionStore::UndoEntry>& undo,
      const std::function<catalog::Partition*(TableId, Key)>& resolve);

  /// Redo-recover partition contents from a log tail (used by recovery
  /// tests; §4.3: the log reconstructs partitions).
  Status RedoInto(catalog::Partition* part,
                  const std::vector<tx::LogRecord>& tail);

  // --- Segment plumbing used by migration -------------------------------

  /// Create a fresh segment on this node's least-loaded disk and attach it
  /// to `part` covering `range`.
  Result<storage::Segment*> AllocateSegment(SimTime now,
                                            catalog::Partition* part,
                                            const KeyRange& range);

  /// The segment that should receive an insert of `key`, allocating or
  /// tail-splitting as necessary. `txn` may be null (bulk load, redo
  /// recovery) — costs then go unaccounted.
  Result<storage::Segment*> SegmentForInsert(SimTime now, tx::Txn* txn,
                                             catalog::Partition* part,
                                             Key key, size_t record_bytes);

  /// SSD to place a new data segment on (HDD is reserved for the WAL).
  hw::Disk* DataDisk(SimTime now);

 private:
  /// Charge CPU work: queueing + service on this node's core pool — or,
  /// when the lane policy is on and the work targets a known segment, on
  /// that segment's worker lane (its private execution timeline). Ops on
  /// different lanes never queue behind each other; ops on one lane
  /// serialize, which is exactly the shared-nothing contract.
  void ChargeCpu(tx::Txn* txn, SimTime service_us,
                 storage::Segment* seg = nullptr);
  /// Index-probe service time against `seg`'s index structure (nullptr:
  /// the B+-tree baseline cost).
  SimTime ProbeCost(const storage::Segment* seg) const;
  /// Fetch a page on behalf of `txn`, folding component times into it.
  void FetchPage(tx::Txn* txn, SegmentId seg, uint16_t page, bool for_write);
  /// Acquire a lock on behalf of `txn`, folding wait time into it.
  void AcquireLock(tx::Txn* txn, const tx::LockResource& res,
                   tx::LockMode mode);
  /// Locks taken before reading/writing one record, per CC scheme.
  void LockForRead(tx::Txn* txn, catalog::Partition* part, Key key);
  void LockForWrite(tx::Txn* txn, catalog::Partition* part, Key key);
  void AppendWal(tx::Txn* txn, tx::LogRecordType type,
                 catalog::Partition* part, Key key,
                 const std::vector<uint8_t>* after);

  NodeId id_;
  NodeCostConfig costs_;
  tx::CcScheme cc_;
  hw::NodeHardware hw_;
  storage::BufferManager buffer_;
  std::unique_ptr<tx::LogManager> log_;
  storage::SegmentManager* segments_;
  tx::TransactionManager* tm_;
  hw::Network* network_;
  lanes::LaneManager* lanes_ = nullptr;
  std::function<KeyRange(TableId, Key)> route_bound_;
};

}  // namespace wattdb::cluster

#endif  // WATTDB_CLUSTER_NODE_H_
