#include "cluster/node.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"

namespace wattdb::cluster {

Node::Node(NodeId id, const hw::NodeHardwareSpec& hw_spec,
           const storage::BufferSpec& buffer_spec, const NodeCostConfig& costs,
           tx::CcScheme cc, DiskId first_disk_id,
           storage::SegmentManager* segments, tx::TransactionManager* tm,
           hw::Network* network, storage::BufferManager::DiskResolver resolver)
    : id_(id),
      costs_(costs),
      cc_(cc),
      hw_(id, hw_spec, first_disk_id),
      buffer_(id, buffer_spec, segments, network, std::move(resolver)),
      segments_(segments),
      tm_(tm),
      network_(network) {
  // The WAL shares the first SSD with data segments — on the paper's nodes
  // log and data compete for the storage subsystem's bandwidth, which is
  // exactly why logging slows while rebalancing and why shipping the log to
  // a helper node pays off (§5.2, Fig. 7). The HDD holds cold archives.
  const size_t log_disk_idx =
      hw_.num_disks() > static_cast<size_t>(hw_spec.num_hdd)
          ? static_cast<size_t>(hw_spec.num_hdd)
          : 0;
  log_ = std::make_unique<tx::LogManager>(id, hw_.disk(log_disk_idx), network);
}

hw::Disk* Node::DataDisk(SimTime now) {
  // Data segments go to the SSDs, balanced by allocated bytes (§3.4:
  // utilization is balanced across local disks first). The first SSD also
  // carries the WAL, so data, migration streams, and log appends compete
  // for the same storage bandwidth — the paper's Fig. 7 bottleneck.
  hw::Disk* best = nullptr;
  size_t best_load = 0;
  for (auto& d : hw_.disks()) {
    if (d->spec().kind != hw::DiskKind::kSsd) continue;
    size_t load = 0;
    for (storage::Segment* seg : segments_->SegmentsOn(id_)) {
      if (seg->disk() == d->id()) load += seg->DiskBytes();
    }
    if (best == nullptr || load < best_load ||
        (load == best_load &&
         d->resource().Backlog(now) < best->resource().Backlog(now))) {
      best = d.get();
      best_load = load;
    }
  }
  return best != nullptr ? best : hw_.LeastLoadedDisk(now);
}

void Node::ChargeCpu(tx::Txn* txn, SimTime service_us, storage::Segment* seg) {
  // Timeslice long computations so concurrent transactions share the cores
  // instead of demanding one contiguous reservation.
  constexpr SimTime kSliceUs = 4000;
  // With the lane policy on, work targeting a known segment runs on that
  // segment's worker lane — its private execution timeline. Ops on other
  // lanes of this node proceed in parallel; the shared core pool is used
  // only for work with no segment affinity (and when lanes are off).
  sim::Resource* lane = nullptr;
  if (lanes_ != nullptr && lanes_->enabled() && seg != nullptr) {
    lane = lanes_->lane(id_, lanes_->LaneOf(seg));
  }
  while (service_us > 0) {
    const SimTime slice = std::min(service_us, kSliceUs);
    const SimTime done = lane != nullptr ? lane->Acquire(txn->now, slice)
                                         : hw_.cpu().Acquire(txn->now, slice);
    txn->cpu_us += done - txn->now;  // Queueing + service.
    txn->AdvanceTo(done);
    service_us -= slice;
  }
}

SimTime Node::ProbeCost(const storage::Segment* seg) const {
  if (seg == nullptr) return costs_.cpu_index_probe_us;
  // The pluggable index surfaces its point-probe cost relative to the
  // B+-tree baseline (hash: no root-to-leaf walk).
  return std::max<SimTime>(
      1, static_cast<SimTime>(static_cast<double>(costs_.cpu_index_probe_us) *
                                  seg->probe_cost_factor() +
                              0.5));
}

void Node::FetchPage(tx::Txn* txn, SegmentId seg, uint16_t page,
                     bool for_write) {
  const storage::PageAccess acc = buffer_.FetchPage(txn->now, seg, page,
                                                    for_write);
  txn->disk_us += acc.disk_us;
  txn->net_us += acc.net_us;
  txn->latch_us += acc.latch_us;
  txn->AdvanceTo(acc.done);
}

void Node::AcquireLock(tx::Txn* txn, const tx::LockResource& res,
                       tx::LockMode mode) {
  const tx::LockGrant grant = tm_->locks().Acquire(
      res, mode, txn->id, txn->now, txn->now + costs_.lock_hold_estimate_us);
  txn->lock_wait_us += grant.waited_us;
  txn->AdvanceTo(grant.granted_at);
}

void Node::LockForRead(tx::Txn* txn, catalog::Partition* part, Key key) {
  if (cc_ == tx::CcScheme::kMvcc) return;  // Snapshot reads take no locks.
  AcquireLock(txn, tx::LockResource::Partition(part->id()), tx::LockMode::kIS);
  AcquireLock(txn, tx::LockResource::Record(part->id(), key),
              tx::LockMode::kS);
}

void Node::LockForWrite(tx::Txn* txn, catalog::Partition* part, Key key) {
  // Writers take IX + X under both schemes; under MVCC this is what makes
  // the migration drain (partition read lock, §4.3) block new writers while
  // readers continue.
  AcquireLock(txn, tx::LockResource::Partition(part->id()), tx::LockMode::kIX);
  AcquireLock(txn, tx::LockResource::Record(part->id(), key),
              tx::LockMode::kX);
}

void Node::AppendWal(tx::Txn* txn, tx::LogRecordType type,
                     catalog::Partition* part, Key key,
                     const std::vector<uint8_t>* after) {
  tx::LogRecord rec;
  rec.type = type;
  rec.txn = txn->id;
  if (part != nullptr) {
    rec.table = part->table();
    rec.partition = part->id();
  }
  rec.key = key;
  if (after != nullptr) rec.after_image = *after;
  const SimTime durable = log_->Append(txn->now, std::move(rec));
  txn->log_us += durable - txn->now;
  txn->AdvanceTo(durable);
}

Status Node::Read(tx::Txn* txn, catalog::Partition* part, Key key,
                  storage::Record* out) {
  if (!IsActive()) return Status::Unavailable("node in standby");
  LockForRead(txn, part, key);
  // Segment resolution is a free in-memory top-index walk; doing it before
  // the probe charge lets the probe (and everything after) land on the
  // segment's worker lane instead of the shared core pool.
  const SegmentId sid = part->SegmentFor(key);
  storage::Segment* seg = sid.valid() ? segments_->Get(sid) : nullptr;
  if (sid.valid()) WATTDB_CHECK(seg != nullptr);
  ChargeCpu(txn, ProbeCost(seg), seg);

  const auto view =
      tm_->versions().Read(part->table(), key, txn->begin_ts, txn->id);
  using Source = tx::VersionStore::ReadView::Source;
  switch (view.source) {
    case Source::kDeleted:
    case Source::kInvisible:
      return Status::NotFound("no visible version");
    case Source::kChain: {
      // Old version served from the (in-memory) version store.
      ChargeCpu(txn, costs_.cpu_record_read_us, seg);
      out->key = key;
      out->payload = *view.payload;
      return Status::OK();
    }
    case Source::kPage:
      break;
  }
  if (seg == nullptr) return Status::NotFound("key outside partition");
  auto pos = seg->Locate(key);
  if (!pos.ok()) return Status::NotFound("no such record");
  FetchPage(txn, sid, pos.value().page, /*for_write=*/false);
  auto rec = seg->ReadAt(pos.value());
  if (!rec.ok()) return rec.status();
  ChargeCpu(txn, costs_.cpu_record_read_us, seg);
  *out = std::move(rec).value();
  return Status::OK();
}

Result<storage::Segment*> Node::AllocateSegment(SimTime now,
                                                catalog::Partition* part,
                                                const KeyRange& range) {
  hw::Disk* disk = DataDisk(now);
  storage::Segment* seg = segments_->Create(id_, disk->id());
  Status s = part->AttachSegment(range, seg->id());
  if (!s.ok()) {
    (void)segments_->Drop(seg->id());
    return s;
  }
  return seg;
}

Result<storage::Segment*> Node::SegmentForInsert(SimTime now, tx::Txn* txn,
                                                 catalog::Partition* part,
                                                 Key key,
                                                 size_t record_bytes) {
  const SegmentId sid = part->SegmentFor(key);
  if (!sid.valid()) {
    // No covering segment: carve the gap between neighbors, clamped to the
    // route entry covering the key so the fresh segment never claims keys
    // this partition does not own (an over-wide claim turns into wrong
    // NotFounds and heal-time data drops downstream).
    KeyRange gap{kMinKey, kMaxKey};
    if (route_bound_) {
      const KeyRange bound = route_bound_(part->table(), key);
      if (bound.Contains(key)) gap = bound;
    }
    for (const auto& e : part->top_index().All()) {
      if (e.range.hi <= key) gap.lo = std::max(gap.lo, e.range.hi);
      if (e.range.lo > key) gap.hi = std::min(gap.hi, e.range.lo);
    }
    return AllocateSegment(now, part, gap);
  }
  storage::Segment* seg = segments_->Get(sid);
  WATTDB_CHECK(seg != nullptr);
  (void)record_bytes;
  // While the segment can still materialize pages it can always accept the
  // record (pages grow on demand up to the 32 MB geometry).
  if (seg->page_count() < kPagesPerSegment) {
    return seg;
  }
  // Segment is full: split its key range at the insert key. For the
  // monotonically increasing keys of TPC-C inserts this is a pure tail
  // split with no record movement.
  const KeyRange old_range = part->top_index().RangeOf(sid);
  const Key split = std::max(old_range.lo + 1, key);
  if (split <= old_range.lo || split >= old_range.hi) {
    return Status::ResourceExhausted("cannot split segment range");
  }
  WATTDB_RETURN_IF_ERROR(part->DetachSegment(sid));
  WATTDB_RETURN_IF_ERROR(
      part->AttachSegment(KeyRange{old_range.lo, split}, sid));
  auto fresh = AllocateSegment(now, part, KeyRange{split, old_range.hi});
  if (!fresh.ok()) return fresh.status();
  storage::Segment* target = fresh.value();
  // Records >= split must move to the fresh segment (none when keys grow).
  std::vector<storage::Record> to_move;
  seg->ScanRange(split, kMaxKey, [&](const storage::Record& r) {
    to_move.push_back(r);
    return true;
  });
  for (const auto& r : to_move) {
    auto ins = target->Insert(r.key, r.payload);
    WATTDB_CHECK(ins.ok());
    WATTDB_CHECK(seg->Delete(r.key).ok());
    if (txn != nullptr) ChargeCpu(txn, costs_.cpu_record_write_us, target);
  }
  return target;
}

Status Node::Insert(tx::Txn* txn, catalog::Partition* part, Key key,
                    const std::vector<uint8_t>& payload) {
  if (!IsActive()) return Status::Unavailable("node in standby");
  LockForWrite(txn, part, key);
  // Resolve the target segment first so the probe charge can be routed to
  // its worker lane (allocation/split costs inside still charge normally).
  auto seg = SegmentForInsert(txn->now, txn, part, key, payload.size());
  if (!seg.ok()) return seg.status();
  ChargeCpu(txn, ProbeCost(seg.value()), seg.value());
  auto pos = seg.value()->Insert(key, payload);
  if (!pos.ok()) return pos.status();
  FetchPage(txn, seg.value()->id(), pos.value().page, /*for_write=*/true);
  WATTDB_RETURN_IF_ERROR(tm_->versions().Write(
      part->table(), key, *txn, /*prior_in_page=*/std::nullopt, payload,
      /*deleted=*/false));
  ChargeCpu(txn, costs_.cpu_record_write_us, seg.value());
  AppendWal(txn, tx::LogRecordType::kInsert, part, key, &payload);
  return Status::OK();
}

Status Node::Update(tx::Txn* txn, catalog::Partition* part, Key key,
                    const std::vector<uint8_t>& payload) {
  if (!IsActive()) return Status::Unavailable("node in standby");
  LockForWrite(txn, part, key);
  const SegmentId sid = part->SegmentFor(key);
  storage::Segment* seg = sid.valid() ? segments_->Get(sid) : nullptr;
  if (sid.valid()) WATTDB_CHECK(seg != nullptr);
  ChargeCpu(txn, ProbeCost(seg), seg);
  if (seg == nullptr) return Status::NotFound("key outside partition");
  auto pos = seg->Locate(key);
  if (!pos.ok()) return Status::NotFound("no such record");
  // Read-modify-write: fetch for read, preserve pre-image for old
  // snapshots, then write in place.
  FetchPage(txn, sid, pos.value().page, /*for_write=*/false);
  auto current = seg->ReadAt(pos.value());
  if (!current.ok()) return current.status();
  WATTDB_RETURN_IF_ERROR(tm_->versions().Write(
      part->table(), key, *txn, std::move(current.value().payload), payload,
      /*deleted=*/false));
  WATTDB_RETURN_IF_ERROR(seg->Update(key, payload));
  FetchPage(txn, sid, pos.value().page, /*for_write=*/true);
  ChargeCpu(txn, costs_.cpu_record_write_us, seg);
  AppendWal(txn, tx::LogRecordType::kUpdate, part, key, &payload);
  return Status::OK();
}

Status Node::Delete(tx::Txn* txn, catalog::Partition* part, Key key) {
  if (!IsActive()) return Status::Unavailable("node in standby");
  LockForWrite(txn, part, key);
  const SegmentId sid = part->SegmentFor(key);
  storage::Segment* seg = sid.valid() ? segments_->Get(sid) : nullptr;
  if (sid.valid()) WATTDB_CHECK(seg != nullptr);
  ChargeCpu(txn, ProbeCost(seg), seg);
  if (seg == nullptr) return Status::NotFound("key outside partition");
  auto pos = seg->Locate(key);
  if (!pos.ok()) return Status::NotFound("no such record");
  FetchPage(txn, sid, pos.value().page, /*for_write=*/false);
  auto current = seg->ReadAt(pos.value());
  if (!current.ok()) return current.status();
  WATTDB_RETURN_IF_ERROR(tm_->versions().Write(
      part->table(), key, *txn, std::move(current.value().payload),
      std::nullopt, /*deleted=*/true));
  WATTDB_RETURN_IF_ERROR(seg->Delete(key));
  FetchPage(txn, sid, pos.value().page, /*for_write=*/true);
  ChargeCpu(txn, costs_.cpu_record_write_us, seg);
  AppendWal(txn, tx::LogRecordType::kDelete, part, key, nullptr);
  return Status::OK();
}

Status Node::ScanRange(tx::Txn* txn, catalog::Partition* part,
                       const KeyRange& range,
                       const std::function<bool(const storage::Record&)>& fn) {
  if (!IsActive()) return Status::Unavailable("node in standby");
  if (cc_ == tx::CcScheme::kMglRx) {
    // Coarse S lock on the partition for the scan.
    AcquireLock(txn, tx::LockResource::Partition(part->id()),
                tx::LockMode::kS);
  }
  ChargeCpu(txn, costs_.cpu_index_probe_us);

  // Overlay: chain-resolved keys in range (includes records deleted from
  // pages but visible to this snapshot).
  using Source = tx::VersionStore::ReadView::Source;
  struct Overlay {
    Source source;
    const std::vector<uint8_t>* payload;
    bool consumed = false;
  };
  std::unordered_map<Key, Overlay> overlay;
  tm_->versions().ForEachResolvedInRange(
      part->table(), range.lo, range.hi, txn->begin_ts, txn->id,
      [&](Key k, const tx::VersionStore::ReadView& view) {
        overlay[k] = Overlay{view.source, view.payload, false};
      });

  bool keep_going = true;
  for (const auto& entry : part->SegmentsInRange(range)) {
    if (!keep_going) break;
    storage::Segment* seg = segments_->Get(entry.segment);
    WATTDB_CHECK(seg != nullptr);
    uint16_t last_page = UINT16_MAX;
    seg->ScanRange(std::max(range.lo, entry.range.lo),
                   std::min(range.hi, entry.range.hi),
                   [&](const storage::Record& rec) {
                     auto pos = seg->Locate(rec.key);
                     if (pos.ok() && pos.value().page != last_page) {
                       last_page = pos.value().page;
                       FetchPage(txn, seg->id(), last_page, false);
                     }
                     ChargeCpu(txn, costs_.cpu_scan_record_us, seg);
                     auto ov = overlay.find(rec.key);
                     if (ov != overlay.end()) {
                       ov->second.consumed = true;
                       switch (ov->second.source) {
                         case Source::kDeleted:
                         case Source::kInvisible:
                           return true;  // Not visible to this snapshot.
                         case Source::kChain: {
                           storage::Record old;
                           old.key = rec.key;
                           old.payload = *ov->second.payload;
                           keep_going = fn(old);
                           return keep_going;
                         }
                         case Source::kPage:
                           break;
                       }
                     }
                     keep_going = fn(rec);
                     return keep_going;
                   });
    // Chain-only keys within this segment's covered range (deleted from the
    // pages but visible to old snapshots).
    if (keep_going) {
      const Key lo = std::max(range.lo, entry.range.lo);
      const Key hi = std::min(range.hi, entry.range.hi);
      for (auto& [k, ov] : overlay) {
        if (ov.consumed || k < lo || k >= hi) continue;
        ov.consumed = true;
        if (ov.source == Source::kChain && ov.payload != nullptr) {
          storage::Record old;
          old.key = k;
          old.payload = *ov.payload;
          ChargeCpu(txn, costs_.cpu_scan_record_us, seg);
          keep_going = fn(old);
          if (!keep_going) break;
        }
      }
    }
  }
  return Status::OK();
}

Status Node::LogCommit(tx::Txn* txn) {
  AppendWal(txn, tx::LogRecordType::kCommit, nullptr, 0, nullptr);
  return Status::OK();
}

void Node::ApplyUndo(
    const std::vector<tx::VersionStore::UndoEntry>& undo,
    const std::function<catalog::Partition*(TableId, Key)>& resolve) {
  for (const auto& e : undo) {
    catalog::Partition* part = resolve(e.table, e.key);
    if (part == nullptr) continue;
    const SegmentId sid = part->SegmentFor(e.key);
    storage::Segment* seg = sid.valid() ? segments_->Get(sid) : nullptr;
    if (e.pre_image.has_value()) {
      // Aborted update or delete: restore the pre-image.
      if (seg != nullptr && seg->Contains(e.key)) {
        WATTDB_CHECK(seg->Update(e.key, *e.pre_image).ok());
      } else if (seg != nullptr) {
        WATTDB_CHECK(seg->Insert(e.key, *e.pre_image).ok());
      } else {
        // No segment covers the key here: the restore is silently lost and
        // a committed record deleted-then-aborted stays deleted. The
        // resolver is supposed to prefer a partition whose top index covers
        // the key, so reaching this is a durability bug worth shouting.
        WATTDB_WARN("undo restore dropped: no segment covers key "
                    << e.key << " on node " << id_.value() << " partition "
                    << part->id().value());
      }
    } else {
      // Aborted insert: remove the provisional record.
      if (seg != nullptr && seg->Contains(e.key)) {
        WATTDB_CHECK(seg->Delete(e.key).ok());
      }
    }
  }
}

Status Node::RedoInto(catalog::Partition* part,
                      const std::vector<tx::LogRecord>& tail) {
  for (const auto& rec : tail) {
    if (rec.partition != part->id()) continue;
    switch (rec.type) {
      case tx::LogRecordType::kInsert: {
        auto seg = SegmentForInsert(/*now=*/0, /*txn=*/nullptr, part, rec.key,
                                    rec.after_image.size());
        if (!seg.ok()) return seg.status();
        auto pos = seg.value()->Insert(rec.key, rec.after_image);
        if (!pos.ok() && !pos.status().IsAlreadyExists()) return pos.status();
        break;
      }
      case tx::LogRecordType::kUpdate: {
        const SegmentId sid = part->SegmentFor(rec.key);
        // No covering segment: the range's segment was deliberately dropped
        // after this record was logged (heal-time stale-copy reconciliation,
        // or a mid-move detach) — the data intentionally left this partition,
        // so replaying the record would resurrect it as unrouted garbage.
        if (!sid.valid()) break;
        // Upsert: the after-image fully determines the record, and the tail
        // may legally update a key a preceding record deleted (an abort's
        // compensation record restoring the pre-image of a deleted row).
        Status up = segments_->Get(sid)->Update(rec.key, rec.after_image);
        if (up.IsNotFound()) {
          up = segments_->Get(sid)->Insert(rec.key, rec.after_image).status();
        }
        WATTDB_RETURN_IF_ERROR(up);
        break;
      }
      case tx::LogRecordType::kDelete: {
        const SegmentId sid = part->SegmentFor(rec.key);
        // Dropped segment: deleting from it is already more than done.
        if (!sid.valid()) break;
        // Idempotent: the delete may have reached the page before the
        // crash, in which case replaying it is a no-op.
        const Status del = segments_->Get(sid)->Delete(rec.key);
        if (!del.ok() && !del.IsNotFound()) return del;
        break;
      }
      default:
        break;
    }
  }
  return Status::OK();
}

}  // namespace wattdb::cluster
