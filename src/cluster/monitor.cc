#include "cluster/monitor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "cluster/cluster.h"

namespace wattdb::cluster {

std::vector<NodeStats> Monitor::Sample(SimTime window) const {
  std::vector<NodeStats> out;
  const SimTime now = cluster_->Now();
  const SimTime from = now > window ? now - window : 0;
  for (int i = 0; i < cluster_->num_nodes(); ++i) {
    Node* n = cluster_->node(NodeId(i));
    NodeStats s;
    s.node = n->id();
    // A partitioned node is alive but its heartbeats never reach the
    // master — the failure detector (and everyone planning off this
    // sample) must see it as gone, even though its data path still runs.
    s.active = n->IsActive() && !cluster_->IsPartitioned(n->id());
    if (s.active) {
      s.cpu = n->hardware().CpuUtilizationIn(from, now);
      for (const auto& d : n->hardware().disks()) {
        s.max_disk = std::max(s.max_disk, d->resource().UtilizationIn(from, now));
      }
      s.net_in = cluster_->network().IngressUtilization(n->id(), from, now);
      s.net_out = cluster_->network().EgressUtilization(n->id(), from, now);
      s.buffer_hits = n->buffer().hits();
      s.buffer_misses = n->buffer().misses();
    }
    out.push_back(s);
  }
  return out;
}

std::vector<SegmentHeat> Monitor::SampleSegments() {
  std::unordered_map<uint32_t, std::pair<int64_t, int64_t>> prev;
  for (const auto& [seg, counts] : last_counts_) {
    prev[seg.value()] = counts;
  }
  last_counts_.clear();
  std::vector<SegmentHeat> out;
  for (int i = 0; i < cluster_->num_nodes(); ++i) {
    for (storage::Segment* seg :
         cluster_->segments().SegmentsOn(NodeId(i))) {
      SegmentHeat h;
      h.segment = seg->id();
      h.storage_node = seg->storage_node();
      auto it = prev.find(seg->id().value());
      const int64_t pr = it == prev.end() ? 0 : it->second.first;
      const int64_t pw = it == prev.end() ? 0 : it->second.second;
      h.reads = seg->reads() - pr;
      h.writes = seg->writes() - pw;
      last_counts_.push_back({seg->id(), {seg->reads(), seg->writes()}});
      out.push_back(h);
    }
  }
  return out;
}

void Monitor::UpdateHeat(SimTime window, double alpha) {
  if (window <= 0) return;
  const double secs = ToSeconds(window);
  std::unordered_set<SegmentId> seen;
  for (const SegmentHeat& h : SampleSegments()) {
    const double rate = static_cast<double>(h.reads + h.writes) / secs;
    auto it = heat_.find(h.segment);
    if (it == heat_.end()) {
      heat_.emplace(h.segment, HeatEntry{h.segment, h.storage_node, rate});
    } else {
      it->second.node = h.storage_node;
      it->second.heat = alpha * rate + (1.0 - alpha) * it->second.heat;
    }
    seen.insert(h.segment);
  }
  // Dropped segments (merged away, or their node's bookkeeping gone): decay
  // as if idle, and forget them once their heat is noise.
  constexpr double kNegligible = 1e-3;
  for (auto it = heat_.begin(); it != heat_.end();) {
    if (seen.count(it->first) == 0) {
      it->second.heat *= 1.0 - alpha;
      if (it->second.heat < kNegligible) {
        it = heat_.erase(it);
        continue;
      }
    }
    ++it;
  }
}

std::vector<HeatEntry> Monitor::SegmentHeats() const {
  std::vector<HeatEntry> out;
  out.reserve(heat_.size());
  for (const auto& [seg, entry] : heat_) out.push_back(entry);
  return out;
}

std::unordered_map<NodeId, double> Monitor::NodeHeats() const {
  std::unordered_map<NodeId, double> out;
  for (const auto& [seg, entry] : heat_) out[entry.node] += entry.heat;
  return out;
}

std::vector<LaneStats> Monitor::LaneStatsFor(NodeId node) const {
  const lanes::LaneManager& lanes = cluster_->lanes();
  if (!lanes.enabled()) return {};
  std::vector<LaneStats> out(lanes.lanes_per_node());
  const SimTime now = cluster_->Now();
  for (int l = 0; l < lanes.lanes_per_node(); ++l) {
    out[l].lane = l;
    out[l].backlog_us = lanes.Backlog(node, l, now);
  }
  for (const auto& [sid, entry] : heat_) {
    if (entry.node != node) continue;
    storage::Segment* seg = cluster_->segments().Get(sid);
    if (seg == nullptr) continue;
    const int l = seg->lane();
    if (l < 0 || l >= lanes.lanes_per_node()) continue;  // Not yet assigned.
    out[l].heat += entry.heat;
  }
  return out;
}

std::vector<QueueDepthGauge> Monitor::QueueDepths() const {
  std::vector<QueueDepthGauge> out;
  const SimTime now = cluster_->Now();
  for (int i = 0; i < cluster_->num_nodes(); ++i) {
    Node* n = cluster_->node(NodeId(i));
    if (!n->IsActive()) continue;
    out.push_back(
        QueueDepthGauge{n->id(), cluster_->admission().QueueDepth(n->id(), now)});
  }
  return out;
}

}  // namespace wattdb::cluster
