#include "cluster/monitor.h"

#include <algorithm>
#include <unordered_map>

#include "cluster/cluster.h"

namespace wattdb::cluster {

std::vector<NodeStats> Monitor::Sample(SimTime window) const {
  std::vector<NodeStats> out;
  const SimTime now = cluster_->Now();
  const SimTime from = now > window ? now - window : 0;
  for (int i = 0; i < cluster_->num_nodes(); ++i) {
    Node* n = cluster_->node(NodeId(i));
    NodeStats s;
    s.node = n->id();
    s.active = n->IsActive();
    if (s.active) {
      s.cpu = n->hardware().CpuUtilizationIn(from, now);
      for (const auto& d : n->hardware().disks()) {
        s.max_disk = std::max(s.max_disk, d->resource().UtilizationIn(from, now));
      }
      s.net_in = cluster_->network().IngressUtilization(n->id(), from, now);
      s.net_out = cluster_->network().EgressUtilization(n->id(), from, now);
      s.buffer_hits = n->buffer().hits();
      s.buffer_misses = n->buffer().misses();
    }
    out.push_back(s);
  }
  return out;
}

std::vector<SegmentHeat> Monitor::SampleSegments() {
  std::unordered_map<uint32_t, std::pair<int64_t, int64_t>> prev;
  for (const auto& [seg, counts] : last_counts_) {
    prev[seg.value()] = counts;
  }
  last_counts_.clear();
  std::vector<SegmentHeat> out;
  for (int i = 0; i < cluster_->num_nodes(); ++i) {
    for (storage::Segment* seg :
         cluster_->segments().SegmentsOn(NodeId(i))) {
      SegmentHeat h;
      h.segment = seg->id();
      h.storage_node = seg->storage_node();
      auto it = prev.find(seg->id().value());
      const int64_t pr = it == prev.end() ? 0 : it->second.first;
      const int64_t pw = it == prev.end() ? 0 : it->second.second;
      h.reads = seg->reads() - pr;
      h.writes = seg->writes() - pw;
      last_counts_.push_back({seg->id(), {seg->reads(), seg->writes()}});
      out.push_back(h);
    }
  }
  return out;
}

}  // namespace wattdb::cluster
