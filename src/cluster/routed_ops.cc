#include "cluster/routed_ops.h"

#include <algorithm>
#include <unordered_map>

#include "cluster/node.h"

namespace wattdb::cluster {

namespace {

/// The admission class of a transaction's point ops; scans always go
/// through the batch class regardless of the flag.
admission::OpClass ClassOf(const tx::Txn* txn) {
  return txn != nullptr && txn->batch_priority
             ? admission::OpClass::kBatch
             : admission::OpClass::kLatencySensitive;
}

/// Admission gate of one routed op (or one owner-group of `ops` batch
/// keys): refused work returns ResourceExhausted before any hop is charged
/// or any node op runs — rejection is master-local and cheap, which is
/// what makes shedding better than queueing. System transactions
/// (migration, replication internals) are never refused.
Status AdmitOps(Cluster* c, tx::Txn* txn, NodeId owner, admission::OpClass cls,
                int ops = 1) {
  if (txn == nullptr || txn->system) return Status::OK();
  return c->admission().Admit(owner, cls, c->Now(), ops);
}

/// Book the admitted ops' departure from `owner`'s queue at the txn's
/// private completion time. §4.3 straggler retries and replica-fallback
/// visits ride the original admission — one admitted op, wherever its
/// record turns out to live.
void CompleteOps(Cluster* c, tx::Txn* txn, NodeId owner, int ops = 1) {
  if (txn == nullptr || txn->system) return;
  c->admission().Complete(owner, txn->now, ops);
}

}  // namespace

Status RoutedRead(Cluster* c, tx::Txn* txn, TableId table, Key key,
                  storage::Record* out) {
  // Reads (and only reads) may land on a serving warm replica instead of
  // the owner; a replica miss falls back to the authoritative copy below,
  // so bounded staleness can cost a retry but never a wrong NotFound.
  auto [part, second] = c->RouteForRead(txn, table, key);
  if (part == nullptr) return c->NoRouteStatus(table, key);
  WATTDB_RETURN_IF_ERROR(AdmitOps(c, txn, part->owner(), ClassOf(txn)));
  // Track which copy *determined* the result: a replica-served observation
  // is only staleness-bounded, and history checking must not hold it to
  // the strict register semantics.
  bool served_by_replica = part->is_replica();
  Status s = c->node(part->owner())->Read(txn, part, key, out);
  c->ChargeClientHop(txn, part->owner(), 96,
                     32 + (s.ok() ? out->StoredSize() : 0));
  if ((s.IsNotFound() || s.IsUnavailable()) && second != nullptr) {
    // Two-pointer protocol (§4.3): mid-move the record may already live at
    // the other location; visit it. A down owner (crashed node) is treated
    // like a miss — the secondary may hold the data, and once recovery
    // remaps the range the retry succeeds there. The same path serves the
    // replica-fanout miss: `second` is then the owner.
    const Status retry = c->node(second->owner())->Read(txn, second, key, out);
    c->ChargeClientHop(txn, second->owner(), 96,
                       32 + (retry.ok() ? out->StoredSize() : 0));
    // A dead primary and a missing secondary is "unreachable", not
    // "absent": the key may well exist on the downed node.
    if (!(s.IsUnavailable() && retry.IsNotFound())) {
      s = retry;
      served_by_replica = second->is_replica();
    }
  }
  if (s.ok() || s.IsNotFound()) {
    if (served_by_replica && txn != nullptr) ++txn->replica_reads;
  }
  CompleteOps(c, txn, part->owner());
  return s;
}

Status RoutedUpdate(Cluster* c, tx::Txn* txn, TableId table, Key key,
                    const std::vector<uint8_t>& payload) {
  auto [part, second] = c->RouteBoth(txn, table, key);
  if (part == nullptr) return c->NoRouteStatus(table, key);
  WATTDB_RETURN_IF_ERROR(AdmitOps(c, txn, part->owner(), ClassOf(txn)));
  c->ChargeClientHop(txn, part->owner(), 96 + payload.size(), 32);
  Status s = c->node(part->owner())->Update(txn, part, key, payload);
  if ((s.IsNotFound() || s.IsUnavailable()) && second != nullptr) {
    c->ChargeClientHop(txn, second->owner(), 96 + payload.size(), 32);
    const Status retry =
        c->node(second->owner())->Update(txn, second, key, payload);
    if (!(s.IsUnavailable() && retry.IsNotFound())) s = retry;
  }
  CompleteOps(c, txn, part->owner());
  return s;
}

Status RoutedUpsert(Cluster* c, tx::Txn* txn, TableId table, Key key,
                    const std::vector<uint8_t>& payload) {
  auto [part, second] = c->RouteBoth(txn, table, key);
  if (part == nullptr) return c->NoRouteStatus(table, key);
  // One admission decision for the whole logical op: the update probe, a
  // possible §4.3 secondary retry, and the insert fall-through are one
  // queued unit, not two (the old Update-then-Insert path double-charged
  // the owner's queue depth on every fresh key).
  WATTDB_RETURN_IF_ERROR(AdmitOps(c, txn, part->owner(), ClassOf(txn)));
  c->ChargeClientHop(txn, part->owner(), 96 + payload.size(), 32);
  Status s = c->node(part->owner())->Update(txn, part, key, payload);
  if ((s.IsNotFound() || s.IsUnavailable()) && second != nullptr) {
    c->ChargeClientHop(txn, second->owner(), 96 + payload.size(), 32);
    const Status retry =
        c->node(second->owner())->Update(txn, second, key, payload);
    if (!(s.IsUnavailable() && retry.IsNotFound())) s = retry;
  }
  if (s.IsNotFound()) {
    // Insert at the currently-routed location (may have shifted mid-move),
    // exactly like RoutedMultiWrite's upsert tail. A same-owner insert
    // rides the hop already charged above.
    catalog::Partition* ins = c->Route(txn, table, key);
    if (ins != nullptr) {
      if (ins->owner() != part->owner()) {
        c->ChargeClientHop(txn, ins->owner(), 96 + payload.size(), 32);
      }
      s = c->node(ins->owner())->Insert(txn, ins, key, payload);
    } else {
      // A fenced route mid-handoff must not read as "key absent".
      s = c->NoRouteStatus(table, key);
    }
  }
  CompleteOps(c, txn, part->owner());
  return s;
}

Status RoutedInsert(Cluster* c, tx::Txn* txn, TableId table, Key key,
                    const std::vector<uint8_t>& payload) {
  catalog::Partition* part = c->Route(txn, table, key);
  if (part == nullptr) return c->NoRouteStatus(table, key);
  WATTDB_RETURN_IF_ERROR(AdmitOps(c, txn, part->owner(), ClassOf(txn)));
  c->ChargeClientHop(txn, part->owner(), 96 + payload.size(), 32);
  const Status s = c->node(part->owner())->Insert(txn, part, key, payload);
  CompleteOps(c, txn, part->owner());
  return s;
}

Status RoutedDelete(Cluster* c, tx::Txn* txn, TableId table, Key key) {
  auto [part, second] = c->RouteBoth(txn, table, key);
  if (part == nullptr) return c->NoRouteStatus(table, key);
  WATTDB_RETURN_IF_ERROR(AdmitOps(c, txn, part->owner(), ClassOf(txn)));
  c->ChargeClientHop(txn, part->owner(), 96, 32);
  Status s = c->node(part->owner())->Delete(txn, part, key);
  if ((s.IsNotFound() || s.IsUnavailable()) && second != nullptr) {
    c->ChargeClientHop(txn, second->owner(), 96, 32);
    const Status retry = c->node(second->owner())->Delete(txn, second, key);
    if (!(s.IsUnavailable() && retry.IsNotFound())) s = retry;
  }
  CompleteOps(c, txn, part->owner());
  return s;
}

namespace {

/// Candidate locations of one batch key under the two-pointer protocol.
struct KeyRoute {
  catalog::Partition* part = nullptr;
  catalog::Partition* second = nullptr;
};

/// Key indexes grouped by the owner of their primary route, in first-
/// appearance order so charging is deterministic. An owner -> group index
/// keeps this O(keys) instead of O(keys × owners) — batches on wide
/// clusters touch many owners and this runs on every MultiGet/MultiPut.
std::vector<std::pair<NodeId, std::vector<size_t>>> GroupByOwner(
    const std::vector<KeyRoute>& routes) {
  std::vector<std::pair<NodeId, std::vector<size_t>>> groups;
  std::unordered_map<NodeId, size_t> group_of;
  group_of.reserve(routes.size());
  for (size_t i = 0; i < routes.size(); ++i) {
    if (routes[i].part == nullptr) continue;
    const NodeId owner = routes[i].part->owner();
    auto [it, inserted] = group_of.emplace(owner, groups.size());
    if (inserted) {
      groups.emplace_back(owner, std::vector<size_t>{i});
    } else {
      groups[it->second].second.push_back(i);
    }
  }
  return groups;
}

/// Worker lane of `key` at its routed partition, or -1 when no segment is
/// resolvable (a mid-move gap charges the shared pool like any work with
/// no segment affinity).
int LaneOfKey(Cluster* c, catalog::Partition* part, Key key) {
  if (!c->lanes().enabled() || part == nullptr) return -1;
  const SegmentId sid = part->SegmentFor(key);
  if (!sid.valid()) return -1;
  storage::Segment* seg = c->segments().Get(sid);
  if (seg == nullptr) return -1;
  return c->lanes().LaneOf(seg);
}

/// Sub-group one owner group's key indexes by the worker lane of each key's
/// segment, in first-appearance order. With lanes disabled everything lands
/// in a single group, so the caller's fan-out loop degenerates to the plain
/// serial batch.
std::vector<std::vector<size_t>> GroupByLane(
    Cluster* c, const std::vector<size_t>& idxs,
    const std::function<int(size_t)>& lane_of) {
  if (!c->lanes().enabled()) return {idxs};
  std::vector<std::vector<size_t>> groups;
  std::unordered_map<int, size_t> group_of;
  group_of.reserve(idxs.size());
  for (size_t i : idxs) {
    auto [it, inserted] = group_of.emplace(lane_of(i), groups.size());
    if (inserted) {
      groups.push_back({i});
    } else {
      groups[it->second].push_back(i);
    }
  }
  return groups;
}

}  // namespace

Status RoutedMultiRead(Cluster* c, tx::Txn* txn, TableId table,
                       const std::vector<Key>& keys,
                       std::vector<StatusOr<storage::Record>>* out,
                       BatchStats* stats) {
  if (c == nullptr || txn == nullptr || out == nullptr) {
    return Status::InvalidArgument("RoutedMultiRead needs cluster/txn/out");
  }
  BatchStats local;
  out->assign(keys.size(),
              StatusOr<storage::Record>(Status::NotFound("no route")));

  std::vector<KeyRoute> routes(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    // Replica fan-out per key: hot keys spread over owner + serving
    // standbys, so one Zipf-hot owner stops bounding the whole batch.
    auto [part, second] = c->RouteForRead(txn, table, keys[i]);
    routes[i] = KeyRoute{part, second};
    if (part == nullptr) {
      // Distinguish "unrouted" from "fenced mid-handoff" per key, like the
      // point ops do.
      (*out)[i] = StatusOr<storage::Record>(c->NoRouteStatus(table, keys[i]));
    }
  }

  const NodeId master_id = c->master()->id();
  for (const auto& [owner, idxs] : GroupByOwner(routes)) {
    // Whole-group admission: the group is one queued unit of idxs.size()
    // ops on the owner. A refused group fails its keys with
    // ResourceExhausted and the batch moves on — other owners' groups may
    // still be admitted (partial shedding, like a partial owner outage).
    const Status admit =
        AdmitOps(c, txn, owner, ClassOf(txn), static_cast<int>(idxs.size()));
    if (!admit.ok()) {
      for (size_t i : idxs) (*out)[i] = StatusOr<storage::Record>(admit);
      local.shed_ops += static_cast<int>(idxs.size());
      continue;
    }
    // One request listing the group's keys, one response carrying its
    // records: the whole group rides a single round trip. On the owner the
    // group fans out over the worker lanes of its keys' segments —
    // shared-nothing intra-node parallelism: every lane's sub-batch starts
    // at the same instant and runs on that lane's private timeline, and the
    // group completes when its slowest lane does.
    size_t resp_bytes = 32;
    const SimTime group_start = txn->now;
    SimTime group_done = group_start;
    for (const auto& lane_idxs : GroupByLane(c, idxs, [&](size_t i) {
           return LaneOfKey(c, routes[i].part, keys[i]);
         })) {
      txn->now = group_start;
      for (size_t i : lane_idxs) {
        storage::Record rec;
        Status s = c->node(owner)->Read(txn, routes[i].part, keys[i], &rec);
        resp_bytes += s.ok() ? 32 + rec.StoredSize() : 8;
        // Conservative replica tagging: a straggler retry below may still
        // land on the authoritative copy, but over-tagging only relaxes
        // what history checking asserts about the observation.
        if ((s.ok() || s.IsNotFound()) && routes[i].part->is_replica()) {
          ++txn->replica_reads;
        }
        (*out)[i] = s.ok() ? StatusOr<storage::Record>(std::move(rec))
                           : StatusOr<storage::Record>(s);
      }
      group_done = std::max(group_done, txn->now);
    }
    txn->now = group_start;
    txn->AdvanceTo(group_done);
    c->ChargeClientHop(txn, owner, 96 + 8 * idxs.size(), resp_bytes);
    if (owner != master_id) ++local.owner_round_trips;
    CompleteOps(c, txn, owner, static_cast<int>(idxs.size()));
  }

  // Two-pointer protocol (§4.3): mid-move a record may already live at the
  // other location. Stragglers are retried one by one — they missed the
  // batch and pay their own hop.
  for (size_t i = 0; i < keys.size(); ++i) {
    const Status primary_status = (*out)[i].status();
    if (routes[i].second == nullptr ||
        !(primary_status.IsNotFound() || primary_status.IsUnavailable())) {
      continue;
    }
    storage::Record rec;
    const NodeId owner = routes[i].second->owner();
    Status s = c->node(owner)->Read(txn, routes[i].second, keys[i], &rec);
    c->ChargeClientHop(txn, owner, 96, 32 + (s.ok() ? rec.StoredSize() : 0));
    ++local.straggler_retries;
    if (s.ok()) (*out)[i] = std::move(rec);
  }

  if (stats != nullptr) stats->Add(local);
  return Status::OK();
}

Status RoutedMultiWrite(Cluster* c, tx::Txn* txn, TableId table,
                        const std::vector<KeyValue>& kvs,
                        std::vector<Status>* out, BatchStats* stats) {
  if (c == nullptr || txn == nullptr || out == nullptr) {
    return Status::InvalidArgument("RoutedMultiWrite needs cluster/txn/out");
  }
  BatchStats local;
  out->assign(kvs.size(), Status::NotFound("no route"));

  std::vector<KeyRoute> routes(kvs.size());
  for (size_t i = 0; i < kvs.size(); ++i) {
    auto [part, second] = c->RouteBoth(txn, table, kvs[i].key);
    routes[i] = KeyRoute{part, second};
    if (part == nullptr) (*out)[i] = c->NoRouteStatus(table, kvs[i].key);
  }

  const NodeId master_id = c->master()->id();
  for (const auto& [owner, idxs] : GroupByOwner(routes)) {
    // Whole-group admission, as in RoutedMultiRead.
    const Status admit =
        AdmitOps(c, txn, owner, ClassOf(txn), static_cast<int>(idxs.size()));
    if (!admit.ok()) {
      for (size_t i : idxs) (*out)[i] = admit;
      local.shed_ops += static_cast<int>(idxs.size());
      continue;
    }
    // The request ships every payload of the group at once (mirroring the
    // per-op order: charge, then write).
    size_t req_bytes = 96;
    for (size_t i : idxs) req_bytes += 8 + kvs[i].payload.size();
    c->ChargeClientHop(txn, owner, req_bytes, 32);
    if (owner != master_id) ++local.owner_round_trips;

    // Fan the group out over worker lanes exactly as RoutedMultiRead does:
    // each lane's sub-batch starts at the fan-out instant, the group
    // completes when its slowest lane does.
    const SimTime group_start = txn->now;
    SimTime group_done = group_start;
    for (const auto& lane_idxs : GroupByLane(c, idxs, [&](size_t i) {
           return LaneOfKey(c, routes[i].part, kvs[i].key);
         })) {
      txn->now = group_start;
      for (size_t i : lane_idxs) {
        const Key key = kvs[i].key;
        const std::vector<uint8_t>& payload = kvs[i].payload;
        Status s = c->node(owner)->Update(txn, routes[i].part, key, payload);
        if ((s.IsNotFound() || s.IsUnavailable()) &&
            routes[i].second != nullptr) {
          // §4.3 straggler: the record already moved; re-ship the payload.
          const NodeId second_owner = routes[i].second->owner();
          c->ChargeClientHop(txn, second_owner, 96 + payload.size(), 32);
          ++local.straggler_retries;
          const Status retry = c->node(second_owner)
                                   ->Update(txn, routes[i].second, key,
                                            payload);
          // An unreachable primary stays Unavailable (never NotFound, which
          // would fall through to the insert tail and shadow the dead copy).
          if (!(s.IsUnavailable() && retry.IsNotFound())) s = retry;
        }
        if (s.IsNotFound()) {
          // Upsert tail: insert at the currently-routed location (which may
          // have shifted under the batch mid-move).
          catalog::Partition* ins = c->Route(txn, table, key);
          if (ins != nullptr) {
            if (ins->owner() != owner) {
              c->ChargeClientHop(txn, ins->owner(), 96 + payload.size(), 32);
            }
            s = c->node(ins->owner())->Insert(txn, ins, key, payload);
            ++local.inserts;
          } else {
            // A fenced route mid-handoff must not read as "key absent".
            s = c->NoRouteStatus(table, key);
          }
        }
        (*out)[i] = s;
      }
      group_done = std::max(group_done, txn->now);
    }
    txn->now = group_start;
    txn->AdvanceTo(group_done);
    CompleteOps(c, txn, owner, static_cast<int>(idxs.size()));
  }

  if (stats != nullptr) stats->Add(local);
  return Status::OK();
}

Status RoutedScan(Cluster* c, tx::Txn* txn, TableId table,
                  const KeyRange& range,
                  const std::function<bool(const storage::Record&)>& fn) {
  // A range may span several partitions mid-migration: visit each route.
  // ScanRange returns OK for both completion and an early stop, so the
  // callback's verdict is tracked here to stop the cross-route loop too.
  bool stopped = false;
  for (const auto& route : c->catalog().RoutesInRange(table, range)) {
    catalog::Partition* part =
        c->Route(txn, table, std::max(range.lo, route.range.lo));
    if (part == nullptr) {
      // A fenced range must abort the scan, not be silently skipped — a
      // committed-but-unscanned record would read as lost.
      const Status rs =
          c->NoRouteStatus(table, std::max(range.lo, route.range.lo));
      if (rs.IsUnavailable()) return rs;
      continue;
    }
    const KeyRange sub{std::max(range.lo, route.range.lo),
                       std::min(range.hi, route.range.hi)};
    if (sub.Empty()) continue;
    // Scans always ride the batch class: under pressure a refused range
    // chunk aborts the scan (retryable at leisure) while point lookups
    // keep their reserved headroom.
    WATTDB_RETURN_IF_ERROR(
        AdmitOps(c, txn, part->owner(), admission::OpClass::kBatch));
    // Response sized by this route's records only (the historical scan
    // charged a running total across routes, double-billing earlier ones).
    size_t shipped = 0;
    Status s = c->node(part->owner())
                   ->ScanRange(txn, part, sub, [&](const storage::Record& r) {
                     shipped += r.StoredSize();
                     stopped = !fn(r);
                     return !stopped;
                   });
    if (!s.ok()) return s;
    c->ChargeClientHop(txn, part->owner(), 96, 32 + shipped);
    CompleteOps(c, txn, part->owner());
    if (stopped) break;
  }
  return Status::OK();
}

}  // namespace wattdb::cluster
