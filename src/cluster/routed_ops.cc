#include "cluster/routed_ops.h"

#include <algorithm>

#include "cluster/node.h"

namespace wattdb::cluster {

Status RoutedRead(Cluster* c, tx::Txn* txn, TableId table, Key key,
                  storage::Record* out) {
  auto [part, second] = c->RouteBoth(txn, table, key);
  if (part == nullptr) return Status::NotFound("no route");
  Status s = c->node(part->owner())->Read(txn, part, key, out);
  c->ChargeClientHop(txn, part->owner(), 96,
                     32 + (s.ok() ? out->StoredSize() : 0));
  if (s.IsNotFound() && second != nullptr) {
    // Two-pointer protocol (§4.3): mid-move the record may already live at
    // the other location; visit it.
    s = c->node(second->owner())->Read(txn, second, key, out);
    c->ChargeClientHop(txn, second->owner(), 96,
                       32 + (s.ok() ? out->StoredSize() : 0));
  }
  return s;
}

Status RoutedUpdate(Cluster* c, tx::Txn* txn, TableId table, Key key,
                    const std::vector<uint8_t>& payload) {
  auto [part, second] = c->RouteBoth(txn, table, key);
  if (part == nullptr) return Status::NotFound("no route");
  c->ChargeClientHop(txn, part->owner(), 96 + payload.size(), 32);
  Status s = c->node(part->owner())->Update(txn, part, key, payload);
  if (s.IsNotFound() && second != nullptr) {
    c->ChargeClientHop(txn, second->owner(), 96 + payload.size(), 32);
    s = c->node(second->owner())->Update(txn, second, key, payload);
  }
  return s;
}

Status RoutedInsert(Cluster* c, tx::Txn* txn, TableId table, Key key,
                    const std::vector<uint8_t>& payload) {
  catalog::Partition* part = c->Route(txn, table, key);
  if (part == nullptr) return Status::NotFound("no route");
  c->ChargeClientHop(txn, part->owner(), 96 + payload.size(), 32);
  return c->node(part->owner())->Insert(txn, part, key, payload);
}

Status RoutedDelete(Cluster* c, tx::Txn* txn, TableId table, Key key) {
  auto [part, second] = c->RouteBoth(txn, table, key);
  if (part == nullptr) return Status::NotFound("no route");
  c->ChargeClientHop(txn, part->owner(), 96, 32);
  Status s = c->node(part->owner())->Delete(txn, part, key);
  if (s.IsNotFound() && second != nullptr) {
    c->ChargeClientHop(txn, second->owner(), 96, 32);
    s = c->node(second->owner())->Delete(txn, second, key);
  }
  return s;
}

Status RoutedScan(Cluster* c, tx::Txn* txn, TableId table,
                  const KeyRange& range,
                  const std::function<bool(const storage::Record&)>& fn) {
  // A range may span several partitions mid-migration: visit each route.
  // ScanRange returns OK for both completion and an early stop, so the
  // callback's verdict is tracked here to stop the cross-route loop too.
  bool stopped = false;
  for (const auto& route : c->catalog().RoutesInRange(table, range)) {
    catalog::Partition* part =
        c->Route(txn, table, std::max(range.lo, route.range.lo));
    if (part == nullptr) continue;
    const KeyRange sub{std::max(range.lo, route.range.lo),
                       std::min(range.hi, route.range.hi)};
    if (sub.Empty()) continue;
    // Response sized by this route's records only (the historical scan
    // charged a running total across routes, double-billing earlier ones).
    size_t shipped = 0;
    Status s = c->node(part->owner())
                   ->ScanRange(txn, part, sub, [&](const storage::Record& r) {
                     shipped += r.StoredSize();
                     stopped = !fn(r);
                     return !stopped;
                   });
    if (!s.ok()) return s;
    c->ChargeClientHop(txn, part->owner(), 96, 32 + shipped);
    if (stopped) break;
  }
  return Status::OK();
}

}  // namespace wattdb::cluster
