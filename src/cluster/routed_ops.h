#ifndef WATTDB_CLUSTER_ROUTED_OPS_H_
#define WATTDB_CLUSTER_ROUTED_OPS_H_

#include <functional>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/record.h"

namespace wattdb::cluster {

/// Client-side record operations through the master's routing layer: resolve
/// (table, key) with the two-pointer protocol, charge the master<->owner
/// network hop, run the operation on the owner node, and — for reads,
/// updates, and deletes — retry on the secondary location while a move is in
/// flight ("queries are advised to visit both", §4.3). A crashed owner
/// surfaces as Unavailable: the secondary is tried first (mid-move the data
/// may already live there), and Unavailable is returned only when no live
/// location holds the key — callers retry after the master remaps or the
/// node recovers (src/fault). These are the only
/// sanctioned way for workload drivers and the facade API to touch records;
/// they keep catalog::Partition handles out of caller code.
///
/// Read responses are billed by the record actually shipped (32-byte
/// header + StoredSize; header only on a miss).
Status RoutedRead(Cluster* c, tx::Txn* txn, TableId table, Key key,
                  storage::Record* out);

Status RoutedUpdate(Cluster* c, tx::Txn* txn, TableId table, Key key,
                    const std::vector<uint8_t>& payload);

Status RoutedInsert(Cluster* c, tx::Txn* txn, TableId table, Key key,
                    const std::vector<uint8_t>& payload);

/// Update-or-insert as ONE admission unit. The historical Put path ran
/// RoutedUpdate and, on NotFound, RoutedInsert — two admission decisions
/// (and potentially one shed) for a single logical op, double-counting
/// queue depth exactly when the cluster is loaded enough for it to matter.
/// Here the update probe, the §4.3 secondary retry, and the insert
/// fall-through all ride one Admit/Complete pair, mirroring how
/// RoutedMultiWrite's upsert tail rides its group admission.
Status RoutedUpsert(Cluster* c, tx::Txn* txn, TableId table, Key key,
                    const std::vector<uint8_t>& payload);

Status RoutedDelete(Cluster* c, tx::Txn* txn, TableId table, Key key);

/// Visit visible records with keys in `range`. A range may span several
/// partitions mid-migration: every route overlapping the range is visited.
/// Returning false from `fn` stops the scan early.
Status RoutedScan(Cluster* c, tx::Txn* txn, TableId table,
                  const KeyRange& range,
                  const std::function<bool(const storage::Record&)>& fn);

// --- Owner-grouped batches -------------------------------------------------

/// One key->payload pair of a batched write.
struct KeyValue {
  Key key;
  std::vector<uint8_t> payload;
};

/// Accounting of one batched operation, for tests and benches: a batch
/// charges one master<->owner round trip per *owner node* it touches (plus
/// one per straggler key that needed the §4.3 second-location retry),
/// instead of one per key.
struct BatchStats {
  int owner_round_trips = 0;  ///< Hops charged to non-master owner groups.
  int straggler_retries = 0;  ///< Per-key second-location visits (§4.3).
  int inserts = 0;            ///< MultiWrite keys that fell through to insert.
  int shed_ops = 0;           ///< Keys refused by admission control.

  void Add(const BatchStats& other) {
    owner_round_trips += other.owner_round_trips;
    straggler_retries += other.straggler_retries;
    inserts += other.inserts;
    shed_ops += other.shed_ops;
  }
};

/// Batched point reads. Keys are grouped by the owner of their primary
/// route; each owner group ships as ONE request message listing its keys
/// and ONE response carrying the found records, so a batch pays one
/// master<->owner round trip per owner node rather than per key. Keys that
/// miss at the primary while a move is in flight are retried individually
/// at their secondary location, charged per straggler ("queries are advised
/// to visit both", §4.3). `out` is parallel to `keys`; the returned Status
/// is non-OK only for malformed calls — per-key misses land in `out`.
Status RoutedMultiRead(Cluster* c, tx::Txn* txn, TableId table,
                       const std::vector<Key>& keys,
                       std::vector<StatusOr<storage::Record>>* out,
                       BatchStats* stats = nullptr);

/// Batched upserts with the same owner-grouped hop charging: one request
/// per owner group carrying all of the group's payloads, one response.
/// Each key updates its primary location, retries the secondary mid-move
/// (re-shipping the payload, charged per straggler), and finally falls back
/// to an insert at the currently-routed partition. `out` is parallel to
/// `kvs`.
Status RoutedMultiWrite(Cluster* c, tx::Txn* txn, TableId table,
                        const std::vector<KeyValue>& kvs,
                        std::vector<Status>* out, BatchStats* stats = nullptr);

}  // namespace wattdb::cluster

#endif  // WATTDB_CLUSTER_ROUTED_OPS_H_
