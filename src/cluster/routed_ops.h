#ifndef WATTDB_CLUSTER_ROUTED_OPS_H_
#define WATTDB_CLUSTER_ROUTED_OPS_H_

#include <functional>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/record.h"

namespace wattdb::cluster {

/// Client-side record operations through the master's routing layer: resolve
/// (table, key) with the two-pointer protocol, charge the master<->owner
/// network hop, run the operation on the owner node, and — for reads,
/// updates, and deletes — retry on the secondary location while a move is in
/// flight ("queries are advised to visit both", §4.3). These are the only
/// sanctioned way for workload drivers and the facade API to touch records;
/// they keep catalog::Partition handles out of caller code.
///
/// Read responses are billed by the record actually shipped (32-byte
/// header + StoredSize; header only on a miss).
Status RoutedRead(Cluster* c, tx::Txn* txn, TableId table, Key key,
                  storage::Record* out);

Status RoutedUpdate(Cluster* c, tx::Txn* txn, TableId table, Key key,
                    const std::vector<uint8_t>& payload);

Status RoutedInsert(Cluster* c, tx::Txn* txn, TableId table, Key key,
                    const std::vector<uint8_t>& payload);

Status RoutedDelete(Cluster* c, tx::Txn* txn, TableId table, Key key);

/// Visit visible records with keys in `range`. A range may span several
/// partitions mid-migration: every route overlapping the range is visited.
/// Returning false from `fn` stops the scan early.
Status RoutedScan(Cluster* c, tx::Txn* txn, TableId table,
                  const KeyRange& range,
                  const std::function<bool(const storage::Record&)>& fn);

}  // namespace wattdb::cluster

#endif  // WATTDB_CLUSTER_ROUTED_OPS_H_
