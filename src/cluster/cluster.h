#ifndef WATTDB_CLUSTER_CLUSTER_H_
#define WATTDB_CLUSTER_CLUSTER_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "admission/admission.h"
#include "catalog/global_partition_table.h"
#include "cluster/node.h"
#include "common/rng.h"
#include "common/status.h"
#include "hw/network.h"
#include "hw/power.h"
#include "index/record_index.h"
#include "lanes/lane_manager.h"
#include "metrics/time_series.h"
#include "sim/clock.h"
#include "sim/event_queue.h"
#include "storage/segment_manager.h"
#include "tx/transaction_manager.h"

namespace wattdb::cluster {

/// Everything needed to stand up a simulated WattDB cluster.
struct ClusterConfig {
  int num_nodes = 4;                 ///< Total nodes incl. master (paper: 10).
  int initially_active = 1;          ///< Nodes powered on at t=0.
  hw::NodeHardwareSpec node_hw;
  storage::BufferSpec buffer;
  hw::NetworkSpec network;
  hw::PowerModelSpec power;
  NodeCostConfig costs;
  tx::CcScheme cc = tx::CcScheme::kMvcc;
  /// Intra-node parallel data plane: per-core shared-nothing worker lanes.
  lanes::LanePolicy lanes;
  /// Structure backing every segment-local primary-key index.
  index::IndexKind index_kind = index::IndexKind::kBTree;
  /// Power/metric sampling period.
  SimTime sample_period = kUsPerSec;
  uint64_t seed = 42;
};

/// The simulated shared-nothing cluster: nodes (node 0 is the master and
/// always active, §3.2), the interconnect, the global catalog, a single
/// transaction domain, and the power/energy bookkeeping of §3.1.
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- Accessors ---------------------------------------------------------
  sim::Clock& clock() { return clock_; }
  sim::EventQueue& events() { return events_; }
  hw::Network& network() { return network_; }
  const hw::PowerModel& power_model() const { return power_model_; }
  storage::SegmentManager& segments() { return segments_; }
  catalog::GlobalPartitionTable& catalog() { return catalog_; }
  tx::TransactionManager& tm() { return tm_; }
  /// Per-node admission queues. Always tracking (depth gauges work in
  /// every scenario); refuses work only when the policy installed at
  /// Db::Open enables shedding.
  admission::AdmissionController& admission() { return admission_; }
  const admission::AdmissionController& admission() const {
    return admission_;
  }
  /// Per-node worker lanes (no-op shell when the lane policy is off).
  lanes::LaneManager& lanes() { return lanes_; }
  const lanes::LaneManager& lanes() const { return lanes_; }
  Rng& rng() { return rng_; }
  const ClusterConfig& config() const { return config_; }

  /// The node with `id`, or nullptr when `id` is invalid or out of range.
  Node* node(NodeId id) {
    if (!id.valid() || id.value() >= nodes_.size()) return nullptr;
    return nodes_[id.value()].get();
  }
  Node* master() { return nodes_[0].get(); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  std::vector<Node*> ActiveNodes();
  int ActiveNodeCount() const;
  hw::Disk* FindDisk(DiskId id) {
    auto it = disk_index_.find(id);
    return it == disk_index_.end() ? nullptr : it->second;
  }

  // --- Power management --------------------------------------------------
  /// Begin booting a standby node; `on_ready` fires when it is active.
  Status PowerOn(NodeId id, std::function<void()> on_ready = nullptr);
  /// Immediately power a node down to standby. Fails if any segment's bytes
  /// still live on it ("nodes still having data on disk must not shut
  /// down", §4).
  Status PowerOff(NodeId id);

  /// Cluster draw (all nodes + switch) over [from, to).
  double WattsIn(SimTime from, SimTime to) const;

  // --- Network partitions ------------------------------------------------
  /// Cut the master<->node control link: the node's heartbeats stop
  /// reaching the failure detector, but the node stays active and its data
  /// path keeps serving (distinct from a crash — nothing is wiped, nothing
  /// stops committing). The master will declare it dead and promote its
  /// replicated ranges; epoch fencing is what keeps the still-alive owner
  /// from serving a range whose ownership moved on.
  Status PartitionNode(NodeId id);
  /// Restore the control link and reconcile: ranges promoted away while
  /// the node was deposed leave it holding stale copies — those are
  /// dropped (the catalog's view won; the node must not reclaim), while
  /// ranges fenced but never flipped (the standby died first) are
  /// restamped to the still-authoritative owner.
  Status HealPartition(NodeId id);
  bool IsPartitioned(NodeId id) const { return partitioned_.count(id) > 0; }

  /// Epoch fencing on the route serve path (on by default): an entry whose
  /// primary's claim token lags the entry's epoch was sealed by a
  /// promotion in flight — routing refuses to hand it out, so a deposed
  /// owner (dead or merely partitioned from the master) cannot take
  /// writes that the flip would silently drop. The chaos harness turns
  /// this off to demonstrate the invariant checker catching the bug.
  void set_epoch_fencing(bool on) { epoch_fencing_ = on; }
  bool epoch_fencing() const { return epoch_fencing_; }
  /// Serve-path refusals of fenced routes (observability for chaos/tests).
  uint64_t stale_route_refusals() const { return stale_route_refusals_; }

  /// Why Route/RouteBoth returned no partition for (table, key):
  /// Unavailable when the covering entry is fenced (ownership handoff in
  /// flight — retry later), NotFound when the key is simply unrouted.
  Status NoRouteStatus(TableId table, Key key) const;

  // --- Metrics -----------------------------------------------------------
  /// Start periodic sampling into `series` (may be null to sample only the
  /// energy meter). Sampling also prunes resource bookkeeping.
  void StartSampling(metrics::TimeSeries* series);
  void StopSampling() { sampling_ = false; }
  hw::EnergyMeter& energy() { return energy_; }

  /// Periodic version-store GC during sampling (on by default). The Fig. 3
  /// bench disables it for MVCC runs to model always-present old snapshots
  /// pinning the reclamation horizon.
  void set_auto_vacuum(bool on) { auto_vacuum_ = on; }

  /// Run the simulation until absolute time `until`.
  void RunUntil(SimTime until) { events_.RunUntil(until); }
  SimTime Now() const { return clock_.Now(); }

  // --- Transactions ------------------------------------------------------
  /// Begin a user transaction at the current simulated time.
  tx::Txn* BeginTxn(bool read_only = false) {
    return tm_.Begin(clock_.Now(), read_only);
  }

  /// Commit helper: commit record on `coordinator`, settle locks, collect
  /// the transaction's final latency. Returns the total latency.
  SimTime CommitTxn(Node* coordinator, tx::Txn* txn);

  /// Abort helper: roll pages back and release the txn.
  void AbortTxn(tx::Txn* txn);

  // --- Routing -----------------------------------------------------------
  /// Partition currently responsible for (table, key), following the
  /// two-pointer redirection protocol (§4.3): if the primary no longer
  /// covers the key but a secondary is registered, the secondary is used.
  /// Charges the redirect probe to `txn` when it happens.
  catalog::Partition* Route(tx::Txn* txn, TableId table, Key key);

  /// Both candidate locations for (table, key) under the two-pointer
  /// protocol: `second` is non-null only while a move is in flight. Callers
  /// that miss on the first location must retry on the second ("queries are
  /// advised to visit both", §4.3) — during a logical move an individual
  /// record may already have been deleted at the source and re-inserted at
  /// the target.
  std::pair<catalog::Partition*, catalog::Partition*> RouteBoth(
      tx::Txn* txn, TableId table, Key key);

  /// RouteBoth for *reads*: when the key has serving warm replicas and no
  /// move is in flight, the read is spread round-robin over the owner and
  /// the replicas (read scale-out under the replica policy's staleness
  /// bound). The second element is the authoritative fallback — a miss on
  /// a replica retries at the owner, so a bounded-stale copy can delay a
  /// read but never wrongly deny a key's existence. With a down owner the
  /// replicas keep serving until promotion flips the route. Writes must
  /// keep using RouteBoth/Route: they go to the owner only.
  std::pair<catalog::Partition*, catalog::Partition*> RouteForRead(
      tx::Txn* txn, TableId table, Key key);

  /// Ship an operation's request/response between the master (client
  /// endpoint) and the owner node, charging `txn`. No-op if owner is the
  /// master itself.
  void ChargeClientHop(tx::Txn* txn, NodeId owner, size_t req_bytes,
                       size_t resp_bytes);

 private:
  void SampleTick();

  /// Shared resolution core of Route/RouteBoth: pick the serving partition
  /// for `key` out of one already-fetched routing entry (primary, or the
  /// secondary / forwarding target mid-move), charging redirect probes to
  /// `txn`. Both public entry points pay exactly one catalog lookup.
  catalog::Partition* ResolveRoute(tx::Txn* txn,
                                   const catalog::RouteEntry& entry, Key key);

  /// True when `entry`'s primary carries a claim token older than the
  /// entry's epoch — the range was sealed by FenceRange and must not be
  /// served through the primary. Always false with fencing disabled.
  bool EntryFenced(const catalog::RouteEntry& entry) const;

  ClusterConfig config_;
  sim::Clock clock_;
  sim::EventQueue events_;
  hw::Network network_;
  hw::PowerModel power_model_;
  storage::SegmentManager segments_;
  catalog::GlobalPartitionTable catalog_;
  tx::TransactionManager tm_;
  admission::AdmissionController admission_;
  lanes::LaneManager lanes_;
  Rng rng_;

  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<DiskId, hw::Disk*> disk_index_;

  /// Nodes whose master<->node control link is cut (heartbeats dropped,
  /// data path alive).
  std::unordered_set<NodeId> partitioned_;
  bool epoch_fencing_ = true;
  uint64_t stale_route_refusals_ = 0;

  bool sampling_ = false;
  bool auto_vacuum_ = true;
  /// Round-robin ticket spreading fanned-out reads over owner + replicas.
  uint64_t read_ticket_ = 0;
  SimTime last_sample_ = 0;
  metrics::TimeSeries* series_ = nullptr;
  hw::EnergyMeter energy_;
};

}  // namespace wattdb::cluster

#endif  // WATTDB_CLUSTER_CLUSTER_H_
