#include "cluster/cluster.h"

#include <algorithm>

#include "common/logging.h"

namespace wattdb::cluster {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config), events_(&clock_), network_(config.network),
      power_model_(config.power), lanes_(config.lanes, config.num_nodes),
      rng_(config.seed) {
  WATTDB_CHECK(config.num_nodes >= 1);
  WATTDB_CHECK(config.initially_active >= 1);
  segments_.set_index_kind(config.index_kind);
  const int disks_per_node = config.node_hw.num_hdd + config.node_hw.num_ssd;
  for (int i = 0; i < config.num_nodes; ++i) {
    const NodeId id(i);
    network_.AddNode(id);
    auto node = std::make_unique<Node>(
        id, config.node_hw, config.buffer, config.costs, config.cc,
        DiskId(static_cast<uint32_t>(i * disks_per_node)), &segments_, &tm_,
        &network_, [this](DiskId d) { return FindDisk(d); });
    node->set_lane_manager(&lanes_);
    node->set_route_bound_fn([this](TableId table, Key key) {
      const auto entry = catalog_.Route(table, key);
      return entry.has_value() ? entry->range : KeyRange{kMinKey, kMaxKey};
    });
    for (auto& disk : node->hardware().disks()) {
      disk_index_[disk->id()] = disk.get();
    }
    node->hardware().set_power_state(i < config.initially_active
                                         ? hw::PowerState::kActive
                                         : hw::PowerState::kStandby);
    nodes_.push_back(std::move(node));
  }
}

std::vector<Node*> Cluster::ActiveNodes() {
  std::vector<Node*> out;
  for (auto& n : nodes_) {
    if (n->IsActive()) out.push_back(n.get());
  }
  return out;
}

int Cluster::ActiveNodeCount() const {
  int n = 0;
  for (const auto& node : nodes_) {
    if (node->hardware().power_state() == hw::PowerState::kActive) ++n;
  }
  return n;
}

Status Cluster::PowerOn(NodeId id, std::function<void()> on_ready) {
  Node* n = node(id);
  if (n == nullptr) return Status::NotFound("no such node");
  if (n->hardware().power_state() == hw::PowerState::kActive) {
    if (on_ready) on_ready();
    return Status::OK();
  }
  if (n->hardware().power_state() == hw::PowerState::kBooting) {
    return Status::Busy("already booting");
  }
  n->hardware().set_power_state(hw::PowerState::kBooting);
  events_.ScheduleAfter(config_.node_hw.boot_time_us,
                        [this, id, cb = std::move(on_ready)]() {
                          node(id)->hardware().set_power_state(
                              hw::PowerState::kActive);
                          WATTDB_INFO("node " << id.value() << " active");
                          if (cb) cb();
                        });
  return Status::OK();
}

Status Cluster::PowerOff(NodeId id) {
  Node* n = node(id);
  if (n == nullptr) return Status::NotFound("no such node");
  if (n->IsMaster()) return Status::InvalidArgument("master never sleeps");
  const std::vector<storage::Segment*> resident = segments_.SegmentsOn(id);
  if (!resident.empty()) {
    // "Nodes still having data on disk must not shut down" (§4): name the
    // offender so the caller can see what still needs draining.
    const storage::Segment* seg = resident.front();
    return Status::Busy(
        "node " + std::to_string(id.value()) + " still holds " +
        std::to_string(resident.size()) + " segment(s); e.g. segment " +
        std::to_string(seg->id().value()) + " with " +
        std::to_string(seg->DiskBytes()) + " bytes on disk");
  }
  const auto owned = catalog_.PartitionsOwnedBy(id);
  if (!owned.empty()) {
    return Status::Busy("node " + std::to_string(id.value()) +
                        " still owns " + std::to_string(owned.size()) +
                        " partition(s); e.g. partition " +
                        std::to_string(owned.front()->id().value()));
  }
  n->hardware().set_power_state(hw::PowerState::kStandby);
  return Status::OK();
}

Status Cluster::PartitionNode(NodeId id) {
  Node* n = node(id);
  if (n == nullptr) return Status::NotFound("no such node");
  if (n->IsMaster()) {
    return Status::InvalidArgument(
        "cannot partition the master from itself: it holds the catalog");
  }
  if (!n->IsActive()) {
    return Status::FailedPrecondition(
        "node " + std::to_string(id.value()) +
        " is down; a partition separates a *live* node from the master");
  }
  if (!partitioned_.insert(id).second) {
    return Status::AlreadyExists("node already partitioned");
  }
  WATTDB_INFO("net: node " << id.value() << " partitioned from master at t="
                           << ToSeconds(clock_.Now()) << "s");
  return Status::OK();
}

Status Cluster::HealPartition(NodeId id) {
  Node* n = node(id);
  if (n == nullptr) return Status::NotFound("no such node");
  if (partitioned_.erase(id) == 0) {
    return Status::NotFound("node is not partitioned");
  }
  // Reconcile what happened while the node was deposed. Unlike a crash
  // restart there is no redo pass — the node never lost anything — so the
  // catalog walk happens here.
  for (catalog::Partition* p : catalog_.PartitionsOwnedBy(id)) {
    if (p->is_replica()) continue;
    // A fixed claim token for the whole walk: restamping one range must
    // not inflate the claim the next range is judged under.
    const uint64_t token = p->route_epoch();
    for (const auto& entry : p->top_index().All()) {
      const auto route = catalog_.Route(p->table(), entry.range.lo);
      if (route.has_value() && route->primary == p->id()) {
        // Still the owner. Heal any orphaned fence (promotion sealed the
        // range but the flip never landed — the standby died first): the
        // live owner lost nothing, so restamp it authoritative again.
        // Per covering sub-entry, since a split range may be part-promoted.
        for (const auto& sub :
             catalog_.RoutesInRange(p->table(), entry.range)) {
          if (sub.primary != p->id() || sub.epoch <= token) continue;
          const Status heal =
              catalog_.ReclaimRange(p->table(), sub.range, p->id(), token);
          WATTDB_CHECK_MSG(heal.ok(),
                           "fence heal failed: " << heal.ToString());
        }
        continue;
      }
      if (route.has_value() && route->secondary == p->id()) continue;
      // The range was promoted away while this node was deposed. The
      // catalog's owner has been taking writes — this copy is stale and
      // must be dropped, never reclaimed (reclaiming would doubly-serve
      // every write the new owner committed).
      (void)p->DetachSegment(entry.segment);
      n->buffer().InvalidateSegment(entry.segment);
      (void)segments_.Drop(entry.segment);
      WATTDB_INFO("net: node " << id.value() << " heal: stale copy of ["
                               << entry.range.lo << "," << entry.range.hi
                               << ") dropped");
    }
    if (p->top_index().All().empty() && catalog_.RouteRefs(p->id()) == 0) {
      (void)catalog_.DropPartition(p->id());
    }
  }
  WATTDB_INFO("net: node " << id.value() << " rejoined at t="
                           << ToSeconds(clock_.Now()) << "s");
  return Status::OK();
}

bool Cluster::EntryFenced(const catalog::RouteEntry& entry) const {
  if (!epoch_fencing_) return false;
  const catalog::Partition* p = catalog_.GetPartition(entry.primary);
  return p != nullptr && p->route_epoch() < entry.epoch;
}

Status Cluster::NoRouteStatus(TableId table, Key key) const {
  auto entry = catalog_.Route(table, key);
  if (entry.has_value() && EntryFenced(*entry)) {
    return Status::Unavailable("route fenced: ownership handoff in flight");
  }
  return Status::NotFound("no route");
}

double Cluster::WattsIn(SimTime from, SimTime to) const {
  if (to <= from) return 0.0;
  double watts = power_model_.SwitchWatts();
  for (const auto& n : nodes_) {
    watts += n->hardware().PowerIn(power_model_, from, to);
  }
  return watts;
}

void Cluster::StartSampling(metrics::TimeSeries* series) {
  series_ = series;
  if (sampling_) return;
  sampling_ = true;
  last_sample_ = clock_.Now();
  events_.ScheduleAfter(config_.sample_period, [this]() { SampleTick(); });
}

void Cluster::SampleTick() {
  if (!sampling_) return;
  const SimTime now = clock_.Now();
  const double watts = WattsIn(last_sample_, now);
  energy_.Accumulate(watts, last_sample_, now);
  if (series_ != nullptr) {
    series_->RecordPower(last_sample_, now, watts);
  }
  // Prune resource interval bookkeeping we have already accounted, keeping
  // enough history for the master's monitoring windows.
  const SimTime keep_from = now - 30 * kUsPerSec;
  for (auto& n : nodes_) n->hardware().Prune(keep_from);
  lanes_.Prune(keep_from);
  network_.Prune(keep_from);
  tm_.locks().Prune(last_sample_);
  if (auto_vacuum_) tm_.Vacuum();
  last_sample_ = now;
  events_.ScheduleAfter(config_.sample_period, [this]() { SampleTick(); });
}

SimTime Cluster::CommitTxn(Node* coordinator, tx::Txn* txn) {
  coordinator->LogCommit(txn);
  tm_.Commit(txn);
  const SimTime latency = txn->Elapsed();
  return latency;
}

void Cluster::AbortTxn(tx::Txn* txn) {
  auto undo = tm_.Abort(txn);
  // Undo must be applied at the location that actually holds the record —
  // during a move the primary route may still point at the old partition
  // while the write (and therefore the undo target) lives at the new one.
  auto resolve = [this, txn](TableId table, Key key) -> catalog::Partition* {
    auto [first, second] = RouteBoth(txn, table, key);
    if (first != nullptr) {
      const SegmentId sid = first->SegmentFor(key);
      if (sid.valid()) {
        storage::Segment* seg = segments_.Get(sid);
        if (seg != nullptr && seg->Contains(key)) return first;
      }
    }
    if (second != nullptr) {
      const SegmentId sid = second->SegmentFor(key);
      if (sid.valid()) {
        storage::Segment* seg = segments_.Get(sid);
        if (seg != nullptr && seg->Contains(key)) return second;
      }
    }
    // Record exists at neither (aborted delete whose tombstone must be
    // undone by re-insertion). The restore needs a partition whose top
    // index covers the key: mid-move the newer location may not have
    // attached its segment yet, and aiming the undo at a segmentless
    // partition would silently drop the re-insertion (a committed record
    // deleted-then-aborted would stay deleted). Prefer the newer location
    // only when it can actually take the record.
    if (second != nullptr && second->SegmentFor(key).valid()) return second;
    if (first != nullptr && first->SegmentFor(key).valid()) return first;
    if (second != nullptr) return second;
    return first;
  };
  for (const auto& e : undo) {
    catalog::Partition* part = resolve(e.table, e.key);
    if (part == nullptr) continue;
    Node* owner = node(part->owner());
    std::vector<tx::VersionStore::UndoEntry> one;
    one.push_back(e);
    owner->ApplyUndo(one, resolve);
    // Compensation log record (ARIES CLR): the rollback itself is logged so
    // that crash-recovery redo of the whole tail reproduces the abort
    // instead of resurrecting the aborted write (src/fault replays tails
    // without knowing transaction outcomes — owner logs carry no commit
    // records, those live on the coordinator).
    tx::LogRecord clr;
    clr.txn = txn->id;
    clr.table = e.table;
    clr.partition = part->id();
    clr.key = e.key;
    if (e.pre_image.has_value()) {
      clr.type = tx::LogRecordType::kUpdate;
      clr.after_image = *e.pre_image;
    } else {
      clr.type = tx::LogRecordType::kDelete;
    }
    owner->log().Append(clock_.Now(), clr);
  }
}

catalog::Partition* Cluster::ResolveRoute(tx::Txn* txn,
                                          const catalog::RouteEntry& entry,
                                          Key key) {
  catalog::Partition* primary = catalog_.GetPartition(entry.primary);
  if (primary == nullptr) return nullptr;
  // Two-pointer protocol: while a move is in flight the primary may no
  // longer (or not yet) cover the key — probe it, then follow to the
  // secondary/forwarding target (§4.3 Correctness).
  if (primary->SegmentFor(key).valid() || !entry.secondary.valid()) {
    if (primary->state() == catalog::PartitionState::kForwarding &&
        primary->forward_to().valid() && !primary->SegmentFor(key).valid()) {
      catalog::Partition* fwd = catalog_.GetPartition(primary->forward_to());
      if (fwd != nullptr && txn != nullptr) {
        // Redirect probe costs one hop to the old node.
        ChargeClientHop(txn, primary->owner(), 64, 64);
        return fwd;
      }
    }
    return primary;
  }
  catalog::Partition* secondary = catalog_.GetPartition(entry.secondary);
  if (secondary != nullptr && secondary->SegmentFor(key).valid()) {
    if (txn != nullptr) ChargeClientHop(txn, primary->owner(), 64, 64);
    return secondary;
  }
  return primary;
}

catalog::Partition* Cluster::Route(tx::Txn* txn, TableId table, Key key) {
  auto entry = catalog_.Route(table, key);
  if (!entry.has_value()) return nullptr;
  if (EntryFenced(*entry)) {
    ++stale_route_refusals_;
    return nullptr;
  }
  return ResolveRoute(txn, *entry, key);
}

std::pair<catalog::Partition*, catalog::Partition*> Cluster::RouteForRead(
    tx::Txn* txn, TableId table, Key key) {
  // Fast path: no replica routes on the table at all — plain two-pointer.
  if (!catalog_.HasReplicas(table)) return RouteBoth(txn, table, key);
  auto entry = catalog_.Route(table, key);
  if (!entry.has_value()) return {nullptr, nullptr};
  // Mid-move the two candidate locations are the §4.3 pointers, not the
  // replicas: a bounded-stale copy must not mask the moving record.
  if (entry->secondary.valid()) return RouteBoth(txn, table, key);

  const bool fenced = EntryFenced(*entry);
  catalog::Partition* primary = catalog_.GetPartition(entry->primary);
  std::vector<catalog::Partition*> standbys;
  for (const auto& rr : catalog_.ReplicasFor(table, key)) {
    if (!rr.serving) continue;
    // Only a standby of *this key's* primary may answer: a replica whose
    // over-wide range merely covers the key never held it, and during a
    // failover window (no fallback) its honest answer would be a wrong
    // NotFound — the linearizability checker caught exactly this.
    if (rr.src.valid() && rr.src != entry->primary) continue;
    catalog::Partition* rp = catalog_.GetPartition(rr.partition);
    if (rp == nullptr) continue;
    Node* host = node(rp->owner());
    if (host == nullptr || !host->IsActive()) continue;
    standbys.push_back(rp);
  }
  if (standbys.empty()) {
    if (fenced) ++stale_route_refusals_;
    return fenced ? std::pair<catalog::Partition*, catalog::Partition*>{
                        nullptr, nullptr}
                  : RouteBoth(txn, table, key);
  }

  Node* owner = primary != nullptr ? node(primary->owner()) : nullptr;
  const bool owner_up = !fenced && owner != nullptr && owner->IsActive();
  if (!owner_up) {
    // Failover window: the owner crashed (or its route is fenced mid-
    // handoff) but promotion has not flipped the route yet — replicas
    // carry the read traffic, with no fallback (the authoritative copy is
    // down, or sealed against serving).
    if (fenced) ++stale_route_refusals_;
    return {standbys[read_ticket_++ % standbys.size()], nullptr};
  }
  const size_t pick = read_ticket_++ % (standbys.size() + 1);
  if (pick == 0) return {primary, standbys.front()};
  return {standbys[pick - 1], primary};
}

std::pair<catalog::Partition*, catalog::Partition*> Cluster::RouteBoth(
    tx::Txn* txn, TableId table, Key key) {
  // One catalog lookup feeds both pointers — this runs once per key on
  // every data-plane operation.
  auto entry = catalog_.Route(table, key);
  if (!entry.has_value()) return {nullptr, nullptr};
  // A fenced entry yields *neither* pointer: handing the sealed primary
  // back as the retry target would let the two-pointer protocol serve the
  // very route the fence exists to refuse.
  if (EntryFenced(*entry)) {
    ++stale_route_refusals_;
    return {nullptr, nullptr};
  }
  catalog::Partition* first = ResolveRoute(txn, *entry, key);
  catalog::Partition* primary = catalog_.GetPartition(entry->primary);
  catalog::Partition* second = nullptr;
  if (entry->secondary.valid()) {
    catalog::Partition* sec = catalog_.GetPartition(entry->secondary);
    if (sec != nullptr && sec != first) second = sec;
  }
  if (second == nullptr && primary != nullptr && primary != first) {
    second = primary;
  }
  return {first, second};
}

void Cluster::ChargeClientHop(tx::Txn* txn, NodeId owner, size_t req_bytes,
                              size_t resp_bytes) {
  const NodeId master_id = nodes_[0]->id();
  if (owner == master_id) return;
  const SimTime t0 = txn->now;
  const SimTime done =
      network_.RoundTrip(t0, master_id, owner, req_bytes, resp_bytes);
  txn->net_us += done - t0;
  txn->AdvanceTo(done);
}

}  // namespace wattdb::cluster
