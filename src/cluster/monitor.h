#ifndef WATTDB_CLUSTER_MONITOR_H_
#define WATTDB_CLUSTER_MONITOR_H_

#include <vector>

#include "common/types.h"

namespace wattdb::cluster {

class Cluster;

/// Utilization snapshot of one node over a sampling window. Nodes report
/// these "every few seconds" to the master (§3.4), which correlates them
/// with per-partition activity to locate the source of imbalance.
struct NodeStats {
  NodeId node;
  bool active = false;
  double cpu = 0.0;        ///< Core-pool utilization in [0, 1].
  double max_disk = 0.0;   ///< Busiest local disk's utilization.
  double net_in = 0.0;
  double net_out = 0.0;
  int64_t buffer_hits = 0;
  int64_t buffer_misses = 0;
};

/// Per-segment activity since the previous sample (the "performance-
/// critical data collected for each DB partition", §3.4).
struct SegmentHeat {
  SegmentId segment;
  NodeId storage_node;
  int64_t reads = 0;
  int64_t writes = 0;
};

/// Computes utilization windows over the cluster's resource timelines.
class Monitor {
 public:
  explicit Monitor(Cluster* cluster) : cluster_(cluster) {}

  /// Stats for every node over [now - window, now).
  std::vector<NodeStats> Sample(SimTime window) const;

  /// Heat of every segment since the last call (counters are deltas).
  std::vector<SegmentHeat> SampleSegments();

 private:
  Cluster* cluster_;
  std::vector<std::pair<SegmentId, std::pair<int64_t, int64_t>>> last_counts_;
};

}  // namespace wattdb::cluster

#endif  // WATTDB_CLUSTER_MONITOR_H_
