#ifndef WATTDB_CLUSTER_MONITOR_H_
#define WATTDB_CLUSTER_MONITOR_H_

#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace wattdb::cluster {

class Cluster;

/// Utilization snapshot of one node over a sampling window. Nodes report
/// these "every few seconds" to the master (§3.4), which correlates them
/// with per-partition activity to locate the source of imbalance.
struct NodeStats {
  NodeId node;
  bool active = false;
  double cpu = 0.0;        ///< Core-pool utilization in [0, 1].
  double max_disk = 0.0;   ///< Busiest local disk's utilization.
  double net_in = 0.0;
  double net_out = 0.0;
  int64_t buffer_hits = 0;
  int64_t buffer_misses = 0;
};

/// Per-segment activity since the previous sample (the "performance-
/// critical data collected for each DB partition", §3.4).
struct SegmentHeat {
  SegmentId segment;
  NodeId storage_node;
  int64_t reads = 0;
  int64_t writes = 0;
};

/// Outstanding admitted operations on one node, as sampled from the
/// cluster's admission controller. The master's overload detector and the
/// bench snapshots read these instead of poking the controller directly.
struct QueueDepthGauge {
  NodeId node;
  int64_t queued_ops = 0;
};

/// Per-lane roll-up on one node (lane policy on): the EWMA heat of the
/// segments mapped to the lane, and the lane's outstanding scheduled work.
/// The master's intra-node balancing tier ranks lanes by these.
struct LaneStats {
  int lane = 0;
  double heat = 0.0;       ///< Sum of mapped segments' EWMA heat.
  SimTime backlog_us = 0;  ///< Work scheduled beyond "now" on the lane.
};

/// Smoothed activity of one segment: an exponentially weighted moving
/// average of its access rate, attributed to the node currently storing it.
/// The master's BalancePolicy ranks segments and nodes by this value.
struct HeatEntry {
  SegmentId segment;
  NodeId node;        ///< Where the segment lives as of the last sample.
  double heat = 0.0;  ///< EWMA of (reads + writes) per second.
};

/// Computes utilization windows over the cluster's resource timelines.
class Monitor {
 public:
  explicit Monitor(Cluster* cluster) : cluster_(cluster) {}

  /// Stats for every node over [now - window, now).
  std::vector<NodeStats> Sample(SimTime window) const;

  /// Heat of every segment since the last call (counters are deltas).
  std::vector<SegmentHeat> SampleSegments();

  /// Fold one SampleSegments() window into the per-segment EWMA heat:
  /// heat' = alpha * rate + (1 - alpha) * heat, where rate is the segment's
  /// (reads + writes) / window. Segments no longer present decay toward
  /// zero and are dropped once negligible. Call once per control tick with
  /// the tick period as `window` (§3.4: the master correlates node reports
  /// with per-partition activity).
  void UpdateHeat(SimTime window, double alpha);

  /// Current per-segment heat, unordered.
  std::vector<HeatEntry> SegmentHeats() const;

  /// EWMA heat of one segment (0 if never seen).
  double HeatOf(SegmentId segment) const {
    auto it = heat_.find(segment);
    return it == heat_.end() ? 0.0 : it->second.heat;
  }

  /// Per-node roll-up: sum of the heat of the segments each node stores.
  std::unordered_map<NodeId, double> NodeHeats() const;

  /// Admission-queue depth of every *active* node as of now. Works whether
  /// or not shedding is enabled — the controller tracks depths regardless.
  std::vector<QueueDepthGauge> QueueDepths() const;

  /// Per-lane heat/backlog roll-up for `node` (one entry per lane, in lane
  /// order). Empty when the lane policy is off. Heat of segments whose lane
  /// is not yet assigned (fresh, or just moved in from another node) is
  /// omitted — they join a lane on first access.
  std::vector<LaneStats> LaneStatsFor(NodeId node) const;

 private:
  Cluster* cluster_;
  std::vector<std::pair<SegmentId, std::pair<int64_t, int64_t>>> last_counts_;
  std::unordered_map<SegmentId, HeatEntry> heat_;
};

}  // namespace wattdb::cluster

#endif  // WATTDB_CLUSTER_MONITOR_H_
