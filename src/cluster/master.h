#ifndef WATTDB_CLUSTER_MASTER_H_
#define WATTDB_CLUSTER_MASTER_H_

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/forecast.h"
#include "cluster/monitor.h"
#include "common/constants.h"
#include "common/status.h"

namespace wattdb::cluster {

/// Progress counters every repartitioning scheme maintains; exposed on the
/// Repartitioner interface so facade users can watch a move without knowing
/// the concrete scheme.
struct RebalanceStats {
  int64_t segments_moved = 0;
  int64_t records_moved = 0;
  int64_t bytes_shipped = 0;
  /// Move tasks planned by the current (or last) rebalance/drain.
  int64_t tasks_planned = 0;
  /// Tasks abandoned because their source or target node failed.
  int64_t tasks_failed = 0;
  SimTime started_at = 0;
  SimTime finished_at = 0;
  bool running = false;

  /// Fraction of planned tasks resolved (moved or failed) — the trigger
  /// metric for "crash node X at migration progress p%" fault injection.
  double progress() const {
    if (tasks_planned <= 0) return running ? 0.0 : 1.0;
    return static_cast<double>(segments_moved + tasks_failed) /
           static_cast<double>(tasks_planned);
  }
};

/// Abstract repartitioning engine the master drives. Implemented by the
/// three schemes in src/partition (physical, logical, physiological) and
/// extensible through the scheme registry in src/api.
class Repartitioner {
 public:
  virtual ~Repartitioner() = default;

  virtual std::string name() const = 0;

  /// Progress of the current (or last) rebalance.
  virtual const RebalanceStats& stats() const = 0;

  /// Move `fraction` of every table's data from its current owners onto
  /// `targets` (which must be active). `done` fires when all moves have
  /// completed. Runs online: queries continue while data moves.
  virtual Status StartRebalance(const std::vector<NodeId>& targets,
                                double fraction,
                                std::function<void()> done) = 0;

  /// Move everything owned by `victim` to the remaining active nodes so the
  /// node can be powered off (scale-in, §3.4).
  virtual Status Drain(NodeId victim, std::function<void()> done) = 0;

  virtual bool InProgress() const = 0;

  /// Notification that `down` crashed. Implementations abandon queued move
  /// tasks whose source or target died and let in-flight copies abort
  /// instead of installing onto (or from) a dead node. Default: no-op.
  virtual void OnNodeFailure(NodeId down) { (void)down; }
};

/// Thresholds and cadence of the master's control loop (§3.4).
struct MasterPolicy {
  double cpu_upper = kCpuUpperThreshold;  ///< 80%: scale out / repartition.
  double cpu_lower = kCpuLowerThreshold;  ///< Under it on all nodes: scale in.
  SimTime check_period = 5 * kUsPerSec;
  SimTime stats_window = 10 * kUsPerSec;
  /// Consecutive violating samples before acting (hysteresis).
  int trigger_after = 2;
  bool enable_scale_out = true;
  bool enable_scale_in = true;
  /// Scale out proactively when the utilization *forecast* crosses the
  /// threshold (§3.4: decisions consider "the expected future workloads").
  bool use_forecast = false;
  SimTime forecast_horizon = 30 * kUsPerSec;
};

/// The master node's control plane: watches node utilization, decides when
/// to power nodes on/off, and triggers repartitioning through the active
/// scheme. Query routing itself lives in Cluster::Route; this class is the
/// elasticity controller.
class Master {
 public:
  Master(Cluster* cluster, Repartitioner* repartitioner,
         MasterPolicy policy = MasterPolicy());

  /// Start the periodic control loop.
  void Start();
  void Stop() { running_ = false; }

  /// Explicitly trigger a rebalance onto `extra_nodes` standby nodes,
  /// moving `fraction` of the data (the Fig. 6 experiment: 2 -> 4 nodes,
  /// 50% of records). Boots the targets first if needed.
  Status TriggerRebalance(const std::vector<NodeId>& targets, double fraction,
                          std::function<void()> done = nullptr);

  /// Fig. 8: power up `helpers` and use them for log shipping and remote
  /// (rDMA) buffer space on behalf of `assisted` nodes.
  Status AttachHelpers(const std::vector<NodeId>& helpers,
                       const std::vector<NodeId>& assisted,
                       size_t remote_buffer_pages);
  /// Detach and power the helpers back down.
  Status DetachHelpers();

  Monitor& monitor() { return monitor_; }
  LoadForecaster& forecaster() { return forecaster_; }
  const MasterPolicy& policy() const { return policy_; }
  int scale_out_events() const { return scale_out_events_; }
  int scale_in_events() const { return scale_in_events_; }

 private:
  void ControlTick();
  void MaybeScaleOut(const std::vector<NodeStats>& stats);
  void MaybeScaleIn(const std::vector<NodeStats>& stats);

  Cluster* cluster_;
  Repartitioner* repartitioner_;
  MasterPolicy policy_;
  Monitor monitor_;
  LoadForecaster forecaster_;
  bool running_ = false;
  int over_count_ = 0;
  int under_count_ = 0;
  int scale_out_events_ = 0;
  int scale_in_events_ = 0;

  std::vector<NodeId> active_helpers_;
  std::vector<NodeId> assisted_nodes_;
};

}  // namespace wattdb::cluster

#endif  // WATTDB_CLUSTER_MASTER_H_
