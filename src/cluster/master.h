#ifndef WATTDB_CLUSTER_MASTER_H_
#define WATTDB_CLUSTER_MASTER_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "admission/admission.h"
#include "cluster/cluster.h"
#include "cluster/forecast.h"
#include "cluster/monitor.h"
#include "common/constants.h"
#include "common/status.h"

namespace wattdb::cluster {

/// Progress counters every repartitioning scheme maintains; exposed on the
/// Repartitioner interface so facade users can watch a move without knowing
/// the concrete scheme.
struct RebalanceStats {
  int64_t segments_moved = 0;
  int64_t records_moved = 0;
  int64_t bytes_shipped = 0;
  /// Move tasks planned by the current (or last) rebalance/drain.
  int64_t tasks_planned = 0;
  /// Tasks abandoned because their source or target node failed.
  int64_t tasks_failed = 0;
  /// Queued drain tasks orphaned by their *destination* failing that were
  /// immediately re-targeted onto a surviving destination instead of
  /// abandoned. Only a drain can do this — its source (the drain victim)
  /// is fixed, so abandoning the task would strand data on the victim
  /// until a later attempt re-plans it.
  int64_t tasks_replanned = 0;
  SimTime started_at = 0;
  SimTime finished_at = 0;
  bool running = false;

  /// Fraction of planned tasks resolved (moved or failed) — the trigger
  /// metric for "crash node X at migration progress p%" fault injection.
  double progress() const {
    if (tasks_planned <= 0) return running ? 0.0 : 1.0;
    return static_cast<double>(segments_moved + tasks_failed) /
           static_cast<double>(tasks_planned);
  }
};

/// One targeted segment move, as planned by the master's heat balancer:
/// this segment's key range leaves its source partition for `dst_node`.
/// Executed by the scheme with the same §4.3 protocol as fraction-based
/// rebalancing (two-pointer routing, drain, crash abandonment).
struct SegmentMove {
  TableId table;
  SegmentId segment;
  KeyRange range;
  PartitionId src_partition;
  NodeId src_node;
  NodeId dst_node;
};

/// Abstract repartitioning engine the master drives. Implemented by the
/// three schemes in src/partition (physical, logical, physiological) and
/// extensible through the scheme registry in src/api.
class Repartitioner {
 public:
  virtual ~Repartitioner() = default;

  virtual std::string name() const = 0;

  /// Progress of the current (or last) rebalance.
  virtual const RebalanceStats& stats() const = 0;

  /// Move `fraction` of every table's data from its current owners onto
  /// `targets` (which must be active). `done` fires when all moves have
  /// completed. Runs online: queries continue while data moves.
  virtual Status StartRebalance(const std::vector<NodeId>& targets,
                                double fraction,
                                std::function<void()> done) = 0;

  /// Move everything owned by `victim` to the remaining active nodes so the
  /// node can be powered off (scale-in, §3.4).
  virtual Status Drain(NodeId victim, std::function<void()> done) = 0;

  /// Execute an explicit list of segment moves (the heat balancer's plan).
  /// `done` fires when every move completed or was abandoned; progress and
  /// failures land in stats() like any other rebalance. Schemes that cannot
  /// transfer ownership reject with NotSupported.
  virtual Status StartMoves(const std::vector<SegmentMove>& moves,
                            std::function<void()> done) {
    (void)moves;
    (void)done;
    return Status::NotSupported(name() + " does not support targeted moves");
  }

  /// Whether Drain can empty a node at all. Physical partitioning cannot
  /// transfer ownership, so the master's flaky-node drain-and-exclude
  /// degrades to restart-in-place under it.
  virtual bool SupportsDrain() const { return true; }

  virtual bool InProgress() const = 0;

  /// Notification that `down` crashed. Implementations abandon queued move
  /// tasks whose source or target died and let in-flight copies abort
  /// instead of installing onto (or from) a dead node. Default: no-op.
  virtual void OnNodeFailure(NodeId down) { (void)down; }
};

/// What the self-healing control loop does with nodes it declares dead.
/// §3.4 has the master continuously correlating node reports with cluster
/// state and *reacting* — node departure is a first-class event, not an
/// operator command.
struct RecoveryPolicy {
  /// React to detected failures. Off: the detector still declares nodes
  /// dead (and notifies the scheme) but never restarts or drains — the
  /// "without auto-healing" baseline of bench_self_healing.
  bool auto_heal = true;
  /// Consecutive missed Monitor::Sample windows before a previously-active
  /// node is declared dead (k).
  int declare_dead_after = 2;
  /// Restart-in-place until a node has been declared dead this many times;
  /// from then on it is treated as flaky — restarted once more for data
  /// access, drained onto survivors, powered off, and excluded from any
  /// future recruitment. 0 disables (always restart in place). Requires a
  /// scheme with SupportsDrain(); otherwise restart-in-place is kept.
  int exclude_after_crashes = 0;
  /// Wait between declaring a node dead and issuing its restart.
  SimTime restart_backoff = 0;
  /// When an attached helper dies: after falling the assisted nodes back to
  /// local logging, recruit a standby node as the replacement helper.
  bool replace_failed_helpers = true;
};

/// Heat-driven rebalancing knobs (§3.4: the master correlates node load
/// with per-partition activity to locate — and fix — the source of
/// imbalance). When the hottest node's EWMA heat exceeds `trigger_ratio`
/// times the active-node mean for `trigger_after` consecutive control
/// ticks, the master moves the node's hottest segments onto the coldest
/// eligible nodes through the scheme's targeted-move machinery.
struct BalancePolicy {
  bool enabled = false;
  /// Hottest node heat > trigger_ratio × mean heat counts as imbalanced.
  double trigger_ratio = 1.5;
  /// Smoothing of the per-segment heat EWMA (1 = last window only).
  double ewma_alpha = 0.5;
  /// Consecutive imbalanced ticks before acting (hysteresis).
  int trigger_after = 2;
  /// After a rebalance completes, no new one triggers for this long. A
  /// segment moved successfully is banned from moving again for *twice*
  /// this window — strictly longer than the round gate, so the first
  /// round after a cooldown can never bounce a just-moved segment back
  /// (ping-pong guard).
  SimTime cooldown = 20 * kUsPerSec;
  /// Segment-move budget of one rebalance round.
  int max_moves_per_round = 4;
  /// Total cluster heat (ops/s) below which the balancer stays quiet — an
  /// idle cluster's noise must not shuffle segments.
  double min_total_heat = 50.0;
};

/// Warm-replica knobs: which segments deserve standby copies, how many,
/// and how stale a copy may be while still serving reads. Driven from the
/// master's control tick through the replica hooks (the ReplicaManager in
/// src/replica does the actual bootstrapping and log application).
struct ReplicaPolicy {
  bool enabled = false;
  /// Warm standbys maintained per hot segment.
  int replicas_per_segment = 1;
  /// Per-segment EWMA heat (ops/s) above which a segment is replicated.
  double heat_threshold = 50.0;
  /// Budget: at most this many distinct segments replicated at once.
  int max_replicated_segments = 4;
  /// Staleness bound: a replica lagging more than this many unapplied log
  /// records is pulled out of read fan-out until it catches back up.
  int64_t max_lag_records = 256;
  /// Fan eligible reads out over owner + serving replicas (round-robin).
  bool read_fanout = true;
  /// On owner death, promote the freshest bootstrapped replica instead of
  /// waiting for the owner's full WAL-tail redo.
  bool promote_on_failure = true;
  /// A replica whose segment has cooled below heat_threshold is dropped
  /// only after staying cold this long (hysteresis against flapping).
  SimTime drop_cold_after = 30 * kUsPerSec;
};

/// One decision of the master's control loop, timestamped in simulated
/// time. Db::control_events() exposes the full timeline so benches and
/// tests can assert *when* the master detected, restarted, drained, or
/// failed over — without scraping logs.
enum class ControlEventType {
  kScaleOut,        ///< CPU threshold crossed; standby node enlisted.
  kScaleIn,         ///< All nodes under the lower bound; node drained.
  kNodeSuspected,   ///< First missed heartbeat window.
  kNodeDeclaredDead,///< k consecutive windows missed.
  kRestartIssued,   ///< Auto-restart handed to the recovery subsystem.
  kNodeRecovered,   ///< Redo finished; node serving again.
  kDrainStarted,    ///< Flaky node: drain of its data onto survivors began.
  kNodeExcluded,    ///< Drained, powered off, barred from future duty.
  kHelperLost,      ///< An attached helper was declared dead.
  kHelperFallback,  ///< An assisted node fell back to local logging.
  kHelperRecruited, ///< A standby was wired as the replacement helper.
  kHeatImbalance,   ///< Sustained skew: hottest node over trigger_ratio×mean.
  kHeatMovePlanned, ///< One hot segment scheduled to move to a cold node.
  kHeatMoveAbandoned,///< A planned heat move did not install (crash mid-move).
  kHeatRebalanced,  ///< A heat-rebalance round finished; detail has counts.
  kReplicaCreated,  ///< A warm standby of a hot segment finished bootstrap.
  kReplicaCaughtUp, ///< A replica's lag fell under the staleness bound.
  kReplicaPromoted, ///< Catch-up-and-flip failover: replica became owner.
  kReplicaDropped,  ///< A replica was discarded (cooled, moved, host lost).
  kOverloadDetected,///< Admission queues sustained past overload_ratio.
  kOverloadCleared, ///< Queue depths fell back under the overload line.
  kLaneImbalance,   ///< Hot node's hottest lane over lane_trigger_ratio×mean.
  kSegmentRelaned,  ///< One segment remapped to a colder lane (intra-node).
  kLaneRebalanced,  ///< An intra-node re-lane round finished; detail: counts.
};

const char* ToString(ControlEventType type);

struct ControlEvent {
  SimTime at = 0;
  ControlEventType type = ControlEventType::kScaleOut;
  NodeId node;
  std::string detail;
};

/// Thresholds and cadence of the master's control loop (§3.4).
struct MasterPolicy {
  double cpu_upper = kCpuUpperThreshold;  ///< 80%: scale out / repartition.
  double cpu_lower = kCpuLowerThreshold;  ///< Under it on all nodes: scale in.
  SimTime check_period = 5 * kUsPerSec;
  SimTime stats_window = 10 * kUsPerSec;
  /// Consecutive violating samples before acting (hysteresis).
  int trigger_after = 2;
  bool enable_scale_out = true;
  bool enable_scale_in = true;
  /// Scale out proactively when the utilization *forecast* crosses the
  /// threshold (§3.4: decisions consider "the expected future workloads").
  bool use_forecast = false;
  SimTime forecast_horizon = 30 * kUsPerSec;
  /// Failure detection and self-healing knobs.
  RecoveryPolicy recovery;
  /// Heat-driven rebalancing knobs (skew reaction, §3.4).
  BalancePolicy balance;
  /// Warm standbys of hot segments (read scale-out + fast failover).
  ReplicaPolicy replica;
  /// Per-node admission queue caps + the overload signal (src/admission).
  /// The queue caps themselves are enforced at the routing layer; the
  /// master only *watches* sustained overload and treats it as scale-out
  /// and heat-balance pressure.
  admission::AdmissionPolicy admission;
};

/// The master node's control plane: watches node utilization, decides when
/// to power nodes on/off, triggers repartitioning through the active
/// scheme, and — since the self-healing loop — detects node failures from
/// missed heartbeat windows and reacts per RecoveryPolicy: restart in
/// place, drain-and-exclude flaky nodes, and fail over dead helper nodes.
/// Query routing itself lives in Cluster::Route; this class is the
/// elasticity and availability controller.
class Master {
 public:
  /// Issues a restart (boot + redo) of a crashed node; the callback fires
  /// at the simulated time recovery completes, with a human-readable
  /// summary. Wired by the Db facade to fault::RecoveryManager::Restart —
  /// the master itself stays ignorant of the fault subsystem's types.
  using RestartFn =
      std::function<Status(NodeId, std::function<void(const std::string&)>)>;
  /// Ground-truth "crashed and not yet recovered" probe (RecoveryManager::
  /// IsDown). Used only as a recruitment guard — detection itself is
  /// heartbeat-based.
  using IsDownFn = std::function<bool(NodeId)>;

  /// Hooks into the replica subsystem (src/replica), wired by the Db
  /// facade so the master stays ignorant of the ReplicaManager's types —
  /// same pattern as the recovery hooks.
  struct ReplicaHooks {
    /// Run one replica maintenance round (create/catch-up/drop), called
    /// from every control tick while the replica policy is enabled.
    std::function<void()> tick;
    /// Promote the freshest standby of every range owned by the dead
    /// node; returns how many promotions happened.
    std::function<int(NodeId)> promote_for;
    /// Drop all standbys hosted *on* `node` (dead, drained, or excluded —
    /// their unlogged state is gone or about to be). Returns count.
    std::function<int(NodeId)> drop_hosted_on;
  };

  Master(Cluster* cluster, Repartitioner* repartitioner,
         MasterPolicy policy = MasterPolicy());

  /// Start the periodic control loop.
  void Start();
  void Stop() { running_ = false; }

  /// Wire the self-healing actions to the recovery subsystem. Without a
  /// restart hook the detector still declares nodes dead but cannot heal.
  void SetRecoveryHooks(RestartFn restart, IsDownFn is_down) {
    restart_fn_ = std::move(restart);
    is_down_fn_ = std::move(is_down);
  }

  void SetReplicaHooks(ReplicaHooks hooks) {
    replica_hooks_ = std::move(hooks);
  }

  /// Emit a control event on behalf of a subsystem the master drives
  /// through hooks (the ReplicaManager) so every decision lands on the one
  /// shared timeline.
  void EmitEvent(ControlEventType type, NodeId node, std::string detail) {
    Emit(type, node, std::move(detail));
  }

  /// Currently wired as a log-shipping helper (Fig. 8)? Replica placement
  /// avoids helpers: their disks serve other nodes' WAL traffic and they
  /// are powered off wholesale at DetachHelpers.
  bool IsHelper(NodeId node) const {
    return helper_assignments_.count(node) > 0;
  }

  /// Explicitly trigger a rebalance onto `extra_nodes` standby nodes,
  /// moving `fraction` of the data (the Fig. 6 experiment: 2 -> 4 nodes,
  /// 50% of records). Boots the targets first if needed.
  Status TriggerRebalance(const std::vector<NodeId>& targets, double fraction,
                          std::function<void()> done = nullptr);

  /// Fig. 8: power up `helpers` and use them for log shipping and remote
  /// (rDMA) buffer space on behalf of `assisted` nodes.
  Status AttachHelpers(const std::vector<NodeId>& helpers,
                       const std::vector<NodeId>& assisted,
                       size_t remote_buffer_pages);
  /// Detach and power the helpers back down.
  Status DetachHelpers();

  Monitor& monitor() { return monitor_; }
  LoadForecaster& forecaster() { return forecaster_; }
  const MasterPolicy& policy() const { return policy_; }
  int scale_out_events() const { return scale_out_events_; }
  int scale_in_events() const { return scale_in_events_; }

  // --- Self-healing observers ---------------------------------------------
  /// Timeline of control decisions, in simulated-time order.
  const std::vector<ControlEvent>& control_events() const {
    return control_events_;
  }
  /// Called synchronously for every event as it is emitted.
  void set_control_event_listener(std::function<void(const ControlEvent&)> f) {
    event_listener_ = std::move(f);
  }
  /// Nodes declared dead by the heartbeat detector so far.
  int nodes_declared_dead() const { return nodes_declared_dead_; }
  /// Restarts the master issued itself (no operator call).
  int auto_restarts() const { return auto_restarts_; }
  int helper_failovers() const { return helper_failovers_; }
  /// Times the detector has declared `node` dead (the flaky counter).
  int crash_count(NodeId node) const {
    auto it = crash_counts_.find(node);
    return it == crash_counts_.end() ? 0 : it->second;
  }
  /// Drained, powered off, and barred from future recruitment.
  bool IsExcluded(NodeId node) const { return excluded_.count(node) > 0; }

  // --- Overload observers ---------------------------------------------------
  /// Sustained-overload episodes detected so far (kOverloadDetected events).
  int overload_events() const { return overload_events_; }
  /// Overload pressure is currently sustained: queue depths have sat past
  /// overload_ratio × max_queue_ops for overload_trigger_after ticks. Feeds
  /// MaybeScaleOut and relaxes the heat-balance trigger.
  bool OverloadPressure() const {
    return policy_.admission.enabled &&
           overload_streak_ >= policy_.admission.overload_trigger_after;
  }

  // --- Heat-balancing observers -------------------------------------------
  /// Rebalance rounds the heat balancer started.
  int heat_rebalances() const { return heat_rebalances_; }
  /// Segment moves the heat balancer planned / saw installed / abandoned.
  int heat_moves_planned() const { return heat_moves_planned_; }
  int heat_moves_completed() const { return heat_moves_completed_; }
  int heat_moves_abandoned() const { return heat_moves_abandoned_; }
  /// Intra-node tier: re-lane rounds run and segments remapped so far.
  int lane_rebalances() const { return lane_rebalances_; }
  int segments_relaned() const { return segments_relaned_; }

 private:
  void ControlTick();
  void MaybeScaleOut(const std::vector<NodeStats>& stats);
  void MaybeScaleIn(const std::vector<NodeStats>& stats);
  /// Count nodes whose admission-queue depth sits past the overload line
  /// and keep the sustained-overload streak; emits kOverloadDetected /
  /// kOverloadCleared at the streak edges.
  void CheckOverload();

  // Heat balancing internals.
  /// Update the monitor's heat EWMA and, when the imbalance trigger has
  /// held for `trigger_after` ticks, plan and start a round of moves.
  void MaybeBalanceHeat();
  /// Greedy plan: hottest segments of `hot` onto the coldest eligible
  /// nodes until the projected hot-node heat reaches the mean or the move
  /// budget runs out. Respects per-segment cooldowns.
  std::vector<SegmentMove> PlanHeatMoves(
      NodeId hot, double mean,
      const std::unordered_map<NodeId, double>& node_heat);
  /// Completion bookkeeping for one round: verify which planned moves
  /// installed, stamp cooldowns, emit the completion/abandonment events.
  void FinishHeatRound(const std::vector<SegmentMove>& plan);
  /// Intra-node tier of heat balancing: when the hot node's lanes are
  /// themselves skewed, remap hot segments onto its coldest lane (cheap,
  /// in-memory, no network) and report true — the cross-node tier is then
  /// skipped this round. False when lanes are off/even: the imbalance is
  /// genuine node-level pressure and escalates to a migration.
  bool MaybeRelaneHot(NodeId hot);

  // Self-healing internals.
  void CheckHeartbeats(const std::vector<NodeStats>& stats);
  void DeclareDead(NodeId node);
  /// Issue the restart of a declared-dead node, retrying while the node is
  /// busy booting elsewhere; `drain_after` runs drain-and-exclude once
  /// recovered (the flaky-node path).
  void IssueRestart(NodeId node, bool drain_after, int attempt);
  void StartDrainAndExclude(NodeId node, int attempt);
  void HandleHelperFailure(NodeId helper);
  /// A standby node the master may boot: not excluded, not a known-crashed
  /// or suspected node.
  bool EligibleRecruit(NodeId node) const;
  void Emit(ControlEventType type, NodeId node, std::string detail);
  /// Stop expecting heartbeats from a node the master took down itself.
  void Unwatch(NodeId node) {
    watched_.erase(node);
    missed_.erase(node);
    healing_.erase(node);
  }

  Cluster* cluster_;
  Repartitioner* repartitioner_;
  MasterPolicy policy_;
  Monitor monitor_;
  LoadForecaster forecaster_;
  bool running_ = false;
  int over_count_ = 0;
  int under_count_ = 0;
  int scale_out_events_ = 0;
  int scale_in_events_ = 0;

  std::vector<NodeId> active_helpers_;
  std::vector<NodeId> assisted_nodes_;
  size_t remote_buffer_pages_ = 0;
  /// helper -> the assisted nodes shipping their log to it.
  std::unordered_map<NodeId, std::vector<NodeId>> helper_assignments_;

  RestartFn restart_fn_;
  IsDownFn is_down_fn_;
  ReplicaHooks replica_hooks_;
  std::function<void(const ControlEvent&)> event_listener_;
  std::vector<ControlEvent> control_events_;
  /// Nodes seen active at least once and not deliberately taken down —
  /// these are expected to report every window.
  std::unordered_set<NodeId> watched_;
  /// Consecutive missed windows per watched node.
  std::unordered_map<NodeId, int> missed_;
  /// Declared dead with a restart in flight; suppresses re-declaration
  /// while the node boots and redoes.
  std::unordered_set<NodeId> healing_;
  std::unordered_set<NodeId> excluded_;
  std::unordered_map<NodeId, int> crash_counts_;
  int nodes_declared_dead_ = 0;
  int auto_restarts_ = 0;
  int helper_failovers_ = 0;

  // Overload-detection state.
  int overload_streak_ = 0;        ///< Consecutive ticks with a node overloaded.
  bool overload_announced_ = false;///< kOverloadDetected emitted this episode.
  NodeId last_overload_node_;      ///< Deepest queue in the latest check.
  int overload_events_ = 0;

  // Heat balancing state.
  int heat_over_count_ = 0;        ///< Consecutive imbalanced ticks.
  bool heat_round_in_flight_ = false;
  SimTime next_balance_at_ = 0;    ///< Cooldown gate for the next round.
  /// Segments that moved successfully may not move again before this time.
  std::unordered_map<SegmentId, SimTime> segment_cooldown_until_;
  int heat_rebalances_ = 0;
  int heat_moves_planned_ = 0;
  int heat_moves_completed_ = 0;
  int heat_moves_abandoned_ = 0;

  // Intra-node (lane) balancing state.
  /// Re-laned segments may not re-lane again before this time (ping-pong
  /// guard, mirroring segment_cooldown_until_ one tier up).
  std::unordered_map<SegmentId, SimTime> relane_cooldown_until_;
  int lane_rebalances_ = 0;
  int segments_relaned_ = 0;
};

}  // namespace wattdb::cluster

#endif  // WATTDB_CLUSTER_MASTER_H_
