#ifndef WATTDB_CLUSTER_FORECAST_H_
#define WATTDB_CLUSTER_FORECAST_H_

#include <cstddef>
#include <deque>

#include "common/types.h"

namespace wattdb::cluster {

/// Utilization forecaster backing the master's proactive decisions. §3.4:
/// "WattDB makes decisions based on the current workload, the course of
/// utilization in the recent past, and the expected future workloads [8]"
/// (Kramer, Höfner & Härder's load forecasting for energy-efficient
/// distributed DBMSs). This implements Holt's double exponential smoothing
/// (level + trend) over the monitor's utilization samples, plus optional
/// user-declared workload shifts ("workload shifts can be user-defined to
/// inform the cluster of an expected change in utilization").
class LoadForecaster {
 public:
  struct Options {
    double level_alpha = 0.4;  ///< Smoothing of the level component.
    double trend_beta = 0.2;   ///< Smoothing of the trend component.
    /// Clamp forecasts into [0, 1] (utilization domain).
    bool clamp = true;
  };

  LoadForecaster() : LoadForecaster(Options{}) {}
  explicit LoadForecaster(Options options) : options_(options) {}

  /// Feed one utilization sample observed at simulated time `at`.
  void Observe(SimTime at, double utilization);

  /// Forecast utilization `horizon` into the future from the last sample.
  /// Falls back to the last level when fewer than two samples were seen.
  double Forecast(SimTime horizon) const;

  /// Declare an expected workload shift: from `at` on, add `delta`
  /// utilization to forecasts (user-defined hints, §3.4).
  void DeclareShift(SimTime at, double delta);

  /// Current smoothed level and per-second trend.
  double level() const { return level_; }
  double trend_per_sec() const { return trend_; }
  size_t samples() const { return samples_; }

 private:
  struct Shift {
    SimTime at;
    double delta;
  };

  Options options_;
  double level_ = 0.0;
  double trend_ = 0.0;  ///< Utilization change per second.
  SimTime last_at_ = 0;
  size_t samples_ = 0;
  std::deque<Shift> shifts_;
};

}  // namespace wattdb::cluster

#endif  // WATTDB_CLUSTER_FORECAST_H_
