#ifndef WATTDB_CATALOG_SCHEMA_H_
#define WATTDB_CATALOG_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace wattdb::catalog {

enum class ColumnType : uint8_t { kInt64, kDouble, kString };

struct Column {
  std::string name;
  ColumnType type;
  /// Fixed on-page width in bytes (strings are stored padded; TPC-C fields
  /// are all bounded).
  uint32_t width;
};

/// Logical table metadata, maintained on the master node (§4: "A DB table
/// is a purely logical construct in WattDB").
struct TableSchema {
  TableId id;
  std::string name;
  std::vector<Column> columns;

  /// Width of one record's payload (sum of column widths).
  size_t RecordBytes() const {
    size_t n = 0;
    for (const auto& c : columns) n += c.width;
    return n;
  }

  int ColumnIndex(const std::string& col_name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == col_name) return static_cast<int>(i);
    }
    return -1;
  }
};

}  // namespace wattdb::catalog

#endif  // WATTDB_CATALOG_SCHEMA_H_
