#ifndef WATTDB_CATALOG_GLOBAL_PARTITION_TABLE_H_
#define WATTDB_CATALOG_GLOBAL_PARTITION_TABLE_H_

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "catalog/partition.h"
#include "catalog/schema.h"

namespace wattdb::catalog {

/// Where a key's data lives right now. During repartitioning the master
/// keeps *two* pointers — the old and the new location — and "queries are
/// advised to visit both" (§4.3 Housekeeping on the master).
struct RouteEntry {
  KeyRange range;
  PartitionId primary;
  PartitionId secondary;  ///< Invalid unless a move is in flight.
};

/// Master-side catalog: table schemas, all partition objects, and the
/// global key-range routing tree used by query optimization (§4.3:
/// "the master keeps a tree with the primary-key ranges of all
/// partitions"). The registry owns the Partition objects; nodes hold
/// non-owning pointers to the partitions assigned to them.
class GlobalPartitionTable {
 public:
  GlobalPartitionTable() = default;
  GlobalPartitionTable(const GlobalPartitionTable&) = delete;
  GlobalPartitionTable& operator=(const GlobalPartitionTable&) = delete;

  // --- Tables -----------------------------------------------------------
  TableId CreateTable(TableSchema schema);
  const TableSchema* GetSchema(TableId table) const;
  const TableSchema* GetSchemaByName(const std::string& name) const;
  std::vector<TableId> Tables() const;

  // --- Partitions -------------------------------------------------------
  Partition* CreatePartition(TableId table, NodeId owner);
  Partition* GetPartition(PartitionId id);
  const Partition* GetPartition(PartitionId id) const;
  Status DropPartition(PartitionId id);
  std::vector<Partition*> PartitionsOf(TableId table);
  std::vector<Partition*> PartitionsOwnedBy(NodeId node);

  // --- Routing ----------------------------------------------------------
  /// Route `range` to `partition`, splitting/trimming any overlapped
  /// entries (their primary keeps owning the uncovered remainder).
  Status AssignRange(TableId table, const KeyRange& range,
                     PartitionId partition);

  /// Remove routing for `range` entirely.
  Status UnassignRange(TableId table, const KeyRange& range);

  /// Mark a move: entries covered by `range` gain `to` as secondary.
  Status BeginMove(TableId table, const KeyRange& range, PartitionId to);

  /// Complete a move: covered entries flip primary to `to`, secondary
  /// cleared.
  Status CompleteMove(TableId table, const KeyRange& range, PartitionId to);

  /// Abort a move registered with BeginMove: covered entries drop `to` as
  /// their secondary, the primary keeps owning the range (crash recovery:
  /// the copy never installed, the data never left the source).
  Status AbortMove(TableId table, const KeyRange& range, PartitionId to);

  /// Routing entry covering `key`, if any.
  std::optional<RouteEntry> Route(TableId table, Key key) const;

  /// All routing entries intersecting `range`, in key order.
  std::vector<RouteEntry> RoutesInRange(TableId table,
                                        const KeyRange& range) const;

  /// All routing entries of a table, in key order.
  std::vector<RouteEntry> AllRoutes(TableId table) const;

  /// Routing invariant: entries disjoint, each names a live partition of
  /// the right table.
  bool CheckInvariants() const;

  /// Routing entries currently referencing `partition` as primary or
  /// secondary (the drop guard's O(1) source of truth).
  int RouteRefs(PartitionId partition) const {
    auto it = route_refs_.find(partition);
    return it == route_refs_.end() ? 0 : it->second;
  }

 private:
  using RangeMap = std::map<Key, RouteEntry>;  // Keyed by range.lo.

  /// Carve out `range` so that no entry straddles its boundaries.
  void SplitAt(RangeMap* rm, Key boundary);

  /// Reference counting of partitions by routing entries: every entry's
  /// primary and (valid) secondary holds one reference. Kept in sync by
  /// Assign/Unassign/BeginMove/CompleteMove/AbortMove and SplitAt so
  /// DropPartition's still-routed guard is O(1) instead of a scan over
  /// every range of every table.
  void Ref(PartitionId id) {
    if (id.valid()) ++route_refs_[id];
  }
  void Unref(PartitionId id);
  /// Reference both sides of one entry (insertion/removal helpers).
  void RefEntry(const RouteEntry& e) {
    Ref(e.primary);
    Ref(e.secondary);
  }
  void UnrefEntry(const RouteEntry& e) {
    Unref(e.primary);
    Unref(e.secondary);
  }

  uint32_t next_table_id_ = 1;
  uint32_t next_partition_id_ = 1;
  std::unordered_map<TableId, TableSchema> schemas_;
  /// Name -> id, maintained by CreateTable (lookups by name were a linear
  /// scan over all schemas and sit on the facade's table-open path).
  std::unordered_map<std::string, TableId> schema_by_name_;
  std::unordered_map<PartitionId, std::unique_ptr<Partition>> partitions_;
  std::unordered_map<TableId, RangeMap> routes_;
  std::unordered_map<PartitionId, int> route_refs_;
};

}  // namespace wattdb::catalog

#endif  // WATTDB_CATALOG_GLOBAL_PARTITION_TABLE_H_
