#ifndef WATTDB_CATALOG_GLOBAL_PARTITION_TABLE_H_
#define WATTDB_CATALOG_GLOBAL_PARTITION_TABLE_H_

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "catalog/partition.h"
#include "catalog/schema.h"

namespace wattdb::catalog {

/// Where a key's data lives right now. During repartitioning the master
/// keeps *two* pointers — the old and the new location — and "queries are
/// advised to visit both" (§4.3 Housekeeping on the master).
struct RouteEntry {
  KeyRange range;
  PartitionId primary;
  PartitionId secondary;  ///< Invalid unless a move is in flight.
  /// Monotone ownership epoch, bumped whenever the primary changes hands
  /// (assignment, move completion, replica promotion). A deposed owner
  /// coming back from a crash carries the epoch it last owned the range
  /// under; if the catalog's entry is newer, its reclaim is refused and
  /// its local copy is known stale (fencing against split ownership).
  uint64_t epoch = 0;
};

/// A warm standby of one routed range: `partition` (marked
/// Partition::is_replica) holds a copy of the range's segment on another
/// node, kept fresh by applying the owner's shipped log tail. `serving`
/// means the copy is within the policy's staleness bound and reads may fan
/// out to it; writes always go to the primary route.
struct ReplicaRoute {
  KeyRange range;
  PartitionId partition;
  /// Primary partition this standby replicates. A segment's top-index
  /// range can be wider than what its partition actually owns (lazily
  /// materialized segments claim the whole key space), so `range` alone
  /// over-matches: read fan-out must also check that the key's routed
  /// primary IS this source, or a replica of partition A starts answering
  /// NotFound for partition B's keys during A-unrelated failovers.
  PartitionId src;
  bool serving = false;
};

/// Master-side catalog: table schemas, all partition objects, and the
/// global key-range routing tree used by query optimization (§4.3:
/// "the master keeps a tree with the primary-key ranges of all
/// partitions"). The registry owns the Partition objects; nodes hold
/// non-owning pointers to the partitions assigned to them.
class GlobalPartitionTable {
 public:
  GlobalPartitionTable() = default;
  GlobalPartitionTable(const GlobalPartitionTable&) = delete;
  GlobalPartitionTable& operator=(const GlobalPartitionTable&) = delete;

  // --- Tables -----------------------------------------------------------
  TableId CreateTable(TableSchema schema);
  const TableSchema* GetSchema(TableId table) const;
  const TableSchema* GetSchemaByName(const std::string& name) const;
  std::vector<TableId> Tables() const;

  // --- Partitions -------------------------------------------------------
  Partition* CreatePartition(TableId table, NodeId owner);
  Partition* GetPartition(PartitionId id);
  const Partition* GetPartition(PartitionId id) const;
  Status DropPartition(PartitionId id);
  std::vector<Partition*> PartitionsOf(TableId table);
  std::vector<Partition*> PartitionsOwnedBy(NodeId node);

  // --- Routing ----------------------------------------------------------
  /// Route `range` to `partition`, splitting/trimming any overlapped
  /// entries (their primary keeps owning the uncovered remainder).
  Status AssignRange(TableId table, const KeyRange& range,
                     PartitionId partition);

  /// Remove routing for `range` entirely.
  Status UnassignRange(TableId table, const KeyRange& range);

  /// Mark a move: entries covered by `range` gain `to` as secondary.
  Status BeginMove(TableId table, const KeyRange& range, PartitionId to);

  /// Complete a move: covered entries flip primary to `to`, secondary
  /// cleared.
  Status CompleteMove(TableId table, const KeyRange& range, PartitionId to);

  /// Abort a move registered with BeginMove: covered entries drop `to` as
  /// their secondary, the primary keeps owning the range (crash recovery:
  /// the copy never installed, the data never left the source).
  Status AbortMove(TableId table, const KeyRange& range, PartitionId to);

  /// Routing entry covering `key`, if any.
  std::optional<RouteEntry> Route(TableId table, Key key) const;

  // --- Replica routes ---------------------------------------------------
  /// Register `partition` as a warm standby of `range` (not serving yet),
  /// replicating primary partition `src`. The replica partition takes a
  /// route reference like a primary, so it cannot be dropped while the
  /// route exists. One replica route per partition: AlreadyExists on a
  /// second registration. An invalid `src` records an untied route
  /// (unit-test convenience); the routing layer then trusts `range` alone.
  Status AddReplicaRoute(TableId table, const KeyRange& range,
                         PartitionId partition,
                         PartitionId src = PartitionId());

  /// Remove the replica route held by `partition` (NotFound if none).
  Status RemoveReplicaRoute(TableId table, PartitionId partition);

  /// Flip whether reads may fan out to `partition`'s replica route.
  Status SetReplicaServing(TableId table, PartitionId partition, bool serving);

  /// Replica routes whose range contains `key`, serving or not.
  std::vector<ReplicaRoute> ReplicasFor(TableId table, Key key) const;

  /// All replica routes of a table.
  std::vector<ReplicaRoute> ReplicaRoutes(TableId table) const;

  /// Cheap guard for the read hot path: any replica routes at all?
  bool HasReplicas(TableId table) const {
    auto it = replica_routes_.find(table);
    return it != replica_routes_.end() && !it->second.empty();
  }

  /// Catch-up-and-flip failover: make `replica` the primary owner of
  /// `range`, bumping the covered entries' epoch so the deposed owner's
  /// later reclaim is fenced off. Refused (FailedPrecondition) while a
  /// move is in flight over the range. Consumes the replica route.
  ///
  /// `fence_epoch` > 0 makes the flip conditional (compare-and-swap): it is
  /// refused when any covered entry's epoch moved past the fence since
  /// FenceRange stamped it — the deposed owner finished a full redo in the
  /// meantime and reclaimed the range, so the standby's snapshot (cut at
  /// fence time) would silently drop the writes the owner served since.
  ///
  /// A valid `deposed` clamps the flip to the entries `deposed` actually
  /// owns: entries inside `range` routed to *other* partitions are left
  /// untouched (a replica route's range may over-cover, see ReplicaRoute).
  /// Refused (FailedPrecondition) when `deposed` owns nothing in `range` —
  /// the standby would become an owner of nothing.
  Status PromoteReplica(TableId table, const KeyRange& range,
                        PartitionId replica, uint64_t fence_epoch = 0,
                        PartitionId deposed = PartitionId());

  /// Seal the current primary of every entry covering `range`: bump the
  /// entries' epoch WITHOUT mirroring it into the primary partition's
  /// route_epoch. The owner's claim token is now stale, so (a) the routing
  /// layer's epoch check refuses to serve the range through it and (b) a
  /// later ReclaimRange under the old token is superseded. Promotion calls
  /// this before reading the deposed owner's final log tail — from that
  /// instant no write can land on the old owner and miss the flip, even if
  /// the owner is merely partitioned from the master and still alive.
  /// Returns the fence epoch (to pass to the conditional PromoteReplica),
  /// or 0 when nothing covers the range. A valid `only_primary` seals just
  /// the entries routed to that partition — fencing a live neighbor whose
  /// keys merely fall inside an over-wide replica range would refuse its
  /// reads for nothing.
  uint64_t FenceRange(TableId table, const KeyRange& range,
                      PartitionId only_primary = PartitionId());

  /// Epoch of the entry covering `key` (0 if unrouted).
  uint64_t EpochOf(TableId table, Key key) const;

  /// Re-register `range` -> `claimant` after a crash restart. No-op if the
  /// covering entries already name the claimant; FailedPrecondition if any
  /// covering entry carries an epoch newer than `claim_epoch` (the range
  /// was promoted away while the claimant was down — its copy is stale);
  /// otherwise assigns the range like AssignRange. Entries that still name
  /// the claimant as primary but were fenced past its token (a promotion
  /// started and never flipped — the standby died first) are restamped:
  /// the claimant just replayed its full WAL, so its copy is authoritative
  /// again and the orphaned fence must not refuse it forever.
  Status ReclaimRange(TableId table, const KeyRange& range,
                      PartitionId claimant, uint64_t claim_epoch);

  /// All routing entries intersecting `range`, in key order.
  std::vector<RouteEntry> RoutesInRange(TableId table,
                                        const KeyRange& range) const;

  /// All routing entries of a table, in key order.
  std::vector<RouteEntry> AllRoutes(TableId table) const;

  /// Routing invariant: entries disjoint, each names a live partition of
  /// the right table.
  bool CheckInvariants() const;

  /// Routing entries currently referencing `partition` as primary or
  /// secondary (the drop guard's O(1) source of truth).
  int RouteRefs(PartitionId partition) const {
    auto it = route_refs_.find(partition);
    return it == route_refs_.end() ? 0 : it->second;
  }

 private:
  using RangeMap = std::map<Key, RouteEntry>;  // Keyed by range.lo.

  /// Carve out `range` so that no entry straddles its boundaries.
  void SplitAt(RangeMap* rm, Key boundary);

  /// Reference counting of partitions by routing entries: every entry's
  /// primary and (valid) secondary holds one reference. Kept in sync by
  /// Assign/Unassign/BeginMove/CompleteMove/AbortMove and SplitAt so
  /// DropPartition's still-routed guard is O(1) instead of a scan over
  /// every range of every table.
  void Ref(PartitionId id) {
    if (id.valid()) ++route_refs_[id];
  }
  void Unref(PartitionId id);
  /// Reference both sides of one entry (insertion/removal helpers).
  void RefEntry(const RouteEntry& e) {
    Ref(e.primary);
    Ref(e.secondary);
  }
  void UnrefEntry(const RouteEntry& e) {
    Unref(e.primary);
    Unref(e.secondary);
  }

  /// Stamp `entry`'s epoch from the global counter and mirror it into the
  /// primary partition's route_epoch (the claim token recovery presents).
  void StampEpoch(RouteEntry* entry);

  uint32_t next_table_id_ = 1;
  uint32_t next_partition_id_ = 1;
  uint64_t next_epoch_ = 0;
  std::unordered_map<TableId, TableSchema> schemas_;
  /// Name -> id, maintained by CreateTable (lookups by name were a linear
  /// scan over all schemas and sit on the facade's table-open path).
  std::unordered_map<std::string, TableId> schema_by_name_;
  std::unordered_map<PartitionId, std::unique_ptr<Partition>> partitions_;
  std::unordered_map<TableId, RangeMap> routes_;
  /// Warm-standby routes per table; small (bounded by the replica policy's
  /// budget), so point lookups scan linearly.
  std::unordered_map<TableId, std::vector<ReplicaRoute>> replica_routes_;
  std::unordered_map<PartitionId, int> route_refs_;
};

}  // namespace wattdb::catalog

#endif  // WATTDB_CATALOG_GLOBAL_PARTITION_TABLE_H_
