#include "catalog/global_partition_table.h"

#include <algorithm>

#include "common/logging.h"

namespace wattdb::catalog {

TableId GlobalPartitionTable::CreateTable(TableSchema schema) {
  const TableId id(next_table_id_++);
  schema.id = id;
  schema_by_name_.emplace(schema.name, id);
  schemas_.emplace(id, std::move(schema));
  routes_.emplace(id, RangeMap{});
  return id;
}

const TableSchema* GlobalPartitionTable::GetSchema(TableId table) const {
  auto it = schemas_.find(table);
  return it == schemas_.end() ? nullptr : &it->second;
}

const TableSchema* GlobalPartitionTable::GetSchemaByName(
    const std::string& name) const {
  auto it = schema_by_name_.find(name);
  if (it == schema_by_name_.end()) return nullptr;
  return GetSchema(it->second);
}

std::vector<TableId> GlobalPartitionTable::Tables() const {
  std::vector<TableId> out;
  out.reserve(schemas_.size());
  for (const auto& [id, schema] : schemas_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

Partition* GlobalPartitionTable::CreatePartition(TableId table, NodeId owner) {
  WATTDB_CHECK_MSG(schemas_.count(table) > 0, "unknown table");
  const PartitionId id(next_partition_id_++);
  auto part = std::make_unique<Partition>(id, table, owner);
  Partition* raw = part.get();
  partitions_.emplace(id, std::move(part));
  return raw;
}

Partition* GlobalPartitionTable::GetPartition(PartitionId id) {
  auto it = partitions_.find(id);
  return it == partitions_.end() ? nullptr : it->second.get();
}

const Partition* GlobalPartitionTable::GetPartition(PartitionId id) const {
  auto it = partitions_.find(id);
  return it == partitions_.end() ? nullptr : it->second.get();
}

void GlobalPartitionTable::Unref(PartitionId id) {
  if (!id.valid()) return;
  auto it = route_refs_.find(id);
  WATTDB_CHECK_MSG(it != route_refs_.end(), "route refcount underflow");
  if (--it->second <= 0) route_refs_.erase(it);
}

Status GlobalPartitionTable::DropPartition(PartitionId id) {
  auto it = partitions_.find(id);
  if (it == partitions_.end()) return Status::NotFound("no such partition");
  // Refuse to drop a partition that still routes traffic — primary *or*
  // stale secondary. The refcount is maintained by every routing mutator,
  // so this is O(1) instead of a scan over all ranges of all tables.
  if (RouteRefs(id) > 0) {
    return Status::Busy("partition still routed (" +
                        std::to_string(RouteRefs(id)) + " entry reference" +
                        (RouteRefs(id) == 1 ? "" : "s") + ")");
  }
  partitions_.erase(it);
  return Status::OK();
}

std::vector<Partition*> GlobalPartitionTable::PartitionsOf(TableId table) {
  std::vector<Partition*> out;
  for (auto& [id, p] : partitions_) {
    if (p->table() == table) out.push_back(p.get());
  }
  std::sort(out.begin(), out.end(),
            [](Partition* a, Partition* b) { return a->id() < b->id(); });
  return out;
}

std::vector<Partition*> GlobalPartitionTable::PartitionsOwnedBy(NodeId node) {
  std::vector<Partition*> out;
  for (auto& [id, p] : partitions_) {
    if (p->owner() == node) out.push_back(p.get());
  }
  std::sort(out.begin(), out.end(),
            [](Partition* a, Partition* b) { return a->id() < b->id(); });
  return out;
}

void GlobalPartitionTable::SplitAt(RangeMap* rm, Key boundary) {
  auto it = rm->upper_bound(boundary);
  if (it == rm->begin()) return;
  --it;
  RouteEntry& e = it->second;
  if (e.range.lo < boundary && boundary < e.range.hi) {
    RouteEntry right = e;
    right.range.lo = boundary;
    e.range.hi = boundary;
    RefEntry(right);  // The clone references the same partitions again.
    rm->emplace(boundary, right);
  }
}

Status GlobalPartitionTable::AssignRange(TableId table, const KeyRange& range,
                                         PartitionId partition) {
  if (range.Empty()) return Status::InvalidArgument("empty range");
  auto rit = routes_.find(table);
  if (rit == routes_.end()) return Status::NotFound("unknown table");
  if (partitions_.count(partition) == 0) {
    return Status::NotFound("unknown partition");
  }
  RangeMap& rm = rit->second;
  SplitAt(&rm, range.lo);
  SplitAt(&rm, range.hi);
  // Remove fully covered entries.
  auto it = rm.lower_bound(range.lo);
  while (it != rm.end() && it->second.range.lo < range.hi) {
    UnrefEntry(it->second);
    it = rm.erase(it);
  }
  Ref(partition);
  RouteEntry entry{range, partition, PartitionId::Invalid()};
  StampEpoch(&entry);
  rm.emplace(range.lo, entry);
  return Status::OK();
}

void GlobalPartitionTable::StampEpoch(RouteEntry* entry) {
  entry->epoch = ++next_epoch_;
  auto it = partitions_.find(entry->primary);
  if (it != partitions_.end()) it->second->set_route_epoch(entry->epoch);
}

Status GlobalPartitionTable::UnassignRange(TableId table,
                                           const KeyRange& range) {
  auto rit = routes_.find(table);
  if (rit == routes_.end()) return Status::NotFound("unknown table");
  RangeMap& rm = rit->second;
  SplitAt(&rm, range.lo);
  SplitAt(&rm, range.hi);
  auto it = rm.lower_bound(range.lo);
  while (it != rm.end() && it->second.range.lo < range.hi) {
    UnrefEntry(it->second);
    it = rm.erase(it);
  }
  return Status::OK();
}

Status GlobalPartitionTable::BeginMove(TableId table, const KeyRange& range,
                                       PartitionId to) {
  auto rit = routes_.find(table);
  if (rit == routes_.end()) return Status::NotFound("unknown table");
  RangeMap& rm = rit->second;
  SplitAt(&rm, range.lo);
  SplitAt(&rm, range.hi);
  for (auto it = rm.lower_bound(range.lo);
       it != rm.end() && it->second.range.lo < range.hi; ++it) {
    Unref(it->second.secondary);  // Overwriting a stale move's pointer.
    it->second.secondary = to;
    Ref(to);
  }
  return Status::OK();
}

Status GlobalPartitionTable::CompleteMove(TableId table, const KeyRange& range,
                                          PartitionId to) {
  auto rit = routes_.find(table);
  if (rit == routes_.end()) return Status::NotFound("unknown table");
  RangeMap& rm = rit->second;
  SplitAt(&rm, range.lo);
  SplitAt(&rm, range.hi);
  for (auto it = rm.lower_bound(range.lo);
       it != rm.end() && it->second.range.lo < range.hi; ++it) {
    Unref(it->second.primary);
    it->second.primary = to;
    Ref(to);
    Unref(it->second.secondary);
    it->second.secondary = PartitionId::Invalid();
    StampEpoch(&it->second);
  }
  return Status::OK();
}

Status GlobalPartitionTable::AbortMove(TableId table, const KeyRange& range,
                                       PartitionId to) {
  auto rit = routes_.find(table);
  if (rit == routes_.end()) return Status::NotFound("unknown table");
  RangeMap& rm = rit->second;
  SplitAt(&rm, range.lo);
  SplitAt(&rm, range.hi);
  for (auto it = rm.lower_bound(range.lo);
       it != rm.end() && it->second.range.lo < range.hi; ++it) {
    if (it->second.secondary == to) {
      Unref(it->second.secondary);
      it->second.secondary = PartitionId::Invalid();
    }
  }
  return Status::OK();
}

std::optional<RouteEntry> GlobalPartitionTable::Route(TableId table,
                                                      Key key) const {
  auto rit = routes_.find(table);
  if (rit == routes_.end()) return std::nullopt;
  const RangeMap& rm = rit->second;
  auto it = rm.upper_bound(key);
  if (it == rm.begin()) return std::nullopt;
  --it;
  if (!it->second.range.Contains(key)) return std::nullopt;
  return it->second;
}

Status GlobalPartitionTable::AddReplicaRoute(TableId table,
                                             const KeyRange& range,
                                             PartitionId partition,
                                             PartitionId src) {
  if (range.Empty()) return Status::InvalidArgument("empty range");
  if (routes_.count(table) == 0) return Status::NotFound("unknown table");
  auto pit = partitions_.find(partition);
  if (pit == partitions_.end()) return Status::NotFound("unknown partition");
  if (pit->second->table() != table) {
    return Status::InvalidArgument("partition belongs to another table");
  }
  auto& routes = replica_routes_[table];
  for (const ReplicaRoute& r : routes) {
    if (r.partition == partition) {
      return Status::AlreadyExists("partition already holds a replica route");
    }
  }
  if (src.valid()) {
    auto sit = partitions_.find(src);
    if (sit == partitions_.end()) return Status::NotFound("unknown source");
    if (sit->second->table() != table) {
      return Status::InvalidArgument("source belongs to another table");
    }
  }
  Ref(partition);
  routes.push_back(ReplicaRoute{range, partition, src, false});
  return Status::OK();
}

Status GlobalPartitionTable::RemoveReplicaRoute(TableId table,
                                                PartitionId partition) {
  auto it = replica_routes_.find(table);
  if (it == replica_routes_.end()) return Status::NotFound("no replica route");
  auto& routes = it->second;
  for (auto rit = routes.begin(); rit != routes.end(); ++rit) {
    if (rit->partition == partition) {
      Unref(partition);
      routes.erase(rit);
      return Status::OK();
    }
  }
  return Status::NotFound("no replica route");
}

Status GlobalPartitionTable::SetReplicaServing(TableId table,
                                               PartitionId partition,
                                               bool serving) {
  auto it = replica_routes_.find(table);
  if (it == replica_routes_.end()) return Status::NotFound("no replica route");
  for (ReplicaRoute& r : it->second) {
    if (r.partition == partition) {
      r.serving = serving;
      return Status::OK();
    }
  }
  return Status::NotFound("no replica route");
}

std::vector<ReplicaRoute> GlobalPartitionTable::ReplicasFor(TableId table,
                                                            Key key) const {
  std::vector<ReplicaRoute> out;
  auto it = replica_routes_.find(table);
  if (it == replica_routes_.end()) return out;
  for (const ReplicaRoute& r : it->second) {
    if (r.range.Contains(key)) out.push_back(r);
  }
  return out;
}

std::vector<ReplicaRoute> GlobalPartitionTable::ReplicaRoutes(
    TableId table) const {
  auto it = replica_routes_.find(table);
  if (it == replica_routes_.end()) return {};
  return it->second;
}

Status GlobalPartitionTable::PromoteReplica(TableId table,
                                            const KeyRange& range,
                                            PartitionId replica,
                                            uint64_t fence_epoch,
                                            PartitionId deposed) {
  auto pit = partitions_.find(replica);
  if (pit == partitions_.end()) return Status::NotFound("unknown partition");
  if (pit->second->table() != table) {
    return Status::InvalidArgument("partition belongs to another table");
  }
  auto rit = routes_.find(table);
  if (rit == routes_.end()) return Status::NotFound("unknown table");
  // A move in flight over the range would leave the mover holding a
  // secondary pointer at a partition that no longer owns anything; the
  // caller must wait for the move to settle (or abort it) first. Entries
  // routed to partitions other than `deposed` are bystanders under an
  // over-wide replica range: not flipped, so not checked.
  int owned = 0;
  for (const RouteEntry& e : RoutesInRange(table, range)) {
    if (deposed.valid() && e.primary != deposed) continue;
    ++owned;
    if (e.secondary.valid()) {
      return Status::FailedPrecondition("move in flight over range");
    }
    // Conditional flip: an entry restamped past the fence means the deposed
    // owner reclaimed the range (full redo) after the standby's state cut —
    // installing the standby now would drop every write served since.
    if (fence_epoch > 0 && e.epoch > fence_epoch) {
      return Status::FailedPrecondition(
          "fence superseded (entry epoch " + std::to_string(e.epoch) +
          " > fence " + std::to_string(fence_epoch) +
          "): range reclaimed since the promotion's state cut");
    }
  }
  if (deposed.valid() && owned == 0) {
    return Status::FailedPrecondition(
        "deposed partition owns nothing in the promoted range");
  }
  RangeMap& rm = rit->second;
  SplitAt(&rm, range.lo);
  SplitAt(&rm, range.hi);
  for (auto it = rm.lower_bound(range.lo);
       it != rm.end() && it->second.range.lo < range.hi; ++it) {
    if (deposed.valid() && it->second.primary != deposed) continue;
    Unref(it->second.primary);
    it->second.primary = replica;
    Ref(replica);
    StampEpoch(&it->second);
  }
  // The standby is now the owner: its replica route is consumed and it
  // stops being invisible to the heat/drain planners.
  (void)RemoveReplicaRoute(table, replica);
  pit->second->set_is_replica(false);
  return Status::OK();
}

uint64_t GlobalPartitionTable::FenceRange(TableId table, const KeyRange& range,
                                          PartitionId only_primary) {
  auto rit = routes_.find(table);
  if (rit == routes_.end() || range.Empty()) return 0;
  RangeMap& rm = rit->second;
  SplitAt(&rm, range.lo);
  SplitAt(&rm, range.hi);
  uint64_t fence = 0;
  for (auto it = rm.lower_bound(range.lo);
       it != rm.end() && it->second.range.lo < range.hi; ++it) {
    if (only_primary.valid() && it->second.primary != only_primary) continue;
    // Bump the entry's epoch but deliberately do NOT mirror it into the
    // primary's route_epoch: the owner's claim token is now behind the
    // entry, which is exactly the "fenced" condition the routing layer
    // and ReclaimRange test for.
    it->second.epoch = ++next_epoch_;
    fence = it->second.epoch;
  }
  return fence;
}

uint64_t GlobalPartitionTable::EpochOf(TableId table, Key key) const {
  auto e = Route(table, key);
  return e.has_value() ? e->epoch : 0;
}

Status GlobalPartitionTable::ReclaimRange(TableId table, const KeyRange& range,
                                          PartitionId claimant,
                                          uint64_t claim_epoch) {
  if (range.Empty()) return Status::InvalidArgument("empty range");
  if (routes_.count(table) == 0) return Status::NotFound("unknown table");
  if (partitions_.count(claimant) == 0) {
    return Status::NotFound("unknown partition");
  }
  const std::vector<RouteEntry> covering = RoutesInRange(table, range);
  bool all_claimant = !covering.empty();
  for (const RouteEntry& e : covering) {
    if (e.primary != claimant && e.secondary != claimant) {
      all_claimant = false;
    }
    if (e.primary != claimant && e.epoch > claim_epoch) {
      return Status::FailedPrecondition(
          "route superseded (epoch " + std::to_string(e.epoch) + " > claim " +
          std::to_string(claim_epoch) + ")");
    }
  }
  if (all_claimant) {
    // Routes survived the crash intact. Heal any orphaned fence: entries
    // still naming the claimant as primary but stamped past its token mean
    // a promotion fenced the range and never flipped (the standby died
    // first). The claimant just replayed its full WAL, so its copy is
    // authoritative again — restamp so routing serves it once more.
    RangeMap& rm = routes_.find(table)->second;
    auto it = rm.upper_bound(range.lo);
    if (it != rm.begin()) --it;  // Predecessor may straddle range.lo.
    for (; it != rm.end() && it->second.range.lo < range.hi; ++it) {
      if (it->second.range.hi <= range.lo) continue;
      if (it->second.primary == claimant && it->second.epoch > claim_epoch) {
        StampEpoch(&it->second);
      }
    }
    return Status::OK();
  }
  return AssignRange(table, range, claimant);
}

std::vector<RouteEntry> GlobalPartitionTable::RoutesInRange(
    TableId table, const KeyRange& range) const {
  std::vector<RouteEntry> out;
  auto rit = routes_.find(table);
  if (rit == routes_.end() || range.Empty()) return out;
  const RangeMap& rm = rit->second;
  auto it = rm.upper_bound(range.lo);
  if (it != rm.begin()) {
    auto prev = std::prev(it);
    if (prev->second.range.hi > range.lo) out.push_back(prev->second);
  }
  for (; it != rm.end() && it->second.range.lo < range.hi; ++it) {
    out.push_back(it->second);
  }
  return out;
}

std::vector<RouteEntry> GlobalPartitionTable::AllRoutes(TableId table) const {
  std::vector<RouteEntry> out;
  auto rit = routes_.find(table);
  if (rit == routes_.end()) return out;
  for (const auto& [lo, e] : rit->second) out.push_back(e);
  return out;
}

bool GlobalPartitionTable::CheckInvariants() const {
  for (const auto& [table, rm] : routes_) {
    Key prev_hi = kMinKey;
    bool first = true;
    for (const auto& [lo, e] : rm) {
      if (lo != e.range.lo || e.range.Empty()) return false;
      if (!first && e.range.lo < prev_hi) return false;
      prev_hi = e.range.hi;
      first = false;
      auto pit = partitions_.find(e.primary);
      if (pit == partitions_.end() || pit->second->table() != table) {
        return false;
      }
      if (e.secondary.valid()) {
        auto sit = partitions_.find(e.secondary);
        if (sit == partitions_.end() || sit->second->table() != table) {
          return false;
        }
      }
    }
  }
  // Replica routes name live partitions of the right table, flagged as
  // replicas, with non-empty ranges.
  for (const auto& [table, routes] : replica_routes_) {
    for (const ReplicaRoute& r : routes) {
      if (r.range.Empty()) return false;
      auto pit = partitions_.find(r.partition);
      if (pit == partitions_.end() || pit->second->table() != table ||
          !pit->second->is_replica()) {
        return false;
      }
    }
  }
  // The incremental route refcounts agree with a full recount.
  std::unordered_map<PartitionId, int> recount;
  for (const auto& [table, rm] : routes_) {
    for (const auto& [lo, e] : rm) {
      ++recount[e.primary];
      if (e.secondary.valid()) ++recount[e.secondary];
    }
  }
  for (const auto& [table, routes] : replica_routes_) {
    for (const ReplicaRoute& r : routes) ++recount[r.partition];
  }
  if (recount.size() != route_refs_.size()) return false;
  for (const auto& [id, n] : recount) {
    auto it = route_refs_.find(id);
    if (it == route_refs_.end() || it->second != n) return false;
  }
  return true;
}

}  // namespace wattdb::catalog
