#ifndef WATTDB_CATALOG_PARTITION_H_
#define WATTDB_CATALOG_PARTITION_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "index/top_index.h"

namespace wattdb::catalog {

/// Lifecycle state of a partition during online repartitioning (§4.3).
enum class PartitionState {
  kNormal,
  kMovingOut,  ///< Read-locked source: writers drained, copy in progress.
  kForwarding, ///< Copy done; old location redirects residual readers.
};

/// A horizontal partition: the unit of ownership, integrity control, and
/// query evaluation (§4). It holds a *top index* mapping key ranges to the
/// segments (mini-partitions) attached to it. The owning node is
/// responsible for locking, logging, and buffering of all data reachable
/// from here.
class Partition {
 public:
  Partition(PartitionId id, TableId table, NodeId owner)
      : id_(id), table_(table), owner_(owner) {}

  Partition(const Partition&) = delete;
  Partition& operator=(const Partition&) = delete;

  PartitionId id() const { return id_; }
  TableId table() const { return table_; }

  NodeId owner() const { return owner_; }
  void set_owner(NodeId owner) { owner_ = owner; }

  /// Warm standby of another partition's segments: never routed as a
  /// primary, skipped by heat/drain/scale planners and by crash redo (its
  /// content is reconstructed from the source, not from this node's log).
  bool is_replica() const { return is_replica_; }
  void set_is_replica(bool v) { is_replica_ = v; }

  /// Catalog epoch of the newest routing entry naming this partition as
  /// primary. A recovering node must present this epoch to reclaim its
  /// ranges; a promotion that happened while it was down carries a newer
  /// one, so the deposed owner cannot steal the route back (fencing).
  uint64_t route_epoch() const { return route_epoch_; }
  void set_route_epoch(uint64_t e) {
    if (e > route_epoch_) route_epoch_ = e;
  }

  PartitionState state() const { return state_; }
  void set_state(PartitionState s) { state_ = s; }

  /// Redirect target while records/segments are moving (§4.3: the source
  /// keeps a pointer to the new location until old readers drain).
  PartitionId forward_to() const { return forward_to_; }
  void set_forward_to(PartitionId p) { forward_to_ = p; }

  index::TopIndex& top_index() { return top_index_; }
  const index::TopIndex& top_index() const { return top_index_; }

  /// Convenience: attach/detach segments in the top index.
  Status AttachSegment(const KeyRange& range, SegmentId seg) {
    return top_index_.Attach(range, seg);
  }
  Status DetachSegment(SegmentId seg) { return top_index_.Detach(seg); }

  SegmentId SegmentFor(Key key) const { return top_index_.Lookup(key); }
  std::vector<index::TopIndex::Entry> SegmentsInRange(const KeyRange& r) const {
    return top_index_.Intersecting(r);
  }

  size_t segment_count() const { return top_index_.size(); }

 private:
  PartitionId id_;
  TableId table_;
  NodeId owner_;
  PartitionState state_ = PartitionState::kNormal;
  PartitionId forward_to_;
  bool is_replica_ = false;
  uint64_t route_epoch_ = 0;
  index::TopIndex top_index_;
};

}  // namespace wattdb::catalog

#endif  // WATTDB_CATALOG_PARTITION_H_
