#include "storage/page.h"

#include <cstring>
#include <numeric>

#include "common/logging.h"

namespace wattdb::storage {

Page::Page() : frame_(kFrameSize, 0), free_ptr_(kFrameSize) {}

size_t Page::ContiguousFreeSpace() const {
  const size_t dir_end = kPageHeaderSize + slots_.size() * kSlotSize;
  return free_ptr_ > dir_end ? free_ptr_ - dir_end : 0;
}

size_t Page::FreeSpace() const {
  const size_t dir_end = kPageHeaderSize + slots_.size() * kSlotSize;
  const size_t usable = kFrameSize - dir_end;
  return usable > live_bytes_ ? usable - live_bytes_ : 0;
}

Result<uint16_t> Page::Insert(const uint8_t* data, size_t size) {
  if (size == 0 || size > kFrameSize - kPageHeaderSize - kSlotSize) {
    return Status::InvalidArgument("record size unsupported");
  }
  if (!HasRoomFor(size)) {
    return Status::ResourceExhausted("page full");
  }
  if (ContiguousFreeSpace() < size + kSlotSize) {
    Compact();
  }
  // Reuse a tombstone slot if available to bound directory growth.
  uint16_t slot = static_cast<uint16_t>(slots_.size());
  for (uint16_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s].offset == kTombstone) {
      slot = s;
      break;
    }
  }
  free_ptr_ -= size;
  std::memcpy(frame_.data() + free_ptr_, data, size);
  const Slot entry{static_cast<uint16_t>(free_ptr_),
                   static_cast<uint16_t>(size)};
  if (slot == slots_.size()) {
    slots_.push_back(entry);
  } else {
    slots_[slot] = entry;
  }
  live_bytes_ += size;
  ++record_count_;
  return slot;
}

Result<std::pair<const uint8_t*, size_t>> Page::Read(uint16_t slot) const {
  if (slot >= slots_.size() || slots_[slot].offset == kTombstone) {
    return Status::NotFound("no such slot");
  }
  return std::make_pair(frame_.data() + slots_[slot].offset,
                        static_cast<size_t>(slots_[slot].length));
}

Status Page::Update(uint16_t slot, const uint8_t* data, size_t size) {
  if (slot >= slots_.size() || slots_[slot].offset == kTombstone) {
    return Status::NotFound("no such slot");
  }
  Slot& s = slots_[slot];
  if (size <= s.length) {
    std::memcpy(frame_.data() + s.offset, data, size);
    live_bytes_ -= s.length - size;
    s.length = static_cast<uint16_t>(size);
    return Status::OK();
  }
  // Grow: relocate within this page.
  const size_t needed_extra = size - s.length;
  if (FreeSpace() < needed_extra) {
    return Status::ResourceExhausted("page cannot grow record");
  }
  // Temporarily drop the old body so compaction can reclaim it if needed.
  live_bytes_ -= s.length;
  const uint16_t old_len = s.length;
  s.offset = kTombstone;
  if (ContiguousFreeSpace() < size) Compact();
  WATTDB_CHECK(ContiguousFreeSpace() >= size);
  free_ptr_ -= size;
  std::memcpy(frame_.data() + free_ptr_, data, size);
  s.offset = static_cast<uint16_t>(free_ptr_);
  s.length = static_cast<uint16_t>(size);
  live_bytes_ += size;
  (void)old_len;
  return Status::OK();
}

Status Page::Delete(uint16_t slot) {
  if (slot >= slots_.size() || slots_[slot].offset == kTombstone) {
    return Status::NotFound("no such slot");
  }
  live_bytes_ -= slots_[slot].length;
  slots_[slot].offset = kTombstone;
  slots_[slot].length = 0;
  --record_count_;
  return Status::OK();
}

void Page::Compact() {
  // Stable-sort live slots by current offset (descending) and repack from
  // the tail, preserving slot numbers.
  std::vector<uint16_t> order;
  order.reserve(slots_.size());
  for (uint16_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s].offset != kTombstone) order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [&](uint16_t a, uint16_t b) {
    return slots_[a].offset > slots_[b].offset;
  });
  size_t write_ptr = kFrameSize;
  for (uint16_t s : order) {
    Slot& slot = slots_[s];
    write_ptr -= slot.length;
    std::memmove(frame_.data() + write_ptr, frame_.data() + slot.offset,
                 slot.length);
    slot.offset = static_cast<uint16_t>(write_ptr);
  }
  free_ptr_ = write_ptr;
}

bool Page::CheckInvariants() const {
  size_t live = 0;
  uint16_t count = 0;
  for (const Slot& s : slots_) {
    if (s.offset == kTombstone) continue;
    if (s.offset < free_ptr_ || s.offset + s.length > kFrameSize) return false;
    live += s.length;
    ++count;
  }
  if (live != live_bytes_ || count != record_count_) return false;
  const size_t dir_end = kPageHeaderSize + slots_.size() * kSlotSize;
  return free_ptr_ >= dir_end;
}

}  // namespace wattdb::storage
