#include "storage/segment.h"

#include <algorithm>

#include "common/logging.h"

namespace wattdb::storage {

Segment::Segment(SegmentId id, NodeId storage_node, DiskId disk,
                 index::IndexKind index_kind)
    : id_(id),
      storage_node_(storage_node),
      disk_(disk),
      pk_index_(index::MakeRecordIndex(index_kind)) {
  WATTDB_CHECK_MSG(pk_index_ != nullptr,
                   "unknown IndexKind " << static_cast<int>(index_kind));
}

Page* Segment::PageWithRoom(size_t record_size, uint16_t* out_idx) {
  for (size_t i = insert_cursor_; i < pages_.size(); ++i) {
    if (pages_[i]->HasRoomFor(record_size)) {
      *out_idx = static_cast<uint16_t>(i);
      return pages_[i].get();
    }
    // Only advance the cursor past pages that cannot fit even small
    // records, so mixed-size workloads do not strand space.
    if (pages_[i]->FreeSpace() < 64 && i == insert_cursor_) {
      ++insert_cursor_;
    }
  }
  if (pages_.size() >= kPagesPerSegment) return nullptr;
  pages_.push_back(std::make_unique<Page>());
  *out_idx = static_cast<uint16_t>(pages_.size() - 1);
  return pages_.back().get();
}

Result<RecordPos> Segment::Insert(Key key, const std::vector<uint8_t>& payload) {
  if (pk_index_->Contains(key)) {
    return Status::AlreadyExists("duplicate key in segment");
  }
  const std::vector<uint8_t> body = EncodeRecord(key, payload);
  uint16_t page_idx = 0;
  Page* page = PageWithRoom(body.size(), &page_idx);
  if (page == nullptr) {
    return Status::ResourceExhausted("segment full");
  }
  auto slot = page->Insert(body.data(), body.size());
  if (!slot.ok()) return slot.status();
  const RecordPos pos{page_idx, slot.value()};
  pk_index_->Insert(key, pos);
  ++writes_;
  return pos;
}

Result<RecordPos> Segment::Locate(Key key) const {
  const RecordPos* pos = pk_index_->Find(key);
  if (pos == nullptr) return Status::NotFound("key not in segment");
  return *pos;
}

Result<Record> Segment::Read(Key key) const {
  auto pos = Locate(key);
  if (!pos.ok()) return pos.status();
  return ReadAt(pos.value());
}

Result<Record> Segment::ReadAt(RecordPos pos) const {
  if (pos.page >= pages_.size()) return Status::NotFound("bad page");
  auto body = pages_[pos.page]->Read(pos.slot);
  if (!body.ok()) return body.status();
  ++reads_;
  return DecodeRecord(body.value().first, body.value().second);
}

Status Segment::Update(Key key, const std::vector<uint8_t>& payload) {
  const RecordPos* posp = pk_index_->Find(key);
  if (posp == nullptr) return Status::NotFound("key not in segment");
  const RecordPos pos = *posp;
  const std::vector<uint8_t> body = EncodeRecord(key, payload);
  Status s = pages_[pos.page]->Update(pos.slot, body.data(), body.size());
  if (s.ok()) {
    ++writes_;
    return s;
  }
  if (!s.IsResourceExhausted()) return s;
  // The record grew past its page: relocate within the segment.
  WATTDB_RETURN_IF_ERROR(pages_[pos.page]->Delete(pos.slot));
  uint16_t page_idx = 0;
  Page* page = PageWithRoom(body.size(), &page_idx);
  if (page == nullptr) return Status::ResourceExhausted("segment full");
  auto slot = page->Insert(body.data(), body.size());
  if (!slot.ok()) return slot.status();
  pk_index_->Insert(key, RecordPos{page_idx, slot.value()});
  ++writes_;
  return Status::OK();
}

Status Segment::Delete(Key key) {
  const RecordPos* posp = pk_index_->Find(key);
  if (posp == nullptr) return Status::NotFound("key not in segment");
  WATTDB_RETURN_IF_ERROR(pages_[posp->page]->Delete(posp->slot));
  pk_index_->Erase(key);
  ++writes_;
  return Status::OK();
}

size_t Segment::ScanRange(Key lo, Key hi,
                          const std::function<bool(const Record&)>& fn) const {
  return pk_index_->Scan(lo, hi, [&](Key key, const RecordPos& pos) {
    auto rec = ReadAt(pos);
    WATTDB_CHECK_MSG(rec.ok(), "index points at missing record, key=" << key);
    return fn(rec.value());
  });
}

size_t Segment::ScanAll(const std::function<bool(const Record&)>& fn) const {
  return ScanRange(kMinKey, kMaxKey, fn);
}

size_t Segment::LiveBytes() const {
  size_t bytes = 0;
  for (const auto& p : pages_) bytes += p->LiveBytes();
  return bytes;
}

Key Segment::MinKey() const {
  Key k = 0;
  if (!pk_index_->LowerBound(kMinKey, &k)) return 0;
  return k;
}

Key Segment::MaxKey() const {
  Key last = 0;
  pk_index_->Scan(kMinKey, kMaxKey, [&](Key k, const RecordPos&) {
    last = k;
    return true;
  });
  return last;
}

bool Segment::CheckInvariants() const {
  if (!pk_index_->CheckInvariants()) return false;
  size_t live = 0;
  for (const auto& p : pages_) {
    if (!p->CheckInvariants()) return false;
    live += p->record_count();
  }
  if (live != pk_index_->size()) return false;
  bool ok = true;
  pk_index_->Scan(kMinKey, kMaxKey, [&](Key key, const RecordPos& pos) {
    auto rec = ReadAt(pos);
    if (!rec.ok() || rec.value().key != key) {
      ok = false;
      return false;
    }
    return true;
  });
  return ok;
}

}  // namespace wattdb::storage
