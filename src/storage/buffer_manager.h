#ifndef WATTDB_STORAGE_BUFFER_MANAGER_H_
#define WATTDB_STORAGE_BUFFER_MANAGER_H_

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>

#include "common/constants.h"
#include "common/types.h"
#include "hw/disk.h"
#include "hw/network.h"
#include "storage/segment_manager.h"

namespace wattdb::storage {

/// Tuning knobs of a node's buffer pool. The paper's nodes have 2 GB DRAM
/// against ~20 GB of data per node, so benches configure `capacity_pages` to
/// a comparable fraction of their (smaller) datasets.
struct BufferSpec {
  size_t capacity_pages = 4096;
  /// Base page-latch acquisition cost, charged on every access.
  SimTime latch_us = 2;
  /// CPU-side cost of serving a buffered page.
  SimTime hit_us = 3;
  /// Request message size for a remote page fetch.
  size_t remote_request_bytes = 64;
};

/// Outcome of a page access, with the component times the Fig. 7 breakdown
/// needs.
struct PageAccess {
  SimTime done = 0;        ///< Completion time.
  bool hit = false;        ///< Served from the local pool.
  bool remote_memory = false;  ///< Served from a helper node's rDMA tier.
  bool remote_disk = false;    ///< Segment bytes live on another node.
  SimTime disk_us = 0;
  SimTime net_us = 0;
  SimTime latch_us = 0;
};

/// Per-node page buffer. Pages are addressed as (segment, page-in-segment);
/// replacement is LRU. Dirty pages pay an asynchronous write-back to the
/// segment's disk upon eviction (the disk is kept busy but the evicting
/// request does not wait).
///
/// Two paper-specific behaviors:
///  * If a segment's bytes live on a *different* node (physical
///    partitioning after a move), a miss pays a network round trip plus the
///    remote disk's service time (§4.1's "multitudes higher" access cost).
///  * An optional remote-memory tier (helper nodes with rDMA, §5.2) absorbs
///    evictions; hits there cost a round trip but no disk access.
class BufferManager {
 public:
  using DiskResolver = std::function<hw::Disk*(DiskId)>;

  BufferManager(NodeId node, BufferSpec spec, SegmentManager* segments,
                hw::Network* network, DiskResolver disk_resolver);

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Access one page at simulated time `now`. `for_write` marks the frame
  /// dirty.
  PageAccess FetchPage(SimTime now, SegmentId seg, uint16_t page_idx,
                       bool for_write);

  /// Drop every cached frame of `seg` (after the segment migrated away).
  void InvalidateSegment(SegmentId seg);

  /// Attach a helper node's memory as an eviction tier (rDMA buffering).
  void AttachRemoteTier(NodeId helper, size_t capacity_pages);
  void DetachRemoteTier();
  bool HasRemoteTier() const { return remote_tier_node_.valid(); }

  /// Maintenance pins model buffer contention from rebalancing jobs: while
  /// pins are held, page latches cost more (queries pile up behind copy
  /// jobs, §5.2's latching/buffer observations).
  void AddMaintenancePins(int64_t pages) { maintenance_pins_ += pages; }
  void ReleaseMaintenancePins(int64_t pages) {
    maintenance_pins_ -= pages;
    if (maintenance_pins_ < 0) maintenance_pins_ = 0;
  }

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t remote_memory_hits() const { return remote_memory_hits_; }
  int64_t dirty_writebacks() const { return dirty_writebacks_; }
  size_t resident_pages() const { return frames_.size(); }
  double HitRate() const {
    const int64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }

  NodeId node() const { return node_; }
  const BufferSpec& spec() const { return spec_; }

 private:
  struct FrameKey {
    SegmentId segment;
    uint16_t page;
    friend bool operator==(const FrameKey& a, const FrameKey& b) {
      return a.segment == b.segment && a.page == b.page;
    }
  };
  struct FrameKeyHash {
    size_t operator()(const FrameKey& k) const {
      return std::hash<SegmentId>()(k.segment) * 8191 + k.page;
    }
  };
  struct Frame {
    bool dirty = false;
    std::list<FrameKey>::iterator lru_it;
  };

  /// Current effective latch cost (inflated by maintenance pins).
  SimTime LatchCost() const;
  void EvictIfFull(SimTime now);
  void TouchLru(const FrameKey& key, Frame* frame);

  NodeId node_;
  BufferSpec spec_;
  SegmentManager* segments_;
  hw::Network* network_;
  DiskResolver disk_resolver_;

  std::unordered_map<FrameKey, Frame, FrameKeyHash> frames_;
  std::list<FrameKey> lru_;  // Front = most recent.

  // Helper-node remote memory tier (page identity only; bytes stay in the
  // functional Segment objects).
  NodeId remote_tier_node_;
  size_t remote_tier_capacity_ = 0;
  std::unordered_map<FrameKey, std::list<FrameKey>::iterator, FrameKeyHash>
      remote_tier_;
  std::list<FrameKey> remote_lru_;

  int64_t maintenance_pins_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t remote_memory_hits_ = 0;
  int64_t dirty_writebacks_ = 0;
};

}  // namespace wattdb::storage

#endif  // WATTDB_STORAGE_BUFFER_MANAGER_H_
