#include "storage/buffer_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace wattdb::storage {

BufferManager::BufferManager(NodeId node, BufferSpec spec,
                             SegmentManager* segments, hw::Network* network,
                             DiskResolver disk_resolver)
    : node_(node),
      spec_(spec),
      segments_(segments),
      network_(network),
      disk_resolver_(std::move(disk_resolver)) {
  WATTDB_CHECK(spec_.capacity_pages > 0);
}

SimTime BufferManager::LatchCost() const {
  // Each concurrently pinned maintenance page adds contention; cap the
  // multiplier so pathological migrations cannot freeze the node.
  const double pressure =
      std::min(4.0, static_cast<double>(maintenance_pins_) / 256.0);
  return static_cast<SimTime>(spec_.latch_us * (1.0 + 3.0 * pressure));
}

void BufferManager::TouchLru(const FrameKey& key, Frame* frame) {
  lru_.erase(frame->lru_it);
  lru_.push_front(key);
  frame->lru_it = lru_.begin();
}

void BufferManager::EvictIfFull(SimTime now) {
  while (frames_.size() >= spec_.capacity_pages) {
    const FrameKey victim = lru_.back();
    lru_.pop_back();
    auto it = frames_.find(victim);
    WATTDB_CHECK(it != frames_.end());
    if (it->second.dirty) {
      // Asynchronous write-back: the disk gets busy, the caller does not
      // wait.
      Segment* seg = segments_->Get(victim.segment);
      if (seg != nullptr) {
        hw::Disk* disk = disk_resolver_(seg->disk());
        if (disk != nullptr) disk->AccessRandom(now, kPageSize);
        ++dirty_writebacks_;
      }
    }
    frames_.erase(it);
    // Clean pages may be demoted into the helper's remote-memory tier.
    if (remote_tier_node_.valid() && remote_tier_capacity_ > 0) {
      if (remote_tier_.find(victim) == remote_tier_.end()) {
        while (remote_tier_.size() >= remote_tier_capacity_) {
          remote_tier_.erase(remote_lru_.back());
          remote_lru_.pop_back();
        }
        remote_lru_.push_front(victim);
        remote_tier_.emplace(victim, remote_lru_.begin());
        // The page ships to the helper asynchronously.
        network_->Transfer(now, node_, remote_tier_node_, kPageSize);
      }
    }
  }
}

PageAccess BufferManager::FetchPage(SimTime now, SegmentId seg_id,
                                    uint16_t page_idx, bool for_write) {
  PageAccess out;
  const FrameKey key{seg_id, page_idx};
  const SimTime latch = LatchCost();
  out.latch_us = latch;
  SimTime t = now + latch;

  auto it = frames_.find(key);
  if (it != frames_.end()) {
    ++hits_;
    out.hit = true;
    if (for_write) it->second.dirty = true;
    TouchLru(key, &it->second);
    out.done = t + spec_.hit_us;
    return out;
  }
  ++misses_;

  // Remote-memory tier (helper rDMA) is cheaper than any disk.
  auto rt = remote_tier_.find(key);
  if (rt != remote_tier_.end()) {
    ++remote_memory_hits_;
    out.remote_memory = true;
    const SimTime t0 = t;
    t = network_->RoundTrip(t, node_, remote_tier_node_,
                            spec_.remote_request_bytes, kPageSize);
    out.net_us = t - t0;
    remote_lru_.erase(rt->second);
    remote_tier_.erase(rt);
  } else {
    Segment* seg = segments_->Get(seg_id);
    WATTDB_CHECK_MSG(seg != nullptr, "fetch of dropped segment");
    hw::Disk* disk = disk_resolver_(seg->disk());
    WATTDB_CHECK_MSG(disk != nullptr, "segment disk not resolvable");
    if (seg->storage_node() == node_) {
      const SimTime t0 = t;
      t = disk->AccessRandom(t, kPageSize);
      out.disk_us = t - t0;
    } else {
      // Physical-partitioning penalty: the owner must fetch the page across
      // the network from the node holding the bytes (request -> remote disk
      // read -> page shipped back).
      out.remote_disk = true;
      const SimTime t0 = t;
      const SimTime req_arrived = network_->Transfer(
          t, node_, seg->storage_node(), spec_.remote_request_bytes);
      const SimTime disk_done = disk->AccessRandom(req_arrived, kPageSize);
      t = network_->Transfer(disk_done, seg->storage_node(), node_, kPageSize);
      out.disk_us = disk_done - req_arrived;
      out.net_us = (t - t0) - out.disk_us;
    }
  }

  EvictIfFull(now);
  lru_.push_front(key);
  Frame frame;
  frame.dirty = for_write;
  frame.lru_it = lru_.begin();
  frames_.emplace(key, frame);

  out.done = t + spec_.hit_us;
  return out;
}

void BufferManager::InvalidateSegment(SegmentId seg) {
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (it->first.segment == seg) {
      lru_.erase(it->second.lru_it);
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = remote_tier_.begin(); it != remote_tier_.end();) {
    if (it->first.segment == seg) {
      remote_lru_.erase(it->second);
      it = remote_tier_.erase(it);
    } else {
      ++it;
    }
  }
}

void BufferManager::AttachRemoteTier(NodeId helper, size_t capacity_pages) {
  remote_tier_node_ = helper;
  remote_tier_capacity_ = capacity_pages;
}

void BufferManager::DetachRemoteTier() {
  remote_tier_node_ = NodeId::Invalid();
  remote_tier_capacity_ = 0;
  remote_tier_.clear();
  remote_lru_.clear();
}

}  // namespace wattdb::storage
