#ifndef WATTDB_STORAGE_SEGMENT_H_
#define WATTDB_STORAGE_SEGMENT_H_

#include <memory>
#include <vector>

#include "common/constants.h"
#include "common/status.h"
#include "common/types.h"
#include "index/record_index.h"
#include "storage/page.h"
#include "storage/record.h"

namespace wattdb::storage {

/// A 32 MB unit of storage and of migration (§4, Fig. 4): up to 4096 pages
/// plus — key to physiological partitioning — a segment-local primary-key
/// B+-tree over exactly the records it stores. Moving the segment between
/// nodes never invalidates this index; only the partitions' top indexes need
/// updating (§4.3).
///
/// The segment also records where its bytes physically live (node + disk),
/// which the buffer manager uses to decide between local disk I/O and a
/// remote fetch (the physical-partitioning penalty).
class Segment {
 public:
  /// A lane value of kLaneUnassigned means "not yet sharded": the node's
  /// LaneManager assigns one lazily on first access and a cross-node move
  /// resets it (the destination node re-lanes by its own map).
  static constexpr int kLaneUnassigned = -1;

  Segment(SegmentId id, NodeId storage_node, DiskId disk,
          index::IndexKind index_kind = index::IndexKind::kBTree);

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  SegmentId id() const { return id_; }

  /// Node whose disk holds the bytes (may differ from the owning partition's
  /// node under physical partitioning).
  NodeId storage_node() const { return storage_node_; }
  DiskId disk() const { return disk_; }
  void Relocate(NodeId node, DiskId disk) {
    storage_node_ = node;
    disk_ = disk;
    // The lane shard is a per-node notion: after a cross-node move the
    // destination's LaneManager assigns a fresh lane on first access.
    lane_ = kLaneUnassigned;
  }

  /// Worker lane owning this segment on its storage node (intra-node
  /// shared-nothing sharding), or kLaneUnassigned.
  int lane() const { return lane_; }
  void set_lane(int lane) { lane_ = lane; }

  /// Insert a record. Fails with ResourceExhausted when all 4096 pages are
  /// full, AlreadyExists on duplicate key.
  Result<RecordPos> Insert(Key key, const std::vector<uint8_t>& payload);

  /// Latest stored record for `key`.
  Result<Record> Read(Key key) const;
  /// Record at a known position (index-free access for scans).
  Result<Record> ReadAt(RecordPos pos) const;

  /// Overwrite the payload of `key`. May relocate the record within the
  /// segment if it grew; the local index is kept consistent.
  Status Update(Key key, const std::vector<uint8_t>& payload);

  Status Delete(Key key);

  bool Contains(Key key) const { return pk_index_->Contains(key); }
  Result<RecordPos> Locate(Key key) const;

  /// Visit records with keys in [lo, hi) in key order; fn returns false to
  /// stop. Returns number visited.
  size_t ScanRange(Key lo, Key hi,
                   const std::function<bool(const Record&)>& fn) const;

  /// Visit every record in key order.
  size_t ScanAll(const std::function<bool(const Record&)>& fn) const;

  size_t record_count() const { return pk_index_->size(); }
  /// Number of materialized pages.
  size_t page_count() const { return pages_.size(); }
  /// Index of the page holding `pos` for buffer-manager addressing.
  const Page* page(size_t idx) const { return pages_[idx].get(); }
  Page* page(size_t idx) { return pages_[idx].get(); }

  /// Bytes of live record bodies across all pages.
  size_t LiveBytes() const;
  /// Bytes this segment occupies on disk (whole pages).
  size_t DiskBytes() const { return pages_.size() * kPageSize; }
  /// Heap bytes of the segment-local index.
  size_t IndexBytes() const { return pk_index_->MemoryBytes(); }

  /// Structure backing the segment-local index, and its relative point-
  /// probe cost (the CPU model scales cpu_index_probe_us by this).
  index::IndexKind index_kind() const { return pk_index_->kind(); }
  double probe_cost_factor() const { return pk_index_->probe_cost_factor(); }

  /// Smallest/largest key present (0/0 when empty).
  Key MinKey() const;
  Key MaxKey() const;

  /// Access statistics for the master's hot-segment detection.
  int64_t reads() const { return reads_; }
  int64_t writes() const { return writes_; }
  void ResetStats() { reads_ = writes_ = 0; }
  /// Restore counters to a snapshot. Crash recovery uses this to unwind
  /// the bumps of redo replay — administrative I/O that the heat monitor
  /// must not mistake for workload (a freshly-recovered node would
  /// otherwise look like the hottest in the cluster).
  void SetStats(int64_t reads, int64_t writes) {
    reads_ = reads;
    writes_ = writes;
  }

  /// Index consistency: every index entry resolves to a live record with the
  /// same key, and counts match.
  bool CheckInvariants() const;

 private:
  Page* PageWithRoom(size_t record_size, uint16_t* out_idx);

  SegmentId id_;
  NodeId storage_node_;
  DiskId disk_;
  int lane_ = kLaneUnassigned;
  std::vector<std::unique_ptr<Page>> pages_;
  std::unique_ptr<index::RecordIndex> pk_index_;
  /// First page that might have room, to keep inserts O(1) amortized.
  size_t insert_cursor_ = 0;
  mutable int64_t reads_ = 0;
  int64_t writes_ = 0;
};

}  // namespace wattdb::storage

#endif  // WATTDB_STORAGE_SEGMENT_H_
