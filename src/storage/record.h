#ifndef WATTDB_STORAGE_RECORD_H_
#define WATTDB_STORAGE_RECORD_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/types.h"

namespace wattdb::storage {

/// Position of a record inside a segment.
struct RecordPos {
  uint16_t page = 0;
  uint16_t slot = 0;

  friend bool operator==(const RecordPos& a, const RecordPos& b) {
    return a.page == b.page && a.slot == b.slot;
  }
};

/// Cluster-wide record identifier: segment + position. Stable across
/// physical and physiological segment moves (the segment's content is
/// shipped verbatim); invalidated by logical record migration, which
/// re-inserts records elsewhere.
struct Rid {
  SegmentId segment;
  RecordPos pos;

  bool valid() const { return segment.valid(); }

  friend bool operator==(const Rid& a, const Rid& b) {
    return a.segment == b.segment && a.pos == b.pos;
  }
};

/// A materialized record: primary key plus opaque payload bytes. On a page,
/// records are stored as an 8-byte little-endian key followed by the payload
/// so that full scans can recover keys without consulting the index.
struct Record {
  Key key = 0;
  std::vector<uint8_t> payload;

  size_t StoredSize() const { return sizeof(Key) + payload.size(); }
};

/// Serialize key+payload into the page wire format.
inline std::vector<uint8_t> EncodeRecord(Key key,
                                         const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> buf(sizeof(Key) + payload.size());
  std::memcpy(buf.data(), &key, sizeof(Key));
  if (!payload.empty()) {
    std::memcpy(buf.data() + sizeof(Key), payload.data(), payload.size());
  }
  return buf;
}

/// Parse the page wire format back into a Record.
inline Record DecodeRecord(const uint8_t* data, size_t size) {
  Record r;
  std::memcpy(&r.key, data, sizeof(Key));
  r.payload.assign(data + sizeof(Key), data + size);
  return r;
}

}  // namespace wattdb::storage

namespace std {
template <>
struct hash<wattdb::storage::Rid> {
  size_t operator()(const wattdb::storage::Rid& rid) const {
    size_t h = std::hash<wattdb::SegmentId>()(rid.segment);
    h = h * 1000003 + (static_cast<size_t>(rid.pos.page) << 16 | rid.pos.slot);
    return h;
  }
};
}  // namespace std

#endif  // WATTDB_STORAGE_RECORD_H_
