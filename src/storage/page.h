#ifndef WATTDB_STORAGE_PAGE_H_
#define WATTDB_STORAGE_PAGE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/constants.h"
#include "common/status.h"
#include "common/types.h"

namespace wattdb::storage {

/// A classic slotted page over an 8 KB frame. The slot directory grows
/// downward from the header; record bodies grow upward from the end of the
/// frame. Deleting leaves a tombstone slot (slot numbers must stay stable
/// because indexes reference them); the space is reclaimed by Compact(),
/// which is called automatically when an insert would otherwise fail even
/// though enough dead space exists.
///
/// Layout:
///   [0,16)               header: slot_count, free_ptr, lsn, record_count
///   [16, 16+4*slots)     slot directory: {offset:u16, length:u16}
///   [free_ptr, 8192)     record bodies (tightly packed at the tail)
class Page {
 public:
  Page();

  /// Insert a record body. Returns the slot number, or ResourceExhausted if
  /// the page cannot fit `size` bytes plus a slot entry even after
  /// compaction.
  Result<uint16_t> Insert(const uint8_t* data, size_t size);

  /// Read the record in `slot`. NotFound for tombstones/out-of-range.
  Result<std::pair<const uint8_t*, size_t>> Read(uint16_t slot) const;

  /// Overwrite the record in `slot`. The new body may be smaller or equal in
  /// size (in-place); growing an entry relocates it within the page and
  /// fails with ResourceExhausted if it no longer fits.
  Status Update(uint16_t slot, const uint8_t* data, size_t size);

  /// Tombstone the record in `slot`.
  Status Delete(uint16_t slot);

  /// Bytes available for a new record (including its slot entry), after
  /// hypothetical compaction.
  size_t FreeSpace() const;
  /// Bytes available without compaction.
  size_t ContiguousFreeSpace() const;

  bool HasRoomFor(size_t record_size) const {
    return FreeSpace() >= record_size + kSlotSize;
  }

  /// Live (non-tombstoned) record count.
  uint16_t record_count() const { return record_count_; }
  uint16_t slot_count() const { return static_cast<uint16_t>(slots_.size()); }

  /// Bytes occupied by live record bodies.
  size_t LiveBytes() const { return live_bytes_; }

  uint64_t lsn() const { return lsn_; }
  void set_lsn(uint64_t lsn) { lsn_ = lsn; }

  /// Visit every live slot: fn(slot, data, size).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint16_t s = 0; s < slots_.size(); ++s) {
      if (slots_[s].offset == kTombstone) continue;
      fn(s, frame_.data() + slots_[s].offset, slots_[s].length);
    }
  }

  /// Squeeze out dead space; slot numbers are preserved.
  void Compact();

  /// Structural invariants: slots in range, no overlaps, live byte count.
  bool CheckInvariants() const;

 private:
  struct Slot {
    uint16_t offset;  // kTombstone when dead.
    uint16_t length;
  };
  static constexpr uint16_t kTombstone = 0xFFFF;
  static constexpr size_t kFrameSize = kPageSize;

  std::vector<uint8_t> frame_;
  std::vector<Slot> slots_;
  size_t free_ptr_;           // Start of the packed record area.
  size_t live_bytes_ = 0;     // Total bytes of live record bodies.
  uint16_t record_count_ = 0;
  uint64_t lsn_ = 0;
};

}  // namespace wattdb::storage

#endif  // WATTDB_STORAGE_PAGE_H_
