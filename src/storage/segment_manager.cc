#include "storage/segment_manager.h"

namespace wattdb::storage {

Segment* SegmentManager::Create(NodeId node, DiskId disk) {
  const SegmentId id(next_id_++);
  auto seg = std::make_unique<Segment>(id, node, disk, index_kind_);
  Segment* raw = seg.get();
  segments_.emplace(id, std::move(seg));
  return raw;
}

Segment* SegmentManager::Get(SegmentId id) {
  auto it = segments_.find(id);
  return it == segments_.end() ? nullptr : it->second.get();
}

const Segment* SegmentManager::Get(SegmentId id) const {
  auto it = segments_.find(id);
  return it == segments_.end() ? nullptr : it->second.get();
}

Status SegmentManager::Drop(SegmentId id) {
  return segments_.erase(id) > 0 ? Status::OK()
                                 : Status::NotFound("no such segment");
}

Status SegmentManager::Relocate(SegmentId id, NodeId node, DiskId disk) {
  Segment* seg = Get(id);
  if (seg == nullptr) return Status::NotFound("no such segment");
  seg->Relocate(node, disk);
  return Status::OK();
}

std::vector<Segment*> SegmentManager::SegmentsOn(NodeId node) {
  std::vector<Segment*> out;
  for (auto& [id, seg] : segments_) {
    if (seg->storage_node() == node) out.push_back(seg.get());
  }
  return out;
}

size_t SegmentManager::TotalDiskBytes() const {
  size_t bytes = 0;
  for (const auto& [id, seg] : segments_) bytes += seg->DiskBytes();
  return bytes;
}

}  // namespace wattdb::storage
