#ifndef WATTDB_STORAGE_SEGMENT_MANAGER_H_
#define WATTDB_STORAGE_SEGMENT_MANAGER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/segment.h"

namespace wattdb::storage {

/// Cluster-wide segment directory: allocates segment ids, owns all segment
/// objects, and tracks where each segment's bytes physically reside. The
/// master's migration machinery and every node's buffer manager consult it.
class SegmentManager {
 public:
  SegmentManager() = default;
  SegmentManager(const SegmentManager&) = delete;
  SegmentManager& operator=(const SegmentManager&) = delete;

  /// Structure backing every subsequently-created segment's local index
  /// (cluster-wide, fixed at Db::Open; see DbOptions::WithIndexKind).
  void set_index_kind(index::IndexKind kind) { index_kind_ = kind; }
  index::IndexKind index_kind() const { return index_kind_; }

  /// Create a fresh segment stored on (node, disk).
  Segment* Create(NodeId node, DiskId disk);

  Segment* Get(SegmentId id);
  const Segment* Get(SegmentId id) const;

  /// Remove a segment entirely (after logical migration drained it).
  Status Drop(SegmentId id);

  /// Update the physical location of a segment's bytes.
  Status Relocate(SegmentId id, NodeId node, DiskId disk);

  /// All segments whose bytes live on `node`.
  std::vector<Segment*> SegmentsOn(NodeId node);

  size_t size() const { return segments_.size(); }

  /// Total disk bytes across all segments (storage-footprint metric).
  size_t TotalDiskBytes() const;

 private:
  uint32_t next_id_ = 1;
  index::IndexKind index_kind_ = index::IndexKind::kBTree;
  std::unordered_map<SegmentId, std::unique_ptr<Segment>> segments_;
};

}  // namespace wattdb::storage

#endif  // WATTDB_STORAGE_SEGMENT_MANAGER_H_
