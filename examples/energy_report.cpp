// Energy-proportionality report: run the same TPC-C workload at several
// intensities on (a) a fixed "brawny" configuration with every node on and
// (b) a right-sized configuration with only as many nodes as the load
// needs, and compare watts and joules per query — the cluster thesis of
// §1/§3 ("a cluster of nodes may adjust the number of active nodes to the
// current demand and, thus, approximate energy proportionality").
//
//   $ ./examples/energy_report

#include <cstdio>
#include <vector>

#include "api/db.h"

using namespace wattdb;

namespace {

struct RunResult {
  double qps = 0;
  double watts = 0;
  double j_per_query = 0;
};

RunResult RunAt(int clients, int active_nodes) {
  std::vector<NodeId> home_nodes;
  for (int i = 0; i < active_nodes; ++i) home_nodes.push_back(NodeId(i));
  auto opened = Db::Open(DbOptions()
                             .WithNodes(10)
                             .WithActiveNodes(active_nodes)
                             .WithBufferPages(600)
                             .WithWarehouses(active_nodes * 2)
                             .WithFill(0.15)
                             .WithHomeNodes(home_nodes));
  if (!opened.ok()) return {};
  Db& db = **opened;

  workload::ClientPoolConfig pool_cfg;
  pool_cfg.num_clients = clients;
  pool_cfg.think_time = 80 * kUsPerMs;
  workload::ClientPool& pool = db.AddClientPool(pool_cfg);
  pool.Start();
  db.RunFor(20 * kUsPerSec);  // Warm up.
  pool.ResetStats();
  db.energy().Reset();
  constexpr SimTime kWindow = 60 * kUsPerSec;
  db.RunFor(kWindow);
  pool.Stop();

  RunResult r;
  r.qps = pool.completed() / ToSeconds(kWindow);
  r.watts = db.energy().joules() / ToSeconds(kWindow);
  r.j_per_query = pool.completed() > 0
                      ? db.energy().joules() / pool.completed()
                      : 0.0;
  return r;
}

}  // namespace

int main() {
  std::printf("energy proportionality: right-sized cluster vs all-on\n\n");
  std::printf("%8s | %28s | %28s\n", "", "right-sized (n nodes)",
              "over-provisioned (10 nodes)");
  std::printf("%8s | %6s %8s %8s %6s | %8s %8s %8s\n", "clients", "nodes",
              "qps", "W", "J/q", "qps", "W", "J/q");
  struct Point {
    int clients;
    int nodes;
  };
  for (const Point p :
       {Point{10, 1}, Point{40, 2}, Point{90, 3}}) {
    const RunResult sized = RunAt(p.clients, p.nodes);
    const RunResult allon = RunAt(p.clients, 10);
    std::printf("%8d | %6d %8.1f %8.1f %6.2f | %8.1f %8.1f %8.2f\n",
                p.clients, p.nodes, sized.qps, sized.watts, sized.j_per_query,
                allon.qps, allon.watts, allon.j_per_query);
  }
  std::printf(
      "\nA right-sized wimpy cluster tracks the load with its power draw;\n"
      "the all-on configuration wastes idle watts at every load level.\n");
  return 0;
}
