// Elasticity demo: the master's threshold controller (§3.4) reacts to a
// load surge by booting a standby node and repartitioning onto it with the
// physiological scheme, then scales back in when the surge subsides.
//
//   $ ./examples/elastic_scaleout
//
// Prints a once-per-10s status line: active nodes, qps, avg latency, watts.

#include <cstdio>

#include "api/db.h"

using namespace wattdb;

int main() {
  // The wimpy nodes are I/O-bound long before their CPUs saturate, so the
  // demo's thresholds sit low (the paper's 80% bound assumes CPU-heavy
  // plans; §3.4's disk-utilization rules would fire here first).
  cluster::MasterPolicy policy;
  policy.cpu_upper = 0.10;
  policy.cpu_lower = 0.05;
  policy.check_period = 5 * kUsPerSec;

  auto opened = Db::Open(DbOptions()
                             .WithNodes(4)
                             .WithActiveNodes(1)  // Centralized on the master.
                             .WithBufferPages(600)
                             .WithWarehouses(4)
                             .WithFill(0.25)
                             .WithHomeNodes({NodeId(0)})
                             .WithScheme("physiological")
                             .WithMasterLoop(policy));
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  Db& db = **opened;

  // Base load, surge, and cool-down phases via two client pools.
  workload::ClientPoolConfig base_cfg;
  base_cfg.num_clients = 20;
  base_cfg.think_time = 50 * kUsPerMs;
  workload::ClientPool& base = db.AddClientPool(base_cfg);

  workload::ClientPoolConfig surge_cfg;
  surge_cfg.num_clients = 150;
  surge_cfg.think_time = 10 * kUsPerMs;
  surge_cfg.seed = 99;
  workload::ClientPool& surge = db.AddClientPool(surge_cfg);

  base.Start();
  db.events().ScheduleAt(60 * kUsPerSec, [&]() {
    std::printf("-- t=60s: load surge begins --\n");
    surge.Start();
  });
  db.events().ScheduleAt(240 * kUsPerSec, [&]() {
    std::printf("-- t=240s: surge ends --\n");
    surge.Stop();
  });

  std::printf("%8s %8s %8s %10s %10s %12s\n", "t[s]", "nodes", "qps",
              "avg_ms", "watts", "scale_events");
  int64_t last_completed = 0;
  for (int t = 10; t <= 480; t += 10) {
    db.RunUntil(static_cast<SimTime>(t) * kUsPerSec);
    const int64_t done = base.completed() + surge.completed();
    const double qps = (done - last_completed) / 10.0;
    last_completed = done;
    const SimTime now = db.Now();
    std::printf("%8d %8d %8.1f %10.2f %10.1f %6d out,%3d in\n", t,
                db.ActiveNodeCount(), qps,
                base.latencies().mean() / kUsPerMs,
                db.WattsIn(now - 10 * kUsPerSec, now),
                db.master().scale_out_events(), db.master().scale_in_events());
  }
  base.Stop();

  std::printf("\nscale-out events: %d, scale-in events: %d\n",
              db.master().scale_out_events(), db.master().scale_in_events());
  std::printf("total energy: %.1f kJ\n", db.energy().joules() / 1000.0);
  return 0;
}
