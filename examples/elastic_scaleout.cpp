// Elasticity demo: the master's threshold controller (§3.4) reacts to a
// load surge by booting a standby node and repartitioning onto it with the
// physiological scheme, then scales back in when the surge subsides.
//
//   $ ./examples/elastic_scaleout
//
// Prints a once-per-10s status line: active nodes, qps, avg latency, watts.

#include <cstdio>

#include "cluster/cluster.h"
#include "cluster/master.h"
#include "partition/physiological.h"
#include "workload/client.h"
#include "workload/tpcc_loader.h"

using namespace wattdb;

int main() {
  cluster::ClusterConfig config;
  config.num_nodes = 4;
  config.initially_active = 1;  // Everything starts centralized on the master.
  config.buffer.capacity_pages = 600;
  cluster::Cluster cluster(config);

  workload::TpccLoadConfig load;
  load.warehouses = 4;
  load.fill = 0.25;
  load.home_nodes = {NodeId(0)};
  workload::TpccDatabase db(&cluster, load);
  if (!db.Load().ok()) return 1;

  partition::PhysiologicalPartitioning scheme(&cluster);
  cluster::MasterPolicy policy;
  // The wimpy nodes are I/O-bound long before their CPUs saturate, so the
  // demo's thresholds sit low (the paper's 80% bound assumes CPU-heavy
  // plans; §3.4's disk-utilization rules would fire here first).
  policy.cpu_upper = 0.10;
  policy.cpu_lower = 0.05;
  policy.check_period = 5 * kUsPerSec;
  cluster::Master master(&cluster, &scheme, policy);
  master.Start();

  // Base load, surge, and cool-down phases via two client pools.
  workload::ClientPoolConfig base_cfg;
  base_cfg.num_clients = 20;
  base_cfg.think_time = 50 * kUsPerMs;
  workload::ClientPool base(&db, base_cfg);

  workload::ClientPoolConfig surge_cfg;
  surge_cfg.num_clients = 150;
  surge_cfg.think_time = 10 * kUsPerMs;
  surge_cfg.seed = 99;
  workload::ClientPool surge(&db, surge_cfg);

  base.Start();
  cluster.StartSampling(nullptr);
  cluster.events().ScheduleAt(60 * kUsPerSec, [&]() {
    std::printf("-- t=60s: load surge begins --\n");
    surge.Start();
  });
  cluster.events().ScheduleAt(240 * kUsPerSec, [&]() {
    std::printf("-- t=240s: surge ends --\n");
    surge.Stop();
  });

  std::printf("%8s %8s %8s %10s %10s %12s\n", "t[s]", "nodes", "qps",
              "avg_ms", "watts", "scale_events");
  int64_t last_completed = 0;
  for (int t = 10; t <= 480; t += 10) {
    cluster.RunUntil(static_cast<SimTime>(t) * kUsPerSec);
    const int64_t done = base.completed() + surge.completed();
    const double qps = (done - last_completed) / 10.0;
    last_completed = done;
    const SimTime now = cluster.Now();
    std::printf("%8d %8d %8.1f %10.2f %10.1f %6d out,%3d in\n", t,
                cluster.ActiveNodeCount(), qps,
                base.latencies().mean() / kUsPerMs,
                cluster.WattsIn(now - 10 * kUsPerSec, now),
                master.scale_out_events(), master.scale_in_events());
  }
  base.Stop();

  std::printf("\nscale-out events: %d, scale-in events: %d\n",
              master.scale_out_events(), master.scale_in_events());
  std::printf("total energy: %.1f kJ\n", cluster.energy().joules() / 1000.0);
  return 0;
}
