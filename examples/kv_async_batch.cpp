// Tour of the async/batched data plane and the WorkloadDriver interface:
// a generic KV table (no TPC-C anywhere), owner-grouped MultiGet/MultiPut,
// futures resolving on the simulated event loop, and a YCSB-style driver
// attached and driven purely through workload::WorkloadDriver.
//
//   ./build/kv_async_batch

#include <cstdio>
#include <vector>

#include "api/db.h"

using namespace wattdb;  // NOLINT(build/namespaces)

int main() {
  auto opened = Db::Open(DbOptions()
                             .WithNodes(4)
                             .WithActiveNodes(2)
                             .WithoutTpccLoad());
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  Db& db = **opened;

  // A generic table, range-partitioned over the two active nodes.
  auto table = db.CreateKvTable("demo", /*value_bytes=*/64, /*max_key=*/1000);
  if (!table.ok()) return 1;
  Session session = db.OpenSession();

  // Batched upsert: every key in one transaction, one master<->owner round
  // trip per owner node instead of one per key.
  std::vector<KeyValue> kvs;
  for (Key k = 0; k < 16; ++k) {
    kvs.push_back(KeyValue{k * 60, std::vector<uint8_t>(64, uint8_t(k))});
  }
  auto put = session.MultiPut(*table, kvs);
  if (!put.ok()) return 1;
  std::printf("MultiPut: %lld upserted, %d owner round trips\n",
              static_cast<long long>(put->oks()),
              put->stats.owner_round_trips);

  // Batched read of the same keys.
  std::vector<Key> keys;
  for (const KeyValue& kv : kvs) keys.push_back(kv.key);
  auto got = session.MultiGet(*table, keys);
  if (!got.ok()) return 1;
  std::printf("MultiGet: %lld hits,    %d owner round trips\n",
              static_cast<long long>(got->hits()),
              got->stats.owner_round_trips);

  // Async tier: futures resolve on the event loop in sim-time order. The
  // remote key (node 1) was issued first but completes after the
  // master-local one.
  Future<StatusOr<storage::Record>> remote = session.GetAsync(*table, 900);
  Future<StatusOr<storage::Record>> local = session.GetAsync(*table, 60);
  remote.Then([](const StatusOr<storage::Record>& r) {
    std::printf("  remote key resolved (ok=%d)\n", r.ok());
  });
  local.Then([](const StatusOr<storage::Record>& r) {
    std::printf("  local key resolved first (ok=%d)\n", r.ok());
  });
  db.RunFor(kUsPerSec);

  // A YCSB-style closed-loop workload, owned and driven via the common
  // WorkloadDriver interface.
  workload::KvConfig cfg;
  cfg.num_clients = 8;
  cfg.num_keys = 2048;
  auto kv = db.AddKvWorkload(cfg);
  if (!kv.ok()) return 1;
  workload::WorkloadDriver& driver = **kv;
  driver.Start();
  db.RunFor(10 * kUsPerSec);
  driver.Stop();
  std::printf("%s driver: %lld txns committed, mean latency %.2f ms\n",
              driver.name().c_str(), static_cast<long long>(driver.committed()),
              driver.latencies().mean() / kUsPerMs);
  return 0;
}
