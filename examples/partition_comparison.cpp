// Compare the three repartitioning schemes on one live migration, printing
// a compact before/during/after summary — a minute-scale version of the
// paper's Fig. 6 experiment.
//
//   $ ./examples/partition_comparison [physical|logical|physiological]
//
// Without an argument, runs all three.

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/master.h"
#include "partition/logical.h"
#include "partition/physical.h"
#include "partition/physiological.h"
#include "workload/client.h"
#include "workload/tpcc_loader.h"

using namespace wattdb;

namespace {

struct PhaseStats {
  double qps = 0;
  double avg_ms = 0;
};

PhaseStats Window(cluster::Cluster* c, workload::ClientPool* pool,
                  SimTime duration) {
  pool->ResetStats();
  c->RunUntil(c->Now() + duration);
  PhaseStats s;
  s.qps = pool->completed() / ToSeconds(duration);
  s.avg_ms = pool->latencies().mean() / kUsPerMs;
  return s;
}

void RunScheme(const char* name) {
  cluster::ClusterConfig config;
  config.num_nodes = 6;
  config.initially_active = 2;
  config.buffer.capacity_pages = 500;
  cluster::Cluster cluster(config);

  workload::TpccLoadConfig load;
  load.warehouses = 4;
  load.fill = 0.25;
  load.home_nodes = {NodeId(0), NodeId(1)};
  workload::TpccDatabase db(&cluster, load);
  if (!db.Load().ok()) return;

  partition::MigrationConfig mc;
  mc.cost_scale = 6.0;
  std::unique_ptr<partition::MigrationManagerBase> scheme;
  if (std::strcmp(name, "physical") == 0) {
    scheme = std::make_unique<partition::PhysicalPartitioning>(&cluster, mc);
  } else if (std::strcmp(name, "logical") == 0) {
    scheme = std::make_unique<partition::LogicalPartitioning>(&cluster, mc);
  } else {
    scheme =
        std::make_unique<partition::PhysiologicalPartitioning>(&cluster, mc);
  }
  cluster::Master master(&cluster, scheme.get());

  workload::ClientPoolConfig pool_cfg;
  pool_cfg.num_clients = 40;
  pool_cfg.think_time = 60 * kUsPerMs;
  workload::ClientPool pool(&db, pool_cfg);
  pool.Start();
  cluster.StartSampling(nullptr);

  const PhaseStats before = Window(&cluster, &pool, 30 * kUsPerSec);
  bool done = false;
  (void)master.TriggerRebalance({NodeId(2), NodeId(3)}, 0.5,
                                [&]() { done = true; });
  pool.ResetStats();
  const SimTime t0 = cluster.Now();
  while (!done && cluster.Now() < t0 + 600 * kUsPerSec) {
    cluster.RunUntil(cluster.Now() + kUsPerSec);
  }
  const double move_secs = ToSeconds(cluster.Now() - t0);
  PhaseStats during;
  during.qps = pool.completed() / move_secs;
  during.avg_ms = pool.latencies().mean() / kUsPerMs;
  const PhaseStats after = Window(&cluster, &pool, 30 * kUsPerSec);
  pool.Stop();

  std::printf(
      "%-14s | before %6.1f qps %7.2f ms | during %6.1f qps %7.2f ms "
      "(%5.1fs) | after %6.1f qps %7.2f ms | moved %lld segs / %lld recs\n",
      scheme->name().c_str(), before.qps, before.avg_ms, during.qps,
      during.avg_ms, move_secs, after.qps, after.avg_ms,
      static_cast<long long>(scheme->stats().segments_moved),
      static_cast<long long>(scheme->stats().records_moved));
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("online repartitioning: 50%% of records, 2 -> 4 nodes\n");
  if (argc > 1) {
    RunScheme(argv[1]);
    return 0;
  }
  for (const char* scheme : {"physical", "logical", "physiological"}) {
    RunScheme(scheme);
  }
  std::printf(
      "\nphysical ships bytes but strands ownership (no 'after' gain);\n"
      "logical pays per-record transactions; physiological ships bytes AND\n"
      "transfers ownership — the paper's recommendation.\n");
  return 0;
}
