// Compare the three repartitioning schemes on one live migration, printing
// a compact before/during/after summary — a minute-scale version of the
// paper's Fig. 6 experiment.
//
//   $ ./examples/partition_comparison [physical|logical|physiological|<registered>]
//
// Without an argument, runs all three paper schemes. The scheme argument is
// resolved through the SchemeRegistry, so any factory registered by linked
// code works here too.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/db.h"

using namespace wattdb;

namespace {

struct PhaseStats {
  double qps = 0;
  double avg_ms = 0;
};

PhaseStats Window(Db* db, workload::ClientPool* pool, SimTime duration) {
  pool->ResetStats();
  db->RunFor(duration);
  PhaseStats s;
  s.qps = pool->completed() / ToSeconds(duration);
  s.avg_ms = pool->latencies().mean() / kUsPerMs;
  return s;
}

void RunScheme(const std::string& name) {
  auto opened = Db::Open(DbOptions()
                             .WithNodes(6)
                             .WithActiveNodes(2)
                             .WithBufferPages(500)
                             .WithWarehouses(4)
                             .WithFill(0.25)
                             .WithHomeNodes({NodeId(0), NodeId(1)})
                             .WithScheme(name)
                             .WithCostScale(6.0));
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return;
  }
  Db& db = **opened;

  workload::ClientPoolConfig pool_cfg;
  pool_cfg.num_clients = 40;
  pool_cfg.think_time = 60 * kUsPerMs;
  workload::ClientPool& pool = db.AddClientPool(pool_cfg);
  pool.Start();

  const PhaseStats before = Window(&db, &pool, 30 * kUsPerSec);
  pool.ResetStats();
  const StatusOr<SimTime> moved =
      db.RebalanceAndWait({NodeId(2), NodeId(3)}, 0.5, 600 * kUsPerSec);
  const double move_secs =
      moved.ok() ? ToSeconds(*moved) : ToSeconds(600 * kUsPerSec);
  PhaseStats during;
  during.qps = pool.completed() / move_secs;
  during.avg_ms = pool.latencies().mean() / kUsPerMs;
  const PhaseStats after = Window(&db, &pool, 30 * kUsPerSec);
  pool.Stop();

  std::printf(
      "%-14s | before %6.1f qps %7.2f ms | during %6.1f qps %7.2f ms "
      "(%5.1fs) | after %6.1f qps %7.2f ms | moved %lld segs / %lld recs\n",
      db.scheme().name().c_str(), before.qps, before.avg_ms, during.qps,
      during.avg_ms, move_secs, after.qps, after.avg_ms,
      static_cast<long long>(db.scheme().stats().segments_moved),
      static_cast<long long>(db.scheme().stats().records_moved));
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("online repartitioning: 50%% of records, 2 -> 4 nodes\n");
  if (argc > 1) {
    RunScheme(argv[1]);
    return 0;
  }
  for (const char* scheme : {"physical", "logical", "physiological"}) {
    RunScheme(scheme);
  }
  std::printf(
      "\nphysical ships bytes but strands ownership (no 'after' gain);\n"
      "logical pays per-record transactions; physiological ships bytes AND\n"
      "transfers ownership — the paper's recommendation.\n");
  return 0;
}
