// Quickstart: open a simulated WattDB cluster with a small TPC-C database
// through the wattdb::Db facade, run transactions, and inspect routing.
//
//   $ ./examples/quickstart
//
// The whole setup is one Db::Open call; data access goes through an RAII
// Session, never through cluster internals.

#include <cstdio>

#include "api/db.h"
#include "workload/tpcc_txn.h"

using namespace wattdb;

int main() {
  // 1. A four-node cluster (node 0 is the master; nodes 0-1 start active,
  //    the rest sleep in standby at ~2.5 W), TPC-C at a small scale factor
  //    across the two active nodes, physiological partitioning ready.
  auto opened = Db::Open(DbOptions()
                             .WithNodes(4)
                             .WithActiveNodes(2)
                             .WithBufferPages(2000)
                             .WithWarehouses(2)
                             .WithFill(0.1)  // 10% cardinality: instant load.
                             .WithHomeNodes({NodeId(0), NodeId(1)}));
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  Db& db = **opened;
  std::printf("loaded %lld rows into %zu segments\n",
              static_cast<long long>(db.tpcc()->rows_loaded()),
              db.cluster().segments().size());

  // 2. Run one of each TPC-C transaction through the master's router.
  workload::TpccRunner runner(db.tpcc());
  Rng rng(7);
  for (auto type :
       {workload::TpccTxnType::kNewOrder, workload::TpccTxnType::kPayment,
        workload::TpccTxnType::kOrderStatus, workload::TpccTxnType::kDelivery,
        workload::TpccTxnType::kStockLevel}) {
    const workload::TpccTxnResult r = runner.Run(type, &rng);
    std::printf("%-12s %-9s latency=%6.2f ms  (disk %.2f / net %.2f / "
                "lock %.2f ms)\n",
                workload::TpccTxnName(type),
                r.committed ? "committed" : "aborted",
                r.latency_us / 1000.0, r.profile.disk_us / 1000.0,
                r.profile.net_us / 1000.0, r.profile.lock_wait_us / 1000.0);
    db.RunFor(kUsPerSec);
  }

  // 3. Point read through an autocommit session: routing, the two-pointer
  //    redirect protocol, and hop charging all happen behind Get().
  Session session = db.OpenSession();
  const TableId customer = db.table(workload::TpccTable::kCustomer);
  const Key key = workload::TpccKeys::Customer(1, 1, 1);
  if (StatusOr<storage::Record> rec = session.Get(customer, key); rec.ok()) {
    std::printf("customer (w=1,d=1,c=1): %zu payload bytes, balance %.2f\n",
                rec->payload.size(),
                workload::GetF64(rec->payload,
                                 workload::CustomerFields::kBalance));
  }

  // 4. Routing introspection: who serves which key range.
  std::printf("\nrouting entries for CUSTOMER:\n");
  for (const TableRoute& route : db.Routes(customer)) {
    std::printf("  %-28s -> partition %3u on node %u (%zu segments)\n",
                route.range.ToString().c_str(), route.partition.value(),
                route.owner.value(), route.segments);
  }

  // 5. Power accounting per §3.1.
  const SimTime now = db.Now();
  std::printf("\ncluster draw over the last second: %.1f W (%d active "
              "nodes + switch)\n",
              db.WattsIn(now - kUsPerSec, now), db.ActiveNodeCount());
  return 0;
}
