// Quickstart: stand up a simulated WattDB cluster, load a small TPC-C
// database, run a few transactions by hand, and inspect the catalog.
//
//   $ ./examples/quickstart
//
// This walks the public API end to end: ClusterConfig -> Cluster ->
// TpccDatabase -> transactions -> catalog/routing introspection.

#include <cstdio>

#include "cluster/cluster.h"
#include "workload/tpcc_loader.h"
#include "workload/tpcc_txn.h"

using namespace wattdb;

int main() {
  // 1. A four-node cluster; nodes 0 (master) and 1 start active, the rest
  //    sleep in standby at ~2.5 W.
  cluster::ClusterConfig config;
  config.num_nodes = 4;
  config.initially_active = 2;
  config.buffer.capacity_pages = 2000;
  cluster::Cluster cluster(config);

  // 2. Load TPC-C at a small scale factor across the two active nodes.
  workload::TpccLoadConfig load;
  load.warehouses = 2;
  load.fill = 0.1;  // 10% of the spec cardinalities keeps this instant.
  load.home_nodes = {NodeId(0), NodeId(1)};
  workload::TpccDatabase db(&cluster, load);
  if (Status s = db.Load(); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("loaded %lld rows into %zu segments\n",
              static_cast<long long>(db.rows_loaded()),
              cluster.segments().size());

  // 3. Run one of each TPC-C transaction through the master's router.
  workload::TpccRunner runner(&db);
  Rng rng(7);
  for (auto type :
       {workload::TpccTxnType::kNewOrder, workload::TpccTxnType::kPayment,
        workload::TpccTxnType::kOrderStatus, workload::TpccTxnType::kDelivery,
        workload::TpccTxnType::kStockLevel}) {
    const workload::TpccTxnResult r = runner.Run(type, &rng);
    std::printf("%-12s %-9s latency=%6.2f ms  (disk %.2f / net %.2f / "
                "lock %.2f ms)\n",
                workload::TpccTxnName(type),
                r.committed ? "committed" : "aborted",
                r.latency_us / 1000.0, r.profile.disk_us / 1000.0,
                r.profile.net_us / 1000.0, r.profile.lock_wait_us / 1000.0);
    cluster.RunUntil(cluster.Now() + kUsPerSec);
  }

  // 4. Point read through the routing layer.
  tx::Txn* txn = cluster.BeginTxn(/*read_only=*/true);
  const TableId customer = db.table(workload::TpccTable::kCustomer);
  const Key key = workload::TpccKeys::Customer(1, 1, 1);
  catalog::Partition* part = cluster.Route(txn, customer, key);
  storage::Record rec;
  if (part != nullptr &&
      cluster.node(part->owner())->Read(txn, part, key, &rec).ok()) {
    std::printf("customer (w=1,d=1,c=1): %zu payload bytes, balance %.2f, "
                "owner node %u\n",
                rec.payload.size(),
                workload::GetF64(rec.payload,
                                 workload::CustomerFields::kBalance),
                part->owner().value());
  }
  cluster.tm().Commit(txn);
  cluster.tm().Release(txn->id);

  // 5. Catalog/routing introspection: who owns what.
  std::printf("\nrouting entries for CUSTOMER:\n");
  for (const auto& route : cluster.catalog().AllRoutes(customer)) {
    const catalog::Partition* p =
        cluster.catalog().GetPartition(route.primary);
    std::printf("  %-28s -> partition %3u on node %u (%zu segments)\n",
                route.range.ToString().c_str(), route.primary.value(),
                p->owner().value(), p->segment_count());
  }

  // 6. Power accounting per §3.1.
  const SimTime now = cluster.Now();
  std::printf("\ncluster draw over the last second: %.1f W (%d active "
              "nodes + switch)\n",
              cluster.WattsIn(now - kUsPerSec, now),
              cluster.ActiveNodeCount());
  return 0;
}
