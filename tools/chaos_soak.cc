// chaos_soak: run N seeded chaos scenarios against the simulated cluster
// and write a JSON report. Every scenario is a pure function of its seed,
// so a soak failure ships its own reproducer:
//
//   ./chaos_soak --seeds 200 --base-seed 1 --out chaos_report.json
//   ./chaos_soak --seed 137            # replay one failing seed, verbose
//   ./chaos_soak --seeds 50 --no-fencing   # demo: the checker catches the
//                                          # missing epoch check
//   ./chaos_soak --seeds 50 --history --elasticity
//                    # record per-op histories, check linearizability, and
//                    # race scale-out/drain/scale-in against the faults
//
// Exit code 0 when every seed passes, 1 on invariant failures, 2 on bad
// arguments, 3 when at least one failure is a *history* (linearizability)
// violation — CI tells checker catches from final-state catches by code.
// The report carries the seeds run, per-seed wall-clock (checker cost
// regressions show up here), the failures with violations and full event
// timelines, and the exact replay command. The first history violation's
// minimal failing sub-history is also written to its own JSON file.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "common/logging.h"

namespace {

using wattdb::chaos::ChaosConfig;
using wattdb::chaos::ScenarioResult;

struct SoakArgs {
  int seeds = 50;
  uint64_t base_seed = 1;
  // >= 0: replay exactly this one seed, with the timeline printed.
  int64_t replay_seed = -1;
  std::string out = "chaos_report.json";
  std::string history_out = "history_violation.json";
  bool fencing = true;
  bool history = false;
  bool elasticity = false;
  int duration_s = 20;
  bool verbose = false;
};

void Usage() {
  std::cerr
      << "usage: chaos_soak [--seeds N] [--base-seed B] [--seed X]\n"
      << "                  [--out report.json] [--no-fencing] [--history]\n"
      << "                  [--elasticity] [--history-out file.json]\n"
      << "                  [--duration-s S]\n"
      << "  --seeds N       run seeds B..B+N-1 (default 50)\n"
      << "  --base-seed B   first seed of the sweep (default 1)\n"
      << "  --seed X        replay a single seed and print its fault\n"
      << "                  schedule and timeline\n"
      << "  --out FILE      JSON report path (default chaos_report.json)\n"
      << "  --no-fencing    disable catalog epoch fencing (bug demo)\n"
      << "  --history       record per-op histories and run the\n"
      << "                  linearizability checker (exit 3 on violation)\n"
      << "  --history-out F write the first history violation's minimal\n"
      << "                  failing sub-history here (default\n"
      << "                  history_violation.json)\n"
      << "  --elasticity    race seeded scale-out / drain / scale-in\n"
      << "                  decisions against the fault schedule\n"
      << "  --duration-s S  simulated workload seconds per seed (default "
         "20)\n"
      << "  --verbose       engine INFO logging (replay debugging)\n";
}

bool ParseArgs(int argc, char** argv, SoakArgs* args) {
  auto value_of = [&](int* i) -> const char* {
    const char* eq = std::strchr(argv[*i], '=');
    if (eq != nullptr) return eq + 1;
    if (*i + 1 >= argc) return nullptr;
    return argv[++*i];
  };
  auto is_flag = [&](int i, const char* name) {
    return std::strcmp(argv[i], name) == 0 ||
           (std::strncmp(argv[i], name, std::strlen(name)) == 0 &&
            argv[i][std::strlen(name)] == '=');
  };
  for (int i = 1; i < argc; ++i) {
    if (is_flag(i, "--seeds")) {
      const char* v = value_of(&i);
      if (v == nullptr) return false;
      args->seeds = std::atoi(v);
    } else if (is_flag(i, "--base-seed")) {
      const char* v = value_of(&i);
      if (v == nullptr) return false;
      args->base_seed = std::strtoull(v, nullptr, 10);
    } else if (is_flag(i, "--seed")) {
      const char* v = value_of(&i);
      if (v == nullptr) return false;
      args->replay_seed = std::atoll(v);
    } else if (is_flag(i, "--out")) {
      const char* v = value_of(&i);
      if (v == nullptr) return false;
      args->out = v;
    } else if (is_flag(i, "--history-out")) {
      const char* v = value_of(&i);
      if (v == nullptr) return false;
      args->history_out = v;
    } else if (std::strcmp(argv[i], "--no-fencing") == 0) {
      args->fencing = false;
    } else if (std::strcmp(argv[i], "--history") == 0) {
      args->history = true;
    } else if (std::strcmp(argv[i], "--elasticity") == 0) {
      args->elasticity = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      args->verbose = true;
    } else if (is_flag(i, "--duration-s")) {
      const char* v = value_of(&i);
      if (v == nullptr) return false;
      args->duration_s = std::atoi(v);
    } else {
      std::cerr << "unknown argument: " << argv[i] << "\n";
      return false;
    }
  }
  return args->seeds > 0 && args->duration_s > 0;
}

std::string ReplayCommand(const SoakArgs& args, uint64_t seed) {
  std::string cmd = "./chaos_soak --seed " + std::to_string(seed);
  if (!args.fencing) cmd += " --no-fencing";
  if (args.history) cmd += " --history";
  if (args.elasticity) cmd += " --elasticity";
  if (args.duration_s != 20) {
    cmd += " --duration-s " + std::to_string(args.duration_s);
  }
  return cmd;
}

}  // namespace

int main(int argc, char** argv) {
  SoakArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }

  if (args.verbose) wattdb::SetLogLevel(wattdb::LogLevel::kInfo);

  std::vector<uint64_t> seeds;
  if (args.replay_seed >= 0) {
    seeds.push_back(static_cast<uint64_t>(args.replay_seed));
  } else {
    for (int i = 0; i < args.seeds; ++i) seeds.push_back(args.base_seed + i);
  }

  std::vector<ScenarioResult> failures;
  std::vector<std::pair<uint64_t, int64_t>> wall_ms;
  bool history_violation_seen = false;
  bool history_dump_written = false;
  int run = 0;
  for (const uint64_t seed : seeds) {
    ChaosConfig config;
    config.seed = seed;
    config.epoch_fencing = args.fencing;
    config.record_history = args.history;
    config.elasticity = args.elasticity;
    config.workload_duration =
        static_cast<wattdb::SimTime>(args.duration_s) * wattdb::kUsPerSec;
    const auto t0 = std::chrono::steady_clock::now();
    const ScenarioResult result = wattdb::chaos::RunScenario(config);
    const int64_t ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    wall_ms.emplace_back(seed, ms);
    ++run;
    if (result.passed) {
      std::cout << "seed " << seed << ": PASS (nodes=" << result.nodes
                << " crashes=" << result.crashes_injected
                << " partitions=" << result.partitions_injected
                << " promoted=" << result.replicas_promoted
                << " committed=" << result.committed_txns
                << " fenced_refusals=" << result.stale_route_refusals;
      if (args.elasticity) {
        std::cout << " spares=" << result.spare_nodes
                  << " elastic=" << result.elastic_actions;
      }
      if (args.history) {
        std::cout << " history_ops=" << result.history_ops
                  << " keys_checked=" << result.history_keys_checked;
        if (result.history_keys_over_budget > 0) {
          std::cout << " keys_over_budget=" << result.history_keys_over_budget;
        }
      }
      std::cout << " wall=" << ms << "ms)\n";
    } else {
      std::cout << "seed " << seed << ": FAIL (wall=" << ms << "ms)\n";
      for (const std::string& v : result.violations) {
        std::cout << "  violation: " << v << "\n";
      }
      // A history violation names its offending seed and ships the minimal
      // failing sub-history; the first one also lands in --history-out for
      // the CI artifact.
      for (const auto& hv : result.history_violations) {
        history_violation_seen = true;
        std::cout << "  history violation (seed " << seed << "): " << hv.anomaly
                  << "; minimal failing sub-history has "
                  << hv.sub_history.size() << " op(s)\n";
        if (!history_dump_written) {
          std::ofstream hout(args.history_out);
          hout << "{\"seed\":" << seed << ",\"replay\":\""
               << wattdb::chaos::JsonEscape(ReplayCommand(args, seed))
               << "\",\"violation\":" << wattdb::chaos::ToJson(hv) << "}\n";
          hout.close();
          history_dump_written = true;
          std::cout << "  minimal sub-history written to " << args.history_out
                    << "\n";
        }
      }
      std::cout << "  replay: " << ReplayCommand(args, seed) << "\n";
      failures.push_back(result);
    }
    if (args.replay_seed >= 0) {
      // Replays print the *entire drawn schedule* up front — faults and
      // elasticity actions alike — then the merged event timeline.
      std::cout << "fault schedule of seed " << seed << ":\n";
      for (const std::string& line : result.fault_schedule) {
        std::cout << "  " << line << "\n";
      }
      std::cout << "timeline of seed " << seed << ":\n";
      for (const std::string& line : result.timeline) {
        std::cout << "  " << line << "\n";
      }
    }
  }

  // One JSON report: summary, per-seed wall-clock, plus the failing seeds'
  // full results (the CI workflow uploads this as an artifact and prints
  // the replay command).
  std::ofstream out(args.out);
  out << "{\"seeds_run\":" << run << ",\"seeds_failed\":" << failures.size()
      << ",\"epoch_fencing\":" << (args.fencing ? "true" : "false")
      << ",\"history\":" << (args.history ? "true" : "false")
      << ",\"elasticity\":" << (args.elasticity ? "true" : "false")
      << ",\"first_failing_replay\":\""
      << (failures.empty()
              ? ""
              : wattdb::chaos::JsonEscape(
                    ReplayCommand(args, failures.front().seed)))
      << "\",\"wall_ms\":[";
  for (size_t i = 0; i < wall_ms.size(); ++i) {
    if (i > 0) out << ",";
    out << "{\"seed\":" << wall_ms[i].first << ",\"ms\":" << wall_ms[i].second
        << "}";
  }
  out << "],\"failures\":[";
  for (size_t i = 0; i < failures.size(); ++i) {
    if (i > 0) out << ",";
    out << wattdb::chaos::ToJson(failures[i]);
  }
  out << "]}\n";
  out.close();

  std::cout << run << " seeds run, " << failures.size() << " failed; report "
            << "written to " << args.out << "\n";
  if (!failures.empty()) {
    std::cout << "first failing replay: "
              << ReplayCommand(args, failures.front().seed) << "\n";
    return history_violation_seen ? 3 : 1;
  }
  return 0;
}
