// Admission-control bench (no paper figure — the src/admission subsystem
// layered on the reproduction). Two open-loop KV workloads — a
// latency-sensitive point-op stream with an SLO and a batch-priority
// stream — offer a swept load to a fixed 4-node cluster, past saturation.
// Each offered point runs twice: with shedding disabled (queues grow
// without bound, so completion latency blows through the SLO and goodput
// collapses) and with the admission policy enabled (depth-capped queues,
// ResourceExhausted refusals retried with jittered backoff, batch class
// shed first). The headline curve is SLO-goodput vs offered load: with
// shedding it plateaus at capacity instead of collapsing, and the admitted
// latency-class p99 stays bounded by the queue cap.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "api/db.h"
#include "bench/bench_util.h"

namespace wattdb::bench {
namespace {

constexpr SimTime kSlo = 100 * kUsPerMs;
constexpr double kBatchQps = 200.0;

struct PointResult {
  double offered = 0;
  double committed_per_s = 0;
  double goodput_per_s = 0;   ///< Committed within the SLO, per second.
  double p99_ms = 0;          ///< Latency of *committed* (admitted) txns.
  int64_t shed_latency = 0;   ///< Refusals, latency-sensitive class.
  int64_t shed_batch = 0;     ///< Refusals, batch class.
  int64_t retried = 0;
  int64_t dropped = 0;
  int overload_events = 0;
};

cluster::MasterPolicy ControlPolicy() {
  cluster::MasterPolicy policy;
  policy.check_period = kUsPerSec / 2;
  policy.stats_window = kUsPerSec;
  // Fixed capacity: this bench shows shedding, not elasticity — the
  // overload signal is still detected and logged by the control loop.
  policy.enable_scale_out = false;
  policy.enable_scale_in = false;
  return policy;
}

admission::AdmissionPolicy ShedPolicy(bool enabled) {
  admission::AdmissionPolicy ap;
  ap.enabled = enabled;
  // 64 outstanding ops x ~330 us of inflated CPU per op across 2 cores is
  // ~10 ms of queueing per node — an admitted transaction stays an order
  // of magnitude inside the 100 ms SLO.
  ap.max_queue_ops = 64;
  ap.batch_share = 0.5;
  ap.overload_ratio = 0.75;
  ap.overload_trigger_after = 2;
  return ap;
}

PointResult RunPoint(double offered_qps, bool shedding, SimTime warmup,
                     SimTime window, JsonReporter* json,
                     const std::string& prefix) {
  DbOptions options = DbOptions()
                          .WithNodes(4)
                          .WithActiveNodes(4)
                          .WithBufferPages(8000)
                          .WithSeed(29)
                          .WithoutTpccLoad()
                          .WithMasterLoop(ControlPolicy())
                          .WithAdmissionPolicy(ShedPolicy(shedding));
  // Atom-class CPU costs scaled up so the 4-node cluster saturates inside
  // the sweep (same calibration trick as the heat-rebalance bench).
  options.cluster.costs.cpu_record_read_us = 300;
  options.cluster.costs.cpu_record_write_us = 600;
  auto opened = Db::Open(options);
  if (!opened.ok()) {
    std::fprintf(stderr, "Db::Open failed: %s\n",
                 opened.status().ToString().c_str());
    std::abort();
  }
  Db& db = **opened;

  // Latency-sensitive stream: single point ops with an SLO, shed work
  // retried twice with jittered backoff before dropping. One op = one
  // admission decision, so a refusal never wastes work already admitted
  // for the same transaction (the batch stream below is where partial
  // owner-group shedding shows up).
  workload::KvConfig lat;
  lat.arrival_qps = offered_qps;
  lat.count_at_completion = true;
  lat.read_ratio = 0.9;
  lat.batch_size = 1;
  lat.num_keys = 8192;
  lat.value_bytes = 100;
  lat.slo_us = kSlo;
  lat.shed_retries = 2;
  lat.retry_backoff = 10 * kUsPerMs;
  lat.seed = 29;
  auto lat_kv = db.AddKvWorkload(lat);
  if (!lat_kv.ok()) std::abort();
  workload::KvWorkload& lat_driver = **lat_kv;

  // Batch-priority stream at a fixed modest rate: the cheap class the
  // shedder sacrifices first (its cap is batch_share x max_queue_ops).
  workload::KvConfig batch;
  batch.arrival_qps = kBatchQps;
  batch.count_at_completion = true;
  batch.read_ratio = 0.5;
  batch.batch_size = 8;
  batch.num_keys = 8192;
  batch.value_bytes = 100;
  batch.batch_priority = true;
  batch.seed = 31;
  auto batch_kv = db.AddKvWorkload(batch);
  if (!batch_kv.ok()) std::abort();
  workload::KvWorkload& batch_driver = **batch_kv;

  // Settle the post-load state (the loaders run in zero sim time, so the
  // disks start with a deep flush backlog) before offering load: both arms
  // must start from the same steady state or the shed arm's cap clips the
  // startup wave and the curves diverge for reasons that have nothing to
  // do with overload.
  db.RunFor(5 * kUsPerSec);
  lat_driver.Start();
  batch_driver.Start();
  db.RunFor(warmup);
  lat_driver.ResetStats();

  const int64_t shed_lat_before =
      db.admission().shed(admission::OpClass::kLatencySensitive);
  const int64_t shed_batch_before =
      db.admission().shed(admission::OpClass::kBatch);
  db.RunFor(window);
  if (json != nullptr) ReportQueueDepths(json, &db, prefix);

  PointResult r;
  r.offered = offered_qps;
  const double secs = ToSeconds(window);
  r.committed_per_s = static_cast<double>(lat_driver.committed()) / secs;
  r.goodput_per_s = static_cast<double>(lat_driver.slo_met()) / secs;
  r.p99_ms = lat_driver.latencies().Percentile(99.0) / kUsPerMs;
  r.shed_latency =
      db.admission().shed(admission::OpClass::kLatencySensitive) -
      shed_lat_before;
  r.shed_batch =
      db.admission().shed(admission::OpClass::kBatch) - shed_batch_before;
  r.retried = lat_driver.retried();
  r.dropped = lat_driver.dropped();
  r.overload_events = db.master().overload_events();
  lat_driver.Stop();
  batch_driver.Stop();
  return r;
}

void Run() {
  PrintHeader("Admission control",
              "per-node queue caps: goodput vs offered load past saturation");
  JsonReporter json("admission_control");

  const bool smoke = SmokeMode();
  const SimTime warmup = smoke ? 3 * kUsPerSec / 2 : 2 * kUsPerSec;
  const SimTime window = smoke ? 3 * kUsPerSec : 8 * kUsPerSec;
  // The cluster serves a few thousand of these point txns per second at
  // the inflated CPU costs; the top points are well past saturation.
  const std::vector<double> sweep =
      smoke ? std::vector<double>{4000, 20000, 36000}
            : std::vector<double>{4000, 12000, 20000, 28000, 36000};

  json.Config("slo_ms", static_cast<double>(kSlo) / kUsPerMs);
  json.Config("batch_qps", kBatchQps);
  json.Config("max_queue_ops", 64.0);
  json.Config("batch_share", 0.5);
  json.Config("window_s", ToSeconds(window));

  std::printf(
      "4 nodes, 2 cores each, inflated CPU costs. Latency stream: open-loop\n"
      "single-key txns, 90%% reads, SLO %.0f ms, 2 shed-retries with\n"
      "jittered backoff. Batch stream: %.0f txn/s of batch-priority 8-key\n"
      "txns. Shed arm: 64-op queue cap per node, batch refused past 32.\n\n",
      static_cast<double>(kSlo) / kUsPerMs, kBatchQps);
  std::printf("%-9s | %21s | %21s | %15s\n", "", "no shedding", "shedding",
              "shed arm detail");
  std::printf("%-9s | %10s %10s | %10s %10s | %7s %7s\n", "offered",
              "goodput/s", "p99 ms", "goodput/s", "p99 ms", "shed", "retry");

  std::vector<PointResult> noshed, shed;
  for (size_t i = 0; i < sweep.size(); ++i) {
    const bool last = i + 1 == sweep.size();
    noshed.push_back(RunPoint(sweep[i], /*shedding=*/false, warmup, window,
                              last ? &json : nullptr, "noshed"));
    shed.push_back(RunPoint(sweep[i], /*shedding=*/true, warmup, window,
                            last ? &json : nullptr, "shed"));
    const PointResult& n = noshed.back();
    const PointResult& s = shed.back();
    std::printf("%-9.0f | %10.0f %10.1f | %10.0f %10.1f | %7lld %7lld\n",
                sweep[i], n.goodput_per_s, n.p99_ms, s.goodput_per_s,
                s.p99_ms, static_cast<long long>(s.shed_latency +
                                                 s.shed_batch),
                static_cast<long long>(s.retried));
    json.Metric("noshed_goodput_at_" + std::to_string((int)sweep[i]),
                n.goodput_per_s, "txn/s", JsonReporter::kInfo);
    json.Metric("shed_goodput_at_" + std::to_string((int)sweep[i]),
                s.goodput_per_s, "txn/s", JsonReporter::kInfo);
  }

  // Headline gated metrics. All from the shed arm except the ratio, which
  // captures the whole point: past saturation shedding preserves goodput
  // that unbounded queueing destroys.
  double shed_peak = 0, peak_at = sweep.front();
  for (const PointResult& p : shed) {
    if (p.goodput_per_s > shed_peak) {
      shed_peak = p.goodput_per_s;
      peak_at = p.offered;
    }
  }
  const PointResult& s_top = shed.back();
  const PointResult& n_top = noshed.back();
  const double ratio_at_top =
      s_top.goodput_per_s / std::max(1.0, n_top.goodput_per_s);
  const double plateau_ratio = s_top.goodput_per_s / std::max(1.0, shed_peak);

  json.Metric("shed_goodput_peak", shed_peak, "txn/s",
              JsonReporter::kHigherIsBetter);
  json.Metric("shed_goodput_at_top_load", s_top.goodput_per_s, "txn/s",
              JsonReporter::kHigherIsBetter);
  json.Metric("shed_plateau_ratio", plateau_ratio, "ratio",
              JsonReporter::kHigherIsBetter);
  // Info only: the denominator is the collapsed no-shed goodput, which sits
  // near zero — a gated ratio against it would swing wildly on tiny shifts.
  json.Metric("goodput_ratio_shed_vs_noshed_at_top", ratio_at_top, "ratio",
              JsonReporter::kInfo);
  json.Metric("shed_admitted_p99_ms", s_top.p99_ms, "ms",
              JsonReporter::kLowerIsBetter);
  json.Metric("noshed_p99_ms_at_top", n_top.p99_ms, "ms", JsonReporter::kInfo);
  json.Metric("shed_latency_class", static_cast<double>(s_top.shed_latency),
              "txns", JsonReporter::kInfo);
  json.Metric("shed_batch_class", static_cast<double>(s_top.shed_batch),
              "txns", JsonReporter::kInfo);
  json.Metric("shed_retried", static_cast<double>(s_top.retried), "txns",
              JsonReporter::kInfo);
  json.Metric("shed_dropped", static_cast<double>(s_top.dropped), "txns",
              JsonReporter::kInfo);
  json.Metric("overload_events_at_top",
              static_cast<double>(s_top.overload_events), "events",
              JsonReporter::kInfo);

  std::printf(
      "\nGoodput peaked at %.0f txn/s (offered %.0f). Past saturation the\n"
      "no-shedding arm queues without bound — completion latency blows\n"
      "through the SLO and goodput collapses — while the shedding arm\n"
      "plateaus (ratio %.2f of its peak at top load) with admitted p99\n"
      "%.1f ms. Batch class shed %lld vs %lld latency-class refusals at\n"
      "top load; the master logged %d overload event(s).\n",
      shed_peak, peak_at, plateau_ratio, s_top.p99_ms,
      static_cast<long long>(s_top.shed_batch),
      static_cast<long long>(s_top.shed_latency), s_top.overload_events);
}

}  // namespace
}  // namespace wattdb::bench

int main() {
  wattdb::bench::Run();
  return 0;
}
