// Reproduces Fig. 7 of the paper (§5.2): per-query time spent in DBMS
// components (logging, latching, locking, network I/O, disk I/O, other)
// in three situations on a physiologically partitioned cluster:
//   1. normal operation,
//   2. while rebalancing,
//   3. while rebalancing with helper nodes (log shipping + rDMA buffer).
//
// Expected shape: rebalancing inflates disk I/O, locking, and logging (the
// storage subsystem is the bottleneck); the helper configuration pulls
// logging and disk time back down.

#include <cstdio>

#include "bench/bench_util.h"
#include "metrics/breakdown.h"

namespace wattdb::bench {
namespace {

metrics::TimeBreakdown Measure(bool rebalancing, bool helpers) {
  RebalanceSetup setup;
  if (SmokeMode()) {
    setup.clients = 20;
    setup.warehouses = 4;
    setup.fill = 0.3;
  }
  RebalanceRig rig = MakeRig(setup);
  Db& db = *rig.db;

  metrics::TimeBreakdown bd;
  rig.pool->Start();
  db.RunUntil((SmokeMode() ? 10 : 30) * kUsPerSec);  // Warm up.

  if (rebalancing) {
    if (helpers) {
      // Fig. 8 improvement: two helper nodes assist the four data nodes.
      if (!db.AttachHelpers({NodeId(4), NodeId(5)},
                            {NodeId(0), NodeId(1), NodeId(2), NodeId(3)},
                            /*remote_buffer_pages=*/1500)
               .ok()) {
        std::abort();
      }
    }
    if (!db.TriggerRebalance({NodeId(2), NodeId(3)}, 0.5, nullptr).ok()) {
      std::abort();
    }
    // Boot + first copy streams under way.
    db.RunUntil((SmokeMode() ? 18 : 40) * kUsPerSec);
  }

  rig.pool->set_breakdown(&bd);
  db.RunFor((SmokeMode() ? 20 : 60) * kUsPerSec);
  rig.pool->Stop();
  return bd;
}

}  // namespace
}  // namespace wattdb::bench

int main() {
  using namespace wattdb;
  using namespace wattdb::bench;
  PrintHeader("Figure 7", "impact factors on query runtime when rebalancing");
  JsonReporter json("fig7_breakdown");

  const metrics::TimeBreakdown normal = Measure(false, false);
  const metrics::TimeBreakdown rebal = Measure(true, false);
  const metrics::TimeBreakdown improved = Measure(true, true);

  json.Metric("normal_total_ms", normal.TotalMs(), "ms",
              JsonReporter::kLowerIsBetter);
  json.Metric("rebalancing_total_ms", rebal.TotalMs(), "ms",
              JsonReporter::kLowerIsBetter);
  json.Metric("improved_total_ms", improved.TotalMs(), "ms",
              JsonReporter::kLowerIsBetter);
  json.Metric("rebalancing_disk_ms", rebal.DiskMs(), "ms",
              JsonReporter::kInfo);
  json.Metric("improved_logging_ms", improved.LoggingMs(), "ms",
              JsonReporter::kInfo);

  std::printf("%s\n", metrics::TimeBreakdown::Header().c_str());
  std::printf("%s\n", normal.ToRow("normal operation").c_str());
  std::printf("%s\n", rebal.ToRow("while rebalancing").c_str());
  std::printf("%s\n", improved.ToRow("rebalancing improved").c_str());
  std::printf(
      "\nPaper (Fig. 7): rebalancing raises disk I/O, locking, and logging;\n"
      "helper nodes (log shipping + remote buffer) pull logging/disk back "
      "down.\n");
  return 0;
}
