// Reproduces Fig. 1 of the paper (§3.3): record throughput of a table scan
// under five operator placements:
//   1. TBSCAN, local                       (~40k records/s in the paper)
//   2. TBSCAN + local PROJECT              (~34k)
//   3. TBSCAN + remote PROJECT, 1 rec/call (<1k — every next() is an RTT)
//   4. TBSCAN (vectorized) + remote PROJECT (~24k)
//   5. ... + BUFFER prefetch operator       (~30k)
//
// The absolute numbers depend on the Atom-class CPU calibration
// (OperatorCosts); the ordering and the collapse of configuration 3 are the
// paper's point.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "exec/operators.h"

namespace wattdb::bench {
namespace {

constexpr size_t kVector = 64;

struct RunResult {
  double records_per_sec;
  size_t records;
};

RunResult RunPlan(Db* db, std::unique_ptr<exec::Operator> root) {
  const PlanRunResult r = DrainPlanInTxn(db, root.get());
  // Advance the cluster clock past this run so successive configurations
  // do not share the same stretch of simulated hardware time.
  db->RunUntil(r.done_at + kUsPerSec);
  return {r.elapsed_us > 0 ? r.records / ToSeconds(r.elapsed_us) : 0.0,
          r.records};
}

}  // namespace
}  // namespace wattdb::bench

int main() {
  using namespace wattdb;
  using namespace wattdb::bench;
  PrintHeader("Figure 1", "micro-benchmark testing record throughput");
  JsonReporter json("fig1_operator_throughput");

  RebalanceSetup setup;
  setup.warehouses = 2;
  setup.fill = 0.5;
  setup.clients = 0;  // No background workload.
  setup.buffer_pages = 8000;  // Operator figure: isolate CPU/network costs.
  RebalanceRig rig = MakeRig(setup);
  Db& db = *rig.db;
  cluster::Cluster& c = db.cluster();

  // Scan warehouse 1's CUSTOMER partition on its owner (node 0); the
  // "remote" consumer is node 1.
  const TableId customer = db.table(workload::TpccTable::kCustomer);
  const Key lo = workload::TpccKeys::Customer(1, 0, 0);
  const Key hi = workload::TpccKeys::Customer(2, 0, 0);
  catalog::Partition* part = c.catalog().GetPartition(
      c.catalog().Route(customer, lo + 1)->primary);
  const NodeId local = part->owner();
  const NodeId remote(1);
  const KeyRange range{lo, hi};

  auto scan = [&](size_t vec) {
    return std::make_unique<exec::TableScanOp>(part, range, vec);
  };

  // Warm the buffer so the figure isolates operator/network costs, as the
  // paper's repeated micro-benchmark runs do.
  RunPlan(&db, scan(kVector));

  struct Config {
    const char* label;
    std::unique_ptr<exec::Operator> plan;
  };
  std::vector<Config> configs;
  configs.push_back({"TBSCAN local (single record)", scan(1)});
  configs.push_back(
      {"TBSCAN + L PROJECT (single record)",
       std::make_unique<exec::ProjectOp>(scan(1), local)});
  configs.push_back(
      {"TBSCAN + R PROJECT (single record)",
       std::make_unique<exec::ProjectOp>(
           std::make_unique<exec::ExchangeOp>(scan(1), remote), remote)});
  configs.push_back(
      {"TBSCAN vectorized + R PROJECT",
       std::make_unique<exec::ProjectOp>(
           std::make_unique<exec::ExchangeOp>(scan(kVector), remote), remote)});
  configs.push_back(
      {"TBSCAN vectorized + R BUFFER + R PROJECT",
       std::make_unique<exec::ProjectOp>(
           std::make_unique<exec::BufferOp>(scan(kVector), remote,
                                            /*prefetch_depth=*/3),
           remote)});

  const char* metric_names[] = {"local_scan_rps", "local_project_rps",
                                "remote_project_single_rps",
                                "vectorized_remote_rps",
                                "buffered_remote_rps"};
  std::printf("%-40s %14s %10s\n", "configuration", "records/sec", "records");
  for (size_t i = 0; i < configs.size(); ++i) {
    const RunResult r = RunPlan(&db, std::move(configs[i].plan));
    std::printf("%-40s %14.0f %10zu\n", configs[i].label, r.records_per_sec,
                r.records);
    json.Metric(metric_names[i], r.records_per_sec, "records/s",
                JsonReporter::kHigherIsBetter);
  }
  std::printf(
      "\nPaper (Fig. 1): ~40k / ~34k / <1k / ~24k / ~30k records per sec.\n");
  return 0;
}
