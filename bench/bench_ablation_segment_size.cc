// Ablation (DESIGN.md E8): how the segment size — the paper fixes it at
// 32 MB (§4) — trades off migration granularity against per-segment
// overhead. Smaller segments mean shorter per-segment partition locks
// (writers drain faster) but more tasks, catalog churn, and per-move
// latency overhead; larger segments ship fewer, longer bursts.
//
// Since kSegmentSize is a compile-time geometry constant, the ablation
// varies the *effective* moved-bytes-per-lock window via the migration
// config and reports lock-window and total-migration times per setting.

#include <cstdio>

#include "bench/bench_util.h"

namespace wattdb::bench {
namespace {

struct AblationResult {
  double migration_secs = 0;
  double avg_qps_during = 0;
  double avg_ms_during = 0;
};

AblationResult RunWithChunk(size_t chunk_bytes, double cost_scale) {
  RebalanceSetup setup;
  setup.cost_scale = cost_scale;
  setup.clients = SmokeMode() ? 20 : 40;
  if (SmokeMode()) {
    setup.warehouses = 4;
    setup.fill = 0.3;
  }
  RebalanceRig rig =
      MakeRig(setup, RigOptions(setup).WithCopyChunkBytes(chunk_bytes));
  Db& db = *rig.db;
  workload::ClientPool& pool = *rig.pool;

  pool.Start();
  db.RunUntil(20 * kUsPerSec);
  pool.ResetStats();

  const StatusOr<SimTime> window =
      db.RebalanceAndWait({NodeId(2), NodeId(3)}, 0.5, 900 * kUsPerSec);
  pool.Stop();
  if (!window.ok()) {
    std::fprintf(stderr, "rebalance: %s\n", window.status().ToString().c_str());
    return {};
  }

  AblationResult out;
  out.migration_secs = ToSeconds(*window);
  out.avg_qps_during = pool.completed() / ToSeconds(*window);
  out.avg_ms_during = pool.latencies().mean() / kUsPerMs;
  return out;
}

}  // namespace
}  // namespace wattdb::bench

int main() {
  using namespace wattdb;
  using namespace wattdb::bench;
  PrintHeader("Ablation E8", "copy granularity vs migration/latency trade-off");
  JsonReporter json("ablation_segment_size");

  const double cost_scale = SmokeMode() ? 2.0 : 12.0;
  json.Config("cost_scale", cost_scale);
  std::printf("%16s %16s %16s %16s\n", "chunk_bytes", "migration_s",
              "qps_during", "avg_ms_during");
  const std::vector<size_t> chunks =
      SmokeMode() ? std::vector<size_t>{512 * 1024, 32 * 1024 * 1024}
                  : std::vector<size_t>{512 * 1024, 4 * 1024 * 1024,
                                        32 * 1024 * 1024};
  for (size_t chunk : chunks) {
    const AblationResult r = RunWithChunk(chunk, cost_scale);
    std::printf("%16zu %16.1f %16.1f %16.2f\n", chunk, r.migration_secs,
                r.avg_qps_during, r.avg_ms_during);
    if (chunk == chunks.front()) {
      json.Metric("small_chunk_qps_during", r.avg_qps_during, "qps",
                  JsonReporter::kHigherIsBetter);
      json.Metric("small_chunk_latency_ms", r.avg_ms_during, "ms",
                  JsonReporter::kLowerIsBetter);
      json.Metric("small_chunk_migration_s", r.migration_secs, "s",
                  JsonReporter::kLowerIsBetter);
    }
  }
  std::printf(
      "\nSmaller chunks interleave queries better (lower ms) at slightly\n"
      "longer total migration; huge chunks stall queries behind bursts.\n");
  return 0;
}
