// Ablation (DESIGN.md E9): remote-operator record throughput as a function
// of the vector (batch) size of the volcano operators — the knob behind the
// paper's Fig. 1 jump from <1k records/s (single-record next() calls) to
// ~24k (vectorized) and ~30k (buffered prefetch).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "exec/operators.h"

namespace wattdb::bench {
namespace {

double Run(Db* db, catalog::Partition* part, const KeyRange& range,
           size_t vector_size, bool buffered) {
  const NodeId remote(1);
  auto scan = std::make_unique<exec::TableScanOp>(part, range, vector_size);
  std::unique_ptr<exec::Operator> shipped;
  if (buffered) {
    shipped = std::make_unique<exec::BufferOp>(std::move(scan), remote, 3);
  } else {
    shipped = std::make_unique<exec::ExchangeOp>(std::move(scan), remote);
  }
  exec::ProjectOp root(std::move(shipped), remote);
  const PlanRunResult r = DrainPlanInTxn(db, &root);
  db->RunUntil(r.done_at + kUsPerSec);
  return r.elapsed_us > 0 ? r.records / ToSeconds(r.elapsed_us) : 0;
}

}  // namespace
}  // namespace wattdb::bench

int main() {
  using namespace wattdb;
  using namespace wattdb::bench;
  PrintHeader("Ablation E9", "vector size sweep for remote operators");
  JsonReporter json("ablation_vector_size");

  RebalanceSetup setup;
  setup.warehouses = 2;
  setup.fill = 0.3;
  setup.clients = 0;
  setup.buffer_pages = 8000;  // Operator figure: isolate CPU/network costs.
  RebalanceRig rig = MakeRig(setup);
  Db& db = *rig.db;
  cluster::Cluster& c = db.cluster();

  const TableId customer = db.table(workload::TpccTable::kCustomer);
  const Key lo = workload::TpccKeys::Customer(1, 0, 0);
  const Key hi = workload::TpccKeys::Customer(2, 0, 0);
  catalog::Partition* part =
      c.catalog().GetPartition(c.catalog().Route(customer, lo + 1)->primary);
  const KeyRange range{lo, hi};
  Run(&db, part, range, 64, false);  // Warm the buffer pool.

  std::printf("%12s %22s %22s\n", "vector_size", "exchange [rec/s]",
              "buffered [rec/s]");
  const std::vector<size_t> vectors =
      SmokeMode() ? std::vector<size_t>{1, 64, 1024}
                  : std::vector<size_t>{1, 4, 16, 64, 256, 1024};
  for (size_t vec : vectors) {
    const double ex = Run(&db, part, range, vec, false);
    const double buf = Run(&db, part, range, vec, true);
    std::printf("%12zu %22.0f %22.0f\n", vec, ex, buf);
    if (vec == 64) {
      json.Metric("exchange_rps_vec64", ex, "records/s",
                  JsonReporter::kHigherIsBetter);
      json.Metric("buffered_rps_vec64", buf, "records/s",
                  JsonReporter::kHigherIsBetter);
    }
  }
  std::printf(
      "\nVectorization amortizes the per-next() round trip; prefetch hides\n"
      "the producer latency behind consumer processing (paper §3.3).\n");
  return 0;
}
