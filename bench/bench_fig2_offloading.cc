// Reproduces Fig. 2 of the paper (§3.3): query throughput for scan+sort
// queries at increasing concurrency, with the blocking SORT either local
// (same node as the scan) or offloaded to a second node.
//
// Expected shape: at low concurrency the all-local plan wins (no network),
// but as concurrent queries pile onto the scan node's CPU and buffer, the
// offloaded plan overtakes it — the additional CPU and buffer space of the
// remote node pay off ("with more concurrent queries ... query throughput
// becomes substantially higher", §3.3).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "exec/operators.h"

namespace wattdb::bench {
namespace {

struct QueryStats {
  int64_t completed = 0;
};

/// Closed-loop query clients issuing scan+sort over random districts.
void RunConcurrent(Db* db, int concurrency, bool offload, SimTime duration,
                   QueryStats* stats) {
  cluster::Cluster* c = &db->cluster();
  workload::TpccDatabase* tpcc = db->tpcc();
  const TableId orders = db->table(workload::TpccTable::kOrders);
  // Offload target: an idle processing node holding no data, as in §3.3
  // (pure processing nodes attach cheaply). Queries scan node 0's
  // warehouses only, so the all-local plan runs on exactly one node.
  const NodeId remote(2);
  // Sort-dominated cost profile: the blocking operator is what offloading
  // relieves (§3.3 — "blocking operators generally consume more resources
  // ... and are therefore good candidates for offloading").
  exec::OperatorCosts costs;
  costs.sort_us_per_compare = 4;
  auto rng = std::make_shared<Rng>(1234 + concurrency + (offload ? 1 : 0));
  auto issue = std::make_shared<std::function<void()>>();
  const SimTime deadline = c->Now() + duration;
  *issue = [=]() {
    if (c->Now() >= deadline) return;
    const int64_t w = rng->UniformInt(1, tpcc->warehouses() / 2);  // Node 0.
    const int64_t d = rng->UniformInt(1, workload::kDistrictsPerWarehouse);
    const KeyRange range{workload::TpccKeys::Order(w, d, 0),
                         workload::TpccKeys::Order(w, d + 1, 0)};
    auto route = c->catalog().Route(orders, range.lo + 1);
    if (!route.has_value()) return;
    catalog::Partition* part = c->catalog().GetPartition(route->primary);
    auto scan = std::make_unique<exec::TableScanOp>(part, range, 64, costs);
    std::unique_ptr<exec::Operator> root;
    if (offload && part->owner() != remote) {
      root = std::make_unique<exec::SortOp>(
          std::make_unique<exec::BufferOp>(std::move(scan), remote, 2, costs),
          remote, 64, costs);
    } else {
      root = std::make_unique<exec::SortOp>(std::move(scan), part->owner(), 64,
                                            costs);
    }
    const PlanRunResult r = DrainPlanInTxn(db, root.get());
    if (r.done_at < deadline) {
      ++stats->completed;
      c->events().ScheduleAt(r.done_at, [=]() { (*issue)(); });
    }
  };
  for (int i = 0; i < concurrency; ++i) {
    c->events().ScheduleAfter(i * 211, [=]() { (*issue)(); });
  }
  c->RunUntil(deadline);
}

double Throughput(int concurrency, bool offload) {
  RebalanceSetup setup;
  setup.warehouses = 4;
  setup.fill = 0.5;
  setup.clients = 0;
  setup.buffer_pages = 600;
  RebalanceRig rig = MakeRig(setup);
  const SimTime kDuration = (SmokeMode() ? 20 : 60) * kUsPerSec;
  QueryStats stats;
  RunConcurrent(rig.db.get(), concurrency, offload, kDuration, &stats);
  return stats.completed / ToSeconds(kDuration);
}

}  // namespace
}  // namespace wattdb::bench

int main() {
  using namespace wattdb;
  using namespace wattdb::bench;
  PrintHeader("Figure 2", "offloading blocking operators, throughput vs concurrency");
  JsonReporter json("fig2_offloading");

  std::printf("%12s %22s %22s\n", "concurrent", "L SORT/GROUP [qps]",
              "R SORT/GROUP [qps]");
  const std::vector<int> concurrencies =
      SmokeMode() ? std::vector<int>{1, 100} : std::vector<int>{1, 10, 100, 1000};
  for (int conc : concurrencies) {
    const double local = Throughput(conc, false);
    const double remote = Throughput(conc, true);
    std::printf("%12d %22.1f %22.1f\n", conc, local, remote);
    if (conc == concurrencies.front()) {
      json.Metric("local_qps_low_concurrency", local, "qps",
                  JsonReporter::kHigherIsBetter);
    }
    if (conc == concurrencies.back()) {
      json.Metric("local_qps_high_concurrency", local, "qps",
                  JsonReporter::kInfo);
      json.Metric("offloaded_qps_high_concurrency", remote, "qps",
                  JsonReporter::kHigherIsBetter);
    }
  }
  std::printf(
      "\nPaper (Fig. 2): local starts higher but degrades under load;\n"
      "offloaded SORT starts lower (network) and wins at high concurrency.\n");
  return 0;
}
