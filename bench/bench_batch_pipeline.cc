// Batched vs per-op data plane (no paper figure — the async/batch pipeline
// added on top of the reproduction). The same closed-loop YCSB-style KV
// clients submit `batch_size` keys per transaction, once as per-key
// Get/Put round trips (the pre-batching data plane) and once as
// owner-grouped MultiGet/MultiPut batches charging one master<->owner
// round trip per owner node per batch. Reports committed key-ops/s, txn
// latency, and the network messages behind each run.

#include <cstdio>

#include "api/db.h"
#include "bench/bench_util.h"

namespace wattdb::bench {
namespace {

struct ModeResult {
  double key_ops_per_sec = 0;
  double txn_per_sec = 0;
  double mean_latency_ms = 0;
  int64_t messages = 0;
  int64_t round_trips = 0;
};

constexpr SimTime kWarmup = 5 * kUsPerSec;
inline SimTime Measure() { return (SmokeMode() ? 10 : 30) * kUsPerSec; }

ModeResult RunMode(bool batched) {
  // 4 nodes, master + one data-owning peer active: half of the key space is
  // owner-local to the master, the other half pays the interconnect.
  auto opened = Db::Open(DbOptions()
                             .WithNodes(4)
                             .WithActiveNodes(2)
                             .WithBufferPages(4000)
                             .WithSeed(7)
                             .WithoutTpccLoad());
  if (!opened.ok()) {
    std::fprintf(stderr, "Db::Open failed: %s\n",
                 opened.status().ToString().c_str());
    std::abort();
  }
  Db& db = **opened;

  workload::KvConfig cfg;
  cfg.num_clients = 32;
  cfg.think_time = 5 * kUsPerMs;
  cfg.read_ratio = 0.95;
  cfg.batch_size = 8;
  cfg.batched = batched;
  cfg.num_keys = 8192;
  cfg.value_bytes = 100;
  cfg.seed = 7;

  auto kv = db.AddKvWorkload(cfg);
  if (!kv.ok()) {
    std::fprintf(stderr, "AddKvWorkload failed: %s\n",
                 kv.status().ToString().c_str());
    std::abort();
  }
  workload::KvWorkload& driver = **kv;

  driver.Start();
  db.RunFor(kWarmup);
  driver.ResetStats();
  const int64_t msgs0 = db.cluster().network().messages_sent();
  db.RunFor(Measure());
  driver.Stop();

  ModeResult r;
  const double secs = ToSeconds(Measure());
  r.key_ops_per_sec = static_cast<double>(driver.key_ops()) / secs;
  r.txn_per_sec = static_cast<double>(driver.committed()) / secs;
  r.mean_latency_ms = driver.latencies().mean() / kUsPerMs;
  r.messages = db.cluster().network().messages_sent() - msgs0;
  r.round_trips = driver.owner_round_trips();
  return r;
}

void Run() {
  PrintHeader("Batch pipeline",
              "owner-grouped MultiGet/MultiPut vs per-op Get/Put");
  JsonReporter json("batch_pipeline");
  json.Config("clients", 32);
  json.Config("batch_size", 8);
  json.Config("measure_s", ToSeconds(Measure()));
  std::printf(
      "32 closed-loop KV clients, 8 keys/txn, 95%% reads, 5 ms think time,\n"
      "8192 keys on 2 active nodes of 4. %.0f s measured after 5 s warmup.\n\n",
      ToSeconds(Measure()));
  std::printf("%-10s %14s %10s %14s %12s\n", "mode", "key-ops/s", "txn/s",
              "mean lat ms", "net msgs");

  const ModeResult per_op = RunMode(/*batched=*/false);
  std::printf("%-10s %14.0f %10.0f %14.3f %12lld\n", "per-op",
              per_op.key_ops_per_sec, per_op.txn_per_sec,
              per_op.mean_latency_ms, static_cast<long long>(per_op.messages));

  const ModeResult batch = RunMode(/*batched=*/true);
  std::printf("%-10s %14.0f %10.0f %14.3f %12lld\n", "batched",
              batch.key_ops_per_sec, batch.txn_per_sec, batch.mean_latency_ms,
              static_cast<long long>(batch.messages));

  const double speedup =
      per_op.key_ops_per_sec > 0 ? batch.key_ops_per_sec / per_op.key_ops_per_sec
                                 : 0;
  std::printf(
      "\nbatched/per-op committed throughput: %.2fx (%lld owner round trips "
      "for the batched run)\n",
      speedup, static_cast<long long>(batch.round_trips));
  if (batch.key_ops_per_sec <= per_op.key_ops_per_sec) {
    std::printf("REGRESSION: batching did not beat the per-op loop\n");
  }

  json.Metric("perop_keyops_per_s", per_op.key_ops_per_sec, "keyops/s",
              JsonReporter::kHigherIsBetter);
  json.Metric("batched_keyops_per_s", batch.key_ops_per_sec, "keyops/s",
              JsonReporter::kHigherIsBetter);
  json.Metric("batch_speedup", speedup, "x", JsonReporter::kHigherIsBetter);
  json.Metric("batched_mean_latency_ms", batch.mean_latency_ms, "ms",
              JsonReporter::kLowerIsBetter);
  json.Metric("batched_net_msgs", static_cast<double>(batch.messages), "msgs",
              JsonReporter::kLowerIsBetter);
}

}  // namespace
}  // namespace wattdb::bench

int main() {
  wattdb::bench::Run();
  return 0;
}
