// Reproduces Fig. 8 (a-d) of the paper (§5.2): physiological rebalancing
// with and without two helper nodes that take over log shipping and provide
// remote (rDMA) buffer space while the move is running. Helpers power up at
// t=0 and power down when rebalancing completes (paper: around t+370).
//
// Expected shape: with helpers, response times during the move improve and
// throughput holds up better, at the price of higher power draw — energy
// per query gets worse while they run ("trading energy efficiency for
// query performance").

#include <cstdio>

#include "bench/bench_util.h"

namespace wattdb::bench {
namespace {

inline SimTime Warmup() { return (SmokeMode() ? 30 : 180) * kUsPerSec; }
inline SimTime RunAfter() { return (SmokeMode() ? 130 : 570) * kUsPerSec; }
constexpr SimTime kBucket = 10 * kUsPerSec;

struct HelperOutcome {
  metrics::TimeSeries series{kBucket};
  int64_t completed = 0;
  double migration_secs = 0;
};

HelperOutcome RunOne(bool helpers) {
  RebalanceSetup setup;
  if (SmokeMode()) {
    setup.cost_scale = 4.0;
    setup.clients = 20;
    setup.warehouses = 4;
    setup.fill = 0.3;
  }
  RebalanceRig rig = MakeRig(setup);
  Db& db = *rig.db;

  HelperOutcome out;
  metrics::TimeSeries& series = out.series;
  series.SetOrigin(Warmup());
  db.cluster().StartSampling(&series);
  rig.pool->set_series(&series);
  rig.pool->Start();

  db.events().ScheduleAt(Warmup(), [&]() {
    if (helpers) {
      (void)db.AttachHelpers({NodeId(4), NodeId(5)},
                             {NodeId(0), NodeId(1), NodeId(2), NodeId(3)},
                             /*remote_buffer_pages=*/1500);
    }
    (void)db.TriggerRebalance({NodeId(2), NodeId(3)}, 0.5, [&]() {
      // Helpers are brought down again once rebalancing finished.
      if (helpers) (void)db.DetachHelpers();
    });
  });
  db.RunUntil(Warmup() + RunAfter());
  rig.pool->Stop();
  out.completed = rig.pool->completed();
  out.migration_secs =
      db.scheme().stats().finished_at > db.scheme().stats().started_at
          ? ToSeconds(db.scheme().stats().finished_at -
                      db.scheme().stats().started_at)
          : -1.0;
  std::fprintf(stderr, "[%s] completed=%lld migration end t=%+.0fs\n",
               helpers ? "physio+helper" : "physiological",
               static_cast<long long>(out.completed),
               db.scheme().stats().finished_at == 0
                   ? -1.0
                   : ToSeconds(db.scheme().stats().finished_at - Warmup()));
  return out;
}

}  // namespace
}  // namespace wattdb::bench

int main() {
  using namespace wattdb;
  using namespace wattdb::bench;
  PrintHeader("Figure 8", "physiological rebalancing with helper nodes");
  JsonReporter json("fig8_helper_nodes");

  const HelperOutcome plain = RunOne(false);
  const HelperOutcome helped = RunOne(true);

  json.Metric("plain_completed", static_cast<double>(plain.completed), "txn",
              JsonReporter::kHigherIsBetter);
  json.Metric("helped_completed", static_cast<double>(helped.completed), "txn",
              JsonReporter::kHigherIsBetter);
  if (plain.migration_secs >= 0) {
    json.Metric("plain_migration_s", plain.migration_secs, "s",
                JsonReporter::kLowerIsBetter);
  }
  if (helped.migration_secs >= 0) {
    json.Metric("helped_migration_s", helped.migration_secs, "s",
                JsonReporter::kLowerIsBetter);
  }

  const std::vector<std::string> labels = {"physiological", "physio+helper"};
  const std::vector<const metrics::TimeSeries*> series = {&plain.series,
                                                          &helped.series};
  const double bs = ToSeconds(kBucket);
  std::printf("\n(a) Throughput of the cluster [qps]\n%s\n",
              metrics::SideBySide(labels, series, "qps", bs).c_str());
  std::printf("\n(b) Avg. response time per query [ms]\n%s\n",
              metrics::SideBySide(labels, series, "ms", bs).c_str());
  std::printf("\n(c) Power consumption of the cluster [Watt]\n%s\n",
              metrics::SideBySide(labels, series, "watt", bs).c_str());
  std::printf("\n(d) Energy consumption per query [Joule/query]\n%s\n",
              metrics::SideBySide(labels, series, "jpq", bs).c_str());
  return 0;
}
