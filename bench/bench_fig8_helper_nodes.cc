// Reproduces Fig. 8 (a-d) of the paper (§5.2): physiological rebalancing
// with and without two helper nodes that take over log shipping and provide
// remote (rDMA) buffer space while the move is running. Helpers power up at
// t=0 and power down when rebalancing completes (paper: around t+370).
//
// Expected shape: with helpers, response times during the move improve and
// throughput holds up better, at the price of higher power draw — energy
// per query gets worse while they run ("trading energy efficiency for
// query performance").

#include <cstdio>

#include "bench/bench_util.h"

namespace wattdb::bench {
namespace {

constexpr SimTime kWarmup = 180 * kUsPerSec;
constexpr SimTime kRunAfter = 570 * kUsPerSec;
constexpr SimTime kBucket = 10 * kUsPerSec;

metrics::TimeSeries RunOne(bool helpers) {
  RebalanceSetup setup;
  RebalanceRig rig = MakeRig(setup);
  Db& db = *rig.db;

  metrics::TimeSeries series(kBucket);
  series.SetOrigin(kWarmup);
  db.cluster().StartSampling(&series);
  rig.pool->set_series(&series);
  rig.pool->Start();

  db.events().ScheduleAt(kWarmup, [&]() {
    if (helpers) {
      (void)db.AttachHelpers({NodeId(4), NodeId(5)},
                             {NodeId(0), NodeId(1), NodeId(2), NodeId(3)},
                             /*remote_buffer_pages=*/1500);
    }
    (void)db.TriggerRebalance({NodeId(2), NodeId(3)}, 0.5, [&]() {
      // Helpers are brought down again once rebalancing finished.
      if (helpers) (void)db.DetachHelpers();
    });
  });
  db.RunUntil(kWarmup + kRunAfter);
  rig.pool->Stop();
  std::fprintf(stderr, "[%s] completed=%lld migration end t=%+.0fs\n",
               helpers ? "physio+helper" : "physiological",
               static_cast<long long>(rig.pool->completed()),
               db.scheme().stats().finished_at == 0
                   ? -1.0
                   : ToSeconds(db.scheme().stats().finished_at - kWarmup));
  return series;
}

}  // namespace
}  // namespace wattdb::bench

int main() {
  using namespace wattdb;
  using namespace wattdb::bench;
  PrintHeader("Figure 8", "physiological rebalancing with helper nodes");

  const metrics::TimeSeries plain = RunOne(false);
  const metrics::TimeSeries helped = RunOne(true);

  const std::vector<std::string> labels = {"physiological", "physio+helper"};
  const std::vector<const metrics::TimeSeries*> series = {&plain, &helped};
  const double bs = ToSeconds(kBucket);
  std::printf("\n(a) Throughput of the cluster [qps]\n%s\n",
              metrics::SideBySide(labels, series, "qps", bs).c_str());
  std::printf("\n(b) Avg. response time per query [ms]\n%s\n",
              metrics::SideBySide(labels, series, "ms", bs).c_str());
  std::printf("\n(c) Power consumption of the cluster [Watt]\n%s\n",
              metrics::SideBySide(labels, series, "watt", bs).c_str());
  std::printf("\n(d) Energy consumption per query [Joule/query]\n%s\n",
              metrics::SideBySide(labels, series, "jpq", bs).c_str());
  return 0;
}
