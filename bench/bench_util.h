#ifndef WATTDB_BENCH_BENCH_UTIL_H_
#define WATTDB_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the paper-reproduction benches. Each bench binary
// regenerates one table/figure of Schall & Härder, ICDE 2015; see
// EXPERIMENTS.md for the mapping and the calibration rationale.

#include <cstdio>
#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "cluster/master.h"
#include "metrics/time_series.h"
#include "workload/client.h"
#include "workload/tpcc_loader.h"

namespace wattdb::bench {

/// The Fig. 6/8 testbed: a 10-node wimpy cluster, data initially on two
/// nodes (the master and node 1), TPC-C-derived workload throttled by
/// client think times (§5.1).
struct RebalanceSetup {
  int warehouses = 8;
  double fill = 0.5;
  int num_nodes = 10;
  int clients = 60;
  SimTime think_time = 60 * kUsPerMs;
  /// Every materialized byte stands for `cost_scale` paper bytes so the
  /// SF-1000 migration duration (~4-5 minutes) is reproduced with a small
  /// materialized database (see DESIGN.md, substitution table).
  double cost_scale = 22.0;
  /// Buffer sized to the paper's DRAM:data ratio (2 GB against ~20+ GB per
  /// node -> a few percent of the pages are resident).
  size_t buffer_pages = 400;
  uint64_t seed = 42;
};

struct RebalanceRig {
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<workload::TpccDatabase> db;
  std::unique_ptr<workload::ClientPool> pool;
};

inline RebalanceRig MakeRig(const RebalanceSetup& s,
                            tx::CcScheme cc = tx::CcScheme::kMvcc) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = s.num_nodes;
  cfg.initially_active = 2;
  cfg.buffer.capacity_pages = s.buffer_pages;
  cfg.cc = cc;
  cfg.seed = s.seed;

  RebalanceRig rig;
  rig.cluster = std::make_unique<cluster::Cluster>(cfg);

  workload::TpccLoadConfig load;
  load.warehouses = s.warehouses;
  load.fill = s.fill;
  load.home_nodes = {NodeId(0), NodeId(1)};
  load.seed = s.seed;
  rig.db = std::make_unique<workload::TpccDatabase>(rig.cluster.get(), load);
  const Status st = rig.db->Load();
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    std::abort();
  }

  workload::ClientPoolConfig pool_cfg;
  pool_cfg.num_clients = s.clients;
  pool_cfg.think_time = s.think_time;
  pool_cfg.seed = s.seed;
  rig.pool = std::make_unique<workload::ClientPool>(rig.db.get(), pool_cfg);
  return rig;
}

inline void PrintHeader(const char* figure, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("Reproduction of Schall & Haerder, \"Dynamic Physiological\n");
  std::printf("Partitioning on a Shared-nothing Database Cluster\" (ICDE'15)\n");
  std::printf("==============================================================\n");
}

}  // namespace wattdb::bench

#endif  // WATTDB_BENCH_BENCH_UTIL_H_
