#ifndef WATTDB_BENCH_BENCH_UTIL_H_
#define WATTDB_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the paper-reproduction benches. Each bench binary
// regenerates one table/figure of Schall & Härder, ICDE 2015; see
// EXPERIMENTS.md for the mapping and the calibration rationale.
//
// All benches go through the wattdb::Db facade: the rig below is only the
// paper's §5.1 testbed constants folded into DbOptions plus an attached
// client pool.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "api/db.h"
#include "exec/operators.h"
#include "metrics/time_series.h"

namespace wattdb::bench {

/// The Fig. 6/8 testbed: a 10-node wimpy cluster, data initially on two
/// nodes (the master and node 1), TPC-C-derived workload throttled by
/// client think times (§5.1).
struct RebalanceSetup {
  int warehouses = 8;
  double fill = 0.5;
  int num_nodes = 10;
  int clients = 60;
  SimTime think_time = 60 * kUsPerMs;
  /// Every materialized byte stands for `cost_scale` paper bytes so the
  /// SF-1000 migration duration (~4-5 minutes) is reproduced with a small
  /// materialized database (see DESIGN.md, substitution table).
  double cost_scale = 22.0;
  /// Buffer sized to the paper's DRAM:data ratio (2 GB against ~20+ GB per
  /// node -> a few percent of the pages are resident).
  size_t buffer_pages = 400;
  uint64_t seed = 42;
};

/// The §5.1 testbed as facade options; tweak the returned object for
/// per-bench deviations before Db::Open.
inline DbOptions RigOptions(const RebalanceSetup& s,
                            const std::string& scheme = "physiological",
                            tx::CcScheme cc = tx::CcScheme::kMvcc) {
  DbOptions options;
  options.WithNodes(s.num_nodes)
      .WithActiveNodes(2)
      .WithBufferPages(s.buffer_pages)
      .WithCc(cc)
      .WithSeed(s.seed)
      .WithWarehouses(s.warehouses)
      .WithFill(s.fill)
      .WithHomeNodes({NodeId(0), NodeId(1)})
      .WithScheme(scheme)
      .WithCostScale(s.cost_scale);
  return options;
}

struct RebalanceRig {
  std::unique_ptr<Db> db;
  /// Attached closed-loop client pool (owned by `db`); null when the setup
  /// asked for zero clients.
  workload::ClientPool* pool = nullptr;
};

/// Open `options` and attach the setup's client pool. Use this overload for
/// per-bench option tweaks: `MakeRig(s, RigOptions(s).WithCopyChunkBytes(n))`.
inline RebalanceRig MakeRig(const RebalanceSetup& s, const DbOptions& options) {
  RebalanceRig rig;
  auto opened = Db::Open(options);
  if (!opened.ok()) {
    std::fprintf(stderr, "Db::Open failed: %s\n",
                 opened.status().ToString().c_str());
    std::abort();
  }
  rig.db = std::move(opened).value();
  if (s.clients > 0) {
    workload::ClientPoolConfig pool_cfg;
    pool_cfg.num_clients = s.clients;
    pool_cfg.think_time = s.think_time;
    pool_cfg.seed = s.seed;
    rig.pool = &rig.db->AddClientPool(pool_cfg);
  }
  return rig;
}

inline RebalanceRig MakeRig(const RebalanceSetup& s,
                            const std::string& scheme = "physiological",
                            tx::CcScheme cc = tx::CcScheme::kMvcc) {
  return MakeRig(s, RigOptions(s, scheme, cc));
}

struct PlanRunResult {
  size_t records = 0;
  SimTime elapsed_us = 0;
  /// Completion time of the plan, captured before the commit record is
  /// written (schedule follow-up work at this time, not after the commit).
  SimTime done_at = 0;
};

/// Drain a volcano plan in a fresh read-only facade transaction — the
/// operator-figure benches' shared choreography (Fig. 1, Fig. 2, E9).
inline PlanRunResult DrainPlanInTxn(Db* db, exec::Operator* root) {
  Session session = db->OpenSession();
  TxnHandle txn = session.Begin(/*read_only=*/true);
  exec::ExecContext ctx{&db->cluster(), txn.txn()};
  const SimTime t0 = txn.txn()->now;
  PlanRunResult r;
  r.records = exec::DrainPlan(&ctx, root);
  r.done_at = txn.txn()->now;
  r.elapsed_us = r.done_at - t0;
  (void)txn.Commit();
  return r;
}

inline void PrintHeader(const char* figure, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("Reproduction of Schall & Haerder, \"Dynamic Physiological\n");
  std::printf("Partitioning on a Shared-nothing Database Cluster\" (ICDE'15)\n");
  std::printf("==============================================================\n");
}

}  // namespace wattdb::bench

#endif  // WATTDB_BENCH_BENCH_UTIL_H_
