#ifndef WATTDB_BENCH_BENCH_UTIL_H_
#define WATTDB_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the paper-reproduction benches. Each bench binary
// regenerates one table/figure of Schall & Härder, ICDE 2015; see
// EXPERIMENTS.md for the mapping and the calibration rationale.
//
// All benches go through the wattdb::Db facade: the rig below is only the
// paper's §5.1 testbed constants folded into DbOptions plus an attached
// client pool.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/db.h"
#include "exec/operators.h"
#include "metrics/time_series.h"

namespace wattdb::bench {

/// True when WATTDB_BENCH_SMOKE is set (and not "0"): benches shrink their
/// sweeps and windows to CI-smoke size. The CI bench job runs every binary
/// this way; the numbers stay deterministic (simulated time), just coarser.
inline bool SmokeMode() {
  const char* v = std::getenv("WATTDB_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Machine-readable bench results. Construct one per binary; when the
/// WATTDB_BENCH_JSON_DIR environment variable names a directory, the
/// destructor writes BENCH_<name>.json there:
///
///   {"bench": "...", "config": {...},
///    "metrics": [{"name": ..., "value": ..., "unit": ..., "direction": ...}]}
///
/// `direction` tells the CI regression gate which way is worse: "higher"
/// metrics regress when they drop, "lower" metrics when they rise, "info"
/// metrics are recorded but never gated. Without the env var this is a
/// no-op, so benches stay plain stdout tools locally.
class JsonReporter {
 public:
  enum Direction { kHigherIsBetter, kLowerIsBetter, kInfo };

  explicit JsonReporter(std::string name) : name_(std::move(name)) {}
  ~JsonReporter() { Flush(); }
  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  void Config(const std::string& key, const std::string& value) {
    config_.push_back({key, "\"" + Escaped(value) + "\""});
  }
  void Config(const std::string& key, double value) {
    config_.push_back({key, Number(value)});
  }

  void Metric(const std::string& name, double value, const std::string& unit,
              Direction direction = kInfo) {
    metrics_.push_back({name, value, unit, direction});
  }

  /// Write the file (idempotent; also runs at destruction).
  void Flush() {
    if (flushed_) return;
    flushed_ = true;
    // Wall-clock runtime of the bench process itself, reporter construction
    // to flush. Never gated (real time is hardware- and load-dependent);
    // recorded so the harness's own perf trajectory is visible in CI.
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - started_)
            .count();
    metrics_.push_back({"wall_clock_ms", wall_ms, "ms", kInfo});
    const char* dir = std::getenv("WATTDB_BENCH_JSON_DIR");
    if (dir == nullptr || dir[0] == '\0') return;
    const std::string path =
        std::string(dir) + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReporter: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"config\": {",
                 Escaped(name_).c_str());
    for (size_t i = 0; i < config_.size(); ++i) {
      std::fprintf(f, "%s\n    \"%s\": %s", i == 0 ? "" : ",",
                   Escaped(config_[i].key).c_str(),
                   config_[i].json_value.c_str());
    }
    std::fprintf(f, "%s},\n  \"metrics\": [", config_.empty() ? "" : "\n  ");
    for (size_t i = 0; i < metrics_.size(); ++i) {
      const MetricRow& m = metrics_[i];
      std::fprintf(
          f,
          "%s\n    {\"name\": \"%s\", \"value\": %s, \"unit\": \"%s\", "
          "\"direction\": \"%s\"}",
          i == 0 ? "" : ",", Escaped(m.name).c_str(),
          Number(m.value).c_str(), Escaped(m.unit).c_str(),
          m.direction == kHigherIsBetter
              ? "higher"
              : (m.direction == kLowerIsBetter ? "lower" : "info"));
    }
    std::fprintf(f, "%s]\n}\n", metrics_.empty() ? "" : "\n  ");
    std::fclose(f);
    std::printf("\n[bench json] wrote %s\n", path.c_str());
  }

 private:
  struct ConfigRow {
    std::string key;
    std::string json_value;  ///< Already JSON-encoded.
  };
  struct MetricRow {
    std::string name;
    double value;
    std::string unit;
    Direction direction;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  static std::string Number(double v) {
    char buf[64];
    // %.10g round-trips every value the benches emit and still prints
    // integers without a trailing ".000000".
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    std::string s(buf);
    // JSON has no inf/nan literals.
    if (s.find_first_of("in") != std::string::npos &&
        s.find_first_of("0123456789") == std::string::npos) {
      return "null";
    }
    return s;
  }

  std::string name_;
  std::vector<ConfigRow> config_;
  std::vector<MetricRow> metrics_;
  bool flushed_ = false;
  std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
};

/// Snapshot every active node's admission-queue depth into `reporter` as
/// info metrics (`<prefix>_queue_depth_node<N>` plus the max across nodes).
/// Cheap and meaningful in every scenario — the admission controller tracks
/// outstanding ops whether or not shedding is enabled — so the open-loop
/// benches call it at their measurement points to make backlog visible next
/// to the throughput numbers.
inline void ReportQueueDepths(JsonReporter* reporter, Db* db,
                              const std::string& prefix) {
  int64_t deepest = 0;
  for (const auto& g : db->monitor().QueueDepths()) {
    reporter->Metric(
        prefix + "_queue_depth_node" + std::to_string(g.node.value()),
        static_cast<double>(g.queued_ops), "ops", JsonReporter::kInfo);
    deepest = std::max(deepest, g.queued_ops);
  }
  reporter->Metric(prefix + "_queue_depth_max", static_cast<double>(deepest),
                   "ops", JsonReporter::kInfo);
}

/// Snapshot every active node's per-lane backlog (outstanding scheduled
/// work on each worker lane, in ms) into `reporter` as info metrics:
/// `<prefix>_lane_backlog_node<N>_lane<L>` plus the max across all lanes.
/// No-op when the lane policy is off, so open-loop benches can call it
/// unconditionally next to ReportQueueDepths.
inline void ReportLaneBacklogs(JsonReporter* reporter, Db* db,
                               const std::string& prefix) {
  if (!db->cluster().lanes().enabled()) return;
  double deepest_ms = 0.0;
  for (int i = 0; i < db->cluster().num_nodes(); ++i) {
    const NodeId id(static_cast<uint32_t>(i));
    if (!db->cluster().node(id)->IsActive()) continue;
    for (const auto& ls : db->monitor().LaneStatsFor(id)) {
      const double ms = static_cast<double>(ls.backlog_us) / kUsPerMs;
      reporter->Metric(prefix + "_lane_backlog_node" + std::to_string(i) +
                           "_lane" + std::to_string(ls.lane),
                       ms, "ms", JsonReporter::kInfo);
      deepest_ms = std::max(deepest_ms, ms);
    }
  }
  reporter->Metric(prefix + "_lane_backlog_max", deepest_ms, "ms",
                   JsonReporter::kInfo);
}

/// The Fig. 6/8 testbed: a 10-node wimpy cluster, data initially on two
/// nodes (the master and node 1), TPC-C-derived workload throttled by
/// client think times (§5.1).
struct RebalanceSetup {
  int warehouses = 8;
  double fill = 0.5;
  int num_nodes = 10;
  int clients = 60;
  SimTime think_time = 60 * kUsPerMs;
  /// Every materialized byte stands for `cost_scale` paper bytes so the
  /// SF-1000 migration duration (~4-5 minutes) is reproduced with a small
  /// materialized database (see DESIGN.md, substitution table).
  double cost_scale = 22.0;
  /// Buffer sized to the paper's DRAM:data ratio (2 GB against ~20+ GB per
  /// node -> a few percent of the pages are resident).
  size_t buffer_pages = 400;
  uint64_t seed = 42;
};

/// The §5.1 testbed as facade options; tweak the returned object for
/// per-bench deviations before Db::Open.
inline DbOptions RigOptions(const RebalanceSetup& s,
                            const std::string& scheme = "physiological",
                            tx::CcScheme cc = tx::CcScheme::kMvcc) {
  DbOptions options;
  options.WithNodes(s.num_nodes)
      .WithActiveNodes(2)
      .WithBufferPages(s.buffer_pages)
      .WithCc(cc)
      .WithSeed(s.seed)
      .WithWarehouses(s.warehouses)
      .WithFill(s.fill)
      .WithHomeNodes({NodeId(0), NodeId(1)})
      .WithScheme(scheme)
      .WithCostScale(s.cost_scale);
  return options;
}

struct RebalanceRig {
  std::unique_ptr<Db> db;
  /// Attached closed-loop client pool (owned by `db`); null when the setup
  /// asked for zero clients.
  workload::ClientPool* pool = nullptr;
};

/// Open `options` and attach the setup's client pool. Use this overload for
/// per-bench option tweaks: `MakeRig(s, RigOptions(s).WithCopyChunkBytes(n))`.
inline RebalanceRig MakeRig(const RebalanceSetup& s, const DbOptions& options) {
  RebalanceRig rig;
  auto opened = Db::Open(options);
  if (!opened.ok()) {
    std::fprintf(stderr, "Db::Open failed: %s\n",
                 opened.status().ToString().c_str());
    std::abort();
  }
  rig.db = std::move(opened).value();
  if (s.clients > 0) {
    workload::ClientPoolConfig pool_cfg;
    pool_cfg.num_clients = s.clients;
    pool_cfg.think_time = s.think_time;
    pool_cfg.seed = s.seed;
    rig.pool = &rig.db->AddClientPool(pool_cfg);
  }
  return rig;
}

inline RebalanceRig MakeRig(const RebalanceSetup& s,
                            const std::string& scheme = "physiological",
                            tx::CcScheme cc = tx::CcScheme::kMvcc) {
  return MakeRig(s, RigOptions(s, scheme, cc));
}

struct PlanRunResult {
  size_t records = 0;
  SimTime elapsed_us = 0;
  /// Completion time of the plan, captured before the commit record is
  /// written (schedule follow-up work at this time, not after the commit).
  SimTime done_at = 0;
};

/// Drain a volcano plan in a fresh read-only facade transaction — the
/// operator-figure benches' shared choreography (Fig. 1, Fig. 2, E9).
inline PlanRunResult DrainPlanInTxn(Db* db, exec::Operator* root) {
  Session session = db->OpenSession();
  TxnHandle txn = session.Begin(/*read_only=*/true);
  exec::ExecContext ctx{&db->cluster(), txn.txn()};
  const SimTime t0 = txn.txn()->now;
  PlanRunResult r;
  r.records = exec::DrainPlan(&ctx, root);
  r.done_at = txn.txn()->now;
  r.elapsed_us = r.done_at - t0;
  (void)txn.Commit();
  return r;
}

inline void PrintHeader(const char* figure, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("Reproduction of Schall & Haerder, \"Dynamic Physiological\n");
  std::printf("Partitioning on a Shared-nothing Database Cluster\" (ICDE'15)\n");
  std::printf("==============================================================\n");
}

}  // namespace wattdb::bench

#endif  // WATTDB_BENCH_BENCH_UTIL_H_
