// Heat-driven rebalancing bench (no paper figure — the skew-reaction
// subsystem layered on §3.4's monitoring). A Zipfian (theta ~ 0.99) YCSB
// workload hammers a range-partitioned KV table at a fixed offered load:
// the hot head of the key space is contiguous, so one node soaks up most
// of the traffic and caps cluster throughput. Two arms at identical load:
//
//   static — placement never changes; the hot node saturates.
//   heat   — the master's BalancePolicy watches per-segment EWMA heat and
//            moves the hottest segments onto the coldest nodes through the
//            physiological scheme (§4.3 machinery, online).
//
// Reported: committed key-ops/s after convergence, p99 latency, and the
// time from the first imbalance trigger to the last completed rebalance
// round. Committed stats are booked at transaction *completion* time
// (KvConfig::count_at_completion), so saturation shows up as throughput
// loss, not just latency.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "api/db.h"
#include "bench/bench_util.h"

namespace wattdb::bench {
namespace {

constexpr SimTime kWarmup = 2 * kUsPerSec;

struct HeatSetup {
  double offered_qps = 1400;  ///< Fixed offered load (txn/s), both arms.
  double zipf_theta = 0.99;
  int batch_size = 8;
  int64_t num_keys = 16384;
  int segments_per_partition = 32;
  SimTime converge_window = 30 * kUsPerSec;  ///< Balancer reacts in here.
  SimTime measure_window = 15 * kUsPerSec;   ///< Scored after convergence.
};

workload::KvConfig KvCfg(const HeatSetup& s) {
  workload::KvConfig cfg;
  cfg.arrival_qps = s.offered_qps;
  cfg.count_at_completion = true;
  cfg.read_ratio = 0.95;
  cfg.batch_size = s.batch_size;
  cfg.num_keys = s.num_keys;
  cfg.value_bytes = 100;
  cfg.zipf_theta = s.zipf_theta;
  cfg.segments_per_partition = s.segments_per_partition;
  cfg.seed = 23;
  return cfg;
}

cluster::MasterPolicy Policy(bool balance) {
  cluster::MasterPolicy policy;
  policy.check_period = kUsPerSec / 2;
  policy.stats_window = kUsPerSec;
  // Isolate heat balancing from CPU-threshold elasticity.
  policy.enable_scale_out = false;
  policy.enable_scale_in = false;
  policy.balance.enabled = balance;
  policy.balance.trigger_ratio = 1.3;
  policy.balance.ewma_alpha = 0.5;
  policy.balance.trigger_after = 2;
  policy.balance.cooldown = 4 * kUsPerSec;
  policy.balance.max_moves_per_round = 6;
  policy.balance.min_total_heat = 100.0;
  return policy;
}

struct ArmResult {
  double committed_ops_per_s = 0;
  double committed_txn_per_s = 0;
  double mean_ms = 0;
  double p99_ms = 0;
  int heat_rebalances = 0;
  int moves_completed = 0;
  double time_to_rebalance_ms = 0;  ///< First trigger -> last round done.
};

ArmResult RunArm(const HeatSetup& s, bool balance, JsonReporter* json,
                 const std::string& prefix) {
  DbOptions options = DbOptions()
                          .WithNodes(4)
                          .WithActiveNodes(4)
                          .WithBufferPages(8000)
                          .WithSeed(23)
                          .WithoutTpccLoad()
                          .WithMasterLoop(Policy(balance));
  // Atom-class CPU costs scaled up so a single node saturates at a load
  // the whole cluster could comfortably serve — the skew story in one knob.
  options.cluster.costs.cpu_record_read_us = 300;
  options.cluster.costs.cpu_record_write_us = 600;
  auto opened = Db::Open(options);
  if (!opened.ok()) {
    std::fprintf(stderr, "Db::Open failed: %s\n",
                 opened.status().ToString().c_str());
    std::abort();
  }
  Db& db = **opened;
  auto kv = db.AddKvWorkload(KvCfg(s));
  if (!kv.ok()) {
    std::fprintf(stderr, "AddKvWorkload failed: %s\n",
                 kv.status().ToString().c_str());
    std::abort();
  }
  workload::KvWorkload& driver = **kv;

  driver.Start();
  db.RunFor(kWarmup);
  // Convergence phase: the heat arm detects the imbalance and moves the
  // hot segments; the static arm just builds queue at the hot node.
  db.RunFor(s.converge_window);

  driver.ResetStats();
  db.RunFor(s.measure_window);
  // End-of-measurement backlog: the static arm's hot node shows the queue
  // the balancer exists to dissolve.
  if (json != nullptr) ReportQueueDepths(json, &db, prefix);

  ArmResult r;
  const double secs = ToSeconds(s.measure_window);
  r.committed_ops_per_s = static_cast<double>(driver.key_ops()) / secs;
  r.committed_txn_per_s = static_cast<double>(driver.committed()) / secs;
  r.mean_ms = driver.latencies().mean() / kUsPerMs;
  r.p99_ms = driver.latencies().Percentile(99.0) / kUsPerMs;
  r.heat_rebalances = db.master().heat_rebalances();
  r.moves_completed = db.master().heat_moves_completed();
  SimTime first_trigger = -1;
  SimTime last_done = -1;
  for (const auto& e : db.control_events()) {
    if (e.type == cluster::ControlEventType::kHeatImbalance &&
        first_trigger < 0) {
      first_trigger = e.at;
    }
    if (e.type == cluster::ControlEventType::kHeatRebalanced) {
      last_done = e.at;
    }
  }
  if (first_trigger >= 0 && last_done >= first_trigger) {
    r.time_to_rebalance_ms =
        static_cast<double>(last_done - first_trigger) / kUsPerMs;
  }
  driver.Stop();
  return r;
}

void Run() {
  PrintHeader("Heat rebalance",
              "skew reaction: per-segment heat -> targeted segment moves");
  JsonReporter json("heat_rebalance");

  HeatSetup s;
  if (SmokeMode()) {
    s.converge_window = 14 * kUsPerSec;
    s.measure_window = 8 * kUsPerSec;
  }

  json.Config("offered_qps", s.offered_qps);
  json.Config("zipf_theta", s.zipf_theta);
  json.Config("batch_size", s.batch_size);
  json.Config("num_keys", static_cast<double>(s.num_keys));
  json.Config("segments_per_partition",
              static_cast<double>(s.segments_per_partition));
  json.Config("converge_window_s", ToSeconds(s.converge_window));
  json.Config("measure_window_s", ToSeconds(s.measure_window));
  json.Config("smoke", SmokeMode() ? 1.0 : 0.0);

  std::printf(
      "Zipf(theta=%.2f) over %lld keys on 4 nodes, %g txn/s offered\n"
      "(batch %d, 95%% reads). Measuring the %0.f s after a %0.f s\n"
      "convergence window; committed booked at completion time.\n\n",
      s.zipf_theta, static_cast<long long>(s.num_keys), s.offered_qps,
      s.batch_size, ToSeconds(s.measure_window), ToSeconds(s.converge_window));

  const ArmResult stat = RunArm(s, /*balance=*/false, &json, "static");
  const ArmResult heat = RunArm(s, /*balance=*/true, &json, "heat");

  std::printf("%-8s | %12s %12s %9s %9s | %7s %6s %12s\n", "arm", "key-ops/s",
              "txn/s", "mean ms", "p99 ms", "rounds", "moves", "t-rebal ms");
  std::printf("%-8s | %12.0f %12.0f %9.2f %9.2f | %7d %6d %12s\n", "static",
              stat.committed_ops_per_s, stat.committed_txn_per_s, stat.mean_ms,
              stat.p99_ms, stat.heat_rebalances, stat.moves_completed, "-");
  std::printf("%-8s | %12.0f %12.0f %9.2f %9.2f | %7d %6d %12.0f\n", "heat",
              heat.committed_ops_per_s, heat.committed_txn_per_s, heat.mean_ms,
              heat.p99_ms, heat.heat_rebalances, heat.moves_completed,
              heat.time_to_rebalance_ms);

  const double ratio = stat.committed_ops_per_s > 0
                           ? heat.committed_ops_per_s / stat.committed_ops_per_s
                           : 0;
  std::printf(
      "\nHeat balancing commits %.2fx the static arm's key-ops/s (p99 "
      "%.1f -> %.1f ms);\n%d segment move(s) across %d round(s), last round "
      "done %.0f ms after the first trigger.\n",
      ratio, stat.p99_ms, heat.p99_ms, heat.moves_completed,
      heat.heat_rebalances, heat.time_to_rebalance_ms);

  json.Metric("static_committed_ops_per_s", stat.committed_ops_per_s, "ops/s",
              JsonReporter::kInfo);
  json.Metric("heat_committed_ops_per_s", heat.committed_ops_per_s, "ops/s",
              JsonReporter::kHigherIsBetter);
  json.Metric("throughput_ratio", ratio, "ratio",
              JsonReporter::kHigherIsBetter);
  json.Metric("static_p99_ms", stat.p99_ms, "ms", JsonReporter::kInfo);
  json.Metric("heat_p99_ms", heat.p99_ms, "ms", JsonReporter::kLowerIsBetter);
  json.Metric("time_to_rebalance_ms", heat.time_to_rebalance_ms, "ms",
              JsonReporter::kLowerIsBetter);
  json.Metric("segments_moved", heat.moves_completed, "segments",
              JsonReporter::kInfo);
  json.Metric("rebalance_rounds", heat.heat_rebalances, "rounds",
              JsonReporter::kInfo);
}

}  // namespace
}  // namespace wattdb::bench

int main() {
  wattdb::bench::Run();
  return 0;
}
