// Reproduces the §3.1 power envelope of the paper's 10-node cluster:
//   * one node + switch, rest standby: ~65 W,
//   * realistic minimal configuration: ~70-75 W,
//   * all nodes fully utilized: ~260-280 W,
//   * per node: ~22-26 W active (utilization dependent), ~2.5 W standby,
//   * switch: 20 W, always on.
// Also a google-benchmark micro-suite for the model itself.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/constants.h"
#include "hw/power.h"

namespace wattdb {
namespace {

double ClusterWatts(int active_nodes, double utilization) {
  hw::PowerModel model;
  double watts = model.SwitchWatts();
  for (int i = 0; i < kPaperClusterNodes; ++i) {
    watts += model.NodeWatts(i < active_nodes ? hw::PowerState::kActive
                                              : hw::PowerState::kStandby,
                             utilization);
  }
  return watts;
}

void PrintEnvelope() {
  bench::JsonReporter json("power_model");
  json.Metric("one_node_idle_cluster_watts", ClusterWatts(1, 0.0), "W",
              bench::JsonReporter::kInfo);
  json.Metric("full_cluster_watts", ClusterWatts(10, 1.0), "W",
              bench::JsonReporter::kInfo);
  json.Metric("node_active_idle_watts",
              hw::PowerModel().NodeWatts(hw::PowerState::kActive, 0.0), "W",
              bench::JsonReporter::kInfo);
  json.Metric("node_standby_watts",
              hw::PowerModel().NodeWatts(hw::PowerState::kStandby, 0.0), "W",
              bench::JsonReporter::kInfo);
  std::printf("%-44s %10s %14s\n", "configuration", "watts", "paper");
  std::printf("%-44s %10.1f %14s\n", "1 node idle + switch, 9 standby",
              ClusterWatts(1, 0.0), "~65 W");
  std::printf("%-44s %10.1f %14s\n",
              "minimal realistic (1 node ~50% util)", ClusterWatts(1, 0.5),
              "~70-75 W");
  std::printf("%-44s %10.1f %14s\n", "all 10 nodes, full utilization",
              ClusterWatts(10, 1.0), "~260-280 W");
  std::printf("%-44s %10.1f %14s\n", "per node, idle-active",
              hw::PowerModel().NodeWatts(hw::PowerState::kActive, 0.0),
              "~22 W");
  std::printf("%-44s %10.1f %14s\n", "per node, full utilization",
              hw::PowerModel().NodeWatts(hw::PowerState::kActive, 1.0),
              "~26 W");
  std::printf("%-44s %10.1f %14s\n", "per node, standby",
              hw::PowerModel().NodeWatts(hw::PowerState::kStandby, 0.0),
              "~2.5 W");
  // Energy-proportionality sweep: cluster watts per active-node count.
  std::printf("\nEnergy proportionality (50%% utilization per active node):\n");
  std::printf("%12s %10s\n", "active_nodes", "watts");
  for (int n = 1; n <= kPaperClusterNodes; ++n) {
    std::printf("%12d %10.1f\n", n, ClusterWatts(n, 0.5));
  }
}

void BM_NodeWatts(benchmark::State& state) {
  hw::PowerModel model;
  double u = 0.0;
  for (auto _ : state) {
    u += 0.001;
    if (u > 1.0) u = 0.0;
    benchmark::DoNotOptimize(
        model.NodeWatts(hw::PowerState::kActive, u));
  }
}
BENCHMARK(BM_NodeWatts);

void BM_EnergyMeter(benchmark::State& state) {
  hw::EnergyMeter meter;
  SimTime t = 0;
  for (auto _ : state) {
    meter.Accumulate(70.0, t, t + kUsPerSec);
    t += kUsPerSec;
  }
  benchmark::DoNotOptimize(meter.joules());
}
BENCHMARK(BM_EnergyMeter);

}  // namespace
}  // namespace wattdb

int main(int argc, char** argv) {
  std::printf("==============================================================\n");
  std::printf("Section 3.1 — cluster power envelope\n");
  std::printf("==============================================================\n");
  wattdb::PrintEnvelope();
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
