// Warm-replica bench (no paper figure — the read scale-out / fast-failover
// subsystem layered on the reproduction). Phase 1 runs an open-loop
// read-heavy Zipf KV workload twice — replicas off vs. on — with CPU costs
// scaled so the hot-range owner saturates: the replicated arm should commit
// measurably more key-ops/s because eligible reads of the hot segments fan
// out to warm standbys, and the bench also reports what that costs on the
// wire (bootstrap + log-shipping bytes, the replication tax). Phase 2
// crashes the hot-range owner in both arms and measures the serving gap:
// crash -> first replica promotion (catch-up-and-flip) vs. crash -> full
// WAL-redo recovery of the owner (the self-healing baseline, several
// seconds).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "api/db.h"
#include "bench/bench_util.h"

namespace wattdb::bench {
namespace {

constexpr SimTime kWarmup = 2 * kUsPerSec;

struct Setup {
  double offered_qps = 1400;
  SimTime converge_window = 30 * kUsPerSec;  ///< Replica bootstrap+catch-up.
  SimTime measure_window = 20 * kUsPerSec;
  SimTime failover_wait = 60 * kUsPerSec;  ///< Crash -> serving, max.
};

workload::KvConfig KvCfg(const Setup& s) {
  workload::KvConfig cfg;
  cfg.arrival_qps = s.offered_qps;
  // Committed work is scored where it was actually served, so moving or
  // fanning out hot segments changes the number (not just latency).
  cfg.count_at_completion = true;
  cfg.read_ratio = 0.95;  // YCSB-B: the regime replicas can help in.
  cfg.batch_size = 8;
  cfg.num_keys = 16384;
  cfg.value_bytes = 100;
  cfg.zipf_theta = 0.99;  // Contiguous hot head -> one owner soaks it up.
  // Rotate the head into the second partition: the saturated owner is then
  // a plain worker the failover phase is allowed to crash (the master,
  // owner of [0, num_keys/4), can't die in the single-master design).
  cfg.zipf_offset = cfg.num_keys / 4;
  cfg.segments_per_partition = 32;
  cfg.seed = 23;
  return cfg;
}

cluster::MasterPolicy Policy(bool replicated) {
  cluster::MasterPolicy policy;
  policy.check_period = kUsPerSec;
  policy.stats_window = kUsPerSec;
  // Isolate the replica subsystem: no elasticity, no heat moves — the only
  // thing the master may do about skew in this bench is replicate.
  policy.enable_scale_out = false;
  policy.enable_scale_in = false;
  policy.balance.enabled = false;
  policy.recovery.auto_heal = true;  // The unreplicated arm's failover path.
  policy.recovery.declare_dead_after = 2;
  policy.replica.enabled = replicated;
  policy.replica.replicas_per_segment = 1;
  policy.replica.heat_threshold = 40.0;
  policy.replica.max_replicated_segments = 4;
  policy.replica.max_lag_records = 256;
  // Heat decays to ~0 while the failover phase has the workload stopped;
  // keep standbys alive long enough to be promoted, not cold-dropped.
  policy.replica.drop_cold_after = 120 * kUsPerSec;
  return policy;
}

struct ArmResult {
  double key_ops_per_s = 0;
  double committed_per_s = 0;
  double p99_ms = 0;
  int replicas_caught_up = 0;
  double replication_mb = 0;        ///< Tax during the measure window.
  double failover_gap_ms = 0;       ///< Crash -> serving again.
  bool failover_observed = false;
};

/// One full arm: converge, measure throughput, then crash the hot-range
/// owner and time how long its data is unservable.
ArmResult RunArm(const Setup& s, bool replicated, JsonReporter* json,
                 const std::string& prefix) {
  DbOptions options = DbOptions()
                          .WithNodes(5)
                          .WithActiveNodes(4)
                          .WithBufferPages(4000)
                          .WithSeed(23)
                          .WithoutTpccLoad()
                          .WithMasterLoop(Policy(replicated));
  // Expensive record ops (cf. bench_heat_rebalance): the Zipf head's owner
  // runs out of CPU long before the cluster does, so offloading its reads
  // is visible in committed throughput, not just queueing delay.
  options.cluster.costs.cpu_record_read_us = 300;
  options.cluster.costs.cpu_record_write_us = 600;
  auto opened = Db::Open(options);
  if (!opened.ok()) {
    std::fprintf(stderr, "Db::Open failed: %s\n",
                 opened.status().ToString().c_str());
    std::abort();
  }
  Db& db = **opened;
  auto kv = db.AddKvWorkload(KvCfg(s));
  if (!kv.ok()) {
    std::fprintf(stderr, "AddKvWorkload failed: %s\n",
                 kv.status().ToString().c_str());
    std::abort();
  }
  workload::KvWorkload& driver = **kv;

  driver.Start();
  db.RunFor(kWarmup);
  // Give the control loop time to spot the hot segments and bring standbys
  // to caught-up before scoring anything (no-op in the unreplicated arm).
  db.RunFor(s.converge_window);

  const int64_t tax_before = db.replicas().replication_bytes();
  driver.ResetStats();
  db.RunFor(s.measure_window);
  // End-of-measurement backlog: read fan-out should show as a flatter
  // depth profile across owner + replica hosts.
  if (json != nullptr) ReportQueueDepths(json, &db, prefix);

  ArmResult r;
  const double secs = ToSeconds(s.measure_window);
  r.key_ops_per_s = static_cast<double>(driver.key_ops()) / secs;
  r.committed_per_s = static_cast<double>(driver.committed()) / secs;
  r.p99_ms = driver.latencies().Percentile(99.0) / kUsPerMs;
  r.replicas_caught_up = db.replicas().replicas_caught_up();
  r.replication_mb =
      static_cast<double>(db.replicas().replication_bytes() - tax_before) /
      (1024.0 * 1024.0);

  // Phase 2: kill the owner of the Zipf head (rank 0 maps to key
  // zipf_offset) and time crash -> serving again. In the replicated arm
  // that is the first kReplicaPromoted after the crash; in the baseline it
  // is the master's full-redo kNodeRecovered. The gap is a control-plane
  // number (detection + flip, or detection + restart + WAL redo), so the
  // offered load is stopped first — it only slows the simulation down.
  driver.Stop();
  const Key hot_key = static_cast<Key>(driver.config().zipf_offset);
  NodeId hot_owner;
  for (const TableRoute& route : db.Routes(driver.table())) {
    if (route.range.Contains(hot_key)) hot_owner = route.owner;
  }
  const SimTime crash_at = db.Now();
  const Status crashed = db.CrashNode(hot_owner);
  if (!crashed.ok()) {
    std::fprintf(stderr, "CrashNode failed: %s\n",
                 crashed.ToString().c_str());
    std::abort();
  }
  const auto serving_mark = replicated
                                ? cluster::ControlEventType::kReplicaPromoted
                                : cluster::ControlEventType::kNodeRecovered;
  while (db.Now() - crash_at < s.failover_wait && !r.failover_observed) {
    db.RunFor(kUsPerSec / 4);
    for (const auto& e : db.control_events()) {
      if (e.type == serving_mark && e.at >= crash_at) {
        r.failover_gap_ms = static_cast<double>(e.at - crash_at) / kUsPerMs;
        r.failover_observed = true;
        break;
      }
    }
  }
  if (!r.failover_observed) {
    // Still down when we stopped looking: report the window as a floor so
    // the JSON never carries a too-good 0 for a node that never came back.
    r.failover_gap_ms = ToSeconds(s.failover_wait) * 1e3;
  }
  return r;
}

void Run() {
  PrintHeader("Warm replicas",
              "read scale-out and catch-up-and-flip failover");
  JsonReporter json("warm_replicas");

  Setup s;
  const bool smoke = SmokeMode();
  if (smoke) {
    s.converge_window = 14 * kUsPerSec;
    s.measure_window = 8 * kUsPerSec;
    s.failover_wait = 45 * kUsPerSec;
  }
  json.Config("offered_qps", s.offered_qps);
  json.Config("read_ratio", 0.95);
  json.Config("zipf_theta", 0.99);
  json.Config("batch_size", 8);
  json.Config("num_keys", 16384);
  json.Config("segments_per_partition", 32);
  json.Config("converge_window_s", ToSeconds(s.converge_window));
  json.Config("measure_window_s", ToSeconds(s.measure_window));
  json.Config("smoke", smoke ? 1.0 : 0.0);

  std::printf(
      "Open-loop Zipf(0.99) KV, 95%% reads, %.0f txn/s offered onto 4 of 5\n"
      "nodes; record CPU costs scaled so the hot-range owner saturates.\n"
      "Each arm then loses that owner and we time crash -> serving.\n\n",
      s.offered_qps);

  const ArmResult plain = RunArm(s, /*replicated=*/false, &json, "plain");
  const ArmResult repl = RunArm(s, /*replicated=*/true, &json, "replicated");

  std::printf("%-12s | %12s %12s %9s | %12s %9s\n", "arm", "key-ops/s",
              "txn/s", "p99 ms", "failover ms", "caught-up");
  std::printf("%-12s | %12.0f %12.0f %9.1f | %12.1f %9d\n", "unreplicated",
              plain.key_ops_per_s, plain.committed_per_s, plain.p99_ms,
              plain.failover_gap_ms, plain.replicas_caught_up);
  std::printf("%-12s | %12.0f %12.0f %9.1f | %12.1f %9d\n", "replicated",
              repl.key_ops_per_s, repl.committed_per_s, repl.p99_ms,
              repl.failover_gap_ms, repl.replicas_caught_up);

  const double ratio = plain.key_ops_per_s > 0
                           ? repl.key_ops_per_s / plain.key_ops_per_s
                           : 0;
  std::printf(
      "\nread scale-out: %.2fx key-ops/s for %.2f MB of replication traffic\n"
      "in the measure window; failover gap %.0f ms replicated vs %.0f ms\n"
      "full-redo (%s/%s observed).\n",
      ratio, repl.replication_mb, repl.failover_gap_ms, plain.failover_gap_ms,
      repl.failover_observed ? "promotion" : "NO promotion",
      plain.failover_observed ? "recovery" : "NO recovery");

  json.Metric("unreplicated_key_ops_per_s", plain.key_ops_per_s, "ops/s",
              JsonReporter::kInfo);
  json.Metric("replicated_key_ops_per_s", repl.key_ops_per_s, "ops/s",
              JsonReporter::kHigherIsBetter);
  json.Metric("throughput_ratio", ratio, "ratio",
              JsonReporter::kHigherIsBetter);
  json.Metric("replicated_p99_ms", repl.p99_ms, "ms",
              JsonReporter::kLowerIsBetter);
  json.Metric("replication_tax_mb", repl.replication_mb, "MB",
              JsonReporter::kInfo);
  json.Metric("replicas_caught_up", repl.replicas_caught_up, "replicas",
              JsonReporter::kInfo);
  json.Metric("failover_gap_replicated_ms", repl.failover_gap_ms, "ms",
              JsonReporter::kLowerIsBetter);
  json.Metric("failover_gap_full_redo_ms", plain.failover_gap_ms, "ms",
              JsonReporter::kInfo);
}

}  // namespace
}  // namespace wattdb::bench

int main() { wattdb::bench::Run(); }
