#!/usr/bin/env python3
"""Gate bench results against checked-in baselines.

Usage: compare_baselines.py <results_dir> <baselines_dir> [--threshold 0.25]
       compare_baselines.py --soak-report chaos_report.json

Both directories hold BENCH_<name>.json files as written by
bench::JsonReporter (bench/bench_util.h):

    {"bench": "...", "config": {...},
     "metrics": [{"name": ..., "value": ..., "unit": ..., "direction": ...}]}

For every baseline file there must be a matching result file, and every
gated baseline metric (direction "higher" or "lower") must be within
`threshold` of its baseline value in the non-regressing direction:

    direction "higher": fail when value < baseline * (1 - threshold)
    direction "lower":  fail when value > baseline * (1 + threshold)

"info" metrics and metrics that only exist in the results are reported but
never gated. Result files with no baseline counterpart are a warning, not a
failure — a freshly added bench must not break CI before its baseline is
checked in, but it should be loudly visible until it is. Exit status 1 on
any regression or missing file/metric.

The benches run on simulated time, so the numbers are deterministic across
machines — the 25% default margin absorbs intentional small recalibrations,
not noise.

When running under GitHub Actions (GITHUB_STEP_SUMMARY is set), the same
comparison is appended to the job's step summary as a markdown table, so a
reviewer sees every metric/baseline/current/delta without opening the log.

With --soak-report the script instead summarizes a chaos_soak JSON report:
per-seed wall-clock (real time, not simulated — the one number in the soak
that IS machine-dependent) as a step-summary table of the slowest seeds plus
totals, so a soak-job reviewer can spot pathological seeds whose checking
blew up without downloading the artifact. Informational only: never gates.
"""

import argparse
import json
import os
import sys
from pathlib import Path


def load(path: Path) -> dict:
    """Parse one reporter file; a clear error beats a traceback in CI."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"error: cannot read {path}: {e}")
    if not isinstance(doc, dict):
        raise SystemExit(f"error: {path}: expected a JSON object, got "
                         f"{type(doc).__name__}")
    return doc


def metric_map(doc: dict, path: Path) -> dict:
    metrics = doc.get("metrics", [])
    for m in metrics:
        if not isinstance(m, dict) or "name" not in m or "value" not in m:
            raise SystemExit(f"error: {path}: malformed metric entry {m!r}")
    return {m["name"]: m for m in metrics}


def write_step_summary(rows, failures, warnings, threshold) -> None:
    """Mirror the comparison into the GitHub job's step summary, if any."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    lines = ["## Bench comparison", ""]
    if failures:
        lines += [f"**{len(failures)} regression(s)** "
                  f"(threshold {threshold:.0%}):", ""]
        lines += [f"- {f}" for f in failures]
        lines.append("")
    else:
        lines += [f"All gated metrics within {threshold:.0%} of baselines.",
                  ""]
    lines += ["| metric | dir | baseline | current | delta | status |",
              "|---|---|---:|---:|---:|---|"]
    for bench, name, direction, old, new, delta, status in rows:
        old_s = f"{old:g}" if old is not None else "-"
        new_s = f"{new:g}" if new is not None else "-"
        marker = "**REGRESSED**" if status == "REGRESSED" else status
        lines.append(f"| {bench}/{name} | {direction} | {old_s} | {new_s} "
                     f"| {delta:+.1%} | {marker} |")
    if warnings:
        lines.append("")
        lines += [f"- :warning: {w}" for w in warnings]
    try:
        with open(path, "a") as f:
            f.write("\n".join(lines) + "\n")
    except OSError as e:
        # The summary is a convenience; never let it mask the real verdict.
        print(f"warning: cannot write step summary: {e}", file=sys.stderr)


def soak_wall_clock_summary(report_path: Path, top: int = 15) -> int:
    """Render per-seed soak wall-clock from a chaos_soak report.

    Prints totals to stdout and, under GitHub Actions, appends a markdown
    table of the `top` slowest seeds to the step summary. Wall-clock is the
    soak's only machine-dependent number — everything else in the report is
    a pure function of the seed — so it is reported, never gated.
    """
    report = load(report_path)
    entries = [e for e in report.get("wall_ms", [])
               if isinstance(e, dict) and "seed" in e and "ms" in e]
    if not entries:
        print(f"warning: {report_path} has no per-seed wall_ms entries "
              "(old chaos_soak binary?)", file=sys.stderr)
        return 0
    total_ms = sum(e["ms"] for e in entries)
    slowest = sorted(entries, key=lambda e: e["ms"], reverse=True)[:top]
    failed = {f.get("seed") for f in report.get("failures", [])}

    print(f"soak wall-clock: {len(entries)} seed(s), total {total_ms} ms, "
          f"mean {total_ms / len(entries):.0f} ms, "
          f"max {slowest[0]['ms']} ms (seed {slowest[0]['seed']})")

    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return 0
    mode = "".join(m for m, on in
                   [("history", report.get("history")),
                    ("elasticity", report.get("elasticity"))] if on)
    lines = ["## Soak wall-clock per seed", "",
             f"{len(entries)} seed(s)"
             + (f" ({mode} mode)" if mode else "")
             + f", total {total_ms / 1000.0:.1f} s, mean "
             f"{total_ms / len(entries):.0f} ms. Slowest {len(slowest)}:",
             "",
             "| seed | wall (ms) | verdict |",
             "|---:|---:|---|"]
    for e in slowest:
        verdict = "**FAIL**" if e["seed"] in failed else "ok"
        lines.append(f"| {e['seed']} | {e['ms']} | {verdict} |")
    try:
        with open(path, "a") as f:
            f.write("\n".join(lines) + "\n")
    except OSError as e:
        print(f"warning: cannot write step summary: {e}", file=sys.stderr)
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results_dir", type=Path, nargs="?")
    parser.add_argument("baselines_dir", type=Path, nargs="?")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative regression (default 0.25)")
    parser.add_argument("--soak-report", type=Path, metavar="JSON",
                        help="summarize a chaos_soak report's per-seed "
                             "wall-clock instead of gating benches")
    args = parser.parse_args()

    if args.soak_report:
        return soak_wall_clock_summary(args.soak_report)
    if args.results_dir is None or args.baselines_dir is None:
        parser.error("results_dir and baselines_dir are required unless "
                     "--soak-report is given")

    baselines = sorted(args.baselines_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"no baselines under {args.baselines_dir}", file=sys.stderr)
        return 1
    if not args.results_dir.is_dir():
        # The bench step silently producing nothing must read as a failure,
        # not as "no regressions".
        print(f"results dir {args.results_dir} does not exist — did the "
              "bench step run?", file=sys.stderr)
        return 1
    if not any(args.results_dir.glob("BENCH_*.json")):
        print(f"no BENCH_*.json results under {args.results_dir} but "
              f"{len(baselines)} baseline(s) are committed — did the bench "
              "step run?", file=sys.stderr)
        return 1

    failures = []
    warnings = []
    rows = []
    # Results nobody gates yet: a new bench ran but its baseline was never
    # checked in. Warn — silently skipping it would look like coverage.
    baseline_names = {p.name for p in baselines}
    for result_path in sorted(args.results_dir.glob("BENCH_*.json")):
        if result_path.name not in baseline_names:
            warnings.append(
                f"{result_path.name}: result has no baseline — add one "
                f"under {args.baselines_dir} to gate it")
    for base_path in baselines:
        result_path = args.results_dir / base_path.name
        if not result_path.exists():
            failures.append(f"{base_path.name}: no result produced")
            continue
        base = metric_map(load(base_path), base_path)
        result = metric_map(load(result_path), result_path)
        for name, bm in base.items():
            direction = bm.get("direction", "info")
            if name not in result:
                failures.append(f"{base_path.name}: metric '{name}' missing "
                                "from results")
                continue
            old, new = bm["value"], result[name]["value"]
            if old is None or new is None:
                failures.append(f"{base_path.name}: metric '{name}' is null")
                continue
            delta = (new - old) / abs(old) if old else 0.0
            regressed = False
            if old <= 0:
                # Relative margins are meaningless around zero or negative
                # baselines; record but never gate.
                direction = "info"
            elif direction == "higher":
                regressed = new < old * (1.0 - args.threshold)
            elif direction == "lower":
                regressed = new > old * (1.0 + args.threshold)
            status = "REGRESSED" if regressed else (
                "info" if direction == "info" else "ok")
            rows.append((base_path.name.replace("BENCH_", "").replace(
                ".json", ""), name, direction, old, new, delta, status))
            if regressed:
                failures.append(
                    f"{base_path.name}: '{name}' ({direction}-is-better) "
                    f"{old:g} -> {new:g} ({delta:+.1%})")
        for name in sorted(set(result) - set(base)):
            rows.append((base_path.name.replace("BENCH_", "").replace(
                ".json", ""), name, result[name].get("direction", "info"),
                None, result[name]["value"], 0.0, "new"))

    width = max((len(r[0]) + len(r[1]) for r in rows), default=20) + 3
    print(f"{'bench/metric':<{width}} {'dir':>6} {'baseline':>12} "
          f"{'result':>12} {'delta':>8}  status")
    for bench, name, direction, old, new, delta, status in rows:
        # Either side may be null (JsonReporter writes null for inf/nan).
        old_s = f"{old:g}" if old is not None else "-"
        new_s = f"{new:g}" if new is not None else "-"
        print(f"{bench + '/' + name:<{width}} {direction:>6} {old_s:>12} "
              f"{new_s:>12} {delta:>+7.1%}  {status}")

    if warnings:
        print(f"\n{len(warnings)} warning(s):", file=sys.stderr)
        for w in warnings:
            print(f"  WARNING: {w}", file=sys.stderr)

    write_step_summary(rows, failures, warnings, args.threshold)

    if failures:
        print(f"\n{len(failures)} regression(s) against "
              f"{args.baselines_dir}:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nall gated metrics within {args.threshold:.0%} of baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
