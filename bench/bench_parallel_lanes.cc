// Intra-node parallel data plane bench (no paper figure — the per-core
// shared-nothing worker lanes layered under §3.2's nodes, KVell-style).
// Two experiments on a Zipf-skewed KV workload:
//
//   sweep — lanes/node 1 -> 8 at a fixed offered load, with the segment
//           index as an ablation axis (B+-tree vs hash). One lane is the
//           serial baseline; per-node throughput should multiply until the
//           offered load is met, because each lane is an independent
//           execution timeline and batches fan out per lane.
//   rebal — reaction-time duel at identical skew: the hot node's segments
//           are stacked onto one lane (simulating drift), then the master
//           either re-lanes them locally (intra arm, balance_lanes on) or
//           migrates them to other nodes (cross arm, balance_lanes off).
//           Re-laning is an in-memory remap — no pages, no network — so its
//           time-to-rebalance should beat the migration by orders.
//
// Committed stats are booked at transaction completion time, so saturation
// shows up as throughput loss, not just latency.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "api/db.h"
#include "bench/bench_util.h"

namespace wattdb::bench {
namespace {

constexpr SimTime kWarmup = 2 * kUsPerSec;

struct LaneSetup {
  double sweep_qps = 3000;  ///< Offered load (txn/s) of the lane sweep.
  double rebal_qps = 1400;  ///< Offered load of the reaction-time duel.
  double zipf_theta = 0.99;
  int batch_size = 8;
  int64_t num_keys = 16384;
  int segments_per_partition = 32;
  SimTime measure_window = 10 * kUsPerSec;
  SimTime rebal_window = 30 * kUsPerSec;  ///< Balancer reacts in here.
};

workload::KvConfig KvCfg(const LaneSetup& s, double qps) {
  workload::KvConfig cfg;
  cfg.arrival_qps = qps;
  cfg.count_at_completion = true;
  cfg.read_ratio = 0.95;
  cfg.batch_size = s.batch_size;
  cfg.num_keys = s.num_keys;
  cfg.value_bytes = 100;
  cfg.zipf_theta = s.zipf_theta;
  cfg.segments_per_partition = s.segments_per_partition;
  cfg.seed = 23;
  return cfg;
}

lanes::LanePolicy Lanes(int per_node, bool balance) {
  lanes::LanePolicy lp;
  lp.enabled = true;
  lp.lanes_per_node = per_node;
  lp.balance_lanes = balance;
  lp.lane_trigger_ratio = 1.3;
  lp.relane_cooldown = 4 * kUsPerSec;
  return lp;
}

DbOptions BaseOptions(const LaneSetup& s) {
  (void)s;
  DbOptions options = DbOptions()
                          .WithNodes(4)
                          .WithActiveNodes(4)
                          .WithBufferPages(8000)
                          .WithSeed(23)
                          .WithoutTpccLoad();
  // Atom-class CPU costs scaled up so the CPU — the resource lanes
  // multiply — is the bottleneck, not disks or network.
  options.cluster.costs.cpu_record_read_us = 300;
  options.cluster.costs.cpu_record_write_us = 600;
  return options;
}

Db& MustOpen(StatusOr<std::unique_ptr<Db>>& opened) {
  if (!opened.ok()) {
    std::fprintf(stderr, "Db::Open failed: %s\n",
                 opened.status().ToString().c_str());
    std::abort();
  }
  return **opened;
}

workload::KvWorkload& MustAddKv(Db& db, const workload::KvConfig& cfg) {
  auto kv = db.AddKvWorkload(cfg);
  if (!kv.ok()) {
    std::fprintf(stderr, "AddKvWorkload failed: %s\n",
                 kv.status().ToString().c_str());
    std::abort();
  }
  return **kv;
}

struct SweepResult {
  double committed_ops_per_s = 0;
  double p99_ms = 0;
};

SweepResult RunSweepArm(const LaneSetup& s, int lanes_per_node,
                        index::IndexKind kind, JsonReporter* json,
                        const std::string& prefix) {
  DbOptions options = BaseOptions(s)
                          .WithLanePolicy(Lanes(lanes_per_node,
                                                /*balance=*/false))
                          .WithIndexKind(kind);
  auto opened = Db::Open(options);
  Db& db = MustOpen(opened);
  workload::KvWorkload& driver = MustAddKv(db, KvCfg(s, s.sweep_qps));

  driver.Start();
  db.RunFor(kWarmup);
  driver.ResetStats();
  db.RunFor(s.measure_window);
  // End-of-measurement per-lane backlog: with one lane, everything queues
  // on it; with enough lanes the backlog flattens out.
  if (json != nullptr) ReportLaneBacklogs(json, &db, prefix);

  SweepResult r;
  r.committed_ops_per_s =
      static_cast<double>(driver.key_ops()) / ToSeconds(s.measure_window);
  r.p99_ms = driver.latencies().Percentile(99.0) / kUsPerMs;
  driver.Stop();
  return r;
}

cluster::MasterPolicy RebalPolicy() {
  cluster::MasterPolicy policy;
  policy.check_period = kUsPerSec / 2;
  policy.stats_window = kUsPerSec;
  // Isolate heat reaction from CPU-threshold elasticity.
  policy.enable_scale_out = false;
  policy.enable_scale_in = false;
  policy.balance.enabled = true;
  policy.balance.trigger_ratio = 1.3;
  policy.balance.ewma_alpha = 0.5;
  policy.balance.trigger_after = 2;
  policy.balance.cooldown = 4 * kUsPerSec;
  policy.balance.max_moves_per_round = 6;
  policy.balance.min_total_heat = 100.0;
  return policy;
}

struct RebalResult {
  double time_to_rebalance_ms = -1;  ///< Stack -> first completed round.
  int segments_relaned = 0;
  int heat_moves_completed = 0;
};

RebalResult RunRebalArm(const LaneSetup& s, bool intra, JsonReporter* json,
                        const std::string& prefix) {
  DbOptions options = BaseOptions(s)
                          .WithLanePolicy(Lanes(4, /*balance=*/intra))
                          .WithMasterLoop(RebalPolicy());
  auto opened = Db::Open(options);
  Db& db = MustOpen(opened);
  workload::KvWorkload& driver = MustAddKv(db, KvCfg(s, s.rebal_qps));

  driver.Start();
  db.RunFor(kWarmup);

  // Find the hot node by EWMA heat (the Zipf head's owner) and stack every
  // one of its segments onto lane 0 — the drift scenario both arms must
  // fix: intra by re-laning locally, cross by migrating off-node.
  NodeId hot = NodeId(0);
  double hot_heat = -1.0;
  for (const auto& [node, heat] : db.monitor().NodeHeats()) {
    if (heat > hot_heat) {
      hot_heat = heat;
      hot = node;
    }
  }
  for (storage::Segment* seg : db.cluster().segments().SegmentsOn(hot)) {
    db.cluster().lanes().Relane(seg, 0);
  }
  const SimTime stacked_at = db.Now();

  db.RunFor(s.rebal_window);
  if (json != nullptr) ReportLaneBacklogs(json, &db, prefix);

  RebalResult r;
  for (const auto& e : db.control_events()) {
    if (e.at < stacked_at) continue;
    if (e.type == cluster::ControlEventType::kLaneRebalanced ||
        e.type == cluster::ControlEventType::kHeatRebalanced) {
      r.time_to_rebalance_ms =
          static_cast<double>(e.at - stacked_at) / kUsPerMs;
      break;
    }
  }
  r.segments_relaned = db.master().segments_relaned();
  r.heat_moves_completed = db.master().heat_moves_completed();
  driver.Stop();
  return r;
}

const char* KindName(index::IndexKind kind) {
  return kind == index::IndexKind::kBTree ? "btree" : "hash";
}

void Run() {
  PrintHeader("Parallel lanes",
              "per-core shared-nothing worker lanes + intra-node balancing");
  JsonReporter json("parallel_lanes");

  LaneSetup s;
  std::vector<int> lane_counts = {1, 2, 4, 8};
  if (SmokeMode()) {
    s.measure_window = 4 * kUsPerSec;
    s.rebal_window = 15 * kUsPerSec;
    lane_counts = {1, 4};
  }

  json.Config("sweep_qps", s.sweep_qps);
  json.Config("rebal_qps", s.rebal_qps);
  json.Config("zipf_theta", s.zipf_theta);
  json.Config("batch_size", s.batch_size);
  json.Config("num_keys", static_cast<double>(s.num_keys));
  json.Config("segments_per_partition",
              static_cast<double>(s.segments_per_partition));
  json.Config("measure_window_s", ToSeconds(s.measure_window));
  json.Config("rebal_window_s", ToSeconds(s.rebal_window));
  json.Config("smoke", SmokeMode() ? 1.0 : 0.0);

  std::printf(
      "Zipf(theta=%.2f) over %lld keys on 4 nodes, %g txn/s offered\n"
      "(batch %d, 95%% reads), CPU-bound. Sweeping lanes/node with the\n"
      "segment index as ablation axis.\n\n",
      s.zipf_theta, static_cast<long long>(s.num_keys), s.sweep_qps,
      s.batch_size);

  // --- Lane sweep × index ablation ---------------------------------------
  std::printf("%-6s %-6s | %12s %9s\n", "lanes", "index", "key-ops/s",
              "p99 ms");
  double ops_lanes1_btree = 0;
  double ops_lanes4_btree = 0;
  double ops_lanes4_hash = 0;
  for (int lanes : lane_counts) {
    for (index::IndexKind kind :
         {index::IndexKind::kBTree, index::IndexKind::kHash}) {
      const std::string prefix =
          "lanes" + std::to_string(lanes) + "_" + KindName(kind);
      const SweepResult r = RunSweepArm(
          s, lanes, kind,
          (lanes == 4 && kind == index::IndexKind::kBTree) ? &json : nullptr,
          prefix);
      std::printf("%-6d %-6s | %12.0f %9.2f\n", lanes, KindName(kind),
                  r.committed_ops_per_s, r.p99_ms);
      json.Metric(prefix + "_committed_ops_per_s", r.committed_ops_per_s,
                  "ops/s",
                  (lanes == 4 && kind == index::IndexKind::kBTree)
                      ? JsonReporter::kHigherIsBetter
                      : JsonReporter::kInfo);
      json.Metric(prefix + "_p99_ms", r.p99_ms, "ms", JsonReporter::kInfo);
      if (lanes == 1 && kind == index::IndexKind::kBTree) {
        ops_lanes1_btree = r.committed_ops_per_s;
      }
      if (lanes == 4 && kind == index::IndexKind::kBTree) {
        ops_lanes4_btree = r.committed_ops_per_s;
      }
      if (lanes == 4 && kind == index::IndexKind::kHash) {
        ops_lanes4_hash = r.committed_ops_per_s;
      }
    }
  }
  const double sweep_ratio =
      ops_lanes1_btree > 0 ? ops_lanes4_btree / ops_lanes1_btree : 0;
  const double hash_ratio =
      ops_lanes4_btree > 0 ? ops_lanes4_hash / ops_lanes4_btree : 0;
  std::printf(
      "\n4 lanes commit %.2fx the 1-lane key-ops/s (btree); hash index at\n"
      "4 lanes runs %.2fx of btree (cheaper probes, same record costs).\n\n",
      sweep_ratio, hash_ratio);
  json.Metric("throughput_ratio_lanes4_vs_1", sweep_ratio, "ratio",
              JsonReporter::kHigherIsBetter);
  json.Metric("hash_vs_btree_ratio_lanes4", hash_ratio, "ratio",
              JsonReporter::kInfo);

  // --- Reaction-time duel: re-lane vs migrate -----------------------------
  std::printf(
      "Reaction duel: hot node's segments stacked onto lane 0, then the\n"
      "master reacts — intra re-lanes locally, cross migrates off-node.\n\n");
  const RebalResult intra = RunRebalArm(s, /*intra=*/true, &json, "intra");
  const RebalResult cross = RunRebalArm(s, /*intra=*/false, nullptr, "cross");

  std::printf("%-6s | %14s %10s %10s\n", "arm", "t-rebal ms", "relanes",
              "moves");
  std::printf("%-6s | %14.0f %10d %10d\n", "intra", intra.time_to_rebalance_ms,
              intra.segments_relaned, intra.heat_moves_completed);
  std::printf("%-6s | %14.0f %10d %10d\n", "cross", cross.time_to_rebalance_ms,
              cross.segments_relaned, cross.heat_moves_completed);

  const double advantage_ms =
      (cross.time_to_rebalance_ms >= 0 && intra.time_to_rebalance_ms >= 0)
          ? cross.time_to_rebalance_ms - intra.time_to_rebalance_ms
          : -1;
  std::printf(
      "\nIntra-node re-lane settles %.0f ms before the cross-node move\n"
      "(%.0f vs %.0f ms) — no pages shipped, no network.\n",
      advantage_ms, intra.time_to_rebalance_ms, cross.time_to_rebalance_ms);

  // Raw arm times stay info: the gated contract is the *advantage* below
  // (a 0 ms baseline would turn any future nonzero intra time into a
  // spurious >25% regression).
  json.Metric("intra_time_to_rebalance_ms", intra.time_to_rebalance_ms, "ms",
              JsonReporter::kInfo);
  json.Metric("crossnode_time_to_rebalance_ms", cross.time_to_rebalance_ms,
              "ms", JsonReporter::kInfo);
  json.Metric("relane_advantage_ms", advantage_ms, "ms",
              JsonReporter::kHigherIsBetter);
  json.Metric("intra_segments_relaned", intra.segments_relaned, "segments",
              JsonReporter::kInfo);
  json.Metric("cross_segments_moved", cross.heat_moves_completed, "segments",
              JsonReporter::kInfo);
}

}  // namespace
}  // namespace wattdb::bench

int main() {
  wattdb::bench::Run();
  return 0;
}
