// Reproduces Fig. 6 (a-d) of the paper: throughput, average response time,
// cluster power, and energy per query over time while the cluster
// rebalances 50% of all records from 2 nodes onto 2 additional nodes at
// t = 0, under physical, logical, and physiological partitioning.
//
// Expected shape (paper §5.2):
//  * all three dip right after t=0;
//  * physical never recovers fully (ownership pinned, remote page fetches);
//  * logical dips deepest/longest but ends strong once ranges moved;
//  * physiological moves at copy speed AND transfers ownership: it recovers
//    fastest and ends with the best response times and J/query;
//  * power steps up when the two target nodes leave standby.

#include <cstdio>

#include "bench/bench_util.h"

namespace wattdb::bench {
namespace {

constexpr SimTime kWarmup = 180 * kUsPerSec;   // Paper axis: -180 s.
constexpr SimTime kRunAfter = 570 * kUsPerSec; // Paper axis: +570 s.
constexpr SimTime kBucket = 10 * kUsPerSec;

metrics::TimeSeries RunScheme(const RebalanceSetup& setup,
                              const std::string& scheme_name) {
  RebalanceRig rig = MakeRig(setup, scheme_name);
  Db& db = *rig.db;

  metrics::TimeSeries series(kBucket);
  series.SetOrigin(kWarmup);  // t=0 on the axis = rebalance start.
  db.cluster().StartSampling(&series);
  rig.pool->set_series(&series);
  rig.pool->Start();

  // Warm up, then trigger the Fig. 6 rebalance: 50% of the records to two
  // freshly booted nodes.
  db.events().ScheduleAt(kWarmup, [&]() {
    const Status s =
        db.TriggerRebalance({NodeId(2), NodeId(3)}, 0.5, nullptr);
    if (!s.ok()) {
      std::fprintf(stderr, "trigger failed: %s\n", s.ToString().c_str());
    }
  });
  db.RunUntil(kWarmup + kRunAfter);
  rig.pool->Stop();

  std::fprintf(stderr,
               "[%s] completed=%lld aborted=%lld segs=%lld recs=%lld "
               "migration=[%.0fs..%.0fs]\n",
               scheme_name.c_str(),
               static_cast<long long>(rig.pool->completed()),
               static_cast<long long>(rig.pool->aborted()),
               static_cast<long long>(db.scheme().stats().segments_moved),
               static_cast<long long>(db.scheme().stats().records_moved),
               ToSeconds(db.scheme().stats().started_at - kWarmup),
               ToSeconds(db.scheme().stats().finished_at - kWarmup));
  return series;
}

}  // namespace
}  // namespace wattdb::bench

int main() {
  using namespace wattdb;
  using namespace wattdb::bench;
  PrintHeader("Figure 6", "rebalancing under the three partitioning schemes");

  RebalanceSetup setup;
  const metrics::TimeSeries physical = RunScheme(setup, "physical");
  const metrics::TimeSeries logical = RunScheme(setup, "logical");
  const metrics::TimeSeries physio = RunScheme(setup, "physiological");

  const std::vector<std::string> labels = {"physical", "logical",
                                           "physiological"};
  const std::vector<const metrics::TimeSeries*> series = {&physical, &logical,
                                                          &physio};
  const double bs = ToSeconds(kBucket);
  std::printf("\n(a) Throughput of the cluster [qps]\n%s\n",
              metrics::SideBySide(labels, series, "qps", bs).c_str());
  std::printf("\n(b) Avg. response time per query [ms]\n%s\n",
              metrics::SideBySide(labels, series, "ms", bs).c_str());
  std::printf("\n(c) Power consumption of the cluster [Watt]\n%s\n",
              metrics::SideBySide(labels, series, "watt", bs).c_str());
  std::printf("\n(d) Energy consumption per query [Joule/query]\n%s\n",
              metrics::SideBySide(labels, series, "jpq", bs).c_str());
  return 0;
}
