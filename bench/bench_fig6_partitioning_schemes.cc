// Reproduces Fig. 6 (a-d) of the paper: throughput, average response time,
// cluster power, and energy per query over time while the cluster
// rebalances 50% of all records from 2 nodes onto 2 additional nodes at
// t = 0, under physical, logical, and physiological partitioning.
//
// Expected shape (paper §5.2):
//  * all three dip right after t=0;
//  * physical never recovers fully (ownership pinned, remote page fetches);
//  * logical dips deepest/longest but ends strong once ranges moved;
//  * physiological moves at copy speed AND transfers ownership: it recovers
//    fastest and ends with the best response times and J/query;
//  * power steps up when the two target nodes leave standby.

#include <cstdio>

#include "bench/bench_util.h"

namespace wattdb::bench {
namespace {

// Paper axis: -180 s warmup, +570 s after the trigger. Smoke mode keeps
// the shape (dip + recovery) on a scaled-down window and data volume.
inline SimTime Warmup() { return (SmokeMode() ? 30 : 180) * kUsPerSec; }
inline SimTime RunAfter() { return (SmokeMode() ? 130 : 570) * kUsPerSec; }
constexpr SimTime kBucket = 10 * kUsPerSec;

struct SchemeOutcome {
  metrics::TimeSeries series{kBucket};
  int64_t completed = 0;
  int64_t aborted = 0;
  double migration_secs = 0;
};

SchemeOutcome RunScheme(const RebalanceSetup& setup,
                        const std::string& scheme_name) {
  RebalanceRig rig = MakeRig(setup, scheme_name);
  Db& db = *rig.db;

  SchemeOutcome out;
  metrics::TimeSeries& series = out.series;
  series.SetOrigin(Warmup());  // t=0 on the axis = rebalance start.
  db.cluster().StartSampling(&series);
  rig.pool->set_series(&series);
  rig.pool->Start();

  // Warm up, then trigger the Fig. 6 rebalance: 50% of the records to two
  // freshly booted nodes.
  db.events().ScheduleAt(Warmup(), [&]() {
    const Status s =
        db.TriggerRebalance({NodeId(2), NodeId(3)}, 0.5, nullptr);
    if (!s.ok()) {
      std::fprintf(stderr, "trigger failed: %s\n", s.ToString().c_str());
    }
  });
  db.RunUntil(Warmup() + RunAfter());
  rig.pool->Stop();

  out.completed = rig.pool->completed();
  out.aborted = rig.pool->aborted();
  // Logical may still be mid-move when the window closes (it is the slow
  // scheme by design); a negative duration must not reach the gate.
  out.migration_secs =
      db.scheme().stats().finished_at > db.scheme().stats().started_at
          ? ToSeconds(db.scheme().stats().finished_at -
                      db.scheme().stats().started_at)
          : -1.0;
  std::fprintf(stderr,
               "[%s] completed=%lld aborted=%lld segs=%lld recs=%lld "
               "migration=[%.0fs..%.0fs]\n",
               scheme_name.c_str(),
               static_cast<long long>(out.completed),
               static_cast<long long>(out.aborted),
               static_cast<long long>(db.scheme().stats().segments_moved),
               static_cast<long long>(db.scheme().stats().records_moved),
               ToSeconds(db.scheme().stats().started_at - Warmup()),
               ToSeconds(db.scheme().stats().finished_at - Warmup()));
  return out;
}

}  // namespace
}  // namespace wattdb::bench

int main() {
  using namespace wattdb;
  using namespace wattdb::bench;
  PrintHeader("Figure 6", "rebalancing under the three partitioning schemes");
  JsonReporter json("fig6_partitioning_schemes");

  RebalanceSetup setup;
  if (SmokeMode()) {
    // Shorter migration and lighter load; the ordering of the three
    // schemes (the figure's point) is preserved.
    setup.cost_scale = 4.0;
    setup.clients = 20;
    setup.warehouses = 4;
    setup.fill = 0.3;
  }
  json.Config("cost_scale", setup.cost_scale);
  json.Config("clients", setup.clients);
  const SchemeOutcome physical = RunScheme(setup, "physical");
  const SchemeOutcome logical = RunScheme(setup, "logical");
  const SchemeOutcome physio = RunScheme(setup, "physiological");

  for (const auto& [label, o] :
       {std::pair<const char*, const SchemeOutcome*>{"physical", &physical},
        {"logical", &logical},
        {"physiological", &physio}}) {
    json.Metric(std::string(label) + "_completed",
                static_cast<double>(o->completed), "txn",
                JsonReporter::kHigherIsBetter);
    if (o->migration_secs >= 0) {
      json.Metric(std::string(label) + "_migration_s", o->migration_secs,
                  "s", JsonReporter::kLowerIsBetter);
    }
  }

  const std::vector<std::string> labels = {"physical", "logical",
                                           "physiological"};
  const std::vector<const metrics::TimeSeries*> series = {
      &physical.series, &logical.series, &physio.series};
  const double bs = ToSeconds(kBucket);
  std::printf("\n(a) Throughput of the cluster [qps]\n%s\n",
              metrics::SideBySide(labels, series, "qps", bs).c_str());
  std::printf("\n(b) Avg. response time per query [ms]\n%s\n",
              metrics::SideBySide(labels, series, "ms", bs).c_str());
  std::printf("\n(c) Power consumption of the cluster [Watt]\n%s\n",
              metrics::SideBySide(labels, series, "watt", bs).c_str());
  std::printf("\n(d) Energy consumption per query [Joule/query]\n%s\n",
              metrics::SideBySide(labels, series, "jpq", bs).c_str());
  return 0;
}
