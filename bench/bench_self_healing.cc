// Self-healing bench (no paper figure — the control-loop subsystem layered
// on the reproduction). Part 1 sweeps an open-loop KV workload's offered
// load to trace the latency-vs-load saturation curve, with three arms per
// point: healthy, periodic crashes with auto-healing off, and the same
// crashes with the master's self-healing loop on. Part 2 fixes the offered
// load below the knee, arms a periodic fault plan, and prints a per-second
// committed-throughput timeline annotated with the master's control events
// (suspected / declared dead / restart / recovered) — the crash-mid-
// saturation recovery story: detection without operator calls, and
// committed throughput re-converging to the pre-crash level.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "api/db.h"
#include "bench/bench_util.h"

namespace wattdb::bench {
namespace {

constexpr SimTime kWarmup = 2 * kUsPerSec;

workload::KvConfig KvCfg(double qps) {
  workload::KvConfig cfg;
  cfg.arrival_qps = qps;  // Open loop: offered load independent of service.
  cfg.read_ratio = 0.8;
  cfg.batch_size = 8;
  cfg.num_keys = 16384;
  cfg.value_bytes = 100;
  cfg.seed = 17;
  return cfg;
}

cluster::MasterPolicy HealingPolicy(bool auto_heal) {
  cluster::MasterPolicy policy;
  policy.check_period = kUsPerSec / 2;
  policy.stats_window = kUsPerSec;
  // Isolate healing from elasticity: no CPU-threshold scale decisions.
  policy.enable_scale_out = false;
  policy.enable_scale_in = false;
  policy.recovery.auto_heal = auto_heal;
  policy.recovery.declare_dead_after = 2;
  return policy;
}

enum class Arm { kHealthy, kCrashNoHealing, kCrashHealing };

struct ArmResult {
  double committed_per_s = 0;
  double aborted_per_s = 0;
  double mean_ms = 0;
  double p99_ms = 0;
  int declared_dead = 0;
  int auto_restarts = 0;
};

ArmResult RunArm(double qps, Arm arm, SimTime window, SimTime crash_period,
                 JsonReporter* json = nullptr,
                 const std::string& prefix = "") {
  DbOptions options = DbOptions()
                          .WithNodes(4)
                          .WithActiveNodes(2)
                          .WithBufferPages(4000)
                          .WithSeed(17)
                          .WithoutTpccLoad()
                          .WithMasterLoop(HealingPolicy(
                              /*auto_heal=*/arm == Arm::kCrashHealing));
  options.cluster.costs.cpu_record_read_us = 150;
  options.cluster.costs.cpu_record_write_us = 300;
  if (arm != Arm::kHealthy) {
    // Node 1 (half the key space) dies every crash_period and is never
    // restarted by the plan — recovery is the master's job (or nobody's).
    options.WithFaultPlan(fault::FaultPlan().CrashEvery(
        NodeId(1), crash_period, /*restart_after=*/0));
  }
  auto opened = Db::Open(options);
  if (!opened.ok()) {
    std::fprintf(stderr, "Db::Open failed: %s\n",
                 opened.status().ToString().c_str());
    std::abort();
  }
  Db& db = **opened;
  auto kv = db.AddKvWorkload(KvCfg(qps));
  if (!kv.ok()) {
    std::fprintf(stderr, "AddKvWorkload failed: %s\n",
                 kv.status().ToString().c_str());
    std::abort();
  }
  workload::KvWorkload& driver = **kv;

  driver.Start();
  db.RunFor(kWarmup);
  driver.ResetStats();
  db.RunFor(window);
  if (json != nullptr) ReportQueueDepths(json, &db, prefix);

  ArmResult r;
  const double secs = ToSeconds(window);
  r.committed_per_s = static_cast<double>(driver.committed()) / secs;
  r.aborted_per_s = static_cast<double>(driver.aborted()) / secs;
  r.mean_ms = driver.latencies().mean() / kUsPerMs;
  r.p99_ms = driver.latencies().Percentile(99.0) / kUsPerMs;
  r.declared_dead = db.master().nodes_declared_dead();
  r.auto_restarts = db.master().auto_restarts();
  driver.Stop();
  return r;
}

struct TimelineResult {
  std::vector<double> per_second;  ///< Committed txn/s, 1 s buckets.
  double pre_rate = 0;             ///< Before the first crash.
  double reconverged_rate = 0;     ///< Tail of a heal cycle.
  double detection_ms = 0;         ///< Crash -> declared dead (first cycle).
  double recovery_ms = 0;          ///< Crash -> node recovered (first cycle).
  int crashes = 0;
  int declared_dead = 0;
  int recovered = 0;
  std::vector<cluster::ControlEvent> events;
};

TimelineResult RunTimeline(double qps, SimTime crash_period, SimTime window) {
  DbOptions options =
      DbOptions()
          .WithNodes(4)
          .WithActiveNodes(2)
          .WithBufferPages(4000)
          .WithSeed(17)
          .WithoutTpccLoad()
          .WithMasterLoop(HealingPolicy(/*auto_heal=*/true))
          .WithFaultPlan(fault::FaultPlan().CrashEvery(NodeId(1), crash_period,
                                                       /*restart_after=*/0));
  options.cluster.costs.cpu_record_read_us = 150;
  options.cluster.costs.cpu_record_write_us = 300;
  auto opened = Db::Open(options);
  if (!opened.ok()) std::abort();
  Db& db = **opened;
  auto kv = db.AddKvWorkload(KvCfg(qps));
  if (!kv.ok()) std::abort();
  workload::KvWorkload& driver = **kv;

  driver.Start();
  db.RunFor(kWarmup);
  driver.ResetStats();

  TimelineResult r;
  const SimTime t0 = db.Now();
  int64_t last_committed = 0;
  while (db.Now() - t0 < window) {
    db.RunFor(kUsPerSec);
    const int64_t now_committed = driver.committed();
    r.per_second.push_back(static_cast<double>(now_committed - last_committed));
    last_committed = now_committed;
  }
  driver.Stop();

  r.crashes = db.fault().crashes_injected();
  r.events = db.control_events();
  const SimTime first_crash_at = t0 + crash_period - kWarmup;
  for (const auto& e : r.events) {
    if (e.type == cluster::ControlEventType::kNodeDeclaredDead) {
      ++r.declared_dead;
      if (r.detection_ms == 0 && e.at >= first_crash_at) {
        r.detection_ms =
            static_cast<double>(e.at - first_crash_at) / kUsPerMs;
      }
    }
    if (e.type == cluster::ControlEventType::kNodeRecovered) {
      ++r.recovered;
      if (r.recovery_ms == 0 && e.at >= first_crash_at) {
        r.recovery_ms =
            static_cast<double>(e.at - first_crash_at) / kUsPerMs;
      }
    }
  }
  // Pre-crash rate: the seconds before the first crash; reconverged rate:
  // the last 3 s of the first heal cycle (recovered and settled, before
  // the next crash hits).
  const size_t crash_s = static_cast<size_t>(ToSeconds(first_crash_at - t0));
  const size_t cycle_end =
      std::min(r.per_second.size(),
               crash_s + static_cast<size_t>(ToSeconds(crash_period)));
  double pre = 0;
  for (size_t i = 0; i < crash_s && i < r.per_second.size(); ++i) {
    pre += r.per_second[i];
  }
  r.pre_rate = crash_s > 0 ? pre / static_cast<double>(crash_s) : 0;
  double tail = 0;
  int tail_n = 0;
  for (size_t i = cycle_end >= 3 ? cycle_end - 3 : 0; i < cycle_end; ++i) {
    tail += r.per_second[i];
    ++tail_n;
  }
  r.reconverged_rate = tail_n > 0 ? tail / tail_n : 0;
  return r;
}

void Run() {
  PrintHeader("Self-healing",
              "failure detection, auto-restart, saturation under churn");
  JsonReporter json("self_healing");

  const bool smoke = SmokeMode();
  const std::vector<double> sweep =
      smoke ? std::vector<double>{300, 600, 900}
            : std::vector<double>{200, 400, 600, 800, 1000, 1200};
  const SimTime sweep_window = smoke ? 20 * kUsPerSec : 45 * kUsPerSec;
  const SimTime crash_period = smoke ? 8 * kUsPerSec : 15 * kUsPerSec;

  json.Config("sweep_window_s", ToSeconds(sweep_window));
  json.Config("crash_period_s", ToSeconds(crash_period));
  json.Config("read_ratio", 0.8);
  json.Config("batch_size", 8);
  json.Config("smoke", smoke ? 1.0 : 0.0);

  std::printf(
      "Part 1 — saturation curve. Open-loop KV (8 keys/txn, 80%% reads,\n"
      "8192 keys on 2 of 4 nodes); node 1 crashes every %.0f s in the two\n"
      "crash arms and only the 'heal' arm has the master restart it.\n\n",
      ToSeconds(crash_period));
  std::printf("%-10s | %10s %9s %9s | %10s | %10s %6s %6s\n", "offered",
              "healthy/s", "mean ms", "p99 ms", "no-heal/s", "heal/s", "dead",
              "restart");

  double knee_qps = sweep.front();
  double healthy_mid = 0, heal_mid = 0, noheal_mid = 0;
  for (size_t i = 0; i < sweep.size(); ++i) {
    const double qps = sweep[i];
    const bool last = i + 1 == sweep.size();
    const ArmResult healthy =
        RunArm(qps, Arm::kHealthy, sweep_window, crash_period,
               last ? &json : nullptr, "healthy");
    const ArmResult noheal =
        RunArm(qps, Arm::kCrashNoHealing, sweep_window, crash_period,
               last ? &json : nullptr, "noheal");
    const ArmResult heal =
        RunArm(qps, Arm::kCrashHealing, sweep_window, crash_period,
               last ? &json : nullptr, "heal");
    std::printf("%-10.0f | %10.0f %9.2f %9.2f | %10.0f | %10.0f %6d %6d\n",
                qps, healthy.committed_per_s, healthy.mean_ms, healthy.p99_ms,
                noheal.committed_per_s, heal.committed_per_s,
                heal.declared_dead, heal.auto_restarts);
    // The knee: open-loop committed tracks offered right up to overload
    // (arrivals queue, they don't vanish), so saturation shows in the
    // latency blow-up — the largest load with a sane p99 is the knee.
    if (healthy.p99_ms <= 50.0) knee_qps = qps;
    if (i == sweep.size() / 2) {
      healthy_mid = healthy.committed_per_s;
      heal_mid = heal.committed_per_s;
      noheal_mid = noheal.committed_per_s;
    }
    if (i == 0) {
      json.Metric("p99_low_load_ms", healthy.p99_ms, "ms",
                  JsonReporter::kLowerIsBetter);
      json.Metric("mean_low_load_ms", healthy.mean_ms, "ms",
                  JsonReporter::kLowerIsBetter);
    }
  }
  json.Config("mid_sweep_qps", sweep[sweep.size() / 2]);
  json.Metric("saturation_qps", knee_qps, "txn/s",
              JsonReporter::kHigherIsBetter);
  json.Metric("healthy_committed_mid", healthy_mid, "txn/s",
              JsonReporter::kHigherIsBetter);
  json.Metric("healing_committed_mid", heal_mid, "txn/s",
              JsonReporter::kHigherIsBetter);
  json.Metric("no_healing_committed_mid", noheal_mid, "txn/s",
              JsonReporter::kInfo);

  // Part 2 — recovery timeline at ~60% of the knee.
  const double timeline_qps = std::max(200.0, 0.6 * knee_qps);
  // One full heal cycle needs ~6 s (detection + 5 s boot + redo); keep the
  // crash period at 15 s in both modes so the timeline always re-converges.
  const SimTime timeline_period = 15 * kUsPerSec;
  const SimTime timeline_window = smoke ? 24 * kUsPerSec : 47 * kUsPerSec;
  std::printf(
      "\nPart 2 — crash-mid-saturation timeline at %.0f offered txn/s\n"
      "(crash every %.0f s, healing on). Committed txn per 1 s bucket:\n\n",
      timeline_qps, ToSeconds(timeline_period));
  const TimelineResult tl =
      RunTimeline(timeline_qps, timeline_period, timeline_window);

  // Annotate each second with the control events that fired inside it.
  std::vector<std::string> notes(tl.per_second.size());
  for (const auto& e : tl.events) {
    const double s = ToSeconds(e.at) - ToSeconds(kWarmup);
    if (s < 0 || s >= static_cast<double>(notes.size())) continue;
    std::string& n = notes[static_cast<size_t>(s)];
    if (!n.empty()) n += ", ";
    n += cluster::ToString(e.type);
  }
  for (size_t s = 0; s < tl.per_second.size(); ++s) {
    std::printf("  t=%3zus %6.0f txn/s  %s\n", s, tl.per_second[s],
                notes[s].c_str());
  }
  std::printf(
      "\n%d crash(es) injected; master declared %d dead, recovered %d —\n"
      "no operator calls. First-cycle detection %.0f ms, full recovery\n"
      "%.0f ms (5 s boot + redo). Committed rate %.0f/s pre-crash vs\n"
      "%.0f/s reconverged.\n",
      tl.crashes, tl.declared_dead, tl.recovered, tl.detection_ms,
      tl.recovery_ms, tl.pre_rate, tl.reconverged_rate);

  json.Config("timeline_qps", timeline_qps);
  json.Metric("detection_ms", tl.detection_ms, "ms",
              JsonReporter::kLowerIsBetter);
  json.Metric("recovery_ms", tl.recovery_ms, "ms",
              JsonReporter::kLowerIsBetter);
  json.Metric("pre_crash_rate", tl.pre_rate, "txn/s",
              JsonReporter::kHigherIsBetter);
  json.Metric("reconverged_rate", tl.reconverged_rate, "txn/s",
              JsonReporter::kHigherIsBetter);
  json.Metric(
      "reconvergence_ratio",
      tl.pre_rate > 0 ? tl.reconverged_rate / tl.pre_rate : 0, "ratio",
      JsonReporter::kHigherIsBetter);
}

}  // namespace
}  // namespace wattdb::bench

int main() {
  wattdb::bench::Run();
  return 0;
}
