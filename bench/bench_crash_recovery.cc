// Crash/recovery bench (no paper figure — the src/fault subsystem layered
// on the reproduction). An open-loop KV workload offers a fixed arrival
// rate while node 1 is crashed and restarted through the wattdb::Db facade;
// the run is repeated with progressively longer pre-crash write windows so
// the victim's WAL tail grows. Reports redo/recovery time vs. log-tail
// length and the committed-ops dip at fixed offered load.

#include <cstdio>
#include <vector>

#include "api/db.h"
#include "bench/bench_util.h"

namespace wattdb::bench {
namespace {

constexpr SimTime kWarmup = 2 * kUsPerSec;
constexpr SimTime kCooldown = 5 * kUsPerSec;
constexpr double kOfferedQps = 400.0;

struct RunResult {
  fault::RecoveryReport report;
  double before_rate = 0;  ///< Committed txn/s before the crash.
  double outage_rate = 0;  ///< Committed txn/s from crash to recovery.
  double after_rate = 0;   ///< Committed txn/s once recovered.
};

RunResult RunOnce(SimTime pre_crash_window, JsonReporter* json) {
  auto opened = Db::Open(DbOptions()
                             .WithNodes(4)
                             .WithActiveNodes(2)
                             .WithBufferPages(4000)
                             .WithSeed(13)
                             .WithoutTpccLoad());
  if (!opened.ok()) {
    std::fprintf(stderr, "Db::Open failed: %s\n",
                 opened.status().ToString().c_str());
    std::abort();
  }
  Db& db = **opened;

  workload::KvConfig cfg;
  cfg.arrival_qps = kOfferedQps;  // Open loop: offered load is constant.
  cfg.read_ratio = 0.5;           // Writes grow the victim's WAL tail.
  cfg.batch_size = 8;
  cfg.num_keys = 8192;
  cfg.value_bytes = 100;
  cfg.seed = 13;
  auto kv = db.AddKvWorkload(cfg);
  if (!kv.ok()) {
    std::fprintf(stderr, "AddKvWorkload failed: %s\n",
                 kv.status().ToString().c_str());
    std::abort();
  }
  workload::KvWorkload& driver = **kv;

  driver.Start();
  db.RunFor(kWarmup);
  driver.ResetStats();

  // Pre-crash window: the WAL tail on node 1 grows with every write.
  db.RunFor(pre_crash_window);
  RunResult r;
  r.before_rate =
      static_cast<double>(driver.committed()) / ToSeconds(pre_crash_window);
  // Backlog at steady offered load, right before the crash.
  if (json != nullptr) ReportQueueDepths(json, &db, "precrash");

  const int64_t committed_at_crash = driver.committed();
  const SimTime crash_at = db.Now();
  if (!db.CrashNode(NodeId(1)).ok()) std::abort();
  const StatusOr<fault::RecoveryReport> report =
      db.RestartNodeAndWait(NodeId(1), 120 * kUsPerSec);
  if (!report.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 report.status().ToString().c_str());
    std::abort();
  }
  r.report = *report;
  const double outage_secs = ToSeconds(db.Now() - crash_at);
  r.outage_rate =
      static_cast<double>(driver.committed() - committed_at_crash) /
      outage_secs;

  const int64_t committed_at_recovery = driver.committed();
  db.RunFor(kCooldown);
  r.after_rate =
      static_cast<double>(driver.committed() - committed_at_recovery) /
      ToSeconds(kCooldown);
  driver.Stop();
  return r;
}

void Run() {
  PrintHeader("Crash recovery",
              "node-local redo (LogManager::TailAfter + Node::RedoInto)");
  JsonReporter json("crash_recovery");
  json.Config("offered_qps", kOfferedQps);
  json.Config("read_ratio", 0.5);
  std::printf(
      "Open-loop KV at %.0f offered txn/s (50%% writes, 8 keys/txn, 8192\n"
      "keys on 2 of 4 nodes). Node 1 crashes after a growing write window\n"
      "and restarts immediately: boot (5 s) + log-tail redo.\n\n",
      kOfferedQps);
  std::printf("%-10s %12s %10s %10s %12s %22s\n", "window s", "tail recs",
              "tail KB", "redo ms", "outage ms", "txn/s pre/out/post");

  const std::vector<SimTime> windows =
      SmokeMode()
          ? std::vector<SimTime>{2 * kUsPerSec, 5 * kUsPerSec}
          : std::vector<SimTime>{2 * kUsPerSec, 5 * kUsPerSec, 10 * kUsPerSec,
                                 20 * kUsPerSec};
  for (const SimTime window : windows) {
    const RunResult r =
        RunOnce(window, window == windows.back() ? &json : nullptr);
    std::printf("%-10.0f %12lld %10.1f %10.2f %12.1f %8.0f /%5.0f /%5.0f\n",
                ToSeconds(window),
                static_cast<long long>(r.report.tail_records),
                static_cast<double>(r.report.tail_bytes) / 1024.0,
                static_cast<double>(r.report.redo_us) / kUsPerMs,
                static_cast<double>(r.report.outage_us) / kUsPerMs,
                r.before_rate, r.outage_rate, r.after_rate);
    if (window == windows.back()) {
      json.Config("largest_window_s", ToSeconds(window));
      json.Metric("redo_ms", static_cast<double>(r.report.redo_us) / kUsPerMs,
                  "ms", JsonReporter::kLowerIsBetter);
      json.Metric("outage_ms",
                  static_cast<double>(r.report.outage_us) / kUsPerMs, "ms",
                  JsonReporter::kLowerIsBetter);
      json.Metric("tail_records", static_cast<double>(r.report.tail_records),
                  "records", JsonReporter::kInfo);
      json.Metric("recovered_rate", r.after_rate, "txn/s",
                  JsonReporter::kHigherIsBetter);
      json.Metric("pre_crash_rate", r.before_rate, "txn/s",
                  JsonReporter::kHigherIsBetter);
    }
  }
  std::printf(
      "\nRedo time should grow with the tail; the outage is dominated by\n"
      "the 5 s boot. Committed throughput dips while node 1 is dark (its\n"
      "half of the key space returns Unavailable) and returns to the\n"
      "offered rate after recovery.\n");
}

}  // namespace
}  // namespace wattdb::bench

int main() {
  wattdb::bench::Run();
  return 0;
}
