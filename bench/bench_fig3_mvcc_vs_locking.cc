// Reproduces Fig. 3 of the paper (§3.5): transaction throughput and storage
// overhead of MVCC vs. classical multi-granularity locking (MGL-RX) while
// 50% of a partition's records are being moved to another partition,
// across update-transaction ratios from 0% to 100%.
//
// Expected shape: MVCC sustains higher throughput at every mix — ~15% ahead
// for read-only workloads and up to ~90% for pure writers (readers never
// block behind the mover, writers only briefly) — while holding more
// storage (version chains). Locking needs less extra storage (pending
// change lists) but blocks readers on moving records.

#include <cstdio>

#include "bench/bench_util.h"
#include "partition/logical.h"
#include "workload/micro.h"

namespace wattdb::bench {
namespace {

struct MixResult {
  double ta_per_min = 0;
  double storage_pct = 100.0;  ///< Peak storage relative to the data pages.
};

MixResult RunOne(double update_ratio, tx::CcScheme cc) {
  cluster::ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.initially_active = 2;
  cfg.buffer.capacity_pages = 2000;
  cfg.cc = cc;

  cluster::Cluster c(cfg);
  // MVCC keeps versions for concurrent snapshots; the paper's workload
  // always has readers in flight, so the reclamation horizon trails the
  // move. MGL-RX blocks readers instead and reclaims immediately.
  c.set_auto_vacuum(cc == tx::CcScheme::kMglRx);
  workload::TpccLoadConfig load;
  load.warehouses = 2;
  load.fill = 0.15;
  load.home_nodes = {NodeId(0)};
  workload::TpccDatabase db(&c, load);
  if (!db.Load().ok()) std::abort();

  // Storage baseline: the affected table's bytes (the paper plots the
  // space consumption of the workload's data while it moves).
  size_t base_bytes = 0;
  for (catalog::Partition* p :
       c.catalog().PartitionsOf(db.table(workload::TpccTable::kCustomer))) {
    for (const auto& e : p->top_index().All()) {
      base_bytes += c.segments().Get(e.segment)->DiskBytes();
    }
  }

  workload::MicroConfig mc;
  mc.num_clients = 24;
  mc.update_ratio = update_ratio;
  mc.think_time = 2 * kUsPerMs;
  workload::MicroWorkload micro(&db, mc);
  micro.Start();
  c.StartSampling(nullptr);
  c.RunUntil(5 * kUsPerSec);
  micro.ResetStats();

  // Move 50% of the records (logical record movement between partitions,
  // as in the paper's micro-benchmark) while the workload runs.
  partition::MigrationConfig pc;
  pc.logical_batch_records = 128;
  // Move only the CUSTOMER table — the paper's micro-benchmark measures the
  // workload "while the affected partition is moved".
  pc.only_table = db.table(workload::TpccTable::kCustomer);
  partition::LogicalPartitioning mover(&c, pc);
  bool done = false;
  if (!mover.StartRebalance({NodeId(1)}, 0.5, [&]() { done = true; }).ok()) {
    std::abort();
  }

  size_t peak_overhead = 0;
  const SimTime t0 = c.Now();
  // MVCC version retention: snapshots up to ~1 s old stay readable (the
  // paper's workload always has readers in flight); GC trails by one tick.
  tx::Timestamp lagged_horizon = c.tm().MinActiveTs();
  while (!done && c.Now() < t0 + 600 * kUsPerSec) {
    c.RunUntil(c.Now() + kUsPerSec / 4);
    if (cc == tx::CcScheme::kMvcc) {
      c.tm().versions().Gc(lagged_horizon);
      lagged_horizon = c.tm().MinActiveTs();
    }
    // Retained version storage after reclamation: what the snapshots that
    // are still permitted to read actually pin.
    peak_overhead =
        std::max(peak_overhead, c.tm().versions().OverheadBytes());
  }
  const SimTime move_window = c.Now() - t0;
  micro.Stop();

  MixResult out;
  out.ta_per_min = micro.committed() / ToSeconds(move_window) * 60.0;
  // MVCC: retained version chains (old copies of moved/updated records).
  // MGL-RX: only in-flight pending changes survive (§3.5), reclaimed as
  // soon as each mover batch commits.
  out.storage_pct =
      100.0 * (base_bytes + static_cast<double>(peak_overhead)) / base_bytes;
  return out;
}

}  // namespace
}  // namespace wattdb::bench

int main() {
  using namespace wattdb;
  using namespace wattdb::bench;
  PrintHeader("Figure 3",
              "MVCC vs MGL-RX while moving 50% of records to another partition");

  std::printf("%10s %16s %16s %18s %18s\n", "update_%", "MVCC TA/min",
              "MGL-RX TA/min", "MVCC storage_%", "MGL storage_%");
  for (int pct = 0; pct <= 100; pct += 10) {
    const double ratio = pct / 100.0;
    const MixResult mvcc = RunOne(ratio, tx::CcScheme::kMvcc);
    const MixResult mgl = RunOne(ratio, tx::CcScheme::kMglRx);
    std::printf("%10d %16.0f %16.0f %18.1f %18.1f\n", pct, mvcc.ta_per_min,
                mgl.ta_per_min, mvcc.storage_pct, mgl.storage_pct);
  }
  std::printf(
      "\nPaper (Fig. 3): MVCC +15%% (read-only) to +90%% (write-heavy)\n"
      "throughput during the move; MVCC needs more storage for versions.\n");
  return 0;
}
