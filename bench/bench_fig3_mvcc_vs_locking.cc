// Reproduces Fig. 3 of the paper (§3.5): transaction throughput and storage
// overhead of MVCC vs. classical multi-granularity locking (MGL-RX) while
// 50% of a partition's records are being moved to another partition,
// across update-transaction ratios from 0% to 100%.
//
// Expected shape: MVCC sustains higher throughput at every mix — ~15% ahead
// for read-only workloads and up to ~90% for pure writers (readers never
// block behind the mover, writers only briefly) — while holding more
// storage (version chains). Locking needs less extra storage (pending
// change lists) but blocks readers on moving records.

#include <cstdio>

#include "bench/bench_util.h"

namespace wattdb::bench {
namespace {

struct MixResult {
  double ta_per_min = 0;
  double storage_pct = 100.0;  ///< Peak storage relative to the data pages.
};

MixResult RunOne(double update_ratio, tx::CcScheme cc) {
  // MVCC keeps versions for concurrent snapshots; the paper's workload
  // always has readers in flight, so the reclamation horizon trails the
  // move (manual lagged GC below). MGL-RX blocks readers instead and
  // reclaims immediately (auto-vacuum on).
  DbOptions options = DbOptions()
                          .WithNodes(2)
                          .WithActiveNodes(2)
                          .WithBufferPages(2000)
                          .WithCc(cc)
                          .WithWarehouses(2)
                          .WithFill(SmokeMode() ? 0.08 : 0.15)
                          .WithHomeNodes({NodeId(0)})
                          .WithScheme("logical")
                          .WithLogicalBatchRecords(128)
                          .WithMigrateOnly(workload::TpccTable::kCustomer)
                          .WithAutoVacuum(cc == tx::CcScheme::kMglRx);
  auto opened = Db::Open(options);
  if (!opened.ok()) std::abort();
  Db& db = **opened;
  cluster::Cluster& c = db.cluster();

  // Storage baseline: the affected table's bytes (the paper plots the
  // space consumption of the workload's data while it moves).
  size_t base_bytes = 0;
  for (catalog::Partition* p :
       c.catalog().PartitionsOf(db.table(workload::TpccTable::kCustomer))) {
    for (const auto& e : p->top_index().All()) {
      base_bytes += c.segments().Get(e.segment)->DiskBytes();
    }
  }

  workload::MicroConfig mc;
  mc.num_clients = SmokeMode() ? 12 : 24;
  mc.update_ratio = update_ratio;
  mc.think_time = 2 * kUsPerMs;
  workload::MicroWorkload& micro = db.AddMicroWorkload(mc);
  micro.Start();
  db.RunUntil(5 * kUsPerSec);
  micro.ResetStats();

  // Move 50% of the records (logical record movement between partitions,
  // as in the paper's micro-benchmark — only the CUSTOMER table, see
  // WithMigrateOnly above) while the workload runs.
  bool done = false;
  if (!db.TriggerRebalance({NodeId(1)}, 0.5, [&]() { done = true; }).ok()) {
    std::abort();
  }

  size_t peak_overhead = 0;
  const SimTime t0 = db.Now();
  // MVCC version retention: snapshots up to ~1 s old stay readable (the
  // paper's workload always has readers in flight); GC trails by one tick.
  tx::Timestamp lagged_horizon = c.tm().MinActiveTs();
  while (!done && db.Now() < t0 + 600 * kUsPerSec) {
    db.RunFor(kUsPerSec / 4);
    if (cc == tx::CcScheme::kMvcc) {
      c.tm().versions().Gc(lagged_horizon);
      lagged_horizon = c.tm().MinActiveTs();
    }
    // Retained version storage after reclamation: what the snapshots that
    // are still permitted to read actually pin.
    peak_overhead =
        std::max(peak_overhead, c.tm().versions().OverheadBytes());
  }
  const SimTime move_window = db.Now() - t0;
  micro.Stop();

  MixResult out;
  out.ta_per_min = micro.committed() / ToSeconds(move_window) * 60.0;
  // MVCC: retained version chains (old copies of moved/updated records).
  // MGL-RX: only in-flight pending changes survive (§3.5), reclaimed as
  // soon as each mover batch commits.
  out.storage_pct =
      100.0 * (base_bytes + static_cast<double>(peak_overhead)) / base_bytes;
  return out;
}

}  // namespace
}  // namespace wattdb::bench

int main() {
  using namespace wattdb;
  using namespace wattdb::bench;
  PrintHeader("Figure 3",
              "MVCC vs MGL-RX while moving 50% of records to another partition");

  JsonReporter json("fig3_mvcc_vs_locking");
  std::printf("%10s %16s %16s %18s %18s\n", "update_%", "MVCC TA/min",
              "MGL-RX TA/min", "MVCC storage_%", "MGL storage_%");
  const int step = SmokeMode() ? 50 : 10;
  json.Config("update_pct_step", step);
  for (int pct = 0; pct <= 100; pct += step) {
    const double ratio = pct / 100.0;
    const MixResult mvcc = RunOne(ratio, tx::CcScheme::kMvcc);
    const MixResult mgl = RunOne(ratio, tx::CcScheme::kMglRx);
    std::printf("%10d %16.0f %16.0f %18.1f %18.1f\n", pct, mvcc.ta_per_min,
                mgl.ta_per_min, mvcc.storage_pct, mgl.storage_pct);
    if (pct == 50) {
      json.Metric("mvcc_ta_per_min_50pct", mvcc.ta_per_min, "txn/min",
                  JsonReporter::kHigherIsBetter);
      json.Metric("mgl_ta_per_min_50pct", mgl.ta_per_min, "txn/min",
                  JsonReporter::kHigherIsBetter);
      json.Metric("mvcc_storage_pct_50pct", mvcc.storage_pct, "%",
                  JsonReporter::kInfo);
    }
  }
  std::printf(
      "\nPaper (Fig. 3): MVCC +15%% (read-only) to +90%% (write-heavy)\n"
      "throughput during the move; MVCC needs more storage for versions.\n");
  return 0;
}
