// Batched reads/upserts spanning an in-flight migration (no paper figure —
// a ROADMAP candidate layered on the §4.3 two-pointer protocol). While a
// logical rebalance drains the CUSTOMER table record by record, owner-
// grouped MultiGet/MultiPut batches of growing size sweep the moving key
// range. Each key that misses its primary location mid-move pays an
// individual straggler retry at the secondary — this bench reports that
// straggler-retry cost curve vs. batch size.

#include <cstdio>
#include <vector>

#include "api/db.h"
#include "bench/bench_util.h"
#include "workload/tpcc_schema.h"

namespace wattdb::bench {
namespace {

struct BatchResult {
  int64_t batches = 0;
  int64_t key_ops = 0;
  int64_t owner_round_trips = 0;
  int64_t straggler_retries = 0;
  double mean_latency_ms = 0;
  SimTime migration_us = 0;
};

BatchResult RunBatchSize(int batch_size) {
  auto opened =
      Db::Open(DbOptions()
                   .WithNodes(4)
                   .WithActiveNodes(2)
                   .WithBufferPages(2000)
                   .WithWarehouses(2)
                   .WithFill(0.05)
                   .WithHomeNodes({NodeId(0), NodeId(1)})
                   .WithScheme("logical")  // Record-wise: widest §4.3 window.
                   .WithLogicalBatchRecords(32)
                   .WithCostScale(8.0)  // Stretch the move; wider window.
                   .WithMigrateOnly(workload::TpccTable::kCustomer)
                   .WithSeed(3));
  if (!opened.ok()) {
    std::fprintf(stderr, "Db::Open failed: %s\n",
                 opened.status().ToString().c_str());
    std::abort();
  }
  Db& db = **opened;
  Session session = db.OpenSession();
  const TableId customer = db.table(workload::TpccTable::kCustomer);
  const int64_t per_district = db.tpcc()->customers_per_district();

  // Both warehouses' customers: the rebalance planner interleaves which
  // segments leave, so the sweep must cover the whole table to keep
  // landing on moving ranges.
  std::vector<Key> keys;
  for (int64_t w = 1; w <= 2; ++w) {
    for (int64_t c = 1; c <= per_district; ++c) {
      keys.push_back(workload::TpccKeys::Customer(w, 1, c));
    }
  }

  bool done = false;
  if (!db.TriggerRebalance({NodeId(2), NodeId(3)}, 0.5, [&]() { done = true; })
           .ok()) {
    std::abort();
  }

  BatchResult r;
  double latency_sum_ms = 0;
  Rng rng(7);  // Same sampling distribution for every batch size.
  const SimTime t0 = db.Now();
  while (!done && db.Now() < t0 + 600 * kUsPerSec) {
    db.RunFor(kUsPerSec / 10);
    // One read batch and (every fourth round) one upsert batch, sampling
    // uniformly so batches keep landing on moving ranges.
    std::vector<Key> batch;
    batch.reserve(static_cast<size_t>(batch_size));
    for (int i = 0; i < batch_size; ++i) {
      batch.push_back(
          keys[rng.UniformInt(0, static_cast<int64_t>(keys.size()) - 1)]);
    }
    StatusOr<MultiGetResult> got = session.MultiGet(customer, batch);
    if (!got.ok()) std::abort();
    r.key_ops += static_cast<int64_t>(batch.size());
    r.owner_round_trips += got->stats.owner_round_trips;
    r.straggler_retries += got->stats.straggler_retries;
    latency_sum_ms += static_cast<double>(got->latency_us) / kUsPerMs;
    ++r.batches;
    if (r.batches % 4 == 0) {
      std::vector<KeyValue> kvs;
      for (Key k : batch) {
        kvs.push_back(KeyValue{k, std::vector<uint8_t>(64, 0x42)});
      }
      StatusOr<MultiPutResult> put = session.MultiPut(customer, kvs);
      if (!put.ok()) std::abort();
      r.key_ops += static_cast<int64_t>(kvs.size());
      r.owner_round_trips += put->stats.owner_round_trips;
      r.straggler_retries += put->stats.straggler_retries;
      latency_sum_ms += static_cast<double>(put->latency_us) / kUsPerMs;
      ++r.batches;
    }
  }
  r.migration_us = db.Now() - t0;
  r.mean_latency_ms =
      r.batches > 0 ? latency_sum_ms / static_cast<double>(r.batches) : 0;
  return r;
}

void Run() {
  PrintHeader("Migration stragglers",
              "MultiGet/MultiPut straggler retries vs. batch size");
  std::printf(
      "Logical rebalance of CUSTOMER (64-record batches) from 2 onto 2 more\n"
      "nodes; owner-grouped batches sweep the moving district mid-flight.\n"
      "Stragglers are §4.3 second-location retries, each paying its own\n"
      "round trip on top of the batch's per-owner hop.\n\n");
  JsonReporter json("migration_stragglers");
  std::printf("%-8s %10s %10s %10s %14s %14s %12s\n", "batch", "batches",
              "key-ops", "rt/batch", "stragglers", "strag/1k ops",
              "mean lat ms");

  const std::vector<int> batch_sizes =
      SmokeMode() ? std::vector<int>{1, 8, 32}
                  : std::vector<int>{1, 2, 4, 8, 16, 32};
  for (const int batch_size : batch_sizes) {
    const BatchResult r = RunBatchSize(batch_size);
    const double per_batch =
        r.batches > 0 ? static_cast<double>(r.owner_round_trips) /
                            static_cast<double>(r.batches)
                      : 0;
    const double per_1k =
        r.key_ops > 0 ? 1000.0 * static_cast<double>(r.straggler_retries) /
                            static_cast<double>(r.key_ops)
                      : 0;
    std::printf("%-8d %10lld %10lld %10.2f %14lld %14.2f %12.3f\n", batch_size,
                static_cast<long long>(r.batches),
                static_cast<long long>(r.key_ops), per_batch,
                static_cast<long long>(r.straggler_retries), per_1k,
                r.mean_latency_ms);
    if (batch_size == 8) {
      json.Metric("rt_per_batch_8", per_batch, "round-trips",
                  JsonReporter::kLowerIsBetter);
      json.Metric("stragglers_per_1k_ops_8", per_1k, "retries",
                  JsonReporter::kLowerIsBetter);
      json.Metric("mean_latency_ms_8", r.mean_latency_ms, "ms",
                  JsonReporter::kLowerIsBetter);
    }
  }
  std::printf(
      "\nLarger batches amortize owner round trips but expose more keys per\n"
      "transaction to the moving range — the straggler count per 1k key-ops\n"
      "is the §4.3 retry tax the batch pipeline pays mid-rebalance.\n");
}

}  // namespace
}  // namespace wattdb::bench

int main() {
  wattdb::bench::Run();
  return 0;
}
