// Tests for the wattdb::Db facade: construction per registered scheme,
// option validation, the unknown-scheme error path, registry extensibility,
// the RAII Session/TxnHandle commit/abort semantics (including moved-from
// guards), the async/batched data plane — futures resolving in sim-time
// order, owner-grouped MultiGet/MultiPut hop charging, batches landing
// mid-migration that return every key exactly once via the §4.3 two-pointer
// retry — and the WorkloadDriver attachment interface.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "api/db.h"
#include "api/scheme_registry.h"
#include "workload/kv.h"
#include "workload/tpcc_schema.h"

namespace wattdb {
namespace {

DbOptions SmallOptions() {
  return DbOptions()
      .WithNodes(4)
      .WithActiveNodes(2)
      .WithBufferPages(2000)
      .WithWarehouses(2)
      .WithFill(0.05)
      .WithHomeNodes({NodeId(0), NodeId(1)});
}

TEST(SchemeRegistry, BuiltinsAreRegistered) {
  auto& reg = SchemeRegistry::Global();
  EXPECT_TRUE(reg.Contains("physical"));
  EXPECT_TRUE(reg.Contains("logical"));
  EXPECT_TRUE(reg.Contains("physiological"));
  EXPECT_FALSE(reg.Contains("hyper-graph"));
  EXPECT_GE(reg.Names().size(), 3u);
}

TEST(SchemeRegistry, RejectsDuplicatesAndNulls) {
  auto& reg = SchemeRegistry::Global();
  EXPECT_TRUE(reg.Register("physiological", nullptr).IsInvalidArgument());
  const Status dup = reg.Register(
      "physiological",
      [](cluster::Cluster* c, const partition::MigrationConfig& mc)
          -> std::unique_ptr<cluster::Repartitioner> {
        (void)c;
        (void)mc;
        return nullptr;
      });
  EXPECT_TRUE(dup.IsAlreadyExists());
}

TEST(Db, OpensWithEachBuiltinScheme) {
  for (const std::string name : {"physical", "logical", "physiological"}) {
    auto db = Db::Open(SmallOptions().WithScheme(name));
    ASSERT_TRUE(db.ok()) << name << ": " << db.status().ToString();
    EXPECT_EQ((*db)->scheme().name(), name);
    EXPECT_GT((*db)->tpcc()->rows_loaded(), 1000);
    EXPECT_TRUE((*db)->cluster().catalog().CheckInvariants());
  }
}

TEST(Db, UnknownSchemeFailsWithRegisteredNames) {
  auto db = Db::Open(SmallOptions().WithScheme("hash-ring"));
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsNotFound());
  // The error teaches the caller what would have worked.
  EXPECT_NE(db.status().message().find("hash-ring"), std::string::npos);
  EXPECT_NE(db.status().message().find("physiological"), std::string::npos);
}

/// A scheme added from *outside* src/api, exactly as downstream code would:
/// subclass the abstract Repartitioner and register a factory.
class NoopScheme : public cluster::Repartitioner {
 public:
  std::string name() const override { return "noop"; }
  const cluster::RebalanceStats& stats() const override { return stats_; }
  Status StartRebalance(const std::vector<NodeId>& targets, double fraction,
                        std::function<void()> done) override {
    (void)targets;
    (void)fraction;
    ++starts_;
    if (done) done();
    return Status::OK();
  }
  Status Drain(NodeId victim, std::function<void()> done) override {
    (void)victim;
    if (done) done();
    return Status::OK();
  }
  bool InProgress() const override { return false; }

  int starts_ = 0;

 private:
  cluster::RebalanceStats stats_;
};

TEST(Db, CustomSchemeViaRegistry) {
  static NoopScheme* last_created = nullptr;
  const Status reg = SchemeRegistry::Global().Register(
      "noop", [](cluster::Cluster* c, const partition::MigrationConfig& mc)
                  -> std::unique_ptr<cluster::Repartitioner> {
        (void)c;
        (void)mc;
        auto scheme = std::make_unique<NoopScheme>();
        last_created = scheme.get();
        return scheme;
      });
  // A second test-process-wide registration attempt is AlreadyExists; the
  // first must succeed.
  ASSERT_TRUE(reg.ok() || reg.IsAlreadyExists());

  auto db = Db::Open(SmallOptions().WithScheme("noop"));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->scheme().name(), "noop");
  ASSERT_NE(last_created, nullptr);
  bool done = false;
  EXPECT_TRUE(
      (*db)->TriggerRebalance({NodeId(1)}, 0.5, [&]() { done = true; }).ok());
  EXPECT_TRUE(done);
  EXPECT_EQ(last_created->starts_, 1);
}

TEST(Session, CommitMakesWritesVisible) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  Session session = db.OpenSession();
  const TableId customer = db.table(workload::TpccTable::kCustomer);
  const Key key = workload::TpccKeys::Customer(1, 1, 1);

  StatusOr<storage::Record> before = session.Get(customer, key);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  std::vector<uint8_t> payload = before->payload;
  workload::PutF64(&payload, workload::CustomerFields::kBalance, 4242.5);
  {
    TxnHandle txn = session.Begin();
    ASSERT_TRUE(txn.active());
    ASSERT_TRUE(txn.Update(customer, key, payload).ok());
    ASSERT_TRUE(txn.Commit().ok());
    EXPECT_FALSE(txn.active());
    // Double-commit is an error, not a crash.
    EXPECT_TRUE(txn.Commit().IsInvalidArgument());
  }

  StatusOr<storage::Record> after = session.Get(customer, key);
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(
      workload::GetF64(after->payload, workload::CustomerFields::kBalance),
      4242.5);
}

TEST(Session, AbortAndRaiiRollBack) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  Session session = db.OpenSession();
  const TableId customer = db.table(workload::TpccTable::kCustomer);
  const Key key = workload::TpccKeys::Customer(1, 1, 2);

  const double original = workload::GetF64(
      session.Get(customer, key)->payload, workload::CustomerFields::kBalance);

  std::vector<uint8_t> payload = session.Get(customer, key)->payload;
  workload::PutF64(&payload, workload::CustomerFields::kBalance, -1.0);

  {  // Explicit abort.
    TxnHandle txn = session.Begin();
    ASSERT_TRUE(txn.Update(customer, key, payload).ok());
    txn.Abort();
    EXPECT_FALSE(txn.active());
  }
  {  // Dropped without commit: the destructor must abort.
    TxnHandle txn = session.Begin();
    ASSERT_TRUE(txn.Update(customer, key, payload).ok());
  }
  EXPECT_DOUBLE_EQ(
      workload::GetF64(session.Get(customer, key)->payload,
                       workload::CustomerFields::kBalance),
      original);
}

TEST(Session, InsertScanDelete) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  Session session = db.OpenSession();
  const TableId customer = db.table(workload::TpccTable::kCustomer);
  // A key above every loaded customer of (w=1, d=1): fill=0.05 materializes
  // far fewer than 3000 customers per district.
  const Key fresh = workload::TpccKeys::Customer(1, 1, 2999);

  EXPECT_TRUE(session.Get(customer, fresh).status().IsNotFound());

  TxnHandle txn = session.Begin();
  const std::vector<uint8_t> payload(64, 0xAB);
  ASSERT_TRUE(txn.Insert(customer, fresh, payload).ok());
  EXPECT_TRUE(txn.Insert(customer, fresh, payload).IsAlreadyExists());
  ASSERT_TRUE(txn.Commit().ok());

  StatusOr<storage::Record> rec = session.Get(customer, fresh);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->payload, payload);

  // The inserted key is visible to a range scan.
  bool seen = false;
  const StatusOr<int64_t> visited = session.Scan(
      customer, KeyRange{fresh, fresh + 1}, [&](const storage::Record& r) {
        seen = r.key == fresh;
        return true;
      });
  ASSERT_TRUE(visited.ok());
  EXPECT_EQ(*visited, 1);
  EXPECT_TRUE(seen);

  TxnHandle del = session.Begin();
  ASSERT_TRUE(del.Delete(customer, fresh).ok());
  ASSERT_TRUE(del.Commit().ok());
  EXPECT_TRUE(session.Get(customer, fresh).status().IsNotFound());
}

TEST(Session, ScanEarlyStopHaltsAcrossRoutes) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  Session session = db.OpenSession();
  const TableId customer = db.table(workload::TpccTable::kCustomer);
  // CUSTOMER spans two routes (warehouse 1 on node 0, warehouse 2 on
  // node 1); a callback stopping after the first record must halt the
  // whole scan, not just the first route.
  ASSERT_GE(db.Routes(customer).size(), 2u);
  const StatusOr<int64_t> visited =
      session.Scan(customer, KeyRange{kMinKey, kMaxKey},
                   [](const storage::Record&) { return false; });
  ASSERT_TRUE(visited.ok());
  EXPECT_EQ(*visited, 1);
}

TEST(Session, GetSucceedsMidMigrationViaTwoPointerRetry) {
  // Logical moves delete records at the source and re-insert them at the
  // target batch by batch — the window where only the two-pointer retry
  // finds a moving record (§4.3).
  auto opened = Db::Open(SmallOptions()
                             .WithScheme("logical")
                             .WithLogicalBatchRecords(64)
                             .WithMigrateOnly(workload::TpccTable::kCustomer));
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  Session session = db.OpenSession();
  const TableId customer = db.table(workload::TpccTable::kCustomer);
  const int64_t per_district = db.tpcc()->customers_per_district();

  bool done = false;
  ASSERT_TRUE(
      db.TriggerRebalance({NodeId(2), NodeId(3)}, 0.5, [&]() { done = true; })
          .ok());

  // Probe every customer of warehouse 1 / district 1 repeatedly while the
  // move is in flight. Every read must succeed: primary, forwarded, or
  // secondary location.
  int64_t reads = 0;
  const SimTime t0 = db.Now();
  while (!done && db.Now() < t0 + 600 * kUsPerSec) {
    db.RunFor(kUsPerSec / 2);
    for (int64_t c = 1; c <= per_district; ++c) {
      const Key key = workload::TpccKeys::Customer(1, 1, c);
      const StatusOr<storage::Record> rec = session.Get(customer, key);
      ASSERT_TRUE(rec.ok()) << "customer " << c << " unreadable mid-move: "
                            << rec.status().ToString();
      ++reads;
    }
  }
  EXPECT_TRUE(done) << "migration did not finish";
  EXPECT_GT(db.scheme().stats().records_moved, 0);
  EXPECT_GT(reads, 0);
  EXPECT_TRUE(db.cluster().catalog().CheckInvariants());

  // After the move the same keys still resolve (ownership transferred).
  for (int64_t c = 1; c <= per_district; ++c) {
    EXPECT_TRUE(
        session.Get(customer, workload::TpccKeys::Customer(1, 1, c)).ok());
  }
}

TEST(Db, RebalanceAndWaitReportsDuration) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  const StatusOr<SimTime> elapsed =
      db.RebalanceAndWait({NodeId(2), NodeId(3)}, 0.5, 600 * kUsPerSec);
  ASSERT_TRUE(elapsed.ok()) << elapsed.status().ToString();
  EXPECT_GT(*elapsed, 0);
  EXPECT_GT(db.scheme().stats().segments_moved, 0);
  EXPECT_FALSE(db.cluster().catalog().PartitionsOwnedBy(NodeId(2)).empty());
}

TEST(Db, RebalanceRejectsBadArgumentsSynchronously) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  // An out-of-range target is a clean error, not a crash.
  EXPECT_TRUE(db.TriggerRebalance({NodeId(99)}, 0.5).IsNotFound());
  // A bad fraction surfaces the validation error immediately instead of a
  // TimedOut after max_wait of simulation — even when the target is in
  // standby and would otherwise boot before the scheme ever checked it.
  const StatusOr<SimTime> r = db.RebalanceAndWait({NodeId(2)}, 1.5);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
  EXPECT_TRUE(db.AttachHelpers({NodeId(42)}, {NodeId(0)}, 100).IsNotFound());
}

TEST(DbOptions, OpenValidatesTopologyUpFront) {
  // Non-positive node count.
  auto no_nodes = Db::Open(SmallOptions().WithNodes(0));
  ASSERT_FALSE(no_nodes.ok());
  EXPECT_TRUE(no_nodes.status().IsInvalidArgument());
  EXPECT_NE(no_nodes.status().message().find("WithNodes(0)"),
            std::string::npos);

  // More active nodes than nodes.
  auto too_active = Db::Open(SmallOptions().WithNodes(4).WithActiveNodes(5));
  ASSERT_FALSE(too_active.ok());
  EXPECT_TRUE(too_active.status().IsInvalidArgument());
  EXPECT_NE(too_active.status().message().find("WithActiveNodes(5)"),
            std::string::npos);

  // Non-positive active count.
  auto zero_active = Db::Open(SmallOptions().WithActiveNodes(0));
  ASSERT_FALSE(zero_active.ok());
  EXPECT_TRUE(zero_active.status().IsInvalidArgument());

  // Empty scheme name gets its own message, not an unknown-scheme lookup.
  auto no_scheme = Db::Open(SmallOptions().WithScheme(""));
  ASSERT_FALSE(no_scheme.ok());
  EXPECT_TRUE(no_scheme.status().IsInvalidArgument());
  EXPECT_NE(no_scheme.status().message().find("empty"), std::string::npos);

  // A home node outside the cluster fails before the loader trips on it.
  auto bad_home = Db::Open(SmallOptions().WithHomeNodes({NodeId(7)}));
  ASSERT_FALSE(bad_home.ok());
  EXPECT_TRUE(bad_home.status().IsInvalidArgument());
}

TEST(Session, MovedFromHandlesReturnFailedPrecondition) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  const TableId customer = db.table(workload::TpccTable::kCustomer);
  const Key key = workload::TpccKeys::Customer(1, 1, 1);

  Session alive = db.OpenSession();
  Session moved = std::move(alive);

  // The moved-from session fails cleanly on every entry point.
  EXPECT_TRUE(alive.Get(customer, key).status().IsFailedPrecondition());
  EXPECT_TRUE(alive.Put(customer, key, {1, 2, 3}).IsFailedPrecondition());
  EXPECT_TRUE(alive.MultiGet(customer, {key}).status().IsFailedPrecondition());
  EXPECT_TRUE(alive.MultiPut(customer, {KeyValue{key, {1}}})
                  .status()
                  .IsFailedPrecondition());
  Future<StatusOr<storage::Record>> f = alive.GetAsync(customer, key);
  ASSERT_TRUE(f.resolved());
  EXPECT_TRUE(f.value().status().IsFailedPrecondition());
  TxnHandle inert = alive.Begin();
  EXPECT_FALSE(inert.active());
  EXPECT_TRUE(inert.Get(customer, key).status().IsFailedPrecondition());

  // Moved-from transaction handles are equally inert; the destination works.
  TxnHandle txn = moved.Begin();
  TxnHandle stolen = std::move(txn);
  EXPECT_TRUE(txn.Get(customer, key).status().IsFailedPrecondition());
  EXPECT_TRUE(txn.Commit().IsFailedPrecondition());
  EXPECT_TRUE(stolen.Get(customer, key).ok());
  EXPECT_TRUE(stolen.Commit().ok());
  // A committed (but not moved-from) handle keeps the historical error.
  EXPECT_TRUE(stolen.Commit().IsInvalidArgument());
}

TEST(Session, FuturesResolveInSimTimeOrder) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  Session session = db.OpenSession();
  const TableId customer = db.table(workload::TpccTable::kCustomer);
  // Warehouse 1 lives on the master (no network hop), warehouse 2 on
  // node 1 (a master<->owner round trip): the remote read finishes later in
  // simulated time even when issued first.
  const Key remote_key = workload::TpccKeys::Customer(2, 1, 1);
  const Key local_key = workload::TpccKeys::Customer(1, 1, 1);

  Future<StatusOr<storage::Record>> remote =
      session.GetAsync(customer, remote_key);
  Future<StatusOr<storage::Record>> local =
      session.GetAsync(customer, local_key);
  ASSERT_TRUE(remote.resolved());
  ASSERT_TRUE(local.resolved());
  ASSERT_TRUE(remote.value().ok());
  ASSERT_TRUE(local.value().ok());
  EXPECT_LT(local.ready_at(), remote.ready_at());

  // Continuations fire through the event loop in sim-time order, not in
  // issue order.
  std::vector<std::string> order;
  remote.Then([&](const StatusOr<storage::Record>&) {
    order.push_back("remote");
  });
  local.Then([&](const StatusOr<storage::Record>&) {
    order.push_back("local");
  });
  EXPECT_TRUE(order.empty());  // Nothing fires before the loop runs.
  db.RunFor(10 * kUsPerSec);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "local");
  EXPECT_EQ(order[1], "remote");
}

TEST(Session, MultiGetMatchesPerOpGetsAndChargesPerOwner) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  Session session = db.OpenSession();
  const TableId customer = db.table(workload::TpccTable::kCustomer);

  // Four keys on the master (warehouse 1), four on node 1 (warehouse 2).
  std::vector<Key> keys;
  for (int64_t c = 1; c <= 4; ++c) {
    keys.push_back(workload::TpccKeys::Customer(1, 1, c));
    keys.push_back(workload::TpccKeys::Customer(2, 1, c));
  }

  const int64_t msgs_before_batch = db.cluster().network().messages_sent();
  StatusOr<MultiGetResult> batch = session.MultiGet(customer, keys);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  const int64_t batch_msgs =
      db.cluster().network().messages_sent() - msgs_before_batch;

  // One owner group is the master (free), one is node 1: exactly one round
  // trip (request + response) for the whole batch.
  EXPECT_EQ(batch->stats.owner_round_trips, 1);
  EXPECT_EQ(batch->stats.straggler_retries, 0);
  EXPECT_EQ(batch_msgs, 2);

  // Per-op equivalent pays one round trip per non-master key.
  const int64_t msgs_before_per_op = db.cluster().network().messages_sent();
  ASSERT_EQ(batch->records.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    StatusOr<storage::Record> rec = session.Get(customer, keys[i]);
    ASSERT_TRUE(rec.ok());
    ASSERT_TRUE(batch->records[i].ok());
    EXPECT_EQ(rec->key, batch->records[i]->key);
    EXPECT_EQ(rec->payload, batch->records[i]->payload);
  }
  const int64_t per_op_msgs =
      db.cluster().network().messages_sent() - msgs_before_per_op;
  EXPECT_EQ(per_op_msgs, 2 * 4);
  EXPECT_EQ(batch->hits(), static_cast<int64_t>(keys.size()));
}

TEST(Session, MultiPutUpsertsAndReadsBack) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  Session session = db.OpenSession();
  const TableId customer = db.table(workload::TpccTable::kCustomer);

  // Fresh keys above the materialized cardinality: the first MultiPut runs
  // the insert tail of the upsert, the second the update path.
  std::vector<KeyValue> kvs;
  for (int64_t c = 0; c < 6; ++c) {
    const int64_t w = 1 + (c % 2);
    kvs.push_back(KeyValue{workload::TpccKeys::Customer(w, 2, 2900 + c),
                           std::vector<uint8_t>(64, 0x5A)});
  }
  StatusOr<MultiPutResult> first = session.MultiPut(customer, kvs);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->oks(), static_cast<int64_t>(kvs.size()));
  EXPECT_EQ(first->stats.inserts, static_cast<int>(kvs.size()));
  EXPECT_EQ(first->stats.owner_round_trips, 1);  // w=2 group only.

  for (auto& kv : kvs) kv.payload.assign(64, 0xC3);
  StatusOr<MultiPutResult> second = session.MultiPut(customer, kvs);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->oks(), static_cast<int64_t>(kvs.size()));
  EXPECT_EQ(second->stats.inserts, 0);

  std::vector<Key> keys;
  for (const KeyValue& kv : kvs) keys.push_back(kv.key);
  StatusOr<MultiGetResult> read = session.MultiGet(customer, keys);
  ASSERT_TRUE(read.ok());
  for (const auto& rec : read->records) {
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->payload, std::vector<uint8_t>(64, 0xC3));
  }
}

TEST(Session, MultiGetMidMigrationReturnsEveryKeyExactlyOnce) {
  // Logical moves delete records at the source and re-insert them at the
  // target batch by batch — the window where only the §4.3 two-pointer
  // retry finds a moving record. A batch spanning the moving partition must
  // return every key exactly once and keep charging hops per owner.
  auto opened = Db::Open(SmallOptions()
                             .WithScheme("logical")
                             .WithLogicalBatchRecords(64)
                             .WithMigrateOnly(workload::TpccTable::kCustomer));
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  Session session = db.OpenSession();
  const TableId customer = db.table(workload::TpccTable::kCustomer);
  const int64_t per_district = db.tpcc()->customers_per_district();

  std::vector<Key> keys;
  for (int64_t c = 1; c <= per_district; ++c) {
    keys.push_back(workload::TpccKeys::Customer(1, 1, c));
  }

  bool done = false;
  ASSERT_TRUE(
      db.TriggerRebalance({NodeId(2), NodeId(3)}, 0.5, [&]() { done = true; })
          .ok());

  int64_t batches = 0;
  int64_t stragglers = 0;
  const SimTime t0 = db.Now();
  while (!done && db.Now() < t0 + 600 * kUsPerSec) {
    db.RunFor(kUsPerSec / 2);
    StatusOr<MultiGetResult> batch = session.MultiGet(customer, keys);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->records.size(), keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_TRUE(batch->records[i].ok())
          << "key " << keys[i]
          << " unreadable mid-move: " << batch->records[i].status().ToString();
      // Exactly once: slot i answers key i, no duplicates or substitutes.
      EXPECT_EQ(batch->records[i]->key, keys[i]);
    }
    // Hops are charged per owner group (+ per-key straggler retries), never
    // per key: even mid-move a batch touches at most every active node.
    EXPECT_LE(batch->stats.owner_round_trips, db.ActiveNodeCount());
    EXPECT_LT(batch->stats.owner_round_trips + batch->stats.straggler_retries,
              static_cast<int>(keys.size()));
    stragglers += batch->stats.straggler_retries;
    ++batches;
  }
  EXPECT_TRUE(done) << "migration did not finish";
  EXPECT_GT(batches, 0);
  EXPECT_GT(db.scheme().stats().records_moved, 0);
  EXPECT_TRUE(db.cluster().catalog().CheckInvariants());

  // After the move the same batch still resolves fully at the new owners.
  StatusOr<MultiGetResult> after = session.MultiGet(customer, keys);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->hits(), static_cast<int64_t>(keys.size()));
  // The §4.3 retry machinery observed at least one straggler across the
  // move, or the move finished without a batch landing mid-window; both are
  // legal, but record the count so regressions in retry charging show up.
  EXPECT_GE(stragglers, 0);
}

TEST(Fault, CrashAndRestartValidateArguments) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;

  EXPECT_TRUE(db.CrashNode(NodeId(0)).IsInvalidArgument());  // The master.
  EXPECT_TRUE(db.CrashNode(NodeId(99)).IsNotFound());
  EXPECT_TRUE(db.CrashNode(NodeId(2)).IsFailedPrecondition());  // Standby.
  EXPECT_TRUE(db.RestartNode(NodeId(1)).IsFailedPrecondition());  // Active.

  ASSERT_TRUE(db.CrashNode(NodeId(1)).ok());
  EXPECT_TRUE(db.recovery().IsDown(NodeId(1)));
  EXPECT_TRUE(db.CrashNode(NodeId(1)).IsFailedPrecondition());  // Down.

  const StatusOr<fault::RecoveryReport> report =
      db.RestartNodeAndWait(NodeId(1));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(db.recovery().IsDown(NodeId(1)));
  EXPECT_EQ(db.recovery().crashes(), 1);
  EXPECT_EQ(db.recovery().recoveries(), 1);
}

TEST(DbOptions, ValidatesFaultPlan) {
  // A crash target outside the cluster fails Open up front.
  auto bad_node = Db::Open(SmallOptions().WithFaultPlan(
      fault::FaultPlan().CrashAt(NodeId(9), kUsPerSec)));
  ASSERT_FALSE(bad_node.ok());
  EXPECT_TRUE(bad_node.status().IsInvalidArgument());

  // The master is never a legal crash target.
  auto master = Db::Open(SmallOptions().WithFaultPlan(
      fault::FaultPlan().CrashAt(NodeId(0), kUsPerSec)));
  ASSERT_FALSE(master.ok());
  EXPECT_TRUE(master.status().IsInvalidArgument());
  EXPECT_NE(master.status().message().find("master"), std::string::npos);

  // Progress fractions outside [0, 1] are rejected (a typo'd negative
  // fraction must not degrade into a crash at t=0).
  auto bad_frac = Db::Open(SmallOptions().WithFaultPlan(
      fault::FaultPlan().CrashAtMigrationProgress(NodeId(1), 1.5)));
  ASSERT_FALSE(bad_frac.ok());
  EXPECT_TRUE(bad_frac.status().IsInvalidArgument());
  auto neg_frac = Db::Open(SmallOptions().WithFaultPlan(
      fault::FaultPlan().CrashAtMigrationProgress(NodeId(1), -0.3)));
  ASSERT_FALSE(neg_frac.ok());
  EXPECT_TRUE(neg_frac.status().IsInvalidArgument());

  // Replica-progress triggers get the same fraction validation.
  auto bad_rep = Db::Open(SmallOptions().WithFaultPlan(
      fault::FaultPlan().CrashAtReplicaProgress(NodeId(1), 2.0)));
  ASSERT_FALSE(bad_rep.ok());
  EXPECT_TRUE(bad_rep.status().IsInvalidArgument());
}

TEST(DbOptions, ValidatesReplicaPolicy) {
  // Misconfiguration is rejected even with the policy disabled — a typo
  // must surface the first time the options are used.
  auto check = [](std::function<void(cluster::ReplicaPolicy&)> corrupt,
                  const char* field) {
    DbOptions options = SmallOptions();
    corrupt(options.master.replica);
    auto db = Db::Open(std::move(options));
    ASSERT_FALSE(db.ok()) << field << " accepted";
    EXPECT_TRUE(db.status().IsInvalidArgument());
    EXPECT_NE(db.status().message().find(field), std::string::npos)
        << db.status().ToString();
  };
  check([](cluster::ReplicaPolicy& rp) { rp.replicas_per_segment = 0; },
        "replicas_per_segment");
  check([](cluster::ReplicaPolicy& rp) { rp.heat_threshold = -1.0; },
        "heat_threshold");
  check([](cluster::ReplicaPolicy& rp) { rp.max_replicated_segments = 0; },
        "max_replicated_segments");
  check([](cluster::ReplicaPolicy& rp) { rp.max_lag_records = -1; },
        "max_lag_records");
  check([](cluster::ReplicaPolicy& rp) { rp.drop_cold_after = -1; },
        "drop_cold_after");
}

TEST(Db, AttachHelpersRefusesRewiringAndDoomedHelpers) {
  auto opened = Db::Open(DbOptions()
                             .WithNodes(5)
                             .WithActiveNodes(3)
                             .WithoutTpccLoad());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;

  // A node cannot ship its own log to itself.
  EXPECT_TRUE(
      db.AttachHelpers({NodeId(2)}, {NodeId(1), NodeId(2)}, 128)
          .IsInvalidArgument());

  // A crashed node must not become a helper: its disk needs redo itself,
  // and wiring it would strand the assisted nodes' WAL stream.
  ASSERT_TRUE(db.CrashNode(NodeId(2)).ok());
  const Status crashed = db.AttachHelpers({NodeId(2)}, {NodeId(1)}, 128);
  EXPECT_TRUE(crashed.IsFailedPrecondition()) << crashed.ToString();
  EXPECT_NE(crashed.message().find("crashed"), std::string::npos);
  ASSERT_TRUE(db.RestartNodeAndWait(NodeId(2)).ok());

  // First attach succeeds; a second one must not silently rewire (the
  // first helper's shipped tail would be stranded) — DetachHelpers first.
  ASSERT_TRUE(db.AttachHelpers({NodeId(3)}, {NodeId(1)}, 128).ok());
  const Status twice = db.AttachHelpers({NodeId(4)}, {NodeId(1)}, 128);
  EXPECT_TRUE(twice.IsFailedPrecondition()) << twice.ToString();
  EXPECT_NE(twice.message().find("DetachHelpers"), std::string::npos);
  db.RunFor(7 * kUsPerSec);  // Helper boots and wires.
  ASSERT_TRUE(db.DetachHelpers().ok());
  EXPECT_TRUE(db.AttachHelpers({NodeId(4)}, {NodeId(1)}, 128).ok());
}

TEST(Fault, CrashedOwnerIsUnavailableAndRedoRecoversItsWrites) {
  auto opened = Db::Open(DbOptions()
                             .WithNodes(4)
                             .WithActiveNodes(2)
                             .WithoutTpccLoad());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  Session session = db.OpenSession();
  // [0, 512) lives on the master, [512, 1024) on node 1.
  StatusOr<TableId> table = db.CreateKvTable("t", 64, 1024);
  ASSERT_TRUE(table.ok());
  for (Key k = 600; k < 616; ++k) {
    ASSERT_TRUE(session.Put(*table, k, std::vector<uint8_t>(64, 0xAA)).ok());
  }
  ASSERT_TRUE(session.Put(*table, 42, std::vector<uint8_t>(64, 0xBB)).ok());

  ASSERT_TRUE(db.CrashNode(NodeId(1)).ok());

  // Routed single ops on the dead owner surface Unavailable; other owners
  // keep serving.
  EXPECT_TRUE(session.Get(*table, 600).status().IsUnavailable());
  EXPECT_TRUE(
      session.Put(*table, 600, std::vector<uint8_t>(64, 1)).IsUnavailable());
  EXPECT_TRUE(session.Get(*table, 42).ok());

  // Batches fail only the dead owner's keys, each reported per slot.
  StatusOr<MultiGetResult> batch = session.MultiGet(*table, {42, 600, 601});
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->records[0].ok());
  EXPECT_TRUE(batch->records[1].status().IsUnavailable());
  EXPECT_TRUE(batch->records[2].status().IsUnavailable());

  // Restart: the crash wiped the unflushed inserts; redo must rebuild them
  // from the WAL tail (§4.3: the log reconstructs partitions).
  const StatusOr<fault::RecoveryReport> report =
      db.RestartNodeAndWait(NodeId(1));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->partitions_recovered, 1);
  EXPECT_GE(report->records_lost_at_crash, 16);
  EXPECT_GE(report->records_replayed, report->records_lost_at_crash);
  EXPECT_GT(report->tail_bytes, 0u);
  EXPECT_GT(report->redo_us, 0);
  EXPECT_GE(report->outage_us, report->redo_us);

  StatusOr<MultiGetResult> after = session.MultiGet(
      *table, std::vector<Key>{600, 601, 602, 615});
  ASSERT_TRUE(after.ok());
  for (const auto& rec : after->records) {
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(rec->payload, std::vector<uint8_t>(64, 0xAA));
  }
}

TEST(Fault, CrashMigrationTargetAtHalfProgressThenRecover) {
  // The tentpole scenario: crash the migration target at 50% task
  // progress, restart it, redo-replay the log tail — and every key must
  // come out exactly once with its last committed value.
  auto opened = Db::Open(SmallOptions());  // Physiological scheme.
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  Session session = db.OpenSession();
  const TableId customer = db.table(workload::TpccTable::kCustomer);
  const int64_t per_district = db.tpcc()->customers_per_district();

  std::vector<Key> keys;
  for (int64_t c = 1; c <= per_district; ++c) {
    keys.push_back(workload::TpccKeys::Customer(1, 1, c));
  }

  // Crash node 2 (a migration target) once half the planned moves are done.
  fault::FaultPlan::Crash spec;
  spec.node = NodeId(2);
  spec.at_migration_progress = 0.5;
  db.fault().Schedule(spec);

  bool done = false;
  ASSERT_TRUE(
      db.TriggerRebalance({NodeId(2), NodeId(3)}, 0.5, [&]() { done = true; })
          .ok());

  // Keep writing while the move and the crash play out; a write either
  // commits (and is the new expected value) or fails Unavailable on the
  // dead target and changes nothing.
  std::vector<uint8_t> expected(keys.size(), 0);
  uint8_t round = 0;
  const SimTime t0 = db.Now();
  while (!done && db.Now() < t0 + 600 * kUsPerSec) {
    db.RunFor(kUsPerSec / 2);
    ++round;
    for (size_t i = 0; i < keys.size(); ++i) {
      const Status put =
          session.Put(customer, keys[i], std::vector<uint8_t>(64, round));
      ASSERT_TRUE(put.ok() || put.IsUnavailable()) << put.ToString();
      if (put.ok()) expected[i] = round;
    }
  }
  EXPECT_TRUE(done) << "migration did not finish after the crash";
  EXPECT_EQ(db.fault().crashes_injected(), 1);
  EXPECT_TRUE(db.recovery().IsDown(NodeId(2)));
  const auto& stats = db.scheme().stats();
  EXPECT_TRUE(stats.tasks_failed > 0 ||
              stats.segments_moved == stats.tasks_planned);

  // Restart the target and redo-replay its log tail.
  const StatusOr<fault::RecoveryReport> report =
      db.RestartNodeAndWait(NodeId(2));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->partitions_recovered, 1);

  // Exactly once, with the last committed value: every key resolves, slot
  // i answers key i, and the payload is the last acknowledged write.
  StatusOr<MultiGetResult> after = session.MultiGet(customer, keys);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->records.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(after->records[i].ok())
        << "key " << keys[i] << ": " << after->records[i].status().ToString();
    EXPECT_EQ(after->records[i]->key, keys[i]);
    if (expected[i] != 0) {
      EXPECT_EQ(after->records[i]->payload, std::vector<uint8_t>(64, expected[i]))
          << "key " << keys[i] << " lost its last committed write";
    }
  }

  // No key is reachable twice: a full scan sees each customer key once.
  std::set<Key> seen;
  const StatusOr<int64_t> visited = session.Scan(
      customer, KeyRange{keys.front(), keys.back() + 1},
      [&](const storage::Record& r) {
        EXPECT_TRUE(seen.insert(r.key).second)
            << "key " << r.key << " surfaced twice after recovery";
        return true;
      });
  ASSERT_TRUE(visited.ok());
  EXPECT_EQ(seen.size(), keys.size());
  EXPECT_TRUE(db.cluster().catalog().CheckInvariants());
}

TEST(Fault, FaultPlanInjectsCrashAndAutoRestart) {
  auto opened = Db::Open(DbOptions()
                             .WithNodes(4)
                             .WithActiveNodes(2)
                             .WithoutTpccLoad()
                             .WithFaultPlan(fault::FaultPlan().CrashAt(
                                 NodeId(1), 2 * kUsPerSec,
                                 /*restart_after=*/3 * kUsPerSec)));
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  StatusOr<TableId> table = db.CreateKvTable("t", 64, 1024);
  ASSERT_TRUE(table.ok());
  Session session = db.OpenSession();
  ASSERT_TRUE(session.Put(*table, 700, std::vector<uint8_t>(64, 0x7)).ok());

  db.RunFor(4 * kUsPerSec);  // Past the crash, mid-downtime.
  EXPECT_EQ(db.fault().crashes_injected(), 1);
  EXPECT_TRUE(db.recovery().IsDown(NodeId(1)));
  EXPECT_TRUE(session.Get(*table, 700).status().IsUnavailable());

  db.RunFor(16 * kUsPerSec);  // Past boot + redo.
  EXPECT_EQ(db.fault().restarts_injected(), 1);
  EXPECT_FALSE(db.recovery().IsDown(NodeId(1)));
  ASSERT_EQ(db.recovery().reports().size(), 1u);
  EXPECT_TRUE(session.Get(*table, 700).ok());
}

TEST(Workload, OpenLoopKvHoldsOfferedRate) {
  // Open loop: arrivals are paced by the qps knob alone — the (absurd)
  // think time would throttle a closed loop to a crawl, but must not
  // matter here.
  auto opened = Db::Open(DbOptions()
                             .WithNodes(4)
                             .WithActiveNodes(2)
                             .WithSeed(5)
                             .WithoutTpccLoad());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  workload::KvConfig cfg;
  cfg.arrival_qps = 200.0;
  cfg.think_time = 10 * kUsPerSec;
  cfg.batch_size = 4;
  cfg.num_keys = 512;
  cfg.seed = 5;
  auto kv = db.AddKvWorkload(cfg);
  ASSERT_TRUE(kv.ok()) << kv.status().ToString();

  (*kv)->Start();
  db.RunFor(10 * kUsPerSec);
  (*kv)->Stop();

  // ~2000 Poisson arrivals in 10 s at 200 qps (sd ~ 45).
  EXPECT_GT((*kv)->issued(), 1700);
  EXPECT_LT((*kv)->issued(), 2300);
  EXPECT_GT((*kv)->committed(), 0);
  EXPECT_LE((*kv)->committed() + (*kv)->aborted(), (*kv)->issued());
}

TEST(Workload, DriversAttachThroughCommonInterface) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;

  workload::ClientPoolConfig pool_cfg;
  pool_cfg.num_clients = 8;
  pool_cfg.think_time = 20 * kUsPerMs;
  db.AddClientPool(pool_cfg);

  workload::KvConfig kv_cfg;
  kv_cfg.num_clients = 4;
  kv_cfg.num_keys = 512;
  kv_cfg.think_time = 10 * kUsPerMs;
  auto kv = db.AddKvWorkload(kv_cfg);
  ASSERT_TRUE(kv.ok()) << kv.status().ToString();

  ASSERT_EQ(db.workloads().size(), 2u);
  EXPECT_EQ(db.workloads()[0]->name(), "tpcc");
  EXPECT_EQ(db.workloads()[1]->name(), "kv");

  // Drive both generators through the base interface alone.
  for (const auto& driver : db.workloads()) driver->Start();
  db.RunFor(5 * kUsPerSec);
  for (const auto& driver : db.workloads()) {
    EXPECT_GT(driver->committed(), 0) << driver->name();
    EXPECT_GT(driver->latencies().count(), 0) << driver->name();
    driver->Stop();
  }
}

TEST(Workload, BatchedKvBeatsPerOpThroughput) {
  // The tentpole claim in miniature: same clients, same key space, same
  // think time — owner-grouped batches commit more key ops than the per-op
  // loop because each batch pays one round trip per owner, not per key.
  auto run = [](bool batched) {
    auto opened = Db::Open(DbOptions()
                               .WithNodes(4)
                               .WithActiveNodes(2)
                               .WithBufferPages(2000)
                               .WithSeed(11)
                               .WithoutTpccLoad());
    EXPECT_TRUE(opened.ok());
    Db& db = **opened;
    workload::KvConfig cfg;
    cfg.num_clients = 12;
    cfg.think_time = 5 * kUsPerMs;
    cfg.batch_size = 8;
    cfg.batched = batched;
    cfg.num_keys = 2048;
    cfg.seed = 11;
    auto kv = db.AddKvWorkload(cfg);
    EXPECT_TRUE(kv.ok());
    (*kv)->Start();
    db.RunFor(8 * kUsPerSec);
    (*kv)->Stop();
    return std::pair<int64_t, int64_t>((*kv)->key_ops(),
                                       (*kv)->owner_round_trips());
  };

  const auto [per_op_ops, per_op_rts] = run(false);
  const auto [batched_ops, batched_rts] = run(true);
  EXPECT_GT(per_op_ops, 0);
  EXPECT_GT(batched_ops, per_op_ops);
  // The per-op path never goes through the batch entry point.
  EXPECT_EQ(per_op_rts, 0);
  EXPECT_GT(batched_rts, 0);
}

TEST(Db, CreateKvTableValidatesAndRoutes) {
  auto opened = Db::Open(DbOptions()
                             .WithNodes(4)
                             .WithActiveNodes(2)
                             .WithoutTpccLoad());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;

  EXPECT_TRUE(db.CreateKvTable("", 100, 1024).status().IsInvalidArgument());
  EXPECT_TRUE(db.CreateKvTable("t", 0, 1024).status().IsInvalidArgument());
  EXPECT_TRUE(db.CreateKvTable("t", 100, 0).status().IsInvalidArgument());

  StatusOr<TableId> table = db.CreateKvTable("t", 100, 1024);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_TRUE(db.CreateKvTable("t", 100, 1024).status().IsAlreadyExists());

  // The key space is split across both active nodes and usable end to end.
  const auto routes = db.Routes(*table);
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_EQ(routes.front().owner, NodeId(0));
  EXPECT_EQ(routes.back().owner, NodeId(1));
  Session session = db.OpenSession();
  ASSERT_TRUE(session.Put(*table, 42, std::vector<uint8_t>(100, 7)).ok());
  StatusOr<storage::Record> rec = session.Get(*table, 42);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->payload, std::vector<uint8_t>(100, 7));
}

TEST(Db, RoutesExposeOwnership) {
  auto opened = Db::Open(SmallOptions());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  const auto routes = db.Routes(db.table(workload::TpccTable::kCustomer));
  ASSERT_FALSE(routes.empty());
  for (const TableRoute& r : routes) {
    EXPECT_TRUE(r.partition.valid());
    EXPECT_TRUE(r.owner.valid());
    EXPECT_GT(r.segments, 0u);
  }
}

// --- Self-healing control loop ---------------------------------------------

/// A fast control loop with elasticity disabled, so only the failure
/// detector acts: 200 ms ticks, dead after 2 missed windows.
cluster::MasterPolicy HealingPolicy() {
  cluster::MasterPolicy policy;
  policy.check_period = kUsPerSec / 5;
  policy.stats_window = kUsPerSec / 2;
  policy.enable_scale_out = false;
  policy.enable_scale_in = false;
  policy.recovery.declare_dead_after = 2;
  return policy;
}

bool SawEvent(const Db& db, cluster::ControlEventType type, NodeId node) {
  for (const auto& e : db.control_events()) {
    if (e.type == type && e.node == node) return true;
  }
  return false;
}

TEST(DbOptions, ValidatesMasterPolicy) {
  auto with = [](void (*mutate)(cluster::MasterPolicy&)) {
    cluster::MasterPolicy policy;
    mutate(policy);
    return Db::Open(DbOptions()
                        .WithNodes(2)
                        .WithActiveNodes(1)
                        .WithoutTpccLoad()
                        .WithMasterLoop(policy));
  };

  auto bad_period =
      with([](cluster::MasterPolicy& p) { p.check_period = 0; });
  ASSERT_FALSE(bad_period.ok());
  EXPECT_TRUE(bad_period.status().IsInvalidArgument());
  EXPECT_NE(bad_period.status().message().find("check_period"),
            std::string::npos);

  auto bad_window =
      with([](cluster::MasterPolicy& p) { p.stats_window = -1; });
  ASSERT_FALSE(bad_window.ok());
  EXPECT_TRUE(bad_window.status().IsInvalidArgument());

  auto inverted = with([](cluster::MasterPolicy& p) {
    p.cpu_lower = 0.9;
    p.cpu_upper = 0.2;
  });
  ASSERT_FALSE(inverted.ok());
  EXPECT_TRUE(inverted.status().IsInvalidArgument());
  EXPECT_NE(inverted.status().message().find("cpu_lower"), std::string::npos);

  auto out_of_range =
      with([](cluster::MasterPolicy& p) { p.cpu_upper = 1.5; });
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_TRUE(out_of_range.status().IsInvalidArgument());

  auto bad_trigger =
      with([](cluster::MasterPolicy& p) { p.trigger_after = 0; });
  ASSERT_FALSE(bad_trigger.ok());
  EXPECT_TRUE(bad_trigger.status().IsInvalidArgument());

  auto bad_dead = with(
      [](cluster::MasterPolicy& p) { p.recovery.declare_dead_after = 0; });
  ASSERT_FALSE(bad_dead.ok());
  EXPECT_TRUE(bad_dead.status().IsInvalidArgument());
  EXPECT_NE(bad_dead.status().message().find("declare_dead_after"),
            std::string::npos);

  auto bad_backoff = with(
      [](cluster::MasterPolicy& p) { p.recovery.restart_backoff = -1; });
  ASSERT_FALSE(bad_backoff.ok());
  EXPECT_TRUE(bad_backoff.status().IsInvalidArgument());

  auto bad_exclude = with([](cluster::MasterPolicy& p) {
    p.recovery.exclude_after_crashes = -2;
  });
  ASSERT_FALSE(bad_exclude.ok());
  EXPECT_TRUE(bad_exclude.status().IsInvalidArgument());

  auto good = with([](cluster::MasterPolicy&) {});
  EXPECT_TRUE(good.ok()) << good.status().ToString();
}

TEST(SelfHealing, DetectorRestartsCrashedNodeWithoutOperatorCalls) {
  auto opened = Db::Open(DbOptions()
                             .WithNodes(4)
                             .WithActiveNodes(2)
                             .WithoutTpccLoad()
                             .WithMasterLoop(HealingPolicy()));
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  Session session = db.OpenSession();
  StatusOr<TableId> table = db.CreateKvTable("t", 64, 1024);
  ASSERT_TRUE(table.ok());
  // [512, 1024) lives on node 1; these writes die with it and must come
  // back via redo issued by the master, not by any Db::RestartNode call.
  for (Key k = 600; k < 616; ++k) {
    ASSERT_TRUE(session.Put(*table, k, std::vector<uint8_t>(64, 0xCD)).ok());
  }
  db.RunFor(kUsPerSec);  // The detector observes node 1 alive.

  ASSERT_TRUE(db.CrashNode(NodeId(1)).ok());
  EXPECT_TRUE(session.Get(*table, 600).status().IsUnavailable());

  // No operator restart: the heartbeat detector must declare the node dead
  // after 2 missed windows and heal it (5 s boot + redo).
  const SimTime t0 = db.Now();
  while ((db.recovery().IsDown(NodeId(1)) ||
          !db.cluster().node(NodeId(1))->IsActive()) &&
         db.Now() < t0 + 30 * kUsPerSec) {
    db.RunFor(kUsPerSec / 5);
  }

  EXPECT_TRUE(db.cluster().node(NodeId(1))->IsActive());
  EXPECT_FALSE(db.recovery().IsDown(NodeId(1)));
  EXPECT_EQ(db.master().nodes_declared_dead(), 1);
  EXPECT_EQ(db.master().auto_restarts(), 1);
  EXPECT_TRUE(SawEvent(db, cluster::ControlEventType::kNodeDeclaredDead,
                       NodeId(1)));
  EXPECT_TRUE(
      SawEvent(db, cluster::ControlEventType::kRestartIssued, NodeId(1)));
  EXPECT_TRUE(
      SawEvent(db, cluster::ControlEventType::kNodeRecovered, NodeId(1)));
  // Detection was fast: declared within ~2 windows + a tick of the crash.
  for (const auto& e : db.control_events()) {
    if (e.type == cluster::ControlEventType::kNodeDeclaredDead) {
      EXPECT_LE(e.at - t0, kUsPerSec);
    }
  }

  // The redo issued by the master rebuilt the wiped inserts.
  for (Key k : {Key(600), Key(607), Key(615)}) {
    StatusOr<storage::Record> rec = session.Get(*table, k);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    EXPECT_EQ(rec->payload, std::vector<uint8_t>(64, 0xCD));
  }
}

TEST(SelfHealing, AutoHealOffDetectsButNeverRestarts) {
  cluster::MasterPolicy policy = HealingPolicy();
  policy.recovery.auto_heal = false;
  auto opened = Db::Open(DbOptions()
                             .WithNodes(4)
                             .WithActiveNodes(2)
                             .WithoutTpccLoad()
                             .WithMasterLoop(policy));
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  ASSERT_TRUE(db.CreateKvTable("t", 64, 1024).ok());
  db.RunFor(kUsPerSec);
  ASSERT_TRUE(db.CrashNode(NodeId(1)).ok());
  db.RunFor(10 * kUsPerSec);
  EXPECT_EQ(db.master().nodes_declared_dead(), 1);
  EXPECT_EQ(db.master().auto_restarts(), 0);
  EXPECT_FALSE(db.cluster().node(NodeId(1))->IsActive());
  EXPECT_TRUE(db.recovery().IsDown(NodeId(1)));
}

TEST(SelfHealing, FlakyNodeIsDrainedAndExcluded) {
  cluster::MasterPolicy policy = HealingPolicy();
  policy.recovery.exclude_after_crashes = 2;
  auto opened = Db::Open(DbOptions()
                             .WithNodes(4)
                             .WithActiveNodes(2)
                             .WithoutTpccLoad()
                             .WithMasterLoop(policy));
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  Session session = db.OpenSession();
  StatusOr<TableId> table = db.CreateKvTable("t", 64, 1024);
  ASSERT_TRUE(table.ok());
  for (Key k = 600; k < 632; ++k) {
    ASSERT_TRUE(session.Put(*table, k, std::vector<uint8_t>(64, 0x5A)).ok());
  }
  db.RunFor(kUsPerSec);

  // Crash #1: restart-in-place.
  ASSERT_TRUE(db.CrashNode(NodeId(1)).ok());
  const SimTime t0 = db.Now();
  while (db.recovery().IsDown(NodeId(1)) && db.Now() < t0 + 30 * kUsPerSec) {
    db.RunFor(kUsPerSec / 5);
  }
  ASSERT_FALSE(db.recovery().IsDown(NodeId(1)));
  EXPECT_FALSE(db.master().IsExcluded(NodeId(1)));
  db.RunFor(kUsPerSec);  // Seen alive again.

  // Crash #2: the node is now flaky — restart once more for data access,
  // drain everything onto survivors, power off, exclude.
  ASSERT_TRUE(db.CrashNode(NodeId(1)).ok());
  const SimTime t1 = db.Now();
  while (!db.master().IsExcluded(NodeId(1)) &&
         db.Now() < t1 + 90 * kUsPerSec) {
    db.RunFor(kUsPerSec / 5);
  }

  EXPECT_TRUE(db.master().IsExcluded(NodeId(1)));
  EXPECT_FALSE(db.cluster().node(NodeId(1))->IsActive());
  EXPECT_TRUE(db.cluster().catalog().PartitionsOwnedBy(NodeId(1)).empty());
  EXPECT_TRUE(
      SawEvent(db, cluster::ControlEventType::kDrainStarted, NodeId(1)));
  EXPECT_TRUE(
      SawEvent(db, cluster::ControlEventType::kNodeExcluded, NodeId(1)));
  EXPECT_EQ(db.master().crash_count(NodeId(1)), 2);
  // The detector's count agrees with the recovery subsystem's ground truth.
  EXPECT_EQ(db.recovery().crash_count(NodeId(1)), 2);

  // Every committed write survived the crashes and the drain: the key
  // range moved to survivors with its data.
  for (Key k = 600; k < 632; ++k) {
    StatusOr<storage::Record> rec = session.Get(*table, k);
    ASSERT_TRUE(rec.ok()) << "key " << k << ": " << rec.status().ToString();
    EXPECT_EQ(rec->payload, std::vector<uint8_t>(64, 0x5A));
  }
}

TEST(SelfHealing, HelperFailoverFallsBackRecruitsAndLosesNoWrites) {
  auto opened = Db::Open(DbOptions()
                             .WithNodes(5)
                             .WithActiveNodes(2)
                             .WithoutTpccLoad()
                             .WithMasterLoop(HealingPolicy()));
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;
  Session session = db.OpenSession();
  StatusOr<TableId> table = db.CreateKvTable("t", 64, 1024);
  ASSERT_TRUE(table.ok());

  // Node 2 becomes the helper shipping node 1's log (Fig. 8 wiring).
  ASSERT_TRUE(
      db.AttachHelpers({NodeId(2)}, {NodeId(1)}, /*remote_buffer_pages=*/256)
          .ok());
  db.RunFor(7 * kUsPerSec);  // Helper boots (5 s), wires, reports alive.
  ASSERT_TRUE(db.cluster().node(NodeId(1))->log().HasHelper());

  // Committed writes mid-log-shipping: their WAL records went to the
  // helper; they must survive everything below.
  for (Key k = 600; k < 632; ++k) {
    ASSERT_TRUE(session.Put(*table, k, std::vector<uint8_t>(64, 0xE1)).ok());
  }

  // Crash the helper mid-shipping. The master must detach it, fall node 1
  // back to local logging, and recruit a standby replacement.
  ASSERT_TRUE(db.CrashNode(NodeId(2)).ok());
  const SimTime t0 = db.Now();
  while (db.Now() < t0 + 30 * kUsPerSec &&
         !SawEvent(db, cluster::ControlEventType::kHelperRecruited,
                   NodeId(3))) {
    db.RunFor(kUsPerSec / 5);
  }

  EXPECT_TRUE(
      SawEvent(db, cluster::ControlEventType::kHelperLost, NodeId(2)));
  EXPECT_TRUE(
      SawEvent(db, cluster::ControlEventType::kHelperFallback, NodeId(1)));
  EXPECT_TRUE(
      SawEvent(db, cluster::ControlEventType::kHelperRecruited, NodeId(3)));
  EXPECT_EQ(db.master().helper_failovers(), 1);

  // The replacement helper (node 3) boots and is re-wired.
  db.RunFor(7 * kUsPerSec);
  EXPECT_TRUE(db.cluster().node(NodeId(3))->IsActive());
  EXPECT_TRUE(db.cluster().node(NodeId(1))->log().HasHelper());

  // Writes committed while shipping to the replacement.
  for (Key k = 632; k < 640; ++k) {
    ASSERT_TRUE(session.Put(*table, k, std::vector<uint8_t>(64, 0xE2)).ok());
  }

  // Now crash the *assisted* node and let the master heal it: redo must
  // replay every committed write — nothing was lost to the dead helper.
  ASSERT_TRUE(db.CrashNode(NodeId(1)).ok());
  const SimTime t1 = db.Now();
  while ((db.recovery().IsDown(NodeId(1)) ||
          !db.cluster().node(NodeId(1))->IsActive()) &&
         db.Now() < t1 + 30 * kUsPerSec) {
    db.RunFor(kUsPerSec / 5);
  }
  ASSERT_FALSE(db.recovery().IsDown(NodeId(1)));

  for (Key k = 600; k < 632; ++k) {
    StatusOr<storage::Record> rec = session.Get(*table, k);
    ASSERT_TRUE(rec.ok()) << "key " << k << ": " << rec.status().ToString();
    EXPECT_EQ(rec->payload, std::vector<uint8_t>(64, 0xE1));
  }
  for (Key k = 632; k < 640; ++k) {
    StatusOr<storage::Record> rec = session.Get(*table, k);
    ASSERT_TRUE(rec.ok()) << "key " << k << ": " << rec.status().ToString();
    EXPECT_EQ(rec->payload, std::vector<uint8_t>(64, 0xE2));
  }
}

// --- Heat-driven rebalancing -------------------------------------------------

/// HealingPolicy plus an armed BalancePolicy with fast reaction times.
cluster::MasterPolicy BalancingPolicy() {
  cluster::MasterPolicy policy = HealingPolicy();
  policy.balance.enabled = true;
  policy.balance.trigger_ratio = 1.3;
  policy.balance.ewma_alpha = 0.5;
  policy.balance.trigger_after = 2;
  policy.balance.cooldown = 2 * kUsPerSec;
  policy.balance.max_moves_per_round = 3;
  policy.balance.min_total_heat = 20.0;
  return policy;
}

workload::KvConfig SkewedKv(double qps, int64_t keys) {
  workload::KvConfig cfg;
  cfg.arrival_qps = qps;
  cfg.read_ratio = 0.9;
  cfg.batch_size = 4;
  cfg.num_keys = keys;
  cfg.value_bytes = 100;
  cfg.zipf_theta = 0.99;  // Hot head is contiguous: rank r -> key r.
  cfg.segments_per_partition = 8;
  cfg.seed = 7;
  return cfg;
}

TEST(DbOptions, ValidatesBalancePolicy) {
  auto with = [](void (*mutate)(cluster::BalancePolicy&)) {
    cluster::MasterPolicy policy;
    policy.balance.enabled = true;
    mutate(policy.balance);
    return Db::Open(DbOptions()
                        .WithNodes(2)
                        .WithActiveNodes(2)
                        .WithoutTpccLoad()
                        .WithMasterLoop(policy));
  };

  auto bad_ratio =
      with([](cluster::BalancePolicy& b) { b.trigger_ratio = 1.0; });
  ASSERT_FALSE(bad_ratio.ok());
  EXPECT_TRUE(bad_ratio.status().IsInvalidArgument());
  EXPECT_NE(bad_ratio.status().message().find("trigger_ratio"),
            std::string::npos);

  auto bad_alpha = with([](cluster::BalancePolicy& b) { b.ewma_alpha = 0.0; });
  ASSERT_FALSE(bad_alpha.ok());
  EXPECT_TRUE(bad_alpha.status().IsInvalidArgument());
  EXPECT_NE(bad_alpha.status().message().find("ewma_alpha"),
            std::string::npos);
  EXPECT_FALSE(
      with([](cluster::BalancePolicy& b) { b.ewma_alpha = 1.5; }).ok());

  auto bad_after = with([](cluster::BalancePolicy& b) { b.trigger_after = 0; });
  ASSERT_FALSE(bad_after.ok());
  EXPECT_TRUE(bad_after.status().IsInvalidArgument());

  auto bad_cooldown =
      with([](cluster::BalancePolicy& b) { b.cooldown = -1; });
  ASSERT_FALSE(bad_cooldown.ok());
  EXPECT_TRUE(bad_cooldown.status().IsInvalidArgument());

  auto bad_budget =
      with([](cluster::BalancePolicy& b) { b.max_moves_per_round = 0; });
  ASSERT_FALSE(bad_budget.ok());
  EXPECT_TRUE(bad_budget.status().IsInvalidArgument());

  auto bad_floor =
      with([](cluster::BalancePolicy& b) { b.min_total_heat = -5.0; });
  ASSERT_FALSE(bad_floor.ok());
  EXPECT_TRUE(bad_floor.status().IsInvalidArgument());

  // A misconfigured-but-disabled policy is rejected too: the typo must
  // surface now, not when the knob is eventually enabled.
  cluster::MasterPolicy disabled;
  disabled.balance.enabled = false;
  disabled.balance.trigger_ratio = 0.5;
  auto still_bad = Db::Open(DbOptions()
                                .WithNodes(2)
                                .WithActiveNodes(2)
                                .WithoutTpccLoad()
                                .WithMasterLoop(disabled));
  ASSERT_FALSE(still_bad.ok());
  EXPECT_TRUE(still_bad.status().IsInvalidArgument());

  auto good = with([](cluster::BalancePolicy&) {});
  EXPECT_TRUE(good.ok()) << good.status().ToString();
}

TEST(HeatBalance, SkewTriggersMovesEventsAndKeepsDataReadable) {
  auto opened = Db::Open(DbOptions()
                             .WithNodes(3)
                             .WithActiveNodes(3)
                             .WithBufferPages(4000)
                             .WithSeed(7)
                             .WithoutTpccLoad()
                             .WithMasterLoop(BalancingPolicy()));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;
  auto kv = db.AddKvWorkload(SkewedKv(/*qps=*/300, /*keys=*/4096));
  ASSERT_TRUE(kv.ok()) << kv.status().ToString();
  workload::KvWorkload& driver = **kv;
  const TableId table = driver.table();

  // The head of the Zipf distribution lives in [0, 1365) — all on node 0.
  const auto before = db.Routes(table);
  ASSERT_FALSE(before.empty());
  EXPECT_EQ(before.front().owner, NodeId(0));

  driver.Start();
  const SimTime t0 = db.Now();
  while (db.master().heat_moves_completed() < 1 &&
         db.Now() < t0 + 30 * kUsPerSec) {
    db.RunFor(kUsPerSec / 2);
  }
  driver.Stop();
  db.RunFor(kUsPerSec);  // Let in-flight moves settle.

  EXPECT_GE(db.master().heat_rebalances(), 1);
  EXPECT_GE(db.master().heat_moves_completed(), 1);
  // Every decision is on the public timeline: trigger on the hot node,
  // per-segment plans, and the round completion.
  EXPECT_TRUE(SawEvent(db, cluster::ControlEventType::kHeatImbalance,
                       NodeId(0)));
  int planned = 0, rebalanced = 0;
  for (const auto& e : db.control_events()) {
    if (e.type == cluster::ControlEventType::kHeatMovePlanned) ++planned;
    if (e.type == cluster::ControlEventType::kHeatRebalanced) ++rebalanced;
  }
  EXPECT_GE(planned, 1);
  EXPECT_GE(rebalanced, 1);
  // The hot head's ownership changed hands; the catalog stayed sound.
  bool head_moved = false;
  for (const auto& r : db.Routes(table)) {
    if (r.range.lo == 0 && r.owner != NodeId(0)) head_moved = true;
  }
  EXPECT_TRUE(head_moved) << "hottest range still on the hot node";
  EXPECT_TRUE(db.cluster().catalog().CheckInvariants());

  // Data is intact across the online moves.
  Session session = db.OpenSession();
  for (Key k = 0; k < 64; ++k) {
    StatusOr<storage::Record> rec = session.Get(table, k);
    ASSERT_TRUE(rec.ok()) << "key " << k << ": " << rec.status().ToString();
  }
}

TEST(HeatBalance, CrashMidMoveIsAbandonedAndReplanned) {
  cluster::MasterPolicy policy = BalancingPolicy();
  // Big cost scale: each segment copy takes long enough that the
  // at-progress-0 crash (polled every 20 ms) always lands mid-stream.
  DbOptions options = DbOptions()
                          .WithNodes(2)
                          .WithActiveNodes(2)
                          .WithBufferPages(4000)
                          .WithSeed(7)
                          .WithoutTpccLoad()
                          .WithMasterLoop(policy)
                          .WithCostScale(400.0)
                          .WithFaultPlan(fault::FaultPlan()
                                             .CrashAtMigrationProgress(
                                                 NodeId(1), 0.0));
  auto opened = Db::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Db& db = **opened;
  auto kv = db.AddKvWorkload(SkewedKv(/*qps=*/300, /*keys=*/4096));
  ASSERT_TRUE(kv.ok()) << kv.status().ToString();
  workload::KvWorkload& driver = **kv;
  const TableId table = driver.table();

  driver.Start();
  // Phase 1: the balancer plans moves onto node 1, which crashes the
  // moment the migration starts — every move of the round is abandoned.
  const SimTime t0 = db.Now();
  while (db.master().heat_moves_abandoned() < 1 &&
         db.Now() < t0 + 30 * kUsPerSec) {
    db.RunFor(kUsPerSec / 2);
  }
  ASSERT_GE(db.master().heat_moves_abandoned(), 1)
      << "crash mid-move must abandon the round's moves";
  EXPECT_TRUE(SawEvent(db, cluster::ControlEventType::kHeatMoveAbandoned,
                       NodeId(0)));
  EXPECT_EQ(db.master().heat_moves_completed(), 0);
  EXPECT_TRUE(db.cluster().catalog().CheckInvariants())
      << "abandoned moves must roll cleanly off the books";

  // Phase 2: the self-healing loop restarts node 1 (no operator call); once
  // it serves again the still-standing imbalance re-triggers and the same
  // hot segments are re-planned — this time the moves install.
  const SimTime t1 = db.Now();
  while (db.master().heat_moves_completed() < 1 &&
         db.Now() < t1 + 60 * kUsPerSec) {
    db.RunFor(kUsPerSec / 2);
  }
  driver.Stop();
  db.RunFor(kUsPerSec);

  EXPECT_GE(db.master().auto_restarts(), 1);
  EXPECT_GE(db.master().heat_moves_completed(), 1)
      << "abandoned moves were never re-planned";
  EXPECT_GE(db.master().heat_rebalances(), 2);
  // Part of node 0's original half of the key space now lives on node 1.
  // (The dominant head segment itself stays: with one other node, moving
  // it would merely relocate the hotspot, which the planner refuses.)
  bool spread = false;
  for (const auto& r : db.Routes(table)) {
    if (r.range.hi <= 2048 && r.owner == NodeId(1)) spread = true;
  }
  EXPECT_TRUE(spread) << "no hot range ever moved onto the recovered node";
  EXPECT_TRUE(db.cluster().catalog().CheckInvariants());

  // No committed write was lost across the crash + abandoned + replayed
  // moves (reads go through the §4.3 two-pointer protocol).
  Session session = db.OpenSession();
  for (Key k = 0; k < 64; ++k) {
    StatusOr<storage::Record> rec = session.Get(table, k);
    ASSERT_TRUE(rec.ok()) << "key " << k << ": " << rec.status().ToString();
  }
}

TEST(Db, AddKvWorkloadValidatesZipfAndPresplitsSegments) {
  auto opened = Db::Open(DbOptions()
                             .WithNodes(2)
                             .WithActiveNodes(2)
                             .WithoutTpccLoad());
  ASSERT_TRUE(opened.ok());
  Db& db = **opened;

  workload::KvConfig bad = SkewedKv(100, 1024);
  bad.zipf_theta = 1.0;  // The Gray et al. generator needs theta < 1.
  EXPECT_TRUE(db.AddKvWorkload(bad).status().IsInvalidArgument());

  workload::KvConfig shifted = SkewedKv(100, 1024);
  shifted.zipf_offset = 1024;  // Rotation must stay inside the key space.
  EXPECT_TRUE(db.AddKvWorkload(shifted).status().IsInvalidArgument());
  shifted.zipf_offset = -1;
  EXPECT_TRUE(db.AddKvWorkload(shifted).status().IsInvalidArgument());

  workload::KvConfig cfg = SkewedKv(100, 1024);
  cfg.segments_per_partition = 4;
  auto kv = db.AddKvWorkload(cfg);
  ASSERT_TRUE(kv.ok()) << kv.status().ToString();
  // Two partitions (one per active node), each pre-split into 4 segments.
  for (const auto& r : db.Routes((*kv)->table())) {
    EXPECT_EQ(r.segments, 4u) << "range [" << r.range.lo << ", "
                              << r.range.hi << ")";
  }
  // Scrambled Zipf still reaches every key (the permutation is a bijection;
  // a load + uniform read-back would catch a hole). Spot-check via reads.
  workload::KvConfig scrambled = SkewedKv(100, 256);
  scrambled.zipf_scramble = true;
  auto kv2 = db.AddKvWorkload(scrambled);
  ASSERT_TRUE(kv2.ok());
  Session session = db.OpenSession();
  for (Key k = 0; k < 256; ++k) {
    EXPECT_TRUE(session.Get((*kv2)->table(), k).ok()) << "key " << k;
  }
}

}  // namespace
}  // namespace wattdb
